// Exp-1 (paper Figure 2): discovery runtime vs number of tuples.
//
// Series: OD (exact discovery), AOD (optimal, Alg. 2), AOD (iterative,
// Alg. 1); 10 attributes; threshold 10%. The paper runs flight at
// 200K-1M rows and ncvoter at 100K-5M; the default harness scales those
// by 1/40 (see bench_util.h) and the iterative series is capped by
// AOD_BENCH_BUDGET like the paper's 24h limit. Expected shape: OD and
// AOD(optimal) grow near-linearly and stay within ~15% of each other;
// AOD(iterative) grows quadratically and exceeds any reasonable budget
// beyond small sizes. The count annotations mirror the numbers printed
// inside the paper's plots (#OCs for OD, #AOCs for the AOD series).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/encoder.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"

namespace aod {
namespace bench {
namespace {

void RunDataset(const char* name, bool flight,
                const std::vector<int64_t>& base_rows) {
  std::printf("\n--- %s (10 attributes, eps = 10%%) ---\n", name);
  std::printf("%10s  %12s %6s | %12s %6s | %12s %6s\n", "rows", "OD(s)",
              "#OC", "AODopt(s)", "#AOC", "AODiter(s)", "#AOC");
  for (int64_t base : base_rows) {
    int64_t rows = ScaledRows(base);
    Table t = flight ? GenerateFlightTable(rows, 10, 42)
                     : GenerateNcVoterTable(rows, 10, 1729);
    EncodedTable enc = EncodeTable(t);
    RunResult exact = RunDiscovery(enc, ValidatorKind::kExact, 0.10);
    RunResult optimal = RunDiscovery(enc, ValidatorKind::kOptimal, 0.10);
    RunResult iterative = RunDiscovery(enc, ValidatorKind::kIterative, 0.10,
                                       IterativeBudget());
    std::printf("%10lld  %12s %6lld | %12s %6lld | %12s %6lld\n",
                static_cast<long long>(rows), TimeCell(exact).c_str(),
                static_cast<long long>(exact.ocs),
                TimeCell(optimal).c_str(),
                static_cast<long long>(optimal.ocs),
                TimeCell(iterative).c_str(),
                static_cast<long long>(iterative.ocs));
  }
}

}  // namespace
}  // namespace bench
}  // namespace aod

int main() {
  using namespace aod::bench;
  PrintHeaderLine("Exp-1 / Figure 2: scalability in the number of tuples");
  std::printf("scale=%.2f (paper sizes ~ scale 40), iterative budget=%.0fs"
              " (paper cap: 24h)\n",
              Scale(), IterativeBudget());
  PrintNote("paper reference (flight, seconds): OD 209..1989, AOD(opt)"
            " 228..2379, AOD(iter) 72832..1820800 (projected)");
  PrintNote("paper reference (ncvoter, seconds): OD 141..29249, AOD(opt)"
            " 123..19020, AOD(iter) >24h beyond 100K");

  RunDataset("flight", /*flight=*/true, {5000, 10000, 15000, 20000, 25000});
  RunDataset("ncvoter", /*flight=*/false,
             {2500, 10000, 20000, 30000, 40000, 50000});

  PrintNote("\n'*' marks runs that exceeded the time budget (reported time"
            " is the elapsed time at abort; results partial).");
  return 0;
}
