// Exp-1 (paper Figure 2): discovery runtime vs number of tuples.
//
// Series: OD (exact discovery), AOD (optimal, Alg. 2), AOD (iterative,
// Alg. 1); 10 attributes; threshold 10%. The paper runs flight at
// 200K-1M rows and ncvoter at 100K-5M; the default harness scales those
// by 1/40 (see bench_util.h) and the iterative series is capped by
// AOD_BENCH_BUDGET like the paper's 24h limit. Expected shape: OD and
// AOD(optimal) grow near-linearly and stay within ~15% of each other;
// AOD(iterative) grows quadratically and exceeds any reasonable budget
// beyond small sizes. The count annotations mirror the numbers printed
// inside the paper's plots (#OCs for OD, #AOCs for the AOD series).
//
// With --json <path> the full series is also written as machine-readable
// JSON (CI uploads it as BENCH_exp1.json), so the end-to-end perf
// trajectory is recorded per commit, not just the micro numbers.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/encoder.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"

namespace aod {
namespace bench {
namespace {

struct Row {
  int64_t rows = 0;
  RunResult exact;
  RunResult optimal;
  RunResult iterative;
};

struct DatasetSeries {
  std::string name;
  std::vector<Row> rows;
};

DatasetSeries RunDataset(const char* name, bool flight,
                         const std::vector<int64_t>& base_rows,
                         DependencyKindSet kinds) {
  const bool targets = kinds.Contains(DependencyKind::kFd) ||
                       kinds.Contains(DependencyKind::kAfd);
  DatasetSeries series;
  series.name = name;
  std::printf("\n--- %s (10 attributes, eps = 10%%, kinds = %s) ---\n",
              name, kinds.ToString().c_str());
  std::printf("%10s  %12s %6s | %12s %6s | %12s %6s%s\n", "rows", "OD(s)",
              "#OC", "AODopt(s)", "#AOC", "AODiter(s)", "#AOC",
              targets ? " | #FD #AFD (opt)" : "");
  for (int64_t base : base_rows) {
    Row row;
    row.rows = ScaledRows(base);
    Table t = flight ? GenerateFlightTable(row.rows, 10, 42)
                     : GenerateNcVoterTable(row.rows, 10, 1729);
    EncodedTable enc = EncodeTable(t);
    auto run = [&](ValidatorKind v, double budget) {
      DiscoveryOptions options;
      options.validator = v;
      options.epsilon = 0.10;
      options.time_budget_seconds = budget;
      options.kinds = kinds;
      return RunDiscoveryWithOptions(enc, options);
    };
    row.exact = run(ValidatorKind::kExact, 0.0);
    row.optimal = run(ValidatorKind::kOptimal, 0.0);
    row.iterative = run(ValidatorKind::kIterative, IterativeBudget());
    std::printf("%10lld  %12s %6lld | %12s %6lld | %12s %6lld",
                static_cast<long long>(row.rows),
                TimeCell(row.exact).c_str(),
                static_cast<long long>(row.exact.ocs),
                TimeCell(row.optimal).c_str(),
                static_cast<long long>(row.optimal.ocs),
                TimeCell(row.iterative).c_str(),
                static_cast<long long>(row.iterative.ocs));
    if (targets) {
      std::printf(" | %5lld %5lld",
                  static_cast<long long>(row.optimal.fds),
                  static_cast<long long>(row.optimal.afds));
    }
    std::printf("\n");
    series.rows.push_back(std::move(row));
  }
  return series;
}

void WriteRunJson(FILE* f, const char* key, const RunResult& r,
                  const char* trailer) {
  std::fprintf(f,
               "        \"%s\": {\"seconds\": %.6f, \"timed_out\": %s, "
               "\"ocs\": %lld, \"ofds\": %lld, \"fds\": %lld, "
               "\"afds\": %lld}%s\n",
               key, r.seconds, r.timed_out ? "true" : "false",
               static_cast<long long>(r.ocs),
               static_cast<long long>(r.ofds),
               static_cast<long long>(r.fds),
               static_cast<long long>(r.afds), trailer);
}

int WriteJson(const char* path, const std::vector<DatasetSeries>& all,
              DependencyKindSet kinds) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"exp1_scalability_tuples\",\n");
  std::fprintf(f, "  \"kinds\": \"%s\",\n", kinds.ToString().c_str());
  std::fprintf(f, "  \"scale\": %.4f,\n  \"datasets\": [\n", Scale());
  for (size_t d = 0; d < all.size(); ++d) {
    const DatasetSeries& series = all[d];
    std::fprintf(f, "    {\"name\": \"%s\", \"points\": [\n",
                 series.name.c_str());
    for (size_t i = 0; i < series.rows.size(); ++i) {
      const Row& row = series.rows[i];
      std::fprintf(f, "      {\"rows\": %lld,\n",
                   static_cast<long long>(row.rows));
      WriteRunJson(f, "od_exact", row.exact, ",");
      WriteRunJson(f, "aod_optimal", row.optimal, ",");
      WriteRunJson(f, "aod_iterative", row.iterative, "");
      std::fprintf(f, "      }%s\n", i + 1 < series.rows.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", d + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nJSON written to %s\n", path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace aod

int main(int argc, char** argv) {
  using namespace aod::bench;
  const char* json_path = JsonPathArg(argc, argv);
  const aod::DependencyKindSet kinds = KindsArg(argc, argv);
  PrintHeaderLine("Exp-1 / Figure 2: scalability in the number of tuples");
  std::printf("scale=%.2f (paper sizes ~ scale 40), iterative budget=%.0fs"
              " (paper cap: 24h)\n",
              Scale(), IterativeBudget());
  PrintNote("paper reference (flight, seconds): OD 209..1989, AOD(opt)"
            " 228..2379, AOD(iter) 72832..1820800 (projected)");
  PrintNote("paper reference (ncvoter, seconds): OD 141..29249, AOD(opt)"
            " 123..19020, AOD(iter) >24h beyond 100K");

  std::vector<DatasetSeries> all;
  all.push_back(RunDataset("flight", /*flight=*/true,
                           {5000, 10000, 15000, 20000, 25000}, kinds));
  all.push_back(RunDataset("ncvoter", /*flight=*/false,
                           {2500, 10000, 20000, 30000, 40000, 50000},
                           kinds));

  PrintNote("\n'*' marks runs that exceeded the time budget (reported time"
            " is the elapsed time at abort; results partial).");
  if (json_path != nullptr) return WriteJson(json_path, all, kinds);
  return 0;
}
