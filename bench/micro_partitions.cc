// Microbenchmark of the partition hot paths: CSR stripped product vs the
// legacy vector-of-vectors representation, plus validator throughput on
// generated tables.
//
// The legacy algorithm (one heap-allocated bucket per class, a fresh
// vector-of-vectors per product) is reimplemented here verbatim as the
// baseline, so the CSR speedup is *recorded by this harness* instead of
// asserted in a commit message. Output is human-readable on stdout and,
// with --json <path>, a machine-readable JSON blob (CI uploads it as
// BENCH_micro_partitions.json).
//
// Defaults target a 1M-row table; AOD_BENCH_SCALE scales rows like every
// other harness (CI smoke-runs at a fraction of that).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "data/encoder.h"
#include "gen/dataset_generator.h"
#include "od/aoc_lis_validator.h"
#include "od/oc_validator.h"
#include "od/ofd_validator.h"
#include "od/validator_scratch.h"
#include "partition/attribute_set.h"
#include "partition/partition_cache.h"
#include "partition/stripped_partition.h"

namespace aod {
namespace bench {
namespace {

/// The pre-CSR representation and product, kept verbatim as the baseline.
struct LegacyPartition {
  std::vector<std::vector<int32_t>> classes;
  int64_t rows_covered = 0;

  static LegacyPartition FromCsr(const StrippedPartition& p) {
    LegacyPartition out;
    out.rows_covered = p.rows_covered();
    for (StrippedPartition::ClassSpan cls : p.classes()) {
      out.classes.emplace_back(cls.begin(), cls.end());
    }
    return out;
  }

  LegacyPartition Product(const LegacyPartition& other,
                          std::vector<int32_t>& class_of) const {
    for (size_t i = 0; i < classes.size(); ++i) {
      for (int32_t t : classes[i]) {
        class_of[static_cast<size_t>(t)] = static_cast<int32_t>(i);
      }
    }
    LegacyPartition out;
    std::vector<std::vector<int32_t>> buckets(classes.size());
    for (const auto& cls : other.classes) {
      for (int32_t t : cls) {
        int32_t c = class_of[static_cast<size_t>(t)];
        if (c >= 0) buckets[static_cast<size_t>(c)].push_back(t);
      }
      for (int32_t t : cls) {
        int32_t c = class_of[static_cast<size_t>(t)];
        if (c < 0) continue;
        auto& bucket = buckets[static_cast<size_t>(c)];
        if (bucket.size() >= 2) {
          out.rows_covered += static_cast<int64_t>(bucket.size());
          out.classes.push_back(std::move(bucket));
        }
        bucket.clear();
      }
    }
    for (const auto& cls : classes) {
      for (int32_t t : cls) class_of[static_cast<size_t>(t)] = -1;
    }
    return out;
  }
};

/// Runs `fn` until >= min_reps and >= min_seconds; returns seconds/rep.
template <typename Fn>
double TimePerRep(int min_reps, double min_seconds, Fn&& fn) {
  Stopwatch sw;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while (reps < min_reps || sw.ElapsedSeconds() < min_seconds);
  return sw.ElapsedSeconds() / static_cast<double>(reps);
}

struct ProductResult {
  std::string name;
  int64_t out_classes = 0;
  double csr_seconds = 0.0;
  double legacy_seconds = 0.0;
  double speedup() const {
    return csr_seconds > 0.0 ? legacy_seconds / csr_seconds : 0.0;
  }
};

ProductResult BenchProduct(const char* name, const EncodedTable& t,
                           int64_t rows) {
  ProductResult r;
  r.name = name;
  auto px = StrippedPartition::FromColumn(t.column(0));
  auto py = StrippedPartition::FromColumn(t.column(1));
  PartitionScratch scratch(rows);
  r.out_classes = px.Product(py, rows, &scratch).num_classes();

  r.csr_seconds = TimePerRep(3, 0.3, [&] {
    StrippedPartition prod = px.Product(py, rows, &scratch);
    if (prod.rows_covered() < 0) std::abort();  // keep the result alive
  });

  LegacyPartition lx = LegacyPartition::FromCsr(px);
  LegacyPartition ly = LegacyPartition::FromCsr(py);
  std::vector<int32_t> class_of(static_cast<size_t>(rows), -1);
  r.legacy_seconds = TimePerRep(3, 0.3, [&] {
    LegacyPartition prod = lx.Product(ly, class_of);
    if (prod.rows_covered < 0) std::abort();
  });
  return r;
}

struct ValidationResult {
  std::string name;
  double seconds = 0.0;  // per validation call over the whole partition
};

struct DerivationResult {
  std::string name;
  AttributeSet planner_base;
  double fixed_seconds = 0.0;
  double planner_seconds = 0.0;
  double speedup() const {
    return planner_seconds > 0.0 ? fixed_seconds / planner_seconds : 0.0;
  }
};

/// Planner vs fixed rule on a skewed-cardinality workload: two
/// near-distinct attributes (cheap, almost all singleton classes) and one
/// low-cardinality attribute at the highest index (expensive, covers
/// every row). Mid-discovery cache state: all pairs published. The fixed
/// rule must derive Π_{s1,s2,k} as Π_{s1,s2} · Π_k — scanning the
/// expensive single — while the planner starts from a published pair
/// that already contains k and extends it with a near-singleton single.
DerivationResult BenchDerivation(const EncodedTable& t, int64_t rows) {
  DerivationResult r;
  r.name = "skewed_cardinality";
  const AttributeSet target = AttributeSet::Of({0, 1, 2});

  PartitionCache cache(&t);
  for (uint64_t bits : {0b011u, 0b101u, 0b110u}) {
    cache.PublishCost(AttributeSet(bits));
  }
  DerivationPlan plan = cache.PlanDerivation(target);
  r.planner_base = plan.base;

  auto base_fixed = cache.Get(AttributeSet::Of({0, 1}));
  auto base_planned = cache.Get(plan.base);
  std::vector<std::shared_ptr<const StrippedPartition>> singles;
  for (int a = 0; a < 3; ++a) singles.push_back(cache.Get(AttributeSet().With(a)));
  PartitionScratch scratch(rows);

  r.fixed_seconds = TimePerRep(3, 0.3, [&] {
    StrippedPartition prod = base_fixed->Product(*singles[2], rows, &scratch);
    if (prod.rows_covered() < 0) std::abort();
  });
  r.planner_seconds = TimePerRep(3, 0.3, [&] {
    std::shared_ptr<const StrippedPartition> cur = base_planned;
    for (int a : plan.singles) {
      cur = std::make_shared<StrippedPartition>(
          cur->Product(*singles[static_cast<size_t>(a)], rows, &scratch));
    }
    if (cur->rows_covered() < 0) std::abort();
  });
  return r;
}

}  // namespace
}  // namespace bench
}  // namespace aod

int main(int argc, char** argv) {
  using namespace aod;
  using namespace aod::bench;

  const char* json_path = JsonPathArg(argc, argv);
  int64_t base_rows = 1000000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0) base_rows = std::atoll(argv[i + 1]);
  }
  const int64_t rows = ScaledRows(base_rows);

  PrintHeaderLine("micro_partitions: CSR product and validator throughput");
  std::printf("rows: %lld (base %lld x AOD_BENCH_SCALE)\n",
              static_cast<long long>(rows), static_cast<long long>(base_rows));

  // -- Partition product: CSR vs legacy vector-of-vectors ----------------
  // mid: dense classes (128x128 grid, large surviving buckets);
  // fine: 4096x4096 (many small buckets — allocation-bound for legacy);
  // singleton: high-cardinality product output is almost all singletons.
  std::vector<ProductResult> products;
  {
    Table raw = GenerateTable(
        {{.name = "x", .kind = ColumnKind::kUniformInt, .cardinality = 128},
         {.name = "y", .kind = ColumnKind::kUniformInt, .cardinality = 128}},
        rows, 6);
    products.push_back(BenchProduct("mid_cardinality", EncodeTable(raw), rows));
  }
  {
    Table raw = GenerateTable(
        {{.name = "x", .kind = ColumnKind::kUniformInt, .cardinality = 4096},
         {.name = "y", .kind = ColumnKind::kUniformInt, .cardinality = 4096}},
        rows, 7);
    products.push_back(BenchProduct("fine_cardinality", EncodeTable(raw),
                                    rows));
  }
  {
    Table raw = GenerateTable(
        {{.name = "x", .kind = ColumnKind::kUniformInt,
          .cardinality = rows / 2 < 2 ? 2 : rows / 2},
         {.name = "y", .kind = ColumnKind::kUniformInt, .cardinality = 64}},
        rows, 8);
    products.push_back(BenchProduct("singleton_heavy", EncodeTable(raw),
                                    rows));
  }

  std::printf("\n%-18s %12s %12s %12s %9s\n", "product", "classes",
              "csr s/rep", "legacy s/rep", "speedup");
  for (const ProductResult& r : products) {
    std::printf("%-18s %12lld %12.5f %12.5f %8.2fx\n", r.name.c_str(),
                static_cast<long long>(r.out_classes), r.csr_seconds,
                r.legacy_seconds, r.speedup());
  }

  // -- Derivation planner vs fixed rule ---------------------------------
  // s1/s2 near-distinct (cheap), k low-cardinality at the highest index
  // (the fixed rule's mandatory single).
  DerivationResult derivation = [&] {
    Table raw = GenerateTable(
        {{.name = "s1", .kind = ColumnKind::kUniformInt,
          .cardinality = 32 * rows},
         {.name = "s2", .kind = ColumnKind::kUniformInt,
          .cardinality = 32 * rows},
         {.name = "k", .kind = ColumnKind::kUniformInt, .cardinality = 4}},
        rows, 10);
    return BenchDerivation(EncodeTable(raw), rows);
  }();
  std::printf("\n%-18s %16s %14s %14s %9s\n", "derivation", "planner base",
              "fixed s/rep", "planner s/rep", "speedup");
  std::printf("%-18s %16s %14.5f %14.5f %8.2fx\n", derivation.name.c_str(),
              derivation.planner_base.ToString().c_str(),
              derivation.fixed_seconds, derivation.planner_seconds,
              derivation.speedup());

  // -- Validator throughput on a realistic context ----------------------
  // ctx (cardinality 256) is the context partition; a ~ b is an OC with a
  // known violation rate, so the exact validator exercises its early exit
  // and the LIS validator does full work.
  Table raw = GenerateTable(
      {{.name = "ctx", .kind = ColumnKind::kUniformInt, .cardinality = 256},
       {.name = "a", .kind = ColumnKind::kUniformInt,
        .cardinality = 1 << 20},
       {.name = "b", .kind = ColumnKind::kMonotoneWithErrors,
        .base_column = 1, .violation_rate = 0.05},
       {.name = "c", .kind = ColumnKind::kUniformInt, .cardinality = 16}},
      rows, 9);
  EncodedTable vt = EncodeTable(raw);
  auto ctx = StrippedPartition::FromColumn(vt.column(0));
  ValidatorScratch vscratch;

  std::vector<ValidationResult> validations;
  validations.push_back(
      {"oc_exact", TimePerRep(3, 0.3, [&] {
         bool ok = ValidateOcExact(vt, ctx, 1, 2, false, &vscratch);
         if (ok && vt.num_rows() < 0) std::abort();
       })});
  validations.push_back(
      {"aoc_optimal_e10", TimePerRep(3, 0.3, [&] {
         ValidationOutcome out = ValidateAocOptimal(vt, ctx, 1, 2, 0.10,
                                                    vt.num_rows(), {},
                                                    &vscratch);
         if (out.removal_size < 0) std::abort();
       })});
  validations.push_back(
      {"ofd_approx_e10", TimePerRep(3, 0.3, [&] {
         ValidationOutcome out = ValidateOfdApprox(vt, ctx, 3, 0.10,
                                                   vt.num_rows(), {},
                                                   &vscratch);
         if (out.removal_size < 0) std::abort();
       })});

  std::printf("\n%-18s %12s %14s\n", "validator", "s/call", "Mrows/s");
  for (const ValidationResult& v : validations) {
    double mrows = v.seconds > 0.0
                       ? static_cast<double>(ctx.rows_covered()) /
                             v.seconds / 1e6
                       : 0.0;
    std::printf("%-18s %12.5f %14.2f\n", v.name.c_str(), v.seconds, mrows);
  }

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_partitions\",\n");
    std::fprintf(f, "  \"rows\": %lld,\n", static_cast<long long>(rows));
    std::fprintf(f, "  \"products\": [\n");
    for (size_t i = 0; i < products.size(); ++i) {
      const ProductResult& r = products[i];
      std::fprintf(f,
                   "    {\"case\": \"%s\", \"out_classes\": %lld, "
                   "\"csr_seconds\": %.6f, \"legacy_seconds\": %.6f, "
                   "\"speedup\": %.3f}%s\n",
                   r.name.c_str(), static_cast<long long>(r.out_classes),
                   r.csr_seconds, r.legacy_seconds, r.speedup(),
                   i + 1 < products.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"derivation\": {\"case\": \"%s\", "
                 "\"planner_base\": \"%s\", \"fixed_seconds\": %.6f, "
                 "\"planner_seconds\": %.6f, \"speedup\": %.3f},\n",
                 derivation.name.c_str(),
                 derivation.planner_base.ToString().c_str(),
                 derivation.fixed_seconds, derivation.planner_seconds,
                 derivation.speedup());
    std::fprintf(f, "  \"validations\": [\n");
    for (size_t i = 0; i < validations.size(); ++i) {
      const ValidationResult& v = validations[i];
      std::fprintf(f, "    {\"case\": \"%s\", \"seconds\": %.6f}%s\n",
                   v.name.c_str(), v.seconds,
                   i + 1 < validations.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nJSON written to %s\n", json_path);
  }
  return 0;
}
