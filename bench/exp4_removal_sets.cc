// Exp-4: removal-set quality of the iterative validator.
//
// Head-to-head of Alg. 1 vs Alg. 2 over every AOC candidate the lattice
// generates (context size <= 1) on both datasets:
//   - how much larger the greedy removal sets are on average (paper: ~1%),
//   - how many truly-valid AOCs the greedy overestimate rejects at the
//     threshold (paper: up to 2% missed),
//   - the flagship example: arrDelay ~ lateAircraftDelay with a true
//     factor ~9.5% that the iterative validator overestimates past the
//     10% threshold (paper: 10.5%).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/encoder.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"
#include "od/aoc_iterative_validator.h"
#include "od/aoc_lis_validator.h"
#include "partition/partition_cache.h"

namespace aod {
namespace bench {
namespace {

struct Comparison {
  int64_t candidates = 0;
  int64_t overestimated = 0;       // iterative removal > minimal removal
  double sum_overestimate_pct = 0;  // (iter - opt) / opt, opt > 0 only
  int64_t with_violations = 0;
  int64_t valid_at_eps = 0;         // truly valid (optimal)
  int64_t missed_at_eps = 0;        // valid but rejected by iterative
};

void RunDataset(const char* name, bool flight, double eps) {
  const int64_t rows = ScaledRows(8000);
  Table t = flight ? GenerateFlightTable(rows, 10, 42)
                   : GenerateNcVoterTable(rows, 10, 1729);
  EncodedTable enc = EncodeTable(t);
  PartitionCache cache(&enc);
  const int k = enc.num_columns();

  ValidatorOptions full;
  full.early_exit = false;

  Comparison cmp;
  // All canonical OC candidates with context size 0 or 1 — the lattice
  // levels where the approximation battle is decided (Exp-5).
  for (int ctx_attr = -1; ctx_attr < k; ++ctx_attr) {
    AttributeSet ctx =
        ctx_attr < 0 ? AttributeSet() : AttributeSet::Of({ctx_attr});
    auto partition = cache.Get(ctx);
    for (int a = 0; a < k; ++a) {
      for (int b = a + 1; b < k; ++b) {
        if (a == ctx_attr || b == ctx_attr) continue;
        ValidationOutcome optimal = ValidateAocOptimal(
            enc, *partition, a, b, 1.0, enc.num_rows(), full);
        ValidationOutcome iterative = ValidateAocIterative(
            enc, *partition, a, b, 1.0, enc.num_rows(), full);
        ++cmp.candidates;
        if (optimal.removal_size > 0) {
          ++cmp.with_violations;
          if (iterative.removal_size > optimal.removal_size) {
            ++cmp.overestimated;
          }
          cmp.sum_overestimate_pct +=
              100.0 *
              static_cast<double>(iterative.removal_size -
                                  optimal.removal_size) /
              static_cast<double>(optimal.removal_size);
        }
        int64_t max_rm = MaxRemovals(eps, enc.num_rows());
        bool truly_valid = optimal.removal_size <= max_rm;
        bool iter_valid = iterative.removal_size <= max_rm;
        if (truly_valid) {
          ++cmp.valid_at_eps;
          if (!iter_valid) ++cmp.missed_at_eps;
        }
      }
    }
  }

  std::printf("\n--- %s (%lld rows, contexts of size <= 1, eps = %.0f%%)"
              " ---\n",
              name, static_cast<long long>(rows), 100 * eps);
  std::printf("candidates compared:            %lld\n",
              static_cast<long long>(cmp.candidates));
  std::printf("candidates with violations:     %lld\n",
              static_cast<long long>(cmp.with_violations));
  std::printf("greedy removal set larger on:   %lld (%.1f%% of violating)\n",
              static_cast<long long>(cmp.overestimated),
              cmp.with_violations == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(cmp.overestimated) /
                        static_cast<double>(cmp.with_violations));
  std::printf("avg removal-set overestimate:   %.2f%%  (paper: ~1%%)\n",
              cmp.with_violations == 0
                  ? 0.0
                  : cmp.sum_overestimate_pct /
                        static_cast<double>(cmp.with_violations));
  std::printf("valid AOCs at eps:              %lld\n",
              static_cast<long long>(cmp.valid_at_eps));
  std::printf("missed by iterative validator:  %lld (%.1f%%, paper: up to"
              " 2%%)\n",
              static_cast<long long>(cmp.missed_at_eps),
              cmp.valid_at_eps == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(cmp.missed_at_eps) /
                        static_cast<double>(cmp.valid_at_eps));
}

void FlagshipExample() {
  const int64_t rows = ScaledRows(20000);
  Table t = GenerateFlightTable(rows, 10, 42);
  EncodedTable enc = EncodeTable(t);
  int a = enc.ColumnIndex("arrDelay");
  int b = enc.ColumnIndex("lateAircraftDelay");
  auto whole = StrippedPartition::WholeRelation(enc.num_rows());
  ValidatorOptions full;
  full.early_exit = false;
  ValidationOutcome optimal =
      ValidateAocOptimal(enc, whole, a, b, 1.0, enc.num_rows(), full);
  ValidationOutcome iterative =
      ValidateAocIterative(enc, whole, a, b, 1.0, enc.num_rows(), full);
  std::printf("\n--- flagship AOC: arrDelay ~ lateAircraftDelay (%lld rows)"
              " ---\n",
              static_cast<long long>(rows));
  std::printf("true factor (Alg. 2):      %.2f%%  (paper: 9.5%%)\n",
              100.0 * optimal.approx_factor);
  std::printf("greedy estimate (Alg. 1):  %.2f%%  (paper: 10.5%%)\n",
              100.0 * iterative.approx_factor);
  std::printf("at eps = 10%%: optimal %s, iterative %s\n",
              optimal.approx_factor <= 0.10 ? "ACCEPTS" : "rejects",
              iterative.approx_factor <= 0.10 ? "accepts" : "REJECTS");
}

}  // namespace
}  // namespace bench
}  // namespace aod

int main() {
  using namespace aod::bench;
  PrintHeaderLine("Exp-4: removal sets and AOCs missed by the iterative"
                  " validator");
  RunDataset("flight", /*flight=*/true, 0.10);
  RunDataset("ncvoter", /*flight=*/false, 0.10);
  FlagshipExample();
  return 0;
}
