// Exp-3 (paper Figure 4): the effect of the approximation threshold.
//
// 10K tuples; thresholds 0, 5, 10, 15, 20, 25, 30 percent. Expected
// shape (paper): AOD(optimal) is flat or *decreasing* in the threshold
// (better pruning at larger eps), while AOD(iterative) grows almost
// linearly with it — its inner loop removes up to eps*n tuples per
// candidate, each removal costing O(m). The harness also reports the
// share of runtime spent in OC validation, reproducing the paper's
// "up to 99.6% of total runtime" observation for the iterative
// validator versus a small share for the optimal one.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/encoder.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"

namespace aod {
namespace bench {
namespace {

void RunDataset(const char* name, bool flight) {
  const int64_t rows = ScaledRows(10000);
  std::printf("\n--- %s (%lld tuples, 10 attributes) ---\n", name,
              static_cast<long long>(rows));
  std::printf("%7s  %12s %6s %8s | %12s %6s %8s\n", "eps(%)", "AODopt(s)",
              "#AOC", "val%", "AODiter(s)", "#AOC", "val%");
  Table t = flight ? GenerateFlightTable(rows, 10, 42)
                   : GenerateNcVoterTable(rows, 10, 1729);
  EncodedTable enc = EncodeTable(t);
  for (int pct : {0, 5, 10, 15, 20, 25, 30}) {
    double eps = pct / 100.0;
    RunResult optimal = RunDiscovery(enc, ValidatorKind::kOptimal, eps);
    RunResult iterative =
        RunDiscovery(enc, ValidatorKind::kIterative, eps, IterativeBudget());
    std::printf("%7d  %12s %6lld %7.1f%% | %12s %6lld %7.1f%%\n", pct,
                TimeCell(optimal).c_str(),
                static_cast<long long>(optimal.ocs),
                100.0 * optimal.oc_validation_share,
                TimeCell(iterative).c_str(),
                static_cast<long long>(iterative.ocs),
                100.0 * iterative.oc_validation_share);
  }
}

}  // namespace
}  // namespace bench
}  // namespace aod

int main() {
  using namespace aod::bench;
  PrintHeaderLine("Exp-3 / Figure 4: effect of the approximation threshold");
  PrintNote("paper reference (flight, s): AOD(opt) 9.5 -> 3.9 as eps grows"
            " 0..30%; AOD(iter) 20.9 -> 231.0 (near-linear growth)");
  PrintNote("paper reference (ncvoter, s): AOD(opt) 10 -> 5; AOD(iter)"
            " 41 -> 425");
  PrintNote("paper: up to 99.6% of iterative runtime is AOC validation;"
            " the LIS validator cuts validation time by up to 99.8%.");

  RunDataset("flight", /*flight=*/true);
  RunDataset("ncvoter", /*flight=*/false);
  return 0;
}
