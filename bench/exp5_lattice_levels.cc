// Exp-5 (paper Figure 5): lattice level of discovered OCs vs AOCs, and
// the runtime advantage of approximate discovery.
//
// AOCs validate at lower lattice levels than exact OCs (approximation
// absorbs the exceptions that otherwise force a finer context), which
// lets the pruning rules fire earlier. The paper reports the average
// level dropping 5.6 -> 4.3 on ncvoter-5M-10, and total AOD discovery
// running up to 34% (rows experiment) / 76% (attrs experiment) faster
// than exact OD discovery. This harness prints the per-level histogram
// (Figure 5) and the OD-vs-AOD runtime ratio; with --json <path> it also
// writes the series as machine-readable JSON (CI uploads it as
// BENCH_exp5.json for the per-commit perf trajectory).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/encoder.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"

namespace aod {
namespace bench {
namespace {

struct DatasetResult {
  std::string name;
  int64_t rows = 0;
  int attrs = 0;
  RunResult exact;
  RunResult approx;
};

DatasetResult RunDataset(const char* name, bool flight, int64_t base_rows,
                         int attrs) {
  DatasetResult r;
  r.name = name;
  r.rows = ScaledRows(base_rows);
  r.attrs = attrs;
  Table t = flight ? GenerateFlightTable(r.rows, attrs, 42)
                   : GenerateNcVoterTable(r.rows, attrs, 1729);
  EncodedTable enc = EncodeTable(t);
  r.exact = RunDiscovery(enc, ValidatorKind::kExact, 0.10);
  r.approx = RunDiscovery(enc, ValidatorKind::kOptimal, 0.10);

  std::printf("\n--- %s (%lld rows, %d attributes, eps = 10%%) ---\n", name,
              static_cast<long long>(r.rows), attrs);
  std::printf("%7s  %8s  %8s\n", "level", "#OCs", "#AOCs");
  const auto& exact_levels = r.exact.full.stats.ocs_per_level;
  const auto& approx_levels = r.approx.full.stats.ocs_per_level;
  size_t max_level = std::max(exact_levels.size(), approx_levels.size());
  for (size_t level = 2; level < max_level; ++level) {
    int64_t e = level < exact_levels.size() ? exact_levels[level] : 0;
    int64_t a = level < approx_levels.size() ? approx_levels[level] : 0;
    std::printf("%7zu  %8lld  %8lld\n", level, static_cast<long long>(e),
                static_cast<long long>(a));
  }
  std::printf("average OC lattice level: exact %.2f -> approx %.2f"
              "  (paper: 5.6 -> 4.3 on ncvoter)\n",
              r.exact.avg_oc_level, r.approx.avg_oc_level);
  std::printf("runtime: OD %.3fs vs AOD(optimal) %.3fs  (AOD %+.0f%%)\n",
              r.exact.seconds, r.approx.seconds,
              100.0 * (r.approx.seconds - r.exact.seconds) /
                  (r.exact.seconds > 0 ? r.exact.seconds : 1.0));
  return r;
}

void WriteLevels(FILE* f, const char* key, const std::vector<int64_t>& levels,
                 const char* trailer) {
  std::fprintf(f, "      \"%s\": [", key);
  for (size_t i = 0; i < levels.size(); ++i) {
    std::fprintf(f, "%lld%s", static_cast<long long>(levels[i]),
                 i + 1 < levels.size() ? ", " : "");
  }
  std::fprintf(f, "]%s\n", trailer);
}

int WriteJson(const char* path, const std::vector<DatasetResult>& all) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"exp5_lattice_levels\",\n");
  std::fprintf(f, "  \"scale\": %.4f,\n  \"datasets\": [\n", Scale());
  for (size_t d = 0; d < all.size(); ++d) {
    const DatasetResult& r = all[d];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"rows\": %lld, \"attrs\": %d,\n",
                 r.name.c_str(), static_cast<long long>(r.rows), r.attrs);
    std::fprintf(f,
                 "      \"od_seconds\": %.6f, \"aod_seconds\": %.6f,\n"
                 "      \"avg_oc_level_exact\": %.4f, "
                 "\"avg_oc_level_approx\": %.4f,\n",
                 r.exact.seconds, r.approx.seconds, r.exact.avg_oc_level,
                 r.approx.avg_oc_level);
    WriteLevels(f, "ocs_per_level", r.exact.full.stats.ocs_per_level, ",");
    WriteLevels(f, "aocs_per_level", r.approx.full.stats.ocs_per_level, "");
    std::fprintf(f, "    }%s\n", d + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nJSON written to %s\n", path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace aod

int main(int argc, char** argv) {
  using namespace aod::bench;
  const char* json_path = JsonPathArg(argc, argv);
  PrintHeaderLine("Exp-5 / Figure 5: discovered OCs/AOCs per lattice level");
  PrintNote("paper reference (ncvoter-5M-10): AOCs concentrate at levels"
            " 2-5 while exact OCs spread to levels 6-7; avg level"
            " 5.6 -> 4.3; AOD up to 34%/76% faster than OD.");
  std::vector<DatasetResult> all;
  all.push_back(RunDataset("ncvoter", /*flight=*/false, 40000, 10));
  all.push_back(RunDataset("flight", /*flight=*/true, 20000, 10));
  // The attrs-style variant where pruning effects dominate (small rows,
  // many attributes).
  all.push_back(RunDataset("ncvoter-1K-20", /*flight=*/false, 1000, 20));
  if (json_path != nullptr) return WriteJson(json_path, all);
  return 0;
}
