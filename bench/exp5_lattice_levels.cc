// Exp-5 (paper Figure 5): lattice level of discovered OCs vs AOCs, and
// the runtime advantage of approximate discovery.
//
// AOCs validate at lower lattice levels than exact OCs (approximation
// absorbs the exceptions that otherwise force a finer context), which
// lets the pruning rules fire earlier. The paper reports the average
// level dropping 5.6 -> 4.3 on ncvoter-5M-10, and total AOD discovery
// running up to 34% (rows experiment) / 76% (attrs experiment) faster
// than exact OD discovery. This harness prints the per-level histogram
// (Figure 5) and the OD-vs-AOD runtime ratio.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "data/encoder.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"

namespace aod {
namespace bench {
namespace {

void RunDataset(const char* name, bool flight, int64_t base_rows,
                int attrs) {
  const int64_t rows = ScaledRows(base_rows);
  Table t = flight ? GenerateFlightTable(rows, attrs, 42)
                   : GenerateNcVoterTable(rows, attrs, 1729);
  EncodedTable enc = EncodeTable(t);
  RunResult exact = RunDiscovery(enc, ValidatorKind::kExact, 0.10);
  RunResult approx = RunDiscovery(enc, ValidatorKind::kOptimal, 0.10);

  std::printf("\n--- %s (%lld rows, %d attributes, eps = 10%%) ---\n", name,
              static_cast<long long>(rows), attrs);
  std::printf("%7s  %8s  %8s\n", "level", "#OCs", "#AOCs");
  const auto& exact_levels = exact.full.stats.ocs_per_level;
  const auto& approx_levels = approx.full.stats.ocs_per_level;
  size_t max_level = std::max(exact_levels.size(), approx_levels.size());
  for (size_t level = 2; level < max_level; ++level) {
    int64_t e = level < exact_levels.size() ? exact_levels[level] : 0;
    int64_t a = level < approx_levels.size() ? approx_levels[level] : 0;
    std::printf("%7zu  %8lld  %8lld\n", level, static_cast<long long>(e),
                static_cast<long long>(a));
  }
  std::printf("average OC lattice level: exact %.2f -> approx %.2f"
              "  (paper: 5.6 -> 4.3 on ncvoter)\n",
              exact.avg_oc_level, approx.avg_oc_level);
  std::printf("runtime: OD %.3fs vs AOD(optimal) %.3fs  (AOD %+.0f%%)\n",
              exact.seconds, approx.seconds,
              100.0 * (approx.seconds - exact.seconds) /
                  (exact.seconds > 0 ? exact.seconds : 1.0));
}

}  // namespace
}  // namespace bench
}  // namespace aod

int main() {
  using namespace aod::bench;
  PrintHeaderLine("Exp-5 / Figure 5: discovered OCs/AOCs per lattice level");
  PrintNote("paper reference (ncvoter-5M-10): AOCs concentrate at levels"
            " 2-5 while exact OCs spread to levels 6-7; avg level"
            " 5.6 -> 4.3; AOD up to 34%/76% faster than OD.");
  RunDataset("ncvoter", /*flight=*/false, 40000, 10);
  RunDataset("flight", /*flight=*/true, 20000, 10);
  // The attrs-style variant where pruning effects dominate (small rows,
  // many attributes).
  RunDataset("ncvoter-1K-20", /*flight=*/false, 1000, 20);
  return 0;
}
