// Exp-7 (this repo, beyond the paper): discovery scalability over worker
// threads.
//
// The paper's testbed is single-threaded Java; our execution subsystem
// (src/exec) schedules candidate validation and partition
// materialization on a persistent work-stealing pool. This harness
// measures wall-clock speedup of AOD (optimal) discovery against the
// 1-thread baseline on generated flight/ncvoter data — 100K rows and 10
// attributes at the default scale — for 1, 2, 4 and 8 workers, and
// cross-checks the determinism contract (identical dependency counts at
// every thread count). One pool per thread count is created up front and
// reused across datasets, exercising pool reuse through
// DiscoveryOptions::pool.
//
// Speedup is bounded by the machine: on N hardware threads, counts above
// N add scheduling overhead but no parallelism (the printed "hw" line
// tells you where that cliff is). The level-wise lattice also has a
// serial merge phase per level, so perfect linearity is not expected —
// Amdahl caps the curve at the validation + materialization share.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "data/encoder.h"
#include "exec/thread_pool.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"

namespace aod {
namespace bench {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

void RunDataset(const char* name, bool flight, int64_t base_rows,
                std::vector<std::unique_ptr<exec::ThreadPool>>& pools) {
  const int64_t rows = ScaledRows(base_rows);
  std::printf("\n--- %s (%lld rows, 10 attributes, eps = 10%%) ---\n", name,
              static_cast<long long>(rows));
  Table t = flight ? GenerateFlightTable(rows, 10, 42)
                   : GenerateNcVoterTable(rows, 10, 1729);
  EncodedTable enc = EncodeTable(t);

  std::printf("%8s %12s %9s %8s %8s %12s %12s\n", "threads", "wall(s)",
              "speedup", "#AOC", "#AOFD", "valid.wall", "part.wall");
  double baseline = 0.0;
  int64_t baseline_ocs = 0;
  int64_t baseline_ofds = 0;
  for (size_t i = 0; i < pools.size(); ++i) {
    DiscoveryOptions options;
    options.validator = ValidatorKind::kOptimal;
    options.epsilon = 0.10;
    if (pools[i] != nullptr) {
      options.pool = pools[i].get();
    } else {
      options.num_threads = 1;
    }
    RunResult r = RunDiscoveryWithOptions(enc, options);
    if (i == 0) {
      baseline = r.seconds;
      baseline_ocs = r.ocs;
      baseline_ofds = r.ofds;
    }
    const bool deterministic = r.ocs == baseline_ocs &&
                               r.ofds == baseline_ofds;
    std::printf("%8d %12.3f %8.2fx %8lld %8lld %12.3f %12.3f%s\n",
                kThreadCounts[i], r.seconds,
                r.seconds > 0 ? baseline / r.seconds : 0.0,
                static_cast<long long>(r.ocs),
                static_cast<long long>(r.ofds),
                r.full.stats.validation_wall_seconds,
                r.full.stats.partition_wall_seconds,
                deterministic ? "" : "  <-- DETERMINISM VIOLATION");
  }
}

}  // namespace
}  // namespace bench
}  // namespace aod

int main() {
  using namespace aod::bench;
  PrintHeaderLine("Exp-7: scalability in the number of worker threads");
  std::printf("scale=%.2f (default: 100K rows), hw=%d hardware threads\n",
              Scale(), aod::exec::ThreadPool::HardwareConcurrency());
  PrintNote("speedup is wall-clock vs the 1-thread run of the same table;"
            " counts must match at every thread count (determinism"
            " contract).");

  // One persistent pool per thread count, reused across both datasets —
  // workers are spawned once, never per call.
  std::vector<std::unique_ptr<aod::exec::ThreadPool>> pools;
  for (int threads : kThreadCounts) {
    pools.push_back(threads == 1
                        ? nullptr
                        : std::make_unique<aod::exec::ThreadPool>(threads));
  }

  RunDataset("flight", /*flight=*/true, 100000, pools);
  RunDataset("ncvoter", /*flight=*/false, 100000, pools);
  return 0;
}
