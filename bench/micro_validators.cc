// Google-benchmark microbenchmarks of the validation kernels.
//
// Reproduces the complexity analysis of paper Sec. 3.2/3.3 at the level
// of a single candidate: Alg. 2 (LIS) is O(m log m) in the class size m,
// Alg. 1 (iterative) is O(m log m + eps * m^2). Also covers the
// supporting kernels (LNDS, inversion counting, partition product) and
// the ablation called out in DESIGN.md: Fenwick-based per-element
// inversion counting vs plain merge-sort total counting.
#include <benchmark/benchmark.h>

#include <vector>

#include "algo/inversions.h"
#include "algo/lnds.h"
#include "data/encoder.h"
#include "gen/dataset_generator.h"
#include "gen/random.h"
#include "od/aoc_iterative_validator.h"
#include "od/aoc_lis_validator.h"
#include "od/fd_validator.h"
#include "od/oc_validator.h"
#include "od/ofd_validator.h"
#include "partition/stripped_partition.h"

namespace aod {
namespace {

/// One big class (empty context) over a pair with ~8% violations: the
/// worst case for both validators and the setting of Figure 2.
EncodedTable MakePairTable(int64_t rows) {
  Table t = GenerateTable(
      {{.name = "a", .kind = ColumnKind::kUniformInt, .cardinality = 1 << 20},
       {.name = "b", .kind = ColumnKind::kMonotoneWithErrors,
        .base_column = 0, .violation_rate = 0.08}},
      rows, 42);
  return EncodeTable(t);
}

std::vector<int32_t> RandomSequence(int64_t n, int64_t cardinality,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int32_t>(rng.UniformInt(0, cardinality - 1)));
  }
  return out;
}

void BM_LndsLength(benchmark::State& state) {
  auto xs = RandomSequence(state.range(0), 1 << 20, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LndsLength(xs));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LndsLength)->Range(1 << 10, 1 << 17)->Complexity();

void BM_LndsIndices(benchmark::State& state) {
  auto xs = RandomSequence(state.range(0), 1 << 20, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LndsIndices(xs));
  }
}
BENCHMARK(BM_LndsIndices)->Range(1 << 10, 1 << 17);

void BM_CountInversionsMergeSort(benchmark::State& state) {
  auto xs = RandomSequence(state.range(0), 1 << 20, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountInversions(xs));
  }
}
BENCHMARK(BM_CountInversionsMergeSort)->Range(1 << 10, 1 << 17);

// Ablation: Fenwick-based per-element counting costs ~2x the merge-sort
// total count but yields the per-tuple counts Alg. 1 needs.
void BM_PerElementInversionsFenwick(benchmark::State& state) {
  auto xs = RandomSequence(state.range(0), 1 << 20, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PerElementInversions(xs));
  }
}
BENCHMARK(BM_PerElementInversionsFenwick)->Range(1 << 10, 1 << 17);

void BM_ValidateAocOptimal(benchmark::State& state) {
  EncodedTable t = MakePairTable(state.range(0));
  auto whole = StrippedPartition::WholeRelation(t.num_rows());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValidateAocOptimal(t, whole, 0, 1, 0.10, t.num_rows()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ValidateAocOptimal)->Range(1 << 10, 1 << 16)->Complexity();

void BM_ValidateAocIterative(benchmark::State& state) {
  EncodedTable t = MakePairTable(state.range(0));
  auto whole = StrippedPartition::WholeRelation(t.num_rows());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValidateAocIterative(t, whole, 0, 1, 0.10, t.num_rows()));
  }
  state.SetComplexityN(state.range(0));
}
// Quadratic: cap the range two steps earlier than the optimal validator.
BENCHMARK(BM_ValidateAocIterative)->Range(1 << 10, 1 << 14)->Complexity();

void BM_ValidateOcExact(benchmark::State& state) {
  EncodedTable t = MakePairTable(state.range(0));
  auto whole = StrippedPartition::WholeRelation(t.num_rows());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValidateOcExact(t, whole, 0, 1));
  }
}
BENCHMARK(BM_ValidateOcExact)->Range(1 << 10, 1 << 16);

void BM_ValidateOfdApprox(benchmark::State& state) {
  Table raw = GenerateTable(
      {{.name = "ctx", .kind = ColumnKind::kUniformInt, .cardinality = 64},
       {.name = "a", .kind = ColumnKind::kUniformInt, .cardinality = 16}},
      state.range(0), 5);
  EncodedTable t = EncodeTable(raw);
  auto partition = StrippedPartition::FromColumn(t.column(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValidateOfdApprox(t, partition, 1, 0.10, t.num_rows()));
  }
}
BENCHMARK(BM_ValidateOfdApprox)->Range(1 << 10, 1 << 17);

// The target is functionally determined by the context, so the holding
// case is measured: the refinement test must walk every class to the
// end instead of bailing at the first split.
void BM_ValidateFdExact(benchmark::State& state) {
  Table raw = GenerateTable(
      {{.name = "ctx", .kind = ColumnKind::kUniformInt, .cardinality = 64},
       {.name = "a", .kind = ColumnKind::kDerivedPermuted,
        .cardinality = 64, .base_column = 0}},
      state.range(0), 5);
  EncodedTable t = EncodeTable(raw);
  auto partition = StrippedPartition::FromColumn(t.column(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValidateFdExact(t, partition, 1));
  }
}
BENCHMARK(BM_ValidateFdExact)->Range(1 << 10, 1 << 17);

// The g1 frequency pass over every context class: one histogram per
// class, violations = |c|^2 - sum cnt^2. Same workload shape as the
// OFD row so the two approximate target validators are comparable.
void BM_ValidateAfdG1(benchmark::State& state) {
  Table raw = GenerateTable(
      {{.name = "ctx", .kind = ColumnKind::kUniformInt, .cardinality = 64},
       {.name = "a", .kind = ColumnKind::kUniformInt, .cardinality = 16}},
      state.range(0), 5);
  EncodedTable t = EncodeTable(raw);
  auto partition = StrippedPartition::FromColumn(t.column(0));
  ValidatorOptions options;
  options.early_exit = false;  // measure the full pass, not the bail-out
  ValidatorScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValidateAfdG1(t, partition, 1, 0.10, t.num_rows(), options,
                      &scratch));
  }
}
BENCHMARK(BM_ValidateAfdG1)->Range(1 << 10, 1 << 17);

void BM_PartitionProduct(benchmark::State& state) {
  Table raw = GenerateTable(
      {{.name = "x", .kind = ColumnKind::kUniformInt, .cardinality = 128},
       {.name = "y", .kind = ColumnKind::kUniformInt, .cardinality = 128}},
      state.range(0), 6);
  EncodedTable t = EncodeTable(raw);
  auto px = StrippedPartition::FromColumn(t.column(0));
  auto py = StrippedPartition::FromColumn(t.column(1));
  PartitionScratch scratch(t.num_rows());
  for (auto _ : state) {
    benchmark::DoNotOptimize(px.Product(py, t.num_rows(), &scratch));
  }
}
BENCHMARK(BM_PartitionProduct)->Range(1 << 10, 1 << 17);

void BM_EncodeColumn(benchmark::State& state) {
  Table raw = GenerateTable(
      {{.name = "v", .kind = ColumnKind::kUniformInt,
        .cardinality = 1 << 16}},
      state.range(0), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeColumn(raw.column(0)));
  }
}
BENCHMARK(BM_EncodeColumn)->Range(1 << 10, 1 << 17);

}  // namespace
}  // namespace aod

BENCHMARK_MAIN();
