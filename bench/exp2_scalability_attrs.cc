// Exp-2 (paper Figure 3): discovery runtime vs number of attributes.
//
// 1K tuples (paper's choice "to allow experiments with a large number of
// attributes in reasonable time"); attributes swept in multiples of five:
// flight 5..35, ncvoter 5..30; threshold 10%. Expected shape: exponential
// growth in the attribute count (the paper plots log-scale y), with
// AOD(optimal) within a small factor of OD and AOD(iterative) roughly an
// order of magnitude slower — less dramatic than Exp-1 because classes
// are small at 1K rows.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/encoder.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"

namespace aod {
namespace bench {
namespace {

void RunDataset(const char* name, bool flight, int max_attrs) {
  std::printf("\n--- %s (1K tuples, eps = 10%%) ---\n", name);
  std::printf("%6s  %12s %6s | %12s %6s | %12s %6s\n", "attrs", "OD(ms)",
              "#OC", "AODopt(ms)", "#AOC", "AODiter(ms)", "#AOC");
  const int64_t rows = ScaledRows(1000);
  for (int attrs = 5; attrs <= max_attrs; attrs += 5) {
    Table t = flight ? GenerateFlightTable(rows, attrs, 42)
                     : GenerateNcVoterTable(rows, attrs, 1729);
    EncodedTable enc = EncodeTable(t);
    RunResult exact = RunDiscovery(enc, ValidatorKind::kExact, 0.10);
    RunResult optimal = RunDiscovery(enc, ValidatorKind::kOptimal, 0.10);
    RunResult iterative = RunDiscovery(enc, ValidatorKind::kIterative, 0.10,
                                       IterativeBudget());
    auto ms = [](const RunResult& r) {
      char buf[32];
      if (r.timed_out) {
        std::snprintf(buf, sizeof(buf), ">%.0f*", r.seconds * 1e3);
      } else {
        std::snprintf(buf, sizeof(buf), "%.1f", r.seconds * 1e3);
      }
      return std::string(buf);
    };
    std::printf("%6d  %12s %6lld | %12s %6lld | %12s %6lld\n", attrs,
                ms(exact).c_str(), static_cast<long long>(exact.ocs),
                ms(optimal).c_str(), static_cast<long long>(optimal.ocs),
                ms(iterative).c_str(),
                static_cast<long long>(iterative.ocs));
  }
}

}  // namespace
}  // namespace bench
}  // namespace aod

int main() {
  using namespace aod::bench;
  PrintHeaderLine(
      "Exp-2 / Figure 3: scalability in the number of attributes");
  PrintNote("paper reference (flight, ms): OD 0..221460, AOD(opt) 0..115949,"
            " AOD(iter) 0..115774 across 5..35 attrs (log-scale growth)");
  PrintNote("paper reference (ncvoter, ms): OD 0..675676, AOD(opt)"
            " 5..1398967 across 5..30 attrs");

  RunDataset("flight", /*flight=*/true, 35);
  RunDataset("ncvoter", /*flight=*/false, 30);
  return 0;
}
