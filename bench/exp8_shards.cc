// Exp-8 (this repo, beyond the paper): sharded discovery over the CSR
// wire format.
//
// The sharding subsystem (src/shard/) splits each level's candidate
// space across N in-process shard runners; base partitions ship out and
// validation results ship back in the versioned, checksummed wire
// format, and the deterministic key-ordered merge reduces the shard
// outputs. This harness measures AOD (optimal) discovery wall clock for
// num_shards ∈ {1, 2, 4, 8} against the unsharded baseline on generated
// flight/ncvoter data, reports the wire volume (bytes shipped per run),
// and cross-checks the determinism contract (identical dependency counts
// at every shard count).
//
// Each shard count runs over two transports: the in-process queue makes
// the wire overhead — serialization, checksumming, per-batch framing —
// directly observable without network noise (the gap between the
// unsharded and 1-shard inproc lines is exactly the price of the seam),
// and the localhost TCP socket adds the kernel byte-stream on top (the
// inproc-vs-socket gap is the price of going off-box before any real
// network latency). With --json <path> the series is written as
// machine-readable JSON (CI uploads it as BENCH_exp8.json).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/encoder.h"
#include "exec/thread_pool.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"

namespace aod {
namespace bench {
namespace {

constexpr int kShardCounts[] = {0, 1, 2, 4, 8};  // 0 = unsharded baseline
constexpr ShardTransport kTransports[] = {ShardTransport::kInProcess,
                                          ShardTransport::kSocket};

struct ShardPoint {
  int shards = 0;
  ShardTransport transport = ShardTransport::kInProcess;
  bool compression = true;
  RunResult run;
  int64_t bytes_shipped = 0;
  int64_t bytes_raw = 0;
  int64_t bytes_wire = 0;
};

/// One row-space sharding run: the base-partition build is distributed
/// over row ranges (num_shards stays 0 — the traversal itself runs
/// unsharded), so the interesting series is the wire volume per shard,
/// which must shrink as O(table/row_shards).
struct RowShardPoint {
  int row_shards = 0;
  ShardTransport transport = ShardTransport::kInProcess;
  bool compression = true;
  RunResult run;
  int64_t bytes_shipped = 0;
  int64_t bytes_raw = 0;
  int64_t bytes_wire = 0;
  std::vector<int64_t> bytes_per_shard;
};

struct DatasetSeries {
  std::string name;
  int64_t rows = 0;
  std::vector<ShardPoint> points;
  std::vector<RowShardPoint> row_points;
};

DatasetSeries RunDataset(const char* name, bool flight, int64_t base_rows,
                         exec::ThreadPool* pool) {
  DatasetSeries series;
  series.name = name;
  series.rows = ScaledRows(base_rows);
  std::printf("\n--- %s (%lld rows, 10 attributes, eps = 10%%, %d worker"
              " threads) ---\n",
              name, static_cast<long long>(series.rows), pool->num_workers());
  Table t = flight ? GenerateFlightTable(series.rows, 10, 42)
                   : GenerateNcVoterTable(series.rows, 10, 1729);
  EncodedTable enc = EncodeTable(t);

  std::printf("%16s %12s %9s %8s %8s %11s %10s %7s %12s\n",
              "shards/transport", "wall(s)", "vs base", "#AOC", "#AOFD",
              "wire(MiB)", "raw(MiB)", "ratio", "merge.wall");
  double baseline = 0.0;
  int64_t baseline_ocs = -1;
  int64_t baseline_ofds = -1;
  for (int shards : kShardCounts) {
    for (ShardTransport transport : kTransports) {
      if (shards == 0 && transport != ShardTransport::kInProcess) {
        continue;  // the unsharded baseline has no transport dimension
      }
      // The compression-off row at 4 shards isolates the codec's
      // contribution: same frames, raw bodies — the wire(MiB) delta and
      // the wall-clock delta against the compressed 4-shard row are the
      // bytes saved and the (de)coding CPU spent.
      for (bool compression : {true, false}) {
        if (!compression && shards != 4) continue;
        DiscoveryOptions options;
        options.validator = ValidatorKind::kOptimal;
        options.epsilon = 0.10;
        options.pool = pool;
        options.num_shards = shards;
        options.shard_transport = transport;
        options.shard_wire_compression = compression;
        ShardPoint point;
        point.shards = shards;
        point.transport = transport;
        point.compression = compression;
        point.run = RunDiscoveryWithOptions(enc, options);
        point.bytes_shipped = point.run.full.stats.shard_bytes_shipped;
        point.bytes_raw = point.run.full.stats.shard_bytes_raw;
        point.bytes_wire = point.run.full.stats.shard_bytes_wire;
        if (shards == 0) {
          baseline = point.run.seconds;
          baseline_ocs = point.run.ocs;
          baseline_ofds = point.run.ofds;
        }
        const bool deterministic = point.run.ocs == baseline_ocs &&
                                   point.run.ofds == baseline_ofds &&
                                   point.run.full.shard_status.ok();
        char label[28];
        if (shards == 0) {
          std::snprintf(label, sizeof(label), "unsharded");
        } else {
          std::snprintf(label, sizeof(label), "%d/%s%s", shards,
                        ShardTransportToString(transport),
                        compression ? "" : "-raw");
        }
        std::printf(
            "%16s %12.3f %8.2fx %8lld %8lld %11.2f %10.2f %6.2fx %12.3f%s\n",
            label, point.run.seconds,
            point.run.seconds > 0 ? baseline / point.run.seconds : 0.0,
            static_cast<long long>(point.run.ocs),
            static_cast<long long>(point.run.ofds),
            static_cast<double>(point.bytes_wire) / (1 << 20),
            static_cast<double>(point.bytes_raw) / (1 << 20),
            point.bytes_wire > 0 ? static_cast<double>(point.bytes_raw) /
                                       static_cast<double>(point.bytes_wire)
                                 : 0.0,
            point.run.full.stats.merge_wall_seconds,
            deterministic ? "" : "  <-- DETERMINISM VIOLATION");
        series.points.push_back(std::move(point));
      }
    }
  }

  // Row-space sharding: the base-partition build fans out over
  // contiguous row ranges and the class-stitching reducer reassembles
  // canonical partitions; the traversal then runs unsharded. Per-shard
  // wire volume is the headline: each shard receives only its own row
  // slice, so max(bytes/shard) must fall as O(table/row_shards).
  std::printf("\n%16s %12s %9s %8s %8s %11s %10s %13s\n",
              "row-shards/trans", "wall(s)", "vs base", "#AOC", "#AOFD",
              "wire(MiB)", "raw(MiB)", "max/shard(MiB)");
  for (int row_shards : {1, 2, 4, 8}) {
    for (ShardTransport transport : kTransports) {
      for (bool compression : {true, false}) {
        if (!compression && row_shards != 4) continue;
        DiscoveryOptions options;
        options.validator = ValidatorKind::kOptimal;
        options.epsilon = 0.10;
        options.pool = pool;
        options.row_shards = row_shards;
        options.shard_transport = transport;
        options.shard_wire_compression = compression;
        RowShardPoint point;
        point.row_shards = row_shards;
        point.transport = transport;
        point.compression = compression;
        point.run = RunDiscoveryWithOptions(enc, options);
        point.bytes_shipped = point.run.full.stats.row_shard_bytes_shipped;
        point.bytes_raw = point.run.full.stats.row_shard_bytes_raw;
        point.bytes_wire = point.run.full.stats.row_shard_bytes_wire;
        point.bytes_per_shard =
            point.run.full.stats.row_shard_bytes_per_shard;
        int64_t max_shard = 0;
        for (int64_t b : point.bytes_per_shard) {
          if (b > max_shard) max_shard = b;
        }
        const bool deterministic = point.run.ocs == baseline_ocs &&
                                   point.run.ofds == baseline_ofds &&
                                   point.run.full.shard_status.ok();
        char label[28];
        std::snprintf(label, sizeof(label), "%d/%s%s", row_shards,
                      ShardTransportToString(transport),
                      compression ? "" : "-raw");
        std::printf(
            "%16s %12.3f %8.2fx %8lld %8lld %11.2f %10.2f %13.2f%s\n",
            label, point.run.seconds,
            point.run.seconds > 0 ? baseline / point.run.seconds : 0.0,
            static_cast<long long>(point.run.ocs),
            static_cast<long long>(point.run.ofds),
            static_cast<double>(point.bytes_wire) / (1 << 20),
            static_cast<double>(point.bytes_raw) / (1 << 20),
            static_cast<double>(max_shard) / (1 << 20),
            deterministic ? "" : "  <-- DETERMINISM VIOLATION");
        series.row_points.push_back(std::move(point));
      }
    }
  }
  return series;
}

int WriteJson(const char* path, const std::vector<DatasetSeries>& all,
              int threads) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"exp8_shards\",\n");
  std::fprintf(f, "  \"scale\": %.4f,\n  \"threads\": %d,\n", Scale(),
               threads);
  std::fprintf(f, "  \"datasets\": [\n");
  for (size_t d = 0; d < all.size(); ++d) {
    const DatasetSeries& series = all[d];
    std::fprintf(f, "    {\"name\": \"%s\", \"rows\": %lld, \"points\": [\n",
                 series.name.c_str(), static_cast<long long>(series.rows));
    for (size_t i = 0; i < series.points.size(); ++i) {
      const ShardPoint& p = series.points[i];
      std::fprintf(
          f,
          "      {\"shards\": %d, \"transport\": \"%s\", "
          "\"compression\": %s, \"seconds\": %.6f, \"ocs\": %lld, "
          "\"ofds\": %lld, \"bytes_shipped\": %lld, "
          "\"bytes_raw\": %lld, \"bytes_wire\": %lld, "
          "\"merge_wall_seconds\": %.6f, \"frame_bytes\": [",
          p.shards, ShardTransportToString(p.transport),
          p.compression ? "true" : "false", p.run.seconds,
          static_cast<long long>(p.run.ocs),
          static_cast<long long>(p.run.ofds),
          static_cast<long long>(p.bytes_shipped),
          static_cast<long long>(p.bytes_raw),
          static_cast<long long>(p.bytes_wire),
          p.run.full.stats.merge_wall_seconds);
      const auto& frame_bytes = p.run.full.stats.shard_frame_bytes;
      for (size_t j = 0; j < frame_bytes.size(); ++j) {
        std::fprintf(f, "{\"type\": \"%s\", \"raw\": %lld, \"wire\": %lld}%s",
                     frame_bytes[j].frame_type.c_str(),
                     static_cast<long long>(frame_bytes[j].bytes_raw),
                     static_cast<long long>(frame_bytes[j].bytes_wire),
                     j + 1 < frame_bytes.size() ? ", " : "");
      }
      std::fprintf(f, "]}%s\n", i + 1 < series.points.size() ? "," : "");
    }
    std::fprintf(f, "    ], \"row_shard_points\": [\n");
    for (size_t i = 0; i < series.row_points.size(); ++i) {
      const RowShardPoint& p = series.row_points[i];
      std::fprintf(
          f,
          "      {\"row_shards\": %d, \"transport\": \"%s\", "
          "\"compression\": %s, \"seconds\": %.6f, \"ocs\": %lld, "
          "\"ofds\": %lld, \"bytes_shipped\": %lld, "
          "\"bytes_raw\": %lld, \"bytes_wire\": %lld, "
          "\"bytes_per_shard\": [",
          p.row_shards, ShardTransportToString(p.transport),
          p.compression ? "true" : "false", p.run.seconds,
          static_cast<long long>(p.run.ocs),
          static_cast<long long>(p.run.ofds),
          static_cast<long long>(p.bytes_shipped),
          static_cast<long long>(p.bytes_raw),
          static_cast<long long>(p.bytes_wire));
      for (size_t j = 0; j < p.bytes_per_shard.size(); ++j) {
        std::fprintf(f, "%lld%s",
                     static_cast<long long>(p.bytes_per_shard[j]),
                     j + 1 < p.bytes_per_shard.size() ? ", " : "");
      }
      std::fprintf(f, "]}%s\n", i + 1 < series.row_points.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", d + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nJSON written to %s\n", path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace aod

int main(int argc, char** argv) {
  using namespace aod::bench;
  const char* json_path = JsonPathArg(argc, argv);
  PrintHeaderLine("Exp-8: sharded discovery over the CSR wire format");
  const int threads = aod::exec::ThreadPool::HardwareConcurrency();
  std::printf("scale=%.2f (default: 100K rows), hw=%d hardware threads\n",
              Scale(), threads);
  PrintNote("all shard counts run on one shared pool; counts must match the"
            " unsharded baseline at every shard count and transport"
            " (determinism contract). wire(MiB) is total frame bytes both"
            " directions after the delta/varint codecs, raw(MiB) the same"
            " traffic with every codec forced raw (ratio = raw/wire); the"
            " *-raw rows at 4 shards actually ship raw frames. The"
            " inproc-vs-socket gap is the byte-stream cost of going"
            " off-box. The row-shards section distributes the base-partition"
            " build over contiguous row ranges (traversal unsharded):"
            " max/shard(MiB) is the largest table slice any one shard"
            " received, which must fall as O(table/row_shards).");

  aod::exec::ThreadPool pool(threads);
  std::vector<DatasetSeries> all;
  all.push_back(RunDataset("flight", /*flight=*/true, 100000, &pool));
  all.push_back(RunDataset("ncvoter", /*flight=*/false, 100000, &pool));
  if (json_path != nullptr) return WriteJson(json_path, all, threads);
  return 0;
}
