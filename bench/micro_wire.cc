// Micro-benchmark of the shard wire codecs (src/shard/wire.{h,cc}).
//
// For each codec-bearing frame type — partition CSR blocks, candidate
// batches, result batches, and the rank-encoded table block — this
// harness measures encode and decode throughput (MiB/s of *raw* payload
// processed, so raw and compressed rows are directly comparable) and
// the compression ratio (raw frame bytes / wire frame bytes). Shapes
// mirror what actually crosses the seam in exp8: low-cardinality base
// partitions with long ascending runs (the canonical normal form the
// delta/varint codec exploits), derived partitions with more classes,
// per-level candidate batches with near-sequential slots, and result
// chunks with and without removal rows.
//
// With --json <path> the series is written as machine-readable JSON (CI
// uploads it as BENCH_micro_wire.json).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "data/encoder.h"
#include "gen/random.h"
#include "partition/attribute_set.h"
#include "partition/stripped_partition.h"
#include "shard/wire.h"

namespace aod {
namespace bench {
namespace {

using shard::CodecByteCounts;
using shard::DecodedFrame;
using shard::WireCandidate;
using shard::WireOutcome;

struct CodecRow {
  std::string frame_type;   // "partition", "candidate", ...
  std::string shape;        // which workload variant
  bool compression = true;
  int64_t raw_bytes = 0;    // one frame, all-raw baseline (header incl.)
  int64_t wire_bytes = 0;   // one frame as shipped
  double encode_mib_s = 0.0;
  double decode_mib_s = 0.0;
};

double Ratio(const CodecRow& r) {
  return r.wire_bytes > 0
             ? static_cast<double>(r.raw_bytes) /
                   static_cast<double>(r.wire_bytes)
             : 0.0;
}

/// Repeats `fn` until ~80ms of wall clock accumulates and returns the
/// per-iteration seconds — enough samples to flatten scheduler noise
/// without making the full suite slow.
template <typename Fn>
double TimePerIteration(const Fn& fn) {
  int iters = 0;
  Stopwatch sw;
  do {
    fn();
    ++iters;
  } while (sw.ElapsedSeconds() < 0.08);
  return sw.ElapsedSeconds() / iters;
}

/// Throughput in MiB/s of raw payload moved per second.
double MibPerSecond(int64_t raw_bytes, double seconds_per_iter) {
  if (seconds_per_iter <= 0.0) return 0.0;
  return static_cast<double>(raw_bytes) / (1 << 20) / seconds_per_iter;
}

CodecRow MeasurePartition(const std::string& shape,
                          const StrippedPartition& p, int64_t rows,
                          bool compression) {
  CodecRow row;
  row.frame_type = "partition";
  row.shape = shape;
  row.compression = compression;
  const AttributeSet set = AttributeSet::Of({0});
  CodecByteCounts counts;
  std::vector<uint8_t> frame =
      shard::EncodePartitionBlock(set, p, compression, &counts);
  row.raw_bytes = counts.raw;
  row.wire_bytes = counts.wire;
  row.encode_mib_s = MibPerSecond(
      counts.raw, TimePerIteration([&] {
        volatile size_t sink =
            shard::EncodePartitionBlock(set, p, compression).size();
        (void)sink;
      }));
  Result<DecodedFrame> decoded = shard::DecodeFrame(frame);
  AOD_CHECK(decoded.ok());
  row.decode_mib_s = MibPerSecond(
      counts.raw, TimePerIteration([&] {
        auto back = shard::DecodePartitionBlock(*decoded, rows);
        AOD_CHECK(back.ok());
      }));
  return row;
}

CodecRow MeasureCandidates(const std::string& shape,
                           const std::vector<WireCandidate>& batch,
                           bool compression) {
  CodecRow row;
  row.frame_type = "candidate";
  row.shape = shape;
  row.compression = compression;
  CodecByteCounts counts;
  std::vector<uint8_t> frame =
      shard::EncodeCandidateBatch(batch, compression, &counts);
  row.raw_bytes = counts.raw;
  row.wire_bytes = counts.wire;
  row.encode_mib_s = MibPerSecond(
      counts.raw, TimePerIteration([&] {
        volatile size_t sink =
            shard::EncodeCandidateBatch(batch, compression).size();
        (void)sink;
      }));
  Result<DecodedFrame> decoded = shard::DecodeFrame(frame);
  AOD_CHECK(decoded.ok());
  row.decode_mib_s = MibPerSecond(
      counts.raw, TimePerIteration([&] {
        auto back = shard::DecodeCandidateBatch(*decoded);
        AOD_CHECK(back.ok());
      }));
  return row;
}

CodecRow MeasureResults(const std::string& shape,
                        const std::vector<WireOutcome>& outcomes,
                        bool compression) {
  CodecRow row;
  row.frame_type = "result";
  row.shape = shape;
  row.compression = compression;
  CodecByteCounts counts;
  std::vector<uint8_t> frame =
      shard::EncodeResultBatch(outcomes, true, compression, &counts);
  row.raw_bytes = counts.raw;
  row.wire_bytes = counts.wire;
  row.encode_mib_s = MibPerSecond(
      counts.raw, TimePerIteration([&] {
        volatile size_t sink =
            shard::EncodeResultBatch(outcomes, true, compression).size();
        (void)sink;
      }));
  Result<DecodedFrame> decoded = shard::DecodeFrame(frame);
  AOD_CHECK(decoded.ok());
  row.decode_mib_s = MibPerSecond(
      counts.raw, TimePerIteration([&] {
        auto back = shard::DecodeResultBatch(*decoded);
        AOD_CHECK(back.ok());
      }));
  return row;
}

CodecRow MeasureTable(const std::string& shape, const EncodedTable& table,
                      bool compression) {
  CodecRow row;
  row.frame_type = "table";
  row.shape = shape;
  row.compression = compression;
  CodecByteCounts counts;
  std::vector<uint8_t> frame =
      shard::EncodeTableBlock(table, compression, &counts);
  row.raw_bytes = counts.raw;
  row.wire_bytes = counts.wire;
  row.encode_mib_s = MibPerSecond(
      counts.raw, TimePerIteration([&] {
        volatile size_t sink =
            shard::EncodeTableBlock(table, compression).size();
        (void)sink;
      }));
  Result<DecodedFrame> decoded = shard::DecodeFrame(frame);
  AOD_CHECK(decoded.ok());
  row.decode_mib_s = MibPerSecond(
      counts.raw, TimePerIteration([&] {
        auto back = shard::DecodeTableBlock(*decoded);
        AOD_CHECK(back.ok());
      }));
  return row;
}

EncodedTable RandomEncodedTable(int64_t rows, int cols, int64_t cardinality,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int64_t>> columns(static_cast<size_t>(cols));
  std::vector<std::string> names;
  for (int c = 0; c < cols; ++c) {
    names.push_back("c" + std::to_string(c));
    for (int64_t r = 0; r < rows; ++r) {
      columns[static_cast<size_t>(c)].push_back(
          rng.UniformInt(0, cardinality - 1));
    }
  }
  return EncodedTableFromInts(names, columns);
}

std::vector<WireCandidate> MakeCandidates(int64_t n) {
  Rng rng(7);
  std::vector<WireCandidate> out;
  for (int64_t i = 0; i < n; ++i) {
    WireCandidate c;
    c.slot = static_cast<uint64_t>(i);
    c.context_bits = static_cast<uint64_t>(rng.UniformInt(0, 1 << 10));
    // Every kind appears in the measured mix, target and pair shapes
    // alike.
    c.kind = static_cast<DependencyKind>(i % 4);
    if (c.kind == DependencyKind::kOc) {
      c.pair_a = static_cast<int32_t>(i % 9);
      c.pair_b = static_cast<int32_t>(i % 9 + 1);
      c.opposite = (i % 2) == 0;
    } else {
      c.target = static_cast<int32_t>(i % 10);
    }
    out.push_back(c);
  }
  return out;
}

std::vector<WireOutcome> MakeOutcomes(int64_t n, bool removal_rows) {
  Rng rng(11);
  std::vector<WireOutcome> out;
  for (int64_t i = 0; i < n; ++i) {
    WireOutcome o;
    o.slot = static_cast<uint64_t>(i);
    o.kind = static_cast<DependencyKind>(i % 4);
    o.valid = (i % 2) == 0;
    o.early_exit = (i % 5) == 0;
    o.removal_size = rng.UniformInt(0, 200);
    o.approx_factor = 0.01 * static_cast<double>(rng.UniformInt(0, 10));
    o.interestingness = 1.0 / (1.0 + static_cast<double>(i));
    o.seconds = 1e-6;
    if (removal_rows) {
      int32_t row = 0;
      for (int r = 0; r < 12; ++r) {
        row += static_cast<int32_t>(rng.UniformInt(1, 30));
        o.removal_rows.push_back(row);
      }
    }
    out.push_back(o);
  }
  return out;
}

int WriteJson(const char* path, const std::vector<CodecRow>& rows) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_wire\",\n");
  std::fprintf(f, "  \"scale\": %.4f,\n  \"rows\": [\n", Scale());
  for (size_t i = 0; i < rows.size(); ++i) {
    const CodecRow& r = rows[i];
    std::fprintf(f,
                 "    {\"frame_type\": \"%s\", \"shape\": \"%s\", "
                 "\"compression\": %s, \"raw_bytes\": %lld, "
                 "\"wire_bytes\": %lld, \"ratio\": %.4f, "
                 "\"encode_mib_s\": %.2f, \"decode_mib_s\": %.2f}%s\n",
                 r.frame_type.c_str(), r.shape.c_str(),
                 r.compression ? "true" : "false",
                 static_cast<long long>(r.raw_bytes),
                 static_cast<long long>(r.wire_bytes), Ratio(r),
                 r.encode_mib_s, r.decode_mib_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nJSON written to %s\n", path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace aod

int main(int argc, char** argv) {
  using namespace aod::bench;
  using aod::EncodedTable;
  using aod::PartitionScratch;
  using aod::StrippedPartition;

  const char* json_path = JsonPathArg(argc, argv);
  PrintHeaderLine("micro_wire: shard codec throughput + compression ratio");
  const int64_t rows = ScaledRows(100000);
  std::printf("scale=%.2f (%lld-row shapes)\n", Scale(),
              static_cast<long long>(rows));

  // Workload shapes. Base: one low-cardinality column partition (what
  // Init ships to every shard). Derived: a two-column product (more,
  // smaller classes — what budgeted re-derivation re-ships). Level
  // batch: ~2000 near-sequential candidates; result chunks at the
  // runner's 512-outcome grain.
  EncodedTable base_table = RandomEncodedTable(rows, 2, 16, 42);
  StrippedPartition base =
      StrippedPartition::FromColumn(base_table.column(0));
  PartitionScratch scratch(rows);
  StrippedPartition derived =
      base.Product(StrippedPartition::FromColumn(base_table.column(1)), rows,
                   &scratch);
  EncodedTable wide_table = RandomEncodedTable(rows / 10 + 1, 10, 300, 99);

  std::vector<CodecRow> all;
  for (bool compression : {true, false}) {
    all.push_back(MeasurePartition("base_card16", base, rows, compression));
    all.push_back(
        MeasurePartition("derived_product", derived, rows, compression));
    all.push_back(
        MeasureCandidates("level_batch_2k", MakeCandidates(2000),
                          compression));
    all.push_back(MeasureResults("chunk_512", MakeOutcomes(512, false),
                                 compression));
    all.push_back(MeasureResults("chunk_512_removal",
                                 MakeOutcomes(512, true), compression));
    all.push_back(MeasureTable("table_10col_card300", wide_table,
                               compression));
  }

  std::printf("%10s %20s %6s %12s %12s %7s %12s %12s\n", "frame", "shape",
              "codec", "raw(KiB)", "wire(KiB)", "ratio", "enc MiB/s",
              "dec MiB/s");
  for (const CodecRow& r : all) {
    std::printf("%10s %20s %6s %12.1f %12.1f %6.2fx %12.1f %12.1f\n",
                r.frame_type.c_str(), r.shape.c_str(),
                r.compression ? "delta" : "raw",
                static_cast<double>(r.raw_bytes) / 1024,
                static_cast<double>(r.wire_bytes) / 1024, Ratio(r),
                r.encode_mib_s, r.decode_mib_s);
  }

  if (json_path != nullptr) return WriteJson(json_path, all);
  return 0;
}
