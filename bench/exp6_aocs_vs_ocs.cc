// Exp-6: discovered AOCs compared to exact OCs.
//
// Approximate discovery finds dependencies that exact discovery cannot
// (a single dirty value kills an exact OC), and the ones it finds sit at
// lower, more interesting lattice levels. The harness reports the counts
// on both datasets and prints the top-ranked AOCs by interestingness —
// reproducing the paper's observation that the showcase dependencies
// (arrDelay ~ lateAircraftDelay, originAirport ~ IATACode,
// municipalityAbbrv ~ municipalityDesc, streetAddress ~ mailAddress)
// rank at the top.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "data/encoder.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"

namespace aod {
namespace bench {
namespace {

void RunDataset(const char* name, bool flight, double eps) {
  const int64_t rows = ScaledRows(20000);
  Table t = flight ? GenerateFlightTable(rows, 10, 42)
                   : GenerateNcVoterTable(rows, 10, 1729);
  EncodedTable enc = EncodeTable(t);
  RunResult exact = RunDiscovery(enc, ValidatorKind::kExact, 0.0);
  RunResult approx = RunDiscovery(enc, ValidatorKind::kOptimal, eps);

  std::printf("\n--- %s (%lld rows, 10 attributes, eps = %.0f%%) ---\n",
              name, static_cast<long long>(rows), 100 * eps);
  std::printf("exact OCs:  %4lld   (avg level %.2f)\n",
              static_cast<long long>(exact.ocs), exact.avg_oc_level);
  std::printf("AOCs:       %4lld   (avg level %.2f)\n",
              static_cast<long long>(approx.ocs), approx.avg_oc_level);

  approx.full.SortByInterestingness();
  std::printf("top AOCs by interestingness:\n");
  size_t shown = 0;
  for (const DiscoveredDependency* d : approx.full.Ocs()) {
    if (shown++ >= 8) break;
    std::printf("  score=%.4f e=%5.2f%%  %s\n", d->interestingness,
                100.0 * d->error, d->Oc().ToString(enc).c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace aod

int main() {
  using namespace aod::bench;
  PrintHeaderLine("Exp-6: discovered AOCs compared to exact OCs");
  PrintNote("paper reference: AOC originAirport ~ IATACode (8%) on flight;"
            " streetAddress ~ mailAddress (18%) and municipalityAbbrv ~"
            " municipalityDesc (20%) on ncvoter; all ranked most"
            " interesting.");
  RunDataset("flight", /*flight=*/true, 0.12);
  RunDataset("ncvoter", /*flight=*/false, 0.20);
  return 0;
}
