// Shared plumbing for the experiment harnesses (bench/exp*.cc).
//
// Each harness regenerates one figure/table of the paper. Because the
// paper's testbed ran hours-long Java jobs on 1M-5M row datasets, the
// default sizes here are scaled down to keep the full suite runnable in
// minutes; set AOD_BENCH_SCALE=<float> to scale row counts up (e.g. 40
// approximates the paper's sizes) and AOD_BENCH_BUDGET=<seconds> to give
// the quadratic iterative validator a larger time allowance (the paper
// used a 24h cap; runs that exceed the budget are reported as ">budget",
// mirroring the paper's "* 24h" annotations).
#ifndef AOD_BENCH_BENCH_UTIL_H_
#define AOD_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stopwatch.h"
#include "data/encoder.h"
#include "od/discovery.h"

namespace aod {
namespace bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  return end == v ? fallback : parsed;
}

/// Row-count multiplier for all experiment harnesses.
inline double Scale() { return EnvDouble("AOD_BENCH_SCALE", 1.0); }

/// Per-run wall-clock allowance for the iterative validator (seconds).
inline double IterativeBudget() { return EnvDouble("AOD_BENCH_BUDGET", 20.0); }

inline int64_t ScaledRows(int64_t base) {
  double rows = static_cast<double>(base) * Scale();
  return rows < 2 ? 2 : static_cast<int64_t>(rows);
}

/// One measured discovery run.
struct RunResult {
  double seconds = 0.0;
  bool timed_out = false;
  int64_t ocs = 0;
  int64_t ofds = 0;
  int64_t fds = 0;
  int64_t afds = 0;
  double avg_oc_level = 0.0;
  double oc_validation_share = 0.0;
  DiscoveryResult full;
};

/// Measures one DiscoverOds call with fully explicit options (the
/// exp7 threads harness varies num_threads/pool).
inline RunResult RunDiscoveryWithOptions(const EncodedTable& table,
                                         const DiscoveryOptions& options) {
  Stopwatch sw;
  DiscoveryResult result = DiscoverOds(table, options);
  RunResult out;
  out.seconds = sw.ElapsedSeconds();
  out.timed_out = result.timed_out;
  out.ocs = result.CountOfKind(DependencyKind::kOc);
  out.ofds = result.CountOfKind(DependencyKind::kOfd);
  out.fds = result.CountOfKind(DependencyKind::kFd);
  out.afds = result.CountOfKind(DependencyKind::kAfd);
  out.avg_oc_level = result.stats.AverageOcLevel();
  out.oc_validation_share = result.stats.OcValidationShare();
  out.full = std::move(result);
  return out;
}

inline RunResult RunDiscovery(const EncodedTable& table, ValidatorKind kind,
                              double epsilon, double budget_seconds = 0.0) {
  DiscoveryOptions options;
  options.validator = kind;
  options.epsilon = epsilon;
  options.time_budget_seconds = budget_seconds;
  return RunDiscoveryWithOptions(table, options);
}

/// "0.123" or ">20.0*" when the run hit the budget (paper's "* 24h").
inline std::string TimeCell(const RunResult& r) {
  char buf[32];
  if (r.timed_out) {
    std::snprintf(buf, sizeof(buf), ">%.1f*", r.seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", r.seconds);
  }
  return buf;
}

inline void PrintHeaderLine(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void PrintNote(const char* note) { std::printf("%s\n", note); }

/// Returns the path following a `--json` flag, or nullptr. Shared by the
/// harnesses that emit machine-readable results (CI uploads them as the
/// BENCH_*.json perf-trajectory series).
inline const char* JsonPathArg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return nullptr;
}

/// Returns the dependency-kind set from a `--kinds=oc,ofd,fd,afd` (or
/// `--kinds <spec>`) flag, defaulting to the classic OC+OFD series.
/// Aborts on an unparseable spec — a bench run over the wrong kinds is
/// worse than no run.
inline DependencyKindSet KindsArg(int argc, char** argv) {
  std::string spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--kinds=", 0) == 0) {
      spec = arg.substr(8);
    } else if (arg == "--kinds" && i + 1 < argc) {
      spec = argv[i + 1];
    }
  }
  if (spec.empty()) return DependencyKindSet::OdDefault();
  Result<DependencyKindSet> parsed = DependencyKindSet::Parse(spec);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad --kinds '%s': %s\n", spec.c_str(),
                 parsed.status().ToString().c_str());
    std::exit(2);
  }
  return *parsed;
}

}  // namespace bench
}  // namespace aod

#endif  // AOD_BENCH_BENCH_UTIL_H_
