// Ablations for the extension modules (DESIGN.md "beyond the paper"):
//   A. parallel level processing — discovery wall-clock vs worker count
//      (the shared-nothing analogue of Saxena et al. [8]);
//   B. hybrid sampling fast-rejection — validation cost and safety of the
//      sampling filter proposed in the paper's future work (after [6]);
//   C. bidirectional search [10] — the cost of also exploring the
//      A asc ~ B desc polarity class.
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "data/encoder.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"
#include "od/aoc_lis_validator.h"
#include "od/hybrid_sampler.h"
#include "od/discovery.h"
#include "partition/partition_cache.h"

namespace aod {
namespace bench {
namespace {

void ParallelAblation() {
  // Attribute-heavy workload: thousands of lattice nodes per level, so
  // per-node validation dominates and parallelism across nodes pays off.
  // (On row-heavy/narrow tables the serial partition products dominate
  // and extra threads cannot help — Amdahl in action.)
  const int64_t rows = ScaledRows(2000);
  Table t = GenerateFlightTable(rows, 22, 42);
  EncodedTable enc = EncodeTable(t);
  std::printf("\n--- A. parallel level processing (flight, %lld rows x 22"
              " attrs) ---\n",
              static_cast<long long>(rows));
  std::printf("hardware threads available: %u  (speedup is bounded by the"
              " core count;\n on a single-core host all rows read ~1.0x —"
              " the tests assert result equality instead)\n",
              std::thread::hardware_concurrency());
  std::printf("%8s  %10s  %8s  %6s\n", "threads", "time(s)", "speedup",
              "#AOC");
  double base = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    DiscoveryOptions options;
    options.epsilon = 0.10;
    options.num_threads = threads;
    Stopwatch sw;
    DiscoveryResult result = DiscoverOds(enc, options);
    double secs = sw.ElapsedSeconds();
    if (threads == 1) base = secs;
    std::printf("%8d  %10.3f  %7.2fx  %6zu\n", threads, secs,
                base / (secs > 0 ? secs : 1e-9), result.Ocs().size());
  }
}

void SamplingAblation() {
  const int64_t rows = ScaledRows(30000);
  Table t = GenerateNcVoterTable(rows, 10, 1729);
  EncodedTable enc = EncodeTable(t);
  PartitionCache cache(&enc);
  const int k = enc.num_columns();
  const double eps = 0.10;

  std::printf("\n--- B. hybrid sampling filter (ncvoter, %lld rows, "
              "eps = 10%%) ---\n",
              static_cast<long long>(rows));

  // Full validation only.
  Stopwatch full_clock;
  int64_t full_valid = 0;
  for (int ctx_attr = -1; ctx_attr < k; ++ctx_attr) {
    AttributeSet ctx =
        ctx_attr < 0 ? AttributeSet() : AttributeSet::Of({ctx_attr});
    auto partition = cache.Get(ctx);
    for (int a = 0; a < k; ++a) {
      for (int b = a + 1; b < k; ++b) {
        if (a == ctx_attr || b == ctx_attr) continue;
        if (ValidateAocOptimal(enc, *partition, a, b, eps, enc.num_rows())
                .valid) {
          ++full_valid;
        }
      }
    }
  }
  double full_secs = full_clock.ElapsedSeconds();

  // Hybrid: sampling fast-reject in front.
  SamplerConfig config;
  config.sample_size = 2000;
  AocSampler sampler(&enc, config);
  Stopwatch hybrid_clock;
  int64_t hybrid_valid = 0;
  for (int ctx_attr = -1; ctx_attr < k; ++ctx_attr) {
    AttributeSet ctx =
        ctx_attr < 0 ? AttributeSet() : AttributeSet::Of({ctx_attr});
    auto partition = cache.Get(ctx);
    for (int a = 0; a < k; ++a) {
      for (int b = a + 1; b < k; ++b) {
        if (a == ctx_attr || b == ctx_attr) continue;
        if (sampler.Validate(*partition, a, b, eps).valid) ++hybrid_valid;
      }
    }
  }
  double hybrid_secs = hybrid_clock.ElapsedSeconds();

  std::printf("full validation:   %.3fs, %lld valid AOCs\n", full_secs,
              static_cast<long long>(full_valid));
  std::printf("hybrid validation: %.3fs, %lld valid AOCs (%lld fast-"
              "rejected, %lld full)\n",
              hybrid_secs, static_cast<long long>(hybrid_valid),
              static_cast<long long>(sampler.fast_rejections()),
              static_cast<long long>(sampler.full_validations()));
  std::printf("agreement on accepted candidates: %s (the filter only ever"
              " rejects)\n",
              full_valid == hybrid_valid ? "exact" : "DIVERGED");
}

void BidirectionalAblation() {
  const int64_t rows = ScaledRows(10000);
  Table t = GenerateNcVoterTable(rows, 10, 1729);
  EncodedTable enc = EncodeTable(t);
  std::printf("\n--- C. bidirectional search (ncvoter, %lld rows) ---\n",
              static_cast<long long>(rows));
  for (bool bid : {false, true}) {
    DiscoveryOptions options;
    options.epsilon = 0.10;
    options.bidirectional = bid;
    Stopwatch sw;
    DiscoveryResult result = DiscoverOds(enc, options);
    double secs = sw.ElapsedSeconds();
    const auto ocs = result.Ocs();
    int64_t opposite = 0;
    for (const DiscoveredDependency* d : ocs) {
      opposite += d->opposite ? 1 : 0;
    }
    std::printf("%-15s %8.3fs  %4zu OCs (%lld with desc polarity), "
                "%lld OC validations\n",
                bid ? "bidirectional:" : "unidirectional:", secs,
                ocs.size(), static_cast<long long>(opposite),
                static_cast<long long>(
                    result.stats.oc_candidates_validated));
  }
}

}  // namespace
}  // namespace bench
}  // namespace aod

int main() {
  using namespace aod::bench;
  PrintHeaderLine("Ablations: extensions beyond the paper's core");
  ParallelAblation();
  SamplingAblation();
  BidirectionalAblation();
  return 0;
}
