// Tests for src/common: Status/Result, string utilities, stopwatch, logging.
#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace aod {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad epsilon");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad epsilon");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad epsilon");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Closed("x").code(), StatusCode::kClosed);
  EXPECT_EQ(Status::Overloaded("x").code(), StatusCode::kOverloaded);
  EXPECT_EQ(Status::ShuttingDown("x").code(), StatusCode::kShuttingDown);
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kClosed), "Closed");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOverloaded), "Overloaded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kShuttingDown),
               "ShuttingDown");
}

// The serve layer's typed rejections: kOverloaded means "retry later",
// kShuttingDown means "fail over" — callers branch on the code, so the
// codes (and their printed names) are load-bearing API.
TEST(StatusTest, ServeRejectionsAreDistinctAndPrintable) {
  const Status overloaded = Status::Overloaded("queue full");
  const Status draining = Status::ShuttingDown("drain in progress");
  EXPECT_NE(overloaded.code(), draining.code());
  EXPECT_EQ(overloaded.ToString(), "Overloaded: queue full");
  EXPECT_EQ(draining.ToString(), "ShuttingDown: drain in progress");
}

TEST(StatusTest, StreamInsertionMatchesToString) {
  std::ostringstream code_os;
  code_os << StatusCode::kOverloaded;
  EXPECT_EQ(code_os.str(), "Overloaded");

  std::ostringstream status_os;
  status_os << Status::ShuttingDown("bye") << " / " << Status::OK();
  EXPECT_EQ(status_os.str(), "ShuttingDown: bye / OK");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("no field");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  AOD_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterEven(8).value(), 2);
  EXPECT_FALSE(QuarterEven(6).ok());
  EXPECT_FALSE(QuarterEven(3).ok());
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(SplitString(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"only"}, ","), "only");
}

TEST(StringUtilTest, ParseInt64Strict) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("  13  ").value(), 13);
  EXPECT_FALSE(ParseInt64("1.5").has_value());
  EXPECT_FALSE(ParseInt64("12abc").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").has_value());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("7").value(), 7.0);
  EXPECT_FALSE(ParseDouble("2.5x").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("--3").has_value());
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("NULL", "null"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("na", "n/a"));
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(1.5, 4), "1.5");
  EXPECT_EQ(FormatDouble(2.0, 4), "2");
  EXPECT_EQ(FormatDouble(0.4444444, 2), "0.44");
}

TEST(StopwatchTest, MeasuresNonNegativeMonotoneTime) {
  Stopwatch sw;
  int64_t first = sw.ElapsedNanos();
  EXPECT_GE(first, 0);
  volatile int64_t sink = 0;  // int would overflow (UB) before 100k sums
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.ElapsedNanos(), first);
  sw.Restart();
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Emitting below the level must be a no-op (and must not crash).
  AOD_LOG(kDebug) << "suppressed";
  SetLogLevel(before);
}

}  // namespace
}  // namespace aod
