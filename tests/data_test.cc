// Tests for src/data: values, schema, columns, tables, CSV, type
// inference, and the order-preserving rank encoder.
#include <gtest/gtest.h>

#include <algorithm>

#include "data/csv_parser.h"
#include "data/encoder.h"
#include "data/schema.h"
#include "data/table.h"
#include "data/type_inference.h"
#include "data/value.h"
#include "gen/random.h"
#include "test_util.h"

namespace aod {
namespace {

// ---------------------------------------------------------------- Value --

TEST(ValueTest, NullOrdersFirst) {
  EXPECT_LT(Value::Null(), Value(int64_t{-100}));
  EXPECT_LT(Value::Null(), Value(-1e30));
  EXPECT_LT(Value::Null(), Value(""));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(int64_t{2}), Value(2.0));
  EXPECT_LT(Value(int64_t{2}), Value(2.5));
  EXPECT_GT(Value(3.5), Value(int64_t{3}));
}

TEST(ValueTest, NumericsBeforeStrings) {
  EXPECT_LT(Value(int64_t{999}), Value("0"));
  EXPECT_LT(Value(1e30), Value(""));
}

TEST(ValueTest, StringLexicographic) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value("ab"), Value("abc"));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, LargeIntsCompareExactly) {
  // Doubles cannot distinguish these; int64 comparison must.
  int64_t base = (int64_t{1} << 53) + 0;
  EXPECT_LT(Value(base), Value(base + 1));
  EXPECT_NE(Value(base), Value(base + 1));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value(int64_t{1}).is_int());
  EXPECT_TRUE(Value(1.0).is_double());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsNumeric(), 3.0);
}

// --------------------------------------------------------------- Schema --

TEST(SchemaTest, FieldLookup) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.num_fields(), 2);
  EXPECT_EQ(s.FieldIndex("b").value(), 1);
  EXPECT_FALSE(s.FieldIndex("missing").ok());
  EXPECT_TRUE(s.HasField("a"));
  EXPECT_EQ(s.field(0).name, "a");
}

TEST(SchemaTest, ToString) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  EXPECT_EQ(s.ToString(), "a:int64, b:double");
}

TEST(SchemaDeathTest, DuplicateFieldNameChecks) {
  Schema s({{"a", DataType::kInt64}});
  EXPECT_DEATH(s.AddField({"a", DataType::kString}), "duplicate field");
}

// --------------------------------------------------------------- Column --

TEST(ColumnTest, AppendAndGet) {
  Column col("c", DataType::kInt64);
  col.AppendInt(5);
  col.Append(Value(int64_t{7}));
  col.AppendNull();
  EXPECT_EQ(col.size(), 3);
  EXPECT_EQ(col.GetValue(0), Value(int64_t{5}));
  EXPECT_EQ(col.GetValue(1), Value(int64_t{7}));
  EXPECT_TRUE(col.GetValue(2).is_null());
  EXPECT_EQ(col.null_count(), 1);
}

TEST(ColumnTest, SetValueTracksNullCount) {
  Column col("c", DataType::kDouble);
  col.AppendDouble(1.0);
  col.AppendNull();
  EXPECT_EQ(col.null_count(), 1);
  col.SetValue(0, Value::Null());
  EXPECT_EQ(col.null_count(), 2);
  col.SetValue(1, Value(2.5));
  EXPECT_EQ(col.null_count(), 1);
  EXPECT_EQ(col.GetValue(1), Value(2.5));
}

TEST(ColumnTest, DoubleColumnAcceptsIntValues) {
  Column col("c", DataType::kDouble);
  col.Append(Value(int64_t{3}));
  EXPECT_EQ(col.GetValue(0), Value(3.0));
}

TEST(ColumnDeathTest, TypeMismatchChecks) {
  Column col("c", DataType::kInt64);
  EXPECT_DEATH(col.Append(Value("str")), "appending non-int");
}

// ---------------------------------------------------------------- Table --

TEST(TableTest, FromRowsRoundTrip) {
  Table t = testing_util::PaperTable1();
  EXPECT_EQ(t.num_rows(), 9);
  EXPECT_EQ(t.num_columns(), 7);
  EXPECT_EQ(t.GetValue(0, 0), Value("sec"));
  EXPECT_EQ(t.GetValue(8, 2), Value(int64_t{200}));
  EXPECT_EQ(t.ColumnByName("sal").value()->GetValue(3), Value(int64_t{40}));
  EXPECT_FALSE(t.ColumnByName("nope").ok());
}

TEST(TableTest, HeadTakesPrefix) {
  Table t = testing_util::PaperTable1();
  Table h = t.Head(3);
  EXPECT_EQ(h.num_rows(), 3);
  EXPECT_EQ(h.GetValue(2, 0), Value("dev"));
  EXPECT_EQ(t.Head(100).num_rows(), 9);
}

TEST(TableTest, SelectColumnsReordersAndSubsets) {
  Table t = testing_util::PaperTable1();
  Table s = t.SelectColumns({"sal", "pos"}).value();
  EXPECT_EQ(s.num_columns(), 2);
  EXPECT_EQ(s.schema().field(0).name, "sal");
  EXPECT_EQ(s.GetValue(0, 0), Value(int64_t{20}));
  EXPECT_EQ(s.GetValue(0, 1), Value("sec"));
  EXPECT_FALSE(t.SelectColumns({"nope"}).ok());
}

TEST(TableTest, SelectFirstColumns) {
  Table t = testing_util::PaperTable1();
  Table s = t.SelectFirstColumns(3);
  EXPECT_EQ(s.num_columns(), 3);
  EXPECT_EQ(s.schema().field(2).name, "sal");
  EXPECT_EQ(s.num_rows(), 9);
}

TEST(TableTest, ToStringListsRowsAndTruncates) {
  Table t = testing_util::PaperTable1();
  std::string s = t.ToString(2);
  EXPECT_NE(s.find("pos"), std::string::npos);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

// ------------------------------------------------------- Type inference --

TEST(TypeInferenceTest, NullTokens) {
  EXPECT_TRUE(IsNullToken(""));
  EXPECT_TRUE(IsNullToken("  "));
  EXPECT_TRUE(IsNullToken("NULL"));
  EXPECT_TRUE(IsNullToken("na"));
  EXPECT_TRUE(IsNullToken("N/A"));
  EXPECT_TRUE(IsNullToken("?"));
  EXPECT_FALSE(IsNullToken("0"));
  EXPECT_FALSE(IsNullToken("none"));
}

TEST(TypeInferenceTest, NarrowestType) {
  EXPECT_EQ(InferColumnType({"1", "2", ""}), DataType::kInt64);
  EXPECT_EQ(InferColumnType({"1", "2.5"}), DataType::kDouble);
  EXPECT_EQ(InferColumnType({"1", "x"}), DataType::kString);
  EXPECT_EQ(InferColumnType({"", "NULL"}), DataType::kString);
  EXPECT_EQ(InferColumnType({"-3", "+e"}), DataType::kString);
}

TEST(TypeInferenceTest, ParseCellCoercesAndNulls) {
  EXPECT_EQ(ParseCell("7", DataType::kInt64), Value(int64_t{7}));
  EXPECT_EQ(ParseCell("2.5", DataType::kDouble), Value(2.5));
  EXPECT_EQ(ParseCell(" x ", DataType::kString), Value("x"));
  EXPECT_TRUE(ParseCell("", DataType::kInt64).is_null());
  EXPECT_TRUE(ParseCell("junk", DataType::kInt64).is_null());
}

// ------------------------------------------------------------------ CSV --

TEST(CsvTest, BasicWithHeaderAndInference) {
  auto t = ParseCsv("a,b,c\n1,2.5,x\n2,3.5,y\n").value();
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(t.schema().field(1).type, DataType::kDouble);
  EXPECT_EQ(t.schema().field(2).type, DataType::kString);
  EXPECT_EQ(t.GetValue(1, 0), Value(int64_t{2}));
  EXPECT_EQ(t.GetValue(0, 2), Value("x"));
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndEscapes) {
  auto t = ParseCsv("name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\n")
               .value();
  EXPECT_EQ(t.GetValue(0, 0), Value("Smith, John"));
  EXPECT_EQ(t.GetValue(0, 1), Value("said \"hi\""));
}

TEST(CsvTest, QuotedNewlines) {
  auto t = ParseCsv("a,b\n\"line1\nline2\",2\n").value();
  EXPECT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.GetValue(0, 0), Value("line1\nline2"));
}

TEST(CsvTest, CrlfAndBlankLines) {
  auto t = ParseCsv("a,b\r\n1,2\r\n\r\n3,4\r\n").value();
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.GetValue(1, 1), Value(int64_t{4}));
}

TEST(CsvTest, NoHeaderNamesColumns) {
  CsvOptions options;
  options.has_header = false;
  auto t = ParseCsv("5,6\n7,8\n", options).value();
  EXPECT_EQ(t.schema().field(0).name, "c0");
  EXPECT_EQ(t.num_rows(), 2);
}

TEST(CsvTest, MaxRowsLimits) {
  CsvOptions options;
  options.max_rows = 1;
  auto t = ParseCsv("a\n1\n2\n3\n", options).value();
  EXPECT_EQ(t.num_rows(), 1);
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = '|';
  auto t = ParseCsv("a|b\n1|2\n", options).value();
  EXPECT_EQ(t.GetValue(0, 1), Value(int64_t{2}));
}

TEST(CsvTest, NullTokensBecomeNulls) {
  auto t = ParseCsv("a,b\n1,x\nNULL,\n").value();
  EXPECT_TRUE(t.GetValue(1, 0).is_null());
  EXPECT_TRUE(t.GetValue(1, 1).is_null());
}

TEST(CsvTest, RaggedRowRejected) {
  auto r = ParseCsv("a,b\n1,2\n3\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, TooManyColumnsRejected) {
  auto r = ParseCsv("a,b\n1,2,3\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  // The complaint names the offending width, not a truncated parse.
  EXPECT_NE(r.status().message().find("3 fields"), std::string::npos);
}

TEST(CsvTest, QuotedCrlfPreservedVerbatim) {
  // A quoted field may span a CRLF line break; the field keeps both
  // bytes (RFC 4180) and the record structure is unaffected.
  auto t = ParseCsv("a,b\r\n\"x\r\ny\",2\r\n").value();
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.GetValue(0, 0), Value("x\r\ny"));
  EXPECT_EQ(t.GetValue(0, 1), Value(int64_t{2}));
}

TEST(CsvTest, FinalRowWithoutTrailingNewline) {
  auto t = ParseCsv("a,b\n1,2\n3,4").value();
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.GetValue(1, 1), Value(int64_t{4}));
  // Also with the final field quoted.
  auto q = ParseCsv("a\n\"z\"").value();
  ASSERT_EQ(q.num_rows(), 1);
  EXPECT_EQ(q.GetValue(0, 0), Value("z"));
}

TEST(CsvTest, LoneCarriageReturnTerminatesRecord) {
  // Classic-Mac line endings: 'a,b\r1,2' is two records, never the
  // silently glued "a,b1,2" the old tokenizer produced.
  auto t = ParseCsv("a,b\r1,2\r3,4");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->GetValue(0, 0), Value(int64_t{1}));
  EXPECT_EQ(t->GetValue(1, 1), Value(int64_t{4}));
}

TEST(CsvTest, JunkAfterClosingQuoteRejected) {
  auto r = ParseCsv("a,b\n\"x\"y,2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("closing quote"), std::string::npos);
  // A closing quote followed by delimiter or record end stays fine.
  EXPECT_TRUE(ParseCsv("a,b\n\"x\",2\n").ok());
  EXPECT_TRUE(ParseCsv("a,b\n2,\"x\"\r\n").ok());
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  auto r = ParseCsv("a\n\"oops\n");
  ASSERT_FALSE(r.ok());
}

TEST(CsvTest, EmptyInputRejected) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, DuplicateHeadersDeduplicated) {
  auto t = ParseCsv("a,a\n1,2\n").value();
  EXPECT_EQ(t.schema().field(0).name, "a");
  EXPECT_NE(t.schema().field(1).name, "a");
}

TEST(CsvTest, WriteReadRoundTrip) {
  Table t = testing_util::PaperTable1();
  std::string csv = WriteCsv(t);
  auto back = ParseCsv(csv).value();
  ASSERT_EQ(back.num_rows(), t.num_rows());
  ASSERT_EQ(back.num_columns(), t.num_columns());
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    for (int c = 0; c < t.num_columns(); ++c) {
      EXPECT_EQ(back.GetValue(r, c), t.GetValue(r, c))
          << "cell (" << r << ", " << c << ")";
    }
  }
}

TEST(CsvTest, ReadMissingFileFails) {
  auto r = ReadCsvFile("/nonexistent/path.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

// -------------------------------------------------------------- Encoder --

TEST(EncoderTest, RanksAreDenseAndOrderPreserving) {
  Column col("c", DataType::kInt64);
  for (int64_t v : {30, 10, 20, 10, 30}) col.AppendInt(v);
  EncodedColumn enc = EncodeColumn(col);
  EXPECT_EQ(enc.cardinality, 3);
  EXPECT_EQ(enc.ranks, (std::vector<int32_t>{2, 0, 1, 0, 2}));
}

TEST(EncoderTest, NullsShareSmallestRank) {
  Column col("c", DataType::kInt64);
  col.AppendInt(5);
  col.AppendNull();
  col.AppendInt(-100);
  col.AppendNull();
  EncodedColumn enc = EncodeColumn(col);
  EXPECT_EQ(enc.cardinality, 3);
  EXPECT_EQ(enc.ranks, (std::vector<int32_t>{2, 0, 1, 0}));
}

TEST(EncoderTest, StringColumnLexicographic) {
  Column col("c", DataType::kString);
  for (const char* v : {"bb", "aa", "cc", "aa"}) col.AppendString(v);
  EncodedColumn enc = EncodeColumn(col);
  EXPECT_EQ(enc.ranks, (std::vector<int32_t>{1, 0, 2, 0}));
}

TEST(EncoderTest, DoubleColumn) {
  Column col("c", DataType::kDouble);
  for (double v : {2.5, -1.0, 2.5, 0.0}) col.AppendDouble(v);
  EncodedColumn enc = EncodeColumn(col);
  EXPECT_EQ(enc.ranks, (std::vector<int32_t>{2, 0, 2, 1}));
}

TEST(EncoderTest, WholeTable) {
  EncodedTable enc = testing_util::PaperEncoded();
  EXPECT_EQ(enc.num_rows(), 9);
  EXPECT_EQ(enc.num_columns(), 7);
  EXPECT_EQ(enc.ColumnIndex("sal"), 2);
  EXPECT_EQ(enc.ColumnIndex("nope"), -1);
  // sal is strictly increasing in Table 1, so ranks are 0..8.
  EXPECT_EQ(enc.ranks(2),
            (std::vector<int32_t>{0, 1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(EncoderTest, FromIntsDensifies) {
  EncodedTable enc = EncodedTableFromInts({"x"}, {{100, -5, 100, 7}});
  EXPECT_EQ(enc.ranks(0), (std::vector<int32_t>{2, 0, 2, 1}));
  EXPECT_EQ(enc.column(0).cardinality, 3);
}

// Property: encoding preserves the pairwise value order of every column.
class EncoderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncoderPropertyTest, RankOrderMatchesValueOrder) {
  Rng rng(GetParam());
  Column col("c", DataType::kInt64);
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.1)) {
      col.AppendNull();
    } else {
      col.AppendInt(rng.UniformInt(-50, 50));
    }
  }
  EncodedColumn enc = EncodeColumn(col);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      Value a = col.GetValue(i);
      Value b = col.GetValue(j);
      int value_cmp = a.Compare(b);
      int32_t ra = enc.ranks[static_cast<size_t>(i)];
      int32_t rb = enc.ranks[static_cast<size_t>(j)];
      int rank_cmp = ra < rb ? -1 : (ra > rb ? 1 : 0);
      ASSERT_EQ(value_cmp, rank_cmp)
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncoderPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace aod
