// Cross-module property tests for the canonical mapping (paper Sec. 2.2):
// a list-based OD holds exactly iff every member of its canonical
// decomposition holds — the theorem the whole set-based framework rests
// on. Also: sampler concentration sweeps and interestingness ordering.
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/random.h"
#include "od/hybrid_sampler.h"
#include "od/interestingness.h"
#include "od/list_od.h"
#include "od/list_od_validator.h"
#include "od/aoc_lis_validator.h"
#include "test_util.h"

namespace aod {
namespace {

using testing_util::NaivePartition;
using testing_util::OcHoldsNaive;
using testing_util::OfdHoldsNaive;

// ---------------------------------------------- Sec. 2.2 equivalences --

/// Checks every member of the canonical decomposition with the
/// definition-based oracles.
bool CanonicalPartsHold(const EncodedTable& t, const CanonicalOdSet& parts) {
  for (const auto& ofd : parts.ofds) {
    if (!OfdHoldsNaive(t, ofd.context, ofd.a)) return false;
  }
  for (const auto& oc : parts.ocs) {
    if (oc.a == oc.b) continue;  // A ~ A is trivially true
    if (!OcHoldsNaive(t, oc.context, oc.a, oc.b)) return false;
  }
  return true;
}

class MappingEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MappingEquivalenceTest, ListOdHoldsIffCanonicalPartsHold) {
  Rng rng(GetParam());
  int checked_holds = 0;
  for (int trial = 0; trial < 60; ++trial) {
    // Small tables with low cardinality so that dependencies actually
    // hold sometimes (both outcomes must be exercised).
    EncodedTable t = testing_util::RandomEncodedTable(
        rng.UniformInt(2, 14), 4, rng.UniformInt(1, 3), rng.NextUint64());
    auto random_list = [&rng]() {
      std::vector<int> out;
      int len = static_cast<int>(rng.UniformInt(1, 3));
      for (int i = 0; i < len; ++i) {
        out.push_back(static_cast<int>(rng.UniformInt(0, 3)));
      }
      return out;
    };
    ListOd od{random_list(), random_list()};
    bool direct = ValidateListOdExact(t, od);
    bool via_parts = CanonicalPartsHold(t, MapListOdToCanonical(od));
    ASSERT_EQ(direct, via_parts) << od.ToString();
    if (direct) ++checked_holds;
  }
  // The sweep must exercise the "holds" branch, not only rejections.
  EXPECT_GT(checked_holds, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingEquivalenceTest,
                         ::testing::Values(71, 72, 73, 74));

TEST(MappingEquivalenceTest2, OcSplitsIntoPrefixOcs) {
  // X ~ Y iff all prefix-context OCs hold (the second half of the
  // Sec. 2.2 mapping), via the OC-only entry point.
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    EncodedTable t = testing_util::RandomEncodedTable(
        rng.UniformInt(2, 12), 4, rng.UniformInt(1, 3), rng.NextUint64());
    std::vector<int> x = {static_cast<int>(rng.UniformInt(0, 3)),
                          static_cast<int>(rng.UniformInt(0, 3))};
    std::vector<int> y = {static_cast<int>(rng.UniformInt(0, 3))};
    ListOd od{x, y};
    bool direct = ValidateListOcExact(t, od);
    // Canonical OC members only (ignore the OFD half of the OD mapping).
    bool parts = true;
    CanonicalOdSet mapped = MapListOdToCanonical(od);
    for (const auto& oc : mapped.ocs) {
      if (oc.a == oc.b) continue;
      if (!OcHoldsNaive(t, oc.context, oc.a, oc.b)) parts = false;
    }
    ASSERT_EQ(direct, parts) << od.ToString();
  }
}

// --------------------------------------------------------- sampler --

struct SamplerSweepParam {
  uint64_t seed;
  int64_t rows;
  int64_t sample;
};

class SamplerConcentrationTest
    : public ::testing::TestWithParam<SamplerSweepParam> {};

TEST_P(SamplerConcentrationTest, EstimateIsConsistentUnderestimate) {
  const auto& p = GetParam();
  // Global (opposite-end) violations at a known ~12% rate: the regime
  // where sampling is reliable.
  Rng rng(p.seed);
  std::vector<int64_t> base;
  std::vector<int64_t> derived;
  for (int64_t i = 0; i < p.rows; ++i) {
    int64_t v = rng.UniformInt(0, int64_t{1} << 30);
    base.push_back(v);
    derived.push_back(rng.Bernoulli(0.12) ? (int64_t{3} << 29) - v
                                          : 2 * v);
  }
  EncodedTable t = EncodedTableFromInts({"a", "b"}, {base, derived});
  auto whole = StrippedPartition::WholeRelation(p.rows);
  SamplerConfig config;
  config.sample_size = p.sample;
  config.seed = p.seed + 1;
  AocSampler sampler(&t, config);
  double estimate = sampler.EstimateFactor(whole, 0, 1);
  ValidatorOptions full;
  full.early_exit = false;
  double truth =
      ValidateAocOptimal(t, whole, 0, 1, 1.0, p.rows, full).approx_factor;
  // Underestimate (up to small sampling noise), but in the ballpark.
  EXPECT_LE(estimate, truth + 0.03);
  EXPECT_GT(estimate, truth / 2.5);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SamplerConcentrationTest,
    ::testing::Values(SamplerSweepParam{1, 4000, 500},
                      SamplerSweepParam{2, 4000, 1500},
                      SamplerSweepParam{3, 12000, 1000},
                      SamplerSweepParam{4, 12000, 4000}));

TEST(SamplerDeterminismTest, SameSeedSameDecisions) {
  EncodedTable t = testing_util::RandomEncodedTable(5000, 2, 50, 31);
  auto whole = StrippedPartition::WholeRelation(t.num_rows());
  SamplerConfig config;
  config.sample_size = 800;
  config.seed = 5;
  AocSampler s1(&t, config);
  AocSampler s2(&t, config);
  EXPECT_EQ(s1.sampled_rows(), s2.sampled_rows());
  EXPECT_DOUBLE_EQ(s1.EstimateFactor(whole, 0, 1),
                   s2.EstimateFactor(whole, 0, 1));
}

// ------------------------------------------------- interestingness --

TEST(InterestingnessTest, EmptyContextScoresOne) {
  StrippedPartition whole = StrippedPartition::WholeRelation(100);
  EXPECT_DOUBLE_EQ(InterestingnessScore(whole, 0, 100), 1.0);
}

TEST(InterestingnessTest, DecreasesWithContextSize) {
  StrippedPartition p = StrippedPartition::FromClasses(
      {{0, 1, 2, 3}, {4, 5, 6, 7}});  // full coverage of 8 rows
  double level1 = InterestingnessScore(p, 1, 8);
  double level2 = InterestingnessScore(p, 2, 8);
  double level3 = InterestingnessScore(p, 3, 8);
  EXPECT_GT(level1, level2);
  EXPECT_GT(level2, level3);
  EXPECT_DOUBLE_EQ(level1, 0.5);  // coverage 1.0 / 2^1
}

TEST(InterestingnessTest, IncreasesWithCoverage) {
  StrippedPartition wide =
      StrippedPartition::FromClasses({{0, 1, 2, 3, 4, 5, 6, 7}});
  StrippedPartition narrow = StrippedPartition::FromClasses({{0, 1}});
  EXPECT_GT(InterestingnessScore(wide, 1, 8),
            InterestingnessScore(narrow, 1, 8));
}

TEST(InterestingnessTest, ZeroRowsIsZero) {
  StrippedPartition empty = StrippedPartition::FromClasses({});
  EXPECT_DOUBLE_EQ(InterestingnessScore(empty, 1, 0), 0.0);
}

}  // namespace
}  // namespace aod
