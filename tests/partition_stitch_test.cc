// Row-space sharding's reducer: per-range partition fragments and the
// class-stitching merge. The load-bearing pin is bit-identity — for any
// contiguous tiling of the rows, StitchPartitions over the per-range
// fragments must reproduce StrippedPartition::FromColumn on the full
// column byte for byte, because that equality is what carries the
// determinism contract across the row-shard seam.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "data/encoder.h"
#include "gen/random.h"
#include "partition/partition_stitch.h"
#include "partition/stripped_partition.h"
#include "shard/row_sharding.h"
#include "test_util.h"

namespace aod {
namespace {

// ------------------------------------------------- range assignment --

TEST(RowShardingTest, AssignRowRangesTilesExactlyAndBalanced) {
  for (int64_t rows : {0, 1, 7, 64, 1000}) {
    for (int shards : {1, 2, 3, 4, 7, 16}) {
      const std::vector<shard::RowRange> ranges =
          shard::AssignRowRanges(rows, shards);
      ASSERT_EQ(ranges.size(), static_cast<size_t>(shards));
      int64_t expect = 0;
      int64_t min_len = rows + 1;
      int64_t max_len = -1;
      for (const shard::RowRange& r : ranges) {
        EXPECT_EQ(r.begin, expect);
        EXPECT_GE(r.end, r.begin);
        min_len = std::min(min_len, r.end - r.begin);
        max_len = std::max(max_len, r.end - r.begin);
        expect = r.end;
      }
      EXPECT_EQ(expect, rows);
      EXPECT_LE(max_len - min_len, 1) << rows << " rows / " << shards;
    }
  }
}

// ------------------------------------------------ fragment building --

TEST(PartitionStitchTest, FragmentFromColumnKnownValues) {
  // ranks: rows 0..5 -> 1 0 1 2 0 1 (cardinality 3)
  EncodedColumn col;
  col.ranks = {1, 0, 1, 2, 0, 1};
  col.cardinality = 3;
  const PartitionFragment f = FragmentFromColumn(col, 0, 6, /*attribute=*/2);
  EXPECT_EQ(f.attribute, 2);
  EXPECT_EQ(f.row_begin, 0);
  EXPECT_EQ(f.row_end, 6);
  // Classes keyed and ordered by rank, singletons kept, rows ascending.
  EXPECT_EQ(f.class_ranks, (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(f.class_offsets, (std::vector<int32_t>{0, 2, 5, 6}));
  EXPECT_EQ(f.row_ids, (std::vector<int32_t>{1, 4, 0, 2, 5, 3}));

  // A sub-range sees only its own rows, with global ids.
  const PartitionFragment mid = FragmentFromColumn(col, 2, 5, 2);
  EXPECT_EQ(mid.class_ranks, (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(mid.class_offsets, (std::vector<int32_t>{0, 1, 2, 3}));
  EXPECT_EQ(mid.row_ids, (std::vector<int32_t>{4, 2, 3}));

  // The empty range is a valid fragment: no classes, no rows.
  const PartitionFragment empty = FragmentFromColumn(col, 3, 3, 2);
  EXPECT_EQ(empty.num_classes(), 0);
  EXPECT_EQ(empty.num_rows(), 0);
  EXPECT_EQ(empty.class_offsets, (std::vector<int32_t>{0}));
}

TEST(PartitionStitchTest, FragmentFromSliceMatchesFromColumn) {
  EncodedTable t = testing_util::RandomEncodedTable(97, 3, 6, 11);
  for (int a = 0; a < t.num_columns(); ++a) {
    const EncodedColumn& full = t.column(a);
    for (const auto& [lo, hi] :
         std::vector<std::pair<int64_t, int64_t>>{{0, 97}, {13, 55}, {55, 97},
                                                  {40, 40}}) {
      // A slice column holds only the range's ranks but the GLOBAL
      // cardinality — exactly what DecodeTableSlice hands the runner.
      EncodedColumn slice;
      slice.cardinality = full.cardinality;
      slice.ranks.assign(full.ranks.begin() + lo, full.ranks.begin() + hi);
      const PartitionFragment from_slice = FragmentFromSlice(slice, lo, a);
      const PartitionFragment from_column = FragmentFromColumn(full, lo, hi, a);
      EXPECT_EQ(from_slice.class_ranks, from_column.class_ranks);
      EXPECT_EQ(from_slice.class_offsets, from_column.class_offsets);
      EXPECT_EQ(from_slice.row_ids, from_column.row_ids);
      EXPECT_EQ(from_slice.row_begin, from_column.row_begin);
      EXPECT_EQ(from_slice.row_end, from_column.row_end);
    }
  }
}

// ------------------------------------------------- stitch bit-identity --

void ExpectStitchMatchesFromColumn(const EncodedTable& t, int row_shards) {
  const std::vector<shard::RowRange> ranges =
      shard::AssignRowRanges(t.num_rows(), row_shards);
  for (int a = 0; a < t.num_columns(); ++a) {
    std::vector<PartitionFragment> fragments;
    for (const shard::RowRange& r : ranges) {
      fragments.push_back(FragmentFromColumn(t.column(a), r.begin, r.end, a));
    }
    Result<StrippedPartition> stitched =
        StitchPartitions(fragments, t.num_rows());
    ASSERT_TRUE(stitched.ok()) << stitched.status().ToString();
    const StrippedPartition direct = StrippedPartition::FromColumn(t.column(a));
    // Byte-for-byte, not merely equivalent: the stitched bases feed the
    // same frames / fingerprints the unsharded bases do.
    EXPECT_EQ(stitched->Serialize(), direct.Serialize())
        << "attribute " << a << ", " << row_shards << " row shards";
    if (stitched->num_classes() > 0) {
      EXPECT_TRUE(stitched->IsCanonical());
    }
  }
}

class StitchPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StitchPropertyTest, StitchIsBitIdenticalToFromColumn) {
  Rng rng(GetParam());
  const int64_t rows = 30 + static_cast<int64_t>(rng.UniformInt(0, 170));
  const int64_t cardinality = 1 + rng.UniformInt(1, 10);
  EncodedTable t = testing_util::RandomEncodedTable(
      rows, 4, cardinality, GetParam() * 7919 + 3);
  for (int shards : {1, 2, 3, 4, 7}) {
    ExpectStitchMatchesFromColumn(t, shards);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StitchPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(PartitionStitchTest, StitchEdgeCases) {
  // More shards than rows: empty ranges are legal tiles.
  EncodedTable tiny = testing_util::RandomEncodedTable(3, 2, 2, 17);
  ExpectStitchMatchesFromColumn(tiny, 8);

  // All-distinct column: every class is a cross-range singleton, the
  // stitched partition is empty.
  EncodedColumn distinct;
  distinct.cardinality = 6;
  distinct.ranks = {5, 3, 0, 4, 1, 2};
  std::vector<PartitionFragment> fragments = {
      FragmentFromColumn(distinct, 0, 3, 0),
      FragmentFromColumn(distinct, 3, 6, 0)};
  Result<StrippedPartition> stitched = StitchPartitions(fragments, 6);
  ASSERT_TRUE(stitched.ok());
  EXPECT_EQ(stitched->num_classes(), 0);

  // A value that is a singleton in BOTH ranges must survive the stitch
  // as one class of two — the case plain per-range stripping would lose.
  EncodedColumn split;
  split.cardinality = 3;
  split.ranks = {0, 1, 2, 1, 0, 2};
  fragments = {FragmentFromColumn(split, 0, 3, 0),
               FragmentFromColumn(split, 3, 6, 0)};
  stitched = StitchPartitions(fragments, 6);
  ASSERT_TRUE(stitched.ok());
  EXPECT_EQ(stitched->Serialize(),
            StrippedPartition::FromColumn(split).Serialize());
  EXPECT_EQ(stitched->num_classes(), 3);

  // Zero-row table.
  stitched = StitchPartitions({}, 0);
  ASSERT_TRUE(stitched.ok());
  EXPECT_EQ(stitched->num_classes(), 0);
}

TEST(PartitionStitchTest, StitchRejectsBadTilings) {
  EncodedColumn col;
  col.cardinality = 2;
  col.ranks = {0, 1, 0, 1};
  const PartitionFragment lo = FragmentFromColumn(col, 0, 2, 0);
  const PartitionFragment hi = FragmentFromColumn(col, 2, 4, 0);
  PartitionFragment other = hi;
  other.attribute = 1;

  // Gap (missing middle), overlap (range repeated), wrong order,
  // short coverage, attribute disagreement.
  EXPECT_FALSE(StitchPartitions({lo}, 4).ok());
  EXPECT_FALSE(StitchPartitions({lo, lo}, 4).ok());
  EXPECT_FALSE(StitchPartitions({hi, lo}, 4).ok());
  EXPECT_FALSE(StitchPartitions({lo, hi}, 5).ok());
  EXPECT_FALSE(StitchPartitions({lo, other}, 4).ok());
  EXPECT_TRUE(StitchPartitions({lo, hi}, 4).ok());
}

// ------------------------------------------------ fragment wire body --

TEST(PartitionStitchTest, FragmentSerializeDeserializeRoundTrip) {
  EncodedTable t = testing_util::RandomEncodedTable(60, 2, 5, 23);
  const PartitionFragment f = FragmentFromColumn(t.column(1), 10, 45, 1);
  const std::vector<uint8_t> bytes = f.Serialize();
  size_t consumed = 0;
  Result<PartitionFragment> back = PartitionFragment::Deserialize(
      bytes.data(), bytes.size(), f.attribute, f.row_begin, f.row_end,
      &consumed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(back->class_ranks, f.class_ranks);
  EXPECT_EQ(back->class_offsets, f.class_offsets);
  EXPECT_EQ(back->row_ids, f.row_ids);
  EXPECT_EQ(back->Serialize(), bytes);

  // Truncation rejected at every prefix length.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(PartitionFragment::Deserialize(bytes.data(), len, 1, 10, 45)
                     .ok())
        << "prefix " << len;
  }
  // The same bytes against a different range: coverage is pinned.
  EXPECT_FALSE(
      PartitionFragment::Deserialize(bytes.data(), bytes.size(), 1, 10, 46)
          .ok());
  EXPECT_FALSE(
      PartitionFragment::Deserialize(bytes.data(), bytes.size(), 1, 9, 44)
          .ok());
}

TEST(PartitionStitchTest, StructurallyInvalidFragmentsRejected) {
  auto encode = [](const std::vector<int32_t>& ranks,
                   const std::vector<int32_t>& offsets,
                   const std::vector<int32_t>& rows) {
    PartitionFragment f;
    f.class_ranks = ranks;
    f.class_offsets = offsets;
    f.row_ids = rows;
    return f.Serialize();
  };
  auto expect_reject = [](const std::vector<uint8_t>& bytes, int64_t begin,
                          int64_t end, const char* what) {
    EXPECT_FALSE(
        PartitionFragment::Deserialize(bytes.data(), bytes.size(), 0, begin,
                                       end)
            .ok())
        << what;
  };
  // Valid shape over [4, 8): ranks {1, 3}, rows {4,6 | 5,7}.
  const std::vector<uint8_t> good =
      encode({1, 3}, {0, 2, 4}, {4, 6, 5, 7});
  ASSERT_TRUE(
      PartitionFragment::Deserialize(good.data(), good.size(), 0, 4, 8).ok());

  expect_reject(encode({3, 1}, {0, 2, 4}, {4, 6, 5, 7}), 4, 8,
                "ranks not ascending");
  expect_reject(encode({1, 1}, {0, 2, 4}, {4, 6, 5, 7}), 4, 8,
                "duplicate rank");
  expect_reject(encode({-1, 3}, {0, 2, 4}, {4, 6, 5, 7}), 4, 8,
                "negative rank");
  expect_reject(encode({1, 3}, {1, 2, 4}, {4, 6, 5, 7}), 4, 8,
                "offset base != 0");
  expect_reject(encode({1, 3}, {0, 2, 2}, {4, 6, 5, 7}), 4, 8,
                "empty class");
  expect_reject(encode({1, 3}, {0, 2, 4}, {4, 6, 5, 9}), 4, 8,
                "row outside range");
  expect_reject(encode({1, 3}, {0, 2, 4}, {6, 4, 5, 7}), 4, 8,
                "rows descending in class");
  expect_reject(encode({1, 3}, {0, 2, 4}, {4, 6, 5, 6}), 4, 8,
                "row in two classes");
  // Not total coverage: 3 rows over a 4-row range.
  expect_reject(encode({1, 3}, {0, 2, 3}, {4, 6, 5}), 4, 8,
                "partial coverage");
}

// ---------------------------------------- the whole phase, in process --

TEST(RowShardingTest, ComputeRowShardedBasesMatchesFromColumn) {
  EncodedTable t = testing_util::RandomEncodedTable(150, 3, 5, 41);
  for (int shards : {1, 2, 4, 9}) {
    for (bool compress : {false, true}) {
      shard::ShardTransportOptions topts;
      topts.transport = ShardTransport::kInProcess;
      shard::RowShardStats stats;
      Result<std::vector<StrippedPartition>> bases =
          shard::ComputeRowShardedBases(t, shards, topts, compress, &stats);
      ASSERT_TRUE(bases.ok()) << bases.status().ToString();
      ASSERT_EQ(bases->size(), static_cast<size_t>(t.num_columns()));
      for (int a = 0; a < t.num_columns(); ++a) {
        EXPECT_EQ((*bases)[static_cast<size_t>(a)].Serialize(),
                  StrippedPartition::FromColumn(t.column(a)).Serialize());
      }
      EXPECT_EQ(stats.row_shards, shards);
      ASSERT_EQ(stats.table_bytes_per_shard.size(),
                static_cast<size_t>(shards));
      EXPECT_GT(stats.bytes_shipped_total, 0);
    }
  }

  // The point of the axis: per-shard table bytes shrink as O(rows/N).
  shard::ShardTransportOptions topts;
  topts.transport = ShardTransport::kInProcess;
  shard::RowShardStats one;
  shard::RowShardStats four;
  ASSERT_TRUE(shard::ComputeRowShardedBases(t, 1, topts, false, &one).ok());
  ASSERT_TRUE(shard::ComputeRowShardedBases(t, 4, topts, false, &four).ok());
  for (int64_t per_shard : four.table_bytes_per_shard) {
    // A quarter of the rows plus fixed per-column framing overhead.
    EXPECT_LT(per_shard, one.table_bytes_per_shard[0] / 2);
  }
}

}  // namespace
}  // namespace aod
