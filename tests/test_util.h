// Shared fixtures and brute-force oracles for the libaod test suite.
#ifndef AOD_TESTS_TEST_UTIL_H_
#define AOD_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "data/encoder.h"
#include "data/table.h"
#include "gen/random.h"
#include "partition/attribute_set.h"
#include "partition/stripped_partition.h"

namespace aod {
namespace testing_util {

/// The paper's Table 1 (employee salaries). Column indices:
/// 0 pos, 1 exp, 2 sal, 3 taxGrp, 4 perc, 5 tax, 6 bonus.
/// Tuple t_i of the paper is row i-1.
inline Table PaperTable1() {
  Schema schema({{"pos", DataType::kString},
                 {"exp", DataType::kInt64},
                 {"sal", DataType::kInt64},
                 {"taxGrp", DataType::kString},
                 {"perc", DataType::kInt64},
                 {"tax", DataType::kDouble},
                 {"bonus", DataType::kInt64}});
  return Table::FromRows(
      std::move(schema),
      {
          // pos,  exp, sal(K), taxGrp, perc, tax(K), bonus(K)
          {"sec", int64_t{1}, int64_t{20}, "A", int64_t{10}, 2.0, int64_t{1}},
          {"sec", int64_t{3}, int64_t{25}, "A", int64_t{10}, 2.5, int64_t{1}},
          {"dev", int64_t{1}, int64_t{30}, "A", int64_t{1}, 0.3, int64_t{3}},
          {"sec", int64_t{5}, int64_t{40}, "B", int64_t{30}, 12.0, int64_t{2}},
          {"dev", int64_t{3}, int64_t{50}, "B", int64_t{3}, 1.5, int64_t{4}},
          {"dev", int64_t{5}, int64_t{55}, "B", int64_t{30}, 16.5,
           int64_t{4}},
          {"dev", int64_t{5}, int64_t{60}, "B", int64_t{3}, 1.8, int64_t{4}},
          {"dev", int64_t{-1}, int64_t{90}, "C", int64_t{8}, 7.2, int64_t{7}},
          {"dir", int64_t{8}, int64_t{200}, "C", int64_t{8}, 16.0,
           int64_t{10}},
      });
}

inline EncodedTable PaperEncoded() { return EncodeTable(PaperTable1()); }

/// Random integer table: `cols` columns, values uniform in [0, cardinality).
inline EncodedTable RandomEncodedTable(int64_t rows, int cols,
                                       int64_t cardinality, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int64_t>> columns(static_cast<size_t>(cols));
  std::vector<std::string> names;
  for (int c = 0; c < cols; ++c) {
    names.push_back("c" + std::to_string(c));
    for (int64_t r = 0; r < rows; ++r) {
      columns[static_cast<size_t>(c)].push_back(
          rng.UniformInt(0, cardinality - 1));
    }
  }
  return EncodedTableFromInts(names, columns);
}

/// Definition-based partition: group rows by equality on `attrs`.
inline StrippedPartition NaivePartition(const EncodedTable& table,
                                        AttributeSet attrs) {
  std::map<std::vector<int32_t>, std::vector<int32_t>> groups;
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    std::vector<int32_t> key;
    attrs.ForEach([&](int a) {
      key.push_back(table.ranks(a)[static_cast<size_t>(r)]);
    });
    groups[key].push_back(static_cast<int32_t>(r));
  }
  std::vector<std::vector<int32_t>> classes;
  for (auto& [key, rows] : groups) classes.push_back(std::move(rows));
  return StrippedPartition::FromClasses(std::move(classes));
}

/// Definition-based swap test (Def. 2.5) over a set of live rows.
inline bool HasSwapNaive(const EncodedTable& table, AttributeSet context,
                         int a, int b, const std::vector<int32_t>& rows) {
  const auto& ra = table.ranks(a);
  const auto& rb = table.ranks(b);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      int32_t s = rows[i];
      int32_t t = rows[j];
      bool same_context = true;
      context.ForEach([&](int c) {
        if (table.ranks(c)[static_cast<size_t>(s)] !=
            table.ranks(c)[static_cast<size_t>(t)]) {
          same_context = false;
        }
      });
      if (!same_context) continue;
      size_t si = static_cast<size_t>(s);
      size_t ti = static_cast<size_t>(t);
      if ((ra[si] < ra[ti] && rb[ti] < rb[si]) ||
          (ra[ti] < ra[si] && rb[si] < rb[ti])) {
        return true;
      }
    }
  }
  return false;
}

/// True iff the OC context: a ~ b holds exactly, straight from Def. 2.5.
inline bool OcHoldsNaive(const EncodedTable& table, AttributeSet context,
                         int a, int b) {
  std::vector<int32_t> all;
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    all.push_back(static_cast<int32_t>(r));
  }
  return !HasSwapNaive(table, context, a, b, all);
}

/// True iff the OFD context: [] -> a holds exactly.
inline bool OfdHoldsNaive(const EncodedTable& table, AttributeSet context,
                          int a) {
  for (int64_t s = 0; s < table.num_rows(); ++s) {
    for (int64_t t = s + 1; t < table.num_rows(); ++t) {
      bool same_context = true;
      context.ForEach([&](int c) {
        if (table.ranks(c)[static_cast<size_t>(s)] !=
            table.ranks(c)[static_cast<size_t>(t)]) {
          same_context = false;
        }
      });
      if (same_context && table.ranks(a)[static_cast<size_t>(s)] !=
                              table.ranks(a)[static_cast<size_t>(t)]) {
        return false;
      }
    }
  }
  return true;
}

/// Exponential-time minimal removal set size for an AOC — the ground
/// truth of Def. 2.14. Only usable for tiny inputs (<= ~20 rows).
inline int64_t MinRemovalOcBruteForce(const EncodedTable& table,
                                      AttributeSet context, int a, int b) {
  const int64_t n = table.num_rows();
  std::vector<int32_t> all;
  for (int64_t r = 0; r < n; ++r) all.push_back(static_cast<int32_t>(r));
  // Search by increasing removal size: find the largest swap-free subset.
  for (int64_t keep = n; keep >= 0; --keep) {
    // Enumerate subsets of size `keep` via combinations.
    std::vector<bool> select(static_cast<size_t>(n), false);
    std::fill(select.begin(), select.begin() + static_cast<size_t>(keep),
              true);
    do {
      std::vector<int32_t> rows;
      for (int64_t r = 0; r < n; ++r) {
        if (select[static_cast<size_t>(r)]) {
          rows.push_back(static_cast<int32_t>(r));
        }
      }
      if (!HasSwapNaive(table, context, a, b, rows)) {
        return n - keep;
      }
    } while (std::prev_permutation(select.begin(), select.end()));
  }
  return n;
}

/// O(m^2) LNDS length oracle.
inline int64_t LndsLengthNaive(const std::vector<int32_t>& xs) {
  std::vector<int64_t> best(xs.size(), 1);
  int64_t out = xs.empty() ? 0 : 1;
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (xs[j] <= xs[i]) best[i] = std::max(best[i], best[j] + 1);
    }
    out = std::max(out, best[i]);
  }
  return out;
}

}  // namespace testing_util
}  // namespace aod

#endif  // AOD_TESTS_TEST_UTIL_H_
