// Tests for src/exec (ThreadPool, TaskGroup, ParallelFor) and for the
// concurrent behaviour of PartitionCache on top of the pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "exec/parallel_for.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "partition/partition_cache.h"
#include "test_util.h"

namespace aod {
namespace {

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, RunsEveryTask) {
  exec::ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  std::atomic<int> count{0};
  exec::TaskGroup group(&pool);
  for (int i = 0; i < 1000; ++i) {
    group.Run([&count] { count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), exec::ThreadPool::HardwareConcurrency());
  EXPECT_GE(exec::ThreadPool::HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, WorkerIndexIsStableAndScoped) {
  exec::ThreadPool pool(3);
  // The calling thread is not a worker.
  EXPECT_EQ(pool.WorkerIndex(), -1);
  std::mutex mutex;
  std::set<int> seen;
  exec::TaskGroup group(&pool);
  for (int i = 0; i < 64; ++i) {
    group.Run([&] {
      int index = pool.WorkerIndex();
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(index);
    });
  }
  group.Wait();
  // Tasks run on pool workers (indices 0..2) or on the joining thread
  // itself when Wait() helps — which reports -1, like any foreign thread.
  for (int index : seen) {
    EXPECT_GE(index, -1);
    EXPECT_LT(index, 3);
  }
  // A second pool's workers are strangers to the first.
  exec::ThreadPool other(1);
  std::atomic<int> cross{0};
  exec::TaskGroup cross_group(&other);
  cross_group.Run([&] { cross.store(pool.WorkerIndex()); });
  cross_group.Wait();
  EXPECT_EQ(cross.load(), -1);
}

TEST(ThreadPoolTest, NestedForkJoinDoesNotDeadlock) {
  // A pool task that itself forks and joins must not deadlock even on a
  // single-worker pool: the joiner helps run queued tasks.
  exec::ThreadPool pool(1);
  std::atomic<int> leaves{0};
  exec::TaskGroup outer(&pool);
  for (int i = 0; i < 8; ++i) {
    outer.Run([&] {
      exec::TaskGroup inner(&pool);
      for (int j = 0; j < 8; ++j) {
        inner.Run([&] { leaves.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPoolTest, StartSubmitStopLoopNeverStrandsATask) {
  // Tight create/submit/destroy cycles aimed at the shutdown protocol:
  // the destructor's stop races tasks that are still *resubmitting* new
  // work from inside the pool. Every task — including the resubmitted
  // generation — must run before join returns; a stranded worker (lost
  // wakeup) hangs the loop, a dropped task fails the count.
  for (int iter = 0; iter < 200; ++iter) {
    std::atomic<int> runs{0};
    {
      exec::ThreadPool pool(3);
      for (int i = 0; i < 16; ++i) {
        pool.Submit([&runs, &pool] {
          runs.fetch_add(1);
          pool.Submit([&runs] { runs.fetch_add(1); });
        });
      }
      // Destructor entered immediately: stop_ is set while first-
      // generation tasks are mid-flight and still submitting.
    }
    ASSERT_EQ(runs.load(), 32) << "iteration " << iter;
  }
}

TEST(TaskGroupTest, NullPoolRunsInline) {
  exec::TaskGroup group(nullptr);
  int runs = 0;
  group.Run([&runs] { ++runs; });
  EXPECT_EQ(runs, 1);  // already executed, before Wait
  group.Wait();
  EXPECT_EQ(runs, 1);
}

// ----------------------------------------------------------- ParallelFor --

TEST(ParallelForTest, ExecutesEachIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  int64_t executed = exec::ParallelFor(
      &pool, 0, 257, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  EXPECT_EQ(executed, 257);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, WorksWithoutPoolAndWithGrain) {
  std::vector<int> hits(100, 0);
  exec::ParallelForOptions options;
  options.grain = 7;
  int64_t executed = exec::ParallelFor(
      nullptr, 0, 100, [&](int64_t i) { hits[static_cast<size_t>(i)]++; },
      options);
  EXPECT_EQ(executed, 100);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, EmptyRange) {
  exec::ThreadPool pool(2);
  int64_t executed =
      exec::ParallelFor(&pool, 5, 5, [](int64_t) { FAIL(); });
  EXPECT_EQ(executed, 0);
}

TEST(ParallelForTest, CancelStopsIssuingIterations) {
  exec::ThreadPool pool(2);
  std::atomic<int64_t> done{0};
  exec::ParallelForOptions options;
  options.cancel = [&done] { return done.load() >= 10; };
  int64_t executed = exec::ParallelFor(
      &pool, 0, 1000000, [&](int64_t) { done.fetch_add(1); }, options);
  EXPECT_LT(executed, 1000000);
  EXPECT_EQ(executed, done.load());
}

// ---------------------------------------------- concurrent PartitionCache --

TEST(ConcurrentPartitionCacheTest, ParallelGetsMatchSerialExactly) {
  EncodedTable t = testing_util::RandomEncodedTable(300, 5, 4, 99);
  const int64_t num_sets = int64_t{1} << 5;

  PartitionCache serial(&t);
  std::vector<std::string> expected(static_cast<size_t>(num_sets));
  for (int64_t bits = 0; bits < num_sets; ++bits) {
    expected[static_cast<size_t>(bits)] =
        serial.Get(AttributeSet(static_cast<uint64_t>(bits)))->ToString();
  }

  // Hammer a fresh cache from 8 workers; every partition must be
  // byte-identical to the serial derivation (the fixed-rule guarantee)
  // and each derived key must be computed exactly once.
  PartitionCache parallel(&t);
  exec::ThreadPool pool(8);
  std::vector<std::string> got(static_cast<size_t>(num_sets));
  exec::ParallelFor(&pool, 0, num_sets, [&](int64_t bits) {
    got[static_cast<size_t>(bits)] =
        parallel.Get(AttributeSet(static_cast<uint64_t>(bits)))->ToString();
  });
  for (int64_t bits = 0; bits < num_sets; ++bits) {
    EXPECT_EQ(got[static_cast<size_t>(bits)],
              expected[static_cast<size_t>(bits)])
        << AttributeSet(static_cast<uint64_t>(bits)).ToString();
  }
  EXPECT_EQ(parallel.products_computed(), serial.products_computed());
}

TEST(ConcurrentPartitionCacheTest, ContendedKeyComputedOnce) {
  EncodedTable t = testing_util::RandomEncodedTable(500, 4, 3, 41);
  PartitionCache cache(&t);
  exec::ThreadPool pool(8);
  AttributeSet key = AttributeSet::Of({0, 1, 2, 3});
  std::vector<std::shared_ptr<const StrippedPartition>> results(64);
  exec::ParallelFor(&pool, 0, 64, [&](int64_t i) {
    results[static_cast<size_t>(i)] = cache.Get(key);
  });
  for (const auto& p : results) EXPECT_EQ(p.get(), results[0].get());
  // {0,1}, {0,1,2}, {0,1,2,3}: one product per derived key, no repeats.
  EXPECT_EQ(cache.products_computed(), 3);
}

TEST(ConcurrentPartitionCacheTest, EvictionThenConcurrentRederive) {
  EncodedTable t = testing_util::RandomEncodedTable(200, 4, 3, 77);
  PartitionCache cache(&t);
  cache.Get(AttributeSet::Of({0, 1, 2}));
  std::string before = cache.Get(AttributeSet::Of({0, 1}))->ToString();
  cache.EvictSmallerThan(4);
  EXPECT_FALSE(cache.Contains(AttributeSet::Of({0, 1})));
  exec::ThreadPool pool(4);
  std::vector<std::string> redone(16);
  exec::ParallelFor(&pool, 0, 16, [&](int64_t i) {
    redone[static_cast<size_t>(i)] =
        cache.Get(AttributeSet::Of({0, 1}))->ToString();
  });
  for (const auto& s : redone) EXPECT_EQ(s, before);
}

}  // namespace
}  // namespace aod
