// End-to-end off-box sharding: spawn real shard_runner_main processes,
// run discovery over the socket and process transports, and diff the
// output byte-for-byte against the unsharded run. This is the
// acceptance gate of the off-box seam: shard_transport ∈ {inproc,
// socket, process} × num_shards ∈ {1, 2, 4} must be bit-identical, the
// stats footers must deliver the shard-side counters, and a runner that
// cannot start must surface as a typed error, not a hang or a crash.
//
// The runner binary is found next to this test binary (both live in the
// build root); AOD_SHARD_RUNNER overrides.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "gen/ncvoter_generator.h"
#include "od/discovery.h"
#include "test_util.h"

namespace aod {
namespace {

std::string RunnerBinaryPath() {
  if (const char* env = std::getenv("AOD_SHARD_RUNNER")) return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  const std::string sibling =
      (std::filesystem::path(buf).parent_path() / "shard_runner_main")
          .string();
  return std::filesystem::exists(sibling) ? sibling : "";
}

void AppendDouble(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a,", v);  // exact hex fingerprint
  *out += buf;
}

/// Byte-exact serialization of both dependency lists with every payload
/// field — what "diff output byte-for-byte against the unsharded run"
/// means (see parallel_determinism_test for the full-stats variant).
std::string OutputFingerprint(const DiscoveryResult& result) {
  std::string out;
  for (const DiscoveredDependency& d : result.dependencies) {
    out += std::to_string(static_cast<int>(d.kind)) + "," +
           std::to_string(d.context.bits()) + "," + std::to_string(d.a) +
           "," + std::to_string(d.b) + "," + (d.opposite ? "1," : "0,");
    AppendDouble(&out, d.error);
    out += std::to_string(d.removal_size) + "," + std::to_string(d.level) +
           ",";
    AppendDouble(&out, d.interestingness);
    for (int32_t r : d.removal_rows) out += std::to_string(r) + ",";
    out += ';';
  }
  return out;
}

TEST(ShardProcessE2eTest, AllTransportsMatchUnshardedBitExactly) {
  const std::string runner = RunnerBinaryPath();
  if (runner.empty()) {
    GTEST_SKIP() << "shard_runner_main not found next to the test binary";
  }
  Table t = GenerateNcVoterTable(300, 6, 11);
  EncodedTable enc = EncodeTable(t);

  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.collect_removal_sets = true;
  options.num_threads = 2;
  DiscoveryResult unsharded = DiscoverOds(enc, options);
  ASSERT_TRUE(unsharded.shard_status.ok());
  const std::string expected = OutputFingerprint(unsharded);

  options.shard_runner_path = runner;
  for (ShardTransport transport :
       {ShardTransport::kInProcess, ShardTransport::kSocket,
        ShardTransport::kProcess}) {
    options.shard_transport = transport;
    for (int shards : {1, 2, 4}) {
      for (bool compression : {true, false}) {
        SCOPED_TRACE(std::string(ShardTransportToString(transport)) +
                     " x shards=" + std::to_string(shards) +
                     (compression ? "" : " x raw wire"));
        options.num_shards = shards;
        options.shard_wire_compression = compression;
        DiscoveryResult sharded = DiscoverOds(enc, options);
        ASSERT_TRUE(sharded.shard_status.ok())
            << sharded.shard_status.ToString();
        EXPECT_EQ(OutputFingerprint(sharded), expected);
        EXPECT_EQ(sharded.stats.shards_used, shards);
        EXPECT_GT(sharded.stats.shard_bytes_shipped, 0);
        // Stats footers delivered the shard-side partition counters.
        EXPECT_GT(sharded.stats.partitions_computed, 0);
        EXPECT_GT(sharded.stats.partition_bytes_peak, 0);
      }
    }
  }
}

TEST(ShardProcessE2eTest, ProcessTransportShipsTheTable) {
  const std::string runner = RunnerBinaryPath();
  if (runner.empty()) {
    GTEST_SKIP() << "shard_runner_main not found next to the test binary";
  }
  Table t = GenerateNcVoterTable(250, 5, 3);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.num_shards = 2;
  options.num_threads = 1;

  options.shard_transport = ShardTransport::kInProcess;
  DiscoveryResult inproc = DiscoverOds(enc, options);
  ASSERT_TRUE(inproc.shard_status.ok());

  options.shard_transport = ShardTransport::kProcess;
  options.shard_runner_path = runner;
  DiscoveryResult process = DiscoverOds(enc, options);
  ASSERT_TRUE(process.shard_status.ok()) << process.shard_status.ToString();

  // Identical output, heavier wire: the process runners additionally
  // received a config block and the full rank-encoded table.
  EXPECT_EQ(OutputFingerprint(process), OutputFingerprint(inproc));
  EXPECT_GT(process.stats.shard_bytes_shipped,
            inproc.stats.shard_bytes_shipped);
  // Shard-local derivation schedules are transport-independent.
  EXPECT_EQ(process.stats.partitions_computed,
            inproc.stats.partitions_computed);
}

TEST(ShardProcessE2eTest, MissingRunnerBinaryIsTypedNotACrash) {
  Table t = GenerateNcVoterTable(60, 3, 5);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.num_shards = 2;
  options.shard_transport = ShardTransport::kProcess;
  options.shard_runner_path = "/nonexistent/aod_shard_runner";
  options.shard_io_timeout_seconds = 1.0;
  // Strict mode: with supervision on, a missing binary degrades to
  // in-process execution and the run *completes* — that contract is
  // pinned by MissingRunnerBinaryFallsBackInProcess below.
  options.shard_max_retries = 0;
  DiscoveryResult result = DiscoverOds(enc, options);
  ASSERT_FALSE(result.shard_status.ok());
  EXPECT_TRUE(result.dependencies.empty());
}

TEST(ShardProcessE2eTest, RunnerThatNeverConnectsTimesOutTyped) {
  Table t = GenerateNcVoterTable(60, 3, 5);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.num_shards = 1;
  options.shard_transport = ShardTransport::kProcess;
  // Spawns fine, exits immediately, never speaks the protocol: the
  // accept must time out with a typed error, not hang.
  options.shard_runner_path = "/bin/true";
  options.shard_io_timeout_seconds = 0.5;
  options.shard_max_retries = 0;  // strict: pin the typed fail-stop
  DiscoveryResult result = DiscoverOds(enc, options);
  ASSERT_FALSE(result.shard_status.ok());
  EXPECT_EQ(result.shard_status.code(), StatusCode::kIoError)
      << result.shard_status.ToString();
}

// ---------------------------------------------------------------------
// Supervised execution: the same faults that abort in strict mode are
// absorbed by the retry / respawn / fallback ladder, and the completed
// run is bit-identical to the unsharded one.
// ---------------------------------------------------------------------

TEST(ShardProcessE2eTest, MissingRunnerBinaryFallsBackInProcess) {
  Table t = GenerateNcVoterTable(120, 4, 5);
  EncodedTable enc = EncodeTable(t);

  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.num_threads = 2;
  DiscoveryResult unsharded = DiscoverOds(enc, options);
  ASSERT_TRUE(unsharded.shard_status.ok());

  options.num_shards = 2;
  options.shard_transport = ShardTransport::kProcess;
  options.shard_runner_path = "/nonexistent/aod_shard_runner";
  options.shard_io_timeout_seconds = 1.0;
  options.shard_max_retries = 1;
  options.shard_retry_backoff_ms = 1.0;
  DiscoveryResult result = DiscoverOds(enc, options);
  ASSERT_TRUE(result.shard_status.ok()) << result.shard_status.ToString();
  EXPECT_EQ(OutputFingerprint(result), OutputFingerprint(unsharded));
  // Every shard exhausted its retries and degraded in-process.
  EXPECT_EQ(result.stats.shard_fallback_shards, 2);
  EXPECT_GT(result.stats.shard_retries, 0);
}

TEST(ShardProcessE2eTest, RunnerKilledMidLevelIsRespawnedBitExactly) {
  const std::string runner = RunnerBinaryPath();
  if (runner.empty()) {
    GTEST_SKIP() << "shard_runner_main not found next to the test binary";
  }
  Table t = GenerateNcVoterTable(200, 5, 9);
  EncodedTable enc = EncodeTable(t);

  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.collect_removal_sets = true;
  options.num_threads = 2;
  DiscoveryResult unsharded = DiscoverOds(enc, options);
  ASSERT_TRUE(unsharded.shard_status.ok());
  const std::string expected = OutputFingerprint(unsharded);

  options.num_shards = 2;
  options.shard_transport = ShardTransport::kProcess;
  options.shard_runner_path = runner;
  options.shard_io_timeout_seconds = 5.0;
  options.shard_retry_backoff_ms = 1.0;

  // Exactly one runner in the fleet _exit(57)s mid-protocol (the flag
  // file makes the crash once-per-fleet); its respawned successor must
  // finish the level and the merged output must not change.
  const std::string flag =
      ::testing::TempDir() + "/aod_crash_once_" +
      std::to_string(static_cast<long long>(::getpid()));
  std::remove(flag.c_str());
  ::setenv("AOD_TEST_RUNNER_CRASH_BEFORE_FRAME", "4", 1);
  ::setenv("AOD_TEST_RUNNER_CRASH_ONCE_FLAG", flag.c_str(), 1);
  DiscoveryResult result = DiscoverOds(enc, options);
  ::unsetenv("AOD_TEST_RUNNER_CRASH_BEFORE_FRAME");
  ::unsetenv("AOD_TEST_RUNNER_CRASH_ONCE_FLAG");
  std::remove(flag.c_str());

  ASSERT_TRUE(result.shard_status.ok()) << result.shard_status.ToString();
  EXPECT_EQ(OutputFingerprint(result), expected);
  EXPECT_GT(result.stats.shard_retries, 0);
  EXPECT_GT(result.stats.shard_respawns, 0);
  EXPECT_EQ(result.stats.shard_fallback_shards, 0);
}

TEST(ShardProcessE2eTest, PersistentlyCrashingRunnerFallsBackInProcess) {
  const std::string runner = RunnerBinaryPath();
  if (runner.empty()) {
    GTEST_SKIP() << "shard_runner_main not found next to the test binary";
  }
  Table t = GenerateNcVoterTable(120, 4, 5);
  EncodedTable enc = EncodeTable(t);

  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.num_threads = 2;
  DiscoveryResult unsharded = DiscoverOds(enc, options);
  ASSERT_TRUE(unsharded.shard_status.ok());

  options.num_shards = 2;
  options.shard_transport = ShardTransport::kProcess;
  options.shard_runner_path = runner;
  options.shard_io_timeout_seconds = 5.0;
  options.shard_max_retries = 1;
  options.shard_retry_backoff_ms = 1.0;

  // No once-flag: every spawned runner crashes before its first served
  // frame, so retries can never succeed and both shards must degrade.
  ::setenv("AOD_TEST_RUNNER_CRASH_BEFORE_FRAME", "1", 1);
  DiscoveryResult result = DiscoverOds(enc, options);
  ::unsetenv("AOD_TEST_RUNNER_CRASH_BEFORE_FRAME");

  ASSERT_TRUE(result.shard_status.ok()) << result.shard_status.ToString();
  EXPECT_EQ(OutputFingerprint(result), OutputFingerprint(unsharded));
  EXPECT_EQ(result.stats.shard_fallback_shards, 2);
  EXPECT_GT(result.stats.shard_retries, 0);
}

TEST(ShardProcessE2eTest, IoTimeoutIsClampedToTheRunDeadline) {
  Table t = GenerateNcVoterTable(60, 3, 5);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.num_shards = 1;
  options.shard_transport = ShardTransport::kProcess;
  options.shard_runner_path = "/bin/true";  // never speaks the protocol
  // A generous I/O timeout clamped by a 1-second run budget: each
  // accept/receive wait must shrink to the remaining budget instead of
  // parking for 30 s per attempt.
  options.shard_io_timeout_seconds = 30.0;
  options.time_budget_seconds = 1.0;
  options.shard_max_retries = 1;
  options.shard_retry_backoff_ms = 1.0;
  options.shard_fallback_inproc = false;
  const auto start = std::chrono::steady_clock::now();
  DiscoveryResult result = DiscoverOds(enc, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(result.shard_status.ok());
  EXPECT_LT(elapsed, 10.0) << "I/O waits were not clamped to the budget";
}

}  // namespace
}  // namespace aod
