// The shard wire format: lossless canonical round-trip of partitions,
// candidate batches and result batches, plus rejection of anything
// corrupted, truncated, misversioned or structurally invalid — the
// cross-shard determinism contract is only as strong as the decoder's
// refusal to accept a partition a local derivation could never produce.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "data/encoder.h"
#include "gen/random.h"
#include "partition/partition_cache.h"
#include "partition/partition_stitch.h"
#include "partition/stripped_partition.h"
#include "shard/channel.h"
#include "shard/coordinator.h"
#include "shard/wire.h"
#include "test_util.h"

namespace aod {
namespace {

using shard::DecodedFrame;
using shard::DecodeFrame;

/// DecodeFrame returns a view that aliases its input buffer, so the
/// bytes must outlive the view — this holder pins that rule for tests
/// that decode a just-encoded temporary (ASan caught the dangling
/// variant of this pattern).
struct HeldFrame {
  std::vector<uint8_t> bytes;
  Result<DecodedFrame> decoded;
  explicit HeldFrame(std::vector<uint8_t> b)
      : bytes(std::move(b)), decoded(DecodeFrame(bytes)) {}
  bool ok() const { return decoded.ok(); }
  const DecodedFrame& operator*() const { return *decoded; }
};
using shard::FrameType;
using shard::InProcessChannel;
using shard::WireCandidate;
using shard::WireOutcome;

void ExpectRoundTrip(const StrippedPartition& p, int64_t num_rows) {
  std::vector<uint8_t> bytes = p.Serialize();
  size_t consumed = 0;
  Result<StrippedPartition> back =
      StrippedPartition::Deserialize(bytes.data(), bytes.size(), num_rows,
                                     &consumed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(back->row_ids(), p.row_ids());
  EXPECT_EQ(back->class_offsets(), p.class_offsets());
  EXPECT_EQ(back->rows_covered(), p.rows_covered());
  if (back->num_classes() > 0) {
    EXPECT_TRUE(back->IsCanonical());
  }
  // Re-encoding the decoded partition reproduces the original bytes —
  // the property a cross-shard reducer hashes on.
  EXPECT_EQ(back->Serialize(), bytes);
}

// ------------------------------------------------- partition round trip --

TEST(ShardWireTest, EmptyAndWholeRelationRoundTrip) {
  ExpectRoundTrip(StrippedPartition(), 10);
  ExpectRoundTrip(StrippedPartition::WholeRelation(6), 6);
}

// Property: FromColumn and arbitrary Product chains survive the wire
// bit-exactly, across random tables.
class ShardWirePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardWirePropertyTest, RandomPartitionsRoundTrip) {
  Rng rng(GetParam());
  const int64_t rows = 40 + static_cast<int64_t>(rng.UniformInt(0, 160));
  const int cols = 4;
  const int64_t cardinality = 1 + rng.UniformInt(1, 8);
  EncodedTable t = testing_util::RandomEncodedTable(
      rows, cols, cardinality, GetParam() * 977 + 13);

  std::vector<StrippedPartition> singles;
  for (int c = 0; c < cols; ++c) {
    singles.push_back(StrippedPartition::FromColumn(t.column(c)));
    ExpectRoundTrip(singles.back(), rows);
  }
  PartitionScratch scratch(rows);
  for (int a = 0; a < cols; ++a) {
    for (int b = a + 1; b < cols; ++b) {
      StrippedPartition pair =
          singles[static_cast<size_t>(a)].Product(
              singles[static_cast<size_t>(b)], rows, &scratch);
      ExpectRoundTrip(pair, rows);
      for (int c = 0; c < cols; ++c) {
        if (c == a || c == b) continue;
        ExpectRoundTrip(
            pair.Product(singles[static_cast<size_t>(c)], rows, &scratch),
            rows);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardWirePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------- partition rejection --

TEST(ShardWireTest, TruncatedPartitionRejectedAtEveryLength) {
  EncodedTable t = testing_util::RandomEncodedTable(30, 2, 3, 5);
  StrippedPartition p = StrippedPartition::FromColumn(t.column(0));
  ASSERT_GT(p.num_classes(), 0);
  std::vector<uint8_t> bytes = p.Serialize();
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<StrippedPartition> r =
        StrippedPartition::Deserialize(bytes.data(), len, 30);
    EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes accepted";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
}

// Little-endian append helpers for hand-crafting invalid payloads.
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}
void PutI32(std::vector<uint8_t>* out, int32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(
        (static_cast<uint32_t>(v) >> (8 * i)) & 0xff));
  }
}
std::vector<uint8_t> EncodeRaw(const std::vector<int32_t>& offsets,
                               const std::vector<int32_t>& rows,
                               uint64_t classes, uint64_t covered) {
  std::vector<uint8_t> out;
  PutU64(&out, classes);
  PutU64(&out, covered);
  for (int32_t v : offsets) PutI32(&out, v);
  for (int32_t v : rows) PutI32(&out, v);
  return out;
}

TEST(ShardWireTest, StructurallyInvalidPartitionsRejected) {
  auto expect_reject = [](const std::vector<uint8_t>& bytes, int64_t rows,
                          const char* what) {
    Result<StrippedPartition> r =
        StrippedPartition::Deserialize(bytes.data(), bytes.size(), rows);
    EXPECT_FALSE(r.ok()) << what;
  };
  // Singleton class: offsets ascend by 1.
  expect_reject(EncodeRaw({0, 1}, {0}, 1, 1), 10, "singleton class");
  // Offsets not starting at zero.
  expect_reject(EncodeRaw({1, 3}, {0, 1}, 1, 2), 10, "offset base != 0");
  // Offsets not covering the row arena.
  expect_reject(EncodeRaw({0, 2}, {0, 1, 2}, 1, 3), 10, "offset/row gap");
  // Row id out of table range.
  expect_reject(EncodeRaw({0, 2}, {0, 11}, 1, 2), 10, "row out of range");
  // Negative row id.
  expect_reject(EncodeRaw({0, 2}, {-1, 3}, 1, 2), 10, "negative row");
  // Row in two classes.
  expect_reject(EncodeRaw({0, 2, 4}, {0, 1, 1, 2}, 2, 4), 10,
                "overlapping classes");
  // Rows descending within a class (not canonical).
  expect_reject(EncodeRaw({0, 2}, {3, 1}, 1, 2), 10, "rows descending");
  // Classes not ordered by smallest row id (not canonical).
  expect_reject(EncodeRaw({0, 2, 4}, {4, 5, 0, 1}, 2, 4), 10,
                "class order not canonical");
  // More covered rows than the table holds.
  expect_reject(EncodeRaw({0, 2}, {0, 1}, 1, 2), 1, "covers > table");
  // Class/row counts inconsistent.
  expect_reject(EncodeRaw({}, {}, 0, 4), 10, "rows without classes");
}

TEST(ShardWireTest, NonCanonicalLocalPartitionIsRejectedOnDecode) {
  // FromClasses keeps the given (non-canonical) order; the wire decoder
  // must refuse it even though encoding it succeeds.
  StrippedPartition p =
      StrippedPartition::FromClasses({{4, 5}, {0, 1}});
  ASSERT_FALSE(p.IsCanonical());
  std::vector<uint8_t> bytes = p.Serialize();
  EXPECT_FALSE(
      StrippedPartition::Deserialize(bytes.data(), bytes.size(), 10).ok());
  p.Normalize();
  ExpectRoundTrip(p, 10);
}

// ------------------------------------------------------ frame layer --

TEST(ShardWireTest, FrameCorruptionDetectedAtEveryByte) {
  EncodedTable t = testing_util::RandomEncodedTable(20, 2, 3, 9);
  StrippedPartition p = StrippedPartition::FromColumn(t.column(0));
  const std::vector<uint8_t> frame =
      shard::EncodePartitionBlock(AttributeSet::Of({0}), p);

  // The pristine frame decodes.
  Result<DecodedFrame> good = DecodeFrame(frame);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(shard::DecodePartitionBlock(*good, 20).ok());

  // Any single corrupted byte — header or payload — must be caught by
  // magic/version/size/checksum validation or by payload validation.
  for (size_t i = 0; i < frame.size(); ++i) {
    std::vector<uint8_t> bad = frame;
    bad[i] ^= 0x5a;
    Result<DecodedFrame> decoded = DecodeFrame(bad);
    if (!decoded.ok()) continue;
    EXPECT_FALSE(shard::DecodePartitionBlock(*decoded, 20).ok())
        << "corrupted byte " << i << " accepted";
  }
}

TEST(ShardWireTest, TruncatedFrameRejected) {
  const std::vector<uint8_t> frame =
      shard::EncodeCandidateBatch({WireCandidate{}});
  for (size_t len = 0; len < frame.size(); ++len) {
    std::vector<uint8_t> prefix(frame.begin(),
                                frame.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(DecodeFrame(prefix).ok()) << "prefix " << len;
  }
}

TEST(ShardWireTest, UnsupportedVersionRejected) {
  std::vector<uint8_t> frame = shard::EncodeCandidateBatch({});
  frame[4] ^= 0xff;  // version field, little-endian at offset 4
  Result<DecodedFrame> r = DecodeFrame(frame);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST(ShardWireTest, FrameTypeMismatchRejectedByMessageDecoders) {
  std::vector<uint8_t> frame = shard::EncodeCandidateBatch({});
  Result<DecodedFrame> decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(shard::DecodeResultBatch(*decoded).ok());
  EXPECT_FALSE(shard::DecodePartitionBlock(*decoded, 10).ok());
}

// --------------------------------------------------- message payloads --

TEST(ShardWireTest, CandidateBatchRoundTrip) {
  std::vector<WireCandidate> batch;
  WireCandidate ofd;
  ofd.slot = 3;
  ofd.context_bits = 0b1011;
  ofd.kind = DependencyKind::kOfd;
  ofd.target = 2;
  batch.push_back(ofd);
  WireCandidate oc;
  oc.slot = 7;
  oc.context_bits = 0b100;
  oc.pair_a = 0;
  oc.pair_b = 5;
  oc.opposite = true;
  batch.push_back(oc);

  HeldFrame frame(shard::EncodeCandidateBatch(batch));
  ASSERT_TRUE(frame.ok());
  Result<std::vector<WireCandidate>> back =
      shard::DecodeCandidateBatch(*frame);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].slot, 3u);
  EXPECT_EQ((*back)[0].context_bits, 0b1011u);
  EXPECT_EQ((*back)[0].kind, DependencyKind::kOfd);
  EXPECT_EQ((*back)[0].target, 2);
  EXPECT_EQ((*back)[1].slot, 7u);
  EXPECT_EQ((*back)[1].pair_a, 0);
  EXPECT_EQ((*back)[1].pair_b, 5);
  EXPECT_TRUE((*back)[1].opposite);
}

TEST(ShardWireTest, ResultBatchRoundTripIsBitExact) {
  std::vector<WireOutcome> outcomes;
  WireOutcome o;
  o.slot = 12;
  o.valid = true;
  o.early_exit = true;
  o.removal_size = 41;
  // Values chosen to be unrepresentable in short decimal form: only a
  // bit-pattern encoding reproduces them exactly.
  o.approx_factor = 0.1 + 1e-17;
  o.interestingness = 1.0 / 3.0;
  o.seconds = 2.5e-7;
  o.removal_rows = {5, 9, 2};
  outcomes.push_back(o);
  outcomes.push_back(WireOutcome{});

  HeldFrame frame(shard::EncodeResultBatch(outcomes, /*final_chunk=*/true));
  ASSERT_TRUE(frame.ok());
  Result<shard::WireResultChunk> back = shard::DecodeResultBatch(*frame);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->final_chunk);
  ASSERT_EQ(back->outcomes.size(), 2u);
  const WireOutcome& b = back->outcomes[0];
  EXPECT_EQ(b.slot, 12u);
  EXPECT_TRUE(b.valid);
  EXPECT_TRUE(b.early_exit);
  EXPECT_EQ(b.removal_size, 41);
  EXPECT_EQ(b.approx_factor, o.approx_factor);
  EXPECT_EQ(b.interestingness, o.interestingness);
  EXPECT_EQ(b.seconds, o.seconds);
  EXPECT_EQ(b.removal_rows, o.removal_rows);
  EXPECT_FALSE(back->outcomes[1].valid);

  // A non-final chunk keeps its flag through the round trip too — the
  // coordinator's stream reassembly depends on it.
  HeldFrame open_chunk(
      shard::EncodeResultBatch(outcomes, /*final_chunk=*/false));
  ASSERT_TRUE(open_chunk.ok());
  Result<shard::WireResultChunk> open = shard::DecodeResultBatch(*open_chunk);
  ASSERT_TRUE(open.ok());
  EXPECT_FALSE(open->final_chunk);
  ASSERT_EQ(open->outcomes.size(), 2u);
  EXPECT_EQ(open->outcomes[0].approx_factor, o.approx_factor);
}

TEST(ShardWireTest, ConfigBlockRoundTripAndRejection) {
  shard::WireRunnerConfig config;
  config.shard_id = 3;
  config.attempt_id = 5;
  config.validator = 1;
  config.epsilon = 0.1 + 1e-17;  // bit-exact or bust
  config.collect_removal_sets = true;
  config.enable_sampling_filter = true;
  config.sampler_sample_size = 512;
  config.sampler_reject_margin = 0.25;
  config.sampler_seed = 99;
  config.partition_memory_budget_bytes = 1 << 20;
  config.num_threads = 4;

  HeldFrame frame(shard::EncodeConfigBlock(config));
  ASSERT_TRUE(frame.ok());
  Result<shard::WireRunnerConfig> back = shard::DecodeConfigBlock(*frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->shard_id, 3u);
  EXPECT_EQ(back->attempt_id, 5u);
  EXPECT_EQ(back->validator, 1);
  EXPECT_EQ(back->epsilon, config.epsilon);
  EXPECT_TRUE(back->collect_removal_sets);
  EXPECT_TRUE(back->enable_sampling_filter);
  EXPECT_EQ(back->sampler_sample_size, 512);
  EXPECT_EQ(back->sampler_reject_margin, 0.25);
  EXPECT_EQ(back->sampler_seed, 99u);
  EXPECT_EQ(back->partition_memory_budget_bytes, 1 << 20);
  EXPECT_EQ(back->num_threads, 4u);

  // Structural rejection: a validator kind that does not exist and an
  // epsilon outside [0, 1] decode as ParseError, not as garbage config.
  config.validator = 9;
  HeldFrame bad_validator(shard::EncodeConfigBlock(config));
  ASSERT_TRUE(bad_validator.ok());
  EXPECT_FALSE(shard::DecodeConfigBlock(*bad_validator).ok());
  config.validator = 1;
  config.epsilon = 1.5;
  HeldFrame bad_epsilon(shard::EncodeConfigBlock(config));
  EXPECT_FALSE(shard::DecodeConfigBlock(*bad_epsilon).ok());
}

TEST(ShardWireTest, TableBlockRoundTripsRanksExactly) {
  EncodedTable t = testing_util::RandomEncodedTable(120, 4, 7, 21);
  HeldFrame frame(shard::EncodeTableBlock(t));
  ASSERT_TRUE(frame.ok());
  Result<EncodedTable> back = shard::DecodeTableBlock(*frame);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_columns(), t.num_columns());
  ASSERT_EQ(back->num_rows(), t.num_rows());
  for (int c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ(back->name(c), t.name(c));
    EXPECT_EQ(back->ranks(c), t.ranks(c));
    EXPECT_EQ(back->column(c).cardinality, t.column(c).cardinality);
    // Dictionaries never cross the seam (validators are rank-only).
    EXPECT_TRUE(back->column(c).dictionary.empty());
  }
}

TEST(ShardWireTest, TableBlockCorruptionDetectedAtEveryByte) {
  EncodedTable t = testing_util::RandomEncodedTable(20, 2, 3, 5);
  const std::vector<uint8_t> frame = shard::EncodeTableBlock(t);
  for (size_t i = 0; i < frame.size(); ++i) {
    std::vector<uint8_t> bad = frame;
    bad[i] ^= 0x5a;
    Result<DecodedFrame> decoded = DecodeFrame(bad);
    if (!decoded.ok()) continue;
    EXPECT_FALSE(shard::DecodeTableBlock(*decoded).ok())
        << "corrupted byte " << i << " accepted";
  }
}

/// Flips payload byte `i` and re-seals the frame checksum, so the
/// corruption reaches the payload decoder instead of being absorbed by
/// checksum validation (same methodology as shard_codec_test).
std::vector<uint8_t> CorruptPayloadResealed(const std::vector<uint8_t>& frame,
                                            size_t i) {
  std::vector<uint8_t> bad = frame;
  bad[shard::kFrameHeaderBytes + i] ^= 0x5a;
  const uint64_t checksum = shard::WireChecksum(
      bad.data() + shard::kFrameHeaderBytes,
      bad.size() - shard::kFrameHeaderBytes);
  for (int b = 0; b < 8; ++b) {
    bad[16 + static_cast<size_t>(b)] =
        static_cast<uint8_t>((checksum >> (8 * b)) & 0xff);
  }
  return bad;
}

TEST(ShardWireTest, TableSliceRoundTripsWithGlobalOffset) {
  EncodedTable t = testing_util::RandomEncodedTable(120, 4, 7, 29);
  for (const auto& [lo, hi] :
       std::vector<std::pair<int64_t, int64_t>>{{0, 120}, {0, 40}, {40, 90},
                                                {90, 120}, {60, 60}}) {
    for (bool compress : {false, true}) {
      HeldFrame frame(shard::EncodeTableSlice(t, lo, hi, compress));
      ASSERT_TRUE(frame.ok());
      Result<shard::WireTableSlice> back = shard::DecodeTableSlice(*frame);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      EXPECT_EQ(back->row_offset, lo);
      EXPECT_EQ(back->total_rows, 120);
      ASSERT_EQ(back->table.num_rows(), hi - lo);
      ASSERT_EQ(back->table.num_columns(), t.num_columns());
      for (int c = 0; c < t.num_columns(); ++c) {
        EXPECT_EQ(back->table.name(c), t.name(c));
        // Cardinality stays table-global even though only a slice of
        // ranks shipped — the property that keeps fragments stitchable.
        EXPECT_EQ(back->table.column(c).cardinality, t.column(c).cardinality);
        EXPECT_EQ(back->table.ranks(c),
                  std::vector<int32_t>(t.ranks(c).begin() + lo,
                                       t.ranks(c).begin() + hi));
      }
    }
  }

  // The whole-table slice is byte-identical to EncodeTableBlock — v5
  // made every table block a slice.
  EXPECT_EQ(shard::EncodeTableSlice(t, 0, 120), shard::EncodeTableBlock(t));
}

TEST(ShardWireTest, TableBlockDecoderRejectsSlices) {
  EncodedTable t = testing_util::RandomEncodedTable(50, 2, 4, 31);
  HeldFrame slice(shard::EncodeTableSlice(t, 10, 30));
  ASSERT_TRUE(slice.ok());
  // The slice decodes as a slice but NOT as a whole table: a partial
  // table silently accepted whole would corrupt every downstream
  // partition.
  EXPECT_TRUE(shard::DecodeTableSlice(*slice).ok());
  Result<EncodedTable> as_block = shard::DecodeTableBlock(*slice);
  ASSERT_FALSE(as_block.ok());
  EXPECT_NE(as_block.status().message().find("slice"), std::string::npos);
}

TEST(ShardWireTest, TableSliceCorruptionDetectedAtEveryPayloadByte) {
  EncodedTable t = testing_util::RandomEncodedTable(24, 2, 3, 7);
  for (bool compress : {false, true}) {
    const std::vector<uint8_t> frame = shard::EncodeTableSlice(
        t, 4, 20, compress);
    const std::vector<int32_t> want(t.ranks(0).begin() + 4,
                                    t.ranks(0).begin() + 20);
    for (size_t i = 0; i < frame.size() - shard::kFrameHeaderBytes; ++i) {
      HeldFrame bad(CorruptPayloadResealed(frame, i));
      if (!bad.ok()) continue;
      Result<shard::WireTableSlice> decoded = shard::DecodeTableSlice(*bad);
      if (!decoded.ok()) continue;
      // A flip the structural validation cannot catch (e.g. inside a
      // rank array) must still decode to *different* content, never
      // silently to the original — checksummed frames make reaching
      // here require an adversary who re-sealed, and even then the
      // decode is structurally valid or visibly different.
      EXPECT_FALSE(decoded->row_offset == 4 && decoded->total_rows == 24 &&
                   decoded->table.num_rows() == 16 &&
                   decoded->table.ranks(0) == want &&
                   decoded->table.ranks(1) ==
                       std::vector<int32_t>(t.ranks(1).begin() + 4,
                                            t.ranks(1).begin() + 20) &&
                   decoded->table.name(0) == t.name(0) &&
                   decoded->table.name(1) == t.name(1))
          << "corrupted payload byte " << i
          << " decoded back to the original slice";
    }
  }
}

TEST(ShardWireTest, PartitionFragmentFrameRoundTripBothCodecs) {
  EncodedTable t = testing_util::RandomEncodedTable(80, 2, 4, 37);
  const PartitionFragment f = FragmentFromColumn(t.column(0), 20, 65, 0);
  for (bool compress : {false, true}) {
    shard::CodecByteCounts enc;
    HeldFrame frame(shard::EncodePartitionFragment(f, compress, &enc));
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ((*frame).type, FrameType::kPartitionFragment);
    shard::CodecByteCounts dec;
    Result<PartitionFragment> back =
        shard::DecodePartitionFragment(*frame, 80, &dec);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->attribute, 0);
    EXPECT_EQ(back->row_begin, 20);
    EXPECT_EQ(back->row_end, 65);
    EXPECT_EQ(back->class_ranks, f.class_ranks);
    EXPECT_EQ(back->class_offsets, f.class_offsets);
    EXPECT_EQ(back->row_ids, f.row_ids);
    // Raw accounting is codec-independent; wire reflects what shipped.
    EXPECT_EQ(enc.raw, dec.raw);
    EXPECT_EQ(enc.wire, static_cast<int64_t>(frame.bytes.size()));
  }
  // Economy: the delta codec never ships more than raw (budget bail).
  EXPECT_LE(shard::EncodePartitionFragment(f, true).size(),
            shard::EncodePartitionFragment(f, false).size());

  // A fragment whose range exceeds the table is rejected.
  HeldFrame frame(shard::EncodePartitionFragment(f, false));
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(shard::DecodePartitionFragment(*frame, 64).ok());
  // Wrong frame type refused.
  HeldFrame shutdown(shard::EncodeShutdown());
  ASSERT_TRUE(shutdown.ok());
  EXPECT_FALSE(shard::DecodePartitionFragment(*shutdown, 80).ok());
}

// Property: fragment frames of random slices round-trip bit-exactly
// under both codecs, across random tables (the fuzz analogue of the
// targeted pins above).
TEST_P(ShardWirePropertyTest, RandomFragmentFramesRoundTrip) {
  Rng rng(GetParam() * 131 + 7);
  const int64_t rows = 20 + static_cast<int64_t>(rng.UniformInt(0, 200));
  EncodedTable t = testing_util::RandomEncodedTable(
      rows, 3, 1 + rng.UniformInt(1, 12), GetParam() * 277 + 5);
  for (int trial = 0; trial < 8; ++trial) {
    int64_t lo = rng.UniformInt(0, rows);
    int64_t hi = rng.UniformInt(0, rows);
    if (lo > hi) std::swap(lo, hi);
    const int a = static_cast<int>(rng.UniformInt(0, 2));
    const PartitionFragment f = FragmentFromColumn(t.column(a), lo, hi, a);
    for (bool compress : {false, true}) {
      HeldFrame frame(shard::EncodePartitionFragment(f, compress));
      ASSERT_TRUE(frame.ok());
      Result<PartitionFragment> back =
          shard::DecodePartitionFragment(*frame, rows);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      EXPECT_EQ(back->class_ranks, f.class_ranks);
      EXPECT_EQ(back->class_offsets, f.class_offsets);
      EXPECT_EQ(back->row_ids, f.row_ids);
      EXPECT_EQ(back->Serialize(), f.Serialize());
    }
  }
}

TEST(ShardWireTest, FragmentCorruptionDetectedAtEveryPayloadByte) {
  EncodedTable t = testing_util::RandomEncodedTable(30, 2, 3, 43);
  const PartitionFragment f = FragmentFromColumn(t.column(0), 5, 25, 0);
  const std::vector<uint8_t> good = f.Serialize();
  for (bool compress : {false, true}) {
    const std::vector<uint8_t> frame =
        shard::EncodePartitionFragment(f, compress);
    for (size_t i = 0; i < frame.size() - shard::kFrameHeaderBytes; ++i) {
      HeldFrame bad(CorruptPayloadResealed(frame, i));
      if (!bad.ok()) continue;
      Result<PartitionFragment> decoded =
          shard::DecodePartitionFragment(*bad, 30);
      if (!decoded.ok()) continue;
      // Survivors must differ visibly (attribute/range/content) — the
      // shared Deserialize gate upholds every fragment invariant, so a
      // byte flip can never smuggle in a same-looking fragment.
      EXPECT_FALSE(decoded->attribute == 0 && decoded->row_begin == 5 &&
                   decoded->row_end == 25 && decoded->Serialize() == good)
          << "corrupted payload byte " << i
          << " decoded back to the original fragment (compress="
          << compress << ")";
    }
  }
}

TEST(ShardWireTest, ConfigRowRangeRoundTripAndRejection) {
  shard::WireRunnerConfig config;
  config.shard_id = 1;
  config.row_begin = 100;
  config.row_end = 250;
  HeldFrame frame(shard::EncodeConfigBlock(config));
  ASSERT_TRUE(frame.ok());
  Result<shard::WireRunnerConfig> back = shard::DecodeConfigBlock(*frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->row_begin, 100);
  EXPECT_EQ(back->row_end, 250);

  // An inverted or negative range decodes as ParseError.
  config.row_begin = 10;
  config.row_end = 5;
  HeldFrame inverted(shard::EncodeConfigBlock(config));
  ASSERT_TRUE(inverted.ok());
  EXPECT_FALSE(shard::DecodeConfigBlock(*inverted).ok());
  config.row_begin = -1;
  config.row_end = 5;
  HeldFrame negative(shard::EncodeConfigBlock(config));
  ASSERT_TRUE(negative.ok());
  EXPECT_FALSE(shard::DecodeConfigBlock(*negative).ok());
}

TEST(ShardWireTest, StatsFooterRoundTripAndShutdownFrame) {
  shard::ShardStatsFooter footer;
  footer.shard_id = 7;
  footer.attempt_id = 4;
  footer.frames_served = 12;
  footer.products_computed = 34;
  footer.partitions_evicted = 2;
  footer.partition_bytes_evicted = 4096;
  footer.partition_bytes_final = 123;
  footer.partition_bytes_peak = 456;
  footer.bytes_decoded_raw = 9999;
  footer.bytes_decoded_wire = 1111;
  footer.partition_seconds = 1.0 / 3.0;

  HeldFrame frame(shard::EncodeStatsFooter(footer));
  ASSERT_TRUE(frame.ok());
  Result<shard::ShardStatsFooter> back = shard::DecodeStatsFooter(*frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->shard_id, 7u);
  EXPECT_EQ(back->attempt_id, 4u);
  EXPECT_EQ(back->frames_served, 12);
  EXPECT_EQ(back->products_computed, 34);
  EXPECT_EQ(back->partitions_evicted, 2);
  EXPECT_EQ(back->partition_bytes_evicted, 4096);
  EXPECT_EQ(back->partition_bytes_final, 123);
  EXPECT_EQ(back->partition_bytes_peak, 456);
  EXPECT_EQ(back->bytes_decoded_raw, 9999);
  EXPECT_EQ(back->bytes_decoded_wire, 1111);
  EXPECT_EQ(back->partition_seconds, footer.partition_seconds);

  // Negative counters are structurally impossible outputs; reject them.
  footer.products_computed = -1;
  HeldFrame bad(shard::EncodeStatsFooter(footer));
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(shard::DecodeStatsFooter(*bad).ok());
  footer.products_computed = 34;
  footer.bytes_decoded_raw = -5;
  HeldFrame bad_decoded(shard::EncodeStatsFooter(footer));
  ASSERT_TRUE(bad_decoded.ok());
  EXPECT_FALSE(shard::DecodeStatsFooter(*bad_decoded).ok());

  // The shutdown frame is a bare, checksummed header.
  HeldFrame shutdown(shard::EncodeShutdown());
  ASSERT_TRUE(shutdown.ok());
  EXPECT_EQ((*shutdown).type, FrameType::kShutdown);
  EXPECT_EQ((*shutdown).size, 0u);
  // And like every frame, a footer decoder refuses it.
  EXPECT_FALSE(shard::DecodeStatsFooter(*shutdown).ok());
}

// ---------------------------------------------------------- channel --

TEST(ShardWireTest, InProcessChannelDeliversInOrderAndCloses) {
  InProcessChannel channel;
  EXPECT_TRUE(channel.Send({1, 2, 3}).ok());
  EXPECT_TRUE(channel.Send({4}).ok());
  EXPECT_EQ(channel.bytes_sent(), 4);
  Result<std::vector<uint8_t>> first = channel.Receive();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, (std::vector<uint8_t>{1, 2, 3}));
  channel.Close();
  // Queued frames remain receivable after Close; then Receive errors.
  Result<std::vector<uint8_t>> second = channel.Receive();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, (std::vector<uint8_t>{4}));
  EXPECT_FALSE(channel.Receive().ok());
  EXPECT_FALSE(channel.Send({5}).ok());
}

// ------------------------------------------- wire-seeded cache parity --

TEST(ShardWireTest, WireSeededCacheDerivesIdenticalPartitions) {
  EncodedTable t = testing_util::RandomEncodedTable(200, 4, 3, 33);
  PartitionCache local(&t);
  PartitionCache seeded(&t, PartitionCache::DeferBasePartitions{});
  seeded.set_planner_enabled(false);
  for (int a = 0; a < t.num_columns(); ++a) {
    // Through the full frame path, as a shard runner receives them.
    HeldFrame frame(shard::EncodePartitionBlock(
        AttributeSet::Of({a}),
        StrippedPartition::FromColumn(t.column(a))));
    ASSERT_TRUE(frame.ok());
    auto block = shard::DecodePartitionBlock(*frame, t.num_rows());
    ASSERT_TRUE(block.ok());
    seeded.Preload(block->first, std::move(block->second));
  }
  for (uint64_t bits = 0; bits < 16; ++bits) {
    AttributeSet set(bits);
    EXPECT_EQ(seeded.Get(set)->Serialize(), local.Get(set)->Serialize())
        << set.ToString();
  }
}

TEST(ShardWireTest, ShardAssignmentIsStableAndInRange) {
  for (int shards : {1, 2, 4, 8}) {
    for (uint64_t bits = 0; bits < 64; ++bits) {
      const int s = shard::ShardCoordinator::ShardOf(bits, shards);
      EXPECT_GE(s, 0);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, shard::ShardCoordinator::ShardOf(bits, shards));
    }
  }
}

}  // namespace
}  // namespace aod
