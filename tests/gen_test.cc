// Tests for src/gen: RNG, generic generator, error injection, and the
// flight/ncvoter dataset simulators (including their seeded dependency
// structure, validated with the library's own validators).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/encoder.h"
#include "gen/dataset_generator.h"
#include "gen/error_injector.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"
#include "gen/random.h"
#include "od/aoc_iterative_validator.h"
#include "od/aoc_lis_validator.h"
#include "od/oc_validator.h"
#include "od/ofd_validator.h"
#include "partition/stripped_partition.h"

namespace aod {
namespace {

// ------------------------------------------------------------------ Rng --

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 5);
  }
  // Degenerate range.
  EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 5000; ++i) hits += rng.Bernoulli(0.2) ? 1 : 0;
  EXPECT_NEAR(hits / 5000.0, 0.2, 0.03);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ZipfSkewsTowardSmallValues) {
  Rng rng(23);
  int small = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    int64_t v = rng.Zipf(100, 1.2);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    if (v < 10) ++small;
  }
  EXPECT_GT(small, n / 2);  // heavy head
  // s = 0 degrades to uniform.
  small = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 0.0) < 10) ++small;
  }
  EXPECT_NEAR(small / static_cast<double>(n), 0.10, 0.03);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(29);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

// ----------------------------------------------------- DatasetGenerator --

TEST(DatasetGeneratorTest, SequentialKeyIsKey) {
  Table t = GenerateTable({{.name = "id", .kind = ColumnKind::kSequentialKey}},
                          100, 1);
  EXPECT_EQ(t.GetValue(0, 0), Value(int64_t{0}));
  EXPECT_EQ(t.GetValue(99, 0), Value(int64_t{99}));
}

TEST(DatasetGeneratorTest, UniformCardinalityRespected) {
  Table t = GenerateTable({{.name = "u", .kind = ColumnKind::kUniformInt,
                            .cardinality = 7}},
                          2000, 2);
  std::set<int64_t> seen;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    int64_t v = t.GetValue(r, 0).as_int();
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(DatasetGeneratorTest, MonotoneWithErrorsHasControlledOcFactor) {
  Table t = GenerateTable(
      {{.name = "base", .kind = ColumnKind::kUniformInt, .cardinality = 5000},
       {.name = "derived", .kind = ColumnKind::kMonotoneWithErrors,
        .base_column = 0, .violation_rate = 0.10}},
      4000, 3);
  EncodedTable enc = EncodeTable(t);
  auto whole = StrippedPartition::WholeRelation(enc.num_rows());
  ValidationOutcome out =
      ValidateAocOptimal(enc, whole, 0, 1, 1.0, enc.num_rows());
  // The minimal removal set should be close to the violation rate.
  EXPECT_GT(out.approx_factor, 0.05);
  EXPECT_LT(out.approx_factor, 0.13);
}

TEST(DatasetGeneratorTest, MonotoneWithZeroErrorsIsExact) {
  Table t = GenerateTable(
      {{.name = "base", .kind = ColumnKind::kUniformInt, .cardinality = 100},
       {.name = "derived", .kind = ColumnKind::kMonotoneWithErrors,
        .base_column = 0, .violation_rate = 0.0}},
      500, 4);
  EncodedTable enc = EncodeTable(t);
  auto whole = StrippedPartition::WholeRelation(enc.num_rows());
  EXPECT_TRUE(ValidateOcExact(enc, whole, 0, 1));
}

TEST(DatasetGeneratorTest, DerivedPermutedKeepsFd) {
  Table t = GenerateTable(
      {{.name = "base", .kind = ColumnKind::kUniformInt, .cardinality = 20},
       {.name = "perm", .kind = ColumnKind::kDerivedPermuted,
        .base_column = 0}},
      1000, 5);
  EncodedTable enc = EncodeTable(t);
  auto base_partition = StrippedPartition::FromColumn(enc.column(0));
  EXPECT_TRUE(ValidateOfdExact(enc, base_partition, 1));
}

TEST(DatasetGeneratorTest, MonotoneDomainErrorsKeepsFdBreaksOc) {
  Table t = GenerateTable(
      {{.name = "base", .kind = ColumnKind::kUniformInt, .cardinality = 200},
       {.name = "code", .kind = ColumnKind::kMonotoneDomainErrors,
        .base_column = 0, .violation_rate = 0.10}},
      3000, 6);
  EncodedTable enc = EncodeTable(t);
  auto base_partition = StrippedPartition::FromColumn(enc.column(0));
  EXPECT_TRUE(ValidateOfdExact(enc, base_partition, 1));  // FD exact
  auto whole = StrippedPartition::WholeRelation(enc.num_rows());
  ValidationOutcome out =
      ValidateAocOptimal(enc, whole, 0, 1, 1.0, enc.num_rows());
  EXPECT_GT(out.approx_factor, 0.01);  // OC only approximate
  EXPECT_LT(out.approx_factor, 0.25);
}

TEST(DatasetGeneratorTest, NoisyLinearCorrelates) {
  Table t = GenerateTable(
      {{.name = "base", .kind = ColumnKind::kUniformInt,
        .cardinality = 10000},
       {.name = "lin", .kind = ColumnKind::kNoisyLinear, .base_column = 0,
        .scale = 2.0, .noise_stddev = 0.0}},
      300, 7);
  EncodedTable enc = EncodeTable(t);
  auto whole = StrippedPartition::WholeRelation(enc.num_rows());
  EXPECT_TRUE(ValidateOcExact(enc, whole, 0, 1));  // noise-free => exact
}

TEST(DatasetGeneratorTest, CategoricalStringsNamed) {
  Table t = GenerateTable({{.name = "city",
                            .kind = ColumnKind::kCategoricalString,
                            .cardinality = 5}},
                          50, 8);
  EXPECT_EQ(t.schema().field(0).type, DataType::kString);
  EXPECT_EQ(t.GetValue(0, 0).as_string().rfind("city_", 0), 0u);
}

TEST(DatasetGeneratorTest, DeterministicInSeed) {
  std::vector<ColumnSpec> specs = {
      {.name = "u", .kind = ColumnKind::kUniformInt, .cardinality = 50}};
  Table a = GenerateTable(specs, 100, 42);
  Table b = GenerateTable(specs, 100, 42);
  for (int64_t r = 0; r < 100; ++r) {
    ASSERT_EQ(a.GetValue(r, 0), b.GetValue(r, 0));
  }
}

// -------------------------------------------------------- ErrorInjector --

TEST(ErrorInjectorTest, ScaleErrorsModifyApproximateRate) {
  Table t = GenerateTable({{.name = "v", .kind = ColumnKind::kUniformInt,
                            .cardinality = 1000}},
                          2000, 9);
  int64_t modified = InjectScaleErrors(&t, "v", 0.1, 10.0, 11).value();
  EXPECT_NEAR(static_cast<double>(modified) / 2000.0, 0.1, 0.03);
}

TEST(ErrorInjectorTest, ScaleErrorRejectsStringColumn) {
  Table t = GenerateTable({{.name = "s",
                            .kind = ColumnKind::kCategoricalString,
                            .cardinality = 3}},
                          10, 10);
  EXPECT_FALSE(InjectScaleErrors(&t, "s", 0.1, 10.0, 1).ok());
  EXPECT_FALSE(InjectScaleErrors(&t, "missing", 0.1, 10.0, 1).ok());
}

TEST(ErrorInjectorTest, NullsInjected) {
  Table t = GenerateTable({{.name = "v", .kind = ColumnKind::kUniformInt,
                            .cardinality = 10}},
                          1000, 12);
  int64_t modified = InjectNulls(&t, "v", 0.25, 13).value();
  EXPECT_EQ(t.column(0).null_count(), modified);
  EXPECT_NEAR(static_cast<double>(modified) / 1000.0, 0.25, 0.05);
}

TEST(ErrorInjectorTest, CellSwapsPreserveMultiset) {
  Table t = GenerateTable({{.name = "v", .kind = ColumnKind::kUniformInt,
                            .cardinality = 50}},
                          500, 14);
  std::multiset<int64_t> before;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    before.insert(t.GetValue(r, 0).as_int());
  }
  InjectCellSwaps(&t, "v", 0.2, 15).value();
  std::multiset<int64_t> after;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    after.insert(t.GetValue(r, 0).as_int());
  }
  EXPECT_EQ(before, after);
}

TEST(ErrorInjectorTest, OutliersAreExtreme) {
  Table t = GenerateTable({{.name = "v", .kind = ColumnKind::kUniformInt,
                            .cardinality = 100}},
                          300, 16);
  int64_t modified = InjectOutliers(&t, "v", 0.05, 100.0, 17).value();
  EXPECT_GT(modified, 0);
  int64_t extreme = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (std::llabs(t.GetValue(r, 0).as_int()) > 5000) ++extreme;
  }
  EXPECT_EQ(extreme, modified);
}

// ---------------------------------------------------- Flight simulator --

TEST(FlightGeneratorTest, SchemaShape) {
  Table t = GenerateFlightTable(100, 10, 1);
  EXPECT_EQ(t.num_columns(), 10);
  EXPECT_EQ(t.num_rows(), 100);
  EXPECT_EQ(t.schema().field(0).name, "flightId");
  Table full = GenerateFlightTable(50, kFlightMaxAttributes, 1);
  EXPECT_EQ(full.num_columns(), 35);
}

TEST(FlightGeneratorTest, ArrDelayLateAircraftAocNearPaperFactor) {
  Table t = GenerateFlightTable(20000, 10, 42);
  EncodedTable enc = EncodeTable(t);
  int a = enc.ColumnIndex("arrDelay");
  int b = enc.ColumnIndex("lateAircraftDelay");
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  auto whole = StrippedPartition::WholeRelation(enc.num_rows());
  ValidatorOptions full;
  full.early_exit = false;
  ValidationOutcome out =
      ValidateAocOptimal(enc, whole, a, b, 1.0, enc.num_rows(), full);
  // Paper Exp-4: true approximation factor ~9.5%...
  EXPECT_NEAR(out.approx_factor, 0.095, 0.01);
  // ...which the greedy iterative validator overestimates as ~10.5%,
  // pushing the AOC past the 10% threshold (incompleteness in action).
  ValidationOutcome greedy =
      ValidateAocIterative(enc, whole, a, b, 1.0, enc.num_rows(), full);
  EXPECT_NEAR(greedy.approx_factor, 0.105, 0.01);
  EXPECT_LE(out.approx_factor, 0.10);
  EXPECT_GT(greedy.approx_factor, 0.10);
}

TEST(FlightGeneratorTest, IataPairIsExactFdApproxOc) {
  Table t = GenerateFlightTable(20000, 10, 42);
  EncodedTable enc = EncodeTable(t);
  int id = enc.ColumnIndex("originAirportId");
  int code = enc.ColumnIndex("originIataCode");
  auto id_partition = StrippedPartition::FromColumn(enc.column(id));
  EXPECT_TRUE(ValidateOfdExact(enc, id_partition, code));
  auto whole = StrippedPartition::WholeRelation(enc.num_rows());
  EXPECT_FALSE(ValidateOcExact(enc, whole, id, code));
  ValidationOutcome out =
      ValidateAocOptimal(enc, whole, id, code, 1.0, enc.num_rows());
  // Paper Exp-6: originAirport ~ IATACode at ~8%.
  EXPECT_GT(out.approx_factor, 0.01);
  EXPECT_LT(out.approx_factor, 0.20);
}

TEST(FlightGeneratorTest, MonthQuarterExactOd) {
  Table t = GenerateFlightTable(5000, 19, 42);
  EncodedTable enc = EncodeTable(t);
  int month = enc.ColumnIndex("month");
  int quarter = enc.ColumnIndex("quarter");
  ASSERT_GE(quarter, 0);
  auto whole = StrippedPartition::WholeRelation(enc.num_rows());
  EXPECT_TRUE(ValidateOcExact(enc, whole, month, quarter));
  auto month_partition = StrippedPartition::FromColumn(enc.column(month));
  EXPECT_TRUE(ValidateOfdExact(enc, month_partition, quarter));
}

TEST(FlightGeneratorTest, DeterministicAcrossCalls) {
  Table a = GenerateFlightTable(200, 12, 7);
  Table b = GenerateFlightTable(200, 12, 7);
  for (int64_t r = 0; r < 200; ++r) {
    for (int c = 0; c < 12; ++c) {
      ASSERT_EQ(a.GetValue(r, c), b.GetValue(r, c));
    }
  }
}

// --------------------------------------------------- NcVoter simulator --

TEST(NcVoterGeneratorTest, SchemaShape) {
  Table t = GenerateNcVoterTable(100, 10, 1);
  EXPECT_EQ(t.num_columns(), 10);
  EXPECT_EQ(t.schema().field(5).type, DataType::kString);
  Table full = GenerateNcVoterTable(50, kNcVoterMaxAttributes, 1);
  EXPECT_EQ(full.num_columns(), 30);
}

TEST(NcVoterGeneratorTest, ZipOrdersCountyExactly) {
  Table t = GenerateNcVoterTable(5000, 10, 3);
  EncodedTable enc = EncodeTable(t);
  int zip = enc.ColumnIndex("zip");
  int county = enc.ColumnIndex("county");
  auto whole = StrippedPartition::WholeRelation(enc.num_rows());
  EXPECT_TRUE(ValidateOcExact(enc, whole, zip, county));
  auto zip_partition = StrippedPartition::FromColumn(enc.column(zip));
  EXPECT_TRUE(ValidateOfdExact(enc, zip_partition, county));
}

TEST(NcVoterGeneratorTest, MunicipalityAbbrevAocInPaperBand) {
  Table t = GenerateNcVoterTable(20000, 10, 1729);
  EncodedTable enc = EncodeTable(t);
  int desc = enc.ColumnIndex("municipalityDesc");
  int abbr = enc.ColumnIndex("municipalityAbbrv");
  auto whole = StrippedPartition::WholeRelation(enc.num_rows());
  EXPECT_FALSE(ValidateOcExact(enc, whole, desc, abbr));
  ValidationOutcome out =
      ValidateAocOptimal(enc, whole, desc, abbr, 1.0, enc.num_rows());
  // Paper Exp-4: municipalityAbbrv ~ municipalityDesc at <= 20%.
  EXPECT_GT(out.approx_factor, 0.02);
  EXPECT_LT(out.approx_factor, 0.22);
}

TEST(NcVoterGeneratorTest, AgeBirthYearInverse) {
  Table t = GenerateNcVoterTable(2000, 10, 5);
  EncodedTable enc = EncodeTable(t);
  int age = enc.ColumnIndex("age");
  int birth = enc.ColumnIndex("birthYear");
  auto age_partition = StrippedPartition::FromColumn(enc.column(age));
  EXPECT_TRUE(ValidateOfdExact(enc, age_partition, birth));  // FD exact
  auto whole = StrippedPartition::WholeRelation(enc.num_rows());
  EXPECT_FALSE(ValidateOcExact(enc, whole, age, birth));  // inverse order
}

TEST(NcVoterGeneratorTest, RegistrationDateNearlyOrderedByRegNum) {
  Table t = GenerateNcVoterTable(10000, 10, 11);
  EncodedTable enc = EncodeTable(t);
  int reg = enc.ColumnIndex("regNum");
  int date = enc.ColumnIndex("registrationDate");
  auto whole = StrippedPartition::WholeRelation(enc.num_rows());
  ValidationOutcome out =
      ValidateAocOptimal(enc, whole, reg, date, 1.0, enc.num_rows());
  EXPECT_NEAR(out.approx_factor, 0.05, 0.02);
}

TEST(NcVoterGeneratorTest, CommitteeConstantPerCountyParty) {
  Table t = GenerateNcVoterTable(3000, 20, 13);
  EncodedTable enc = EncodeTable(t);
  int county = enc.ColumnIndex("county");
  int party = enc.ColumnIndex("party");
  int committee = enc.ColumnIndex("committeeId");
  ASSERT_GE(committee, 0);
  auto pc = StrippedPartition::FromColumn(enc.column(county));
  auto pp = StrippedPartition::FromColumn(enc.column(party));
  auto both = pc.Product(pp, enc.num_rows());
  EXPECT_TRUE(ValidateOfdExact(enc, both, committee));
  // But county alone does not determine it.
  EXPECT_FALSE(ValidateOfdExact(enc, pc, committee));
}

}  // namespace
}  // namespace aod
