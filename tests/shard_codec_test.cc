// The version-2 payload codecs: delta/varint partition and batch
// bodies, dictionary-packed table ranks, kBatch envelopes and the
// batching sender/receiver pair.
//
// The contract under test has three legs. (1) Losslessness: for every
// message and every codec choice, compressed and raw frames decode to
// identical objects — compression may never change what a shard
// computes. (2) Economy: a compressed frame is never larger than its
// raw sibling (the encoder's bail-out threshold). (3) Hostility: a
// corrupted, truncated or structurally invalid compressed payload is a
// typed ParseError — never an out-of-bounds read (the suite runs under
// ASan/UBSan in CI), a crash, or a silently wrong decode.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "data/encoder.h"
#include "flaky_channel.h"
#include "gen/random.h"
#include "od/dependency_kind.h"
#include "partition/stripped_partition.h"
#include "shard/channel.h"
#include "shard/wire.h"
#include "test_util.h"

namespace aod {
namespace {

using shard::BatchingFrameSender;
using shard::CodecByteCounts;
using shard::DecodedFrame;
using shard::DecodeFrame;
using shard::FrameType;
using shard::InProcessChannel;
using shard::LogicalFrameReceiver;
using shard::WireCandidate;
using shard::WireOutcome;
using testing_util::FlakyChannel;

/// Bytes must outlive the DecodedFrame view (see shard_wire_test.cc).
struct HeldFrame {
  std::vector<uint8_t> bytes;
  Result<DecodedFrame> decoded;
  explicit HeldFrame(std::vector<uint8_t> b)
      : bytes(std::move(b)), decoded(DecodeFrame(bytes)) {}
  bool ok() const { return decoded.ok(); }
  const DecodedFrame& operator*() const { return *decoded; }
};

/// Flips payload byte `i` and re-seals the checksum, so the corruption
/// reaches the *payload* decoder instead of being absorbed by the frame
/// checksum — the adversary this models controls the whole frame.
std::vector<uint8_t> CorruptPayloadResealed(const std::vector<uint8_t>& frame,
                                            size_t i) {
  std::vector<uint8_t> bad = frame;
  bad[shard::kFrameHeaderBytes + i] ^= 0x5a;
  const uint64_t checksum = shard::WireChecksum(
      bad.data() + shard::kFrameHeaderBytes,
      bad.size() - shard::kFrameHeaderBytes);
  for (int b = 0; b < 8; ++b) {
    bad[16 + static_cast<size_t>(b)] =
        static_cast<uint8_t>((checksum >> (8 * b)) & 0xff);
  }
  return bad;
}

// ------------------------------------------------ partition codecs --

void ExpectPartitionCodecEquivalence(const StrippedPartition& p,
                                     int64_t num_rows) {
  const AttributeSet set = AttributeSet::Of({0, 2});
  CodecByteCounts compressed_counts;
  CodecByteCounts raw_counts;
  HeldFrame compressed(shard::EncodePartitionBlock(
      set, p, /*compress=*/true, &compressed_counts));
  HeldFrame raw(shard::EncodePartitionBlock(set, p, /*compress=*/false,
                                            &raw_counts));
  ASSERT_TRUE(compressed.ok());
  ASSERT_TRUE(raw.ok());

  // Economy: the encoder's bail-out keeps compressed <= raw, always.
  EXPECT_LE(compressed.bytes.size(), raw.bytes.size());
  // Both sides agree on the raw baseline; wire reflects what shipped.
  EXPECT_EQ(compressed_counts.raw, raw_counts.raw);
  EXPECT_EQ(compressed_counts.wire,
            static_cast<int64_t>(compressed.bytes.size()));
  EXPECT_EQ(raw_counts.wire, static_cast<int64_t>(raw.bytes.size()));

  // Losslessness: both decode to the same set and bit-identical CSR.
  auto from_compressed = shard::DecodePartitionBlock(*compressed, num_rows);
  auto from_raw = shard::DecodePartitionBlock(*raw, num_rows);
  ASSERT_TRUE(from_compressed.ok()) << from_compressed.status().ToString();
  ASSERT_TRUE(from_raw.ok()) << from_raw.status().ToString();
  EXPECT_EQ(from_compressed->first.bits(), set.bits());
  EXPECT_EQ(from_compressed->second.Serialize(), p.Serialize());
  EXPECT_EQ(from_raw->second.Serialize(), p.Serialize());

  // The decoder reports the same raw/wire split the encoder did.
  CodecByteCounts decode_counts;
  ASSERT_TRUE(
      shard::DecodePartitionBlock(*compressed, num_rows, &decode_counts)
          .ok());
  EXPECT_EQ(decode_counts.raw, compressed_counts.raw);
  EXPECT_EQ(decode_counts.wire, compressed_counts.wire);
}

TEST(ShardCodecTest, PartitionEdgeShapesRoundTripBothCodecs) {
  // Empty partition (no classes), the degenerate single-row table, and
  // the whole-relation partition (one class covering everything).
  ExpectPartitionCodecEquivalence(StrippedPartition(), 1);
  ExpectPartitionCodecEquivalence(StrippedPartition(), 100);
  ExpectPartitionCodecEquivalence(StrippedPartition::WholeRelation(2), 2);
  ExpectPartitionCodecEquivalence(StrippedPartition::WholeRelation(257), 257);
  // Many two-row classes: the adversarial shape for delta coding (no
  // long runs, maximal per-class overhead).
  std::vector<std::vector<int32_t>> classes;
  for (int32_t r = 0; r < 64; r += 2) classes.push_back({r, r + 1});
  StrippedPartition pairs = StrippedPartition::FromClasses(classes);
  pairs.Normalize();
  ExpectPartitionCodecEquivalence(pairs, 64);
  // Interleaved classes: large within-class deltas.
  StrippedPartition striped = StrippedPartition::FromClasses(
      {{0, 100, 200, 300}, {1, 101, 201, 301}, {2, 102, 202}});
  striped.Normalize();
  ExpectPartitionCodecEquivalence(striped, 302);
}

class ShardCodecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardCodecFuzzTest, RandomPartitionsRoundTripBothCodecs) {
  Rng rng(GetParam() * 7919 + 1);
  const int64_t rows = 1 + static_cast<int64_t>(rng.UniformInt(0, 400));
  // Half the seeds stay low-cardinality (delta-codec territory), half
  // push into the label codec's regime.
  const int64_t cardinality =
      1 + rng.UniformInt(0, GetParam() % 2 == 0 ? 12 : 160);
  EncodedTable t = testing_util::RandomEncodedTable(
      rows, 3, cardinality, GetParam() * 131 + 7);
  PartitionScratch scratch(rows);
  StrippedPartition a = StrippedPartition::FromColumn(t.column(0));
  StrippedPartition b = StrippedPartition::FromColumn(t.column(1));
  ExpectPartitionCodecEquivalence(a, rows);
  ExpectPartitionCodecEquivalence(a.Product(b, rows, &scratch), rows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardCodecFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(ShardCodecTest, CompressedPartitionShrinksTypicalCsr) {
  // The headline property: a low-cardinality column over many rows —
  // long ascending runs, the canonical normal form at work — compresses
  // well. This is the shape base partitions actually have.
  EncodedTable t = testing_util::RandomEncodedTable(20000, 1, 8, 42);
  StrippedPartition p = StrippedPartition::FromColumn(t.column(0));
  const std::vector<uint8_t> compressed =
      shard::EncodePartitionBlock(AttributeSet::Of({0}), p);
  const std::vector<uint8_t> raw = shard::EncodePartitionBlock(
      AttributeSet::Of({0}), p, /*compress=*/false);
  EXPECT_LT(compressed.size() * 3, raw.size())
      << "expected >= 3x on a dense ascending CSR, got "
      << raw.size() << " -> " << compressed.size();
}

TEST(ShardCodecTest, MidCardinalityPartitionUsesLabelCodec) {
  // Cardinality ~1000 means in-class gaps average ~1000 — two varint
  // bytes per row for the delta codec — while a bit-packed class label
  // needs only 10 bits plus the coverage bitmap. The encoder must pick
  // the label body and still beat raw by well over 2x.
  EncodedTable t = testing_util::RandomEncodedTable(20000, 1, 1000, 7);
  StrippedPartition p = StrippedPartition::FromColumn(t.column(0));
  const std::vector<uint8_t> compressed =
      shard::EncodePartitionBlock(AttributeSet::Of({0}), p);
  const std::vector<uint8_t> raw = shard::EncodePartitionBlock(
      AttributeSet::Of({0}), p, /*compress=*/false);
  // flags byte: frame header (24) + attribute set (8), then the codec.
  ASSERT_GT(compressed.size(), 33u);
  EXPECT_EQ(compressed[32], shard::kCodecClassLabel);
  EXPECT_LT(compressed.size() * 2, raw.size())
      << "expected > 2x via bit-packed labels, got " << raw.size() << " -> "
      << compressed.size();
  ExpectPartitionCodecEquivalence(p, 20000);
}

TEST(ShardCodecTest, CorruptedCompressedPartitionIsTypedAtEveryByte) {
  EncodedTable t = testing_util::RandomEncodedTable(300, 2, 4, 17);
  StrippedPartition p = StrippedPartition::FromColumn(t.column(0));
  const std::vector<uint8_t> frame =
      shard::EncodePartitionBlock(AttributeSet::Of({0}), p);
  HeldFrame pristine(frame);
  ASSERT_TRUE(pristine.ok());
  ASSERT_TRUE(shard::DecodePartitionBlock(*pristine, 300).ok());
  const size_t payload = frame.size() - shard::kFrameHeaderBytes;
  for (size_t i = 0; i < payload; ++i) {
    HeldFrame bad(CorruptPayloadResealed(frame, i));
    // The re-sealed checksum always passes the frame layer; the payload
    // decoder must reject the mutation or decode something canonical —
    // never read out of bounds (ASan/UBSan enforce that part).
    ASSERT_TRUE(bad.ok()) << "reseal failed at byte " << i;
    auto decoded = shard::DecodePartitionBlock(*bad, 300);
    if (!decoded.ok()) continue;
    EXPECT_TRUE(decoded->second.IsCanonical()) << "byte " << i;
  }
}

TEST(ShardCodecTest, CorruptedLabelPartitionIsTypedAtEveryByte) {
  // Cardinality 100 over 400 rows selects the class-label codec, so this
  // sweep drives the bitmap/label decoder with every 1-byte mutation.
  EncodedTable t = testing_util::RandomEncodedTable(400, 1, 100, 23);
  StrippedPartition p = StrippedPartition::FromColumn(t.column(0));
  const std::vector<uint8_t> frame =
      shard::EncodePartitionBlock(AttributeSet::Of({0}), p);
  ASSERT_EQ(frame[32], shard::kCodecClassLabel);
  HeldFrame pristine(frame);
  ASSERT_TRUE(pristine.ok());
  ASSERT_TRUE(shard::DecodePartitionBlock(*pristine, 400).ok());
  const size_t payload = frame.size() - shard::kFrameHeaderBytes;
  for (size_t i = 0; i < payload; ++i) {
    HeldFrame bad(CorruptPayloadResealed(frame, i));
    ASSERT_TRUE(bad.ok()) << "reseal failed at byte " << i;
    auto decoded = shard::DecodePartitionBlock(*bad, 400);
    if (!decoded.ok()) continue;
    EXPECT_TRUE(decoded->second.IsCanonical()) << "byte " << i;
  }
}

// ---------------------------------------- candidate + result codecs --

std::vector<WireCandidate> RandomCandidates(Rng* rng, size_t n) {
  std::vector<WireCandidate> out;
  uint64_t slot = 0;
  for (size_t i = 0; i < n; ++i) {
    WireCandidate c;
    slot += static_cast<uint64_t>(rng->UniformInt(0, 9));
    c.slot = slot;
    c.context_bits = static_cast<uint64_t>(rng->UniformInt(0, 1 << 20));
    c.kind = static_cast<DependencyKind>(rng->UniformInt(0, 3));
    if (c.kind == DependencyKind::kOc) {
      c.pair_a = static_cast<int32_t>(rng->UniformInt(0, 62));
      c.pair_b = c.pair_a + 1;
      c.opposite = rng->UniformInt(0, 1) == 0;
    } else {
      c.target = static_cast<int32_t>(rng->UniformInt(0, 63));
    }
    out.push_back(c);
  }
  return out;
}

TEST(ShardCodecTest, CandidateBatchCodecsAreEquivalent) {
  Rng rng(99);
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{300}}) {
    const std::vector<WireCandidate> batch = RandomCandidates(&rng, n);
    HeldFrame compressed(shard::EncodeCandidateBatch(batch));
    HeldFrame raw(shard::EncodeCandidateBatch(batch, /*compress=*/false));
    ASSERT_TRUE(compressed.ok());
    ASSERT_TRUE(raw.ok());
    EXPECT_LE(compressed.bytes.size(), raw.bytes.size());
    auto back_c = shard::DecodeCandidateBatch(*compressed);
    auto back_r = shard::DecodeCandidateBatch(*raw);
    ASSERT_TRUE(back_c.ok()) << back_c.status().ToString();
    ASSERT_TRUE(back_r.ok());
    ASSERT_EQ(back_c->size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ((*back_c)[i].slot, batch[i].slot);
      EXPECT_EQ((*back_c)[i].context_bits, batch[i].context_bits);
      EXPECT_EQ((*back_c)[i].kind, batch[i].kind);
      EXPECT_EQ((*back_c)[i].target, batch[i].target);
      EXPECT_EQ((*back_c)[i].pair_a, batch[i].pair_a);
      EXPECT_EQ((*back_c)[i].pair_b, batch[i].pair_b);
      EXPECT_EQ((*back_c)[i].opposite, batch[i].opposite);
      EXPECT_EQ((*back_r)[i].slot, batch[i].slot);
    }
  }
}

std::vector<WireOutcome> RandomOutcomes(Rng* rng, size_t n, bool rows) {
  std::vector<WireOutcome> out;
  uint64_t slot = 0;
  for (size_t i = 0; i < n; ++i) {
    WireOutcome o;
    slot += static_cast<uint64_t>(rng->UniformInt(0, 5));
    o.slot = slot;
    o.kind = static_cast<DependencyKind>(rng->UniformInt(0, 3));
    o.valid = rng->UniformInt(0, 1) == 0;
    o.early_exit = rng->UniformInt(0, 1) == 0;
    o.removal_size = rng->UniformInt(0, 1000);
    o.approx_factor = 0.1 + static_cast<double>(rng->UniformInt(0, 97)) / 970;
    o.interestingness = 1.0 / (1.0 + static_cast<double>(i));
    o.seconds = 3e-7 * static_cast<double>(rng->UniformInt(0, 100));
    if (rows) {
      int32_t row = 0;
      for (int r = 0; r < rng->UniformInt(0, 20); ++r) {
        row += static_cast<int32_t>(rng->UniformInt(0, 40));
        o.removal_rows.push_back(row);
      }
    }
    out.push_back(o);
  }
  return out;
}

TEST(ShardCodecTest, ResultBatchCodecsAreBitExactEquivalent) {
  Rng rng(1234);
  for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{200}}) {
    for (bool rows : {false, true}) {
      const std::vector<WireOutcome> outcomes = RandomOutcomes(&rng, n, rows);
      HeldFrame compressed(
          shard::EncodeResultBatch(outcomes, /*final_chunk=*/false));
      HeldFrame raw(shard::EncodeResultBatch(outcomes, /*final_chunk=*/false,
                                             /*compress=*/false));
      ASSERT_TRUE(compressed.ok());
      ASSERT_TRUE(raw.ok());
      EXPECT_LE(compressed.bytes.size(), raw.bytes.size());
      auto back_c = shard::DecodeResultBatch(*compressed);
      auto back_r = shard::DecodeResultBatch(*raw);
      ASSERT_TRUE(back_c.ok()) << back_c.status().ToString();
      ASSERT_TRUE(back_r.ok());
      EXPECT_FALSE(back_c->final_chunk);
      EXPECT_FALSE(back_r->final_chunk);
      ASSERT_EQ(back_c->outcomes.size(), n);
      for (size_t i = 0; i < n; ++i) {
        const WireOutcome& c = back_c->outcomes[i];
        const WireOutcome& r = back_r->outcomes[i];
        EXPECT_EQ(c.slot, outcomes[i].slot);
        EXPECT_EQ(c.kind, outcomes[i].kind);
        EXPECT_EQ(c.valid, outcomes[i].valid);
        EXPECT_EQ(c.early_exit, outcomes[i].early_exit);
        EXPECT_EQ(r.kind, outcomes[i].kind);
        EXPECT_EQ(c.removal_size, outcomes[i].removal_size);
        // Doubles must survive bit-exactly through *both* codecs.
        EXPECT_EQ(c.approx_factor, outcomes[i].approx_factor);
        EXPECT_EQ(c.interestingness, outcomes[i].interestingness);
        EXPECT_EQ(c.seconds, outcomes[i].seconds);
        EXPECT_EQ(c.removal_rows, outcomes[i].removal_rows);
        EXPECT_EQ(r.approx_factor, outcomes[i].approx_factor);
        EXPECT_EQ(r.removal_rows, outcomes[i].removal_rows);
      }
    }
  }
}

TEST(ShardCodecTest, CorruptedCompressedBatchesAreTypedAtEveryByte) {
  Rng rng(555);
  const std::vector<uint8_t> candidate_frame =
      shard::EncodeCandidateBatch(RandomCandidates(&rng, 40));
  const std::vector<uint8_t> result_frame =
      shard::EncodeResultBatch(RandomOutcomes(&rng, 30, true));
  for (size_t i = 0;
       i < candidate_frame.size() - shard::kFrameHeaderBytes; ++i) {
    HeldFrame bad(CorruptPayloadResealed(candidate_frame, i));
    ASSERT_TRUE(bad.ok());
    // Either a typed rejection or a structurally plausible batch — the
    // point is no OOB and no crash; accepted mutations are the ones
    // that only changed candidate field values.
    shard::DecodeCandidateBatch(*bad).status();
  }
  for (size_t i = 0; i < result_frame.size() - shard::kFrameHeaderBytes;
       ++i) {
    HeldFrame bad(CorruptPayloadResealed(result_frame, i));
    ASSERT_TRUE(bad.ok());
    shard::DecodeResultBatch(*bad).status();
  }
}

/// Sets payload byte `i` to an exact value and re-seals the checksum —
/// the targeted sibling of CorruptPayloadResealed's random flip.
std::vector<uint8_t> SetPayloadByteResealed(const std::vector<uint8_t>& frame,
                                            size_t i, uint8_t value) {
  std::vector<uint8_t> bad = frame;
  bad[shard::kFrameHeaderBytes + i] = value;
  const uint64_t checksum = shard::WireChecksum(
      bad.data() + shard::kFrameHeaderBytes,
      bad.size() - shard::kFrameHeaderBytes);
  for (int b = 0; b < 8; ++b) {
    bad[16 + static_cast<size_t>(b)] =
        static_cast<uint8_t>((checksum >> (8 * b)) & 0xff);
  }
  return bad;
}

TEST(ShardCodecTest, UnknownKindIdsAreTypedInBothBatchCodecs) {
  // Raw candidate body: u8 flags, u64 count, then 30-byte records with
  // the kind byte 16 bytes in (after slot + context). Every id outside
  // the four known kinds must be a typed rejection naming the id.
  Rng rng(808);
  const std::vector<uint8_t> raw_candidates = shard::EncodeCandidateBatch(
      RandomCandidates(&rng, 3), /*compress=*/false);
  const size_t candidate_kind_at = 1 + 8 + 16;
  for (uint8_t id : {uint8_t{4}, uint8_t{17}, uint8_t{255}}) {
    HeldFrame bad(SetPayloadByteResealed(raw_candidates, candidate_kind_at,
                                         id));
    ASSERT_TRUE(bad.ok());
    auto r = shard::DecodeCandidateBatch(*bad);
    ASSERT_FALSE(r.ok()) << "kind id " << static_cast<int>(id) << " parsed";
    EXPECT_NE(r.status().message().find("unknown dependency kind id " +
                                        std::to_string(id)),
              std::string::npos)
        << r.status().ToString();
  }

  // Raw outcome body: u8 flags, u64 count, then slot + the kind byte.
  const std::vector<uint8_t> raw_outcomes = shard::EncodeResultBatch(
      RandomOutcomes(&rng, 2, false), /*final_chunk=*/true,
      /*compress=*/false);
  const size_t outcome_kind_at = 1 + 8 + 8;
  for (uint8_t id : {uint8_t{4}, uint8_t{9}}) {
    HeldFrame bad(SetPayloadByteResealed(raw_outcomes, outcome_kind_at, id));
    ASSERT_TRUE(bad.ok());
    auto r = shard::DecodeResultBatch(*bad);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("unknown dependency kind id"),
              std::string::npos)
        << r.status().ToString();
  }

  // The compressed codecs pack the kind into two bits, so an unknown id
  // is structurally unrepresentable there — what CAN go wrong is a set
  // bit above the defined ones, and that too must be a typed error.
  WireCandidate c;
  c.slot = 0;
  c.context_bits = 1;
  c.kind = DependencyKind::kOc;
  c.target = -1;
  c.pair_a = 0;
  c.pair_b = 2;
  const std::vector<uint8_t> packed_candidates =
      shard::EncodeCandidateBatch({c});
  ASSERT_EQ(packed_candidates[shard::kFrameHeaderBytes],
            shard::kCandidateFlagCompressed);
  // Payload: flags, count varint, slot-delta varint, context varint,
  // then the kind|polarity byte at offset 4.
  {
    HeldFrame bad(SetPayloadByteResealed(packed_candidates, 4, 0x08));
    ASSERT_TRUE(bad.ok());
    auto r = shard::DecodeCandidateBatch(*bad);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("unknown candidate flag bits"),
              std::string::npos)
        << r.status().ToString();
  }

  WireOutcome o;
  o.slot = 0;
  o.kind = DependencyKind::kAfd;
  o.valid = true;
  o.removal_size = 2;
  o.approx_factor = 0.125;
  o.interestingness = 0.5;
  const std::vector<uint8_t> packed_outcomes =
      shard::EncodeResultBatch({o}, /*final_chunk=*/false);
  ASSERT_EQ(packed_outcomes[shard::kFrameHeaderBytes],
            shard::kResultFlagCompressed);
  // Payload: flags, count varint, slot-delta varint, then the packed
  // valid|early_exit|kind byte at offset 3.
  {
    HeldFrame bad(SetPayloadByteResealed(packed_outcomes, 3, 0x10));
    ASSERT_TRUE(bad.ok());
    auto r = shard::DecodeResultBatch(*bad);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("unknown outcome flag bits"),
              std::string::npos)
        << r.status().ToString();
  }
}

TEST(ShardCodecTest, ConfigBlockRejectsBadKindSetsAndThresholds) {
  shard::WireRunnerConfig config;
  config.kinds = DependencyKindSet::All().bits();
  config.afd_error = 0.25;

  // The well-formed block round-trips its wire-v4 fields.
  {
    HeldFrame good(shard::EncodeConfigBlock(config));
    ASSERT_TRUE(good.ok());
    auto back = shard::DecodeConfigBlock(*good);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->kinds, DependencyKindSet::All().bits());
    EXPECT_EQ(back->afd_error, 0.25);
  }

  auto expect_rejected = [](const shard::WireRunnerConfig& bad_config,
                            const std::string& want) {
    HeldFrame frame(shard::EncodeConfigBlock(bad_config));
    ASSERT_TRUE(frame.ok());
    auto r = shard::DecodeConfigBlock(*frame);
    ASSERT_FALSE(r.ok()) << "decoded despite " << want;
    EXPECT_NE(r.status().message().find(want), std::string::npos)
        << r.status().ToString();
  };

  // An empty kind set asks the runner to validate nothing — a protocol
  // error, not a degenerate no-op.
  {
    shard::WireRunnerConfig bad = config;
    bad.kinds = 0;
    expect_rejected(bad, "config dependency-kind set invalid (bits 0)");
  }
  // Bits above the known kinds come from a newer (or corrupted) peer.
  {
    shard::WireRunnerConfig bad = config;
    bad.kinds = DependencyKindSet::All().bits() | 0x10;
    expect_rejected(bad, "config dependency-kind set invalid");
  }
  // The AFD threshold is a g1 fraction; anything outside [0, 1] — NaN
  // included — is meaningless and must not reach a validator.
  for (double e : {1.5, -0.25, std::numeric_limits<double>::quiet_NaN()}) {
    shard::WireRunnerConfig bad = config;
    bad.afd_error = e;
    expect_rejected(bad, "config afd_error outside [0, 1]");
  }
}

// ------------------------------------------------------ table codecs --

TEST(ShardCodecTest, TableRankCodecTiersRoundTripExactly) {
  // Cardinalities straddling the byte/short/varint tier boundaries; a
  // single-row table pins the smallest shape.
  for (int64_t cardinality : {1, 2, 255, 256, 257, 65535, 65536, 70000}) {
    const int64_t rows = cardinality > 1000 ? cardinality + 10 : 400;
    EncodedTable t = testing_util::RandomEncodedTable(
        rows, 2, cardinality, static_cast<uint64_t>(cardinality) * 3 + 1);
    HeldFrame compressed(shard::EncodeTableBlock(t));
    HeldFrame raw(shard::EncodeTableBlock(t, /*compress=*/false));
    ASSERT_TRUE(compressed.ok());
    ASSERT_TRUE(raw.ok());
    EXPECT_LE(compressed.bytes.size(), raw.bytes.size());
    for (const HeldFrame* frame : {&compressed, &raw}) {
      Result<EncodedTable> back = shard::DecodeTableBlock(**frame);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      ASSERT_EQ(back->num_columns(), t.num_columns());
      for (int c = 0; c < t.num_columns(); ++c) {
        EXPECT_EQ(back->ranks(c), t.ranks(c)) << "cardinality "
                                              << cardinality;
        EXPECT_EQ(back->column(c).cardinality, t.column(c).cardinality);
      }
    }
  }
  EncodedTable single = testing_util::RandomEncodedTable(1, 3, 1, 9);
  HeldFrame frame(shard::EncodeTableBlock(single));
  ASSERT_TRUE(frame.ok());
  Result<EncodedTable> back = shard::DecodeTableBlock(*frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 1);
}

TEST(ShardCodecTest, CorruptedCompressedTableIsTypedAtEveryByte) {
  EncodedTable t = testing_util::RandomEncodedTable(150, 3, 5, 77);
  const std::vector<uint8_t> frame = shard::EncodeTableBlock(t);
  for (size_t i = 0; i < frame.size() - shard::kFrameHeaderBytes; ++i) {
    HeldFrame bad(CorruptPayloadResealed(frame, i));
    ASSERT_TRUE(bad.ok());
    // Ranks are validated against cardinality and num_rows, so most
    // mutations are typed rejections; the rest only moved rank values
    // within their declared domain. Never OOB, never a crash.
    shard::DecodeTableBlock(*bad).status();
  }
}

// -------------------------------------------------- batch envelopes --

TEST(ShardCodecTest, BatchEnvelopeRoundTripsInnerFramesByteExactly) {
  Rng rng(31);
  std::vector<std::vector<uint8_t>> inner;
  inner.push_back(shard::EncodeCandidateBatch(RandomCandidates(&rng, 5)));
  inner.push_back(shard::EncodeShutdown());
  inner.push_back(shard::EncodeResultBatch(RandomOutcomes(&rng, 3, false)));
  HeldFrame envelope(shard::EncodeBatchEnvelope(inner));
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ((*envelope).type, FrameType::kBatch);
  auto unpacked = shard::UnpackBatchEnvelope(*envelope);
  ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  ASSERT_EQ(unpacked->size(), inner.size());
  for (size_t i = 0; i < inner.size(); ++i) {
    EXPECT_EQ((*unpacked)[i], inner[i]) << "inner frame " << i;
    EXPECT_TRUE(DecodeFrame((*unpacked)[i]).ok());
  }
}

TEST(ShardCodecTest, MalformedEnvelopesAreTypedErrors) {
  Rng rng(32);
  const std::vector<uint8_t> ok_inner =
      shard::EncodeCandidateBatch(RandomCandidates(&rng, 2));

  // An empty envelope is unrepresentable through BatchingFrameSender
  // (zero frames -> no send) and rejected on decode.
  shard::WireWriter empty;
  empty.PutU32(0);
  HeldFrame zero(empty.SealFrame(FrameType::kBatch));
  ASSERT_TRUE(zero.ok());
  EXPECT_FALSE(shard::UnpackBatchEnvelope(*zero).ok());

  // Nested envelopes are rejected (one level of wrapping only).
  HeldFrame nested(shard::EncodeBatchEnvelope(
      {shard::EncodeBatchEnvelope({ok_inner})}));
  ASSERT_TRUE(nested.ok());
  EXPECT_FALSE(shard::UnpackBatchEnvelope(*nested).ok());

  // A hostile count with no bytes behind it must be rejected from the
  // declared sizes, not by attempting the allocation.
  shard::WireWriter hostile;
  hostile.PutU32(0xffffffff);
  HeldFrame bomb(hostile.SealFrame(FrameType::kBatch));
  ASSERT_TRUE(bomb.ok());
  EXPECT_FALSE(shard::UnpackBatchEnvelope(*bomb).ok());

  // Truncated segment: a declared inner length running past the end.
  shard::WireWriter torn;
  torn.PutU32(1);
  torn.PutU64(ok_inner.size() + 50);
  torn.PutBytes(ok_inner.data(), ok_inner.size());
  HeldFrame truncated(torn.SealFrame(FrameType::kBatch));
  ASSERT_TRUE(truncated.ok());
  EXPECT_FALSE(shard::UnpackBatchEnvelope(*truncated).ok());

  // An inner segment shorter than a frame header.
  shard::WireWriter runt;
  runt.PutU32(1);
  runt.PutU64(4);
  runt.PutU32(0xdeadbeef);
  HeldFrame tiny(runt.SealFrame(FrameType::kBatch));
  ASSERT_TRUE(tiny.ok());
  EXPECT_FALSE(shard::UnpackBatchEnvelope(*tiny).ok());

  // Per-byte payload corruption: typed, never OOB.
  const std::vector<uint8_t> envelope =
      shard::EncodeBatchEnvelope({ok_inner, ok_inner});
  for (size_t i = 0; i < envelope.size() - shard::kFrameHeaderBytes; ++i) {
    HeldFrame bad(CorruptPayloadResealed(envelope, i));
    ASSERT_TRUE(bad.ok());
    auto unpacked = shard::UnpackBatchEnvelope(*bad);
    if (!unpacked.ok()) continue;
    // Structure survived; the inner checksums then catch value damage.
    for (const std::vector<uint8_t>& f : *unpacked) {
      shard::DecodeFrame(f).status();
    }
  }
}

// ------------------------------------- batching sender + receiver --

TEST(ShardCodecTest, BatchingSenderCoalescesAndReceiverUnwraps) {
  Rng rng(71);
  InProcessChannel channel;
  BatchingFrameSender sender(&channel);
  std::vector<std::vector<uint8_t>> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(shard::EncodeCandidateBatch(
        RandomCandidates(&rng, 1 + static_cast<size_t>(i))));
    ASSERT_TRUE(sender.Add(sent.back()).ok());
  }
  EXPECT_EQ(sender.pending_frames(), 5u);  // small frames: no auto-flush
  ASSERT_TRUE(sender.Flush().ok());
  EXPECT_EQ(sender.pending_frames(), 0u);

  // Exactly ONE physical frame crossed the channel...
  Result<std::vector<uint8_t>> physical = channel.Receive();
  ASSERT_TRUE(physical.ok());
  HeldFrame envelope(*physical);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ((*envelope).type, FrameType::kBatch);

  // ...which the logical receiver yields as the original sequence.
  ASSERT_TRUE(channel.Send(std::move(*physical)).ok());
  LogicalFrameReceiver receiver(&channel);
  for (size_t i = 0; i < sent.size(); ++i) {
    Result<std::vector<uint8_t>> logical = receiver.Receive();
    ASSERT_TRUE(logical.ok()) << i;
    EXPECT_EQ(*logical, sent[i]) << "logical frame " << i;
  }
}

TEST(ShardCodecTest, BatchingSenderSingleFrameGoesUnwrapped) {
  InProcessChannel channel;
  BatchingFrameSender sender(&channel);
  const std::vector<uint8_t> frame = shard::EncodeShutdown();
  ASSERT_TRUE(sender.Add(frame).ok());
  ASSERT_TRUE(sender.Flush().ok());
  ASSERT_TRUE(sender.Flush().ok());  // empty flush is a no-op
  Result<std::vector<uint8_t>> got = channel.Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, frame);  // no envelope around a lone frame
}

TEST(ShardCodecTest, BatchingSenderAutoFlushesAtThreshold) {
  InProcessChannel channel;
  BatchingFrameSender sender(&channel, /*flush_threshold_bytes=*/256);
  std::vector<uint8_t> big(300, 0x7f);
  shard::WireWriter writer;
  writer.PutBytes(big.data(), big.size());
  ASSERT_TRUE(sender.Add(writer.SealFrame(FrameType::kCandidateBatch)).ok());
  // Crossing the threshold flushed eagerly — nothing left pending.
  EXPECT_EQ(sender.pending_frames(), 0u);
  EXPECT_TRUE(channel.Receive().ok());
}

TEST(ShardCodecTest, FlakyChannelFaultsOverBatchedFramesAreTyped) {
  Rng rng(88);
  std::vector<std::vector<uint8_t>> inner;
  for (int i = 0; i < 4; ++i) {
    inner.push_back(shard::EncodeResultBatch(RandomOutcomes(&rng, 10, true)));
  }

  for (FlakyChannel::Fault fault :
       {FlakyChannel::Fault::kCorruptByte, FlakyChannel::Fault::kShortRead}) {
    shard::ChannelOptions copts;
    copts.receive_timeout_seconds = 1.0;
    FlakyChannel::Plan plan;
    plan.fault = fault;
    plan.trigger_after = 0;
    FlakyChannel channel(std::make_unique<InProcessChannel>(copts), plan);
    BatchingFrameSender sender(&channel);
    for (const std::vector<uint8_t>& f : inner) {
      ASSERT_TRUE(sender.Add(f).ok());
    }
    ASSERT_TRUE(sender.Flush().ok());
    // The mangled envelope must surface as a typed error from the
    // logical receiver (its checksum validation precedes unwrapping),
    // never as a hang or a half-unwrapped sequence.
    LogicalFrameReceiver receiver(&channel);
    Result<std::vector<uint8_t>> got = receiver.Receive();
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kParseError)
        << got.status().ToString();
  }
}

// ----------------------------------------------- varint primitives --

TEST(ShardCodecTest, VarintRoundTripsAndRejectsOverlong) {
  shard::WireWriter writer;
  const uint64_t values[] = {0,    1,      127,        128,
                             300,  16383,  16384,      (1ull << 32) - 1,
                             1ull << 32,   UINT64_MAX, UINT64_MAX - 1};
  for (uint64_t v : values) writer.PutVarint(v);
  const int64_t signed_values[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (int64_t v : signed_values) writer.PutVarintI64(v);

  shard::WireReader reader(writer.payload().data(), writer.payload().size());
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(reader.GetVarint(&got).ok());
    EXPECT_EQ(got, v);
  }
  for (int64_t v : signed_values) {
    int64_t got = 0;
    ASSERT_TRUE(reader.GetVarintI64(&got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(reader.AtEnd());

  // Truncated: continuation bit set on the final byte.
  const uint8_t truncated[] = {0x80};
  shard::WireReader r1(truncated, 1);
  uint64_t out = 0;
  EXPECT_FALSE(r1.GetVarint(&out).ok());

  // Overlong: 10 continuation bytes and an 11th that would be needed.
  std::vector<uint8_t> overlong(11, 0x80);
  overlong.back() = 0x01;
  shard::WireReader r2(overlong.data(), overlong.size());
  EXPECT_FALSE(r2.GetVarint(&out).ok());

  // 65-bit value: the 10th byte carries more than the one legal bit.
  std::vector<uint8_t> wide(9, 0xff);
  wide.push_back(0x02);
  shard::WireReader r3(wide.data(), wide.size());
  EXPECT_FALSE(r3.GetVarint(&out).ok());
}

}  // namespace
}  // namespace aod
