// Tests for OD assembly (canonical parts -> ODs, paper Sec. 2.2/2.3) and
// result serialization (JSON / CSV).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "data/csv_parser.h"
#include "gen/flight_generator.h"
#include "od/aoc_lis_validator.h"
#include "od/discovery.h"
#include "od/od_assembly.h"
#include "od/result_io.h"
#include "partition/partition_cache.h"
#include "test_util.h"

namespace aod {
namespace {

// ------------------------------------------------------------ assembly --

TEST(OdAssemblyTest, PaperSalOrdersTaxGrp) {
  // {}: sal ~ taxGrp plus {sal}: [] -> taxGrp compose into
  // {}: sal -> taxGrp (Example 2.4's OD).
  EncodedTable t = testing_util::PaperEncoded();
  DiscoveryOptions options;
  options.validator = ValidatorKind::kExact;
  DiscoveryResult result = DiscoverOds(t, options);
  PartitionCache cache(&t);
  auto ods = AssembleOds(t, result, 0.0, &cache);
  int sal = t.ColumnIndex("sal");
  int tax_grp = t.ColumnIndex("taxGrp");
  bool found = std::any_of(ods.begin(), ods.end(), [&](const DiscoveredOd& d) {
    return d.context.empty() && d.a == sal && d.b == tax_grp;
  });
  EXPECT_TRUE(found);
  // The converse direction must be absent (taxGrp does not order sal).
  bool converse = std::any_of(
      ods.begin(), ods.end(), [&](const DiscoveredOd& d) {
        return d.context.empty() && d.a == tax_grp && d.b == sal;
      });
  EXPECT_FALSE(converse);
}

TEST(OdAssemblyTest, AssembledFactorsAreExactOdFactors) {
  Table raw = GenerateFlightTable(2000, 8, 42);
  EncodedTable t = EncodeTable(raw);
  DiscoveryOptions options;
  options.epsilon = 0.12;
  DiscoveryResult result = DiscoverOds(t, options);
  PartitionCache cache(&t);
  auto ods = AssembleOds(t, result, options.epsilon, &cache);
  ValidatorOptions full;
  full.early_exit = false;
  for (const auto& od : ods) {
    EXPECT_LE(od.approx_factor, options.epsilon + 1e-9);
    // Re-validation from scratch agrees.
    auto partition = cache.Get(od.context);
    ValidationOutcome check = ValidateAodOptimal(
        t, *partition, od.a, od.b, 1.0, t.num_rows(), full);
    EXPECT_NEAR(check.approx_factor, od.approx_factor, 1e-12)
        << od.ToString(t);
    // The OD factor can exceed either part's factor, never undershoot
    // the OC part (removing splits can only cost more).
    EXPECT_GE(od.approx_factor - 1e-12, 0.0);
    EXPECT_GE(od.approx_factor + 1e-9, od.oc_factor);
  }
}

TEST(OdAssemblyTest, PartsValidButOdInvalidIsFiltered) {
  // Construct: OC {}: a ~ b holds with small factor, OFD {a}: [] -> b
  // holds with small factor, but the OD {}: a -> b needs more removals
  // than eps allows (paper Sec. 2.3's caveat).
  // a has classes of size 2 with b split inside (split errors), plus a
  // couple of swap errors across classes.
  EncodedTable t = EncodedTableFromInts(
      {"a", "b"},
      {{0, 0, 1, 1, 2, 2, 3, 3, 4, 4}, {0, 1, 2, 3, 4, 5, 6, 7, 9, 8}});
  // OC factor: ties broken by b, sequence non-decreasing -> 0 swaps.
  // OFD {a}: every class has two distinct b values -> removal 5 (e=0.5).
  // OD: must fix every split: removal 5 (e=0.5).
  DiscoveryOptions options;
  options.epsilon = 0.5;
  DiscoveryResult result = DiscoverOds(t, options);
  PartitionCache cache(&t);
  // At eps = 0.5 the OD passes...
  auto ods_loose = AssembleOds(t, result, 0.5, &cache);
  bool found = std::any_of(
      ods_loose.begin(), ods_loose.end(),
      [&](const DiscoveredOd& d) { return d.a == 0 && d.b == 1; });
  EXPECT_TRUE(found);
  // ...but at eps = 0.3 the composition must be rejected even though the
  // OC part alone (factor 0) passes.
  auto ods_tight = AssembleOds(t, result, 0.3, &cache);
  for (const auto& d : ods_tight) {
    EXPECT_FALSE(d.a == 0 && d.b == 1) << d.approx_factor;
  }
}

TEST(OdAssemblyTest, OppositePolarityOcsDoNotCompose) {
  EncodedTable t = EncodedTableFromInts(
      {"a", "b"}, {{1, 2, 3, 4}, {8, 6, 4, 2}});
  DiscoveryOptions options;
  options.epsilon = 0.0;
  options.bidirectional = true;
  DiscoveryResult result = DiscoverOds(t, options);
  PartitionCache cache(&t);
  auto ods = AssembleOds(t, result, 0.0, &cache);
  for (const auto& d : ods) {
    // a ~ desc(b) holds but must not be emitted as an OD.
    EXPECT_FALSE(d.context.empty() && ((d.a == 0 && d.b == 1) ||
                                       (d.a == 1 && d.b == 0)));
  }
}

// ---------------------------------------------------------------- JSON --

TEST(ResultIoTest, JsonContainsDependenciesAndStats) {
  EncodedTable t = testing_util::PaperEncoded();
  DiscoveryOptions options;
  options.epsilon = 0.2;
  DiscoveryResult result = DiscoverOds(t, options);
  std::string json = ResultToJson(result, t);
  EXPECT_NE(json.find("\"ocs\""), std::string::npos);
  EXPECT_NE(json.find("\"ofds\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\""), std::string::npos);
  EXPECT_NE(json.find("\"sal\""), std::string::npos);
  EXPECT_NE(json.find("\"timed_out\": false"), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ResultIoTest, JsonEscapesSpecialCharacters) {
  // A column name with a quote must not break the document.
  Schema schema({{"we\"ird", DataType::kInt64}, {"b", DataType::kInt64}});
  Table raw(std::move(schema));
  raw.AppendRow({Value(int64_t{1}), Value(int64_t{1})});
  raw.AppendRow({Value(int64_t{2}), Value(int64_t{2})});
  EncodedTable t = EncodeTable(raw);
  DiscoveryResult result = DiscoverOds(t, {});
  std::string json = ResultToJson(result, t);
  EXPECT_NE(json.find("we\\\"ird"), std::string::npos);
}

TEST(ResultIoTest, CsvHasOneRowPerDependency) {
  EncodedTable t = testing_util::PaperEncoded();
  DiscoveryOptions options;
  options.epsilon = 0.2;
  DiscoveryResult result = DiscoverOds(t, options);
  std::string csv = ResultToCsv(result, t);
  int64_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 1 + static_cast<int64_t>(result.ocs.size()) +
                       static_cast<int64_t>(result.ofds.size()));
  // Round-trips through our own CSV parser.
  auto parsed = ParseCsv(csv).value();
  EXPECT_EQ(parsed.num_rows(),
            static_cast<int64_t>(result.ocs.size() + result.ofds.size()));
  EXPECT_EQ(parsed.num_columns(), 9);
}

TEST(ResultIoTest, WriteStringToFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/aod_result_io_test.json";
  ASSERT_TRUE(WriteStringToFile(path, "{\"x\": 1}\n").ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"x\": 1}\n");
  EXPECT_FALSE(WriteStringToFile("/nonexistent/dir/file", "x").ok());
}

}  // namespace
}  // namespace aod
