// Tests for OD assembly (canonical parts -> ODs, paper Sec. 2.2/2.3) and
// result serialization (JSON / CSV).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "data/csv_parser.h"
#include "gen/flight_generator.h"
#include "od/aoc_lis_validator.h"
#include "od/discovery.h"
#include "od/od_assembly.h"
#include "od/result_io.h"
#include "partition/partition_cache.h"
#include "test_util.h"

namespace aod {
namespace {

// ------------------------------------------------------------ assembly --

TEST(OdAssemblyTest, PaperSalOrdersTaxGrp) {
  // {}: sal ~ taxGrp plus {sal}: [] -> taxGrp compose into
  // {}: sal -> taxGrp (Example 2.4's OD).
  EncodedTable t = testing_util::PaperEncoded();
  DiscoveryOptions options;
  options.validator = ValidatorKind::kExact;
  DiscoveryResult result = DiscoverOds(t, options);
  PartitionCache cache(&t);
  auto ods = AssembleOds(t, result, 0.0, &cache);
  int sal = t.ColumnIndex("sal");
  int tax_grp = t.ColumnIndex("taxGrp");
  bool found = std::any_of(ods.begin(), ods.end(), [&](const DiscoveredOd& d) {
    return d.context.empty() && d.a == sal && d.b == tax_grp;
  });
  EXPECT_TRUE(found);
  // The converse direction must be absent (taxGrp does not order sal).
  bool converse = std::any_of(
      ods.begin(), ods.end(), [&](const DiscoveredOd& d) {
        return d.context.empty() && d.a == tax_grp && d.b == sal;
      });
  EXPECT_FALSE(converse);
}

TEST(OdAssemblyTest, AssembledFactorsAreExactOdFactors) {
  Table raw = GenerateFlightTable(2000, 8, 42);
  EncodedTable t = EncodeTable(raw);
  DiscoveryOptions options;
  options.epsilon = 0.12;
  DiscoveryResult result = DiscoverOds(t, options);
  PartitionCache cache(&t);
  auto ods = AssembleOds(t, result, options.epsilon, &cache);
  ValidatorOptions full;
  full.early_exit = false;
  for (const auto& od : ods) {
    EXPECT_LE(od.approx_factor, options.epsilon + 1e-9);
    // Re-validation from scratch agrees.
    auto partition = cache.Get(od.context);
    ValidationOutcome check = ValidateAodOptimal(
        t, *partition, od.a, od.b, 1.0, t.num_rows(), full);
    EXPECT_NEAR(check.approx_factor, od.approx_factor, 1e-12)
        << od.ToString(t);
    // The OD factor can exceed either part's factor, never undershoot
    // the OC part (removing splits can only cost more).
    EXPECT_GE(od.approx_factor - 1e-12, 0.0);
    EXPECT_GE(od.approx_factor + 1e-9, od.oc_factor);
  }
}

TEST(OdAssemblyTest, PartsValidButOdInvalidIsFiltered) {
  // Construct: OC {}: a ~ b holds with small factor, OFD {a}: [] -> b
  // holds with small factor, but the OD {}: a -> b needs more removals
  // than eps allows (paper Sec. 2.3's caveat).
  // a has classes of size 2 with b split inside (split errors), plus a
  // couple of swap errors across classes.
  EncodedTable t = EncodedTableFromInts(
      {"a", "b"},
      {{0, 0, 1, 1, 2, 2, 3, 3, 4, 4}, {0, 1, 2, 3, 4, 5, 6, 7, 9, 8}});
  // OC factor: ties broken by b, sequence non-decreasing -> 0 swaps.
  // OFD {a}: every class has two distinct b values -> removal 5 (e=0.5).
  // OD: must fix every split: removal 5 (e=0.5).
  DiscoveryOptions options;
  options.epsilon = 0.5;
  DiscoveryResult result = DiscoverOds(t, options);
  PartitionCache cache(&t);
  // At eps = 0.5 the OD passes...
  auto ods_loose = AssembleOds(t, result, 0.5, &cache);
  bool found = std::any_of(
      ods_loose.begin(), ods_loose.end(),
      [&](const DiscoveredOd& d) { return d.a == 0 && d.b == 1; });
  EXPECT_TRUE(found);
  // ...but at eps = 0.3 the composition must be rejected even though the
  // OC part alone (factor 0) passes.
  auto ods_tight = AssembleOds(t, result, 0.3, &cache);
  for (const auto& d : ods_tight) {
    EXPECT_FALSE(d.a == 0 && d.b == 1) << d.approx_factor;
  }
}

TEST(OdAssemblyTest, OppositePolarityOcsDoNotCompose) {
  EncodedTable t = EncodedTableFromInts(
      {"a", "b"}, {{1, 2, 3, 4}, {8, 6, 4, 2}});
  DiscoveryOptions options;
  options.epsilon = 0.0;
  options.bidirectional = true;
  DiscoveryResult result = DiscoverOds(t, options);
  PartitionCache cache(&t);
  auto ods = AssembleOds(t, result, 0.0, &cache);
  for (const auto& d : ods) {
    // a ~ desc(b) holds but must not be emitted as an OD.
    EXPECT_FALSE(d.context.empty() && ((d.a == 0 && d.b == 1) ||
                                       (d.a == 1 && d.b == 0)));
  }
}

// ---------------------------------------------------------------- JSON --

TEST(ResultIoTest, JsonContainsDependenciesAndStats) {
  EncodedTable t = testing_util::PaperEncoded();
  DiscoveryOptions options;
  options.epsilon = 0.2;
  DiscoveryResult result = DiscoverOds(t, options);
  std::string json = ResultToJson(result, t);
  EXPECT_NE(json.find("\"ocs\""), std::string::npos);
  EXPECT_NE(json.find("\"ofds\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\""), std::string::npos);
  EXPECT_NE(json.find("\"sal\""), std::string::npos);
  EXPECT_NE(json.find("\"timed_out\": false"), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ResultIoTest, JsonEscapesSpecialCharacters) {
  // A column name with a quote must not break the document.
  Schema schema({{"we\"ird", DataType::kInt64}, {"b", DataType::kInt64}});
  Table raw(std::move(schema));
  raw.AppendRow({Value(int64_t{1}), Value(int64_t{1})});
  raw.AppendRow({Value(int64_t{2}), Value(int64_t{2})});
  EncodedTable t = EncodeTable(raw);
  DiscoveryResult result = DiscoverOds(t, {});
  std::string json = ResultToJson(result, t);
  EXPECT_NE(json.find("we\\\"ird"), std::string::npos);
}

TEST(ResultIoTest, CsvHasOneRowPerDependency) {
  EncodedTable t = testing_util::PaperEncoded();
  DiscoveryOptions options;
  options.epsilon = 0.2;
  DiscoveryResult result = DiscoverOds(t, options);
  std::string csv = ResultToCsv(result, t);
  int64_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines,
            1 + static_cast<int64_t>(result.dependencies.size()));
  // Round-trips through our own CSV parser.
  auto parsed = ParseCsv(csv).value();
  EXPECT_EQ(parsed.num_rows(),
            static_cast<int64_t>(result.dependencies.size()));
  EXPECT_EQ(parsed.num_columns(), 9);
}

// ------------------------------------------------------- binary blob --

TEST(ResultIoTest, BinaryBlobRoundTripIsLossless) {
  // A real result with removal sets, then every field that does NOT
  // come out of a local fault-free run forced to a non-default value:
  // the PR 7 supervision counters, per-shard byte accounting, a non-OK
  // shard_status and both terminal flags. The blob must carry all of it.
  EncodedTable t = testing_util::PaperEncoded();
  DiscoveryOptions options;
  options.epsilon = 0.2;
  options.collect_removal_sets = true;
  DiscoveryResult result = DiscoverOds(t, options);
  ASSERT_GT(result.CountOfKind(DependencyKind::kOc), 0);

  result.stats.shards_used = 3;
  result.stats.shard_bytes_shipped = 123456;
  result.stats.shard_bytes_per_shard = {1000, 20000, 102456};
  result.stats.shard_bytes_raw = 200000;
  result.stats.shard_bytes_wire = 123456;
  result.stats.shard_frame_bytes = {{"partition", 5000, 2500},
                                    {"result", 800, 700}};
  result.stats.shard_retries = 4;
  result.stats.shard_respawns = 2;
  result.stats.shard_speculative_wins = 1;
  result.stats.shard_speculative_losses = 1;
  result.stats.shard_fallback_shards = 1;
  result.stats.shard_footers_missing = 2;
  result.timed_out = true;
  result.cancelled = true;
  result.shard_status = Status::IoError("shard 2 never came back");

  std::vector<uint8_t> blob = SerializeResult(result);
  Result<DiscoveryResult> back = DeserializeResult(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  ASSERT_EQ(back->dependencies.size(), result.dependencies.size());
  for (size_t i = 0; i < result.dependencies.size(); ++i) {
    const DiscoveredDependency& want = result.dependencies[i];
    const DiscoveredDependency& got = back->dependencies[i];
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.context, want.context);
    EXPECT_EQ(got.a, want.a);
    EXPECT_EQ(got.b, want.b);
    EXPECT_EQ(got.opposite, want.opposite);
    EXPECT_EQ(got.error, want.error);
    EXPECT_EQ(got.removal_size, want.removal_size);
    EXPECT_EQ(got.level, want.level);
    EXPECT_EQ(got.interestingness, want.interestingness);
    EXPECT_EQ(got.removal_rows, want.removal_rows);
  }
  const DiscoveryStats& s = back->stats;
  EXPECT_EQ(s.shards_used, 3);
  EXPECT_EQ(s.shard_bytes_shipped, 123456);
  EXPECT_EQ(s.shard_bytes_per_shard, result.stats.shard_bytes_per_shard);
  EXPECT_EQ(s.shard_bytes_raw, 200000);
  EXPECT_EQ(s.shard_bytes_wire, 123456);
  ASSERT_EQ(s.shard_frame_bytes.size(), 2u);
  EXPECT_EQ(s.shard_frame_bytes[0].frame_type, "partition");
  EXPECT_EQ(s.shard_frame_bytes[0].bytes_raw, 5000);
  EXPECT_EQ(s.shard_frame_bytes[1].bytes_wire, 700);
  EXPECT_EQ(s.shard_retries, 4);
  EXPECT_EQ(s.shard_respawns, 2);
  EXPECT_EQ(s.shard_speculative_wins, 1);
  EXPECT_EQ(s.shard_speculative_losses, 1);
  EXPECT_EQ(s.shard_fallback_shards, 1);
  EXPECT_EQ(s.shard_footers_missing, 2);
  EXPECT_EQ(s.nodes_processed, result.stats.nodes_processed);
  EXPECT_EQ(s.ocs_per_level, result.stats.ocs_per_level);
  EXPECT_TRUE(back->timed_out);
  EXPECT_TRUE(back->cancelled);
  EXPECT_EQ(back->shard_status.code(), StatusCode::kIoError);
  EXPECT_EQ(back->shard_status.message(), "shard 2 never came back");

  // Serializing the deserialized result reproduces the exact bytes —
  // the strongest form of losslessness.
  EXPECT_EQ(SerializeResult(*back), blob);
}

TEST(ResultIoTest, BinaryBlobRejectsTruncationAndCorruption) {
  EncodedTable t = testing_util::PaperEncoded();
  DiscoveryOptions options;
  options.collect_removal_sets = true;
  DiscoveryResult result = DiscoverOds(t, options);
  const std::vector<uint8_t> blob = SerializeResult(result);

  // Every truncation is a clean ParseError, never a crash or a
  // misparse into a different result.
  for (size_t len = 0; len < blob.size(); ++len) {
    Result<DiscoveryResult> r = DeserializeResult(blob.data(), len);
    EXPECT_FALSE(r.ok()) << "truncation at " << len << " parsed";
  }
  // Trailing garbage is rejected too (ExpectEnd).
  std::vector<uint8_t> padded = blob;
  padded.push_back(0);
  EXPECT_FALSE(DeserializeResult(padded).ok());
  // A wrong version byte is rejected before anything else is read.
  std::vector<uint8_t> wrong_version = blob;
  wrong_version[0] ^= 0xFF;
  EXPECT_FALSE(DeserializeResult(wrong_version).ok());
}

TEST(ResultIoTest, BinaryBlobRoundTripsMixedKindRecords) {
  // A run with all four kinds enabled produces a blob holding OC, OFD,
  // FD and AFD records side by side; the round trip must preserve the
  // kind tags and every per-record field.
  EncodedTable t = testing_util::PaperEncoded();
  DiscoveryOptions options;
  options.epsilon = 0.2;
  options.kinds = DependencyKindSet::All();
  options.afd_error = 0.1;
  options.collect_removal_sets = true;
  DiscoveryResult result = DiscoverOds(t, options);
  ASSERT_GT(result.CountOfKind(DependencyKind::kFd), 0);
  ASSERT_GT(result.CountOfKind(DependencyKind::kAfd), 0);
  ASSERT_GT(result.CountOfKind(DependencyKind::kOc), 0);

  std::vector<uint8_t> blob = SerializeResult(result);
  Result<DiscoveryResult> back = DeserializeResult(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->dependencies.size(), result.dependencies.size());
  for (size_t i = 0; i < result.dependencies.size(); ++i) {
    const DiscoveredDependency& want = result.dependencies[i];
    const DiscoveredDependency& got = back->dependencies[i];
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.context, want.context);
    EXPECT_EQ(got.a, want.a);
    EXPECT_EQ(got.b, want.b);
    EXPECT_EQ(got.opposite, want.opposite);
    EXPECT_EQ(got.error, want.error);
    EXPECT_EQ(got.removal_size, want.removal_size);
    EXPECT_EQ(got.level, want.level);
    EXPECT_EQ(got.interestingness, want.interestingness);
    EXPECT_EQ(got.removal_rows, want.removal_rows);
  }
  EXPECT_EQ(back->stats.fd_candidates_validated,
            result.stats.fd_candidates_validated);
  EXPECT_EQ(back->stats.afd_candidates_validated,
            result.stats.afd_candidates_validated);
  EXPECT_EQ(back->stats.fds_per_level, result.stats.fds_per_level);
  EXPECT_EQ(back->stats.afds_per_level, result.stats.afds_per_level);
  EXPECT_EQ(SerializeResult(*back), blob);
}

TEST(ResultIoTest, BinaryBlobRejectsBadKindsAndForgedFields) {
  // One hand-built FD record; every scalar small enough that each varint
  // is a single byte, so the record layout after the u16 version and the
  // one-byte count varint is fixed:
  //   [3] kind  [4] context  [5] a  [6] b  [7] polarity ...
  auto make_result = [] {
    DiscoveryResult r;
    DiscoveredDependency d;
    d.kind = DependencyKind::kFd;
    d.context = AttributeSet::Of({0});
    d.a = 1;
    d.b = -1;
    d.opposite = false;
    d.error = 0.0;
    d.removal_size = 0;
    d.level = 2;
    d.interestingness = 0.5;
    r.dependencies.push_back(d);
    return r;
  };
  const std::vector<uint8_t> blob = SerializeResult(make_result());
  ASSERT_TRUE(DeserializeResult(blob).ok());

  // An unknown kind id is a typed ParseError naming the id.
  std::vector<uint8_t> bad_kind = blob;
  bad_kind[3] = 9;
  Result<DiscoveryResult> r = DeserializeResult(bad_kind);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown dependency kind id 9"),
            std::string::npos)
      << r.status().ToString();

  // A polarity byte other than 0/1 is rejected, not coerced to bool.
  std::vector<uint8_t> bad_polarity = blob;
  bad_polarity[7] = 2;
  r = DeserializeResult(bad_polarity);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bad polarity flag"),
            std::string::npos)
      << r.status().ToString();

  // A target-kind record smuggling OC pair fields is a forgery: either a
  // real rhs attribute or a polarity bit must be refused.
  {
    DiscoveryResult forged = make_result();
    forged.dependencies[0].b = 0;
    r = DeserializeResult(SerializeResult(forged));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(
        r.status().message().find("target-kind record carries OC pair"),
        std::string::npos)
        << r.status().ToString();
  }
  {
    DiscoveryResult forged = make_result();
    forged.dependencies[0].opposite = true;
    r = DeserializeResult(SerializeResult(forged));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(
        r.status().message().find("target-kind record carries OC pair"),
        std::string::npos)
        << r.status().ToString();
  }

  // Attribute indices outside the schema range are rejected for both the
  // OC pair fields and a target-kind's target.
  {
    DiscoveryResult forged = make_result();
    forged.dependencies[0].kind = DependencyKind::kOc;
    forged.dependencies[0].a = AttributeSet::kMaxAttributes;
    forged.dependencies[0].b = 0;
    r = DeserializeResult(SerializeResult(forged));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("OC lhs attribute out of range"),
              std::string::npos)
        << r.status().ToString();
  }
  {
    DiscoveryResult forged = make_result();
    forged.dependencies[0].a = -5;
    r = DeserializeResult(SerializeResult(forged));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("target attribute out of range"),
              std::string::npos)
        << r.status().ToString();
  }
}

TEST(ResultIoTest, WriteStringToFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/aod_result_io_test.json";
  ASSERT_TRUE(WriteStringToFile(path, "{\"x\": 1}\n").ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"x\": 1}\n");
  EXPECT_FALSE(WriteStringToFile("/nonexistent/dir/file", "x").ok());
}

}  // namespace
}  // namespace aod
