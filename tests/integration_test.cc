// Cross-module integration tests: CSV -> encode -> discover pipelines,
// the dataset simulators under full discovery, validator head-to-heads at
// realistic scale, and the error-repair loop from the paper's Fig. 1.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/csv_parser.h"
#include "data/encoder.h"
#include "gen/error_injector.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"
#include "od/aoc_iterative_validator.h"
#include "od/aoc_lis_validator.h"
#include "od/discovery.h"
#include "od/interestingness.h"
#include "od/oc_validator.h"
#include "partition/partition_cache.h"
#include "test_util.h"

namespace aod {
namespace {

TEST(IntegrationTest, CsvToDiscoveryPipeline) {
  // The paper's Table 1 as CSV text, end to end.
  const char* csv =
      "pos,exp,sal,taxGrp,perc,tax,bonus\n"
      "sec,1,20,A,10,2.0,1\n"
      "sec,3,25,A,10,2.5,1\n"
      "dev,1,30,A,1,0.3,3\n"
      "sec,5,40,B,30,12.0,2\n"
      "dev,3,50,B,3,1.5,4\n"
      "dev,5,55,B,30,16.5,4\n"
      "dev,5,60,B,3,1.8,7\n"
      "dev,-1,90,C,8,7.2,7\n"
      "dir,8,200,C,8,16.0,10\n";
  Table table = ParseCsv(csv).value();
  EncodedTable enc = EncodeTable(table);
  DiscoveryOptions options;
  options.epsilon = 0.45;
  DiscoveryResult result = DiscoverOds(enc, options);
  int sal = enc.ColumnIndex("sal");
  int tax = enc.ColumnIndex("tax");
  const auto ocs = result.Ocs();
  bool found = std::any_of(ocs.begin(), ocs.end(),
                           [&](const DiscoveredDependency* d) {
                             return d->Oc() == CanonicalOc{AttributeSet(),
                                                           sal, tax};
                           });
  EXPECT_TRUE(found) << result.Summary(enc);
}

TEST(IntegrationTest, FlightDiscoveryFindsSeededAocs) {
  Table t = GenerateFlightTable(3000, 8, 42);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.12;
  options.validator = ValidatorKind::kOptimal;
  DiscoveryResult result = DiscoverOds(enc, options);
  EXPECT_FALSE(result.timed_out);
  int arr = enc.ColumnIndex("arrDelay");
  int late = enc.ColumnIndex("lateAircraftDelay");
  const auto ocs = result.Ocs();
  bool found = std::any_of(
      ocs.begin(), ocs.end(), [&](const DiscoveredDependency* d) {
        return d->Oc() == CanonicalOc{AttributeSet(), arr, late};
      });
  EXPECT_TRUE(found) << "arrDelay ~ lateAircraftDelay missing:\n"
                     << result.Summary(enc, 40);
}

TEST(IntegrationTest, ExactDiscoveryMissesWhatApproximateFinds) {
  Table t = GenerateFlightTable(2000, 8, 42);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions exact;
  exact.validator = ValidatorKind::kExact;
  DiscoveryOptions approx;
  approx.validator = ValidatorKind::kOptimal;
  approx.epsilon = 0.12;
  DiscoveryResult re = DiscoverOds(enc, exact);
  DiscoveryResult ra = DiscoverOds(enc, approx);
  int arr = enc.ColumnIndex("arrDelay");
  int late = enc.ColumnIndex("lateAircraftDelay");
  auto has_root_oc = [&](const DiscoveryResult& r) {
    const auto ocs = r.Ocs();
    return std::any_of(ocs.begin(), ocs.end(),
                       [&](const DiscoveredDependency* d) {
                         return d->Oc() == CanonicalOc{AttributeSet(), arr,
                                                       late};
                       });
  };
  EXPECT_FALSE(has_root_oc(re));
  EXPECT_TRUE(has_root_oc(ra));
  // Exp-5 shape: approximate dependencies sit at lower lattice levels.
  if (re.CountOfKind(DependencyKind::kOc) > 0 &&
      ra.CountOfKind(DependencyKind::kOc) > 0) {
    EXPECT_LE(ra.stats.AverageOcLevel(), re.stats.AverageOcLevel() + 1e-9);
  }
}

TEST(IntegrationTest, OptimalAndIterativeAgreeAwayFromBoundary) {
  // Where no candidate's true factor lies between eps and the iterative
  // overestimate, both discoveries agree. We verify agreement on clean
  // exact data (factor 0 everywhere relevant).
  EncodedTable t = EncodedTableFromInts(
      {"a", "b", "c"},
      {{0, 0, 1, 1, 2, 2}, {1, 1, 2, 2, 3, 3}, {5, 5, 4, 4, 3, 3}});
  DiscoveryOptions opt;
  opt.validator = ValidatorKind::kOptimal;
  opt.epsilon = 0.0;
  DiscoveryOptions it;
  it.validator = ValidatorKind::kIterative;
  it.epsilon = 0.0;
  DiscoveryResult ro = DiscoverOds(t, opt);
  DiscoveryResult ri = DiscoverOds(t, it);
  const auto ro_ocs = ro.Ocs(), ri_ocs = ri.Ocs();
  ASSERT_EQ(ro_ocs.size(), ri_ocs.size());
  for (size_t i = 0; i < ro_ocs.size(); ++i) {
    EXPECT_TRUE(ro_ocs[i]->Oc() == ri_ocs[i]->Oc());
  }
}

TEST(IntegrationTest, RemovalSetFlagsInjectedErrors) {
  // The Fig. 1 loop: inject scale errors into a clean monotone pair, then
  // confirm the minimal removal set points at (mostly) injected rows.
  Table t = GenerateFlightTable(2000, 9, 7);
  // distance (7) -> airTime (8) has 5% natural violations; plant extra
  // corrupted cells and check they are flagged.
  std::set<int64_t> dirty;
  {
    // Find rows the injector changed by comparing against a fresh copy.
    Table clean = GenerateFlightTable(2000, 9, 7);
    InjectScaleErrors(&t, "airTime", 0.03, 10.0, 99).value();
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      if (!(t.GetValue(r, 8) == clean.GetValue(r, 8))) dirty.insert(r);
    }
  }
  ASSERT_GT(dirty.size(), 10u);
  EncodedTable enc = EncodeTable(t);
  auto whole = StrippedPartition::WholeRelation(enc.num_rows());
  ValidatorOptions vo;
  vo.collect_removal_set = true;
  vo.early_exit = false;
  ValidationOutcome out =
      ValidateAocOptimal(enc, whole, 7, 8, 1.0, enc.num_rows(), vo);
  // Most injected errors are large upward scalings of mid-range values,
  // so they appear in the minimal removal set.
  int64_t flagged_dirty = 0;
  for (int32_t r : out.removal_rows) {
    if (dirty.count(r)) ++flagged_dirty;
  }
  EXPECT_GT(static_cast<double>(flagged_dirty) /
                static_cast<double>(dirty.size()),
            0.5);
}

TEST(IntegrationTest, InterestingnessPrefersSmallContexts) {
  Table t = GenerateNcVoterTable(2000, 10, 5);
  EncodedTable enc = EncodeTable(t);
  PartitionCache cache(&enc);
  double empty_ctx =
      InterestingnessScore(*cache.Get(AttributeSet()), 0, 2000);
  double one_ctx = InterestingnessScore(
      *cache.Get(AttributeSet::Of({1})), 1, 2000);
  double two_ctx = InterestingnessScore(
      *cache.Get(AttributeSet::Of({1, 9})), 2, 2000);
  EXPECT_GT(empty_ctx, one_ctx);
  EXPECT_GT(one_ctx, two_ctx);
  EXPECT_EQ(empty_ctx, 1.0);
}

TEST(IntegrationTest, NcVoterDiscoveryRunsCleanly) {
  Table t = GenerateNcVoterTable(1500, 10, 11);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.20;
  DiscoveryResult result = DiscoverOds(enc, options);
  EXPECT_FALSE(result.timed_out);
  // The seeded exact OD zip -> county appears as OC + OFD.
  int zip = enc.ColumnIndex("zip");
  int county = enc.ColumnIndex("county");
  const auto ocs = result.Ocs();
  bool oc_found = std::any_of(
      ocs.begin(), ocs.end(), [&](const DiscoveredDependency* d) {
        return d->Oc() == CanonicalOc{AttributeSet(), zip, county};
      });
  EXPECT_TRUE(oc_found) << result.Summary(enc, 50);
  const auto ofds = result.Ofds();
  bool ofd_found = std::any_of(
      ofds.begin(), ofds.end(), [&](const DiscoveredDependency* d) {
        return d->Ofd() == CanonicalOfd{AttributeSet::Of({zip}), county};
      });
  EXPECT_TRUE(ofd_found);
}

TEST(IntegrationTest, LargerThresholdNeverSlowerInValidations) {
  // Exp-3 shape: for the optimal validator, a larger threshold does not
  // increase the number of OC validations by more than the extra
  // discoveries it unlocks (pruning only improves). We assert the weaker
  // invariant that candidate counts do not explode.
  Table t = GenerateFlightTable(1200, 8, 21);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions lo;
  lo.epsilon = 0.0;
  DiscoveryOptions hi;
  hi.epsilon = 0.25;
  DiscoveryResult rlo = DiscoverOds(enc, lo);
  DiscoveryResult rhi = DiscoverOds(enc, hi);
  EXPECT_LE(rhi.stats.oc_candidates_validated,
            rlo.stats.oc_candidates_validated);
}

TEST(IntegrationTest, SummaryMentionsNamedColumns) {
  Table t = GenerateFlightTable(500, 6, 1);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.15;
  DiscoveryResult result = DiscoverOds(enc, options);
  std::string summary = result.Summary(enc);
  EXPECT_NE(summary.find("OCs ("), std::string::npos);
  EXPECT_NE(summary.find("OFDs ("), std::string::npos);
}

}  // namespace
}  // namespace aod
