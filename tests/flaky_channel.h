// Fault-injecting ShardChannel decorator for transport tests.
//
// Wraps any ShardChannel and, after `trigger_after` cleanly forwarded
// frames in the faulted direction, injects exactly one fault:
//
//   kTornWrite    Send forwards only a prefix of the frame — a torn
//                 write as a framed-queue transport observes it;
//   kShortRead    Receive truncates the delivered frame;
//   kCorruptByte  Receive flips one payload byte;
//   kDropFrame    Send silently discards the frame (the peer sees
//                 nothing — the *timeout* path, not the decode path);
//   kStallReceive Receive parks for `stall_ms` before forwarding the
//                 frame intact — a straggling-but-healthy shard (the
//                 *speculation* path: no error is ever surfaced).
//
// In pass-through mode (kNone, the default) the decorator is perfectly
// transparent, which is itself a tested property: the full sharded
// determinism contract must hold with a pass-through FlakyChannel
// wrapped around every coordinator endpoint
// (tests/parallel_determinism_test.cc).
#ifndef AOD_TESTS_FLAKY_CHANNEL_H_
#define AOD_TESTS_FLAKY_CHANNEL_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "shard/channel.h"

namespace aod {
namespace testing_util {

class FlakyChannel final : public shard::ShardChannel {
 public:
  enum class Fault {
    kNone,
    kTornWrite,
    kShortRead,
    kCorruptByte,
    kDropFrame,
    kStallReceive,
  };

  struct Plan {
    Fault fault = Fault::kNone;
    /// Frames forwarded cleanly (in the faulted direction) before the
    /// fault fires; the fault fires once.
    int trigger_after = 0;
    /// How long kStallReceive parks before forwarding.
    int stall_ms = 0;
    /// Shared across decorated channels so a fleet of links injects one
    /// fault total, wherever it lands first. Optional.
    std::atomic<int>* shared_budget = nullptr;
  };

  FlakyChannel(std::unique_ptr<shard::ShardChannel> inner, Plan plan)
      : inner_(std::move(inner)), plan_(plan) {}

  Status Send(std::vector<uint8_t> frame) override {
    if (Due(Fault::kTornWrite)) {
      frame.resize(frame.size() / 2);
      return inner_->Send(std::move(frame));
    }
    if (Due(Fault::kDropFrame)) {
      return Status::OK();  // accepted, never delivered
    }
    return inner_->Send(std::move(frame));
  }

  Result<std::vector<uint8_t>> Receive() override {
    if (Due(Fault::kStallReceive)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(plan_.stall_ms));
    }
    Result<std::vector<uint8_t>> frame = inner_->Receive();
    if (!frame.ok()) return frame;
    if (Due(Fault::kShortRead)) {
      frame->resize(frame->size() / 2);
    } else if (Due(Fault::kCorruptByte)) {
      if (!frame->empty()) frame->back() ^= 0x5a;
    }
    return frame;
  }

  void Close() override { inner_->Close(); }
  int64_t bytes_sent() const override { return inner_->bytes_sent(); }
  int64_t bytes_received() const override { return inner_->bytes_received(); }

  shard::ShardChannel* inner() { return inner_.get(); }

 private:
  /// True exactly once: when `fault` is armed and trigger_after clean
  /// frames in its direction have passed (and the shared budget, if
  /// any, has not been spent by a sibling).
  bool Due(Fault fault) {
    if (plan_.fault != fault) return false;
    if (fired_) return false;
    if (plan_.shared_budget != nullptr && plan_.shared_budget->load() <= 0) {
      return false;
    }
    if (clean_count_++ < plan_.trigger_after) return false;
    if (plan_.shared_budget != nullptr) {
      if (plan_.shared_budget->fetch_sub(1) <= 0) return false;
    }
    fired_ = true;
    return true;
  }

  std::unique_ptr<shard::ShardChannel> inner_;
  const Plan plan_;
  int clean_count_ = 0;
  bool fired_ = false;
};

}  // namespace testing_util
}  // namespace aod

#endif  // AOD_TESTS_FLAKY_CHANNEL_H_
