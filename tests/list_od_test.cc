// Tests for list-based ODs: the canonical mapping (paper Sec. 2.2,
// Example 2.13) and the list-based validators (Sec. 3.3 + footnote 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/random.h"
#include "od/list_od.h"
#include "od/list_od_validator.h"
#include "test_util.h"

namespace aod {
namespace {

constexpr int kPos = 0;
constexpr int kExp = 1;
constexpr int kSal = 2;
constexpr int kTaxGrp = 3;

// ---------------------------------------------------- canonical mapping --

TEST(ListOdMappingTest, PaperExample213) {
  // [A, B] -> [C, D] with A=0, B=1, C=2, D=3.
  ListOd od{{0, 1}, {2, 3}};
  CanonicalOdSet set = MapListOdToCanonical(od);

  ASSERT_EQ(set.ofds.size(), 2u);
  EXPECT_EQ(set.ofds[0], (CanonicalOfd{AttributeSet::Of({0, 1}), 2}));
  EXPECT_EQ(set.ofds[1], (CanonicalOfd{AttributeSet::Of({0, 1}), 3}));

  ASSERT_EQ(set.ocs.size(), 4u);
  EXPECT_EQ(set.ocs[0], (CanonicalOc{AttributeSet(), 0, 2}));
  EXPECT_EQ(set.ocs[1], (CanonicalOc{AttributeSet::Of({2}), 0, 3}));
  EXPECT_EQ(set.ocs[2], (CanonicalOc{AttributeSet::Of({0}), 1, 2}));
  EXPECT_EQ(set.ocs[3], (CanonicalOc{AttributeSet::Of({0, 2}), 1, 3}));
}

TEST(ListOdMappingTest, SingletonLists) {
  ListOd od{{4}, {7}};
  CanonicalOdSet set = MapListOdToCanonical(od);
  ASSERT_EQ(set.ofds.size(), 1u);
  EXPECT_EQ(set.ofds[0], (CanonicalOfd{AttributeSet::Of({4}), 7}));
  ASSERT_EQ(set.ocs.size(), 1u);
  EXPECT_EQ(set.ocs[0], (CanonicalOc{AttributeSet(), 4, 7}));
}

TEST(ListOdMappingTest, TrivialityPredicates) {
  EXPECT_TRUE(IsTrivial(CanonicalOc{AttributeSet(), 3, 3}));
  EXPECT_TRUE(IsTrivial(CanonicalOc{AttributeSet::Of({3}), 3, 4}));
  EXPECT_FALSE(IsTrivial(CanonicalOc{AttributeSet::Of({1}), 3, 4}));
  EXPECT_TRUE(IsTrivial(CanonicalOfd{AttributeSet::Of({2}), 2}));
  EXPECT_FALSE(IsTrivial(CanonicalOfd{AttributeSet::Of({2}), 3}));
}

TEST(ListOdTest, ToStringForms) {
  EncodedTable t = testing_util::PaperEncoded();
  ListOd od{{kPos, kSal}, {kPos, kExp}};
  EXPECT_EQ(od.ToString(t), "[pos, sal] -> [pos, exp]");
  EXPECT_EQ((CanonicalOc{AttributeSet::Of({kPos}), kSal, kTaxGrp})
                .ToString(t),
            "{pos}: sal ~ taxGrp");
  EXPECT_EQ(
      (CanonicalOfd{AttributeSet::Of({kPos, kSal}), kTaxGrp}).ToString(t),
      "{pos, sal}: [] -> taxGrp");
}

// --------------------------------------------------- exact validation --

TEST(ListOdValidatorTest, PaperTableSalOrdersTaxGrp) {
  EncodedTable t = testing_util::PaperEncoded();
  EXPECT_TRUE(ValidateListOdExact(t, {{kSal}, {kTaxGrp}}));
  EXPECT_FALSE(ValidateListOdExact(t, {{kTaxGrp}, {kSal}}));  // FD fails
  EXPECT_TRUE(ValidateListOcExact(t, {{kTaxGrp}, {kSal}}));   // OC holds
}

TEST(ListOdValidatorTest, PaperPosExpPosSal) {
  EncodedTable t = testing_util::PaperEncoded();
  // pos,exp ~ pos,sal has the t8 swap.
  EXPECT_FALSE(ValidateListOcExact(t, {{kPos, kExp}, {kPos, kSal}}));
  ValidationOutcome out = ValidateListOcApprox(
      t, {{kPos, kExp}, {kPos, kSal}}, 1.0);
  // Paper Sec. 1.1: minimal removal set {t8}, factor 1/9.
  EXPECT_EQ(out.removal_size, 1);
  EXPECT_NEAR(out.approx_factor, 1.0 / 9.0, 1e-9);
}

TEST(ListOdValidatorTest, EmptyListsAreTriviallyValid) {
  EncodedTable t = testing_util::PaperEncoded();
  EXPECT_TRUE(ValidateListOdExact(t, {{}, {}}));
  EXPECT_TRUE(ValidateListOdExact(t, {{kSal}, {}}));
  // [] -> [sal]: the empty lhs makes all tuples comparable, so sal must
  // already be sorted in *every* order — fails unless constant.
  EXPECT_FALSE(ValidateListOdExact(t, {{}, {kSal}}));
}

TEST(ListOdValidatorTest, ReflexiveAndPrefix) {
  EncodedTable t = testing_util::PaperEncoded();
  EXPECT_TRUE(ValidateListOdExact(t, {{kSal, kExp}, {kSal}}));
  EXPECT_TRUE(ValidateListOcExact(t, {{kSal}, {kSal, kExp}}));
}

// -------------------------------------- definition-based random checks --

/// Literal Def. 2.1/2.2 oracle: s <=_X t  =>  s <=_Y t for all pairs.
bool OdHoldsByDefinition(const EncodedTable& t, const ListOd& od) {
  auto leq = [&](const std::vector<int>& attrs, int64_t s, int64_t u) {
    for (int a : attrs) {
      int32_t sv = t.ranks(a)[static_cast<size_t>(s)];
      int32_t uv = t.ranks(a)[static_cast<size_t>(u)];
      if (sv != uv) return sv < uv;
    }
    return true;  // equal on all attrs => s precedes t (both directions)
  };
  for (int64_t s = 0; s < t.num_rows(); ++s) {
    for (int64_t u = 0; u < t.num_rows(); ++u) {
      if (leq(od.lhs, s, u) && !leq(od.rhs, s, u)) return false;
    }
  }
  return true;
}

class ListOdPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ListOdPropertyTest, ExactValidatorMatchesDefinition) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    EncodedTable t = testing_util::RandomEncodedTable(
        rng.UniformInt(2, 25), 4, rng.UniformInt(2, 4),
        rng.NextUint64());
    // Random lists over the 4 attributes (repeats allowed).
    auto random_list = [&rng]() {
      std::vector<int> out;
      int len = static_cast<int>(rng.UniformInt(1, 3));
      for (int i = 0; i < len; ++i) {
        out.push_back(static_cast<int>(rng.UniformInt(0, 3)));
      }
      return out;
    };
    ListOd od{random_list(), random_list()};
    ASSERT_EQ(ValidateListOdExact(t, od), OdHoldsByDefinition(t, od))
        << od.ToString();
    // OC symmetry.
    ListOd rev{od.rhs, od.lhs};
    ASSERT_EQ(ValidateListOcExact(t, od), ValidateListOcExact(t, rev));
  }
}

TEST_P(ListOdPropertyTest, ApproxRemovalSetsAreRemovalSets) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 20; ++trial) {
    EncodedTable t = testing_util::RandomEncodedTable(
        rng.UniformInt(2, 20), 3, 3, rng.NextUint64());
    ListOd od{{static_cast<int>(rng.UniformInt(0, 2))},
              {static_cast<int>(rng.UniformInt(0, 2))}};
    ValidatorOptions opts;
    opts.collect_removal_set = true;
    ValidationOutcome out = ValidateListOdApprox(t, od, 1.0, opts);
    // Rebuild the reduced table and re-validate exactly.
    std::vector<std::vector<int64_t>> cols(3);
    std::set<int32_t> removed(out.removal_rows.begin(),
                              out.removal_rows.end());
    ASSERT_EQ(static_cast<int64_t>(removed.size()), out.removal_size);
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      if (removed.count(static_cast<int32_t>(r))) continue;
      for (int c = 0; c < 3; ++c) {
        cols[static_cast<size_t>(c)].push_back(
            t.ranks(c)[static_cast<size_t>(r)]);
      }
    }
    EncodedTable reduced = EncodedTableFromInts({"a", "b", "c"}, cols);
    ASSERT_TRUE(ValidateListOdExact(reduced, od))
        << od.ToString() << " removal=" << out.removal_size;
    // Exactness consistency: zero removal iff already exact.
    ASSERT_EQ(out.removal_size == 0, ValidateListOdExact(t, od));
  }
}

TEST_P(ListOdPropertyTest, ApproxOcMinimalityOnSingletonLists) {
  // For singleton lists the list-based approximate OC must agree with the
  // brute-force minimal removal set (they solve the same problem).
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 8; ++trial) {
    EncodedTable t = testing_util::RandomEncodedTable(
        rng.UniformInt(4, 11), 2, 3, rng.NextUint64());
    ListOd od{{0}, {1}};
    ValidationOutcome out = ValidateListOcApprox(t, od, 1.0);
    int64_t truth =
        testing_util::MinRemovalOcBruteForce(t, AttributeSet(), 0, 1);
    ASSERT_EQ(out.removal_size, truth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListOdPropertyTest,
                         ::testing::Values(301, 302, 303));

}  // namespace
}  // namespace aod
