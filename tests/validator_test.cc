// Tests for the four canonical-OD validators: exact OC, exact/approx OFD,
// AOC-optimal (paper Alg. 2), AOC-iterative (paper Alg. 1).
//
// Includes the paper's worked examples from Table 1 (Ex. 2.4, 2.12, 2.15,
// 3.1, 3.2) and property tests against definition-based oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "od/aoc_iterative_validator.h"
#include "od/aoc_lis_validator.h"
#include "od/oc_validator.h"
#include "od/ofd_validator.h"
#include "partition/partition_cache.h"
#include "test_util.h"

namespace aod {
namespace {

using testing_util::NaivePartition;
using testing_util::PaperEncoded;

// Column indices in Table 1.
constexpr int kPos = 0;
constexpr int kExp = 1;
constexpr int kSal = 2;
constexpr int kTaxGrp = 3;
constexpr int kPerc = 4;
constexpr int kTax = 5;
constexpr int kBonus = 6;

class PaperTableTest : public ::testing::Test {
 protected:
  EncodedTable table_ = PaperEncoded();
  StrippedPartition whole_ = StrippedPartition::WholeRelation(9);
};

// ------------------------------------------------------------- Exact OC --

TEST_F(PaperTableTest, Example24SalOrdersTaxGrp) {
  // "the OC taxGrp ~ sal holds" and sal -> taxGrp holds.
  EXPECT_TRUE(ValidateOcExact(table_, whole_, kSal, kTaxGrp));
  EXPECT_TRUE(ValidateOcExact(table_, whole_, kTaxGrp, kSal));  // symmetric
  // sal -> taxGrp as an OD: OC + OFD {sal}: [] -> taxGrp.
  auto sal_partition = NaivePartition(table_, AttributeSet::Of({kSal}));
  EXPECT_TRUE(ValidateOfdExact(table_, sal_partition, kTaxGrp));
  // taxGrp does not *order* sal (the FD fails), but the OC still holds.
  auto grp_partition = NaivePartition(table_, AttributeSet::Of({kTaxGrp}));
  EXPECT_FALSE(ValidateOfdExact(table_, grp_partition, kSal));
}

TEST_F(PaperTableTest, SalTaxOcDoesNotHold) {
  // The motivating dirty pair: sal ~ tax is violated by the perc errors.
  EXPECT_FALSE(ValidateOcExact(table_, whole_, kSal, kTax));
}

TEST_F(PaperTableTest, Example212SalBonusCompatibleWithinPos) {
  // {pos}: sal ~ bonus.
  auto pos_partition = NaivePartition(table_, AttributeSet::Of({kPos}));
  EXPECT_TRUE(ValidateOcExact(table_, pos_partition, kSal, kBonus));
  // {pos, sal}: [] -> bonus.
  auto ps_partition =
      NaivePartition(table_, AttributeSet::Of({kPos, kSal}));
  EXPECT_TRUE(ValidateOfdExact(table_, ps_partition, kBonus));
}

TEST_F(PaperTableTest, Example27PosExpPosSalSwapAndSplit)
{
  // OC pos,exp ~ pos,sal has a swap (t7, t8): within context {} for lists;
  // in canonical terms, {pos}: exp ~ sal must fail (t8 = dev/-1/90K).
  auto pos_partition = NaivePartition(table_, AttributeSet::Of({kPos}));
  EXPECT_FALSE(ValidateOcExact(table_, pos_partition, kExp, kSal));
  // The FD pos,exp -> sal fails on the split (t6, t7).
  auto pe_partition =
      NaivePartition(table_, AttributeSet::Of({kPos, kExp}));
  EXPECT_FALSE(ValidateOfdExact(table_, pe_partition, kSal));
}

TEST_F(PaperTableTest, CountSwapsSalTax) {
  // Example 3.1: t7 swaps with t1, t2, t4, t6 — "more than any tuple".
  // The full inventory is 12 swapped pairs: t1 and t2 each swap with
  // {t3, t5, t7}, t4 with {t5, t7, t8}, t6 with {t7, t8, t9's... } —
  // enumerated: (t1,t3),(t1,t5),(t1,t7),(t2,t3),(t2,t5),(t2,t7),
  // (t4,t5),(t4,t7),(t4,t8),(t6,t7),(t6,t8),(t6,t9).
  EXPECT_EQ(CountOcSwaps(table_, whole_, kSal, kTax), 12);
  EXPECT_EQ(CountOcSwaps(table_, whole_, kSal, kTaxGrp), 0);
}

// ------------------------------------------- AOC optimal (Algorithm 2) --

TEST_F(PaperTableTest, Example32OptimalRemovalSet) {
  // e(sal ~ tax) = 4/9 with removal set {t1, t2, t4, t6}.
  ValidatorOptions opts;
  opts.collect_removal_set = true;
  ValidationOutcome out =
      ValidateAocOptimal(table_, whole_, kSal, kTax, 1.0, 9, opts);
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.removal_size, 4);
  EXPECT_NEAR(out.approx_factor, 4.0 / 9.0, 1e-9);
  std::set<int32_t> removed(out.removal_rows.begin(),
                            out.removal_rows.end());
  EXPECT_EQ(removed, (std::set<int32_t>{0, 1, 3, 5}));  // t1, t2, t4, t6
}

TEST_F(PaperTableTest, Example215MinimalityAgainstBruteForce) {
  int64_t truth =
      testing_util::MinRemovalOcBruteForce(table_, AttributeSet(), kSal,
                                           kTax);
  EXPECT_EQ(truth, 4);
  ValidationOutcome out =
      ValidateAocOptimal(table_, whole_, kSal, kTax, 1.0, 9);
  EXPECT_EQ(out.removal_size, truth);
}

TEST_F(PaperTableTest, IntroExamplePosExpPosSal) {
  // Paper Sec. 1.1: for the OC pos,exp ~ pos,sal the minimal removal set
  // is {t8} and the factor 1/9. Canonically: {pos}: exp ~ sal.
  auto pos_partition = NaivePartition(table_, AttributeSet::Of({kPos}));
  ValidatorOptions opts;
  opts.collect_removal_set = true;
  ValidationOutcome out = ValidateAocOptimal(table_, pos_partition, kExp,
                                             kSal, 1.0, 9, opts);
  EXPECT_EQ(out.removal_size, 1);
  EXPECT_NEAR(out.approx_factor, 1.0 / 9.0, 1e-9);
  EXPECT_EQ(out.removal_rows, (std::vector<int32_t>{7}));  // t8
}

TEST_F(PaperTableTest, ThresholdGatesValidity) {
  // e = 4/9 ~ 0.444: valid at eps 0.45, invalid at 0.40.
  EXPECT_TRUE(
      ValidateAocOptimal(table_, whole_, kSal, kTax, 0.45, 9).valid);
  EXPECT_FALSE(
      ValidateAocOptimal(table_, whole_, kSal, kTax, 0.40, 9).valid);
  // Boundary: 4/9 exactly.
  EXPECT_TRUE(
      ValidateAocOptimal(table_, whole_, kSal, kTax, 4.0 / 9.0, 9).valid);
}

TEST_F(PaperTableTest, EarlyExitReportsLowerBound) {
  ValidationOutcome out =
      ValidateAocOptimal(table_, whole_, kSal, kTax, 0.0, 9);
  EXPECT_FALSE(out.valid);
  EXPECT_TRUE(out.early_exit);
  EXPECT_GE(out.removal_size, 1);
  // Without early exit the full minimal removal set is measured.
  ValidatorOptions opts;
  opts.early_exit = false;
  out = ValidateAocOptimal(table_, whole_, kSal, kTax, 0.0, 9, opts);
  EXPECT_FALSE(out.valid);
  EXPECT_FALSE(out.early_exit);
  EXPECT_EQ(out.removal_size, 4);
}

TEST_F(PaperTableTest, ExactOcMeansZeroRemoval) {
  ValidationOutcome out =
      ValidateAocOptimal(table_, whole_, kSal, kTaxGrp, 0.0, 9);
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.removal_size, 0);
  EXPECT_EQ(out.approx_factor, 0.0);
}

// ----------------------------------------- AOC iterative (Algorithm 1) --

TEST_F(PaperTableTest, Example31IterativeOverestimates) {
  // The greedy strategy removes t7, t5, t3, t6, t4 -> 5/9, overestimating
  // the true 4/9.
  ValidatorOptions opts;
  opts.collect_removal_set = true;
  opts.early_exit = false;
  ValidationOutcome out =
      ValidateAocIterative(table_, whole_, kSal, kTax, 1.0, 9, opts);
  EXPECT_EQ(out.removal_size, 5);
  EXPECT_NEAR(out.approx_factor, 5.0 / 9.0, 1e-9);
  std::set<int32_t> removed(out.removal_rows.begin(),
                            out.removal_rows.end());
  EXPECT_EQ(removed, (std::set<int32_t>{2, 3, 4, 5, 6}));  // t3..t7
}

TEST_F(PaperTableTest, IterativeMissesAocNearThreshold) {
  // At eps = 0.5: the candidate truly holds (4/9 <= 0.5) but the greedy
  // validator reports 5/9 > 0.5 -> INVALID. This is the incompleteness
  // the paper fixes.
  EXPECT_TRUE(
      ValidateAocOptimal(table_, whole_, kSal, kTax, 0.5, 9).valid);
  EXPECT_FALSE(
      ValidateAocIterative(table_, whole_, kSal, kTax, 0.5, 9).valid);
}

TEST_F(PaperTableTest, IterativeEarlyExitAtThreshold) {
  ValidationOutcome out =
      ValidateAocIterative(table_, whole_, kSal, kTax, 0.1, 9);
  EXPECT_FALSE(out.valid);
  EXPECT_TRUE(out.early_exit);
  // Stops right after crossing floor(0.1 * 9) = 0 removals.
  EXPECT_EQ(out.removal_size, 1);
}

TEST_F(PaperTableTest, IterativeAgreesOnCleanPairs) {
  ValidationOutcome out =
      ValidateAocIterative(table_, whole_, kSal, kTaxGrp, 0.0, 9);
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.removal_size, 0);
}

// ------------------------------------------------------------- AOD (OD) --

TEST_F(PaperTableTest, AodValidatorRemovesSplitsToo) {
  // {pos}: exp -> sal: the swap (t8) plus the split (t6, t7) must go.
  auto pos_partition = NaivePartition(table_, AttributeSet::Of({kPos}));
  ValidationOutcome oc =
      ValidateAocOptimal(table_, pos_partition, kExp, kSal, 1.0, 9);
  ValidationOutcome od =
      ValidateAodOptimal(table_, pos_partition, kExp, kSal, 1.0, 9);
  EXPECT_EQ(oc.removal_size, 1);  // swap only
  EXPECT_EQ(od.removal_size, 2);  // swap + one side of the split
}

TEST_F(PaperTableTest, AodOnExactOdIsZero) {
  // {}: sal -> taxGrp holds exactly.
  ValidationOutcome od =
      ValidateAodOptimal(table_, whole_, kSal, kTaxGrp, 0.0, 9);
  EXPECT_TRUE(od.valid);
  EXPECT_EQ(od.removal_size, 0);
}

TEST(AodValidatorTest, SplitOnlyInput) {
  // A equal everywhere, B differs: pure splits, no swaps.
  EncodedTable t = EncodedTableFromInts({"a", "b"}, {{1, 1, 1}, {1, 2, 3}});
  auto whole = StrippedPartition::WholeRelation(3);
  EXPECT_EQ(ValidateAocOptimal(t, whole, 0, 1, 1.0, 3).removal_size, 0);
  EXPECT_EQ(ValidateAodOptimal(t, whole, 0, 1, 1.0, 3).removal_size, 2);
}

// -------------------------------------------------------- OFD validator --

TEST_F(PaperTableTest, OfdApproxCountsMinimalRemoval) {
  // {pos, exp}: [] -> sal fails via (t6, t7); removing one of them fixes
  // it.
  auto pe_partition =
      NaivePartition(table_, AttributeSet::Of({kPos, kExp}));
  ValidatorOptions opts;
  opts.collect_removal_set = true;
  ValidationOutcome out =
      ValidateOfdApprox(table_, pe_partition, kSal, 1.0, 9, opts);
  EXPECT_EQ(out.removal_size, 1);
  EXPECT_NEAR(out.approx_factor, 1.0 / 9.0, 1e-9);
  EXPECT_EQ(out.removal_rows.size(), 1u);
  int32_t removed = out.removal_rows[0];
  EXPECT_TRUE(removed == 5 || removed == 6);  // t6 or t7
}

TEST_F(PaperTableTest, OfdApproxZeroForExact) {
  auto sal_partition = NaivePartition(table_, AttributeSet::Of({kSal}));
  ValidationOutcome out =
      ValidateOfdApprox(table_, sal_partition, kTaxGrp, 0.0, 9);
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.removal_size, 0);
}

TEST(OfdValidatorTest, EmptyPartitionVacuouslyHolds) {
  EncodedTable t = EncodedTableFromInts({"a", "b"}, {{1, 2, 3}, {5, 5, 9}});
  StrippedPartition empty = StrippedPartition::FromClasses({});
  EXPECT_TRUE(ValidateOfdExact(t, empty, 1));
  EXPECT_TRUE(ValidateOfdApprox(t, empty, 1, 0.0, 3).valid);
}

TEST(OfdValidatorTest, MajorityValueKept) {
  // One class, values of b: {7, 7, 7, 9, 8}: removal = 2.
  EncodedTable t = EncodedTableFromInts(
      {"a", "b"}, {{1, 1, 1, 1, 1}, {7, 7, 7, 9, 8}});
  auto whole = StrippedPartition::WholeRelation(5);
  ValidationOutcome out = ValidateOfdApprox(t, whole, 1, 1.0, 5);
  EXPECT_EQ(out.removal_size, 2);
}

// ----------------------------------------------- Property: minimality --

struct AocPropertyParam {
  uint64_t seed;
  int64_t rows;
  int cols;
  int64_t cardinality;
};

class AocMinimalityTest : public ::testing::TestWithParam<AocPropertyParam> {
};

TEST_P(AocMinimalityTest, OptimalMatchesBruteForceAndIterativeIsUpperBound) {
  const auto& p = GetParam();
  EncodedTable t = testing_util::RandomEncodedTable(p.rows, p.cols,
                                                    p.cardinality, p.seed);
  ValidatorOptions full;
  full.early_exit = false;
  full.collect_removal_set = true;
  for (int a = 0; a < p.cols; ++a) {
    for (int b = 0; b < p.cols; ++b) {
      if (a == b) continue;
      for (int ctx_attr = -1; ctx_attr < p.cols; ++ctx_attr) {
        if (ctx_attr == a || ctx_attr == b) continue;
        AttributeSet ctx = ctx_attr < 0 ? AttributeSet()
                                        : AttributeSet::Of({ctx_attr});
        StrippedPartition partition = NaivePartition(t, ctx);

        ValidationOutcome optimal =
            ValidateAocOptimal(t, partition, a, b, 1.0, p.rows, full);
        ValidationOutcome iterative =
            ValidateAocIterative(t, partition, a, b, 1.0, p.rows, full);

        // 1. Optimal equals the exponential ground truth.
        int64_t truth = testing_util::MinRemovalOcBruteForce(t, ctx, a, b);
        ASSERT_EQ(optimal.removal_size, truth)
            << "ctx=" << ctx.ToString() << " a=" << a << " b=" << b;

        // 2. The optimal removal set really is a removal set: removing it
        // leaves no swaps.
        std::vector<int32_t> rest;
        std::set<int32_t> removed(optimal.removal_rows.begin(),
                                  optimal.removal_rows.end());
        for (int64_t r = 0; r < p.rows; ++r) {
          if (!removed.count(static_cast<int32_t>(r))) {
            rest.push_back(static_cast<int32_t>(r));
          }
        }
        ASSERT_FALSE(testing_util::HasSwapNaive(t, ctx, a, b, rest));

        // 3. The greedy strategy never does better than the minimum.
        ASSERT_GE(iterative.removal_size, optimal.removal_size);

        // 4. The iterative removal set is also a (non-minimal) removal
        // set.
        rest.clear();
        std::set<int32_t> removed_it(iterative.removal_rows.begin(),
                                     iterative.removal_rows.end());
        for (int64_t r = 0; r < p.rows; ++r) {
          if (!removed_it.count(static_cast<int32_t>(r))) {
            rest.push_back(static_cast<int32_t>(r));
          }
        }
        ASSERT_FALSE(testing_util::HasSwapNaive(t, ctx, a, b, rest));

        // 5. Zero removal <=> the exact validator accepts.
        ASSERT_EQ(optimal.removal_size == 0,
                  ValidateOcExact(t, partition, a, b));

        // 6. Symmetry of OCs: e(A ~ B) == e(B ~ A).
        ValidationOutcome swapped =
            ValidateAocOptimal(t, partition, b, a, 1.0, p.rows, full);
        ASSERT_EQ(swapped.removal_size, optimal.removal_size);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallTables, AocMinimalityTest,
    ::testing::Values(AocPropertyParam{101, 8, 3, 3},
                      AocPropertyParam{102, 10, 3, 4},
                      AocPropertyParam{103, 12, 3, 2},
                      AocPropertyParam{104, 12, 2, 6},
                      AocPropertyParam{105, 14, 2, 4},
                      AocPropertyParam{106, 9, 4, 3}));

// Larger-scale property: optimal removal == n - LNDS bound, cross-checked
// between the two validators without brute force.
class AocLargeAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AocLargeAgreementTest, IterativeUpperBoundsOptimal) {
  EncodedTable t =
      testing_util::RandomEncodedTable(400, 3, 12, GetParam());
  ValidatorOptions full;
  full.early_exit = false;
  for (int ctx_attr = -1; ctx_attr < 3; ++ctx_attr) {
    int a = (ctx_attr == 0) ? 1 : 0;
    int b = (ctx_attr == 2) ? 1 : 2;
    if (a == b || ctx_attr == a || ctx_attr == b) continue;
    AttributeSet ctx =
        ctx_attr < 0 ? AttributeSet() : AttributeSet::Of({ctx_attr});
    StrippedPartition partition = NaivePartition(t, ctx);
    ValidationOutcome optimal =
        ValidateAocOptimal(t, partition, a, b, 1.0, 400, full);
    ValidationOutcome iterative =
        ValidateAocIterative(t, partition, a, b, 1.0, 400, full);
    ASSERT_GE(iterative.removal_size, optimal.removal_size);
    ASSERT_EQ(optimal.removal_size == 0,
              ValidateOcExact(t, partition, a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AocLargeAgreementTest,
                         ::testing::Values(201, 202, 203, 204));

// MaxRemovals boundary semantics.
TEST(MaxRemovalsTest, FloorWithGuard) {
  EXPECT_EQ(MaxRemovals(0.0, 100), 0);
  EXPECT_EQ(MaxRemovals(0.1, 100), 10);
  EXPECT_EQ(MaxRemovals(0.1, 105), 10);   // floor(10.5)
  EXPECT_EQ(MaxRemovals(1.0, 100), 100);
  EXPECT_EQ(MaxRemovals(4.0 / 9.0, 9), 4);  // no FP round-down
  EXPECT_EQ(MaxRemovals(0.3, 10), 3);       // 0.3*10 = 2.9999... -> 3
}

}  // namespace
}  // namespace aod
