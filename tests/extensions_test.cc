// Tests for the extension modules built on top of the paper's core:
// bidirectional OCs [10], parallel level processing (after [8]), the
// hybrid sampling validator (the paper's stated future work, after [6]),
// OD-driven repair suggestions (after [7]), and rank decoding.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/encoder.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"
#include "gen/random.h"
#include "od/aoc_iterative_validator.h"
#include "od/aoc_lis_validator.h"
#include "od/discovery.h"
#include "od/hybrid_sampler.h"
#include "od/oc_validator.h"
#include "od/repair.h"
#include "test_util.h"

namespace aod {
namespace {

using testing_util::NaivePartition;

// ------------------------------------------------------- bidirectional --

TEST(BidirectionalTest, OppositePolarityValidatesReversedOrder) {
  // b = -a: perfectly anti-ordered.
  EncodedTable t = EncodedTableFromInts(
      {"a", "b"}, {{1, 2, 3, 4, 5}, {50, 40, 30, 20, 10}});
  auto whole = StrippedPartition::WholeRelation(5);
  EXPECT_FALSE(ValidateOcExact(t, whole, 0, 1));
  EXPECT_TRUE(ValidateOcExact(t, whole, 0, 1, /*opposite=*/true));

  ValidatorOptions opposite;
  opposite.opposite_polarity = true;
  opposite.early_exit = false;
  ValidationOutcome out =
      ValidateAocOptimal(t, whole, 0, 1, 0.0, 5, opposite);
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.removal_size, 0);
  // The straight polarity needs to remove all but one.
  ValidatorOptions straight;
  straight.early_exit = false;
  EXPECT_EQ(ValidateAocOptimal(t, whole, 0, 1, 1.0, 5, straight).removal_size,
            4);
}

TEST(BidirectionalTest, AgeBirthYearIsTheCanonicalUseCase) {
  Table raw = GenerateNcVoterTable(2000, 10, 5);
  EncodedTable t = EncodeTable(raw);
  int age = t.ColumnIndex("age");
  int birth = t.ColumnIndex("birthYear");
  auto whole = StrippedPartition::WholeRelation(t.num_rows());
  EXPECT_FALSE(ValidateOcExact(t, whole, age, birth));
  EXPECT_TRUE(ValidateOcExact(t, whole, age, birth, /*opposite=*/true));
}

TEST(BidirectionalTest, SymmetricInSides) {
  EncodedTable t = testing_util::RandomEncodedTable(200, 2, 10, 99);
  auto whole = StrippedPartition::WholeRelation(t.num_rows());
  ValidatorOptions opp;
  opp.opposite_polarity = true;
  opp.early_exit = false;
  ValidationOutcome ab =
      ValidateAocOptimal(t, whole, 0, 1, 1.0, t.num_rows(), opp);
  ValidationOutcome ba =
      ValidateAocOptimal(t, whole, 1, 0, 1.0, t.num_rows(), opp);
  EXPECT_EQ(ab.removal_size, ba.removal_size);
}

TEST(BidirectionalTest, OppositeEqualsStraightOnNegatedColumn) {
  // Property: validating A ~ desc(B) must equal validating A ~ B' where
  // B' carries the negated values of B.
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    int64_t n = rng.UniformInt(5, 60);
    std::vector<int64_t> a;
    std::vector<int64_t> b;
    std::vector<int64_t> neg_b;
    for (int64_t i = 0; i < n; ++i) {
      a.push_back(rng.UniformInt(0, 8));
      b.push_back(rng.UniformInt(0, 8));
      neg_b.push_back(-b.back());
    }
    EncodedTable t = EncodedTableFromInts({"a", "b"}, {a, b});
    EncodedTable tn = EncodedTableFromInts({"a", "nb"}, {a, neg_b});
    auto whole = StrippedPartition::WholeRelation(n);
    ValidatorOptions opp;
    opp.opposite_polarity = true;
    opp.early_exit = false;
    ValidatorOptions straight;
    straight.early_exit = false;
    ASSERT_EQ(ValidateAocOptimal(t, whole, 0, 1, 1.0, n, opp).removal_size,
              ValidateAocOptimal(tn, whole, 0, 1, 1.0, n, straight)
                  .removal_size);
    ASSERT_EQ(ValidateOcExact(t, whole, 0, 1, true),
              ValidateOcExact(tn, whole, 0, 1));
    ASSERT_EQ(
        ValidateAocIterative(t, whole, 0, 1, 1.0, n, opp).removal_size,
        ValidateAocIterative(tn, whole, 0, 1, 1.0, n, straight)
            .removal_size);
  }
}

TEST(BidirectionalTest, DiscoveryFindsOppositePolarityOcs) {
  Table raw = GenerateNcVoterTable(1000, 10, 5);
  EncodedTable t = EncodeTable(raw);
  int age = t.ColumnIndex("age");
  int birth = t.ColumnIndex("birthYear");
  DiscoveryOptions options;
  options.epsilon = 0.05;
  options.bidirectional = true;
  DiscoveryResult result = DiscoverOds(t, options);
  const auto ocs = result.Ocs();
  bool found = std::any_of(
      ocs.begin(), ocs.end(), [&](const DiscoveredDependency* d) {
        return d->Oc() == CanonicalOc{AttributeSet(), age, birth, true};
      });
  EXPECT_TRUE(found) << result.Summary(t, 60);
  // Unidirectional discovery must not report it.
  options.bidirectional = false;
  DiscoveryResult uni = DiscoverOds(t, options);
  for (const DiscoveredDependency* d : uni.Ocs()) EXPECT_FALSE(d->opposite);
}

TEST(BidirectionalTest, BidirectionalSupersetOfUnidirectional) {
  EncodedTable t = testing_util::RandomEncodedTable(60, 4, 4, 321);
  DiscoveryOptions uni;
  uni.epsilon = 0.15;
  DiscoveryOptions bid = uni;
  bid.bidirectional = true;
  DiscoveryResult ru = DiscoverOds(t, uni);
  DiscoveryResult rb = DiscoverOds(t, bid);
  // Every straight-polarity OC appears unchanged in the bidirectional
  // run (candidate sets for the two polarities evolve independently).
  const auto rb_ocs = rb.Ocs();
  for (const DiscoveredDependency* d : ru.Ocs()) {
    bool found = std::any_of(
        rb_ocs.begin(), rb_ocs.end(),
        [&](const DiscoveredDependency* x) { return x->Oc() == d->Oc(); });
    EXPECT_TRUE(found) << d->Oc().ToString();
  }
  EXPECT_GE(rb.CountOfKind(DependencyKind::kOc),
            ru.CountOfKind(DependencyKind::kOc));
}

TEST(BidirectionalTest, ToStringMarksPolarity) {
  EncodedTable t = testing_util::PaperEncoded();
  CanonicalOc oc{AttributeSet::Of({0}), 2, 6, true};
  EXPECT_EQ(oc.ToString(t), "{pos}: sal ~ desc(bonus)");
  EXPECT_NE((CanonicalOc{AttributeSet(), 1, 2, false}),
            (CanonicalOc{AttributeSet(), 1, 2, true}));
}

// ------------------------------------------------------------ parallel --

class ParallelDiscoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDiscoveryTest, ResultIdenticalToSerial) {
  Table raw = GenerateFlightTable(1500, 9, 17);
  EncodedTable t = EncodeTable(raw);
  DiscoveryOptions serial;
  serial.epsilon = 0.10;
  DiscoveryOptions parallel = serial;
  parallel.num_threads = GetParam();
  DiscoveryResult rs = DiscoverOds(t, serial);
  DiscoveryResult rp = DiscoverOds(t, parallel);
  const auto rs_ocs = rs.Ocs(), rp_ocs = rp.Ocs();
  const auto rs_ofds = rs.Ofds(), rp_ofds = rp.Ofds();
  ASSERT_EQ(rs_ocs.size(), rp_ocs.size());
  ASSERT_EQ(rs_ofds.size(), rp_ofds.size());
  for (size_t i = 0; i < rs_ocs.size(); ++i) {
    EXPECT_TRUE(rs_ocs[i]->Oc() == rp_ocs[i]->Oc());
    EXPECT_EQ(rs_ocs[i]->removal_size, rp_ocs[i]->removal_size);
    EXPECT_EQ(rs_ocs[i]->level, rp_ocs[i]->level);
  }
  for (size_t i = 0; i < rs_ofds.size(); ++i) {
    EXPECT_TRUE(rs_ofds[i]->Ofd() == rp_ofds[i]->Ofd());
  }
  EXPECT_EQ(rs.stats.oc_candidates_validated,
            rp.stats.oc_candidates_validated);
  EXPECT_EQ(rs.stats.nodes_processed, rp.stats.nodes_processed);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelDiscoveryTest,
                         ::testing::Values(2, 4, 8));

TEST(ParallelDiscoveryTest2, ExactAndBidirectionalModes) {
  EncodedTable t = testing_util::RandomEncodedTable(300, 5, 5, 888);
  for (bool bid : {false, true}) {
    DiscoveryOptions serial;
    serial.validator = ValidatorKind::kExact;
    serial.bidirectional = bid;
    DiscoveryOptions parallel = serial;
    parallel.num_threads = 4;
    DiscoveryResult rs = DiscoverOds(t, serial);
    DiscoveryResult rp = DiscoverOds(t, parallel);
    const auto rs_ocs = rs.Ocs(), rp_ocs = rp.Ocs();
    ASSERT_EQ(rs_ocs.size(), rp_ocs.size());
    for (size_t i = 0; i < rs_ocs.size(); ++i) {
      EXPECT_TRUE(rs_ocs[i]->Oc() == rp_ocs[i]->Oc());
    }
  }
}

// ------------------------------------------------------------- sampler --

TEST(HybridSamplerTest, EstimateTracksTrueFactorForGlobalViolations) {
  // depDelay ~ arrDelay: violations are opposite-end outliers, each of
  // which stays violating inside any subsample — the structure where
  // sampling estimates are reliable.
  Table raw = GenerateFlightTable(20000, 10, 42);
  EncodedTable t = EncodeTable(raw);
  int dep = t.ColumnIndex("depDelay");
  int arr = t.ColumnIndex("arrDelay");
  auto whole = StrippedPartition::WholeRelation(t.num_rows());
  SamplerConfig config;
  config.sample_size = 4000;
  AocSampler sampler(&t, config);
  double estimate = sampler.EstimateFactor(whole, dep, arr);
  ValidatorOptions full;
  full.early_exit = false;
  double truth =
      ValidateAocOptimal(t, whole, dep, arr, 1.0, t.num_rows(), full)
          .approx_factor;
  EXPECT_LE(estimate, truth + 0.02);
  EXPECT_GT(estimate, truth - 0.03);
}

TEST(HybridSamplerTest, LocalizedViolationsAreUnderestimated) {
  // arrDelay ~ lateAircraftDelay: the clustered-error violations live
  // inside 9-value blocks, which a thin uniform sample rarely keeps
  // intact — the sample factor *must* underestimate. This is why the
  // hybrid fast path only ever rejects, never accepts.
  Table raw = GenerateFlightTable(20000, 10, 42);
  EncodedTable t = EncodeTable(raw);
  int arr = t.ColumnIndex("arrDelay");
  int late = t.ColumnIndex("lateAircraftDelay");
  auto whole = StrippedPartition::WholeRelation(t.num_rows());
  SamplerConfig config;
  config.sample_size = 4000;
  AocSampler sampler(&t, config);
  double estimate = sampler.EstimateFactor(whole, arr, late);
  ValidatorOptions full;
  full.early_exit = false;
  double truth =
      ValidateAocOptimal(t, whole, arr, late, 1.0, t.num_rows(), full)
          .approx_factor;
  EXPECT_LT(estimate, truth);
}

TEST(HybridSamplerTest, FastRejectsClearLosersOnly) {
  Table raw = GenerateNcVoterTable(20000, 10, 1729);
  EncodedTable t = EncodeTable(raw);
  int age = t.ColumnIndex("age");
  int birth = t.ColumnIndex("birthYear");
  int zip = t.ColumnIndex("zip");
  int county = t.ColumnIndex("county");
  auto whole = StrippedPartition::WholeRelation(t.num_rows());
  AocSampler sampler(&t, {});
  // age ~ birthYear is maximally violated: must fast-reject.
  ValidationOutcome rejected = sampler.Validate(whole, age, birth, 0.10);
  EXPECT_FALSE(rejected.valid);
  EXPECT_EQ(sampler.fast_rejections(), 1);
  // zip ~ county holds exactly: must fall through to full validation and
  // accept with the exact factor.
  ValidationOutcome accepted = sampler.Validate(whole, zip, county, 0.10);
  EXPECT_TRUE(accepted.valid);
  EXPECT_EQ(accepted.removal_size, 0);
  EXPECT_EQ(sampler.full_validations(), 1);
}

TEST(HybridSamplerTest, NeverRejectsExactOcs) {
  // Any exactly-valid OC has sample factor 0 <= threshold: the fast path
  // can never reject it, for any margin.
  EncodedTable t = EncodedTableFromInts(
      {"a", "b"}, {{1, 2, 3, 4, 5, 6}, {2, 4, 6, 8, 10, 12}});
  auto whole = StrippedPartition::WholeRelation(6);
  SamplerConfig config;
  config.sample_size = 3;
  config.reject_margin = 0.0;
  AocSampler sampler(&t, config);
  ValidationOutcome out = sampler.Validate(whole, 0, 1, 0.0);
  EXPECT_TRUE(out.valid);
}

TEST(HybridSamplerTest, TinyTables) {
  EncodedTable t = EncodedTableFromInts({"a", "b"}, {{1}, {2}});
  auto whole = StrippedPartition::WholeRelation(1);
  AocSampler sampler(&t, {});
  EXPECT_EQ(sampler.EstimateFactor(whole, 0, 1), 0.0);
  EXPECT_TRUE(sampler.Validate(whole, 0, 1, 0.0).valid);
}

// -------------------------------------------------------------- repair --

TEST(RepairTest, PaperTableSalTaxSuggestions) {
  EncodedTable t = testing_util::PaperEncoded();
  int sal = t.ColumnIndex("sal");
  int tax = t.ColumnIndex("tax");
  auto whole = StrippedPartition::WholeRelation(t.num_rows());
  RepairPlan plan =
      SuggestOcRepairs(t, whole, CanonicalOc{AttributeSet(), sal, tax});
  // The minimal suspect set is {t1, t2, t4, t6} (Example 3.2).
  ASSERT_EQ(plan.repairs.size(), 4u);
  std::set<int32_t> rows;
  for (const auto& r : plan.repairs) rows.insert(r.row);
  EXPECT_EQ(rows, (std::set<int32_t>{0, 1, 3, 5}));
  // t1 (tax=2, sal lowest): any value <= 0.3 fits; the interval must be
  // left-unbounded with high = 0.3.
  const CellRepair* t1 = nullptr;
  for (const auto& r : plan.repairs) {
    if (r.row == 0) t1 = &r;
  }
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->current, Value(2.0));
  EXPECT_TRUE(t1->low.is_null());
  EXPECT_EQ(t1->high, Value(0.3));
  EXPECT_NE(plan.ToString(t).find("tax"), std::string::npos);
}

TEST(RepairTest, RepairedValuesRestoreTheOc) {
  // Apply the midpoint (or boundary) of each suggested interval and
  // re-validate: the OC must then hold exactly.
  Table raw = GenerateFlightTable(2000, 9, 7);
  EncodedTable t = EncodeTable(raw);
  int dist = t.ColumnIndex("distance");
  int air = t.ColumnIndex("airTime");
  auto whole = StrippedPartition::WholeRelation(t.num_rows());
  RepairPlan plan =
      SuggestOcRepairs(t, whole, CanonicalOc{AttributeSet(), dist, air});
  ASSERT_GT(plan.repairs.size(), 0u);
  for (const auto& r : plan.repairs) {
    Value pick;
    if (!r.low.is_null()) {
      pick = r.low;
    } else if (!r.high.is_null()) {
      pick = r.high;
    } else {
      continue;  // unbounded both ways: any value works
    }
    raw.SetValue(r.row, air, pick);
  }
  EncodedTable fixed = EncodeTable(raw);
  auto whole2 = StrippedPartition::WholeRelation(fixed.num_rows());
  EXPECT_TRUE(ValidateOcExact(fixed, whole2, dist, air));
}

TEST(RepairTest, ContextualRepairStaysWithinClasses) {
  // {pos}: exp ~ sal on Table 1 flags only t8 (the dev with exp = -1).
  EncodedTable t = testing_util::PaperEncoded();
  StrippedPartition pos_partition =
      NaivePartition(t, AttributeSet::Of({0}));
  RepairPlan plan = SuggestOcRepairs(
      t, pos_partition, CanonicalOc{AttributeSet::Of({0}), 1, 2});
  ASSERT_EQ(plan.repairs.size(), 1u);
  EXPECT_EQ(plan.repairs[0].row, 7);
  EXPECT_EQ(plan.repairs[0].attribute, 2);  // suggests fixing sal
}

TEST(RepairTest, OppositePolarityIntervalsAreReversed) {
  EncodedTable t = EncodedTableFromInts(
      {"a", "b"}, {{1, 2, 3, 4}, {40, 30, 20, 100}});
  // a ~ desc(b): 40, 30, 20 descend; row 3 (100) is the unique suspect.
  auto whole = StrippedPartition::WholeRelation(4);
  RepairPlan plan =
      SuggestOcRepairs(t, whole, CanonicalOc{AttributeSet(), 0, 1, true});
  ASSERT_EQ(plan.repairs.size(), 1u);
  EXPECT_EQ(plan.repairs[0].row, 3);
  EXPECT_EQ(plan.repairs[0].current, Value(int64_t{100}));
  // Any value <= 20 restores the descending order: (-inf, 20].
  EXPECT_TRUE(plan.repairs[0].low.is_null());
  EXPECT_EQ(plan.repairs[0].high, Value(int64_t{20}));
}

// ------------------------------------------------------------ decoding --

TEST(EncoderDictionaryTest, DecodeRoundTrip) {
  Column col("c", DataType::kString);
  for (const char* v : {"pear", "apple", "fig", "apple"}) {
    col.AppendString(v);
  }
  EncodedColumn enc = EncodeColumn(col);
  ASSERT_EQ(enc.dictionary.size(), 3u);
  EXPECT_EQ(enc.Decode(0), Value("apple"));
  EXPECT_EQ(enc.Decode(1), Value("fig"));
  EXPECT_EQ(enc.Decode(2), Value("pear"));
  EXPECT_TRUE(enc.Decode(3).is_null());
  EXPECT_TRUE(enc.Decode(-1).is_null());
  // Every cell decodes back to its original value.
  for (int64_t r = 0; r < col.size(); ++r) {
    EXPECT_EQ(enc.Decode(enc.ranks[static_cast<size_t>(r)]),
              col.GetValue(r));
  }
}

TEST(EncoderDictionaryTest, NullsDecodeToNull) {
  Column col("c", DataType::kInt64);
  col.AppendNull();
  col.AppendInt(5);
  EncodedColumn enc = EncodeColumn(col);
  EXPECT_TRUE(enc.Decode(0).is_null());
  EXPECT_EQ(enc.Decode(1), Value(int64_t{5}));
}

}  // namespace
}  // namespace aod

namespace aod {
namespace {

// -------------------------------------------- sampling inside discovery --

TEST(SamplingDiscoveryTest, FilterPreservesDiscoveredDependencies) {
  Table raw = GenerateNcVoterTable(8000, 10, 1729);
  EncodedTable t = EncodeTable(raw);
  DiscoveryOptions plain;
  plain.epsilon = 0.10;
  DiscoveryOptions sampled = plain;
  sampled.enable_sampling_filter = true;
  sampled.sampler_config.sample_size = 1500;
  DiscoveryResult rp = DiscoverOds(t, plain);
  DiscoveryResult rs = DiscoverOds(t, sampled);
  // Accepted dependencies are always exactly validated, so everything
  // the sampled run reports must appear in the full run with identical
  // factors; on this (deterministic) input nothing borderline exists and
  // the outputs coincide.
  const auto rp_ocs = rp.Ocs(), rs_ocs = rs.Ocs();
  ASSERT_EQ(rp_ocs.size(), rs_ocs.size());
  for (size_t i = 0; i < rp_ocs.size(); ++i) {
    EXPECT_TRUE(rp_ocs[i]->Oc() == rs_ocs[i]->Oc());
    EXPECT_EQ(rp_ocs[i]->removal_size, rs_ocs[i]->removal_size);
  }
  ASSERT_EQ(rp.CountOfKind(DependencyKind::kOfd),
            rs.CountOfKind(DependencyKind::kOfd));
}

TEST(SamplingDiscoveryTest, FilterIgnoredForOtherValidators) {
  EncodedTable t = testing_util::RandomEncodedTable(200, 3, 4, 77);
  DiscoveryOptions options;
  options.validator = ValidatorKind::kExact;
  options.enable_sampling_filter = true;  // must be a no-op
  DiscoveryResult exact = DiscoverOds(t, options);
  options.enable_sampling_filter = false;
  DiscoveryResult plain = DiscoverOds(t, options);
  ASSERT_EQ(exact.CountOfKind(DependencyKind::kOc),
            plain.CountOfKind(DependencyKind::kOc));
}

TEST(SamplingDiscoveryTest, ParallelAndSampledTogether) {
  Table raw = GenerateFlightTable(3000, 9, 5);
  EncodedTable t = EncodeTable(raw);
  DiscoveryOptions options;
  options.epsilon = 0.10;
  options.enable_sampling_filter = true;
  options.num_threads = 4;
  DiscoveryOptions serial = options;
  serial.num_threads = 1;
  DiscoveryResult rp = DiscoverOds(t, options);
  DiscoveryResult rs = DiscoverOds(t, serial);
  const auto rp_ocs = rp.Ocs(), rs_ocs = rs.Ocs();
  ASSERT_EQ(rp_ocs.size(), rs_ocs.size());
  for (size_t i = 0; i < rp_ocs.size(); ++i) {
    EXPECT_TRUE(rp_ocs[i]->Oc() == rs_ocs[i]->Oc());
  }
}

}  // namespace
}  // namespace aod
