// Supervised shard execution under injected faults.
//
// The strict-mode contract — any fault is a typed fail-stop abort — is
// pinned by tests/shard_channel_conformance_test.cc. This suite pins
// the supervised contract on top of it: with shard_max_retries >= 1 the
// same faults are absorbed by the retry / respawn / speculation /
// fallback ladder and the run COMPLETES, bit-identical to the unsharded
// run, with the recovery visible in the supervision counters.
//
//   - the fault sweep injects one fault fleet-wide (shared budget) per
//     run, across every fault kind x frame position x {socket, process};
//   - the attempt-1-vs-2 tests fault the first AND second attempt of
//     one shard, forcing the ladder two rungs deep;
//   - the persistent-fault test breaks every attempt so the shards must
//     degrade to in-process execution;
//   - the speculation test stalls (but never breaks) one shard so a
//     backup attempt races it and wins.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "flaky_channel.h"
#include "gen/ncvoter_generator.h"
#include "od/discovery.h"
#include "shard/channel.h"
#include "test_util.h"

namespace aod {
namespace {

using shard::ShardChannel;
using testing_util::FlakyChannel;

std::string RunnerBinaryPath() {
  if (const char* env = std::getenv("AOD_SHARD_RUNNER")) return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  const std::string sibling =
      (std::filesystem::path(buf).parent_path() / "shard_runner_main")
          .string();
  return std::filesystem::exists(sibling) ? sibling : "";
}

void AppendDouble(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a,", v);
  *out += buf;
}

/// Byte-exact serialization of the kind-tagged dependency list (the same
/// fingerprint shard_process_e2e_test diffs).
std::string OutputFingerprint(const DiscoveryResult& result) {
  std::string out;
  for (const DiscoveredDependency& d : result.dependencies) {
    out += std::to_string(static_cast<int>(d.kind)) + "," +
           std::to_string(d.context.bits()) + "," + std::to_string(d.a) +
           "," + std::to_string(d.b) + "," + (d.opposite ? "1," : "0,");
    AppendDouble(&out, d.error);
    out += std::to_string(d.removal_size) + "," + std::to_string(d.level) +
           ",";
    AppendDouble(&out, d.interestingness);
    out += ';';
  }
  return out;
}

int64_t RecoveryTotal(const DiscoveryStats& stats) {
  return stats.shard_retries + stats.shard_respawns +
         stats.shard_speculative_wins + stats.shard_speculative_losses +
         stats.shard_fallback_shards + stats.shard_footers_missing;
}

/// Base options for a supervised 2-shard run over `transport`: tight
/// backoff so retries are cheap, a 1 s I/O bound so DropFrame surfaces
/// fast, and the default retry budget.
DiscoveryOptions SupervisedOptions(ShardTransport transport,
                                   const std::string& runner) {
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.num_shards = 2;
  options.num_threads = 2;
  options.shard_transport = transport;
  options.shard_runner_path = runner;
  options.shard_io_timeout_seconds = 1.0;
  options.shard_retry_backoff_ms = 1.0;
  return options;
}

class ShardSupervisorTest
    : public ::testing::TestWithParam<ShardTransport> {
 protected:
  void SetUp() override {
    if (GetParam() == ShardTransport::kProcess) {
      runner_ = RunnerBinaryPath();
      if (runner_.empty()) {
        GTEST_SKIP() << "shard_runner_main not found next to the test binary";
      }
    }
  }
  std::string runner_;
};

// One injected fault, anywhere in the fleet, for every fault kind and a
// sweep of frame positions (position 0 hits bootstrap shipping — config
// / table / base frames — later positions hit candidate batches, result
// chunks and the shutdown handshake): the run must complete with output
// bit-identical to the unsharded run, and whenever the fault actually
// fired the supervisor must have visibly recovered.
TEST_P(ShardSupervisorTest, EveryFaultAtEveryPositionRecoversBitExactly) {
  Table t = GenerateNcVoterTable(120, 4, 7);
  EncodedTable enc = EncodeTable(t);

  DiscoveryOptions unsharded_options;
  unsharded_options.epsilon = 0.1;
  unsharded_options.num_threads = 2;
  DiscoveryResult unsharded = DiscoverOds(enc, unsharded_options);
  ASSERT_TRUE(unsharded.shard_status.ok());
  const std::string expected = OutputFingerprint(unsharded);

  const FlakyChannel::Fault kFaults[] = {
      FlakyChannel::Fault::kTornWrite, FlakyChannel::Fault::kShortRead,
      FlakyChannel::Fault::kCorruptByte, FlakyChannel::Fault::kDropFrame};
  for (FlakyChannel::Fault fault : kFaults) {
    for (int trigger : {0, 1, 2, 4}) {
      SCOPED_TRACE("fault=" + std::to_string(static_cast<int>(fault)) +
                   " trigger=" + std::to_string(trigger));
      std::atomic<int> budget{1};  // one fault total, wherever it lands
      DiscoveryOptions options = SupervisedOptions(GetParam(), runner_);
      options.shard_channel_decorator =
          [&](std::unique_ptr<ShardChannel> inner)
          -> std::unique_ptr<ShardChannel> {
        FlakyChannel::Plan plan;
        plan.fault = fault;
        plan.trigger_after = trigger;
        plan.shared_budget = &budget;
        return std::make_unique<FlakyChannel>(std::move(inner), plan);
      };
      DiscoveryResult result = DiscoverOds(enc, options);
      ASSERT_TRUE(result.shard_status.ok())
          << result.shard_status.ToString();
      EXPECT_EQ(OutputFingerprint(result), expected);
      if (budget.load() <= 0) {
        // The fault fired — recovery must be observable. (A shutdown-path
        // fault counts as a lost footer rather than a retry.)
        EXPECT_GT(RecoveryTotal(result.stats), 0);
      }
    }
  }
}

// Fault the FIRST and the SECOND attempt of one shard: the supervisor
// must climb two rungs of the retry ladder — attempt 1 torn mid-level,
// respawned attempt 2 re-seeded and torn again, attempt 3 finishes the
// level — and the merged output must not change. Decorated channels are
// created serially in shard order, then one per re-attempt, so creation
// index identifies the attempt deterministically.
TEST_P(ShardSupervisorTest, FaultsOnAttemptOneAndTwoBothRecover) {
  Table t = GenerateNcVoterTable(120, 4, 7);
  EncodedTable enc = EncodeTable(t);

  DiscoveryOptions unsharded_options;
  unsharded_options.epsilon = 0.1;
  unsharded_options.num_threads = 2;
  DiscoveryResult unsharded = DiscoverOds(enc, unsharded_options);
  ASSERT_TRUE(unsharded.shard_status.ok());

  // Sends before the first candidate batch: socket attempts ship only
  // the base-partition envelope; process attempts ship config + table +
  // bases. Tearing the next send faults the level's candidate batch.
  const int clean_sends =
      GetParam() == ShardTransport::kProcess ? 3 : 1;
  std::atomic<int> created{0};
  DiscoveryOptions options = SupervisedOptions(GetParam(), runner_);
  options.shard_channel_decorator =
      [&](std::unique_ptr<ShardChannel> inner)
      -> std::unique_ptr<ShardChannel> {
    const int idx = created.fetch_add(1);
    // idx 0: shard 0 attempt 1 (clean). idx 1: shard 1 attempt 1.
    // idx 2: shard 1 attempt 2 (the respawn). idx 3+: clean.
    if (idx != 1 && idx != 2) return inner;
    FlakyChannel::Plan plan;
    plan.fault = FlakyChannel::Fault::kTornWrite;
    plan.trigger_after = clean_sends;
    return std::make_unique<FlakyChannel>(std::move(inner), plan);
  };
  DiscoveryResult result = DiscoverOds(enc, options);
  ASSERT_TRUE(result.shard_status.ok()) << result.shard_status.ToString();
  EXPECT_EQ(OutputFingerprint(result), OutputFingerprint(unsharded));
  // At least the two injected faults were retried (teardown/respawn
  // races can add a benign extra attempt on the process transport).
  EXPECT_GE(result.stats.shard_retries, 2);
  EXPECT_GE(result.stats.shard_respawns, 2);
  EXPECT_EQ(result.stats.shard_fallback_shards, 0);
}

// Every attempt's first send is torn, so no transport attempt can ever
// succeed: both shards must exhaust the retry budget and degrade to
// in-process execution — which is NOT decorated (the fallback leaves
// the transport's failure domain) — and complete bit-identically.
TEST_P(ShardSupervisorTest, PersistentFaultDegradesEveryShardInProcess) {
  Table t = GenerateNcVoterTable(120, 4, 7);
  EncodedTable enc = EncodeTable(t);

  DiscoveryOptions unsharded_options;
  unsharded_options.epsilon = 0.1;
  unsharded_options.num_threads = 2;
  DiscoveryResult unsharded = DiscoverOds(enc, unsharded_options);
  ASSERT_TRUE(unsharded.shard_status.ok());

  DiscoveryOptions options = SupervisedOptions(GetParam(), runner_);
  options.shard_max_retries = 1;
  options.shard_channel_decorator =
      [](std::unique_ptr<ShardChannel> inner)
      -> std::unique_ptr<ShardChannel> {
    FlakyChannel::Plan plan;
    plan.fault = FlakyChannel::Fault::kTornWrite;
    plan.trigger_after = 0;
    return std::make_unique<FlakyChannel>(std::move(inner), plan);
  };
  DiscoveryResult result = DiscoverOds(enc, options);
  ASSERT_TRUE(result.shard_status.ok()) << result.shard_status.ToString();
  EXPECT_EQ(OutputFingerprint(result), OutputFingerprint(unsharded));
  EXPECT_EQ(result.stats.shard_fallback_shards, 2);
  EXPECT_GT(result.stats.shard_retries, 0);
}

// Strict mode must not recover: the same persistent fault with
// shard_max_retries == 0 is the pre-supervision typed fail-stop.
TEST_P(ShardSupervisorTest, StrictModeStillFailsStop) {
  Table t = GenerateNcVoterTable(120, 4, 7);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options = SupervisedOptions(GetParam(), runner_);
  options.shard_max_retries = 0;
  options.shard_channel_decorator =
      [](std::unique_ptr<ShardChannel> inner)
      -> std::unique_ptr<ShardChannel> {
    FlakyChannel::Plan plan;
    plan.fault = FlakyChannel::Fault::kTornWrite;
    plan.trigger_after = 0;
    return std::make_unique<FlakyChannel>(std::move(inner), plan);
  };
  DiscoveryResult result = DiscoverOds(enc, options);
  ASSERT_FALSE(result.shard_status.ok());
  EXPECT_EQ(result.stats.shard_retries, 0);
  EXPECT_EQ(result.stats.shard_fallback_shards, 0);
}

// A job mining all four kinds at once (OC + OFD + FD + AFD) rides the
// same ladder: a fault on each transport is retried away and the merged
// mixed-kind output — kind tags, g1 errors and ranking included — is
// bit-identical to the unsharded mixed-kind run.
TEST_P(ShardSupervisorTest, MixedKindJobRecoversBitExactly) {
  Table t = GenerateNcVoterTable(120, 4, 7);
  EncodedTable enc = EncodeTable(t);

  DiscoveryOptions unsharded_options;
  unsharded_options.epsilon = 0.1;
  unsharded_options.num_threads = 2;
  unsharded_options.kinds = DependencyKindSet::All();
  unsharded_options.afd_error = 0.05;
  DiscoveryResult unsharded = DiscoverOds(enc, unsharded_options);
  ASSERT_TRUE(unsharded.shard_status.ok());
  ASSERT_GT(unsharded.CountOfKind(DependencyKind::kFd) +
                unsharded.CountOfKind(DependencyKind::kAfd),
            0);

  std::atomic<int> budget{1};
  DiscoveryOptions options = SupervisedOptions(GetParam(), runner_);
  options.kinds = DependencyKindSet::All();
  options.afd_error = 0.05;
  options.shard_channel_decorator =
      [&](std::unique_ptr<ShardChannel> inner)
      -> std::unique_ptr<ShardChannel> {
    FlakyChannel::Plan plan;
    plan.fault = FlakyChannel::Fault::kCorruptByte;
    plan.trigger_after = 2;
    plan.shared_budget = &budget;
    return std::make_unique<FlakyChannel>(std::move(inner), plan);
  };
  DiscoveryResult result = DiscoverOds(enc, options);
  ASSERT_TRUE(result.shard_status.ok()) << result.shard_status.ToString();
  EXPECT_EQ(OutputFingerprint(result), OutputFingerprint(unsharded));
  if (budget.load() <= 0) {
    EXPECT_GT(RecoveryTotal(result.stats), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Transports, ShardSupervisorTest,
    ::testing::Values(ShardTransport::kSocket, ShardTransport::kProcess),
    [](const ::testing::TestParamInfo<ShardTransport>& info) {
      return std::string(ShardTransportToString(info.param));
    });

// A transient fault on the in-process transport: no process or socket
// to rebuild, and no fallback rung (the transport IS in-process) — the
// ladder is pure retry, and it must still converge bit-identically.
TEST(ShardSupervisorInprocTest, TransientFaultRetriesInPlace) {
  Table t = GenerateNcVoterTable(120, 4, 7);
  EncodedTable enc = EncodeTable(t);

  DiscoveryOptions unsharded_options;
  unsharded_options.epsilon = 0.1;
  unsharded_options.num_threads = 2;
  DiscoveryResult unsharded = DiscoverOds(enc, unsharded_options);
  ASSERT_TRUE(unsharded.shard_status.ok());

  std::atomic<int> budget{1};
  DiscoveryOptions options =
      SupervisedOptions(ShardTransport::kInProcess, "");
  options.shard_channel_decorator =
      [&](std::unique_ptr<ShardChannel> inner)
      -> std::unique_ptr<ShardChannel> {
    FlakyChannel::Plan plan;
    plan.fault = FlakyChannel::Fault::kCorruptByte;
    plan.trigger_after = 1;
    plan.shared_budget = &budget;
    return std::make_unique<FlakyChannel>(std::move(inner), plan);
  };
  DiscoveryResult result = DiscoverOds(enc, options);
  ASSERT_TRUE(result.shard_status.ok()) << result.shard_status.ToString();
  EXPECT_EQ(OutputFingerprint(result), OutputFingerprint(unsharded));
  EXPECT_EQ(budget.load(), 0);
  EXPECT_GT(result.stats.shard_retries, 0);
  EXPECT_EQ(result.stats.shard_fallback_shards, 0);
}

// A tight run budget must bound the whole retry ladder, backoff parks
// included: with a persistent fault, a generous backoff base and a
// ~0.4 s budget, the run must return promptly — the supervisor clamps
// every park to the remaining deadline and exits the ladder the moment
// the deadline expires, instead of sleeping out the configured backoff
// schedule (which alone would cost many seconds across shards).
TEST(ShardSupervisorInprocTest, TightBudgetBoundsBackoffParks) {
  Table t = GenerateNcVoterTable(120, 4, 7);
  EncodedTable enc = EncodeTable(t);

  DiscoveryOptions options =
      SupervisedOptions(ShardTransport::kInProcess, "");
  options.shard_retry_backoff_ms = 30000.0;  // absurd on purpose
  options.time_budget_seconds = 0.4;
  options.shard_channel_decorator =
      [](std::unique_ptr<ShardChannel> inner)
      -> std::unique_ptr<ShardChannel> {
    FlakyChannel::Plan plan;
    plan.fault = FlakyChannel::Fault::kTornWrite;
    plan.trigger_after = 0;  // no budget: every attempt faults
    return std::make_unique<FlakyChannel>(std::move(inner), plan);
  };

  const auto start = std::chrono::steady_clock::now();
  DiscoveryResult result = DiscoverOds(enc, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Well under a single un-clamped park (capped at 2 s each, several
  // per shard); generous slack for loaded CI machines.
  EXPECT_LT(elapsed, 6.0);
  // The run ended in a coherent terminal state: either the deadline
  // surfaced as a partial result, or the persistent fault as a typed
  // error — never a hang (the bound above) or a crash.
  EXPECT_TRUE(result.timed_out || !result.shard_status.ok());
}

// Straggler speculation: one shard's receive path stalls for ~2.5 s on
// an otherwise healthy link. Once its sibling finished the level, the
// supervisor launches a backup attempt past speculation_factor x the
// median shard latency; the backup wins, exactly one attempt's reply is
// merged, and the output must not change.
TEST(ShardSupervisorSpeculationTest, StalledShardIsHedgedAndBeaten) {
  Table t = GenerateNcVoterTable(150, 4, 9);
  EncodedTable enc = EncodeTable(t);

  DiscoveryOptions unsharded_options;
  unsharded_options.epsilon = 0.1;
  unsharded_options.num_threads = 2;
  DiscoveryResult unsharded = DiscoverOds(enc, unsharded_options);
  ASSERT_TRUE(unsharded.shard_status.ok());

  std::atomic<int> budget{1};  // exactly one stall, fleet-wide
  DiscoveryOptions options =
      SupervisedOptions(ShardTransport::kSocket, "");
  options.num_threads = 4;
  options.shard_io_timeout_seconds = 30.0;  // the stall is not a timeout
  options.shard_speculation_factor = 2.0;
  options.shard_channel_decorator =
      [&](std::unique_ptr<ShardChannel> inner)
      -> std::unique_ptr<ShardChannel> {
    FlakyChannel::Plan plan;
    plan.fault = FlakyChannel::Fault::kStallReceive;
    plan.trigger_after = 1;
    plan.stall_ms = 2500;
    plan.shared_budget = &budget;
    return std::make_unique<FlakyChannel>(std::move(inner), plan);
  };
  DiscoveryResult result = DiscoverOds(enc, options);
  ASSERT_TRUE(result.shard_status.ok()) << result.shard_status.ToString();
  EXPECT_EQ(OutputFingerprint(result), OutputFingerprint(unsharded));
  if (budget.load() <= 0) {
    EXPECT_GE(result.stats.shard_speculative_wins, 1);
  }
  EXPECT_EQ(result.stats.shard_fallback_shards, 0);
}

}  // namespace
}  // namespace aod
