// Equivalence of the CSR partition product with the classic
// vector-of-vectors TANE STRIPPED_PRODUCT, modulo the canonical normal
// form.
//
// The determinism contract (ARCHITECTURE.md) requires every materialized
// partition to be *canonical* — classes ordered by smallest contained row
// id, rows ascending within a class — so that the partition value is
// independent of the derivation path (the cache's cost-based planner
// depends on this). These tests pin Product against a reference
// implementation of the old per-class bucket algorithm followed by
// normalization, assert the canonical invariants directly, and check
// path independence across operand orders and derivation chains.
#include <gtest/gtest.h>

#include <vector>

#include "data/encoder.h"
#include "partition/attribute_set.h"
#include "partition/stripped_partition.h"
#include "test_util.h"

namespace aod {
namespace {

std::vector<std::vector<int32_t>> ToClasses(const StrippedPartition& p) {
  std::vector<std::vector<int32_t>> out;
  for (StrippedPartition::ClassSpan cls : p.classes()) {
    out.emplace_back(cls.begin(), cls.end());
  }
  return out;
}

/// The pre-CSR product, verbatim — translate tuples of `left` into class
/// ids, slice each class of `right` into per-class buckets, emit a bucket
/// (in first-touch order) when its class completes with >= 2 rows —
/// followed by normalization into the canonical form Product guarantees.
StrippedPartition ReferenceProduct(const StrippedPartition& left,
                                   const StrippedPartition& right,
                                   int64_t num_rows) {
  std::vector<std::vector<int32_t>> left_classes = ToClasses(left);
  std::vector<std::vector<int32_t>> right_classes = ToClasses(right);

  std::vector<int32_t> class_of(static_cast<size_t>(num_rows), -1);
  for (size_t i = 0; i < left_classes.size(); ++i) {
    for (int32_t t : left_classes[i]) {
      class_of[static_cast<size_t>(t)] = static_cast<int32_t>(i);
    }
  }
  std::vector<std::vector<int32_t>> out_classes;
  std::vector<std::vector<int32_t>> buckets(left_classes.size());
  for (const auto& cls : right_classes) {
    for (int32_t t : cls) {
      int32_t c = class_of[static_cast<size_t>(t)];
      if (c >= 0) buckets[static_cast<size_t>(c)].push_back(t);
    }
    for (int32_t t : cls) {
      int32_t c = class_of[static_cast<size_t>(t)];
      if (c < 0) continue;
      auto& bucket = buckets[static_cast<size_t>(c)];
      if (bucket.size() >= 2) out_classes.push_back(std::move(bucket));
      bucket.clear();
    }
  }
  StrippedPartition out = StrippedPartition::FromClasses(std::move(out_classes));
  out.Normalize();
  return out;
}

void ExpectIdentical(const StrippedPartition& got,
                     const StrippedPartition& want) {
  EXPECT_EQ(got.num_classes(), want.num_classes());
  EXPECT_EQ(got.rows_covered(), want.rows_covered());
  EXPECT_EQ(got.error(), want.error());
  // ToString captures class order AND within-class row order.
  EXPECT_EQ(got.ToString(), want.ToString());
  EXPECT_TRUE(got.IsCanonical()) << got.ToString();
}

TEST(PartitionCsrTest, LayoutInvariants) {
  EncodedTable t = testing_util::RandomEncodedTable(300, 2, 7, 11);
  auto p = StrippedPartition::FromColumn(t.column(0));
  ASSERT_GT(p.num_classes(), 0);
  EXPECT_EQ(static_cast<int64_t>(p.class_offsets().size()),
            p.num_classes() + 1);
  EXPECT_EQ(p.class_offsets().front(), 0);
  EXPECT_EQ(static_cast<int64_t>(p.class_offsets().back()),
            p.rows_covered());
  EXPECT_EQ(static_cast<int64_t>(p.row_ids().size()), p.rows_covered());
  int64_t total = 0;
  for (StrippedPartition::ClassSpan cls : p.classes()) {
    EXPECT_GE(cls.size(), 2u);
    total += static_cast<int64_t>(cls.size());
  }
  EXPECT_EQ(total, p.rows_covered());
  // Empty partitions report zero without a materialized offsets array.
  StrippedPartition empty;
  EXPECT_EQ(empty.num_classes(), 0);
  EXPECT_EQ(empty.rows_covered(), 0);
  EXPECT_TRUE(empty.classes().empty());
  EXPECT_EQ(empty.ToString(), "{}");
}

TEST(PartitionCsrTest, BytesAccountsForBothArrays) {
  auto p = StrippedPartition::FromClasses({{0, 1}, {2, 3, 4}});
  int64_t payload = p.bytes() - static_cast<int64_t>(sizeof(StrippedPartition));
  // 5 row ids + 3 offsets, 4 bytes each; exactly sized on construction.
  EXPECT_EQ(payload, (5 + 3) * static_cast<int64_t>(sizeof(int32_t)));
}

class CsrProductPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int64_t, int>> {};

TEST_P(CsrProductPropertyTest, MatchesReferenceBitForBit) {
  auto [seed, rows, cardinality] = GetParam();
  EncodedTable t = testing_util::RandomEncodedTable(rows, 3, cardinality,
                                                    seed);
  PartitionScratch scratch(rows);
  auto p0 = StrippedPartition::FromColumn(t.column(0));
  auto p1 = StrippedPartition::FromColumn(t.column(1));
  auto p2 = StrippedPartition::FromColumn(t.column(2));

  StrippedPartition p01 = p0.Product(p1, rows, &scratch);
  ExpectIdentical(p01, ReferenceProduct(p0, p1, rows));
  StrippedPartition p10 = p1.Product(p0, rows, &scratch);
  ExpectIdentical(p10, ReferenceProduct(p1, p0, rows));

  // Chained product (level-3 context), reusing the same scratch.
  StrippedPartition p012 = p01.Product(p2, rows, &scratch);
  ExpectIdentical(p012, ReferenceProduct(p01, p2, rows));

  // And without scratch (temporary translation table path).
  ExpectIdentical(p0.Product(p1, rows), p01);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CsrProductPropertyTest,
    ::testing::Combine(
        ::testing::Values<uint64_t>(1, 97, 2024),
        ::testing::Values<int64_t>(2, 10, 100, 700),
        // cardinality 1: one whole-relation class. Large cardinalities
        // make almost every class a singleton (the stripped regime).
        ::testing::Values(1, 2, 5, 25, 400)));

TEST(PartitionCsrTest, SingletonHeavyProductIsEmpty) {
  // Distinct keys on both sides: every bucket is a singleton.
  EncodedColumn a;
  a.name = "a";
  a.ranks = {0, 1, 2, 3, 4, 5};
  a.cardinality = 6;
  auto pa = StrippedPartition::FromColumn(a);
  EXPECT_EQ(pa.num_classes(), 0);
  auto whole = StrippedPartition::WholeRelation(6);
  StrippedPartition prod = whole.Product(pa, 6);
  ExpectIdentical(prod, ReferenceProduct(whole, pa, 6));
  EXPECT_EQ(prod.num_classes(), 0);
}

TEST(PartitionCsrTest, FromClassesKeepsGivenOrder) {
  // FromClasses must preserve both class order and row order (tests and
  // the reference product depend on it); Normalize() restores the
  // canonical form explicitly.
  auto p = StrippedPartition::FromClasses({{5, 3, 9}, {7}, {2, 0}});
  EXPECT_EQ(p.ToString(), "{{5,3,9},{2,0}}");
  EXPECT_FALSE(p.IsCanonical());
  p.Normalize();
  EXPECT_EQ(p.ToString(), "{{0,2},{3,5,9}}");
  EXPECT_TRUE(p.IsCanonical());
}

TEST(PartitionCsrTest, FromColumnIsCanonical) {
  // Classes must come in smallest-row order even when rank order says
  // otherwise: rank 2 appears first in the data here.
  EncodedColumn col;
  col.name = "c";
  col.ranks = {2, 0, 2, 1, 0, 1};
  col.cardinality = 3;
  StrippedPartition p = StrippedPartition::FromColumn(col);
  EXPECT_EQ(p.ToString(), "{{0,2},{1,4},{3,5}}");
  EXPECT_TRUE(p.IsCanonical());
}

TEST(PartitionCsrTest, ProductValueIsDerivationPathIndependent) {
  // The planner's freedom rests on this: Π_{XY} has identical CSR bytes
  // no matter the operand order or the chain that produced it.
  EncodedTable t = testing_util::RandomEncodedTable(500, 3, 6, 77);
  PartitionScratch scratch(500);
  auto p0 = StrippedPartition::FromColumn(t.column(0));
  auto p1 = StrippedPartition::FromColumn(t.column(1));
  auto p2 = StrippedPartition::FromColumn(t.column(2));

  StrippedPartition ab = p0.Product(p1, 500, &scratch);
  StrippedPartition ba = p1.Product(p0, 500, &scratch);
  EXPECT_EQ(ab.row_ids(), ba.row_ids());
  EXPECT_EQ(ab.class_offsets(), ba.class_offsets());

  // All chains to Π_{012} land on the same arrays.
  StrippedPartition via_ab = ab.Product(p2, 500, &scratch);
  StrippedPartition via_bc = p1.Product(p2, 500, &scratch)
                                 .Product(p0, 500, &scratch);
  StrippedPartition via_ac = p0.Product(p2, 500, &scratch)
                                 .Product(p1, 500, &scratch);
  EXPECT_EQ(via_ab.row_ids(), via_bc.row_ids());
  EXPECT_EQ(via_ab.class_offsets(), via_bc.class_offsets());
  EXPECT_EQ(via_ab.row_ids(), via_ac.row_ids());
  EXPECT_EQ(via_ab.class_offsets(), via_ac.class_offsets());
  EXPECT_TRUE(via_ab.IsCanonical());
}

TEST(PartitionCsrTest, ScratchSurvivesShapeChanges) {
  // Alternating products with very different class counts through one
  // scratch must not leak state (counts are restored to zero, class_of
  // to -1).
  EncodedTable wide = testing_util::RandomEncodedTable(400, 2, 180, 31);
  EncodedTable narrow = testing_util::RandomEncodedTable(400, 2, 2, 32);
  PartitionScratch scratch(400);
  auto w0 = StrippedPartition::FromColumn(wide.column(0));
  auto w1 = StrippedPartition::FromColumn(wide.column(1));
  auto n0 = StrippedPartition::FromColumn(narrow.column(0));
  auto n1 = StrippedPartition::FromColumn(narrow.column(1));
  for (int round = 0; round < 3; ++round) {
    ExpectIdentical(w0.Product(w1, 400, &scratch),
                    ReferenceProduct(w0, w1, 400));
    ExpectIdentical(n0.Product(n1, 400, &scratch),
                    ReferenceProduct(n0, n1, 400));
    ExpectIdentical(n0.Product(w1, 400, &scratch),
                    ReferenceProduct(n0, w1, 400));
  }
}

}  // namespace
}  // namespace aod
