// Ground truth for the FD/AFD kinds of the multi-dependency platform:
// hand-checked tables in the style of the Desbordante FD-mining guide
// (minimal, non-trivial FDs with a single attribute on the right; AFDs
// thresholded on the g1 pair error), validator-level g1 arithmetic,
// threshold monotonicity, kind independence and top-k ranking.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>

#include "od/discovery.h"
#include "od/fd_validator.h"
#include "test_util.h"

namespace aod {
namespace {

using testing_util::NaivePartition;

/// Definition-based FD check: X -> a holds iff rows agreeing on X agree
/// on a. (Identical to the exact-OFD predicate; restated here so FD
/// tests don't lean on the OFD oracle they are meant to cross-check.)
bool FdHoldsNaive(const EncodedTable& table, AttributeSet context, int a) {
  for (int64_t s = 0; s < table.num_rows(); ++s) {
    for (int64_t t = s + 1; t < table.num_rows(); ++t) {
      bool same_context = true;
      context.ForEach([&](int c) {
        if (table.ranks(c)[static_cast<size_t>(s)] !=
            table.ranks(c)[static_cast<size_t>(t)]) {
          same_context = false;
        }
      });
      if (same_context && table.ranks(a)[static_cast<size_t>(s)] !=
                              table.ranks(a)[static_cast<size_t>(t)]) {
        return false;
      }
    }
  }
  return true;
}

/// g1 straight from the definition: ordered pairs agreeing on the
/// context but not on the target, over |r|^2.
double G1Naive(const EncodedTable& table, AttributeSet context, int a) {
  const int64_t n = table.num_rows();
  if (n == 0) return 0.0;
  int64_t violations = 0;
  for (int64_t s = 0; s < n; ++s) {
    for (int64_t t = 0; t < n; ++t) {
      bool same_context = true;
      context.ForEach([&](int c) {
        if (table.ranks(c)[static_cast<size_t>(s)] !=
            table.ranks(c)[static_cast<size_t>(t)]) {
          same_context = false;
        }
      });
      if (same_context && table.ranks(a)[static_cast<size_t>(s)] !=
                              table.ranks(a)[static_cast<size_t>(t)]) {
        ++violations;
      }
    }
  }
  return static_cast<double>(violations) / static_cast<double>(n * n);
}

bool ContainsFd(const DiscoveryResult& result, AttributeSet ctx, int a) {
  const auto fds = result.Fds();
  return std::any_of(fds.begin(), fds.end(),
                     [&](const DiscoveredDependency* d) {
                       return d->context == ctx && d->a == a;
                     });
}

bool ContainsAfd(const DiscoveryResult& result, AttributeSet ctx, int a) {
  const auto afds = result.Afds();
  return std::any_of(afds.begin(), afds.end(),
                     [&](const DiscoveredDependency* d) {
                       return d->context == ctx && d->a == a;
                     });
}

DiscoveryOptions FdOnly() {
  DiscoveryOptions options;
  options.kinds = DependencyKindSet().With(DependencyKind::kFd);
  return options;
}

DiscoveryOptions AfdOnly(double afd_error) {
  DiscoveryOptions options;
  options.kinds = DependencyKindSet().With(DependencyKind::kAfd);
  options.afd_error = afd_error;
  return options;
}

// ------------------------------------------------------- exact FDs --

TEST(FdDiscoveryTest, BijectiveColumnsYieldAllSingleAttributeFds) {
  // a, b, c pairwise determine each other; the six minimal FDs are the
  // single-attribute ones, and minimality prunes every two-attribute
  // LHS (the guide's "excluding the self-evident ones ... minimizing
  // its size": AB -> C never appears once A -> C holds).
  EncodedTable t = EncodedTableFromInts(
      {"a", "b", "c"},
      {{0, 0, 1, 1, 2, 2}, {1, 1, 2, 2, 3, 3}, {5, 5, 4, 4, 3, 3}});
  DiscoveryResult result = DiscoverOds(t, FdOnly());
  EXPECT_EQ(result.CountOfKind(DependencyKind::kFd), 6);
  for (int x : {0, 1, 2}) {
    for (int y : {0, 1, 2}) {
      if (x == y) continue;
      EXPECT_TRUE(ContainsFd(result, AttributeSet::Of({x}), y))
          << "missing {c" << x << "} -> c" << y;
    }
  }
  // Only the FD kind ran; nothing else is in the result and the stats
  // say so.
  EXPECT_EQ(result.CountOfKind(DependencyKind::kOc), 0);
  EXPECT_EQ(result.CountOfKind(DependencyKind::kOfd), 0);
  EXPECT_EQ(result.CountOfKind(DependencyKind::kAfd), 0);
  EXPECT_EQ(result.stats.oc_candidates_validated, 0);
  EXPECT_EQ(result.stats.ofd_candidates_validated, 0);
  EXPECT_GT(result.stats.fd_candidates_validated, 0);
  for (const DiscoveredDependency* d : result.Fds()) {
    EXPECT_EQ(d->kind, DependencyKind::kFd);
    EXPECT_EQ(d->error, 0.0);  // exact FDs carry error 0 by definition
    EXPECT_EQ(d->b, -1);
    EXPECT_FALSE(d->opposite);
    EXPECT_EQ(d->level, 2);
  }
}

TEST(FdDiscoveryTest, ConstantColumnIsTheLevelOneFd) {
  EncodedTable t = EncodedTableFromInts(
      {"konst", "x"}, {{7, 7, 7, 7}, {1, 2, 3, 1}});
  DiscoveryResult result = DiscoverOds(t, FdOnly());
  // {} -> konst at level 1; minimality suppresses {x} -> konst.
  ASSERT_EQ(result.CountOfKind(DependencyKind::kFd), 1);
  EXPECT_TRUE(ContainsFd(result, AttributeSet(), 0));
  EXPECT_EQ(result.Fds()[0]->level, 1);
}

TEST(FdDiscoveryTest, CompositeLhsWhenNoSingletonDetermines) {
  // The guide's arity example shape: only {a, b} -> c holds (c is the
  // pair index), no single attribute determines anything.
  EncodedTable t = EncodedTableFromInts(
      {"a", "b", "c"},
      {{0, 0, 1, 1}, {0, 1, 0, 1}, {0, 1, 2, 3}});
  DiscoveryResult result = DiscoverOds(t, FdOnly());
  // c is a key: {c} -> a and {c} -> b hold; {a,b} -> c is the one
  // composite-LHS FD.
  EXPECT_TRUE(ContainsFd(result, AttributeSet::Of({0, 1}), 2));
  EXPECT_TRUE(ContainsFd(result, AttributeSet::Of({2}), 0));
  EXPECT_TRUE(ContainsFd(result, AttributeSet::Of({2}), 1));
  EXPECT_EQ(result.CountOfKind(DependencyKind::kFd), 3);

  // The guide's arity constraint: with max LHS size 1, the composite FD
  // disappears and the single-attribute ones survive unchanged.
  DiscoveryOptions bounded = FdOnly();
  bounded.max_lhs_arity = 1;
  DiscoveryResult r1 = DiscoverOds(t, bounded);
  EXPECT_FALSE(ContainsFd(r1, AttributeSet::Of({0, 1}), 2));
  EXPECT_TRUE(ContainsFd(r1, AttributeSet::Of({2}), 0));
  EXPECT_TRUE(ContainsFd(r1, AttributeSet::Of({2}), 1));
}

TEST(FdDiscoveryTest, SoundMinimalAndCompleteOnRandomTables) {
  for (uint64_t seed : {3u, 14u, 159u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    EncodedTable t = testing_util::RandomEncodedTable(40, 4, 3, seed);
    DiscoveryResult result = DiscoverOds(t, FdOnly());
    // Sound and context-minimal against the definition.
    for (const DiscoveredDependency* d : result.Fds()) {
      EXPECT_TRUE(FdHoldsNaive(t, d->context, d->a)) << d->ToString(t);
      d->context.ForEach([&](int c) {
        EXPECT_FALSE(FdHoldsNaive(t, d->context.Without(c), d->a))
            << "non-minimal " << d->ToString(t);
      });
    }
    // Complete: every valid minimal FD over <= 3 LHS attributes is
    // reported (4 columns, so a candidate's LHS has at most 3).
    for (uint64_t bits = 0; bits < 16; ++bits) {
      AttributeSet ctx(bits);
      for (int a = 0; a < 4; ++a) {
        if (ctx.Contains(a)) continue;
        if (!FdHoldsNaive(t, ctx, a)) continue;
        bool minimal = true;
        ctx.ForEach([&](int c) {
          if (FdHoldsNaive(t, ctx.Without(c), a)) minimal = false;
        });
        EXPECT_EQ(ContainsFd(result, ctx, a), minimal)
            << ctx.ToString() << " -> c" << a;
      }
    }
  }
}

TEST(FdDiscoveryTest, ExactFdsMatchExactOfdsAsSets) {
  // An exact OFD X: [] -> A is the FD X -> A, so under the exact
  // validator the two kinds must mine identical (context, target) sets —
  // the cheapest cross-check that the FD plumbing agrees with code that
  // predates it.
  EncodedTable t = testing_util::RandomEncodedTable(60, 4, 4, 2718);
  DiscoveryResult fds = DiscoverOds(t, FdOnly());
  DiscoveryOptions ofd_only;
  ofd_only.kinds = DependencyKindSet().With(DependencyKind::kOfd);
  ofd_only.validator = ValidatorKind::kExact;
  DiscoveryResult ofds = DiscoverOds(t, ofd_only);
  std::set<std::pair<uint64_t, int>> fd_set, ofd_set;
  for (const DiscoveredDependency* d : fds.Fds()) {
    fd_set.emplace(d->context.bits(), d->a);
  }
  for (const DiscoveredDependency* d : ofds.Ofds()) {
    ofd_set.emplace(d->context.bits(), d->a);
  }
  EXPECT_EQ(fd_set, ofd_set);
}

// ------------------------------------------------------------ AFDs --

TEST(AfdValidatorTest, G1MatchesHandComputedCounts) {
  // Two context classes {r0,r1} and {r2,r3}; target agrees on the first
  // and splits on the second: 2 violating ordered pairs of 16 total.
  EncodedTable t = EncodedTableFromInts(
      {"x", "y"}, {{0, 0, 1, 1}, {1, 1, 2, 3}});
  StrippedPartition ctx = NaivePartition(t, AttributeSet::Of({0}));
  ValidatorOptions full;
  full.early_exit = false;
  ValidationOutcome out = ValidateAfdG1(t, ctx, 1, 1.0, 4, full);
  EXPECT_NEAR(out.approx_factor, 2.0 / 16.0, 1e-12);
  EXPECT_NEAR(out.approx_factor, G1Naive(t, AttributeSet::Of({0}), 1),
              1e-12);
  EXPECT_EQ(out.removal_size, 1);  // drop one row of the split class
  EXPECT_TRUE(out.valid);

  // The threshold is inclusive at the exact boundary and strict below.
  EXPECT_TRUE(ValidateAfdG1(t, ctx, 1, 0.125, 4, full).valid);
  EXPECT_FALSE(ValidateAfdG1(t, ctx, 1, 0.1249, 4, full).valid);
  // Early exit stays a lower bound with the invalid verdict.
  ValidatorOptions fast;
  ValidationOutcome early = ValidateAfdG1(t, ctx, 1, 0.01, 4, fast);
  EXPECT_FALSE(early.valid);
  EXPECT_LE(early.approx_factor, 2.0 / 16.0 + 1e-12);
}

TEST(AfdValidatorTest, G1MatchesDefinitionOnRandomContexts) {
  EncodedTable t = testing_util::RandomEncodedTable(30, 3, 3, 99);
  ValidatorOptions full;
  full.early_exit = false;
  for (uint64_t bits = 0; bits < 8; ++bits) {
    AttributeSet ctx(bits);
    StrippedPartition partition = NaivePartition(t, ctx);
    for (int a = 0; a < 3; ++a) {
      if (ctx.Contains(a)) continue;
      ValidationOutcome out =
          ValidateAfdG1(t, partition, a, 1.0, t.num_rows(), full);
      EXPECT_NEAR(out.approx_factor, G1Naive(t, ctx, a), 1e-12)
          << ctx.ToString() << " -> c" << a;
    }
  }
}

TEST(AfdDiscoveryTest, ThresholdSeparatesContextsAsComputed) {
  // {} -> y has g1 = 10/16 (one class, target counts 2+1+1); {x} -> y
  // has g1 = 2/16. At 0.125 exactly the level-2 AFD is reported; at 0.7
  // the level-1 AFD subsumes it.
  EncodedTable t = EncodedTableFromInts(
      {"x", "y"}, {{0, 0, 1, 1}, {1, 1, 2, 3}});
  DiscoveryResult tight = DiscoverOds(t, AfdOnly(0.125));
  EXPECT_TRUE(ContainsAfd(tight, AttributeSet::Of({0}), 1));
  EXPECT_FALSE(ContainsAfd(tight, AttributeSet(), 1));
  const auto afds = tight.Afds();
  ASSERT_FALSE(afds.empty());
  for (const DiscoveredDependency* d : afds) {
    EXPECT_EQ(d->kind, DependencyKind::kAfd);
    EXPECT_LE(d->error, 0.125 + 1e-12);
  }

  DiscoveryResult loose = DiscoverOds(t, AfdOnly(0.7));
  EXPECT_TRUE(ContainsAfd(loose, AttributeSet(), 1));
  EXPECT_FALSE(ContainsAfd(loose, AttributeSet::Of({0}), 1))
      << "minimality: the empty-context AFD must suppress its superset";
}

TEST(AfdDiscoveryTest, ReportedErrorsMatchTheDefinition) {
  EncodedTable t = testing_util::RandomEncodedTable(50, 4, 3, 1234);
  DiscoveryResult result = DiscoverOds(t, AfdOnly(0.10));
  ASSERT_GT(result.CountOfKind(DependencyKind::kAfd), 0);
  for (const DiscoveredDependency* d : result.Afds()) {
    EXPECT_LE(d->error, 0.10 + 1e-12) << d->ToString(t);
    EXPECT_NEAR(d->error, G1Naive(t, d->context, d->a), 1e-12)
        << d->ToString(t);
  }
}

TEST(AfdDiscoveryTest, ThresholdMonotonicity) {
  // Generalized containment: raising the threshold can only generalize
  // the answer. Every AFD reported at e1 < e2 is either reported at e2
  // verbatim or replaced by an LHS-subset AFD (which e2 newly admits,
  // making the e1 dependency non-minimal there).
  for (uint64_t seed : {7u, 42u, 4096u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    EncodedTable t = testing_util::RandomEncodedTable(60, 4, 4, seed);
    DiscoveryResult r1 = DiscoverOds(t, AfdOnly(0.05));
    DiscoveryResult r2 = DiscoverOds(t, AfdOnly(0.20));
    for (const DiscoveredDependency* d : r1.Afds()) {
      bool reported = ContainsAfd(r2, d->context, d->a);
      bool generalized = false;
      for (const DiscoveredDependency* g : r2.Afds()) {
        if (g->a == d->a && d->context.ContainsAll(g->context) &&
            !(g->context == d->context)) {
          generalized = true;
        }
      }
      EXPECT_TRUE(reported || generalized) << d->ToString(t);
    }
  }
}

// ----------------------------------------- kind independence / top-k --

TEST(MultiKindDiscoveryTest, KindsAreIndependent) {
  // Running all four kinds together yields, per kind, exactly what the
  // single-kind run yields — field for field. This is the platform's
  // core composition rule (per-kind lattice groups never interact).
  EncodedTable t = testing_util::RandomEncodedTable(50, 4, 3, 271828);
  DiscoveryOptions all;
  all.kinds = DependencyKindSet::All();
  all.epsilon = 0.10;
  all.afd_error = 0.08;
  DiscoveryResult combined = DiscoverOds(t, all);
  for (int k = 0; k < kNumDependencyKinds; ++k) {
    const DependencyKind kind = static_cast<DependencyKind>(k);
    SCOPED_TRACE(DependencyKindToString(kind));
    DiscoveryOptions solo = all;
    solo.kinds = DependencyKindSet().With(kind);
    DiscoveryResult single = DiscoverOds(t, solo);
    const auto got = combined.OfKind(kind);
    const auto want = single.OfKind(kind);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i]->context, want[i]->context);
      EXPECT_EQ(got[i]->a, want[i]->a);
      EXPECT_EQ(got[i]->b, want[i]->b);
      EXPECT_EQ(got[i]->opposite, want[i]->opposite);
      EXPECT_EQ(got[i]->error, want[i]->error);
      EXPECT_EQ(got[i]->level, want[i]->level);
      EXPECT_EQ(got[i]->interestingness, want[i]->interestingness);
    }
  }
}

TEST(MultiKindDiscoveryTest, DefaultKindsNeverMineFdOrAfd) {
  // Byte-compat guarantee for pre-platform callers: the default option
  // set runs zero FD/AFD work.
  EncodedTable t = testing_util::RandomEncodedTable(40, 4, 3, 5);
  DiscoveryResult result = DiscoverOds(t, {});
  EXPECT_EQ(result.CountOfKind(DependencyKind::kFd), 0);
  EXPECT_EQ(result.CountOfKind(DependencyKind::kAfd), 0);
  EXPECT_EQ(result.stats.fd_candidates_validated, 0);
  EXPECT_EQ(result.stats.afd_candidates_validated, 0);
  EXPECT_TRUE(result.stats.fds_per_level.empty());
  EXPECT_TRUE(result.stats.afds_per_level.empty());
}

TEST(MultiKindDiscoveryTest, TopKIsARankedPrefixOfTheFullRun) {
  EncodedTable t = testing_util::RandomEncodedTable(50, 4, 3, 31337);
  DiscoveryOptions options;
  options.kinds = DependencyKindSet::All();
  options.epsilon = 0.10;
  DiscoveryResult full = DiscoverOds(t, options);
  ASSERT_GT(full.dependencies.size(), 3u);
  full.SortByInterestingness();

  DiscoveryOptions top3 = options;
  top3.top_k = 3;
  DiscoveryResult pruned = DiscoverOds(t, top3);
  ASSERT_EQ(pruned.dependencies.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    const DiscoveredDependency& want = full.dependencies[i];
    const DiscoveredDependency& got = pruned.dependencies[i];
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.context, want.context);
    EXPECT_EQ(got.a, want.a);
    EXPECT_EQ(got.b, want.b);
    EXPECT_EQ(got.interestingness, want.interestingness);
  }
  // Stats still describe the full discovery, not the truncated list.
  EXPECT_EQ(pruned.stats.TotalOcs(), full.stats.TotalOcs());
  EXPECT_EQ(pruned.stats.TotalOfds(), full.stats.TotalOfds());

  // top_k larger than the result set is a no-op.
  DiscoveryOptions huge = options;
  huge.top_k = 1 << 20;
  DiscoveryResult same = DiscoverOds(t, huge);
  EXPECT_EQ(same.dependencies.size(), full.dependencies.size());
}

TEST(MultiKindDiscoveryDeathTest, RejectsOutOfRangeOptions) {
  EncodedTable t = testing_util::RandomEncodedTable(5, 2, 2, 1);
  DiscoveryOptions bad_kinds;
  bad_kinds.kinds = DependencyKindSet();
  EXPECT_DEATH(DiscoverOds(t, bad_kinds), "kinds");
  DiscoveryOptions bad_afd;
  bad_afd.afd_error = 1.5;
  EXPECT_DEATH(DiscoverOds(t, bad_afd), "afd_error");
  DiscoveryOptions bad_top_k;
  bad_top_k.top_k = -1;
  EXPECT_DEATH(DiscoverOds(t, bad_top_k), "top_k");
}

TEST(DependencyKindSetTest, ParseAndToStringRoundTrip) {
  Result<DependencyKindSet> parsed = DependencyKindSet::Parse("oc,fd,afd");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Contains(DependencyKind::kOc));
  EXPECT_FALSE(parsed->Contains(DependencyKind::kOfd));
  EXPECT_TRUE(parsed->Contains(DependencyKind::kFd));
  EXPECT_TRUE(parsed->Contains(DependencyKind::kAfd));
  EXPECT_EQ(parsed->ToString(), "oc,fd,afd");
  EXPECT_FALSE(DependencyKindSet::Parse("").ok());
  EXPECT_FALSE(DependencyKindSet::Parse("oc,,fd").ok());
  EXPECT_FALSE(DependencyKindSet::Parse("oc,odd").ok());
  EXPECT_EQ(DependencyKindSet::OdDefault().ToString(), "oc,ofd");
  EXPECT_TRUE(DependencyKindSet::All().IsValid());
  EXPECT_FALSE(DependencyKindSet(0x10).IsValid());
}

}  // namespace
}  // namespace aod
