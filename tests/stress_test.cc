// Randomized stress tests: high-volume cross-validation of every
// validator against every other on generated tables. Complements the
// small brute-force property tests with breadth — hundreds of random
// candidates per run, all invariants checked on each.
#include <gtest/gtest.h>

#include <set>

#include "data/encoder.h"
#include "gen/dataset_generator.h"
#include "gen/random.h"
#include "od/aoc_iterative_validator.h"
#include "od/aoc_lis_validator.h"
#include "od/discovery.h"
#include "od/oc_validator.h"
#include "od/ofd_validator.h"
#include "partition/partition_cache.h"
#include "test_util.h"

namespace aod {
namespace {

struct StressParam {
  uint64_t seed;
  int64_t rows;
  int cols;
  int64_t cardinality;
};

class ValidatorStressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(ValidatorStressTest, AllValidatorsMutuallyConsistent) {
  const auto& p = GetParam();
  EncodedTable t = testing_util::RandomEncodedTable(p.rows, p.cols,
                                                    p.cardinality, p.seed);
  PartitionCache cache(&t);
  ValidatorOptions full;
  full.early_exit = false;
  full.collect_removal_set = true;

  for (int ctx_attr = -1; ctx_attr < p.cols; ++ctx_attr) {
    AttributeSet ctx =
        ctx_attr < 0 ? AttributeSet() : AttributeSet::Of({ctx_attr});
    auto partition = cache.Get(ctx);
    for (int a = 0; a < p.cols; ++a) {
      for (int b = a + 1; b < p.cols; ++b) {
        if (a == ctx_attr || b == ctx_attr) continue;
        ValidationOutcome optimal = ValidateAocOptimal(
            t, *partition, a, b, 1.0, p.rows, full);
        ValidationOutcome iterative = ValidateAocIterative(
            t, *partition, a, b, 1.0, p.rows, full);
        bool exact = ValidateOcExact(t, *partition, a, b);
        int64_t swaps = CountOcSwaps(t, *partition, a, b);

        // Exactness is equivalent across all formulations.
        ASSERT_EQ(exact, optimal.removal_size == 0);
        ASSERT_EQ(exact, iterative.removal_size == 0);
        ASSERT_EQ(exact, swaps == 0);

        // Greedy never beats the minimum; both produce genuine removal
        // sets (sizes match the recorded rows).
        ASSERT_GE(iterative.removal_size, optimal.removal_size);
        ASSERT_EQ(static_cast<int64_t>(optimal.removal_rows.size()),
                  optimal.removal_size);
        ASSERT_EQ(static_cast<int64_t>(iterative.removal_rows.size()),
                  iterative.removal_size);

        // Removal sets contain no duplicates and only rows from
        // non-singleton context classes.
        std::set<int32_t> unique(optimal.removal_rows.begin(),
                                 optimal.removal_rows.end());
        ASSERT_EQ(static_cast<int64_t>(unique.size()),
                  optimal.removal_size);

        // A removal set can never exceed rows_covered - #classes (each
        // class keeps at least one tuple).
        ASSERT_LE(optimal.removal_size,
                  partition->rows_covered() - partition->num_classes());

        // OD variant costs at least the OC variant (it also kills
        // splits).
        ValidationOutcome od = ValidateAodOptimal(t, *partition, a, b, 1.0,
                                                  p.rows, full);
        ASSERT_GE(od.removal_size, optimal.removal_size);

        // OFD on top: removing the OD removal set must leave b
        // constant-per-(ctx+a)-class and swap-free; spot-check via the
        // exact validators on the reduced table for small inputs.
        if (p.rows <= 60) {
          std::set<int32_t> removed(od.removal_rows.begin(),
                                    od.removal_rows.end());
          std::vector<std::vector<int64_t>> cols_kept(
              static_cast<size_t>(p.cols));
          for (int64_t r = 0; r < p.rows; ++r) {
            if (removed.count(static_cast<int32_t>(r))) continue;
            for (int c = 0; c < p.cols; ++c) {
              cols_kept[static_cast<size_t>(c)].push_back(
                  t.ranks(c)[static_cast<size_t>(r)]);
            }
          }
          std::vector<std::string> names;
          for (int c = 0; c < p.cols; ++c) {
            names.push_back("c" + std::to_string(c));
          }
          EncodedTable reduced = EncodedTableFromInts(names, cols_kept);
          StrippedPartition rctx = testing_util::NaivePartition(
              reduced, ctx_attr < 0 ? AttributeSet()
                                    : AttributeSet::Of({ctx_attr}));
          ASSERT_TRUE(ValidateOcExact(reduced, rctx, a, b));
          StrippedPartition rctx_a = testing_util::NaivePartition(
              reduced, ctx_attr < 0
                           ? AttributeSet::Of({a})
                           : AttributeSet::Of({ctx_attr, a}));
          ASSERT_TRUE(ValidateOfdExact(reduced, rctx_a, b));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ValidatorStressTest,
    ::testing::Values(StressParam{901, 40, 4, 3},
                      StressParam{902, 60, 4, 6},
                      StressParam{903, 500, 3, 10},
                      StressParam{904, 500, 3, 100},
                      StressParam{905, 2000, 3, 4},
                      StressParam{906, 2000, 3, 1000}));

class DiscoveryStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiscoveryStressTest, GeneratedTablesNeverCrashOrHang) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<ColumnSpec> specs;
    int cols = static_cast<int>(rng.UniformInt(2, 7));
    for (int c = 0; c < cols; ++c) {
      ColumnSpec spec;
      spec.name = "c" + std::to_string(c);
      switch (rng.UniformInt(0, 4)) {
        case 0:
          spec.kind = ColumnKind::kSequentialKey;
          break;
        case 1:
          spec.kind = ColumnKind::kUniformInt;
          spec.cardinality = rng.UniformInt(1, 50);
          break;
        case 2:
          spec.kind = ColumnKind::kZipfInt;
          spec.cardinality = rng.UniformInt(2, 30);
          spec.zipf_s = 1.0;
          break;
        case 3:
          if (c > 0) {
            spec.kind = ColumnKind::kMonotoneWithErrors;
            spec.base_column = static_cast<int>(rng.UniformInt(0, c - 1));
            spec.violation_rate = rng.UniformDouble() * 0.3;
            // Derived kinds need an integer base; all kinds here are.
          } else {
            spec.kind = ColumnKind::kUniformInt;
            spec.cardinality = 10;
          }
          break;
        default:
          spec.kind = ColumnKind::kUniformInt;
          spec.cardinality = 2;
          break;
      }
      specs.push_back(std::move(spec));
    }
    Table raw = GenerateTable(specs, rng.UniformInt(2, 400),
                              rng.NextUint64());
    EncodedTable t = EncodeTable(raw);
    DiscoveryOptions options;
    options.epsilon = rng.UniformDouble() * 0.3;
    options.bidirectional = rng.Bernoulli(0.5);
    options.num_threads = static_cast<int>(rng.UniformInt(1, 4));
    DiscoveryResult result = DiscoverOds(t, options);
    // Sanity: no dependency may reference an attribute twice.
    for (const DiscoveredDependency* d : result.Ocs()) {
      ASSERT_NE(d->a, d->b);
      ASSERT_FALSE(d->context.Contains(d->a));
      ASSERT_FALSE(d->context.Contains(d->b));
      ASSERT_LE(d->error, options.epsilon + 1e-9);
    }
    for (const DiscoveredDependency* d : result.Ofds()) {
      ASSERT_FALSE(d->context.Contains(d->a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscoveryStressTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(PartitionCacheStressTest, ColdLookupBuildsFromSingletons) {
  // Request a size-3 partition with no size-2 partitions cached: the
  // cache must fall back to building up from a singleton.
  EncodedTable t = testing_util::RandomEncodedTable(200, 5, 3, 13);
  PartitionCache cache(&t);
  auto direct = cache.Get(AttributeSet::Of({1, 3, 4}));
  auto naive = testing_util::NaivePartition(t, AttributeSet::Of({1, 3, 4}));
  EXPECT_EQ(direct->num_classes(), naive.num_classes());
  EXPECT_EQ(direct->rows_covered(), naive.rows_covered());
  EXPECT_GT(cache.products_computed(), 0);
}

}  // namespace
}  // namespace aod
