// One observable contract, three transports.
//
// Every ShardChannel implementation — the in-process queue, the
// localhost TCP / pipe stream, and the spool-directory file exchange —
// must be interchangeable under the coordinator, so one parameterized
// suite holds them all to the same contract: exact in-order delivery,
// frame reassembly across partial reads, drain-then-kClosed shutdown
// (including waking a *blocked* receiver), typed oversized-frame
// rejection, and typed receive timeouts. Byte-level fault tests (EOF
// mid-frame, stream desync, torn spool files) follow per transport, and
// the FlakyChannel fault-injection tests at the bottom pin the
// coordinator's failure contract: every injected fault yields a typed
// error from DiscoverOds — no hang, no crash, no partially merged
// level.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "flaky_channel.h"
#include "gen/ncvoter_generator.h"
#include "od/discovery.h"
#include "shard/channel.h"
#include "shard/wire.h"
#include "test_util.h"

namespace aod {
namespace {

using shard::ChannelOptions;
using shard::FileShardChannel;
using shard::InProcessChannel;
using shard::ShardChannel;
using shard::SocketListener;
using shard::SocketShardChannel;
using testing_util::FlakyChannel;

namespace fs = std::filesystem;

/// A connected sender/receiver pair of one transport, plus everything
/// that keeps it alive.
struct Endpoints {
  ShardChannel* sender = nullptr;
  ShardChannel* receiver = nullptr;
  std::vector<std::unique_ptr<ShardChannel>> owned;
  std::unique_ptr<SocketListener> listener;
  std::string spool_dir;

  ~Endpoints() {
    owned.clear();
    if (!spool_dir.empty()) {
      std::error_code ec;
      fs::remove_all(spool_dir, ec);
    }
  }
};

std::string FreshSpoolDir() {
  static std::atomic<int> counter{0};
  std::string dir = ::testing::TempDir() + "aod_spool_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1));
  fs::create_directories(dir);
  return dir;
}

using EndpointFactory =
    std::function<std::unique_ptr<Endpoints>(ChannelOptions)>;

std::unique_ptr<Endpoints> MakeInProcess(ChannelOptions options) {
  auto endpoints = std::make_unique<Endpoints>();
  auto channel = std::make_unique<InProcessChannel>(options);
  endpoints->sender = channel.get();
  endpoints->receiver = channel.get();
  endpoints->owned.push_back(std::move(channel));
  return endpoints;
}

std::unique_ptr<Endpoints> MakeTcp(ChannelOptions options) {
  auto endpoints = std::make_unique<Endpoints>();
  Result<std::unique_ptr<SocketListener>> listener = SocketListener::Bind();
  AOD_CHECK(listener.ok());
  endpoints->listener = std::move(listener).value();
  Result<std::unique_ptr<SocketShardChannel>> client =
      SocketShardChannel::Connect("127.0.0.1", endpoints->listener->port(),
                                  5.0, options);
  AOD_CHECK(client.ok());
  Result<int> accepted = endpoints->listener->AcceptFd(5.0);
  AOD_CHECK(accepted.ok());
  auto server = SocketShardChannel::Adopt(*accepted, options);
  endpoints->sender = client->get();
  endpoints->receiver = server.get();
  endpoints->owned.push_back(std::move(client).value());
  endpoints->owned.push_back(std::move(server));
  return endpoints;
}

std::unique_ptr<Endpoints> MakePipe(ChannelOptions options) {
  // The stdio path of shard_runner_main: a unidirectional fd pair.
  auto endpoints = std::make_unique<Endpoints>();
  int fds[2];
  AOD_CHECK(::pipe(fds) == 0);
  int devnull[2];
  AOD_CHECK(::pipe(devnull) == 0);
  auto write_end = SocketShardChannel::AdoptPair(devnull[0], fds[1], options);
  auto read_end = SocketShardChannel::AdoptPair(fds[0], devnull[1], options);
  endpoints->sender = write_end.get();
  endpoints->receiver = read_end.get();
  endpoints->owned.push_back(std::move(write_end));
  endpoints->owned.push_back(std::move(read_end));
  return endpoints;
}

std::unique_ptr<Endpoints> MakeFile(ChannelOptions options) {
  auto endpoints = std::make_unique<Endpoints>();
  endpoints->spool_dir = FreshSpoolDir();
  auto sender = std::make_unique<FileShardChannel>(
      endpoints->spool_dir, FileShardChannel::Role::kSender, options);
  auto receiver = std::make_unique<FileShardChannel>(
      endpoints->spool_dir, FileShardChannel::Role::kReceiver, options);
  endpoints->sender = sender.get();
  endpoints->receiver = receiver.get();
  endpoints->owned.push_back(std::move(sender));
  endpoints->owned.push_back(std::move(receiver));
  return endpoints;
}

struct TransportParam {
  const char* name;
  EndpointFactory factory;
};

class ShardChannelConformanceTest
    : public ::testing::TestWithParam<TransportParam> {};

/// A realistic sealed frame with `payload_bytes` of deterministic
/// payload — what actually crosses the seam in production.
std::vector<uint8_t> TestFrame(size_t payload_bytes, uint8_t salt = 0) {
  shard::WireWriter writer;
  for (size_t i = 0; i < payload_bytes; ++i) {
    writer.PutU8(static_cast<uint8_t>((i * 131 + salt) & 0xff));
  }
  return writer.SealFrame(shard::FrameType::kCandidateBatch);
}

TEST_P(ShardChannelConformanceTest, DeliversFramesInOrderWithExactBytes) {
  ChannelOptions options;
  options.receive_timeout_seconds = 10.0;
  auto endpoints = GetParam().factory(options);
  // Sizes straddle typical pipe/socket buffer boundaries so stream
  // transports must reassemble across partial reads; empty payloads pin
  // the header-only frame boundary.
  const size_t sizes[] = {0, 1, 24, 1000, 65536, 200000, 0, 3};
  std::vector<std::vector<uint8_t>> sent;
  for (size_t i = 0; i < std::size(sizes); ++i) {
    sent.push_back(TestFrame(sizes[i], static_cast<uint8_t>(i)));
    ASSERT_TRUE(endpoints->sender->Send(sent.back()).ok()) << i;
  }
  for (size_t i = 0; i < sent.size(); ++i) {
    Result<std::vector<uint8_t>> got = endpoints->receiver->Receive();
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(*got, sent[i]) << "frame " << i << " not byte-identical";
    EXPECT_TRUE(shard::DecodeFrame(*got).ok());
  }
  EXPECT_GT(endpoints->sender->bytes_sent(), 0);
  EXPECT_EQ(endpoints->receiver->bytes_received(),
            endpoints->sender->bytes_sent());
}

TEST_P(ShardChannelConformanceTest, CloseDrainsQueuedFramesThenReportsClosed) {
  ChannelOptions options;
  options.receive_timeout_seconds = 10.0;
  auto endpoints = GetParam().factory(options);
  ASSERT_TRUE(endpoints->sender->Send(TestFrame(100)).ok());
  ASSERT_TRUE(endpoints->sender->Send(TestFrame(200)).ok());
  endpoints->sender->Close();
  EXPECT_TRUE(endpoints->receiver->Receive().ok());
  EXPECT_TRUE(endpoints->receiver->Receive().ok());
  Result<std::vector<uint8_t>> after = endpoints->receiver->Receive();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kClosed);
  // Send after close is refused with the same typed signal.
  Status send_after = endpoints->sender->Send(TestFrame(1));
  ASSERT_FALSE(send_after.ok());
  EXPECT_EQ(send_after.code(), StatusCode::kClosed);
}

TEST_P(ShardChannelConformanceTest, CloseWakesBlockedReceiver) {
  // The shutdown-while-blocked-receive story: a receiver parked inside
  // Receive() must wake with kClosed when the sender closes — never
  // strand. (For the in-process queue this used to be undocumented and
  // untested; it is now part of the channel contract, see channel.h.)
  ChannelOptions options;
  options.receive_timeout_seconds = 30.0;
  auto endpoints = GetParam().factory(options);
  Status observed = Status::OK();
  std::thread receiver([&] {
    Result<std::vector<uint8_t>> got = endpoints->receiver->Receive();
    observed = got.status();
  });
  // Give the receiver time to actually park in Receive().
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  endpoints->sender->Close();
  receiver.join();
  EXPECT_EQ(observed.code(), StatusCode::kClosed) << observed.ToString();
}

TEST_P(ShardChannelConformanceTest, LocalCloseWakesBlockedReceiver) {
  // The other half of never-strand: closing the *receiver's own*
  // endpoint (local teardown, not peer shutdown) must also wake a
  // blocked Receive with kClosed — stream endpoints use a self-pipe
  // for this, queues their cv, the spool its closed flag.
  ChannelOptions options;
  options.receive_timeout_seconds = 30.0;
  auto endpoints = GetParam().factory(options);
  Status observed = Status::OK();
  std::thread receiver([&] {
    Result<std::vector<uint8_t>> got = endpoints->receiver->Receive();
    observed = got.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  endpoints->receiver->Close();
  receiver.join();
  EXPECT_EQ(observed.code(), StatusCode::kClosed) << observed.ToString();
}

TEST_P(ShardChannelConformanceTest, OversizedFrameRejectedWithTypedError) {
  ChannelOptions options;
  options.max_frame_bytes = 4096;
  options.receive_timeout_seconds = 10.0;
  auto endpoints = GetParam().factory(options);
  // The in-process queue refuses at Send (the frame exists as a vector
  // there); byte transports accept the send and refuse at Receive from
  // the length header, before allocating the payload.
  Status sent = endpoints->sender->Send(TestFrame(8192));
  if (sent.ok()) {
    Result<std::vector<uint8_t>> got = endpoints->receiver->Receive();
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kParseError)
        << got.status().ToString();
  } else {
    EXPECT_EQ(sent.code(), StatusCode::kInvalidArgument) << sent.ToString();
  }
}

TEST_P(ShardChannelConformanceTest, ReceiveTimeoutIsTypedNotAHang) {
  ChannelOptions options;
  options.receive_timeout_seconds = 0.05;
  auto endpoints = GetParam().factory(options);
  Result<std::vector<uint8_t>> got = endpoints->receiver->Receive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIoError)
      << got.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Transports, ShardChannelConformanceTest,
    ::testing::Values(TransportParam{"inproc", MakeInProcess},
                      TransportParam{"tcp", MakeTcp},
                      TransportParam{"pipe", MakePipe},
                      TransportParam{"file", MakeFile}),
    [](const ::testing::TestParamInfo<TransportParam>& info) {
      return info.param.name;
    });

// ------------------------------------------- byte-level stream faults --

TEST(SocketChannelFaultTest, EofMidFrameIsTypedNotAHang) {
  Result<std::unique_ptr<SocketListener>> listener = SocketListener::Bind();
  ASSERT_TRUE(listener.ok());
  ChannelOptions options;
  options.receive_timeout_seconds = 5.0;
  Result<std::unique_ptr<SocketShardChannel>> client =
      SocketShardChannel::Connect("127.0.0.1", (*listener)->port(), 5.0,
                                  options);
  ASSERT_TRUE(client.ok());
  Result<int> accepted = (*listener)->AcceptFd(5.0);
  ASSERT_TRUE(accepted.ok());
  auto receiver = SocketShardChannel::Adopt(*accepted, options);

  // A valid header promising 1000 payload bytes, but the stream dies
  // after 100: the receiver must report EOF mid-frame, not hang and not
  // deliver a short frame.
  std::vector<uint8_t> frame = TestFrame(1000);
  {
    // Raw byte access: a second plain socket to the same receiver is not
    // possible (connection-oriented), so send the prefix through the
    // channel-owning fd by truncating at the sender: close the sender
    // channel after a raw partial write is not exposed — instead build
    // the prefix as a complete write followed by sender destruction.
    std::vector<uint8_t> prefix(frame.begin(), frame.begin() + 124);
    ASSERT_TRUE((*client)->Send(std::move(prefix)).ok());
  }
  client->reset();  // writer flushes the prefix, then FIN
  Result<std::vector<uint8_t>> got = receiver->Receive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIoError)
      << got.status().ToString();
  EXPECT_NE(got.status().message().find("mid-frame"), std::string::npos);
}

TEST(SocketChannelFaultTest, DesynchronizedStreamIsRejected) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ChannelOptions options;
  options.receive_timeout_seconds = 5.0;
  int devnull[2];
  ASSERT_EQ(::pipe(devnull), 0);
  auto receiver = SocketShardChannel::AdoptPair(fds[0], devnull[1], options);
  // 24 bytes of garbage where a header should be: the channel must
  // refuse to trust the length field of a stream that lost framing.
  std::vector<uint8_t> garbage(shard::kFrameHeaderBytes, 0xab);
  ASSERT_EQ(::write(fds[1], garbage.data(), garbage.size()),
            static_cast<ssize_t>(garbage.size()));
  Result<std::vector<uint8_t>> got = receiver->Receive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kParseError);
  ::close(fds[1]);
  ::close(devnull[0]);
}

TEST(SocketChannelFaultTest, HostileLengthHeaderRejectedWithoutAllocation) {
  // Valid magic and version but a near-UINT64_MAX declared payload: the
  // receiver must reject from the header — wrapping the size arithmetic
  // or trusting it with an allocation would be an OOM bomb.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int devnull[2];
  ASSERT_EQ(::pipe(devnull), 0);
  ChannelOptions options;
  options.receive_timeout_seconds = 5.0;
  auto receiver = SocketShardChannel::AdoptPair(fds[0], devnull[1], options);
  std::vector<uint8_t> header = TestFrame(0);  // pristine 24-byte header
  header.resize(shard::kFrameHeaderBytes);
  for (int i = 8; i < 16; ++i) header[static_cast<size_t>(i)] = 0xff;
  ASSERT_EQ(::write(fds[1], header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  Result<std::vector<uint8_t>> got = receiver->Receive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kParseError);
  ::close(fds[1]);
  ::close(devnull[0]);
}

TEST(SocketChannelFaultTest, PartialWritesAreReassembled) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ChannelOptions options;
  options.receive_timeout_seconds = 10.0;
  int devnull[2];
  ASSERT_EQ(::pipe(devnull), 0);
  auto receiver = SocketShardChannel::AdoptPair(fds[0], devnull[1], options);
  const std::vector<uint8_t> frame = TestFrame(5000);
  std::thread dripper([&] {
    // 7-byte trickle across frame boundaries: the receiver sees many
    // partial reads and must still reassemble the exact frame.
    for (size_t at = 0; at < frame.size(); at += 7) {
      const size_t n = std::min<size_t>(7, frame.size() - at);
      ASSERT_EQ(::write(fds[1], frame.data() + at, n),
                static_cast<ssize_t>(n));
      if (at % 700 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  Result<std::vector<uint8_t>> got = receiver->Receive();
  dripper.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, frame);
  ::close(fds[1]);
  ::close(devnull[0]);
}

TEST(FileChannelFaultTest, TornSpoolFrameIsRejected) {
  const std::string dir = FreshSpoolDir();
  ChannelOptions options;
  options.receive_timeout_seconds = 5.0;
  FileShardChannel receiver(dir, FileShardChannel::Role::kReceiver, options);
  // A frame file whose length disagrees with its declared payload size —
  // unreachable through the channel API (atomic rename), so it means
  // spool tampering.
  std::vector<uint8_t> frame = TestFrame(100);
  frame.resize(frame.size() - 40);
  {
    std::ofstream out(dir + "/frame-000000000", std::ios::binary);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  }
  Result<std::vector<uint8_t>> got = receiver.Receive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kParseError);
  // The error path keeps the spool for post-mortem inspection — only a
  // clean drain removes it.
  EXPECT_TRUE(fs::exists(dir));
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(FileChannelFaultTest, CleanCloseRemovesSpoolDirectory) {
  const std::string dir = FreshSpoolDir();
  ChannelOptions options;
  options.receive_timeout_seconds = 5.0;
  {
    FileShardChannel sender(dir, FileShardChannel::Role::kSender, options);
    ASSERT_TRUE(sender.Send(TestFrame(50)).ok());
    ASSERT_TRUE(sender.Send(TestFrame(60)).ok());
    sender.Close();
  }
  FileShardChannel receiver(dir, FileShardChannel::Role::kReceiver, options);
  ASSERT_TRUE(receiver.Receive().ok());
  ASSERT_TRUE(receiver.Receive().ok());
  // Draining past the closed count returns kClosed *and* removes the
  // spool directory — a finished exchange leaves nothing on disk.
  Result<std::vector<uint8_t>> after = receiver.Receive();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kClosed);
  EXPECT_FALSE(fs::exists(dir));
}

TEST(FileChannelFaultTest, MissingFrameBelowClosedCountIsRejected) {
  const std::string dir = FreshSpoolDir();
  ChannelOptions options;
  options.receive_timeout_seconds = 5.0;
  {
    FileShardChannel sender(dir, FileShardChannel::Role::kSender, options);
    ASSERT_TRUE(sender.Send(TestFrame(50)).ok());
    ASSERT_TRUE(sender.Send(TestFrame(60)).ok());
    sender.Close();
  }
  ASSERT_TRUE(fs::remove(dir + "/frame-000000000"));
  FileShardChannel receiver(dir, FileShardChannel::Role::kReceiver, options);
  Result<std::vector<uint8_t>> got = receiver.Receive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kParseError);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// -------------------------------------- coordinator fault injection --

/// A fault-injection discovery run: every coordinator-side endpoint is
/// wrapped in a FlakyChannel armed with `plan`.
DiscoveryResult RunWithFault(const EncodedTable& table,
                             ShardTransport transport,
                             FlakyChannel::Plan plan) {
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.num_threads = 2;
  options.num_shards = 2;
  options.shard_transport = transport;
  // Short timeout: a dropped frame must surface as a typed timeout in
  // test time, not in the production default.
  options.shard_io_timeout_seconds = 1.0;
  // Strict mode: this suite pins the PRE-supervision failure contract —
  // any injected fault is a typed fail-stop abort, byte for byte the
  // behavior shard_max_retries == 0 promises. The supervised-recovery
  // matrix (same faults, run completes) lives in
  // tests/shard_supervisor_test.cc.
  options.shard_max_retries = 0;
  options.shard_channel_decorator =
      [plan](std::unique_ptr<shard::ShardChannel> inner)
      -> std::unique_ptr<shard::ShardChannel> {
    return std::make_unique<FlakyChannel>(std::move(inner), plan);
  };
  return DiscoverOds(table, options);
}

class CoordinatorFaultInjectionTest
    : public ::testing::TestWithParam<ShardTransport> {};

TEST_P(CoordinatorFaultInjectionTest, EveryFaultYieldsTypedErrorNoHang) {
  Table t = GenerateNcVoterTable(200, 5, 7);
  EncodedTable enc = EncodeTable(t);

  DiscoveryOptions clean_options;
  clean_options.epsilon = 0.1;
  clean_options.num_threads = 2;
  DiscoveryResult clean = DiscoverOds(enc, clean_options);
  ASSERT_TRUE(clean.shard_status.ok());

  // Triggers place each fault mid-run, after at least one level merged
  // cleanly. Send-side faults count the coordinator's physical sends —
  // the 5 base partitions ship as ONE kBatch envelope, then the level-1
  // candidate batch — so with trigger 2 the fault lands on the level-2
  // batch under either transport. Receive-side faults depend on the
  // decoration topology: with inproc channels the *runner's* inbox is a
  // decorated endpoint too (the base envelope + 2 batches pass as 3
  // physical receives, the level-3 batch is mangled), while the socket
  // decorates only the coordinator endpoint (2 reply chunks pass, the
  // level-3 reply is mangled).
  const int receive_trigger =
      GetParam() == ShardTransport::kInProcess ? 3 : 2;
  struct FaultCase {
    FlakyChannel::Fault fault;
    int trigger_after;
  };
  const FaultCase faults[] = {
      {FlakyChannel::Fault::kTornWrite, 2},
      {FlakyChannel::Fault::kShortRead, receive_trigger},
      {FlakyChannel::Fault::kCorruptByte, receive_trigger},
      {FlakyChannel::Fault::kDropFrame, 2}};
  for (const FaultCase& c : faults) {
    SCOPED_TRACE(static_cast<int>(c.fault));
    FlakyChannel::Plan plan;
    plan.fault = c.fault;
    plan.trigger_after = c.trigger_after;
    DiscoveryResult faulted = RunWithFault(enc, GetParam(), plan);

    // Typed error, never a hang (the run returned) and never a crash.
    ASSERT_FALSE(faulted.shard_status.ok());
    EXPECT_NE(faulted.shard_status.code(), StatusCode::kOk);
    // The clean prefix — at least level 1 — was merged and reported.
    EXPECT_GE(faulted.stats.levels_processed, 1);

    // No partial merge: whatever prefix was reported is coherent with
    // its own stats and is a subset of the clean run.
    EXPECT_LE(faulted.CountOfKind(DependencyKind::kOc),
              clean.CountOfKind(DependencyKind::kOc));
    EXPECT_LE(faulted.CountOfKind(DependencyKind::kOfd),
              clean.CountOfKind(DependencyKind::kOfd));
    EXPECT_EQ(faulted.stats.TotalOcs(),
              faulted.CountOfKind(DependencyKind::kOc));
    EXPECT_EQ(faulted.stats.TotalOfds(),
              faulted.CountOfKind(DependencyKind::kOfd));
    for (const DiscoveredDependency& d : faulted.dependencies) {
      EXPECT_LE(d.level, faulted.stats.levels_processed);
    }
  }
}

TEST_P(CoordinatorFaultInjectionTest, FaultDuringBaseShippingIsTyped) {
  Table t = GenerateNcVoterTable(120, 4, 3);
  EncodedTable enc = EncodeTable(t);
  FlakyChannel::Plan plan;
  plan.fault = FlakyChannel::Fault::kTornWrite;
  plan.trigger_after = 0;  // the base-partition envelope itself is torn
  DiscoveryResult faulted = RunWithFault(enc, GetParam(), plan);
  ASSERT_FALSE(faulted.shard_status.ok());
  EXPECT_TRUE(faulted.dependencies.empty());
}

INSTANTIATE_TEST_SUITE_P(Transports, CoordinatorFaultInjectionTest,
                         ::testing::Values(ShardTransport::kInProcess,
                                           ShardTransport::kSocket),
                         [](const ::testing::TestParamInfo<ShardTransport>&
                                info) {
                           return ShardTransportToString(info.param);
                         });

}  // namespace
}  // namespace aod
