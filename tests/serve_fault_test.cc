// The acceptance gate of the serving layer: a DiscoveryServer under a
// storm of hostile clients must keep answering the healthy one —
// bit-identically to direct DiscoverOds — and leak nothing.
//
// The fault matrix, straight from the robustness contract in
// src/serve/server.h:
//
//   * client crash at each protocol stage (connect / mid-header /
//     post-submit / mid-result) — the abandoned jobs are cancelled and
//     reclaimed;
//   * malformed, oversized and desynced frames at every interesting
//     byte offset — each fails only its own connection, with a typed
//     error where the stream still permits one;
//   * job flood past the admission bounds — typed kOverloaded, never
//     queue growth; a drained server answers kShuttingDown;
//   * a slowloris connection that never completes a frame — dropped by
//     the idle timeout, not held forever;
//   * SIGTERM mid-job against the real discovery_serve binary — drains,
//     delivers, exits 0.
//
// Every test ends on the same two invariants: a healthy round trip
// still fingerprints equal to the direct run, and Shutdown leaves zero
// jobs, connections and fds behind.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "gen/flight_generator.h"
#include "od/discovery.h"
#include "serve/client.h"
#include "serve/scheduler.h"
#include "serve/serve_wire.h"
#include "serve/server.h"
#include "serve/table_cache.h"
#include "shard/wire.h"
#include "test_util.h"

namespace aod {
namespace {

using serve::DiscoveryClient;
using serve::DiscoveryServer;
using serve::JobState;
using serve::ServerOptions;
using serve::ServerStats;

void AppendDouble(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a,", v);  // exact hex fingerprint
  *out += buf;
}

/// Byte-exact serialization of both dependency lists with every payload
/// field — "bit-identical to direct DiscoverOds" made testable (same
/// discipline as shard_process_e2e_test).
std::string OutputFingerprint(const DiscoveryResult& result) {
  std::string out;
  for (const DiscoveredDependency& d : result.dependencies) {
    out += std::to_string(static_cast<int>(d.kind)) + "," +
           std::to_string(d.context.bits()) + "," + std::to_string(d.a) +
           "," + std::to_string(d.b) + "," + (d.opposite ? "1," : "0,");
    AppendDouble(&out, d.error);
    out += std::to_string(d.removal_size) + "," + std::to_string(d.level) +
           ",";
    AppendDouble(&out, d.interestingness);
    for (int32_t r : d.removal_rows) out += std::to_string(r) + ",";
    out += ';';
  }
  return out;
}

DiscoveryOptions SmallJobOptions() {
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.collect_removal_sets = true;
  return options;
}

/// A table big enough that discovery reliably runs for several seconds
/// (measured: ~5s single-threaded) — the canvas for cancel, deadline
/// and disconnect races. Tests never let it run to completion.
EncodedTable SlowTable() {
  return EncodeTable(GenerateFlightTable(20000, 10, 3));
}

DiscoveryOptions SlowJobOptions() {
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.validator = ValidatorKind::kIterative;
  return options;
}

std::unique_ptr<DiscoveryServer> StartServer(ServerOptions options) {
  Result<std::unique_ptr<DiscoveryServer>> server =
      DiscoveryServer::Start(options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return server.ok() ? std::move(*server) : nullptr;
}

/// A plain TCP connection for byte-level fault injection — what a
/// buggy, hostile or crashed client looks like on the wire.
int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void RawSend(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // the server may already have dropped us
    sent += static_cast<size_t>(n);
  }
}

/// True once the server closed its end (recv sees EOF/reset) within
/// `timeout_seconds`.
bool WaitForPeerClose(int fd, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  char buf[256];
  while (std::chrono::steady_clock::now() < deadline) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n == 0) return true;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

bool WaitForZeroJobs(DiscoveryServer* server, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (server->active_jobs() == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return server->active_jobs() == 0;
}

int OpenFdCount() {
  int count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++count;
  }
  return count;
}

/// One healthy round trip against `server`, asserted bit-identical to
/// the direct run. The workhorse invariant: whatever fault storm a test
/// raises, this must still pass afterwards (and during).
void ExpectHealthyRoundTrip(DiscoveryServer* server,
                            const EncodedTable& table,
                            const DiscoveryOptions& options) {
  DiscoveryResult direct = DiscoverOds(table, options);
  Result<DiscoveryResult> remote = serve::RunRemoteDiscovery(
      "127.0.0.1", server->port(), table, options);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_FALSE(remote->cancelled);
  EXPECT_EQ(OutputFingerprint(*remote), OutputFingerprint(direct));
}

// ------------------------------------------------------ wire codecs --

TEST(ServeWireTest, JobSubmitRoundTrip) {
  serve::WireJobSubmit submit;
  submit.request_id = 42;
  submit.options.epsilon = 0.25;
  submit.options.validator = 1;
  submit.options.bidirectional = true;
  submit.options.collect_removal_sets = true;
  submit.options.max_level = 3;
  submit.options.deadline_seconds = 7.5;
  submit.options.kinds = DependencyKindSet::All().bits();
  submit.options.afd_error = 0.05;
  submit.options.top_k = 12;
  submit.table_frame = shard::EncodeTableBlock(testing_util::PaperEncoded());

  std::vector<uint8_t> frame = EncodeJobSubmit(submit);
  Result<shard::DecodedFrame> decoded = shard::DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok());
  Result<serve::WireJobSubmit> back = serve::DecodeJobSubmit(*decoded);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->request_id, 42u);
  EXPECT_EQ(back->options.epsilon, 0.25);
  EXPECT_EQ(back->options.validator, 1);
  EXPECT_TRUE(back->options.bidirectional);
  EXPECT_TRUE(back->options.collect_removal_sets);
  EXPECT_EQ(back->options.max_level, 3);
  EXPECT_EQ(back->options.deadline_seconds, 7.5);
  EXPECT_EQ(back->options.kinds, DependencyKindSet::All().bits());
  EXPECT_EQ(back->options.afd_error, 0.05);
  EXPECT_EQ(back->options.top_k, 12);
  EXPECT_EQ(back->table_frame, submit.table_frame);

  // The nested table frame is itself decodable.
  Result<shard::DecodedFrame> inner = shard::DecodeFrame(back->table_frame);
  ASSERT_TRUE(inner.ok());
  Result<EncodedTable> table = shard::DecodeTableBlock(*inner);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 9);
}

TEST(ServeWireTest, StatusErrorResultCancelRoundTrips) {
  serve::WireJobStatus status;
  status.job_id = 7;
  status.request_id = 9;
  status.state = JobState::kRunning;
  status.queue_position = -1;
  status.level = 3;
  status.total_ocs = 11;
  status.total_ofds = 2;
  status.total_fds = 6;
  status.total_afds = 4;
  {
    Result<shard::DecodedFrame> f =
        shard::DecodeFrame(EncodeJobStatus(status));
    ASSERT_TRUE(f.ok());
    Result<serve::WireJobStatus> back = serve::DecodeJobStatus(*f);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->job_id, 7u);
    EXPECT_EQ(back->state, JobState::kRunning);
    EXPECT_EQ(back->level, 3);
    EXPECT_EQ(back->total_ocs, 11);
    EXPECT_EQ(back->total_ofds, 2);
    EXPECT_EQ(back->total_fds, 6);
    EXPECT_EQ(back->total_afds, 4);
  }
  serve::WireJobError error;
  error.job_id = 0;
  error.request_id = 5;
  error.status = Status::Overloaded("queue full");
  {
    Result<shard::DecodedFrame> f = shard::DecodeFrame(EncodeJobError(error));
    ASSERT_TRUE(f.ok());
    Result<serve::WireJobError> back = serve::DecodeJobError(*f);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->status.code(), StatusCode::kOverloaded);
    EXPECT_EQ(back->request_id, 5u);
  }
  serve::WireJobResultChunk chunk;
  chunk.job_id = 3;
  chunk.final_chunk = false;
  chunk.blob_bytes = {1, 2, 3, 4, 5};
  {
    Result<shard::DecodedFrame> f =
        shard::DecodeFrame(EncodeJobResultChunk(chunk));
    ASSERT_TRUE(f.ok());
    Result<serve::WireJobResultChunk> back =
        serve::DecodeJobResultChunk(*f);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->job_id, 3u);
    EXPECT_FALSE(back->final_chunk);
    EXPECT_EQ(back->blob_bytes, chunk.blob_bytes);
  }
  {
    Result<shard::DecodedFrame> f = shard::DecodeFrame(serve::EncodeCancel(99));
    ASSERT_TRUE(f.ok());
    Result<uint64_t> id = serve::DecodeCancel(*f);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, 99u);
  }
}

TEST(ServeWireTest, DecodersRejectStructuralViolations) {
  // A status frame with an out-of-range state byte.
  serve::WireJobStatus status;
  status.state = JobState::kQueued;
  std::vector<uint8_t> frame = EncodeJobStatus(status);
  // The state byte is in the payload; find and corrupt it by rebuilding
  // through the writer instead of guessing offsets.
  {
    shard::WireWriter writer;
    writer.PutU64(1);
    writer.PutU64(0);
    writer.PutU8(250);  // no such JobState
    writer.PutI32(-1);
    writer.PutI32(0);
    writer.PutI64(0);
    writer.PutI64(0);
    std::vector<uint8_t> bad = writer.SealFrame(shard::FrameType::kJobStatus);
    Result<shard::DecodedFrame> f = shard::DecodeFrame(bad);
    ASSERT_TRUE(f.ok());
    EXPECT_FALSE(serve::DecodeJobStatus(*f).ok());
  }
  // Negative dependency counts are range-checked at decode — one case
  // per counter, since each travels as its own signed varint.
  for (int which = 0; which < 4; ++which) {
    shard::WireWriter writer;
    writer.PutU64(1);
    writer.PutU64(0);
    writer.PutU8(static_cast<uint8_t>(JobState::kRunning));
    writer.PutI32(-1);
    writer.PutI32(2);
    writer.PutVarintI64(which == 0 ? -1 : 3);  // total_ocs
    writer.PutVarintI64(which == 1 ? -1 : 3);  // total_ofds
    writer.PutVarintI64(which == 2 ? -1 : 3);  // total_fds
    writer.PutVarintI64(which == 3 ? -1 : 3);  // total_afds
    std::vector<uint8_t> bad = writer.SealFrame(shard::FrameType::kJobStatus);
    Result<shard::DecodedFrame> f = shard::DecodeFrame(bad);
    ASSERT_TRUE(f.ok());
    Result<serve::WireJobStatus> r = serve::DecodeJobStatus(*f);
    ASSERT_FALSE(r.ok()) << "negative counter " << which << " decoded";
    EXPECT_NE(r.status().message().find("negative dependency count"),
              std::string::npos)
        << r.status().ToString();
  }
  // An error frame claiming StatusCode::kOk is not an error.
  {
    shard::WireWriter writer;
    writer.PutU64(1);
    writer.PutU64(1);
    writer.PutU8(0);  // kOk
    writer.PutString("fine");
    std::vector<uint8_t> bad = writer.SealFrame(shard::FrameType::kJobError);
    Result<shard::DecodedFrame> f = shard::DecodeFrame(bad);
    ASSERT_TRUE(f.ok());
    EXPECT_FALSE(serve::DecodeJobError(*f).ok());
  }
  // Type confusion: a sealed status frame fed to the submit decoder.
  {
    Result<shard::DecodedFrame> f = shard::DecodeFrame(frame);
    ASSERT_TRUE(f.ok());
    EXPECT_FALSE(serve::DecodeJobSubmit(*f).ok());
  }
  // The wire-v4 job fields are range-checked at decode: an empty or
  // unknown kind set, an out-of-range AFD threshold and a negative
  // top_k are each typed submit rejections.
  auto expect_submit_rejected = [](serve::WireJobOptions options,
                                   const std::string& want) {
    serve::WireJobSubmit submit;
    submit.request_id = 1;
    submit.options = options;
    submit.table_frame =
        shard::EncodeTableBlock(testing_util::PaperEncoded());
    Result<shard::DecodedFrame> f =
        shard::DecodeFrame(serve::EncodeJobSubmit(submit));
    ASSERT_TRUE(f.ok());
    Result<serve::WireJobSubmit> r = serve::DecodeJobSubmit(*f);
    ASSERT_FALSE(r.ok()) << "decoded despite " << want;
    EXPECT_NE(r.status().message().find(want), std::string::npos)
        << r.status().ToString();
  };
  {
    serve::WireJobOptions bad;
    bad.kinds = 0;
    expect_submit_rejected(bad, "dependency-kind set invalid (bits 0)");
  }
  {
    serve::WireJobOptions bad;
    bad.kinds = DependencyKindSet::All().bits() | 0x40;
    expect_submit_rejected(bad, "dependency-kind set invalid");
  }
  {
    serve::WireJobOptions bad;
    bad.afd_error = 2.5;
    expect_submit_rejected(bad, "afd_error outside [0, 1]");
  }
  {
    serve::WireJobOptions bad;
    bad.top_k = -3;
    expect_submit_rejected(bad, "negative top_k");
  }
}

TEST(ServeWireTest, TruncationAndCorruptionNeverMisparse) {
  serve::WireJobSubmit submit;
  submit.request_id = 1;
  submit.table_frame = shard::EncodeTableBlock(testing_util::PaperEncoded());
  const std::vector<uint8_t> frame = EncodeJobSubmit(submit);

  // Every truncation either fails frame validation or payload decode —
  // never a crash, never a bogus success.
  for (size_t len = 0; len < frame.size(); ++len) {
    std::vector<uint8_t> cut(frame.begin(), frame.begin() + len);
    Result<shard::DecodedFrame> f = shard::DecodeFrame(cut);
    if (!f.ok()) continue;
    EXPECT_FALSE(serve::DecodeJobSubmit(*f).ok()) << "at length " << len;
  }
  // Single-byte corruption: the checksum (or a validation rule) catches
  // every flip. Stride keeps the loop cheap; the offsets still cover
  // header, options and nested-table regions.
  for (size_t at = 0; at < frame.size(); at += 7) {
    std::vector<uint8_t> bad = frame;
    bad[at] ^= 0x5A;
    Result<shard::DecodedFrame> f = shard::DecodeFrame(bad);
    if (!f.ok()) continue;
    Result<serve::WireJobSubmit> decoded = serve::DecodeJobSubmit(*f);
    if (!decoded.ok()) continue;
    // A flip that survives both layers must be confined to the nested
    // table bytes, whose own frame checksum rejects it downstream.
    Result<shard::DecodedFrame> inner =
        shard::DecodeFrame(decoded->table_frame);
    if (inner.ok()) {
      EXPECT_FALSE(shard::DecodeTableBlock(*inner).ok())
          << "undetected corruption at offset " << at;
    }
  }
}

// ------------------------------------------- the healthy round trip --

TEST(ServeFaultTest, RemoteMatchesDirectDiscoveryBitExactly) {
  std::unique_ptr<DiscoveryServer> server = StartServer(ServerOptions{});
  ASSERT_NE(server, nullptr);

  EncodedTable paper = testing_util::PaperEncoded();
  ExpectHealthyRoundTrip(server.get(), paper, SmallJobOptions());

  // A second option shape (bidirectional, exact validator) and a second
  // table — the protocol must not privilege one configuration.
  DiscoveryOptions bidi;
  bidi.epsilon = 0.05;
  bidi.bidirectional = true;
  bidi.validator = ValidatorKind::kExact;
  ExpectHealthyRoundTrip(server.get(), paper, bidi);

  EncodedTable random = testing_util::RandomEncodedTable(200, 5, 4, 17);
  ExpectHealthyRoundTrip(server.get(), random, SmallJobOptions());

  // A mixed-kind, ranked job: all four kinds plus top-k travel through
  // kJobSubmit and the result blob carries FD/AFD records back.
  DiscoveryOptions mixed = SmallJobOptions();
  mixed.kinds = DependencyKindSet::All();
  mixed.afd_error = 0.05;
  mixed.top_k = 10;
  ExpectHealthyRoundTrip(server.get(), random, mixed);
  {
    DiscoveryOptions unranked = mixed;
    unranked.top_k = 0;
    Result<DiscoveryResult> full = serve::RunRemoteDiscovery(
        "127.0.0.1", server->port(), random, unranked);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    EXPECT_GT(full->CountOfKind(DependencyKind::kFd) +
                  full->CountOfKind(DependencyKind::kAfd),
              0);
    Result<DiscoveryResult> ranked = serve::RunRemoteDiscovery(
        "127.0.0.1", server->port(), random, mixed);
    ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
    EXPECT_LE(ranked->dependencies.size(), 10u);
  }

  server->Shutdown();
  EXPECT_EQ(server->active_jobs(), 0);
  EXPECT_EQ(server->active_connections(), 0);
}

TEST(ServeFaultTest, TableCacheWarmsAcrossJobsWithoutChangingOutput) {
  std::unique_ptr<DiscoveryServer> server = StartServer(ServerOptions{});
  ASSERT_NE(server, nullptr);

  EncodedTable paper = testing_util::PaperEncoded();
  DiscoveryResult direct = DiscoverOds(paper, SmallJobOptions());

  std::string first, second;
  for (int round = 0; round < 2; ++round) {
    Result<DiscoveryResult> remote = serve::RunRemoteDiscovery(
        "127.0.0.1", server->port(), paper, SmallJobOptions());
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    (round == 0 ? first : second) = OutputFingerprint(*remote);
  }
  EXPECT_EQ(first, OutputFingerprint(direct));
  EXPECT_EQ(second, first) << "warm start changed the output";

  ServerStats stats = server->stats();
  EXPECT_EQ(stats.table_cache_misses, 1);
  EXPECT_GE(stats.table_cache_hits, 1);
  server->Shutdown();
}

TEST(ServeFaultTest, MixedKindProgressCarriesFdAndAfdCounts) {
  // Regression: progress frames used to carry only the OC/OFD totals, so
  // a mixed-kind job (whose discoveries are mostly FDs and AFDs) looked
  // idle to a watching client. The last per-level progress frame must
  // agree with the terminal result for all four kinds.
  std::unique_ptr<DiscoveryServer> server = StartServer(ServerOptions{});
  ASSERT_NE(server, nullptr);

  EncodedTable table = testing_util::RandomEncodedTable(200, 5, 4, 17);
  DiscoveryOptions mixed = SmallJobOptions();
  mixed.kinds = DependencyKindSet::All();
  mixed.afd_error = 0.05;
  DiscoveryResult direct = DiscoverOds(table, mixed);
  ASSERT_GT(direct.CountOfKind(DependencyKind::kFd) +
                direct.CountOfKind(DependencyKind::kAfd),
            0);

  Result<std::unique_ptr<DiscoveryClient>> client =
      DiscoveryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<uint64_t> job = (*client)->Submit(table, mixed);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  serve::WireJobStatus last;
  int progress_frames = 0;
  Result<DiscoveryResult> remote =
      (*client)->Await(*job, [&](const serve::WireJobStatus& s) {
        last = s;
        ++progress_frames;
      });
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_GT(progress_frames, 0);
  EXPECT_EQ(last.total_ocs, direct.CountOfKind(DependencyKind::kOc));
  EXPECT_EQ(last.total_ofds, direct.CountOfKind(DependencyKind::kOfd));
  EXPECT_EQ(last.total_fds, direct.CountOfKind(DependencyKind::kFd));
  EXPECT_EQ(last.total_afds, direct.CountOfKind(DependencyKind::kAfd));
  server->Shutdown();
}

// ----------------------------------------------- scheduler map growth --

TEST(ServeFaultTest, OverloadProbesFromFreshClientsDoNotGrowSchedulerState) {
  // Regression: Submit used operator[] on the per-client inflight map,
  // so every rejected probe default-inserted a zero entry — churning
  // client ids (each connection gets a fresh one) grew server state
  // without bound on an overloaded server. find() must leave the map
  // untouched for rejections.
  exec::ThreadPool pool(2);
  serve::TableCache cache;
  serve::JobScheduler::Options options;
  options.max_queue_depth = 1;
  options.max_running_jobs = 1;
  options.max_job_seconds = 30.0;
  options.pool = &pool;
  serve::JobScheduler scheduler(options);

  std::shared_ptr<const serve::TableCache::Entry> slow =
      cache.Intern(SlowTable());
  auto make_job = [&](uint64_t client_id) {
    auto job = std::make_shared<serve::ServeJob>();
    job->client_id = client_id;
    job->table = slow;
    job->options = SlowJobOptions();
    return job;
  };

  Result<uint64_t> first = scheduler.Submit(make_job(1));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Wait until the first job leaves the queue for its executor, then
  // park a second one in the (depth-1) queue to hold it full.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (scheduler.QueuePosition(*first) != -1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(scheduler.QueuePosition(*first), -1);
  Result<uint64_t> second = scheduler.Submit(make_job(1));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(scheduler.inflight_clients(), 1u);

  for (uint64_t probe = 100; probe < 150; ++probe) {
    Result<uint64_t> rejected = scheduler.Submit(make_job(probe));
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);
  }
  EXPECT_EQ(scheduler.inflight_clients(), 1u)
      << "rejected probes grew the admission map";
  EXPECT_EQ(scheduler.jobs_rejected(), 50);

  scheduler.Cancel(*first);
  scheduler.Cancel(*second);
  scheduler.Shutdown();
  EXPECT_EQ(scheduler.active_jobs(), 0);
  EXPECT_EQ(scheduler.inflight_clients(), 0u);
}

// ------------------------------------------------- table-cache LRU --

TEST(TableCacheTest, RaceLossHitRefreshesLruRecency) {
  // Regression: the second-lock re-check (the path a thread takes after
  // losing the build race for a new table) returned the winner's entry
  // without touching the LRU list — a table only ever re-interned
  // through that path looked idle and was evicted while hot. The test
  // seam drives the race deterministically: the hook interns X (and two
  // fillers) in the window between the outer Intern's missed fast-path
  // lookup and its re-check, so the outer call takes the race-loss hit
  // path exactly.
  serve::TableCache cache(/*capacity=*/3);
  EncodedTable x = testing_util::RandomEncodedTable(40, 3, 4, 1);
  EncodedTable a = testing_util::RandomEncodedTable(40, 3, 4, 2);
  EncodedTable b = testing_util::RandomEncodedTable(40, 3, 4, 3);
  EncodedTable c = testing_util::RandomEncodedTable(40, 3, 4, 4);

  bool hook_ran = false;
  cache.set_race_window_hook_for_test([&] {
    cache.Intern(x);  // the racing winner: inserts X first
    cache.Intern(a);
    cache.Intern(b);  // LRU now [B, A, X] — X is the eviction candidate
    hook_ran = true;
  });
  std::shared_ptr<const serve::TableCache::Entry> entry = cache.Intern(x);
  cache.set_race_window_hook_for_test(nullptr);
  ASSERT_TRUE(hook_ran);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.hits(), 1);    // the race-loss hit
  EXPECT_EQ(cache.misses(), 3);  // the hook's three inserts

  // The race-loss hit refreshed X to the front, so the next insert must
  // evict A — the true least-recently-used entry — not X.
  cache.Intern(c);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.hits(), 1);
  std::shared_ptr<const serve::TableCache::Entry> again = cache.Intern(x);
  EXPECT_EQ(cache.hits(), 2) << "X was evicted despite its race-loss hit";
  EXPECT_EQ(again.get(), entry.get());
  cache.Intern(a);
  EXPECT_EQ(cache.misses(), 5) << "A survived, so something else was evicted";
}

// ------------------------------------------------- hostile framing --

TEST(ServeFaultTest, MalformedFramesFailOnlyTheirOwnConnection) {
  std::unique_ptr<DiscoveryServer> server = StartServer(ServerOptions{});
  ASSERT_NE(server, nullptr);

  serve::WireJobSubmit submit;
  submit.request_id = 1;
  submit.table_frame = shard::EncodeTableBlock(testing_util::PaperEncoded());
  const std::vector<uint8_t> valid = EncodeJobSubmit(submit);

  // Each hostile payload goes down its own fresh connection; the server
  // must shed that connection (typed error where the stream allows)
  // and keep serving everyone else.
  std::vector<std::vector<uint8_t>> attacks;
  attacks.push_back({0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0,
                     0, 0, 0, 0, 0, 0, 0, 0,
                     0, 0, 0, 0, 0, 0, 0, 0});  // bad magic
  {
    std::vector<uint8_t> wrong_version = valid;
    wrong_version[4] ^= 0xFF;  // version field
    attacks.push_back(wrong_version);
  }
  {
    std::vector<uint8_t> bad_checksum = valid;
    bad_checksum.back() ^= 0x01;  // payload byte; checksum now stale
    attacks.push_back(bad_checksum);
  }
  {
    // Declared size far past the server's frame bound.
    std::vector<uint8_t> oversize = valid;
    uint64_t huge = 1ULL << 40;
    std::memcpy(oversize.data() + 8, &huge, sizeof(huge));
    attacks.push_back(oversize);
  }
  {
    // A frame type the serve dispatcher must refuse.
    shard::WireWriter writer;
    writer.PutU64(0);
    attacks.push_back(writer.SealFrame(shard::FrameType::kStatsFooter));
  }
  // Truncations of the valid submit at representative offsets (header
  // prefix, header boundary, mid-payload), each followed by an abrupt
  // close — EOF mid-frame.
  for (size_t len : {size_t{3}, size_t{23}, size_t{24},
                     valid.size() / 2, valid.size() - 1}) {
    attacks.emplace_back(valid.begin(), valid.begin() + len);
  }

  for (const std::vector<uint8_t>& attack : attacks) {
    int fd = RawConnect(server->port());
    ASSERT_GE(fd, 0);
    RawSend(fd, attack.data(), attack.size());
    ::close(fd);
  }

  // The healthy client neither notices nor inherits any desync.
  ExpectHealthyRoundTrip(server.get(), testing_util::PaperEncoded(),
                         SmallJobOptions());

  EXPECT_TRUE(WaitForZeroJobs(server.get(), 10.0));
  server->Shutdown();
  ServerStats stats = server->stats();
  EXPECT_GE(stats.frames_rejected, 1);
  EXPECT_EQ(server->active_jobs(), 0);
  EXPECT_EQ(server->active_connections(), 0);
}

TEST(ServeFaultTest, ClientCrashAtEachProtocolStageLeaksNothing) {
  ServerOptions options;
  options.max_job_seconds = 15.0;
  std::unique_ptr<DiscoveryServer> server = StartServer(options);
  ASSERT_NE(server, nullptr);

  serve::WireJobSubmit submit;
  submit.request_id = 1;
  submit.table_frame = shard::EncodeTableBlock(testing_util::PaperEncoded());
  const std::vector<uint8_t> valid = EncodeJobSubmit(submit);

  // Stage 1: connect, vanish.
  {
    int fd = RawConnect(server->port());
    ASSERT_GE(fd, 0);
    ::close(fd);
  }
  // Stage 2: half a header, vanish.
  {
    int fd = RawConnect(server->port());
    ASSERT_GE(fd, 0);
    RawSend(fd, valid.data(), 11);
    ::close(fd);
  }
  // Stage 3: full submission, vanish before reading the ack. The job
  // may be admitted; its results stream into a dead socket and the
  // server must cancel and reclaim it.
  {
    int fd = RawConnect(server->port());
    ASSERT_GE(fd, 0);
    RawSend(fd, valid.data(), valid.size());
    ::close(fd);
  }
  // Stage 4: submission + a cancel for a job that may not exist, vanish.
  {
    int fd = RawConnect(server->port());
    ASSERT_GE(fd, 0);
    RawSend(fd, valid.data(), valid.size());
    std::vector<uint8_t> cancel = serve::EncodeCancel(12345);
    RawSend(fd, cancel.data(), cancel.size());
    ::close(fd);
  }

  ExpectHealthyRoundTrip(server.get(), testing_util::PaperEncoded(),
                         SmallJobOptions());
  EXPECT_TRUE(WaitForZeroJobs(server.get(), 20.0));
  server->Shutdown();
  EXPECT_EQ(server->active_jobs(), 0);
  EXPECT_EQ(server->active_connections(), 0);
}

TEST(ServeFaultTest, DisconnectOfRunningJobCancelsIt) {
  ServerOptions options;
  options.max_job_seconds = 60.0;
  std::unique_ptr<DiscoveryServer> server = StartServer(options);
  ASSERT_NE(server, nullptr);

  EncodedTable slow = SlowTable();
  {
    Result<std::unique_ptr<DiscoveryClient>> client =
        DiscoveryClient::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    Result<uint64_t> job = (*client)->Submit(slow, SlowJobOptions());
    ASSERT_TRUE(job.ok()) << job.status().ToString();
    // Give the job a moment to leave the queue, then kill the client
    // abruptly (destructor closes the socket — the TCP view of kill -9).
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  }
  // The disconnect must cancel the job well before its natural end.
  EXPECT_TRUE(WaitForZeroJobs(server.get(), 15.0))
      << "abandoned job still running";
  EXPECT_GE(server->stats().connections_dropped, 1);

  ExpectHealthyRoundTrip(server.get(), testing_util::PaperEncoded(),
                         SmallJobOptions());
  server->Shutdown();
}

// --------------------------------------------------- admission caps --

TEST(ServeFaultTest, JobFloodGetsTypedOverloadNotQueueGrowth) {
  ServerOptions options;
  options.max_queue_depth = 1;
  options.max_running_jobs = 1;
  options.max_inflight_per_client = 8;  // the queue bound trips first
  options.max_job_seconds = 30.0;
  std::unique_ptr<DiscoveryServer> server = StartServer(options);
  ASSERT_NE(server, nullptr);

  EncodedTable slow = SlowTable();
  std::vector<std::unique_ptr<DiscoveryClient>> clients;
  std::vector<uint64_t> admitted;
  int overloaded = 0;
  for (int i = 0; i < 6; ++i) {
    Result<std::unique_ptr<DiscoveryClient>> client =
        DiscoveryClient::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok());
    Result<uint64_t> job = (*client)->Submit(slow, SlowJobOptions());
    if (job.ok()) {
      admitted.push_back(*job);
      clients.push_back(std::move(*client));
    } else {
      EXPECT_EQ(job.status().code(), StatusCode::kOverloaded)
          << job.status().ToString();
      ++overloaded;
    }
  }
  // 1 running + 1 queued fit; the flood beyond them is shed.
  EXPECT_GE(overloaded, 1);
  EXPECT_LE(admitted.size(), 2u);
  EXPECT_GE(server->stats().jobs_rejected, overloaded);

  // Every admitted job still resolves (cancelled counts as resolved).
  for (size_t i = 0; i < clients.size(); ++i) {
    ASSERT_TRUE(clients[i]->Cancel(admitted[i]).ok());
    Result<DiscoveryResult> result = clients[i]->Await(admitted[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_TRUE(WaitForZeroJobs(server.get(), 10.0));
  server->Shutdown();
  EXPECT_EQ(server->active_jobs(), 0);
}

TEST(ServeFaultTest, PerClientInflightCapSheds) {
  ServerOptions options;
  options.max_queue_depth = 16;
  options.max_running_jobs = 1;
  options.max_inflight_per_client = 2;
  options.max_job_seconds = 30.0;
  std::unique_ptr<DiscoveryServer> server = StartServer(options);
  ASSERT_NE(server, nullptr);

  Result<std::unique_ptr<DiscoveryClient>> client =
      DiscoveryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  EncodedTable slow = SlowTable();
  std::vector<uint64_t> admitted;
  for (int i = 0; i < 2; ++i) {
    Result<uint64_t> job = (*client)->Submit(slow, SlowJobOptions());
    ASSERT_TRUE(job.ok()) << job.status().ToString();
    admitted.push_back(*job);
  }
  Result<uint64_t> third = (*client)->Submit(slow, SlowJobOptions());
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kOverloaded);

  // A different client is not penalized by the first one's appetite.
  Result<std::unique_ptr<DiscoveryClient>> other =
      DiscoveryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(other.ok());
  Result<uint64_t> others_job =
      (*other)->Submit(testing_util::PaperEncoded(), SmallJobOptions());
  EXPECT_TRUE(others_job.ok()) << others_job.status().ToString();

  for (uint64_t id : admitted) ASSERT_TRUE((*client)->Cancel(id).ok());
  for (uint64_t id : admitted) {
    Result<DiscoveryResult> result = (*client)->Await(id);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  if (others_job.ok()) {
    Result<DiscoveryResult> result = (*other)->Await(*others_job);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_TRUE(WaitForZeroJobs(server.get(), 10.0));
  server->Shutdown();
}

// ------------------------------------------- cancel and deadlines --

TEST(ServeFaultTest, CancelResolvesWithCancelledFlag) {
  ServerOptions options;
  options.max_job_seconds = 60.0;
  std::unique_ptr<DiscoveryServer> server = StartServer(options);
  ASSERT_NE(server, nullptr);

  Result<std::unique_ptr<DiscoveryClient>> client =
      DiscoveryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  Result<uint64_t> job = (*client)->Submit(SlowTable(), SlowJobOptions());
  ASSERT_TRUE(job.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_TRUE((*client)->Cancel(*job).ok());

  Result<DiscoveryResult> result = (*client)->Await(*job);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->cancelled) << "slow job finished before the cancel "
                                    "landed — table not slow enough";
  EXPECT_TRUE(WaitForZeroJobs(server.get(), 5.0));
  server->Shutdown();
}

TEST(ServeFaultTest, DeadlineResolvesPartialNotError) {
  std::unique_ptr<DiscoveryServer> server = StartServer(ServerOptions{});
  ASSERT_NE(server, nullptr);

  Result<DiscoveryResult> result = serve::RunRemoteDiscovery(
      "127.0.0.1", server->port(), SlowTable(), SlowJobOptions(),
      /*deadline_seconds=*/0.3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->timed_out);
  server->Shutdown();
}

TEST(ServeFaultTest, ServerSideJobCapBoundsEveryJob) {
  ServerOptions options;
  options.max_job_seconds = 0.3;  // tighter than any client ask
  std::unique_ptr<DiscoveryServer> server = StartServer(options);
  ASSERT_NE(server, nullptr);

  const auto start = std::chrono::steady_clock::now();
  Result<DiscoveryResult> result = serve::RunRemoteDiscovery(
      "127.0.0.1", server->port(), SlowTable(), SlowJobOptions(),
      /*deadline_seconds=*/3600.0);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->timed_out);
  EXPECT_LT(elapsed, 30.0);
  server->Shutdown();
}

// ------------------------------------------------- drain and SIGTERM --

TEST(ServeFaultTest, DrainRefusesNewJobsButDeliversInFlight) {
  ServerOptions options;
  options.max_job_seconds = 1.0;
  std::unique_ptr<DiscoveryServer> server = StartServer(options);
  ASSERT_NE(server, nullptr);

  Result<std::unique_ptr<DiscoveryClient>> client =
      DiscoveryClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  Result<uint64_t> job = (*client)->Submit(SlowTable(), SlowJobOptions());
  ASSERT_TRUE(job.ok());

  server->RequestDrain();
  EXPECT_TRUE(server->draining());

  Result<uint64_t> late = (*client)->Submit(testing_util::PaperEncoded(),
                                            SmallJobOptions());
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kShuttingDown);

  // The in-flight job still resolves through its deadline.
  Result<DiscoveryResult> result = (*client)->Await(*job);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  server->Shutdown();
  EXPECT_EQ(server->active_jobs(), 0);
}

std::string ServeBinaryPath() {
  if (const char* env = std::getenv("AOD_DISCOVERY_SERVE")) return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  const std::string sibling =
      (std::filesystem::path(buf).parent_path() / "discovery_serve")
          .string();
  return std::filesystem::exists(sibling) ? sibling : "";
}

TEST(ServeFaultTest, SigtermMidJobDrainsDeliversAndExitsZero) {
  const std::string binary = ServeBinaryPath();
  if (binary.empty()) {
    GTEST_SKIP() << "discovery_serve not found next to the test binary";
  }

  // Spawn the real daemon and read its bound port from the banner.
  int out_pipe[2];
  ASSERT_EQ(::pipe(out_pipe), 0);
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execl(binary.c_str(), binary.c_str(), "--port=0",
            "--max-job-seconds=1.5", static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(out_pipe[1]);

  std::string banner;
  char c;
  while (banner.find('\n') == std::string::npos &&
         ::read(out_pipe[0], &c, 1) == 1) {
    banner.push_back(c);
  }
  const size_t colon = banner.rfind(":");
  ASSERT_NE(colon, std::string::npos) << "no banner: " << banner;
  const uint16_t port =
      static_cast<uint16_t>(std::atoi(banner.c_str() + colon + 1));
  ASSERT_GT(port, 0) << banner;

  // A slow job is mid-flight when SIGTERM lands; the daemon must drain
  // — the job resolves through its 1.5s cap and the result reaches us.
  Result<std::unique_ptr<DiscoveryClient>> client =
      DiscoveryClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<uint64_t> job = (*client)->Submit(SlowTable(), SlowJobOptions());
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_EQ(::kill(pid, SIGTERM), 0);

  Result<DiscoveryResult> result = (*client)->Await(*job);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->timed_out || result->cancelled ||
              !result->dependencies.empty());

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ::close(out_pipe[0]);
}

// ----------------------------------------------- slow readers/writers --

TEST(ServeFaultTest, SlowlorisConnectionIsDroppedByIdleTimeout) {
  ServerOptions options;
  options.idle_timeout_seconds = 0.4;
  std::unique_ptr<DiscoveryServer> server = StartServer(options);
  ASSERT_NE(server, nullptr);

  // Three bytes of header, then silence — never a complete frame.
  int fd = RawConnect(server->port());
  ASSERT_GE(fd, 0);
  const uint8_t dribble[3] = {0x57, 0x44, 0x4F};
  RawSend(fd, dribble, sizeof(dribble));

  EXPECT_TRUE(WaitForPeerClose(fd, 8.0)) << "slowloris held its grip";
  ::close(fd);

  // The timeout shed the parasite, not the service. (The healthy
  // client's await must outpace the same idle timeout, so this job is
  // small.)
  ExpectHealthyRoundTrip(server.get(), testing_util::PaperEncoded(),
                         SmallJobOptions());
  server->Shutdown();
  EXPECT_GE(server->stats().connections_dropped, 1);
}

// ------------------------------------------------------- leak check --

TEST(ServeFaultTest, StormThenShutdownLeaksNoFdsJobsOrConnections) {
  const int fds_before = OpenFdCount();
  {
    ServerOptions options;
    options.max_job_seconds = 5.0;
    options.max_queue_depth = 2;
    std::unique_ptr<DiscoveryServer> server = StartServer(options);
    ASSERT_NE(server, nullptr);

    // A small storm: crashes, garbage, a healthy job, a flood.
    for (int i = 0; i < 3; ++i) {
      int fd = RawConnect(server->port());
      if (fd >= 0) {
        const uint8_t junk[] = {1, 2, 3};
        RawSend(fd, junk, sizeof(junk));
        ::close(fd);
      }
    }
    ExpectHealthyRoundTrip(server.get(), testing_util::PaperEncoded(),
                           SmallJobOptions());
    EXPECT_TRUE(WaitForZeroJobs(server.get(), 10.0));
    server->Shutdown();
    EXPECT_EQ(server->active_jobs(), 0);
    EXPECT_EQ(server->active_connections(), 0);
  }
  // Everything the server and its clients opened is closed again.
  const int fds_after = OpenFdCount();
  EXPECT_EQ(fds_after, fds_before);
}

}  // namespace
}  // namespace aod
