// The determinism contract of the parallel driver: DiscoverOds must
// produce bit-identical dependency lists and identical non-timing stats
// for ANY thread count — 1, 2 and 8 workers here — across validators,
// polarity modes and datasets (see ARCHITECTURE.md).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "flaky_channel.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"
#include "od/discovery.h"
#include "test_util.h"

namespace aod {
namespace {

void AppendDouble(std::string* out, double v) {
  char buf[48];
  // %a is exact (hex mantissa): two doubles fingerprint equal iff their
  // bit patterns are equal.
  std::snprintf(buf, sizeof(buf), "%a,", v);
  *out += buf;
}

void AppendInt(std::string* out, int64_t v) {
  *out += std::to_string(v);
  *out += ',';
}

/// Byte-exact serialization of everything the contract covers: the
/// kind-tagged dependency list in reported order with all payload fields
/// (removal rows included), plus every non-timing stats counter.
std::string Fingerprint(const DiscoveryResult& result) {
  std::string out;
  out += "deps:";
  for (const DiscoveredDependency& d : result.dependencies) {
    AppendInt(&out, static_cast<int64_t>(d.kind));
    AppendInt(&out, static_cast<int64_t>(d.context.bits()));
    AppendInt(&out, d.a);
    AppendInt(&out, d.b);
    AppendInt(&out, d.opposite ? 1 : 0);
    AppendDouble(&out, d.error);
    AppendInt(&out, d.removal_size);
    AppendInt(&out, d.level);
    AppendDouble(&out, d.interestingness);
    for (int32_t r : d.removal_rows) AppendInt(&out, r);
    out += ';';
  }
  const DiscoveryStats& s = result.stats;
  out += "stats:";
  AppendInt(&out, s.oc_candidates_validated);
  AppendInt(&out, s.ofd_candidates_validated);
  AppendInt(&out, s.fd_candidates_validated);
  AppendInt(&out, s.afd_candidates_validated);
  AppendInt(&out, s.oc_candidates_pruned);
  AppendInt(&out, s.nodes_processed);
  AppendInt(&out, s.partitions_computed);
  AppendInt(&out, s.levels_processed);
  for (int64_t v : s.ocs_per_level) AppendInt(&out, v);
  out += '|';
  for (int64_t v : s.ofds_per_level) AppendInt(&out, v);
  out += '|';
  for (int64_t v : s.fds_per_level) AppendInt(&out, v);
  out += '|';
  for (int64_t v : s.afds_per_level) AppendInt(&out, v);
  out += '|';
  for (int64_t v : s.nodes_per_level) AppendInt(&out, v);
  AppendInt(&out, result.timed_out ? 1 : 0);
  return out;
}

/// Same discovery idiom as shard_process_e2e_test: the runner binary
/// sits next to the test binary in the build root; AOD_SHARD_RUNNER
/// overrides. Empty when neither resolves (the process-transport leg of
/// the row-shard matrix is then skipped, matching the e2e suite).
std::string RunnerBinaryPath() {
  if (const char* env = std::getenv("AOD_SHARD_RUNNER")) return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  const std::string sibling =
      (std::filesystem::path(buf).parent_path() / "shard_runner_main")
          .string();
  return std::filesystem::exists(sibling) ? sibling : "";
}

struct DeterminismParam {
  const char* dataset;
  ValidatorKind validator;
  bool bidirectional;
};

class ParallelDeterminismTest
    : public ::testing::TestWithParam<DeterminismParam> {};

TEST_P(ParallelDeterminismTest, IdenticalAcrossThreadCounts) {
  const DeterminismParam& p = GetParam();
  Table t = std::string(p.dataset) == "flight"
                ? GenerateFlightTable(700, 8, 5)
                : GenerateNcVoterTable(500, 7, 11);
  EncodedTable enc = EncodeTable(t);

  DiscoveryOptions options;
  options.validator = p.validator;
  options.epsilon = 0.1;
  options.bidirectional = p.bidirectional;
  options.collect_removal_sets = true;

  options.num_threads = 1;
  DiscoveryResult serial = DiscoverOds(enc, options);
  EXPECT_EQ(serial.stats.threads_used, 1);
  const std::string expected = Fingerprint(serial);

  options.num_threads = 2;
  DiscoveryResult two = DiscoverOds(enc, options);
  EXPECT_EQ(two.stats.threads_used, 2);
  EXPECT_EQ(Fingerprint(two), expected);

  // 8 workers via an externally owned, reused pool (the options.pool
  // code path) — two calls on the same pool must both match.
  exec::ThreadPool pool(8);
  options.num_threads = 1;  // overridden by the pool
  options.pool = &pool;
  DiscoveryResult eight = DiscoverOds(enc, options);
  EXPECT_EQ(eight.stats.threads_used, 8);
  EXPECT_EQ(Fingerprint(eight), expected);
  DiscoveryResult again = DiscoverOds(enc, options);
  EXPECT_EQ(Fingerprint(again), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ParallelDeterminismTest,
    ::testing::Values(
        DeterminismParam{"flight", ValidatorKind::kExact, false},
        DeterminismParam{"flight", ValidatorKind::kExact, true},
        DeterminismParam{"flight", ValidatorKind::kIterative, false},
        DeterminismParam{"flight", ValidatorKind::kIterative, true},
        DeterminismParam{"flight", ValidatorKind::kOptimal, false},
        DeterminismParam{"flight", ValidatorKind::kOptimal, true},
        DeterminismParam{"ncvoter", ValidatorKind::kExact, false},
        DeterminismParam{"ncvoter", ValidatorKind::kExact, true},
        DeterminismParam{"ncvoter", ValidatorKind::kIterative, false},
        DeterminismParam{"ncvoter", ValidatorKind::kIterative, true},
        DeterminismParam{"ncvoter", ValidatorKind::kOptimal, false},
        DeterminismParam{"ncvoter", ValidatorKind::kOptimal, true}));

TEST(ParallelDeterminismTest, HardwareConcurrencyRequestMatchesSerial) {
  // num_threads = 0 ("use the hardware") must still honor the contract.
  Table t = GenerateFlightTable(400, 6, 21);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.15;
  options.num_threads = 1;
  std::string expected = Fingerprint(DiscoverOds(enc, options));
  options.num_threads = 0;
  DiscoveryResult hw = DiscoverOds(enc, options);
  EXPECT_EQ(hw.stats.threads_used,
            exec::ThreadPool::HardwareConcurrency());
  EXPECT_EQ(Fingerprint(hw), expected);
}

TEST(ParallelDeterminismTest, SamplingFilterIsThreadCountInvariant) {
  // The hybrid sampler fixes one row sample per run (seeded), so even the
  // heuristic fast-reject path must not depend on scheduling.
  Table t = GenerateFlightTable(600, 7, 31);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.enable_sampling_filter = true;
  options.sampler_config.sample_size = 128;
  options.num_threads = 1;
  std::string expected = Fingerprint(DiscoverOds(enc, options));
  options.num_threads = 8;
  EXPECT_EQ(Fingerprint(DiscoverOds(enc, options)), expected);
}

/// Output-only fingerprint (both dependency lists, all payload fields):
/// what must hold even across options that legitimately change product
/// counters, i.e. planner on/off and memory budgets.
std::string OutputFingerprint(const DiscoveryResult& result) {
  std::string full = Fingerprint(result);
  return full.substr(0, full.find("stats:"));
}

TEST(ParallelDeterminismTest, PlannerThreadsAndBudgetInvariance) {
  // The planner tentpole's contract: discovery output is bit-identical
  // across planner on/off, any thread count, and any partition memory
  // budget (including one tiny enough to force re-derivation every
  // level). Full stats determinism additionally holds across thread
  // counts within each configuration.
  Table t = GenerateNcVoterTable(600, 8, 17);
  EncodedTable enc = EncodeTable(t);

  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.collect_removal_sets = true;
  options.num_threads = 1;
  DiscoveryResult planned = DiscoverOds(enc, options);
  const std::string expected_full = Fingerprint(planned);
  const std::string expected_output = OutputFingerprint(planned);
  EXPECT_GT(planned.stats.planner_derivations, 0);

  options.num_threads = 4;
  EXPECT_EQ(Fingerprint(DiscoverOds(enc, options)), expected_full);
  options.num_threads = 0;  // hardware concurrency
  EXPECT_EQ(Fingerprint(DiscoverOds(enc, options)), expected_full);

  // Fixed rule: identical output; product schedule may differ.
  options.num_threads = 1;
  options.enable_derivation_planner = false;
  DiscoveryResult fixed = DiscoverOds(enc, options);
  EXPECT_EQ(OutputFingerprint(fixed), expected_output);
  EXPECT_EQ(fixed.stats.planner_derivations, 0);
  const std::string fixed_full = Fingerprint(fixed);
  options.num_threads = 4;
  EXPECT_EQ(Fingerprint(DiscoverOds(enc, options)), fixed_full);

  // A budget below the base footprint forces eviction (and on-demand
  // re-derivation) at every level boundary; output must not move, and
  // the full fingerprint must still be thread-count invariant.
  options.enable_derivation_planner = true;
  options.partition_memory_budget_bytes = 1;
  options.num_threads = 1;
  DiscoveryResult budgeted = DiscoverOds(enc, options);
  EXPECT_EQ(OutputFingerprint(budgeted), expected_output);
  EXPECT_GT(budgeted.stats.partitions_evicted, 0);
  EXPECT_GT(budgeted.stats.partition_bytes_evicted, 0);
  const std::string budgeted_full = Fingerprint(budgeted);
  options.num_threads = 4;
  EXPECT_EQ(Fingerprint(DiscoverOds(enc, options)), budgeted_full);
}

TEST(ParallelDeterminismTest, BudgetedRunMemoryStatsAreConsistent) {
  Table t = GenerateFlightTable(500, 8, 9);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.num_threads = 2;

  DiscoveryResult unlimited = DiscoverOds(enc, options);
  EXPECT_EQ(unlimited.stats.partitions_evicted, 0);
  EXPECT_EQ(unlimited.stats.partition_bytes_evicted, 0);
  EXPECT_GE(unlimited.stats.partition_bytes_peak,
            unlimited.stats.partition_bytes_final);

  // Budget halfway between floor and unlimited peak: some eviction must
  // happen, the peak must cover the final residency, and the evicted
  // bytes must account for the peak-vs-final gap together with eviction.
  options.partition_memory_budget_bytes =
      unlimited.stats.partition_bytes_peak / 2;
  DiscoveryResult budgeted = DiscoverOds(enc, options);
  EXPECT_EQ(OutputFingerprint(budgeted), OutputFingerprint(unlimited));
  EXPECT_GT(budgeted.stats.partitions_evicted, 0);
  EXPECT_GT(budgeted.stats.partition_bytes_evicted, 0);
  EXPECT_GE(budgeted.stats.partition_bytes_peak,
            budgeted.stats.partition_bytes_final);
  EXPECT_LE(budgeted.stats.partition_bytes_final,
            unlimited.stats.partition_bytes_final);
}

TEST(ParallelDeterminismTest, ShardedDiscoveryMatchesUnshardedBitExactly) {
  // The sharding tentpole's acceptance gate: num_shards ∈ {1,2,4,8} ×
  // thread counts {1,4,hw} — dependency output bit-identical to the
  // unsharded run, merge-side counters untouched by the wire crossing,
  // and the full fingerprint thread-count invariant within each shard
  // count (partition-side counters legitimately differ *between* shard
  // counts: derivation happens shard-locally).
  Table t = GenerateNcVoterTable(500, 7, 11);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.collect_removal_sets = true;
  options.num_threads = 1;
  DiscoveryResult unsharded = DiscoverOds(enc, options);
  const std::string expected_output = OutputFingerprint(unsharded);

  for (int shards : {1, 2, 4, 8}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    options.num_shards = shards;
    options.num_threads = 1;
    DiscoveryResult base = DiscoverOds(enc, options);
    EXPECT_EQ(base.stats.shards_used, shards);
    EXPECT_EQ(OutputFingerprint(base), expected_output);
    EXPECT_EQ(base.stats.oc_candidates_validated,
              unsharded.stats.oc_candidates_validated);
    EXPECT_EQ(base.stats.ofd_candidates_validated,
              unsharded.stats.ofd_candidates_validated);
    EXPECT_EQ(base.stats.oc_candidates_pruned,
              unsharded.stats.oc_candidates_pruned);
    EXPECT_EQ(base.stats.nodes_processed, unsharded.stats.nodes_processed);
    EXPECT_EQ(base.stats.levels_processed, unsharded.stats.levels_processed);
    EXPECT_GT(base.stats.shard_bytes_shipped, 0);
    ASSERT_EQ(base.stats.shard_bytes_per_shard.size(),
              static_cast<size_t>(shards));

    const std::string full = Fingerprint(base);
    const int64_t bytes_shipped = base.stats.shard_bytes_shipped;
    options.num_threads = 4;
    DiscoveryResult four = DiscoverOds(enc, options);
    EXPECT_EQ(Fingerprint(four), full);
    EXPECT_EQ(four.stats.shard_bytes_shipped, bytes_shipped);
    options.num_threads = 0;  // hardware concurrency
    DiscoveryResult hw = DiscoverOds(enc, options);
    EXPECT_EQ(Fingerprint(hw), full);
    EXPECT_EQ(hw.stats.shard_bytes_shipped, bytes_shipped);
  }
}

TEST(ParallelDeterminismTest, RowShardedDiscoveryMatchesUnshardedBitExactly) {
  // The row-sharding tentpole's acceptance gate: row_shards {1,2,4} ×
  // threads {1,4,hw} × transports {inproc,socket,process} × compression
  // {on,off} — the stitched bases are bit-identical to FromColumn, so
  // the *full* fingerprint (stats included) must equal the unsharded
  // run's: the row phase only adds its own byte-accounting counters,
  // which this test checks separately. Per-shard table bytes must shrink
  // as the shard count grows (each shard receives O(rows/row_shards)).
  Table t = GenerateNcVoterTable(400, 6, 11);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.collect_removal_sets = true;
  options.num_threads = 1;
  DiscoveryResult unsharded = DiscoverOds(enc, options);
  ASSERT_TRUE(unsharded.shard_status.ok());
  EXPECT_EQ(unsharded.stats.row_shards_used, 0);
  EXPECT_TRUE(unsharded.stats.row_shard_bytes_per_shard.empty());
  const std::string expected_full = Fingerprint(unsharded);

  const std::string runner = RunnerBinaryPath();
  std::vector<ShardTransport> transports = {ShardTransport::kInProcess,
                                            ShardTransport::kSocket};
  if (!runner.empty()) transports.push_back(ShardTransport::kProcess);
  options.shard_runner_path = runner;

  int64_t max_shard_bytes_at_1 = 0;
  for (int row_shards : {1, 2, 4}) {
    for (ShardTransport transport : transports) {
      for (bool compress : {true, false}) {
        SCOPED_TRACE("row_shards=" + std::to_string(row_shards) + " " +
                     ShardTransportToString(transport) +
                     (compress ? "" : " raw wire"));
        options.row_shards = row_shards;
        options.shard_transport = transport;
        options.shard_wire_compression = compress;
        for (int threads : {1, 4, 0}) {
          options.num_threads = threads;
          DiscoveryResult run = DiscoverOds(enc, options);
          ASSERT_TRUE(run.shard_status.ok())
              << "threads=" << threads << ": "
              << run.shard_status.ToString();
          EXPECT_EQ(Fingerprint(run), expected_full)
              << "threads=" << threads;
          EXPECT_EQ(run.stats.row_shards_used, row_shards);
          ASSERT_EQ(run.stats.row_shard_bytes_per_shard.size(),
                    static_cast<size_t>(row_shards));
          EXPECT_GT(run.stats.row_shard_bytes_shipped, 0);
          for (int64_t b : run.stats.row_shard_bytes_per_shard) {
            EXPECT_GT(b, 0);
          }
          if (compress) {
            EXPECT_LE(run.stats.row_shard_bytes_wire,
                      run.stats.row_shard_bytes_raw);
          } else {
            EXPECT_EQ(run.stats.row_shard_bytes_wire,
                      run.stats.row_shard_bytes_raw);
          }
          if (transport == ShardTransport::kInProcess && !compress &&
              threads == 1) {
            int64_t max_bytes = 0;
            for (int64_t b : run.stats.row_shard_bytes_per_shard) {
              max_bytes = std::max(max_bytes, b);
            }
            if (row_shards == 1) max_shard_bytes_at_1 = max_bytes;
            // O(table/row_shards): four shards each see well under half
            // of what the single shard saw.
            if (row_shards == 4) {
              EXPECT_LT(max_bytes, max_shard_bytes_at_1 / 2 + 64);
            }
          }
        }
      }
    }
  }
}

TEST(ParallelDeterminismTest, RowShardsComposeWithCandidateShards) {
  // The two sharding axes are orthogonal: a run that row-shards the base
  // partition build AND candidate-shards the traversal must reproduce
  // the plain candidate-sharded run's full fingerprint — the stitched
  // bases feed the coordinator's base frames bit-identically, so even
  // shard_bytes_shipped cannot move.
  Table t = GenerateNcVoterTable(400, 6, 11);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.collect_removal_sets = true;
  options.num_threads = 2;
  const std::string expected_output =
      OutputFingerprint(DiscoverOds(enc, options));

  options.num_shards = 2;
  DiscoveryResult sharded = DiscoverOds(enc, options);
  ASSERT_TRUE(sharded.shard_status.ok());
  EXPECT_EQ(OutputFingerprint(sharded), expected_output);

  options.row_shards = 2;
  DiscoveryResult both = DiscoverOds(enc, options);
  ASSERT_TRUE(both.shard_status.ok()) << both.shard_status.ToString();
  EXPECT_EQ(Fingerprint(both), Fingerprint(sharded));
  EXPECT_EQ(both.stats.shard_bytes_shipped,
            sharded.stats.shard_bytes_shipped);
  EXPECT_EQ(both.stats.row_shards_used, 2);
  EXPECT_GT(both.stats.row_shard_bytes_shipped, 0);
}

TEST(ParallelDeterminismTest, ShardedMatchesAcrossValidatorsAndPolarity) {
  Table t = GenerateFlightTable(400, 6, 5);
  EncodedTable enc = EncodeTable(t);
  for (ValidatorKind validator : {ValidatorKind::kExact,
                                  ValidatorKind::kIterative,
                                  ValidatorKind::kOptimal}) {
    DiscoveryOptions options;
    options.validator = validator;
    options.epsilon = 0.1;
    options.bidirectional = true;
    options.collect_removal_sets = true;
    options.num_threads = 2;
    const std::string expected =
        OutputFingerprint(DiscoverOds(enc, options));
    options.num_shards = 4;
    EXPECT_EQ(OutputFingerprint(DiscoverOds(enc, options)), expected)
        << ValidatorKindToString(validator);
  }
}

TEST(ParallelDeterminismTest, ShardedSamplingFilterMatchesUnsharded) {
  // Each shard runner instantiates its own sampler from the same seeded
  // config, so even heuristic fast-rejections are shard-count invariant.
  Table t = GenerateFlightTable(600, 7, 31);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.enable_sampling_filter = true;
  options.sampler_config.sample_size = 128;
  options.num_threads = 1;
  const std::string expected = OutputFingerprint(DiscoverOds(enc, options));
  options.num_shards = 4;
  options.num_threads = 4;
  EXPECT_EQ(OutputFingerprint(DiscoverOds(enc, options)), expected);
}

TEST(ParallelDeterminismTest, MixedKindRunsAreThreadAndShardInvariant) {
  // The platform dimension of the determinism matrix: FD/AFD candidates
  // ride the same plans, wire and merge as OC/OFD, so a mixed-kind run
  // must satisfy the exact contract the OD-only runs pin — identical
  // full fingerprint across threads {1,4,hw} × shards {0,2,4}, for the
  // fd+afd pair and for all four kinds at once.
  Table t = GenerateNcVoterTable(400, 6, 11);
  EncodedTable enc = EncodeTable(t);
  for (const char* spec : {"fd,afd", "oc,ofd,fd,afd"}) {
    SCOPED_TRACE(spec);
    DiscoveryOptions options;
    options.kinds = DependencyKindSet::Parse(spec).value();
    options.epsilon = 0.1;
    options.afd_error = 0.05;
    options.collect_removal_sets = true;
    options.num_threads = 1;
    DiscoveryResult serial = DiscoverOds(enc, options);
    const std::string expected = Fingerprint(serial);
    const std::string expected_output = OutputFingerprint(serial);

    for (int shards : {0, 2, 4}) {
      SCOPED_TRACE("num_shards=" + std::to_string(shards));
      options.num_shards = shards;
      for (int threads : {1, 4, 0}) {
        options.num_threads = threads;
        DiscoveryResult run = DiscoverOds(enc, options);
        ASSERT_TRUE(run.shard_status.ok()) << run.shard_status.ToString();
        EXPECT_EQ(OutputFingerprint(run), expected_output)
            << "threads=" << threads;
        if (shards == 0) {
          EXPECT_EQ(Fingerprint(run), expected) << "threads=" << threads;
        }
      }
    }
  }
}

TEST(ParallelDeterminismTest, MixedKindSocketAndCompressionInvariance) {
  // Transport × codec for non-OD kinds: the kind tag crosses the v4
  // wire in candidate and outcome frames; socket framing and the
  // delta/varint codecs must not perturb a single byte of the output.
  Table t = GenerateNcVoterTable(300, 6, 7);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.kinds = DependencyKindSet::All();
  options.epsilon = 0.1;
  options.afd_error = 0.05;
  options.num_threads = 2;
  const std::string expected = OutputFingerprint(DiscoverOds(enc, options));
  options.num_shards = 2;
  for (ShardTransport transport :
       {ShardTransport::kInProcess, ShardTransport::kSocket}) {
    SCOPED_TRACE(ShardTransportToString(transport));
    options.shard_transport = transport;
    for (bool compress : {true, false}) {
      options.shard_wire_compression = compress;
      DiscoveryResult run = DiscoverOds(enc, options);
      ASSERT_TRUE(run.shard_status.ok()) << run.shard_status.ToString();
      EXPECT_EQ(OutputFingerprint(run), expected)
          << "compression=" << compress;
    }
  }
}

TEST(ParallelDeterminismTest, InterestingnessScoresRankEveryDependency) {
  // The ranking layer's contract (and the end of interestingness.{h,cc}
  // as dead code): every emitted dependency of every kind carries a
  // score in [0, 1] (0 only for vacuous key-like contexts), the score is
  // a pure function of the dependency's context — so equal-context
  // dependencies tie exactly — and top-k selection over those scores is
  // thread- and shard-count invariant.
  Table t = GenerateNcVoterTable(400, 6, 13);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.kinds = DependencyKindSet::All();
  options.epsilon = 0.1;
  options.num_threads = 1;
  DiscoveryResult full = DiscoverOds(enc, options);
  ASSERT_GT(full.dependencies.size(), 8u);
  std::map<uint64_t, double> score_by_context;
  int64_t positive = 0;
  for (const DiscoveredDependency& d : full.dependencies) {
    EXPECT_GE(d.interestingness, 0.0) << d.ToString(enc);
    EXPECT_LE(d.interestingness, 1.0) << d.ToString(enc);
    if (d.interestingness > 0.0) ++positive;
    auto [it, inserted] =
        score_by_context.emplace(d.context.bits(), d.interestingness);
    if (!inserted) {
      EXPECT_EQ(it->second, d.interestingness)
          << "same context, different score: " << d.ToString(enc);
    }
  }
  EXPECT_GT(positive, 0);

  options.top_k = 8;
  options.num_threads = 1;
  const std::string expected = Fingerprint(DiscoverOds(enc, options));
  for (int threads : {4, 0}) {
    options.num_threads = threads;
    options.num_shards = 0;
    EXPECT_EQ(Fingerprint(DiscoverOds(enc, options)), expected)
        << "threads=" << threads;
    options.num_shards = 4;
    DiscoveryResult sharded = DiscoverOds(enc, options);
    ASSERT_TRUE(sharded.shard_status.ok());
    EXPECT_EQ(OutputFingerprint(sharded),
              expected.substr(0, expected.find("stats:")))
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, SocketTransportMatchesInProcessBitExactly) {
  // The off-box seam's determinism gate (transport dimension): the
  // localhost TCP transport — real length framing, partial reads,
  // writer threads — must reproduce the in-process transport's full
  // fingerprint (stats included) and the unsharded output, for every
  // shard count. Byte volume must match too: the same frames cross
  // either seam. The process transport variant lives in
  // shard_process_e2e_test (it needs the runner binary).
  Table t = GenerateNcVoterTable(400, 6, 11);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.collect_removal_sets = true;
  options.num_threads = 2;
  const std::string expected_output = OutputFingerprint(DiscoverOds(enc, options));

  for (int shards : {1, 2, 4}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    options.num_shards = shards;
    options.shard_transport = ShardTransport::kInProcess;
    DiscoveryResult inproc = DiscoverOds(enc, options);
    ASSERT_TRUE(inproc.shard_status.ok());
    options.shard_transport = ShardTransport::kSocket;
    DiscoveryResult socket = DiscoverOds(enc, options);
    ASSERT_TRUE(socket.shard_status.ok()) << socket.shard_status.ToString();
    EXPECT_EQ(Fingerprint(socket), Fingerprint(inproc));
    EXPECT_EQ(OutputFingerprint(socket), expected_output);
    EXPECT_EQ(socket.stats.shard_bytes_shipped,
              inproc.stats.shard_bytes_shipped);
    // Footer-fed partition counters arrived over either transport.
    EXPECT_EQ(socket.stats.partitions_computed,
              inproc.stats.partitions_computed);
    EXPECT_GT(socket.stats.partition_bytes_peak, 0);
  }
}

TEST(ParallelDeterminismTest, WireCompressionIsOutputInvariant) {
  // The codec dimension of the determinism matrix: the delta/varint
  // codecs are lossless and decode through the same validation gate as
  // raw frames, so the *full* fingerprint (stats included) must be
  // identical with compression on and off, for every transport and
  // shard count — compression is purely a bytes-vs-CPU knob. The byte
  // accounting must show it working: wire < raw when on (the shipped
  // partitions and batches compress on these shapes), wire == raw when
  // every codec is forced raw.
  Table t = GenerateNcVoterTable(400, 6, 11);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.collect_removal_sets = true;
  options.num_threads = 2;
  const std::string expected_output =
      OutputFingerprint(DiscoverOds(enc, options));

  for (ShardTransport transport :
       {ShardTransport::kInProcess, ShardTransport::kSocket}) {
    for (int shards : {1, 4}) {
      SCOPED_TRACE(std::string(ShardTransportToString(transport)) +
                   " num_shards=" + std::to_string(shards));
      options.shard_transport = transport;
      options.num_shards = shards;

      options.shard_wire_compression = true;
      DiscoveryResult compressed = DiscoverOds(enc, options);
      ASSERT_TRUE(compressed.shard_status.ok())
          << compressed.shard_status.ToString();
      EXPECT_EQ(OutputFingerprint(compressed), expected_output);
      EXPECT_LT(compressed.stats.shard_bytes_wire,
                compressed.stats.shard_bytes_raw);
      EXPECT_EQ(compressed.stats.shard_bytes_wire,
                compressed.stats.shard_bytes_shipped);
      EXPECT_FALSE(compressed.stats.shard_frame_bytes.empty());

      options.shard_wire_compression = false;
      DiscoveryResult raw = DiscoverOds(enc, options);
      ASSERT_TRUE(raw.shard_status.ok()) << raw.shard_status.ToString();
      EXPECT_EQ(Fingerprint(raw), Fingerprint(compressed));
      EXPECT_EQ(raw.stats.shard_bytes_wire, raw.stats.shard_bytes_raw);
      // Raw volume is codec-independent: both runs ship the same frames,
      // so the all-raw baseline they report must agree.
      EXPECT_EQ(raw.stats.shard_bytes_raw, compressed.stats.shard_bytes_raw);
      options.shard_wire_compression = true;
    }
  }
}

TEST(ParallelDeterminismTest, PassThroughFlakyDecoratorKeepsContract) {
  // The fault-injection decorator in pass-through mode is perfectly
  // transparent: the sharded determinism contract must hold unchanged
  // with every coordinator endpoint wrapped — the guarantee that the
  // fault-injection suite exercises the real pipeline, not a fork.
  Table t = GenerateNcVoterTable(300, 6, 17);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.collect_removal_sets = true;
  options.num_threads = 2;
  const std::string expected = OutputFingerprint(DiscoverOds(enc, options));

  options.num_shards = 2;
  options.shard_channel_decorator =
      [](std::unique_ptr<shard::ShardChannel> inner)
      -> std::unique_ptr<shard::ShardChannel> {
    return std::make_unique<testing_util::FlakyChannel>(
        std::move(inner), testing_util::FlakyChannel::Plan{});
  };
  for (ShardTransport transport :
       {ShardTransport::kInProcess, ShardTransport::kSocket}) {
    SCOPED_TRACE(ShardTransportToString(transport));
    options.shard_transport = transport;
    DiscoveryResult wrapped = DiscoverOds(enc, options);
    ASSERT_TRUE(wrapped.shard_status.ok())
        << wrapped.shard_status.ToString();
    EXPECT_EQ(OutputFingerprint(wrapped), expected);
  }
}

TEST(ParallelDeterminismTest, ShardedBudgetForcesEvictionWithoutOutputDrift) {
  // A tiny per-shard budget forces re-derivation after every batch; the
  // output must not move and the eviction stats must show it happened.
  Table t = GenerateNcVoterTable(400, 7, 23);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.num_threads = 2;
  const std::string expected = OutputFingerprint(DiscoverOds(enc, options));
  options.num_shards = 2;
  options.partition_memory_budget_bytes = 1;
  DiscoveryResult budgeted = DiscoverOds(enc, options);
  EXPECT_EQ(OutputFingerprint(budgeted), expected);
  EXPECT_GT(budgeted.stats.partitions_evicted, 0);
  EXPECT_GT(budgeted.stats.partition_bytes_evicted, 0);
}

TEST(ParallelDeterminismTest, BudgetExpiryStillFlagsTimeoutInParallel) {
  // Deadline checks now sit between candidate validations; a parallel
  // run must notice an expired budget and report a (possibly empty)
  // partial result rather than overshooting by a whole node.
  Table t = GenerateFlightTable(4000, 10, 3);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.validator = ValidatorKind::kIterative;
  options.epsilon = 0.1;
  options.time_budget_seconds = 1e-4;
  options.num_threads = 4;
  DiscoveryResult result = DiscoverOds(enc, options);
  EXPECT_TRUE(result.timed_out);
}

/// Invariants tying post-deadline stats to the reported (partial) result
/// set — what "coherent" means for a timed-out run.
void ExpectDeadlineCoherentStats(const DiscoveryResult& result) {
  const DiscoveryStats& s = result.stats;
  int64_t nodes = 0;
  for (int64_t v : s.nodes_per_level) nodes += v;
  EXPECT_EQ(s.nodes_processed, nodes);
  EXPECT_EQ(s.TotalOcs(), result.CountOfKind(DependencyKind::kOc));
  EXPECT_EQ(s.TotalOfds(), result.CountOfKind(DependencyKind::kOfd));
  EXPECT_LE(static_cast<int>(s.nodes_per_level.size()),
            s.levels_processed + 1);
  for (const DiscoveredDependency& d : result.dependencies) {
    EXPECT_LE(d.level, s.levels_processed);
  }
  // Counted candidates all belong to merged nodes, so the dependency
  // lists can never outnumber them.
  EXPECT_GE(s.oc_candidates_validated,
            result.CountOfKind(DependencyKind::kOc));
  EXPECT_GE(s.ofd_candidates_validated,
            result.CountOfKind(DependencyKind::kOfd));
}

TEST(ParallelDeterminismTest, DeadlineStatsStayCoherentWithPartialResults) {
  // Regression for the deadline_hit path: stats used to count a level's
  // nodes at level *entry*, so a deadline inside the level reported
  // nodes (and a level) the result set never contained.
  Table t = GenerateFlightTable(4000, 10, 3);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.validator = ValidatorKind::kIterative;
  options.epsilon = 0.1;

  // A budget smaller than any clock resolution expires before the first
  // planning chunk: the run must report *zero* of everything, not the
  // first level's node count.
  options.time_budget_seconds = 1e-9;
  for (int threads : {1, 4}) {
    options.num_threads = threads;
    DiscoveryResult result = DiscoverOds(enc, options);
    EXPECT_TRUE(result.timed_out);
    EXPECT_EQ(result.stats.nodes_processed, 0);
    EXPECT_EQ(result.stats.levels_processed, 0);
    EXPECT_EQ(result.stats.oc_candidates_validated, 0);
    EXPECT_EQ(result.stats.ofd_candidates_validated, 0);
    EXPECT_TRUE(result.dependencies.empty());
    ExpectDeadlineCoherentStats(result);
  }

  // A budget that lands mid-traversal: wherever the deadline hits, the
  // totals must describe exactly the merged prefix.
  options.time_budget_seconds = 0.02;
  for (int threads : {1, 4}) {
    options.num_threads = threads;
    ExpectDeadlineCoherentStats(DiscoverOds(enc, options));
  }
}

}  // namespace
}  // namespace aod
