// Tests for the discovery framework: lattice mechanics, end-to-end
// discovery on the paper's Table 1, soundness/minimality/completeness
// properties on random tables, validator-equivalence, stats and ranking.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/flight_generator.h"
#include "gen/random.h"
#include "od/discovery.h"
#include "od/lattice.h"
#include "od/ofd_validator.h"
#include "od/aoc_lis_validator.h"
#include "test_util.h"

namespace aod {
namespace {

using testing_util::NaivePartition;
using testing_util::OcHoldsNaive;
using testing_util::OfdHoldsNaive;

// --------------------------------------------------------------- Lattice --

TEST(LatticeTest, FirstLevel) {
  LatticeLevel l1 = LatticeLevel::MakeFirstLevel(4);
  EXPECT_EQ(l1.size(), 4);
  const LatticeNode* node = l1.Find(AttributeSet::Of({2}));
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->cc, AttributeSet::FullSet(4));
}

TEST(LatticeTest, GenerateNextJoinsPrefixBlocks) {
  LatticeLevel l1 = LatticeLevel::MakeFirstLevel(4);
  LatticeLevel l2 = l1.GenerateNext();
  EXPECT_EQ(l2.level(), 2);
  EXPECT_EQ(l2.size(), 6);  // C(4,2)
  LatticeLevel l3 = l2.GenerateNext();
  EXPECT_EQ(l3.size(), 4);  // C(4,3)
}

TEST(LatticeTest, DeletedNodeBlocksSupersets) {
  LatticeLevel l1 = LatticeLevel::MakeFirstLevel(3);
  l1.Erase(AttributeSet::Of({1}));
  LatticeLevel l2 = l1.GenerateNext();
  // Only {0,2} survives: {0,1} and {1,2} lack the subset {1}.
  EXPECT_EQ(l2.size(), 1);
  EXPECT_NE(l2.Find(AttributeSet::Of({0, 2})), nullptr);
}

TEST(LatticeTest, AttributePairNormalizesOrder) {
  EXPECT_EQ(AttributePair::Of(5, 2), (AttributePair{2, 5}));
  EXPECT_LT(AttributePair::Of(1, 2), AttributePair::Of(1, 3));
}

// -------------------------------------------------- Table 1 end-to-end --

class PaperDiscoveryTest : public ::testing::Test {
 protected:
  EncodedTable table_ = testing_util::PaperEncoded();
};

bool ContainsOc(const DiscoveryResult& result, AttributeSet ctx, int a,
                int b) {
  CanonicalOc want{ctx, a, b};
  const auto ocs = result.Ocs();
  return std::any_of(
      ocs.begin(), ocs.end(),
      [&](const DiscoveredDependency* d) { return d->Oc() == want; });
}

bool ContainsOfd(const DiscoveryResult& result, AttributeSet ctx, int a) {
  CanonicalOfd want{ctx, a};
  const auto ofds = result.Ofds();
  return std::any_of(
      ofds.begin(), ofds.end(),
      [&](const DiscoveredDependency* d) { return d->Ofd() == want; });
}

TEST_F(PaperDiscoveryTest, ExactDiscoveryFindsPaperDependencies) {
  DiscoveryOptions options;
  options.validator = ValidatorKind::kExact;
  DiscoveryResult result = DiscoverOds(table_, options);
  // {}: sal ~ taxGrp (Example 2.4).
  EXPECT_TRUE(ContainsOc(result, AttributeSet(), 2, 3));
  // {sal}: [] -> taxGrp.
  EXPECT_TRUE(ContainsOfd(result, AttributeSet::Of({2}), 3));
  // The dirty OC {}: sal ~ tax must NOT appear exactly.
  EXPECT_FALSE(ContainsOc(result, AttributeSet(), 2, 5));
  EXPECT_FALSE(result.timed_out);
}

TEST_F(PaperDiscoveryTest, ApproximateDiscoveryRecoversDirtyOc) {
  DiscoveryOptions options;
  options.validator = ValidatorKind::kOptimal;
  options.epsilon = 4.0 / 9.0;
  DiscoveryResult result = DiscoverOds(table_, options);
  // With eps = 4/9, sal ~ tax becomes discoverable (Example 2.15).
  ASSERT_TRUE(ContainsOc(result, AttributeSet(), 2, 5));
  const auto ocs = result.Ocs();
  auto it = std::find_if(ocs.begin(), ocs.end(),
                         [&](const DiscoveredDependency* d) {
                           return d->Oc() == CanonicalOc{AttributeSet(), 2, 5};
                         });
  EXPECT_NEAR((*it)->error, 4.0 / 9.0, 1e-9);
  EXPECT_EQ((*it)->removal_size, 4);
}

TEST_F(PaperDiscoveryTest, IterativeMissesBoundaryOc) {
  // Same threshold: the greedy validator overestimates 5/9 > 4/9 and
  // misses the OC — the incompleteness of the prior art.
  DiscoveryOptions options;
  options.validator = ValidatorKind::kIterative;
  options.epsilon = 4.0 / 9.0;
  DiscoveryResult result = DiscoverOds(table_, options);
  EXPECT_FALSE(ContainsOc(result, AttributeSet(), 2, 5));
}

TEST_F(PaperDiscoveryTest, ContextMinimalityOfReportedOcs) {
  DiscoveryOptions options;
  options.validator = ValidatorKind::kOptimal;
  options.epsilon = 0.2;
  DiscoveryResult result = DiscoverOds(table_, options);
  // No reported OC may have a valid strictly-smaller context.
  for (const DiscoveredDependency* d : result.Ocs()) {
    d->context.ForEach([&](int c) {
      AttributeSet sub = d->context.Without(c);
      StrippedPartition partition = NaivePartition(table_, sub);
      ValidationOutcome out =
          ValidateAocOptimal(table_, partition, d->a, d->b, options.epsilon,
                             table_.num_rows());
      EXPECT_FALSE(out.valid)
          << d->ToString(table_) << " is redundant via " << sub.ToString();
    });
  }
}

TEST_F(PaperDiscoveryTest, ZeroEpsilonOptimalEqualsExact) {
  DiscoveryOptions exact;
  exact.validator = ValidatorKind::kExact;
  DiscoveryOptions approx0;
  approx0.validator = ValidatorKind::kOptimal;
  approx0.epsilon = 0.0;
  DiscoveryResult re = DiscoverOds(table_, exact);
  DiscoveryResult ra = DiscoverOds(table_, approx0);
  const auto re_ocs = re.Ocs(), ra_ocs = ra.Ocs();
  const auto re_ofds = re.Ofds(), ra_ofds = ra.Ofds();
  ASSERT_EQ(re_ocs.size(), ra_ocs.size());
  ASSERT_EQ(re_ofds.size(), ra_ofds.size());
  for (size_t i = 0; i < re_ocs.size(); ++i) {
    EXPECT_TRUE(re_ocs[i]->Oc() == ra_ocs[i]->Oc());
  }
  for (size_t i = 0; i < re_ofds.size(); ++i) {
    EXPECT_TRUE(re_ofds[i]->Ofd() == ra_ofds[i]->Ofd());
  }
}

TEST_F(PaperDiscoveryTest, StatsAreConsistent) {
  DiscoveryOptions options;
  options.epsilon = 0.1;
  DiscoveryResult result = DiscoverOds(table_, options);
  const DiscoveryStats& s = result.stats;
  EXPECT_EQ(s.TotalOcs(), result.CountOfKind(DependencyKind::kOc));
  EXPECT_EQ(s.TotalOfds(), result.CountOfKind(DependencyKind::kOfd));
  EXPECT_GT(s.nodes_processed, 0);
  EXPECT_GT(s.levels_processed, 1);
  EXPECT_GT(s.oc_candidates_validated, 0);
  EXPECT_GT(s.total_seconds, 0.0);
  EXPECT_GE(s.OcValidationShare(), 0.0);
  EXPECT_LE(s.OcValidationShare(), 1.0);
  EXPECT_FALSE(s.ToString().empty());
  if (result.CountOfKind(DependencyKind::kOc) > 0) {
    EXPECT_GT(s.AverageOcLevel(), 0.0);
  }
}

TEST_F(PaperDiscoveryTest, SortByInterestingnessIsDescending) {
  DiscoveryOptions options;
  options.epsilon = 0.2;
  DiscoveryResult result = DiscoverOds(table_, options);
  result.SortByInterestingness();
  for (size_t i = 1; i < result.dependencies.size(); ++i) {
    EXPECT_GE(result.dependencies[i - 1].interestingness,
              result.dependencies[i].interestingness);
  }
  EXPECT_FALSE(result.Summary(table_).empty());
}

TEST_F(PaperDiscoveryTest, MaxLevelCapsTraversal) {
  DiscoveryOptions options;
  options.max_level = 2;
  options.epsilon = 0.1;
  DiscoveryResult result = DiscoverOds(table_, options);
  EXPECT_LE(result.stats.levels_processed, 2);
  for (const auto& d : result.dependencies) EXPECT_LE(d.level, 2);
}

TEST(DiscoveryTest, MaxLhsArityIsPrefixConsistent) {
  // The arity bound prunes whole lattice tails, but below the cutoff
  // nothing may change: a bounded run must report exactly the unbounded
  // dependencies whose context (LHS) has <= m attributes, with every
  // payload field bit-identical — the definition of a prefix-consistent
  // subset. Anything else would mean the bound leaked into candidate
  // generation or pruning below the cutoff.
  Table t = GenerateFlightTable(300, 6, 77);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.epsilon = 0.1;
  options.collect_removal_sets = true;
  DiscoveryResult unbounded = DiscoverOds(enc, options);

  auto oc_key = [](const DiscoveredDependency& d) {
    return std::to_string(d.context.bits()) + ":" + std::to_string(d.a) +
           ":" + std::to_string(d.b) + ":" + (d.opposite ? "1" : "0");
  };
  auto ofd_key = [](const DiscoveredDependency& d) {
    return std::to_string(d.context.bits()) + ":" + std::to_string(d.a);
  };
  auto arity = [](uint64_t context_bits) {
    return __builtin_popcountll(context_bits);
  };

  for (int m : {1, 2, 3}) {
    SCOPED_TRACE("max_lhs_arity=" + std::to_string(m));
    options.max_lhs_arity = m;
    DiscoveryResult bounded = DiscoverOds(enc, options);

    std::set<std::string> bounded_ocs;
    for (const DiscoveredDependency* d : bounded.Ocs()) {
      EXPECT_LE(arity(d->context.bits()), m) << oc_key(*d);
      bounded_ocs.insert(oc_key(*d));
    }
    std::set<std::string> bounded_ofds;
    for (const DiscoveredDependency* d : bounded.Ofds()) {
      EXPECT_LE(arity(d->context.bits()), m) << ofd_key(*d);
      bounded_ofds.insert(ofd_key(*d));
    }

    size_t expected_ocs = 0;
    for (const DiscoveredDependency* d : unbounded.Ocs()) {
      if (arity(d->context.bits()) > m) continue;
      ++expected_ocs;
      EXPECT_TRUE(bounded_ocs.count(oc_key(*d)))
          << "missing below the cutoff: " << oc_key(*d);
    }
    size_t expected_ofds = 0;
    for (const DiscoveredDependency* d : unbounded.Ofds()) {
      if (arity(d->context.bits()) > m) continue;
      ++expected_ofds;
      EXPECT_TRUE(bounded_ofds.count(ofd_key(*d)))
          << "missing below the cutoff: " << ofd_key(*d);
    }
    EXPECT_EQ(bounded.Ocs().size(), expected_ocs);
    EXPECT_EQ(bounded.Ofds().size(), expected_ofds);

    // Field-exact match for the surviving prefix, removal rows included.
    for (const DiscoveredDependency* b : bounded.Ocs()) {
      for (const DiscoveredDependency* u : unbounded.Ocs()) {
        if (oc_key(*u) != oc_key(*b)) continue;
        EXPECT_EQ(b->error, u->error);
        EXPECT_EQ(b->removal_size, u->removal_size);
        EXPECT_EQ(b->level, u->level);
        EXPECT_EQ(b->interestingness, u->interestingness);
        EXPECT_EQ(b->removal_rows, u->removal_rows);
      }
    }
  }

  // The bound composes with sharding: same prefix over the wire.
  options.max_lhs_arity = 2;
  DiscoveryResult bounded = DiscoverOds(enc, options);
  options.num_shards = 2;
  DiscoveryResult sharded = DiscoverOds(enc, options);
  ASSERT_TRUE(sharded.shard_status.ok());
  EXPECT_EQ(sharded.CountOfKind(DependencyKind::kOc),
            bounded.CountOfKind(DependencyKind::kOc));
  EXPECT_EQ(sharded.CountOfKind(DependencyKind::kOfd),
            bounded.CountOfKind(DependencyKind::kOfd));
}

TEST_F(PaperDiscoveryTest, CollectRemovalSets) {
  DiscoveryOptions options;
  options.epsilon = 0.2;
  options.collect_removal_sets = true;
  DiscoveryResult result = DiscoverOds(table_, options);
  for (const DiscoveredDependency* d : result.Ocs()) {
    EXPECT_EQ(static_cast<int64_t>(d->removal_rows.size()), d->removal_size);
  }
}

// ----------------------------------------------- soundness/completeness --

struct DiscoveryPropertyParam {
  uint64_t seed;
  int64_t rows;
  int cols;
  int64_t cardinality;
  double epsilon;
};

class DiscoveryPropertyTest
    : public ::testing::TestWithParam<DiscoveryPropertyParam> {};

TEST_P(DiscoveryPropertyTest, SoundMinimalAndComplete) {
  const auto& p = GetParam();
  EncodedTable t = testing_util::RandomEncodedTable(p.rows, p.cols,
                                                    p.cardinality, p.seed);
  DiscoveryOptions options;
  options.validator = ValidatorKind::kOptimal;
  options.epsilon = p.epsilon;
  DiscoveryResult result = DiscoverOds(t, options);

  auto oc_outcome = [&](AttributeSet ctx, int a, int b) {
    StrippedPartition partition = NaivePartition(t, ctx);
    ValidatorOptions vo;
    vo.early_exit = false;
    return ValidateAocOptimal(t, partition, a, b, 1.0, t.num_rows(), vo);
  };
  auto ofd_outcome = [&](AttributeSet ctx, int a) {
    StrippedPartition partition = NaivePartition(t, ctx);
    ValidatorOptions vo;
    vo.early_exit = false;
    return ValidateOfdApprox(t, partition, a, 1.0, t.num_rows(), vo);
  };
  auto oc_factor = [&](AttributeSet ctx, int a, int b) {
    return oc_outcome(ctx, a, b).approx_factor;
  };
  auto ofd_factor = [&](AttributeSet ctx, int a) {
    return ofd_outcome(ctx, a).approx_factor;
  };

  // Soundness: every reported dependency is valid at the threshold.
  for (const DiscoveredDependency* d : result.Ocs()) {
    EXPECT_LE(d->error, p.epsilon + 1e-9) << d->Oc().ToString();
    EXPECT_NEAR(oc_factor(d->context, d->a, d->b), d->error, 1e-9)
        << d->Oc().ToString();
  }
  for (const DiscoveredDependency* d : result.Ofds()) {
    EXPECT_LE(d->error, p.epsilon + 1e-9) << d->Ofd().ToString();
    EXPECT_NEAR(ofd_factor(d->context, d->a), d->error, 1e-9)
        << d->Ofd().ToString();
  }

  // Context minimality: no reported dependency holds in a sub-context.
  const int64_t max_rm = MaxRemovals(p.epsilon, t.num_rows());
  auto oc_valid = [&](AttributeSet ctx, int a, int b) {
    return oc_outcome(ctx, a, b).removal_size <= max_rm;
  };
  auto ofd_valid = [&](AttributeSet ctx, int a) {
    return ofd_outcome(ctx, a).removal_size <= max_rm;
  };
  for (const DiscoveredDependency* d : result.Ocs()) {
    d->context.ForEach([&](int c) {
      EXPECT_FALSE(oc_valid(d->context.Without(c), d->a, d->b))
          << "non-minimal " << d->Oc().ToString();
    });
  }
  for (const DiscoveredDependency* d : result.Ofds()) {
    d->context.ForEach([&](int c) {
      EXPECT_FALSE(ofd_valid(d->context.Without(c), d->a))
          << "non-minimal " << d->Ofd().ToString();
    });
  }

  // Completeness modulo the framework's redundancy axioms: every valid
  // candidate is reported, context-minimal-redundant, or excused by a
  // constancy-based pruning rule.
  const auto result_ocs = result.Ocs();
  const auto result_ofds = result.Ofds();
  auto reported_oc = [&](AttributeSet ctx, int a, int b) {
    CanonicalOc want{ctx, a, b};
    return std::any_of(
        result_ocs.begin(), result_ocs.end(),
        [&](const DiscoveredDependency* d) { return d->Oc() == want; });
  };
  auto reported_ofd = [&](AttributeSet ctx, int a) {
    CanonicalOfd want{ctx, a};
    return std::any_of(
        result_ofds.begin(), result_ofds.end(),
        [&](const DiscoveredDependency* d) { return d->Ofd() == want; });
  };
  // A constancy excuse for candidate with context `ctx` and sides
  // `sides`: some valid OFD whose context+target fit inside ctx ∪ sides.
  auto constancy_excuse = [&](AttributeSet ctx, AttributeSet sides) {
    AttributeSet scope = ctx.Union(sides);
    bool excused = false;
    // Enumerate sub-contexts of scope and targets in scope.
    for (uint64_t bits = 0;
         bits < (uint64_t{1} << t.num_columns()) && !excused; ++bits) {
      AttributeSet sub(bits);
      if (!scope.ContainsAll(sub)) continue;
      scope.Difference(sub).ForEach([&](int target) {
        if (!excused && ofd_valid(sub, target)) excused = true;
      });
    }
    return excused;
  };

  const int k = t.num_columns();
  for (uint64_t bits = 0; bits < (uint64_t{1} << k); ++bits) {
    AttributeSet ctx(bits);
    // OFD candidates.
    for (int a = 0; a < k; ++a) {
      if (ctx.Contains(a)) continue;
      if (!ofd_valid(ctx, a)) continue;
      bool minimal = true;
      ctx.ForEach([&](int c) {
        if (ofd_valid(ctx.Without(c), a)) minimal = false;
      });
      if (!minimal) continue;
      EXPECT_TRUE(reported_ofd(ctx, a) ||
                  constancy_excuse(ctx, AttributeSet::Of({a})))
          << "missing OFD " << CanonicalOfd{ctx, a}.ToString();
    }
    // OC candidates.
    for (int a = 0; a < k; ++a) {
      for (int b = a + 1; b < k; ++b) {
        if (ctx.Contains(a) || ctx.Contains(b)) continue;
        if (!oc_valid(ctx, a, b)) continue;
        bool minimal = true;
        ctx.ForEach([&](int c) {
          if (oc_valid(ctx.Without(c), a, b)) minimal = false;
        });
        if (!minimal) continue;
        EXPECT_TRUE(reported_oc(ctx, a, b) ||
                    constancy_excuse(ctx, AttributeSet::Of({a, b})))
            << "missing OC " << CanonicalOc{ctx, a, b}.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTables, DiscoveryPropertyTest,
    ::testing::Values(
        DiscoveryPropertyParam{401, 30, 4, 3, 0.1},
        DiscoveryPropertyParam{402, 40, 4, 4, 0.15},
        DiscoveryPropertyParam{403, 25, 5, 2, 0.1},
        DiscoveryPropertyParam{404, 50, 4, 5, 0.05},
        DiscoveryPropertyParam{405, 35, 5, 3, 0.2},
        DiscoveryPropertyParam{406, 20, 4, 3, 0.0}));

// -------------------------------------------- operational behaviours --

TEST(DiscoveryTest, TimeBudgetProducesPartialResult) {
  Table t = GenerateFlightTable(4000, 10, 3);
  EncodedTable enc = EncodeTable(t);
  DiscoveryOptions options;
  options.validator = ValidatorKind::kIterative;
  options.epsilon = 0.1;
  options.time_budget_seconds = 1e-4;  // practically instant expiry
  DiscoveryResult result = DiscoverOds(enc, options);
  EXPECT_TRUE(result.timed_out);
}

TEST(DiscoveryTest, ConstantColumnFoundAtLevelOne) {
  EncodedTable t = EncodedTableFromInts(
      {"konst", "x"}, {{7, 7, 7, 7}, {1, 2, 3, 1}});
  DiscoveryOptions options;
  options.validator = ValidatorKind::kExact;
  DiscoveryResult result = DiscoverOds(t, options);
  const auto ofds = result.Ofds();
  ASSERT_EQ(ofds.size(), 1u);
  EXPECT_TRUE(ofds[0]->Ofd() == (CanonicalOfd{AttributeSet(), 0}));
  EXPECT_EQ(ofds[0]->level, 1);
  // No OC involving the constant column is reported (trivially true).
  for (const DiscoveredDependency* d : result.Ocs()) {
    EXPECT_NE(d->a, 0);
    EXPECT_NE(d->b, 0);
  }
}

TEST(DiscoveryTest, KeyColumnPrunesTrivialOcs) {
  // c0 is a key: every {c0}-context OC is vacuous and must be pruned, not
  // reported.
  EncodedTable t = EncodedTableFromInts(
      {"key", "x", "y"},
      {{0, 1, 2, 3, 4, 5}, {3, 1, 4, 1, 5, 9}, {2, 7, 1, 8, 2, 8}});
  DiscoveryOptions options;
  options.epsilon = 0.0;
  options.validator = ValidatorKind::kOptimal;
  DiscoveryResult result = DiscoverOds(t, options);
  for (const DiscoveredDependency* d : result.Ocs()) {
    EXPECT_FALSE(d->context.Contains(0)) << d->ToString(t);
  }
  EXPECT_GT(result.stats.oc_candidates_pruned, 0);
}

TEST(DiscoveryTest, EmptyAndSingleRowTables) {
  EncodedTable empty = EncodedTableFromInts({"a", "b"}, {{}, {}});
  DiscoveryResult r1 = DiscoverOds(empty);
  // Vacuously, everything holds on <= 1 rows; the framework reports the
  // trivial constants at level 1 and prunes the rest.
  EncodedTable one = EncodedTableFromInts({"a", "b"}, {{5}, {6}});
  DiscoveryResult r2 = DiscoverOds(one);
  EXPECT_FALSE(r1.timed_out);
  EXPECT_FALSE(r2.timed_out);
}

TEST(DiscoveryTest, EpsilonMonotonicity) {
  // A larger threshold can only grow the set of valid candidates; since
  // pruning interacts, we check the weaker, still meaningful property
  // that every OC reported at eps=0 (exactly valid, minimal) is also
  // reported at a larger eps unless subsumed by a lower-level AOC.
  EncodedTable t = testing_util::RandomEncodedTable(60, 4, 4, 777);
  DiscoveryOptions small;
  small.epsilon = 0.0;
  DiscoveryOptions big;
  big.epsilon = 0.3;
  DiscoveryResult rs = DiscoverOds(t, small);
  DiscoveryResult rb = DiscoverOds(t, big);
  const auto rb_ocs = rb.Ocs();
  for (const DiscoveredDependency* d : rs.Ocs()) {
    bool reported = std::any_of(
        rb_ocs.begin(), rb_ocs.end(),
        [&](const DiscoveredDependency* x) { return x->Oc() == d->Oc(); });
    bool subsumed = false;
    for (const DiscoveredDependency* x : rb_ocs) {
      if (x->a == d->a && x->b == d->b &&
          d->context.ContainsAll(x->context) && !(x->Oc() == d->Oc())) {
        subsumed = true;
      }
    }
    // Or excused by an approximate OFD that makes it trivial.
    bool constancy = false;
    for (const DiscoveredDependency* f : rb.Ofds()) {
      AttributeSet scope = d->context.Union(AttributeSet::Of({d->a, d->b}));
      if (scope.ContainsAll(f->context.With(f->a))) constancy = true;
    }
    EXPECT_TRUE(reported || subsumed || constancy) << d->ToString(t);
  }
}

TEST(DiscoveryDeathTest, RejectsBadEpsilon) {
  EncodedTable t = testing_util::RandomEncodedTable(5, 2, 2, 1);
  DiscoveryOptions options;
  options.epsilon = 1.5;
  EXPECT_DEATH(DiscoverOds(t, options), "epsilon");
}

TEST(ValidatorKindTest, Names) {
  EXPECT_STREQ(ValidatorKindToString(ValidatorKind::kExact), "OD (exact)");
  EXPECT_STREQ(ValidatorKindToString(ValidatorKind::kIterative),
               "AOD (iterative)");
  EXPECT_STREQ(ValidatorKindToString(ValidatorKind::kOptimal),
               "AOD (optimal)");
}

}  // namespace
}  // namespace aod
