// Edge-case and adversarial-input coverage across the whole stack:
// degenerate tables, ties and duplicates everywhere, null-heavy columns,
// non-finite numeric text, boundary attribute counts, crafted lattices
// exercising individual pruning rules, and golden regression counts for
// the dataset simulators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"
#include "data/csv_parser.h"
#include "data/encoder.h"
#include "gen/dataset_generator.h"
#include "gen/flight_generator.h"
#include "gen/ncvoter_generator.h"
#include "gen/random.h"
#include "od/aoc_iterative_validator.h"
#include "od/aoc_lis_validator.h"
#include "od/discovery.h"
#include "od/oc_validator.h"
#include "od/ofd_validator.h"
#include "partition/partition_cache.h"
#include "test_util.h"

namespace aod {
namespace {

// ------------------------------------------------ degenerate relations --

TEST(DegenerateTableTest, TwoRowTables) {
  // Every OC/OFD behaviour on the smallest non-trivial relation.
  EncodedTable swapped = EncodedTableFromInts({"a", "b"}, {{1, 2}, {2, 1}});
  auto whole = StrippedPartition::WholeRelation(2);
  EXPECT_FALSE(ValidateOcExact(swapped, whole, 0, 1));
  EXPECT_EQ(ValidateAocOptimal(swapped, whole, 0, 1, 1.0, 2).removal_size,
            1);
  EXPECT_EQ(
      ValidateAocIterative(swapped, whole, 0, 1, 1.0, 2).removal_size, 1);
  EXPECT_TRUE(ValidateOcExact(swapped, whole, 0, 1, /*opposite=*/true));

  EncodedTable ordered = EncodedTableFromInts({"a", "b"}, {{1, 2}, {1, 2}});
  EXPECT_TRUE(ValidateOcExact(ordered, whole, 0, 1));
}

TEST(DegenerateTableTest, AllValuesIdentical) {
  EncodedTable t =
      EncodedTableFromInts({"a", "b"}, {{5, 5, 5, 5}, {7, 7, 7, 7}});
  auto whole = StrippedPartition::WholeRelation(4);
  EXPECT_TRUE(ValidateOcExact(t, whole, 0, 1));
  EXPECT_TRUE(ValidateOfdExact(t, whole, 0));
  EXPECT_TRUE(ValidateOfdExact(t, whole, 1));
  DiscoveryResult result = DiscoverOds(t, {});
  // Both columns are constants: two level-1 OFDs and nothing else.
  EXPECT_EQ(result.CountOfKind(DependencyKind::kOfd), 2);
  EXPECT_EQ(result.CountOfKind(DependencyKind::kOc), 0);
}

TEST(DegenerateTableTest, SingleColumnTable) {
  EncodedTable t = EncodedTableFromInts({"only"}, {{3, 1, 2}});
  DiscoveryResult result = DiscoverOds(t, {});
  EXPECT_TRUE(result.dependencies.empty());  // not constant
}

TEST(DegenerateTableTest, MaximallyTiedPair) {
  // a constant, b a key: OC holds trivially in one direction of
  // reasoning but is *pruned*, not reported, because a is constant.
  EncodedTable t = EncodedTableFromInts(
      {"konst", "key"}, {{1, 1, 1, 1}, {4, 3, 2, 1}});
  auto whole = StrippedPartition::WholeRelation(4);
  EXPECT_TRUE(ValidateOcExact(t, whole, 0, 1));
  DiscoveryResult result = DiscoverOds(t, {});
  EXPECT_EQ(result.CountOfKind(DependencyKind::kOc), 0);
  ASSERT_EQ(result.CountOfKind(DependencyKind::kOfd), 1);  // {}: [] -> konst
}

// -------------------------------------------------------------- nulls --

TEST(NullHandlingTest, NullsActAsSmallestValue) {
  Column a("a", DataType::kInt64);
  Column b("b", DataType::kInt64);
  // Row 0: (null, 1); row 1: (5, 2); row 2: (7, 3).
  a.AppendNull();
  a.AppendInt(5);
  a.AppendInt(7);
  b.AppendInt(1);
  b.AppendInt(2);
  b.AppendInt(3);
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  Table raw(schema);
  raw.AppendRow({Value::Null(), Value(int64_t{1})});
  raw.AppendRow({Value(int64_t{5}), Value(int64_t{2})});
  raw.AppendRow({Value(int64_t{7}), Value(int64_t{3})});
  EncodedTable t = EncodeTable(raw);
  auto whole = StrippedPartition::WholeRelation(3);
  // With nulls-first semantics the pair is perfectly ordered.
  EXPECT_TRUE(ValidateOcExact(t, whole, 0, 1));
}

TEST(NullHandlingTest, NullGroupFormsOneEquivalenceClass) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  Table raw(schema);
  raw.AppendRow({Value::Null(), Value(int64_t{1})});
  raw.AppendRow({Value::Null(), Value(int64_t{1})});
  raw.AppendRow({Value(int64_t{3}), Value(int64_t{9})});
  EncodedTable t = EncodeTable(raw);
  auto p = StrippedPartition::FromColumn(t.column(0));
  ASSERT_EQ(p.num_classes(), 1);  // the two null rows
  EXPECT_TRUE(ValidateOfdExact(t, p, 1));  // b constant among nulls
}

TEST(NullHandlingTest, NonFiniteNumericTextRejected) {
  EXPECT_FALSE(ParseDouble("nan").has_value());
  EXPECT_FALSE(ParseDouble("inf").has_value());
  EXPECT_FALSE(ParseDouble("-inf").has_value());
  EXPECT_FALSE(ParseDouble("NaN").has_value());
  // Via CSV they become nulls rather than poisoning the sort order.
  auto t = ParseCsv("x\n1.5\nnan\n2.5\n").value();
  EXPECT_EQ(t.schema().field(0).type, DataType::kDouble);
  EXPECT_TRUE(t.GetValue(1, 0).is_null());
}

// -------------------------------------------- boundary attribute count --

TEST(BoundaryTest, SixtyFourAttributeSets) {
  AttributeSet full = AttributeSet::FullSet(64);
  EXPECT_EQ(full.size(), 64);
  EXPECT_TRUE(full.Contains(63));
  AttributeSet without = full.Without(63);
  EXPECT_EQ(without.size(), 63);
  EXPECT_EQ(full.Difference(without), AttributeSet::Of({63}));
  // Iteration order still ascending at the boundary.
  std::vector<int> attrs = AttributeSet::Of({0, 31, 32, 63}).ToVector();
  EXPECT_EQ(attrs, (std::vector<int>{0, 31, 32, 63}));
}

TEST(BoundaryTest, DiscoveryAtMaxSupportedWidthLevelCapped) {
  // 64 attributes is the hard cap; run level-capped discovery there.
  std::vector<std::string> names;
  std::vector<std::vector<int64_t>> cols;
  Rng rng(64);
  for (int c = 0; c < 64; ++c) {
    names.push_back("c" + std::to_string(c));
    std::vector<int64_t> col;
    for (int r = 0; r < 30; ++r) col.push_back(rng.UniformInt(0, 3));
    cols.push_back(std::move(col));
  }
  EncodedTable t = EncodedTableFromInts(names, cols);
  DiscoveryOptions options;
  options.max_level = 2;
  options.epsilon = 0.05;
  DiscoveryResult result = DiscoverOds(t, options);
  EXPECT_LE(result.stats.levels_processed, 2);
  EXPECT_FALSE(result.timed_out);
}

// --------------------------------------------- crafted pruning lattices --

TEST(PruningTest, ExactChainStopsLatticeEarly) {
  // c = f(b), b = f(a) as exact monotone chains: everything interesting
  // resolves at level 2 and the lattice must not climb past level 3.
  EncodedTable t = EncodedTableFromInts(
      {"a", "b", "c"},
      {{0, 1, 2, 3, 4, 5, 6, 7}, {0, 0, 1, 1, 2, 2, 3, 3},
       {0, 0, 0, 0, 1, 1, 1, 1}});
  DiscoveryOptions options;
  options.validator = ValidatorKind::kExact;
  DiscoveryResult result = DiscoverOds(t, options);
  EXPECT_LE(result.stats.levels_processed, 3);
  // a ~ b, a ~ c, b ~ c all hold with empty context.
  EXPECT_EQ(result.stats.ocs_per_level.size() > 2
                ? result.stats.ocs_per_level[2]
                : 0,
            3);
}

TEST(PruningTest, OfdMinimalityPruning) {
  // {a}: [] -> c holds. Then {a, b}: [] -> c must not be reported (TANE
  // minimality), even though it also "holds".
  EncodedTable t = EncodedTableFromInts(
      {"a", "b", "c"},
      {{0, 0, 1, 1, 2, 2}, {0, 1, 0, 1, 0, 1}, {7, 7, 8, 8, 9, 9}});
  DiscoveryResult result = DiscoverOds(t, {});
  bool minimal_found = false;
  for (const DiscoveredDependency* d : result.Ofds()) {
    if (d->a == 2) {
      EXPECT_EQ(d->context, AttributeSet::Of({0}))
          << "non-minimal OFD " << d->Ofd().ToString();
      if (d->context == AttributeSet::Of({0})) minimal_found = true;
    }
  }
  EXPECT_TRUE(minimal_found);
}

TEST(PruningTest, TrivialOcViaConstancyIsPruned) {
  // a and c determine each other ({c}: [] -> a and {a}: [] -> c both
  // hold), which empties C_c+({a,c}). At node {a,b,c} the candidate-set
  // rule must then prune the pairs (a,b) and (b,c) — their OCs are
  // redundant with smaller contexts — without touching the data.
  EncodedTable t = EncodedTableFromInts(
      {"a", "b", "c"},
      {{0, 0, 1, 1, 2, 2}, {1, 0, 1, 0, 2, 2}, {9, 9, 4, 4, 7, 7}});
  DiscoveryOptions options;
  options.epsilon = 0.0;
  DiscoveryResult result = DiscoverOds(t, options);
  EXPECT_EQ(result.stats.oc_candidates_pruned, 2);
  // Nothing with a or c as a side in a nonempty context may be reported:
  // all such candidates are redundant here.
  for (const DiscoveredDependency* d : result.Ocs()) {
    EXPECT_TRUE(d->context.empty()) << d->Oc().ToString();
  }
}

// ----------------------------------------- iterative-vs-optimal corpus --

TEST(MotifTest, PaperMotifGreedyGapIsExactlyOneTuplePerBlock) {
  // The kClusteredErrors motif block is the paper's Example 3.1 pattern:
  // optimal removes 4 per block, greedy 5 — verify on one pure block.
  std::vector<int64_t> base{0, 1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int64_t> motif{6, 8, 0, 14, 2, 17, 4, 10, 16};
  EncodedTable t = EncodedTableFromInts({"a", "b"}, {base, motif});
  auto whole = StrippedPartition::WholeRelation(9);
  ValidatorOptions full;
  full.early_exit = false;
  EXPECT_EQ(ValidateAocOptimal(t, whole, 0, 1, 1.0, 9, full).removal_size,
            4);
  EXPECT_EQ(
      ValidateAocIterative(t, whole, 0, 1, 1.0, 9, full).removal_size, 5);
}

TEST(MotifTest, ClusteredErrorsFactorsMatchTheFormula) {
  // With a distinct-valued base, e_true = (4*motif + flip)/9 and
  // e_greedy = (5*motif + flip)/9.
  Table raw = GenerateTable(
      {{.name = "base", .kind = ColumnKind::kSequentialKey},
       {.name = "derived", .kind = ColumnKind::kClusteredErrors,
        .base_column = 0, .flip_rate = 0.3, .motif_rate = 0.2}},
      18000, 11);
  EncodedTable t = EncodeTable(raw);
  auto whole = StrippedPartition::WholeRelation(t.num_rows());
  ValidatorOptions full;
  full.early_exit = false;
  double opt = ValidateAocOptimal(t, whole, 0, 1, 1.0, t.num_rows(), full)
                   .approx_factor;
  double greedy =
      ValidateAocIterative(t, whole, 0, 1, 1.0, t.num_rows(), full)
          .approx_factor;
  EXPECT_NEAR(opt, (4 * 0.2 + 0.3) / 9.0, 0.01);
  EXPECT_NEAR(greedy, (5 * 0.2 + 0.3) / 9.0, 0.01);
}

// ------------------------------------------------- epsilon boundaries --

TEST(EpsilonBoundaryTest, EpsilonOneAcceptsEverything) {
  EncodedTable t = testing_util::RandomEncodedTable(40, 3, 4, 55);
  auto whole = StrippedPartition::WholeRelation(40);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_TRUE(ValidateAocOptimal(t, whole, a, b, 1.0, 40).valid);
      EXPECT_TRUE(ValidateAocIterative(t, whole, a, b, 1.0, 40).valid);
    }
  }
}

TEST(EpsilonBoundaryTest, ExactBoundaryIsInclusive) {
  // removal = 2 of 8 rows: factor 0.25 must be valid at eps = 0.25.
  EncodedTable t = EncodedTableFromInts(
      {"a", "b"},
      {{0, 1, 2, 3, 4, 5, 6, 7}, {7, 1, 2, 3, 4, 5, 6, 0}});
  auto whole = StrippedPartition::WholeRelation(8);
  ValidationOutcome out = ValidateAocOptimal(t, whole, 0, 1, 0.25, 8);
  ASSERT_EQ(out.removal_size, 2);
  EXPECT_TRUE(out.valid);
  EXPECT_FALSE(ValidateAocOptimal(t, whole, 0, 1, 0.24, 8).valid);
}

// ------------------------------------------------ simulator regression --

TEST(GoldenRegressionTest, FlightDiscoveryCountsArePinned) {
  // Deterministic generators + deterministic discovery: pin the counts
  // so accidental behaviour changes surface as test diffs.
  Table raw = GenerateFlightTable(3000, 8, 42);
  EncodedTable t = EncodeTable(raw);
  DiscoveryOptions options;
  options.epsilon = 0.10;
  DiscoveryResult result = DiscoverOds(t, options);
  DiscoveryResult again = DiscoverOds(t, options);
  const auto r_ocs = result.Ocs(), a_ocs = again.Ocs();
  EXPECT_EQ(r_ocs.size(), a_ocs.size());
  EXPECT_EQ(result.CountOfKind(DependencyKind::kOfd),
            again.CountOfKind(DependencyKind::kOfd));
  for (size_t i = 0; i < r_ocs.size(); ++i) {
    EXPECT_TRUE(r_ocs[i]->Oc() == a_ocs[i]->Oc());
    EXPECT_EQ(r_ocs[i]->removal_size, a_ocs[i]->removal_size);
  }
}

TEST(GoldenRegressionTest, SimulatorsAreSeedSensitive) {
  Table a = GenerateFlightTable(100, 10, 1);
  Table b = GenerateFlightTable(100, 10, 2);
  int differing = 0;
  for (int64_t r = 0; r < 100; ++r) {
    if (!(a.GetValue(r, 4) == b.GetValue(r, 4))) ++differing;
  }
  EXPECT_GT(differing, 50);
}

// --------------------------------------------- cache under discovery --

TEST(CacheBehaviorTest, EvictionNeverBreaksDeepDiscovery) {
  // A table engineered to reach level 5+ so eviction paths execute.
  Rng rng(77);
  std::vector<std::vector<int64_t>> cols(6);
  std::vector<std::string> names;
  for (int c = 0; c < 6; ++c) {
    names.push_back("c" + std::to_string(c));
    for (int r = 0; r < 120; ++r) {
      cols[static_cast<size_t>(c)].push_back(rng.UniformInt(0, 2));
    }
  }
  EncodedTable t = EncodedTableFromInts(names, cols);
  DiscoveryOptions options;
  options.epsilon = 0.02;
  DiscoveryResult result = DiscoverOds(t, options);
  EXPECT_GE(result.stats.levels_processed, 4);
  EXPECT_FALSE(result.timed_out);
}

}  // namespace
}  // namespace aod
