// Tests for src/algo: LNDS/LIS, Fenwick trees, inversion counting.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "algo/fenwick.h"
#include "algo/inversions.h"
#include "algo/lnds.h"
#include "gen/random.h"
#include "test_util.h"

namespace aod {
namespace {

// -------------------------------------------------------------- Fenwick --

TEST(FenwickTest, PointUpdatesAndPrefixSums) {
  FenwickTree t(10);
  t.Add(0, 3);
  t.Add(4, 2);
  t.Add(9, 5);
  EXPECT_EQ(t.PrefixSum(0), 3);
  EXPECT_EQ(t.PrefixSum(3), 3);
  EXPECT_EQ(t.PrefixSum(4), 5);
  EXPECT_EQ(t.PrefixSum(9), 10);
  EXPECT_EQ(t.RangeSum(1, 4), 2);
  EXPECT_EQ(t.RangeSum(5, 8), 0);
  EXPECT_EQ(t.RangeSum(7, 3), 0);  // empty range
  EXPECT_EQ(t.Total(), 10);
}

TEST(FenwickTest, NegativePrefixIndexIsZero) {
  FenwickTree t(4);
  t.Add(0, 1);
  EXPECT_EQ(t.PrefixSum(-1), 0);
}

TEST(FenwickTest, ResetClears) {
  FenwickTree t(4);
  t.Add(2, 7);
  t.Reset();
  EXPECT_EQ(t.Total(), 0);
}

TEST(FenwickTest, MatchesNaivePrefixSums) {
  Rng rng(99);
  const int n = 64;
  FenwickTree t(n);
  std::vector<int64_t> ref(n, 0);
  for (int step = 0; step < 500; ++step) {
    int i = static_cast<int>(rng.UniformInt(0, n - 1));
    int64_t d = rng.UniformInt(-5, 5);
    t.Add(i, d);
    ref[static_cast<size_t>(i)] += d;
    int q = static_cast<int>(rng.UniformInt(0, n - 1));
    int64_t expect = std::accumulate(ref.begin(), ref.begin() + q + 1,
                                     int64_t{0});
    ASSERT_EQ(t.PrefixSum(q), expect);
  }
}

// ----------------------------------------------------------------- LNDS --

TEST(LndsTest, PaperExample32) {
  // Example 3.2: tax projection after sorting Table 1 by [sal, tax]:
  // [2, 2.5, 0.3, 12, 1.5, 16.5, 1.8, 7.2, 16] (in K). Using x10 ints.
  std::vector<int32_t> tax = {20, 25, 3, 120, 15, 165, 18, 72, 160};
  EXPECT_EQ(LndsLength(tax), 5);  // [0.3, 1.5, 1.8, 7.2, 16]
  std::vector<int32_t> kept = LndsIndices(tax);
  ASSERT_EQ(kept.size(), 5u);
  // The removed positions are {0, 1, 3, 5} = tuples t1, t2, t4, t6.
  EXPECT_EQ(LndsComplement(tax), (std::vector<int32_t>{0, 1, 3, 5}));
}

TEST(LndsTest, EmptyAndSingleton) {
  EXPECT_EQ(LndsLength({}), 0);
  EXPECT_TRUE(LndsIndices({}).empty());
  EXPECT_EQ(LndsLength({7}), 1);
  EXPECT_EQ(LndsIndices({7}), (std::vector<int32_t>{0}));
}

TEST(LndsTest, AllEqualIsNonDecreasing) {
  std::vector<int32_t> xs(10, 5);
  EXPECT_EQ(LndsLength(xs), 10);
  EXPECT_TRUE(LndsComplement(xs).empty());
}

TEST(LndsTest, StrictlyDecreasingKeepsOne) {
  EXPECT_EQ(LndsLength({5, 4, 3, 2, 1}), 1);
  EXPECT_EQ(LndsComplement({5, 4, 3, 2, 1}).size(), 4u);
}

TEST(LndsTest, NonDecreasingVsStrictlyIncreasing) {
  std::vector<int32_t> xs = {1, 2, 2, 3, 3, 3};
  EXPECT_EQ(LndsLength(xs), 6);
  EXPECT_EQ(LisLength(xs), 3);
}

TEST(LisTest, ClassicCases) {
  EXPECT_EQ(LisLength({10, 9, 2, 5, 3, 7, 101, 18}), 4);
  std::vector<int32_t> kept = LisIndices({10, 9, 2, 5, 3, 7, 101, 18});
  EXPECT_EQ(kept.size(), 4u);
  // Verify the reconstruction is strictly increasing in value & position.
  std::vector<int32_t> xs = {10, 9, 2, 5, 3, 7, 101, 18};
  for (size_t i = 1; i < kept.size(); ++i) {
    EXPECT_LT(kept[i - 1], kept[i]);
    EXPECT_LT(xs[static_cast<size_t>(kept[i - 1])],
              xs[static_cast<size_t>(kept[i])]);
  }
}

TEST(LndsByTest, GenericMatchesSpecialized) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    int n = static_cast<int>(rng.UniformInt(0, 60));
    std::vector<int32_t> xs;
    for (int i = 0; i < n; ++i) {
      xs.push_back(static_cast<int32_t>(rng.UniformInt(0, 12)));
    }
    auto generic = LndsIndicesBy(
        static_cast<int32_t>(xs.size()), [&](int32_t a, int32_t b) {
          return xs[static_cast<size_t>(a)] <= xs[static_cast<size_t>(b)];
        });
    ASSERT_EQ(static_cast<int64_t>(generic.size()), LndsLength(xs));
    for (size_t i = 1; i < generic.size(); ++i) {
      ASSERT_LT(generic[i - 1], generic[i]);
      ASSERT_LE(xs[static_cast<size_t>(generic[i - 1])],
                xs[static_cast<size_t>(generic[i])]);
    }
  }
}

// Property suite: LNDS against the O(m^2) DP oracle; reconstruction is a
// valid non-decreasing subsequence of maximal length.
class LndsPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, int>> {};

TEST_P(LndsPropertyTest, MatchesQuadraticOracle) {
  auto [seed, n, cardinality] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int32_t> xs;
    for (int i = 0; i < n; ++i) {
      xs.push_back(static_cast<int32_t>(rng.UniformInt(0, cardinality - 1)));
    }
    int64_t expect = testing_util::LndsLengthNaive(xs);
    ASSERT_EQ(LndsLength(xs), expect);

    std::vector<int32_t> kept = LndsIndices(xs);
    ASSERT_EQ(static_cast<int64_t>(kept.size()), expect);
    for (size_t i = 1; i < kept.size(); ++i) {
      ASSERT_LT(kept[i - 1], kept[i]) << "positions must ascend";
      ASSERT_LE(xs[static_cast<size_t>(kept[i - 1])],
                xs[static_cast<size_t>(kept[i])])
          << "values must be non-decreasing";
    }
    std::vector<int32_t> removed = LndsComplement(xs);
    ASSERT_EQ(removed.size() + kept.size(), xs.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LndsPropertyTest,
    ::testing::Combine(::testing::Values<uint64_t>(11, 22, 33),
                       ::testing::Values(1, 5, 40, 120),
                       ::testing::Values(2, 8, 1000)));

// ------------------------------------------------------------ Inversions --

TEST(InversionsTest, SimpleCases) {
  EXPECT_EQ(CountInversions({}), 0);
  EXPECT_EQ(CountInversions({1}), 0);
  EXPECT_EQ(CountInversions({1, 2, 3}), 0);
  EXPECT_EQ(CountInversions({3, 2, 1}), 3);
  EXPECT_EQ(CountInversions({2, 2, 2}), 0);  // ties are not inversions
  EXPECT_EQ(CountInversions({2, 1, 2, 1}), 3);
}

TEST(InversionsTest, PerElementSimple) {
  // xs = [3, 1, 2]: inversions (0,1), (0,2).
  EXPECT_EQ(PerElementInversions({3, 1, 2}),
            (std::vector<int64_t>{2, 1, 1}));
  EXPECT_EQ(PerElementInversions({}), (std::vector<int64_t>{}));
  EXPECT_EQ(PerElementInversions({5, 5}), (std::vector<int64_t>{0, 0}));
}

class InversionsPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, int>> {};

TEST_P(InversionsPropertyTest, MatchesNaive) {
  auto [seed, n, cardinality] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int32_t> xs;
    for (int i = 0; i < n; ++i) {
      xs.push_back(static_cast<int32_t>(rng.UniformInt(0, cardinality - 1)));
    }
    ASSERT_EQ(CountInversions(xs), CountInversionsNaive(xs));
    std::vector<int64_t> per = PerElementInversions(xs);
    std::vector<int64_t> ref = PerElementInversionsNaive(xs);
    ASSERT_EQ(per, ref);
    // Each inversion involves exactly two elements.
    int64_t total = std::accumulate(per.begin(), per.end(), int64_t{0});
    ASSERT_EQ(total, 2 * CountInversions(xs));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InversionsPropertyTest,
    ::testing::Combine(::testing::Values<uint64_t>(7, 8),
                       ::testing::Values(2, 17, 90),
                       ::testing::Values(2, 6, 500)));

}  // namespace
}  // namespace aod
