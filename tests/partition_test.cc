// Tests for src/partition: attribute sets, stripped partitions, cache.
#include <gtest/gtest.h>

#include <set>

#include "data/encoder.h"
#include "partition/attribute_set.h"
#include "partition/partition_cache.h"
#include "partition/stripped_partition.h"
#include "test_util.h"

namespace aod {
namespace {

// --------------------------------------------------------- AttributeSet --

TEST(AttributeSetTest, BasicOps) {
  AttributeSet s = AttributeSet::Of({1, 3, 5});
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.With(2).size(), 4);
  EXPECT_EQ(s.Without(3).size(), 2);
  EXPECT_EQ(s.Without(2), s);  // removing absent member is a no-op
  EXPECT_EQ(s.First(), 1);
  EXPECT_EQ(AttributeSet().First(), -1);
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet a = AttributeSet::Of({0, 1, 2});
  AttributeSet b = AttributeSet::Of({2, 3});
  EXPECT_EQ(a.Union(b), AttributeSet::Of({0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), AttributeSet::Of({2}));
  EXPECT_EQ(a.Difference(b), AttributeSet::Of({0, 1}));
  EXPECT_TRUE(a.ContainsAll(AttributeSet::Of({0, 2})));
  EXPECT_FALSE(a.ContainsAll(b));
  EXPECT_TRUE(a.ContainsAll(AttributeSet()));
}

TEST(AttributeSetTest, FullSetBoundaries) {
  EXPECT_EQ(AttributeSet::FullSet(0).size(), 0);
  EXPECT_EQ(AttributeSet::FullSet(10).size(), 10);
  EXPECT_EQ(AttributeSet::FullSet(64).size(), 64);
}

TEST(AttributeSetTest, IterationAscending) {
  AttributeSet s = AttributeSet::Of({7, 0, 63, 12});
  EXPECT_EQ(s.ToVector(), (std::vector<int>{0, 7, 12, 63}));
}

TEST(AttributeSetTest, FromVectorRoundTrip) {
  std::vector<int> attrs = {4, 9, 33};
  EXPECT_EQ(AttributeSet::FromVector(attrs).ToVector(), attrs);
}

TEST(AttributeSetTest, ToStringForms) {
  EXPECT_EQ(AttributeSet().ToString(), "{}");
  EXPECT_EQ(AttributeSet::Of({0, 2}).ToString(), "{0, 2}");
  auto named = AttributeSet::Of({1}).ToString(
      [](int) { return std::string("pos"); });
  EXPECT_EQ(named, "{pos}");
}

TEST(AttributeSetTest, HashDistinguishes) {
  AttributeSetHash h;
  EXPECT_NE(h(AttributeSet::Of({0})), h(AttributeSet::Of({1})));
  EXPECT_EQ(h(AttributeSet::Of({5, 6})), h(AttributeSet::Of({6, 5})));
}

// --------------------------------------------------- StrippedPartition --

TEST(StrippedPartitionTest, FromColumnStripsSingletons) {
  // ranks: 0 1 0 2 1 3 — classes {0,2} and {1,4}; 2 and 3 are singletons.
  EncodedColumn col;
  col.name = "c";
  col.ranks = {0, 1, 0, 2, 1, 3};
  col.cardinality = 4;
  StrippedPartition p = StrippedPartition::FromColumn(col);
  EXPECT_EQ(p.num_classes(), 2);
  EXPECT_EQ(p.rows_covered(), 4);
  EXPECT_EQ(p.error(), 2);
}

TEST(StrippedPartitionTest, WholeRelation) {
  StrippedPartition p = StrippedPartition::WholeRelation(5);
  EXPECT_EQ(p.num_classes(), 1);
  EXPECT_EQ(p.cls(0).size(), 5u);
  EXPECT_TRUE(StrippedPartition::WholeRelation(1).classes().empty());
  EXPECT_TRUE(StrippedPartition::WholeRelation(0).classes().empty());
}

TEST(StrippedPartitionTest, FromClassesStrips) {
  StrippedPartition p =
      StrippedPartition::FromClasses({{0, 1}, {2}, {3, 4, 5}});
  EXPECT_EQ(p.num_classes(), 2);
  EXPECT_EQ(p.rows_covered(), 5);
}

TEST(StrippedPartitionTest, ProductSimple) {
  // A: {0,1,2,3} all equal; B: {0,1} vs {2,3} -> product {0,1},{2,3}.
  EncodedColumn a{
      .name = "a", .ranks = {0, 0, 0, 0}, .cardinality = 1, .dictionary = {}};
  EncodedColumn b{
      .name = "b", .ranks = {0, 0, 1, 1}, .cardinality = 2, .dictionary = {}};
  auto pa = StrippedPartition::FromColumn(a);
  auto pb = StrippedPartition::FromColumn(b);
  StrippedPartition prod = pa.Product(pb, 4);
  EXPECT_EQ(prod.num_classes(), 2);
  EXPECT_EQ(prod.rows_covered(), 4);
}

TEST(StrippedPartitionTest, ProductToSingletonsIsEmpty) {
  EncodedColumn a{
      .name = "a", .ranks = {0, 0, 1, 1}, .cardinality = 2, .dictionary = {}};
  EncodedColumn b{
      .name = "b", .ranks = {0, 1, 0, 1}, .cardinality = 2, .dictionary = {}};
  auto pa = StrippedPartition::FromColumn(a);
  auto pb = StrippedPartition::FromColumn(b);
  StrippedPartition prod = pa.Product(pb, 4);
  EXPECT_EQ(prod.num_classes(), 0);
  EXPECT_EQ(prod.rows_covered(), 0);
}

TEST(StrippedPartitionTest, ProductIsCommutativeBitForBit) {
  // Canonical normal form makes commutativity exact, not just up to
  // class reordering: both operand orders emit identical CSR arrays.
  EncodedTable t = testing_util::RandomEncodedTable(100, 2, 5, 17);
  auto pa = StrippedPartition::FromColumn(t.column(0));
  auto pb = StrippedPartition::FromColumn(t.column(1));
  StrippedPartition ab = pa.Product(pb, 100);
  StrippedPartition ba = pb.Product(pa, 100);
  EXPECT_EQ(ab.ToString(), ba.ToString());
  EXPECT_EQ(ab.row_ids(), ba.row_ids());
  EXPECT_EQ(ab.class_offsets(), ba.class_offsets());
}

TEST(StrippedPartitionTest, ScratchReuseIsClean) {
  // Two products sharing one scratch must not contaminate each other.
  EncodedTable t = testing_util::RandomEncodedTable(200, 3, 4, 23);
  PartitionScratch scratch(200);
  auto p0 = StrippedPartition::FromColumn(t.column(0));
  auto p1 = StrippedPartition::FromColumn(t.column(1));
  auto p2 = StrippedPartition::FromColumn(t.column(2));
  StrippedPartition first = p0.Product(p1, 200, &scratch);
  StrippedPartition again = p0.Product(p1, 200, &scratch);
  EXPECT_EQ(first.ToString(), again.ToString());
  StrippedPartition other = p1.Product(p2, 200, &scratch);
  StrippedPartition other_fresh = p1.Product(p2, 200);
  EXPECT_EQ(other.ToString(), other_fresh.ToString());
}

// Property: product of column partitions == definition-based partition on
// the attribute pair/triple.
class PartitionProductPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int64_t, int>> {};

TEST_P(PartitionProductPropertyTest, ProductMatchesNaive) {
  auto [seed, rows, cardinality] = GetParam();
  EncodedTable t = testing_util::RandomEncodedTable(rows, 3, cardinality,
                                                    seed);
  auto normalize = [](const StrippedPartition& p) {
    std::set<std::set<int32_t>> out;
    for (const auto& cls : p.classes()) {
      out.insert(std::set<int32_t>(cls.begin(), cls.end()));
    }
    return out;
  };
  auto p0 = StrippedPartition::FromColumn(t.column(0));
  auto p1 = StrippedPartition::FromColumn(t.column(1));
  auto p2 = StrippedPartition::FromColumn(t.column(2));

  StrippedPartition p01 = p0.Product(p1, rows);
  EXPECT_EQ(normalize(p01),
            normalize(testing_util::NaivePartition(
                t, AttributeSet::Of({0, 1}))));

  StrippedPartition p012 = p01.Product(p2, rows);
  EXPECT_EQ(normalize(p012),
            normalize(testing_util::NaivePartition(
                t, AttributeSet::Of({0, 1, 2}))));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProductPropertyTest,
    ::testing::Combine(::testing::Values<uint64_t>(3, 14, 159),
                       ::testing::Values<int64_t>(10, 100, 500),
                       ::testing::Values(2, 5, 25)));

// ------------------------------------------------------- PartitionCache --

TEST(PartitionCacheTest, SingletonsPrecomputed) {
  EncodedTable t = testing_util::RandomEncodedTable(50, 3, 4, 5);
  PartitionCache cache(&t);
  EXPECT_TRUE(cache.Contains(AttributeSet()));
  EXPECT_TRUE(cache.Contains(AttributeSet::Of({0})));
  EXPECT_TRUE(cache.Contains(AttributeSet::Of({2})));
  EXPECT_FALSE(cache.Contains(AttributeSet::Of({0, 1})));
  EXPECT_EQ(cache.products_computed(), 0);
}

TEST(PartitionCacheTest, DerivesAndMemoizes) {
  EncodedTable t = testing_util::RandomEncodedTable(80, 3, 3, 6);
  PartitionCache cache(&t);
  auto p = cache.Get(AttributeSet::Of({0, 1}));
  EXPECT_EQ(cache.products_computed(), 1);
  auto p_again = cache.Get(AttributeSet::Of({0, 1}));
  EXPECT_EQ(cache.products_computed(), 1);  // cached, no recompute
  EXPECT_EQ(p.get(), p_again.get());
}

TEST(PartitionCacheTest, GetMatchesNaive) {
  EncodedTable t = testing_util::RandomEncodedTable(120, 4, 3, 7);
  PartitionCache cache(&t);
  auto normalize = [](const StrippedPartition& p) {
    std::set<std::set<int32_t>> out;
    for (const auto& cls : p.classes()) {
      out.insert(std::set<int32_t>(cls.begin(), cls.end()));
    }
    return out;
  };
  for (uint64_t bits = 0; bits < 16; ++bits) {
    AttributeSet set(bits);
    EXPECT_EQ(normalize(*cache.Get(set)),
              normalize(testing_util::NaivePartition(t, set)))
        << set.ToString();
  }
}

TEST(PartitionCacheTest, BytesResidentTracksExactSizes) {
  EncodedTable t = testing_util::RandomEncodedTable(100, 3, 3, 9);
  PartitionCache cache(&t);
  // Preloaded: the empty-set partition plus one per column.
  int64_t base = cache.bytes_resident();
  int64_t expect = StrippedPartition::WholeRelation(100).bytes();
  for (int a = 0; a < 3; ++a) {
    expect += StrippedPartition::FromColumn(t.column(a)).bytes();
  }
  EXPECT_EQ(base, expect);

  auto p = cache.Get(AttributeSet::Of({0, 1}));
  EXPECT_EQ(cache.bytes_resident(), base + p->bytes());
  // Eviction returns exactly what it releases.
  int64_t freed = cache.EvictSmallerThan(3);
  EXPECT_EQ(freed, p->bytes());
  EXPECT_EQ(cache.bytes_resident(), base);
}

TEST(PartitionCacheTest, EvictionKeepsBaseLevels) {
  EncodedTable t = testing_util::RandomEncodedTable(60, 4, 3, 8);
  PartitionCache cache(&t);
  cache.Get(AttributeSet::Of({0, 1}));
  cache.Get(AttributeSet::Of({0, 1, 2}));
  cache.EvictSmallerThan(3);
  EXPECT_FALSE(cache.Contains(AttributeSet::Of({0, 1})));
  EXPECT_TRUE(cache.Contains(AttributeSet::Of({0, 1, 2})));
  EXPECT_TRUE(cache.Contains(AttributeSet::Of({0})));  // level 1 retained
  EXPECT_TRUE(cache.Contains(AttributeSet()));
  // Re-deriving after eviction still works.
  auto p = cache.Get(AttributeSet::Of({0, 1}));
  EXPECT_GT(p->num_classes() + 1, 0);
}

TEST(PartitionCacheTest, BudgetEvictionRestoresExactBaseFootprint) {
  EncodedTable t = testing_util::RandomEncodedTable(150, 4, 3, 12);
  PartitionCache cache(&t);
  const int64_t base = cache.bytes_resident();

  cache.Get(AttributeSet::Of({0, 1}));
  cache.Get(AttributeSet::Of({1, 2}));
  cache.Get(AttributeSet::Of({0, 1, 2}));
  cache.Get(AttributeSet::Of({0, 1, 2, 3}));
  const int64_t resident = cache.bytes_resident();
  EXPECT_GT(resident, base);

  // A budget below the base floor evicts every derived partition — and
  // the byte accounting returns to the exact level-0/1 footprint.
  int64_t freed = cache.EnforceBudget(1);
  EXPECT_EQ(freed, resident - base);
  EXPECT_EQ(cache.bytes_resident(), base);
  EXPECT_EQ(cache.partitions_evicted(), 4);
  EXPECT_FALSE(cache.Contains(AttributeSet::Of({0, 1})));
  EXPECT_TRUE(cache.Contains(AttributeSet::Of({0})));
  EXPECT_TRUE(cache.Contains(AttributeSet()));

  // Unlimited budget (<= 0) is a no-op.
  cache.Get(AttributeSet::Of({0, 1}));
  EXPECT_EQ(cache.EnforceBudget(0), 0);

  // Re-derivation after eviction yields the same canonical value.
  auto rederived = cache.Get(AttributeSet::Of({0, 1, 2}));
  PartitionScratch scratch(150);
  auto expected = StrippedPartition::FromColumn(t.column(0))
                      .Product(StrippedPartition::FromColumn(t.column(1)),
                               150, &scratch)
                      .Product(StrippedPartition::FromColumn(t.column(2)),
                               150, &scratch);
  EXPECT_EQ(rederived->row_ids(), expected.row_ids());
  EXPECT_EQ(rederived->class_offsets(), expected.class_offsets());
}

TEST(PartitionCacheTest, BudgetEvictionIsColdestFirst) {
  EncodedTable t = testing_util::RandomEncodedTable(200, 4, 2, 13);
  PartitionCache cache(&t);
  const int64_t base = cache.bytes_resident();
  auto level2 = cache.Get(AttributeSet::Of({0, 1}));
  auto level3 = cache.Get(AttributeSet::Of({0, 1, 2}));
  // A budget with room for exactly one derived partition evicts the
  // lower level first: once the traversal has passed it, it is never a
  // context again.
  cache.EnforceBudget(base + level2->bytes() + level3->bytes() - 1);
  EXPECT_FALSE(cache.Contains(AttributeSet::Of({0, 1})));
  EXPECT_TRUE(cache.Contains(AttributeSet::Of({0, 1, 2})));
}

TEST(PartitionCacheTest, PlannerPicksCheapBaseAndMatchesFixedRule) {
  // Column 2 is low-cardinality (expensive, rows_covered ~ n); columns
  // 0/1 are near-distinct (cheap). The planner derives Π_{012} from a
  // published pair containing the expensive attribute, never re-scanning
  // it, while the fixed rule products Π_{01} with the expensive single.
  // Both must land on identical canonical bytes.
  const int64_t rows = 400;
  std::vector<int64_t> s1, s2, k;
  for (int64_t i = 0; i < rows; ++i) {
    s1.push_back((i * 37) % 200);
    s2.push_back((i * 53) % 200);
    k.push_back(i % 3);
  }
  EncodedTable enc = EncodedTableFromInts({"s1", "s2", "k"}, {s1, s2, k});

  PartitionCache planned(&enc);
  planned.set_planner_enabled(true);
  planned.Get(AttributeSet::Of({0, 2}));
  planned.Get(AttributeSet::Of({1, 2}));
  planned.PublishCost(AttributeSet::Of({0, 2}));
  planned.PublishCost(AttributeSet::Of({1, 2}));
  DerivationPlan plan = planned.PlanDerivation(AttributeSet::Of({0, 1, 2}));
  EXPECT_TRUE(plan.base == AttributeSet::Of({0, 2}) ||
              plan.base == AttributeSet::Of({1, 2}))
      << plan.base.ToString();
  const int64_t before = planned.planner_derivations();
  auto via_plan = planned.Get(AttributeSet::Of({0, 1, 2}));
  EXPECT_EQ(planned.planner_derivations(), before + 1);

  PartitionCache fixed(&enc);
  fixed.set_planner_enabled(false);
  auto via_fixed = fixed.Get(AttributeSet::Of({0, 1, 2}));

  EXPECT_EQ(via_plan->row_ids(), via_fixed->row_ids());
  EXPECT_EQ(via_plan->class_offsets(), via_fixed->class_offsets());
}

TEST(PartitionCacheTest, FixedRuleWorklistHandlesDeepMisses) {
  // With nothing cached between the singletons and a deep set, the
  // worklist must derive (and memoize) every intermediate without
  // recursing — one product per missing prefix.
  EncodedTable t = testing_util::RandomEncodedTable(80, 8, 2, 14);
  PartitionCache cache(&t);
  cache.set_planner_enabled(false);
  AttributeSet deep = AttributeSet::FullSet(8);
  cache.Get(deep);
  EXPECT_EQ(cache.products_computed(), 7);  // sizes 2..8
  EXPECT_TRUE(cache.Contains(AttributeSet::Of({0, 1, 2})));  // memoized
  cache.Get(AttributeSet::Of({0, 1, 2, 3}));
  EXPECT_EQ(cache.products_computed(), 7);  // intermediate was cached
}

}  // namespace
}  // namespace aod
