// The standalone shard-runner process entry point.
//
// shard_runner_main (examples/) is a thin wrapper around
// ShardRunnerMain: connect to the coordinator (TCP, or stdin/stdout in
// --stdio mode), bootstrap from the wire — a kConfigBlock, then a
// kTableBlock carrying the rank-encoded columns — and serve frames
// until the kShutdown/kStatsFooter handshake ends the conversation.
// Everything the runner knows arrived over the wire; the process never
// opens a data file, which is exactly what makes the seam honest:
// promoting a shard off-box is a transport choice, not a code change.
//
// Usage:
//   shard_runner_main --connect=HOST:PORT [--timeout=SECONDS]
//   shard_runner_main --stdio             [--timeout=SECONDS]
//
// Exit codes: 0 orderly shutdown, 1 usage error, 2 transport/bootstrap
// failure, 3 serve-loop failure.
#ifndef AOD_SHARD_RUNNER_MAIN_H_
#define AOD_SHARD_RUNNER_MAIN_H_

namespace aod {
namespace shard {

int ShardRunnerMain(int argc, char** argv);

}  // namespace shard
}  // namespace aod

#endif  // AOD_SHARD_RUNNER_MAIN_H_
