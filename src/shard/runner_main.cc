#include "shard/runner_main.h"

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "exec/thread_pool.h"
#include "od/discovery.h"
#include "shard/channel.h"
#include "shard/row_sharding.h"
#include "shard/shard_runner.h"
#include "shard/wire.h"

namespace aod {
namespace shard {
namespace {

int Fail(int code, const char* what, const Status& status) {
  std::fprintf(stderr, "shard_runner_main: %s: %s\n", what,
               status.ToString().c_str());
  return code;
}

/// A received frame plus the bytes its payload view aliases. The bytes
/// member owns the heap buffer, so moving the struct keeps `frame`
/// valid (vector moves preserve the allocation).
struct BootstrapFrame {
  std::vector<uint8_t> bytes;
  DecodedFrame frame;
};

/// Receives and fully validates one frame of the expected type —
/// exactly once; callers decode the payload straight from `frame`.
Result<BootstrapFrame> ReceiveExpected(ShardChannel* channel,
                                       FrameType expected) {
  BootstrapFrame out;
  AOD_ASSIGN_OR_RETURN(out.bytes, channel->Receive());
  AOD_ASSIGN_OR_RETURN(out.frame, DecodeFrame(out.bytes));
  if (out.frame.type != expected) {
    return Status::ParseError("unexpected bootstrap frame type");
  }
  return out;
}

/// Test-only crash injection for the supervised-recovery e2e suite:
/// AOD_TEST_RUNNER_CRASH_BEFORE_FRAME=N makes the runner die abruptly
/// (no footer, no orderly close — what SIGKILL or an OOM kill looks
/// like from the coordinator) just before serving its Nth logical
/// frame. With AOD_TEST_RUNNER_CRASH_ONCE_FLAG=<path> additionally set,
/// only the one runner process that wins the O_EXCL creation of <path>
/// crashes — so a fleet of shards loses exactly one attempt and every
/// respawn runs clean. Returns -1 (never crash) when the seam is off.
int64_t CrashBeforeFrame() {
  const char* env = std::getenv("AOD_TEST_RUNNER_CRASH_BEFORE_FRAME");
  if (env == nullptr) return -1;
  const int64_t frame = std::strtoll(env, nullptr, 10);
  if (const char* flag = std::getenv("AOD_TEST_RUNNER_CRASH_ONCE_FLAG")) {
    const int fd = ::open(flag, O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) return -1;  // a sibling already claimed the one crash
    ::close(fd);
  }
  return frame;
}

}  // namespace

int ShardRunnerMain(int argc, char** argv) {
  std::string host;
  uint16_t port = 0;
  bool stdio = false;
  double timeout_seconds = 300.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--connect=", 0) == 0) {
      const std::string endpoint = arg.substr(10);
      const size_t colon = endpoint.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "shard_runner_main: --connect needs HOST:PORT\n");
        return 1;
      }
      host = endpoint.substr(0, colon);
      port = static_cast<uint16_t>(
          std::strtoul(endpoint.c_str() + colon + 1, nullptr, 10));
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg.rfind("--timeout=", 0) == 0) {
      timeout_seconds = std::strtod(arg.c_str() + 10, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: shard_runner_main --connect=HOST:PORT | --stdio "
                   "[--timeout=SECONDS]\n");
      return 1;
    }
  }
  if (stdio == (port != 0)) {
    std::fprintf(stderr,
                 "shard_runner_main: exactly one of --connect/--stdio\n");
    return 1;
  }
  // Pipes cannot carry MSG_NOSIGNAL: a coordinator that died must surface
  // as a write error on our side, not as SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  ChannelOptions copts;
  copts.receive_timeout_seconds = timeout_seconds;
  std::unique_ptr<ShardChannel> channel;
  if (stdio) {
    channel = SocketShardChannel::AdoptPair(/*read_fd=*/0, /*write_fd=*/1,
                                            copts);
  } else {
    Result<std::unique_ptr<SocketShardChannel>> connected =
        SocketShardChannel::Connect(host, port, timeout_seconds, copts);
    if (!connected.ok()) return Fail(2, "connect", connected.status());
    channel = std::move(connected).value();
  }

  // Bootstrap: config, then the rank-encoded table. Everything after
  // these two frames is ShardRunner's vocabulary.
  Result<BootstrapFrame> config_raw =
      ReceiveExpected(channel.get(), FrameType::kConfigBlock);
  if (!config_raw.ok()) return Fail(2, "config frame", config_raw.status());
  Result<WireRunnerConfig> config = DecodeConfigBlock(config_raw->frame);
  if (!config.ok()) return Fail(2, "config decode", config.status());

  // A config carrying a row range selects the row-shard fragment
  // conversation (partition the table slice, ship fragments, footer)
  // instead of the candidate-validation serve loop.
  if (config->row_end > config->row_begin) {
    Status served =
        ServeRowShardAfterConfig(*config, channel.get(), channel.get());
    if (!served.ok()) return Fail(3, "row-shard serve", served);
    channel->Close();  // flush the footer before the fds die
    return 0;
  }

  Result<BootstrapFrame> table_raw =
      ReceiveExpected(channel.get(), FrameType::kTableBlock);
  if (!table_raw.ok()) return Fail(2, "table frame", table_raw.status());
  CodecByteCounts table_counts;
  Result<EncodedTable> table = DecodeTableBlock(table_raw->frame,
                                                &table_counts);
  if (!table.ok()) return Fail(2, "table decode", table.status());

  ShardRunnerOptions options;
  options.attempt_id = config->attempt_id;
  options.validator = static_cast<ValidatorKind>(config->validator);
  options.epsilon = config->epsilon;
  options.collect_removal_sets = config->collect_removal_sets;
  options.enable_sampling_filter = config->enable_sampling_filter;
  options.sampler_config.sample_size = config->sampler_sample_size;
  options.sampler_config.reject_margin = config->sampler_reject_margin;
  options.sampler_config.seed = config->sampler_seed;
  options.partition_memory_budget_bytes =
      config->partition_memory_budget_bytes;
  options.wire_compression = config->wire_compression;
  options.kinds = DependencyKindSet(config->kinds);
  options.afd_error = config->afd_error;

  std::unique_ptr<exec::ThreadPool> pool;
  if (config->num_threads > 1) {
    pool = std::make_unique<exec::ThreadPool>(
        static_cast<int>(config->num_threads));
  }

  ShardRunner runner(static_cast<int>(config->shard_id), &*table, options,
                     channel.get(), channel.get(), pool.get());
  // The table was decoded before the runner existed; fold its raw/wire
  // bytes into the footer so the coordinator's ratio accounting sees
  // the biggest bootstrap frame too.
  runner.CreditDecodedBytes(table_counts);
  Status served;
  const int64_t crash_before = CrashBeforeFrame();
  if (crash_before < 0) {
    served = runner.Serve();
  } else {
    // Same serve loop, with the crash seam between frames: the
    // coordinator has typically already queued the frame we die before
    // serving, so from its side this is a mid-level loss.
    for (;;) {
      if (runner.frames_served() + 1 >= crash_before) ::_exit(57);
      bool shutdown = false;
      served = runner.ServeOne({}, &shutdown);
      if (!served.ok() || shutdown) break;
    }
  }
  if (!served.ok()) return Fail(3, "serve loop", served);
  channel->Close();  // flush the footer before the fds die
  return 0;
}

}  // namespace shard
}  // namespace aod
