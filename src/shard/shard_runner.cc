#include "shard/shard_runner.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "exec/parallel_for.h"
#include "od/interestingness.h"
#include "od/validator_registry.h"

namespace aod {
namespace shard {

ShardRunner::ShardRunner(int shard_id, const EncodedTable* table,
                         const ShardRunnerOptions& options,
                         ShardChannel* inbox, ShardChannel* outbox,
                         exec::ThreadPool* pool)
    : shard_id_(shard_id),
      table_(table),
      options_(options),
      epsilon_(options.validator == ValidatorKind::kExact ? 0.0
                                                          : options.epsilon),
      inbox_(inbox),
      outbox_(outbox),
      receiver_(inbox),
      pool_(pool),
      cache_(table, PartitionCache::DeferBasePartitions{}) {
  AOD_CHECK(table != nullptr && inbox != nullptr && outbox != nullptr);
  // Shard-local derivation uses the fixed rule: with no coordinator-side
  // catalog to consult, the worklist derivation is the deterministic
  // choice, and its per-key memoization makes the product counter a pure
  // function of the batch contents (ARCHITECTURE.md).
  cache_.set_planner_enabled(false);
  if (options_.enable_sampling_filter &&
      options_.validator == ValidatorKind::kOptimal) {
    // Same seeded sample as any other site given the same config, so
    // fast-reject decisions match the unsharded run bit for bit.
    sampler_ = std::make_unique<AocSampler>(table_, options_.sampler_config);
  }
}

Status ShardRunner::ServeOne(const std::function<bool()>& cancel,
                             bool* shutdown) {
  if (shutdown != nullptr) *shutdown = false;
  AOD_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, receiver_.Receive());
  AOD_ASSIGN_OR_RETURN(DecodedFrame frame, DecodeFrame(raw));
  ++frames_served_;
  switch (frame.type) {
    case FrameType::kPartitionBlock:
      return HandlePartitionBlock(frame);
    case FrameType::kCandidateBatch:
      return HandleCandidateBatch(frame, cancel);
    case FrameType::kShutdown:
      if (shutdown != nullptr) *shutdown = true;
      return HandleShutdown();
    case FrameType::kResultBatch:
    case FrameType::kTableBlock:
    case FrameType::kConfigBlock:
    case FrameType::kStatsFooter:
    case FrameType::kBatch:  // the receiver already unwrapped envelopes
    case FrameType::kJobSubmit:  // serve-layer vocabulary; never shard-bound
    case FrameType::kJobStatus:
    case FrameType::kJobResultBatch:
    case FrameType::kJobError:
    case FrameType::kCancel:
    case FrameType::kPartitionFragment:  // row-shard reply; coordinator-bound
      break;
  }
  return Status::InvalidArgument("unexpected frame type on shard inbox");
}

Status ShardRunner::Serve(const std::function<bool()>& cancel) {
  for (;;) {
    bool shutdown = false;
    AOD_RETURN_NOT_OK(ServeOne(cancel, &shutdown));
    if (shutdown) return Status::OK();
  }
}

Status ShardRunner::HandlePartitionBlock(const DecodedFrame& frame) {
  AOD_ASSIGN_OR_RETURN(
      auto block,
      DecodePartitionBlock(frame, table_->num_rows(), &decoded_counts_));
  cache_.Preload(block.first, std::move(block.second));
  SampleResidency();
  return Status::OK();
}

Status ShardRunner::HandleShutdown() {
  return outbox_->Send(EncodeStatsFooter(FooterStats()));
}

void ShardRunner::SampleResidency() {
  bytes_peak_ = std::max(bytes_peak_, cache_.bytes_resident());
}

ShardStatsFooter ShardRunner::FooterStats() const {
  ShardStatsFooter footer;
  footer.shard_id = static_cast<uint32_t>(shard_id_);
  footer.attempt_id = options_.attempt_id;
  footer.frames_served = frames_served_;
  footer.products_computed = cache_.products_computed();
  footer.partitions_evicted = cache_.partitions_evicted();
  footer.partition_bytes_evicted = bytes_evicted_;
  footer.partition_bytes_final = cache_.bytes_resident();
  footer.partition_bytes_peak = bytes_peak_;
  footer.bytes_decoded_raw = decoded_counts_.raw;
  footer.bytes_decoded_wire = decoded_counts_.wire;
  footer.partition_seconds = partition_seconds();
  return footer;
}

Status ShardRunner::HandleCandidateBatch(const DecodedFrame& frame,
                                         const std::function<bool()>& cancel) {
  AOD_ASSIGN_OR_RETURN(std::vector<WireCandidate> batch,
                       DecodeCandidateBatch(frame, &decoded_counts_));

  // A candidate whose kind this run never enabled is a coordinator bug
  // (or a corrupted-but-checksum-valid stream), not work to skip: reject
  // the whole batch before spending any validation time on it.
  for (const WireCandidate& c : batch) {
    if (!options_.kinds.Contains(c.kind)) {
      return Status::InvalidArgument(
          "candidate batch carries kind '" +
          std::string(DependencyKindToString(c.kind)) +
          "' outside the configured set " + options_.kinds.ToString());
    }
  }

  // Parallel over the batch on the shared pool (nested fork/join is safe;
  // the coordinator runs each shard as one pool task). Every outcome slot
  // is written by exactly one iteration; `done` marks the candidates that
  // finished before a deadline cancellation.
  std::vector<WireOutcome> outcomes(batch.size());
  std::vector<uint8_t> done(batch.size(), 0);
  exec::ParallelForOptions popts;
  popts.cancel = cancel;
  exec::ParallelFor(pool_, 0, static_cast<int64_t>(batch.size()),
                    [&](int64_t i) {
                      ValidateOne(batch[static_cast<size_t>(i)],
                                  &outcomes[static_cast<size_t>(i)]);
                      done[static_cast<size_t>(i)] = 1;
                    },
                    popts);

  // Reply in batch (= ascending slot) order with whatever completed, so
  // the frame bytes are deterministic whenever the batch ran to the end.
  std::vector<WireOutcome> completed;
  completed.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (done[i]) completed.push_back(std::move(outcomes[i]));
  }

  // Stream the reply as bounded chunks (last one final-flagged) through
  // the coalescing sender: the coordinator starts folding early chunks
  // while later candidates' bytes are still in flight, and several tiny
  // chunks ride one envelope instead of paying per-frame overhead.
  constexpr size_t kChunkOutcomes = 512;
  BatchingFrameSender sender(outbox_);
  size_t begin = 0;
  do {
    const size_t end = std::min(begin + kChunkOutcomes, completed.size());
    std::vector<WireOutcome> chunk(
        std::make_move_iterator(completed.begin() + begin),
        std::make_move_iterator(completed.begin() + end));
    const bool final_chunk = end == completed.size();
    AOD_RETURN_NOT_OK(sender.Add(EncodeResultBatch(
        chunk, final_chunk, options_.wire_compression)));
    begin = end;
  } while (begin < completed.size());
  AOD_RETURN_NOT_OK(sender.Flush());

  // The batch's ParallelFor has joined, so every cache future is
  // resolved — the precondition budget enforcement (and an exact
  // residency sample) needs.
  SampleResidency();
  if (options_.partition_memory_budget_bytes > 0) {
    bytes_evicted_ += cache_.EnforceBudget(
        options_.partition_memory_budget_bytes);
  }
  return Status::OK();
}

double ShardRunner::partition_seconds() const {
  return static_cast<double>(
             partition_nanos_.load(std::memory_order_relaxed)) /
         1e9;
}

void ShardRunner::ValidateOne(const WireCandidate& candidate,
                              WireOutcome* out) {
  const AttributeSet context(candidate.context_bits);
  std::shared_ptr<const StrippedPartition> partition;
  if (cache_.Contains(context)) {
    partition = cache_.Get(context);
  } else {
    Stopwatch derive_sw;
    partition = cache_.Get(context);
    partition_nanos_.fetch_add(derive_sw.ElapsedNanos(),
                               std::memory_order_relaxed);
  }
  std::unique_ptr<ValidatorScratch> scratch = AcquireScratch();

  ValidationRequest request;
  request.table = table_;
  request.context_partition = partition.get();
  request.kind = candidate.kind;
  request.target = candidate.target;
  request.pair =
      AttributePair{candidate.pair_a, candidate.pair_b, candidate.opposite};
  request.algorithm = options_.validator;
  request.epsilon = epsilon_;
  request.afd_error = options_.afd_error;
  request.table_rows = table_->num_rows();
  request.options.collect_removal_set = options_.collect_removal_sets;
  request.sampler = sampler_.get();
  request.scratch = scratch.get();

  Stopwatch sw;
  DependencyVerdict verdict = ValidateDependency(request);
  out->seconds = sw.ElapsedSeconds();
  ReleaseScratch(std::move(scratch));

  out->slot = candidate.slot;
  out->kind = candidate.kind;
  out->valid = verdict.valid;
  out->early_exit = verdict.early_exit;
  out->removal_size = verdict.removal_size;
  out->approx_factor = verdict.error;
  out->removal_rows = std::move(verdict.removal_rows);
  out->interestingness =
      InterestingnessScore(*partition, context.size(), table_->num_rows());
}

std::unique_ptr<ValidatorScratch> ShardRunner::AcquireScratch() {
  {
    std::lock_guard<std::mutex> lock(scratch_mutex_);
    if (!free_scratch_.empty()) {
      std::unique_ptr<ValidatorScratch> scratch =
          std::move(free_scratch_.back());
      free_scratch_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<ValidatorScratch>();
}

void ShardRunner::ReleaseScratch(std::unique_ptr<ValidatorScratch> scratch) {
  std::lock_guard<std::mutex> lock(scratch_mutex_);
  free_scratch_.push_back(std::move(scratch));
}

}  // namespace shard
}  // namespace aod
