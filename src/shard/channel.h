// Byte-level transport between the shard coordinator and one shard
// runner.
//
// A ShardChannel moves opaque, already-framed byte vectors (see wire.h)
// in one direction; a coordinator/runner pair uses two — an inbox and an
// outbox. The interface is deliberately minimal (send, blocking receive,
// close) so that the in-process queue used today can be swapped for a
// socket or file transport without touching the coordinator, the runner,
// or any encoder: everything protocol-level lives in the frames
// themselves (versioning, typing, checksums).
#ifndef AOD_SHARD_CHANNEL_H_
#define AOD_SHARD_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace aod {
namespace shard {

class ShardChannel {
 public:
  virtual ~ShardChannel() = default;

  /// Enqueues one frame. Fails (IoError) once the channel is closed.
  virtual Status Send(std::vector<uint8_t> frame) = 0;

  /// Blocks until a frame is available and returns it. Once the channel
  /// is closed and drained, returns IoError — the receiver's shutdown
  /// signal.
  virtual Result<std::vector<uint8_t>> Receive() = 0;

  /// Stops further sends; queued frames remain receivable.
  virtual void Close() = 0;

  /// Total payload+header bytes accepted by Send — the shipping-volume
  /// stat surfaced per shard in DiscoveryStats.
  virtual int64_t bytes_sent() const = 0;
};

/// The in-process transport: a mutex + condition-variable frame queue.
/// Any number of senders and receivers; frames arrive in send order.
class InProcessChannel final : public ShardChannel {
 public:
  InProcessChannel() = default;
  AOD_DISALLOW_COPY_AND_ASSIGN(InProcessChannel);

  Status Send(std::vector<uint8_t> frame) override;
  Result<std::vector<uint8_t>> Receive() override;
  void Close() override;
  int64_t bytes_sent() const override;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::vector<uint8_t>> frames_;
  int64_t bytes_sent_ = 0;
  bool closed_ = false;
};

}  // namespace shard
}  // namespace aod

#endif  // AOD_SHARD_CHANNEL_H_
