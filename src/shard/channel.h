// Byte-level transport between the shard coordinator and one shard
// runner.
//
// A ShardChannel moves opaque, already-framed byte vectors (see wire.h)
// in one direction; a coordinator/runner pair uses two — an inbox and an
// outbox — or one full-duplex stream endpoint serving as both. The
// interface is deliberately minimal (send, blocking receive, close) so
// that the in-process queue, the localhost TCP socket and the spool-
// directory file transport are interchangeable without touching the
// coordinator, the runner, or any encoder: everything protocol-level
// lives in the frames themselves (versioning, typing, checksums).
//
// Shutdown contract (all implementations):
//   - Close() stops further sends; frames already accepted remain
//     receivable ("drain" semantics).
//   - Receive() on a closed-and-drained channel returns StatusCode::
//     kClosed — the receiver's orderly end-of-conversation signal,
//     distinct from kIoError (transport broke) and kParseError (byte
//     stream violated the frame format).
//   - A receiver *blocked* in Receive() when Close() happens wakes up
//     and returns kClosed; Close never strands a blocked receiver
//     (tests/shard_channel_conformance_test pins this for every
//     implementation).
//   - Send() after Close() returns kClosed.
//
// Every implementation enforces ChannelOptions::max_frame_bytes, so a
// corrupted or hostile length header is rejected with a typed error
// before any allocation, and honors receive_timeout_seconds, so a
// receiver never hangs on a peer that died silently.
#ifndef AOD_SHARD_CHANNEL_H_
#define AOD_SHARD_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace aod {
namespace shard {

/// Receiver-side protection limits, shared by every transport.
struct ChannelOptions {
  /// Frames whose total size (header + payload) exceeds this are
  /// rejected with kParseError before the payload is read or allocated
  /// (on the in-process queue, oversized frames are rejected at Send —
  /// the frame already exists as a vector there, so the send side is
  /// the earliest point of refusal).
  int64_t max_frame_bytes = 1LL << 30;
  /// Receive() fails with kIoError once this much time passes without a
  /// complete frame arriving. 0 = wait forever (the in-process default;
  /// byte transports should always set a bound).
  double receive_timeout_seconds = 0.0;
};

class ShardChannel {
 public:
  virtual ~ShardChannel() = default;

  /// Enqueues one frame. Fails with kClosed once the channel is closed.
  virtual Status Send(std::vector<uint8_t> frame) = 0;

  /// Blocks until a frame is available and returns it. Once the channel
  /// is closed and drained, returns kClosed — the receiver's shutdown
  /// signal (see the contract above).
  virtual Result<std::vector<uint8_t>> Receive() = 0;

  /// Stops further sends; queued frames remain receivable. Wakes any
  /// receiver blocked in Receive().
  virtual void Close() = 0;

  /// Total payload+header bytes accepted by Send — the shipping-volume
  /// stat surfaced per shard in DiscoveryStats.
  virtual int64_t bytes_sent() const = 0;

  /// Total frame bytes returned by Receive. On a full-duplex endpoint
  /// bytes_sent + bytes_received is the link's total traffic as seen
  /// from this side.
  virtual int64_t bytes_received() const = 0;
};

/// Writer-side frame coalescing: buffers small frames and ships them as
/// one kBatch envelope, so byte transports pay one syscall + header per
/// flush instead of per frame. Add() auto-flushes once the buffered
/// bytes reach the threshold; callers flush explicitly on protocol
/// boundaries (end of a level's candidates, final result chunk). A
/// flush of one pending frame sends it unwrapped — the envelope only
/// exists where it saves something — so batching never changes what a
/// decoder has to accept, only how frames are grouped in transit.
///
/// Envelope boundaries are a pure function of the frame sequence (sizes
/// against a fixed threshold), which keeps the bit-identical-across-
/// transports contract intact. Not thread-safe; each link's sender is
/// driven by one thread.
class BatchingFrameSender {
 public:
  static constexpr size_t kDefaultFlushThresholdBytes = 64 * 1024;

  explicit BatchingFrameSender(
      ShardChannel* channel,
      size_t flush_threshold_bytes = kDefaultFlushThresholdBytes)
      : channel_(channel), threshold_(flush_threshold_bytes) {}
  AOD_DISALLOW_COPY_AND_ASSIGN(BatchingFrameSender);

  /// Buffers one complete frame; flushes if the buffer reaches the
  /// threshold. A failed flush surfaces here.
  Status Add(std::vector<uint8_t> frame);

  /// Sends everything buffered: nothing pending is a no-op, one frame
  /// goes unwrapped, two or more become a single kBatch envelope.
  Status Flush();

  /// Buffered (unsent) frame count — for tests.
  size_t pending_frames() const { return pending_.size(); }

 private:
  ShardChannel* const channel_;
  const size_t threshold_;
  size_t pending_bytes_ = 0;
  std::vector<std::vector<uint8_t>> pending_;
};

/// Receiver-side mirror of BatchingFrameSender: yields logical frames,
/// transparently unwrapping kBatch envelopes (validated checksum-first
/// via DecodeFrame before any inner frame is surfaced). Consumers keep
/// seeing exactly the frame sequence the sender produced, enveloped or
/// not. Not thread-safe.
class LogicalFrameReceiver {
 public:
  explicit LogicalFrameReceiver(ShardChannel* channel) : channel_(channel) {}
  AOD_DISALLOW_COPY_AND_ASSIGN(LogicalFrameReceiver);

  /// Next logical frame: a pending envelope member if one is queued,
  /// otherwise whatever the channel delivers (unwrapped on the fly).
  Result<std::vector<uint8_t>> Receive();

 private:
  ShardChannel* const channel_;
  std::deque<std::vector<uint8_t>> pending_;
};

/// The in-process transport: a mutex + condition-variable frame queue.
/// Any number of senders and receivers; frames arrive in send order.
class InProcessChannel final : public ShardChannel {
 public:
  explicit InProcessChannel(ChannelOptions options = {})
      : options_(options) {}
  AOD_DISALLOW_COPY_AND_ASSIGN(InProcessChannel);

  Status Send(std::vector<uint8_t> frame) override;
  Result<std::vector<uint8_t>> Receive() override;
  void Close() override;
  int64_t bytes_sent() const override;
  int64_t bytes_received() const override;

 private:
  const ChannelOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::vector<uint8_t>> frames_;
  int64_t bytes_sent_ = 0;
  int64_t bytes_received_ = 0;
  bool closed_ = false;
};

/// Full-duplex stream transport over a pair of file descriptors —
/// a connected localhost TCP socket (the off-box seam) or a pipe pair
/// (the stdio mode of shard_runner_main). Frames are length-delimited
/// by their own wire header: Receive reads the 24-byte header, sanity-
/// checks magic/version/declared size against max_frame_bytes, then
/// reads exactly the payload, handling partial reads and EINTR; a byte
/// stream that ends mid-frame yields kIoError ("EOF mid-frame"), a
/// clean EOF at a frame boundary yields kClosed.
///
/// Send never blocks on the peer: frames are handed to a dedicated
/// writer thread with an unbounded queue, so a coordinator and an
/// in-process runner sharing one thread can exchange arbitrarily large
/// frames without deadlocking on kernel socket buffers. A write error
/// is latched and surfaced by the next Send.
class SocketShardChannel final : public ShardChannel {
 public:
  /// Connects to host:port (blocking, bounded by timeout_seconds).
  static Result<std::unique_ptr<SocketShardChannel>> Connect(
      const std::string& host, uint16_t port, double timeout_seconds,
      ChannelOptions options = {});

  /// Wraps an already-connected socket; takes ownership of `fd`.
  static std::unique_ptr<SocketShardChannel> Adopt(int fd,
                                                   ChannelOptions options = {});

  /// Wraps a read fd and a write fd (e.g. stdin/stdout of a runner
  /// process, or the ends of two pipes); takes ownership of both.
  static std::unique_ptr<SocketShardChannel> AdoptPair(
      int read_fd, int write_fd, ChannelOptions options = {});

  ~SocketShardChannel() override;
  AOD_DISALLOW_COPY_AND_ASSIGN(SocketShardChannel);

  Status Send(std::vector<uint8_t> frame) override;
  Result<std::vector<uint8_t>> Receive() override;
  void Close() override;
  int64_t bytes_sent() const override;
  int64_t bytes_received() const override;

  /// Bytes accepted by Send but not yet written to the fd — the depth of
  /// the writer thread's queue. The queue itself is unbounded (so a
  /// single-threaded coordinator/runner pair can never deadlock on
  /// kernel buffers); a server streaming results to untrusted clients
  /// polls this and drops the connection of a reader that stops reading,
  /// which is where the slow-reader bound belongs (src/serve/server.cc).
  int64_t send_backlog_bytes() const;

 private:
  SocketShardChannel(int read_fd, int write_fd, bool is_socket,
                     ChannelOptions options);

  void WriterLoop();
  /// Reads exactly `size` bytes with poll-bounded waits. `*got` is the
  /// byte count actually read when the stream ended early. Returns
  /// kClosed when Close() is called on *this* endpoint mid-wait (the
  /// wake pipe) — the local half of the never-strand-a-receiver rule.
  Status ReadFully(uint8_t* out, size_t size, size_t* got);

  const ChannelOptions options_;
  const int read_fd_;
  const int write_fd_;
  /// Same fd on both sides and shutdown(SHUT_WR) applies (TCP); pipes
  /// close the write fd instead.
  const bool is_socket_;
  /// Self-pipe: Close() writes a byte so a Receive blocked in poll on
  /// this endpoint wakes immediately with kClosed.
  int wake_fds_[2] = {-1, -1};

  mutable std::mutex mutex_;
  std::condition_variable writer_cv_;
  std::deque<std::vector<uint8_t>> outgoing_;
  Status write_status_;
  bool closed_ = false;
  /// Set by WriterLoop when the pipe-mode orderly drain closed
  /// write_fd_ itself (pipes have no half-close); tells the destructor
  /// not to close the fd number a second time.
  bool write_fd_closed_ = false;
  int64_t bytes_sent_ = 0;
  int64_t bytes_received_ = 0;
  /// Enqueued-but-unwritten bytes, including a frame mid-write; zeroed
  /// when a write error abandons the queue.
  int64_t backlog_bytes_ = 0;
  std::thread writer_;
};

/// A freshly connected localhost TCP endpoint pair. This is the
/// reconnectable-endpoint seam of the shard supervisor: every
/// (re)establishment of a socket-transport attempt builds its own pair
/// — own ephemeral listener, connect, accept, listener dropped — so
/// concurrent respawns and speculative backup attempts never contend on
/// a shared accept queue or adopt each other's connections.
struct LoopbackChannelPair {
  /// The connecting side (the coordinator keeps this one).
  std::unique_ptr<SocketShardChannel> near;
  /// The accepted side (handed to the in-process runner).
  std::unique_ptr<SocketShardChannel> far;
};

Result<LoopbackChannelPair> ConnectLoopbackPair(double timeout_seconds,
                                                ChannelOptions options = {});

/// Accepts coordinator-side connections for socket/process transports
/// and for the serving layer. Binds 127.0.0.1 on an ephemeral port (or
/// a requested one); never listens off-loopback.
class SocketListener {
 public:
  static Result<std::unique_ptr<SocketListener>> Bind(uint16_t port = 0);
  ~SocketListener();
  AOD_DISALLOW_COPY_AND_ASSIGN(SocketListener);

  uint16_t port() const { return port_; }

  /// Accepts one connection (poll-bounded); the returned fd is owned by
  /// the caller (hand it to SocketShardChannel::Adopt).
  Result<int> AcceptFd(double timeout_seconds);

 private:
  SocketListener(int fd, uint16_t port) : fd_(fd), port_(port) {}
  const int fd_;
  const uint16_t port_;
};

/// Spool-directory transport for batch/offline topologies: each frame
/// is one file, written atomically (temp file + rename) under an
/// ascending sequence name, consumed (and deleted) in sequence order by
/// the receiver. Close publishes a `closed` marker carrying the final
/// frame count, so a receiver that drained the spool returns kClosed
/// instead of polling forever. One directory carries one direction; a
/// coordinator/runner pair uses two directories.
///
/// A frame file shorter than its own header, or whose length disagrees
/// with the header's declared payload size, is rejected as a torn spool
/// frame (kParseError) — the atomic rename makes this unreachable
/// through this API, so seeing one means the spool was tampered with.
///
/// On a clean close — the receiver drains the spool down to the closed
/// marker — the receiver removes the marker and the (now empty) spool
/// directory itself. Any error path leaves the directory and its
/// remaining files in place for post-mortem inspection.
class FileShardChannel final : public ShardChannel {
 public:
  enum class Role { kSender, kReceiver };

  /// `directory` must exist. The sender creates its files inside it.
  FileShardChannel(std::string directory, Role role,
                   ChannelOptions options = {});
  AOD_DISALLOW_COPY_AND_ASSIGN(FileShardChannel);

  Status Send(std::vector<uint8_t> frame) override;
  Result<std::vector<uint8_t>> Receive() override;
  void Close() override;
  int64_t bytes_sent() const override;
  int64_t bytes_received() const override;

 private:
  std::string FramePath(int64_t seq) const;

  const std::string directory_;
  const Role role_;
  const ChannelOptions options_;
  mutable std::mutex mutex_;
  int64_t send_seq_ = 0;
  int64_t recv_seq_ = 0;
  int64_t bytes_sent_ = 0;
  int64_t bytes_received_ = 0;
  bool closed_ = false;
};

}  // namespace shard
}  // namespace aod

#endif  // AOD_SHARD_CHANNEL_H_
