// Per-shard supervision: retry, respawn, speculate, degrade.
//
// PR 5/6 made every transport fault fail-stop: one torn frame or dead
// runner aborted the whole run with DiscoveryResult::shard_status,
// throwing away all sibling shards' work. A ShardSupervisor turns shard
// failure into a retried, bounded, observable event — the MapReduce
// re-execution + backup-task model applied to the shard seam:
//
//   retry / respawn   a failed level (or failed establishment) tears the
//                     attempt down and builds a fresh one — new process
//                     or socket, re-seeded from the coordinator's
//                     encode-once bootstrap frames — after an
//                     exponential backoff with deterministic jitter,
//                     up to max_retries re-attempts per level;
//   speculation       when the coordinator decides a shard is a
//                     straggler (>= factor x the median shard latency
//                     for the level), it launches one backup attempt
//                     beside the primary and takes whichever finishes
//                     first. Outcomes are pure functions of the batch,
//                     so either attempt's reply is bit-identical; the
//                     coordinator folds exactly one winner per shard
//                     (dedup by the level's result cell, keyed by the
//                     existing deterministic slot keys), so the merge
//                     never sees duplicates;
//   degradation       once the retry budget is exhausted on the socket
//                     or process transport, the shard's candidate slice
//                     executes in-process on the coordinator's pool (an
//                     undecorated InProcessChannel attempt seeded from
//                     the same bootstrap frames) instead of aborting.
//
// Attempt identity crosses the wire: each (re)establishment carries a
// fresh attempt_id in its config block, echoed by the runner's stats
// footer, so a superseded attempt's footer is distinguishable from the
// live one.
//
// Strict mode: max_retries == 0 disables all three mechanisms and
// preserves the PR 5/6 failure contract exactly — any fault is a typed
// non-OK status, never a hang, never a partially merged level
// (tests/shard_channel_conformance_test pins this with retries pinned
// to 0).
//
// Threading: a supervisor's primary-path methods (Start, ExecuteLevel,
// Finish-phase calls) are driven by one task at a time. Speculation
// adds exactly two cross-thread touch points, both internal: the backup
// attempt lives in its own slot, and AbortOther() closes the losing
// attempt's channels from the winning task (channel Close is
// thread-safe and wakes blocked receivers). Attempt lifetime is guarded
// by a mutex so a Close from the winner never races a teardown.
#ifndef AOD_SHARD_SUPERVISOR_H_
#define AOD_SHARD_SUPERVISOR_H_

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "data/encoder.h"
#include "shard/channel.h"
#include "shard/shard_runner.h"
#include "shard/wire.h"

namespace aod {

namespace exec {
class ThreadPool;
}  // namespace exec

namespace shard {

struct ShardTransportOptions;

/// The supervision policy, fixed for a run (DiscoveryOptions carries the
/// user-facing knobs).
struct ShardSupervisionOptions {
  /// Re-attempts allowed per level (and for the initial establishment)
  /// before the shard degrades or the run aborts. 0 = strict mode: no
  /// retry, no speculation, no fallback — the PR 5 fail-stop contract.
  int max_retries = 2;
  /// Base backoff before the first re-attempt; doubles per attempt with
  /// deterministic (hash-of-(shard, attempt)) jitter, capped at 2s and
  /// at the run deadline.
  double retry_backoff_ms = 25.0;
  /// Straggler hedging: >= this factor x the median shard latency of
  /// the level launches one backup attempt (0 = off). Needs a pool.
  double speculation_factor = 0.0;
  /// After retry exhaustion on socket/process transports, execute the
  /// shard's slice in-process instead of aborting.
  bool fallback_inproc = true;
  /// Absolute deadline of the discovery run (time_point::min() = none).
  /// Every per-attempt receive timeout, accept timeout and backoff
  /// sleep is clamped to the time remaining, so a dead runner cannot
  /// overshoot a budgeted run by the full I/O timeout.
  std::chrono::steady_clock::time_point run_deadline =
      std::chrono::steady_clock::time_point::min();
};

/// The coordinator's encode-once bootstrap: everything a fresh attempt
/// needs to be re-seeded, shared by all shards' supervisors. Frames are
/// encoded (and checksummed) once per run, not once per attempt.
struct ShardBootstrap {
  const EncodedTable* table = nullptr;
  /// kTableBlock for process runners (empty otherwise) + its codec
  /// byte counts, credited per shipment.
  std::vector<uint8_t> table_frame;
  CodecByteCounts table_counts;
  /// The base (level-1) partitions: one kBatch envelope of
  /// `base_frames` kPartitionBlock frames (or the single frame when
  /// base_frames == 1).
  std::vector<uint8_t> base_shipment;
  CodecByteCounts base_counts;
  int base_frames = 0;
  /// Per-runner options template; the supervisor stamps attempt_id.
  ShardRunnerOptions runner_options;
  int num_shards = 1;
  /// Coordinator pool width, for the per-child thread slice.
  int pool_workers = 1;
};

/// One process reaped by the coordinator's shared-deadline reap pass.
struct ShardReapJob {
  pid_t pid = -1;
};

class ShardSupervisor {
 public:
  /// All pointers are borrowed and must outlive the supervisor.
  ShardSupervisor(int shard_id, const ShardBootstrap* bootstrap,
                  const ShardTransportOptions* transport,
                  const ShardSupervisionOptions& supervision,
                  exec::ThreadPool* pool);
  ~ShardSupervisor();
  AOD_DISALLOW_COPY_AND_ASSIGN(ShardSupervisor);

  /// Establishes and seeds the first attempt, with the full retry +
  /// fallback ladder in supervised mode. In strict mode a failure is
  /// returned as-is and the partially built attempt (possibly holding a
  /// spawned pid) is kept for the Finish-phase reap.
  Status Start();

  /// Ships `batch`, pumps an in-process runner if the attempt has one,
  /// and receives the chunked reply into `out` (ascending slot order).
  /// On failure: teardown, backoff, respawn, re-execute — up to
  /// max_retries re-attempts — then the in-process fallback; only when
  /// all of that is exhausted does the error surface. `abandoned` is
  /// polled between steps so a superseded primary (its backup already
  /// won) stops promptly. Empty batches still make the round trip: the
  /// request/reply cadence is one frame per shard per level.
  Status ExecuteLevel(const std::vector<WireCandidate>& batch,
                      const std::function<bool()>& cancel,
                      const std::function<bool()>& abandoned,
                      std::vector<WireOutcome>* out);

  /// The speculative backup: one fresh attempt (no retries — a backup
  /// that fails is simply a loss), executed beside the primary.
  Status ExecuteLevelBackup(const std::vector<WireCandidate>& batch,
                            const std::function<bool()>& cancel,
                            const std::function<bool()>& abandoned,
                            std::vector<WireOutcome>* out);

  /// Called by the level's winning task: closes the losing attempt's
  /// channels so a blocked receive wakes now instead of at its timeout.
  void AbortOther(bool winner_is_backup);

  /// Post-join reconciliation of a speculated level (single-threaded):
  /// adopts the backup as the current attempt if it won (tearing the
  /// superseded primary down), otherwise discards it; counts the
  /// win/loss.
  void ResolveLevel(bool backup_launched, bool backup_won);

  // --- Finish phase (driven by ShardCoordinator::Finish, in order) ---
  /// Ships the kShutdown frame on the current attempt.
  Status SendShutdown();
  /// One ServeOne for an attempt with an in-process runner (answers the
  /// shutdown with the stats footer).
  Status PumpShutdownServe();
  /// Drains stale reply frames (bounded) and decodes the stats footer,
  /// validating served-frame count and attempt id. Strict mode returns
  /// the PR 5 typed errors; supervised mode tolerates a lost footer
  /// (the level work is already merged) and counts it instead.
  Status CollectFooter();
  void CloseChannels();
  /// Hands every still-live runner process over for the coordinator's
  /// shared-deadline reap; the supervisor forgets the pids.
  void ReleaseProcesses(std::vector<ShardReapJob>* jobs);

  // --- Observability (read after tasks joined; atomics for the two
  // counters speculation can touch cross-thread) ---
  int shard_id() const { return shard_id_; }
  bool strict() const { return supervision_.max_retries <= 0; }
  int64_t retries() const { return retries_.load(); }
  int64_t respawns() const { return respawns_.load(); }
  int64_t speculative_wins() const { return speculative_wins_; }
  int64_t speculative_losses() const { return speculative_losses_; }
  bool fell_back() const { return fell_back_; }
  bool footer_missing() const { return footer_missing_; }
  bool footer_valid() const { return footer_valid_; }
  const ShardStatsFooter& footer() const { return footer_; }
  /// Wire bytes both directions, live attempt plus every torn-down one.
  int64_t bytes_shipped() const;
  CodecByteCounts type_byte_counts(FrameType type) const;

 private:
  /// One (re)establishment: channels, receiver, in-process runner or
  /// spawned process. Channel storage precedes the runner so the runner
  /// (which borrows channel pointers) dies first.
  struct Attempt {
    uint32_t id = 0;
    /// True for the degraded in-process fallback (undecorated channels).
    bool fallback = false;
    std::unique_ptr<ShardChannel> to;
    std::unique_ptr<ShardChannel> from;
    std::unique_ptr<ShardChannel> runner_side;
    ShardChannel* to_shard = nullptr;
    ShardChannel* from_shard = nullptr;
    std::unique_ptr<LogicalFrameReceiver> receiver;
    std::unique_ptr<ShardRunner> runner;  // null for process attempts
    pid_t pid = -1;
    /// Frames this attempt was sent that its runner serves (bases +
    /// batches + shutdown) — the footer cross-check is per attempt.
    int64_t frames_sent = 0;
  };

  double DeadlineRemaining() const;  // +inf when no deadline
  /// min(io timeout, time remaining to the run deadline), floored so a
  /// receive still gets a beat to drain an already-arrived frame.
  double BoundedIoTimeout() const;
  bool DeadlineExpired() const;
  std::unique_ptr<ShardChannel> Decorate(std::unique_ptr<ShardChannel> ch);
  void AddTypeCounts(FrameType type, const CodecByteCounts& counts);

  /// Builds one attempt (connect/spawn/bootstrap-send). On failure the
  /// partially built attempt is still handed back through `out` so the
  /// caller can keep it for reaping (strict) or tear it down (retry).
  Status BuildAttempt(bool force_inproc, std::unique_ptr<Attempt>* out);
  /// Ships the base partitions and, for attempts with an in-process
  /// runner, pumps them into the runner's cache.
  Status SeedAttempt(Attempt* attempt, const std::function<bool()>& cancel);
  /// BuildAttempt + install as current_ + SeedAttempt.
  Status EstablishCurrent(bool force_inproc,
                          const std::function<bool()>& cancel);
  /// One send/pump/receive round for a level on one attempt.
  Status ExecuteLevelOnce(Attempt* attempt,
                          const std::vector<WireCandidate>& batch,
                          const std::function<bool()>& cancel,
                          const std::function<bool()>& abandoned,
                          std::vector<WireOutcome>* out);
  /// Exponential backoff with deterministic jitter before re-attempt
  /// `attempt_try`; returns early on cancel/abandon/deadline.
  void Backoff(int attempt_try, const std::function<bool()>& cancel,
               const std::function<bool()>& abandoned);
  /// Swaps the slot empty under the attempt mutex, then closes channels,
  /// SIGKILLs + reaps a live process, and folds the attempt's channel
  /// byte counters into retired_bytes_.
  void Teardown(std::unique_ptr<Attempt>* slot);
  void DestroyAttempt(std::unique_ptr<Attempt> attempt);

  const int shard_id_;
  const ShardBootstrap* const bootstrap_;
  const ShardTransportOptions* const transport_;
  const ShardSupervisionOptions supervision_;
  exec::ThreadPool* const pool_;

  /// Guards current_/backup_ pointer identity against AbortOther from
  /// the winning task; the owning task still uses the raw attempt
  /// outside the lock (channel ops are thread-safe, destruction always
  /// goes through Teardown's swap-then-destroy).
  mutable std::mutex attempts_mutex_;
  std::unique_ptr<Attempt> current_;
  std::unique_ptr<Attempt> backup_;
  std::atomic<uint32_t> attempt_seq_{0};

  /// Guards the codec byte counters (primary and backup tasks both
  /// encode/decode).
  mutable std::mutex stats_mutex_;
  CodecByteCounts by_type_[static_cast<size_t>(FrameType::kBatch) + 1];
  int64_t retired_bytes_ = 0;

  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> respawns_{0};
  int64_t speculative_wins_ = 0;
  int64_t speculative_losses_ = 0;
  bool fell_back_ = false;
  bool footer_missing_ = false;
  bool footer_valid_ = false;
  ShardStatsFooter footer_;
};

}  // namespace shard
}  // namespace aod

#endif  // AOD_SHARD_SUPERVISOR_H_
