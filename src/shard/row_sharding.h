// Row-space sharding: the coordinator side of the fragment map/reduce.
//
// Where the candidate-space coordinator (coordinator.h) splits the
// *lattice* and ships the whole table to every process runner, this
// module splits the *rows*: each shard receives only its contiguous row
// slice (kTableBlock with a global row offset — O(rows / row_shards)
// table bytes per shard instead of O(rows)), partitions the slice
// locally into one rank-keyed PartitionFragment per attribute, and
// ships the fragments back; the class-stitching reducer
// (partition/partition_stitch.h) merges them into the canonical base
// partitions the discovery driver then uses exactly as if it had
// computed them itself. The two axes compose: the stitched bases feed
// either the unsharded driver's cache preload or the candidate-space
// coordinator's bootstrap.
//
// The conversation per shard, over any transport:
//
//   coordinator -> runner   kConfigBlock (row range set), kTableBlock
//                           (the row slice), kShutdown
//   runner -> coordinator   one kPartitionFragment per attribute (one
//                           kBatch envelope when there are several),
//                           then the kStatsFooter terminal frame
//
// Sends never block on any transport (unbounded send queues), so the
// coordinator pre-sends the whole conversation and — for the inproc and
// socket transports — serves the runner inline on its own thread. The
// row phase is fail-stop: shards run sequentially, any transport or
// decode error aborts the phase with a typed Status (surfaced as
// DiscoveryResult::shard_status), and there is no retry/supervision
// ladder — the phase is a short bounded prologue, not a long-lived
// conversation worth supervising.
//
// Determinism: fragments are pure functions of (column ranks, range),
// the stitch is a pure function of the fragments, and
// StitchPartitions output is pinned bit-identical to FromColumn on the
// full table — so row-sharded discovery output is bit-identical to
// unsharded for any row_shards × threads × transport × compression
// point (gated in tests/parallel_determinism_test).
#ifndef AOD_SHARD_ROW_SHARDING_H_
#define AOD_SHARD_ROW_SHARDING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/encoder.h"
#include "partition/partition_stitch.h"
#include "partition/stripped_partition.h"
#include "shard/channel.h"
#include "shard/coordinator.h"
#include "shard/wire.h"

namespace aod {
namespace shard {

/// One shard's contiguous row range [begin, end).
struct RowRange {
  int64_t begin = 0;
  int64_t end = 0;
};

/// Balanced contiguous split: shard s gets
/// [num_rows * s / row_shards, num_rows * (s + 1) / row_shards) — ranges
/// tile [0, num_rows) exactly and differ in size by at most one row.
/// Ranges may be empty when row_shards > num_rows.
std::vector<RowRange> AssignRowRanges(int64_t num_rows, int row_shards);

/// Byte accounting of one row-shard phase (DiscoveryStats / exp8 feeds).
struct RowShardStats {
  int row_shards = 0;
  /// Wire bytes of the table-slice frame shipped to each shard — the
  /// O(rows / row_shards) quantity exp8's row-shard dimension reports.
  /// Empty-range shards (skipped conversations) report 0.
  std::vector<int64_t> table_bytes_per_shard;
  /// Raw/wire counts of the sliced table frames (coordinator encode
  /// side) and the fragment frames (coordinator decode side).
  CodecByteCounts slice_counts;
  CodecByteCounts fragment_counts;
  /// Total frame bytes both directions as observed from the coordinator
  /// end of each link, summed over the shards.
  int64_t bytes_shipped_total = 0;
};

/// Runs the whole row-shard phase: assigns ranges, runs one fragment
/// conversation per shard (sequentially, fail-stop) over the configured
/// transport, and stitches the fragments into one canonical base
/// partition per attribute — bit-identical to
/// StrippedPartition::FromColumn on each column. Only
/// `transport.transport`, `runner_path`, `io_timeout_seconds` and
/// `max_frame_bytes` are consulted; supervision and the channel
/// decorator do not apply to this phase (see file comment).
/// Empty-range shards are not contacted; their empty fragments are
/// synthesized locally.
Result<std::vector<StrippedPartition>> ComputeRowShardedBases(
    const EncodedTable& table, int row_shards,
    const ShardTransportOptions& transport, bool wire_compression,
    RowShardStats* stats = nullptr);

/// Runner side of one fragment conversation, config frame onward:
/// decodes the kConfigBlock (must carry a row range), then delegates to
/// ServeRowShardAfterConfig. Used by the coordinator to serve inproc
/// and socket shards inline.
Status ServeRowShard(ShardChannel* in, ShardChannel* out);

/// Runner side after the config is already decoded (shard_runner_main
/// enters here): receives the kTableBlock slice, checks it against the
/// config's range, computes one fragment per column, ships them (one
/// kBatch envelope when there are several), answers the kShutdown with
/// a kStatsFooter. Does not close the channels.
Status ServeRowShardAfterConfig(const WireRunnerConfig& config,
                                ShardChannel* in, ShardChannel* out);

}  // namespace shard
}  // namespace aod

#endif  // AOD_SHARD_ROW_SHARDING_H_
