#include "shard/channel.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/endian.h"
#include "shard/wire.h"

namespace aod {
namespace shard {

namespace {

using Clock = std::chrono::steady_clock;

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Milliseconds until `deadline`, clamped for poll(); -1 = no deadline.
int PollTimeoutMs(bool bounded, Clock::time_point deadline) {
  if (!bounded) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(std::min<int64_t>(left.count(), 60'000));
}

}  // namespace

// --------------------------------------------------------------- batching --

Status BatchingFrameSender::Add(std::vector<uint8_t> frame) {
  pending_bytes_ += frame.size();
  pending_.push_back(std::move(frame));
  if (pending_bytes_ >= threshold_) return Flush();
  return Status::OK();
}

Status BatchingFrameSender::Flush() {
  if (pending_.empty()) return Status::OK();
  std::vector<uint8_t> out = pending_.size() == 1
                                 ? std::move(pending_.front())
                                 : EncodeBatchEnvelope(pending_);
  pending_.clear();
  pending_bytes_ = 0;
  return channel_->Send(std::move(out));
}

Result<std::vector<uint8_t>> LogicalFrameReceiver::Receive() {
  if (!pending_.empty()) {
    std::vector<uint8_t> frame = std::move(pending_.front());
    pending_.pop_front();
    return frame;
  }
  AOD_ASSIGN_OR_RETURN(std::vector<uint8_t> frame, channel_->Receive());
  // Cheap peek: only a well-formed header typed kBatch takes the unwrap
  // path; everything else (including garbage) goes to the consumer's
  // own DecodeFrame, which owns the error reporting.
  if (frame.size() < kFrameHeaderBytes ||
      endian::LoadU32(frame.data()) != kWireMagic ||
      endian::LoadU16(frame.data() + 6) !=
          static_cast<uint16_t>(FrameType::kBatch)) {
    return frame;
  }
  AOD_ASSIGN_OR_RETURN(DecodedFrame decoded, DecodeFrame(frame));
  AOD_ASSIGN_OR_RETURN(std::vector<std::vector<uint8_t>> inner,
                       UnpackBatchEnvelope(decoded));
  for (std::vector<uint8_t>& f : inner) pending_.push_back(std::move(f));
  std::vector<uint8_t> first = std::move(pending_.front());
  pending_.pop_front();
  return first;
}

// ------------------------------------------------------------- in-process --

Status InProcessChannel::Send(std::vector<uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return Status::Closed("send on closed shard channel");
    if (options_.max_frame_bytes > 0 &&
        static_cast<int64_t>(frame.size()) > options_.max_frame_bytes) {
      return Status::InvalidArgument("frame exceeds max_frame_bytes");
    }
    bytes_sent_ += static_cast<int64_t>(frame.size());
    frames_.push_back(std::move(frame));
  }
  cv_.notify_one();
  return Status::OK();
}

Result<std::vector<uint8_t>> InProcessChannel::Receive() {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto ready = [this] { return !frames_.empty() || closed_; };
  if (options_.receive_timeout_seconds > 0.0) {
    const auto timeout = std::chrono::duration<double>(
        options_.receive_timeout_seconds);
    if (!cv_.wait_for(lock, timeout, ready)) {
      return Status::IoError("shard channel receive timed out");
    }
  } else {
    cv_.wait(lock, ready);
  }
  if (frames_.empty()) {
    return Status::Closed("shard channel closed");
  }
  std::vector<uint8_t> frame = std::move(frames_.front());
  frames_.pop_front();
  bytes_received_ += static_cast<int64_t>(frame.size());
  return frame;
}

void InProcessChannel::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

int64_t InProcessChannel::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_sent_;
}

int64_t InProcessChannel::bytes_received() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_received_;
}

// ----------------------------------------------------------------- socket --

Result<std::unique_ptr<SocketShardChannel>> SocketShardChannel::Connect(
    const std::string& host, uint16_t port, double timeout_seconds,
    ChannelOptions options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket"));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable shard host " + host);
  }

  // Non-blocking connect bounded by the timeout, then back to blocking
  // (Receive does its own poll-based waiting).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_seconds * 1000.0));
    if (rc <= 0) {
      ::close(fd);
      return Status::IoError(rc == 0 ? "shard connect timed out"
                                     : ErrnoMessage("poll"));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return Status::IoError(std::string("shard connect failed: ") +
                             std::strerror(err));
    }
  } else if (rc != 0) {
    ::close(fd);
    return Status::IoError(ErrnoMessage("connect"));
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Adopt(fd, options);
}

std::unique_ptr<SocketShardChannel> SocketShardChannel::Adopt(
    int fd, ChannelOptions options) {
  return std::unique_ptr<SocketShardChannel>(
      new SocketShardChannel(fd, fd, /*is_socket=*/true, options));
}

std::unique_ptr<SocketShardChannel> SocketShardChannel::AdoptPair(
    int read_fd, int write_fd, ChannelOptions options) {
  return std::unique_ptr<SocketShardChannel>(
      new SocketShardChannel(read_fd, write_fd, /*is_socket=*/false, options));
}

SocketShardChannel::SocketShardChannel(int read_fd, int write_fd,
                                       bool is_socket, ChannelOptions options)
    : options_(options),
      read_fd_(read_fd),
      write_fd_(write_fd),
      is_socket_(is_socket),
      writer_([this] { WriterLoop(); }) {
  if (::pipe2(wake_fds_, O_CLOEXEC | O_NONBLOCK) != 0) {
    wake_fds_[0] = wake_fds_[1] = -1;  // degrade to timeout-bounded waits
  }
}

SocketShardChannel::~SocketShardChannel() {
  Close();
  if (writer_.joinable()) writer_.join();  // publishes write_fd_closed_
  ::close(read_fd_);
  if (write_fd_ != read_fd_ && !write_fd_closed_) ::close(write_fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

void SocketShardChannel::WriterLoop() {
  for (;;) {
    std::vector<uint8_t> frame;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      writer_cv_.wait(lock, [this] { return !outgoing_.empty() || closed_; });
      if (outgoing_.empty()) break;  // closed and drained
      frame = std::move(outgoing_.front());
      outgoing_.pop_front();
    }
    size_t sent = 0;
    while (sent < frame.size()) {
      // MSG_NOSIGNAL: a peer that died must surface as EPIPE, not kill
      // the process with SIGPIPE. Pipes cannot take the flag; runner
      // processes ignore SIGPIPE instead (runner_main).
      const ssize_t n =
          is_socket_ ? ::send(write_fd_, frame.data() + sent,
                              frame.size() - sent, MSG_NOSIGNAL)
                     : ::write(write_fd_, frame.data() + sent,
                               frame.size() - sent);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        write_status_ = Status::IoError(ErrnoMessage("shard channel write"));
        outgoing_.clear();
        backlog_bytes_ = 0;
        return;
      }
      sent += static_cast<size_t>(n);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      backlog_bytes_ -= static_cast<int64_t>(frame.size());
    }
  }
  // Orderly flush complete: signal EOF to the peer's receiver. A pipe
  // has no half-close, so the fd itself must close here — flagged so
  // the destructor does not close the (possibly reused) number again.
  if (is_socket_) {
    ::shutdown(write_fd_, SHUT_WR);
  } else {
    ::close(write_fd_);
    std::lock_guard<std::mutex> lock(mutex_);
    write_fd_closed_ = true;
  }
}

Status SocketShardChannel::Send(std::vector<uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!write_status_.ok()) return write_status_;
    if (closed_) return Status::Closed("send on closed shard channel");
    bytes_sent_ += static_cast<int64_t>(frame.size());
    backlog_bytes_ += static_cast<int64_t>(frame.size());
    outgoing_.push_back(std::move(frame));
  }
  writer_cv_.notify_one();
  return Status::OK();
}

Status SocketShardChannel::ReadFully(uint8_t* out, size_t size, size_t* got) {
  *got = 0;
  const bool bounded = options_.receive_timeout_seconds > 0.0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.receive_timeout_seconds));
  while (*got < size) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return Status::Closed("shard channel closed");
    }
    pollfd pfds[2] = {{read_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const nfds_t nfds = wake_fds_[0] >= 0 ? 2 : 1;
    const int rc = ::poll(pfds, nfds, PollTimeoutMs(bounded, deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("poll"));
    }
    if (rc == 0) {
      if (Clock::now() >= deadline) {
        return Status::IoError("shard channel receive timed out");
      }
      continue;
    }
    if (pfds[0].revents == 0) continue;  // only the wake pipe fired
    const ssize_t n = ::read(read_fd_, out + *got, size - *got);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return Status::IoError(ErrnoMessage("shard channel read"));
    if (n == 0) return Status::OK();  // EOF; caller inspects *got
    *got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> SocketShardChannel::Receive() {
  uint8_t header[kFrameHeaderBytes];
  size_t got = 0;
  AOD_RETURN_NOT_OK(ReadFully(header, sizeof(header), &got));
  if (got == 0) {
    return Status::Closed("shard channel closed by peer");
  }
  if (got < sizeof(header)) {
    return Status::IoError("shard channel EOF mid-frame (header)");
  }
  // Sanity-check the length header before trusting it with an
  // allocation; full validation (checksum included) is DecodeFrame's.
  if (endian::LoadU32(header) != kWireMagic) {
    return Status::ParseError("shard byte stream desynchronized (bad magic)");
  }
  if (endian::LoadU16(header + 4) != kWireVersion) {
    return Status::ParseError("unsupported wire version on shard channel");
  }
  // Subtraction, not addition: `payload_size + header` could wrap a
  // hostile length into passing the cap and detonate the allocation.
  const uint64_t payload_size = endian::LoadU64(header + 8);
  if (options_.max_frame_bytes > 0) {
    const uint64_t cap = static_cast<uint64_t>(options_.max_frame_bytes);
    if (cap <= kFrameHeaderBytes ||
        payload_size > cap - kFrameHeaderBytes) {
      return Status::ParseError("frame exceeds max_frame_bytes");
    }
  }
  std::vector<uint8_t> frame(kFrameHeaderBytes +
                             static_cast<size_t>(payload_size));
  std::memcpy(frame.data(), header, sizeof(header));
  AOD_RETURN_NOT_OK(ReadFully(frame.data() + kFrameHeaderBytes,
                              static_cast<size_t>(payload_size), &got));
  if (got < payload_size) {
    return Status::IoError("shard channel EOF mid-frame (payload)");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bytes_received_ += static_cast<int64_t>(frame.size());
  }
  return frame;
}

void SocketShardChannel::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
  }
  writer_cv_.notify_all();
  if (wake_fds_[1] >= 0) {
    const uint8_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &one, 1);
  }
}

int64_t SocketShardChannel::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_sent_;
}

int64_t SocketShardChannel::bytes_received() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_received_;
}

int64_t SocketShardChannel::send_backlog_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backlog_bytes_;
}

// --------------------------------------------------------------- listener --

Result<std::unique_ptr<SocketListener>> SocketListener::Bind(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);  // 0 = ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError(ErrnoMessage("bind"));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status::IoError(ErrnoMessage("getsockname"));
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Status::IoError(ErrnoMessage("listen"));
  }
  return std::unique_ptr<SocketListener>(
      new SocketListener(fd, ntohs(addr.sin_port)));
}

SocketListener::~SocketListener() { ::close(fd_); }

Result<int> SocketListener::AcceptFd(double timeout_seconds) {
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_seconds * 1000.0));
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0) return Status::IoError(ErrnoMessage("poll"));
    if (rc == 0) return Status::IoError("shard runner never connected");
    break;
  }
  const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return Status::IoError(ErrnoMessage("accept"));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<LoopbackChannelPair> ConnectLoopbackPair(double timeout_seconds,
                                                ChannelOptions options) {
  // The loopback connect completes out of the listen backlog, so
  // connect-then-accept on one thread is safe; the listener lives only
  // for this handshake.
  AOD_ASSIGN_OR_RETURN(std::unique_ptr<SocketListener> listener,
                       SocketListener::Bind());
  LoopbackChannelPair pair;
  AOD_ASSIGN_OR_RETURN(pair.near,
                       SocketShardChannel::Connect("127.0.0.1",
                                                   listener->port(),
                                                   timeout_seconds, options));
  AOD_ASSIGN_OR_RETURN(int accepted_fd, listener->AcceptFd(timeout_seconds));
  pair.far = SocketShardChannel::Adopt(accepted_fd, options);
  return pair;
}

// ------------------------------------------------------------------- file --

namespace fs = std::filesystem;

FileShardChannel::FileShardChannel(std::string directory, Role role,
                                   ChannelOptions options)
    : directory_(std::move(directory)), role_(role), options_(options) {}

std::string FileShardChannel::FramePath(int64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "frame-%09lld",
                static_cast<long long>(seq));
  return directory_ + "/" + name;
}

Status FileShardChannel::Send(std::vector<uint8_t> frame) {
  if (role_ != Role::kSender) {
    return Status::Internal("send on the receiver end of a file channel");
  }
  int64_t seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return Status::Closed("send on closed shard channel");
    seq = send_seq_++;
    bytes_sent_ += static_cast<int64_t>(frame.size());
  }
  const std::string tmp = directory_ + "/.inflight-" + std::to_string(seq);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot create spool frame " + tmp);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
    if (!out.flush()) return Status::IoError("short write to " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, FramePath(seq), ec);  // atomic publish
  if (ec) return Status::IoError("spool rename failed: " + ec.message());
  return Status::OK();
}

Result<std::vector<uint8_t>> FileShardChannel::Receive() {
  const bool bounded = options_.receive_timeout_seconds > 0.0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.receive_timeout_seconds));
  const std::string marker = directory_ + "/closed";
  for (;;) {
    int64_t seq;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return Status::Closed("shard channel closed");
      seq = recv_seq_;
    }
    const std::string path = FramePath(seq);
    std::error_code ec;
    if (fs::exists(path, ec)) {
      const auto len = fs::file_size(path, ec);
      if (ec) return Status::IoError("spool stat failed: " + ec.message());
      if (options_.max_frame_bytes > 0 &&
          len > static_cast<uint64_t>(options_.max_frame_bytes)) {
        return Status::ParseError("frame exceeds max_frame_bytes");
      }
      if (len < kFrameHeaderBytes) {
        return Status::ParseError("torn spool frame (shorter than header)");
      }
      std::vector<uint8_t> frame(static_cast<size_t>(len));
      {
        std::ifstream in(path, std::ios::binary);
        if (!in.read(reinterpret_cast<char*>(frame.data()),
                     static_cast<std::streamsize>(frame.size()))) {
          return Status::IoError("spool read failed: " + path);
        }
      }
      if (endian::LoadU64(frame.data() + 8) !=
          frame.size() - kFrameHeaderBytes) {
        return Status::ParseError("torn spool frame (size mismatch)");
      }
      fs::remove(path, ec);  // consumed; spool stays bounded
      std::lock_guard<std::mutex> lock(mutex_);
      ++recv_seq_;
      bytes_received_ += static_cast<int64_t>(frame.size());
      return frame;
    }
    if (fs::exists(marker, ec)) {
      // The marker is published after every frame file, so a missing
      // frame below the recorded count means the spool was tampered
      // with, not that we raced the sender.
      std::ifstream in(marker, std::ios::binary);
      uint8_t buf[8] = {0};
      in.read(reinterpret_cast<char*>(buf), sizeof(buf));
      const int64_t count = static_cast<int64_t>(endian::LoadU64(buf));
      if (seq >= count) {
        // Clean close: every frame was consumed, so nothing of post-
        // mortem value remains. Remove the marker and the directory
        // (non-recursive — an unexpectedly non-empty directory stays,
        // exactly the case worth inspecting). Error returns above leave
        // the spool untouched.
        in.close();
        fs::remove(marker, ec);
        ec.clear();
        fs::remove(directory_, ec);
        return Status::Closed("shard channel closed (spool drained)");
      }
      return Status::ParseError("spool frame missing below closed count");
    }
    if (bounded && Clock::now() >= deadline) {
      return Status::IoError("shard channel receive timed out");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void FileShardChannel::Close() {
  int64_t count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
    count = send_seq_;
  }
  if (role_ != Role::kSender) return;
  std::vector<uint8_t> payload;
  endian::AppendU64(&payload, static_cast<uint64_t>(count));
  const std::string tmp = directory_ + "/.inflight-closed";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  }
  std::error_code ec;
  fs::rename(tmp, directory_ + "/closed", ec);
}

int64_t FileShardChannel::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_sent_;
}

int64_t FileShardChannel::bytes_received() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_received_;
}

}  // namespace shard
}  // namespace aod
