#include "shard/channel.h"

#include <utility>

namespace aod {
namespace shard {

Status InProcessChannel::Send(std::vector<uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return Status::IoError("send on closed shard channel");
    bytes_sent_ += static_cast<int64_t>(frame.size());
    frames_.push_back(std::move(frame));
  }
  cv_.notify_one();
  return Status::OK();
}

Result<std::vector<uint8_t>> InProcessChannel::Receive() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !frames_.empty() || closed_; });
  if (frames_.empty()) {
    return Status::IoError("receive on closed shard channel");
  }
  std::vector<uint8_t> frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

void InProcessChannel::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

int64_t InProcessChannel::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_sent_;
}

}  // namespace shard
}  // namespace aod
