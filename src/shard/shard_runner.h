// One logical shard of the sharded discovery subsystem.
//
// A ShardRunner owns a *wire-seeded* partition cache: its base (level-1)
// partitions arrive as kPartitionBlock frames from the coordinator, not
// from the table, and larger context partitions are derived shard-locally
// through the deterministic fixed rule. Each kCandidateBatch frame it
// receives is validated (in parallel on the shared pool, cooperatively
// cancellable) and answered with one kResultBatch frame carrying exact
// bit patterns of every outcome field.
//
// In-process runners share the EncodedTable by pointer — rank columns are
// immutable — while everything candidate- or partition-shaped crosses the
// channel as bytes. That keeps the seam honest: promoting a runner to its
// own process requires shipping the encoded columns once at startup and
// swapping the channel implementation, nothing else.
//
// Determinism: a runner's outcomes are pure functions of (table, batch,
// shipped base partitions) — canonical partition values make the derived
// contexts byte-identical to any other derivation site, validators are
// pure, and the per-run sampler is seeded — so the coordinator's merged
// output is bit-identical to an unsharded run (see ARCHITECTURE.md).
#ifndef AOD_SHARD_SHARD_RUNNER_H_
#define AOD_SHARD_SHARD_RUNNER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "data/encoder.h"
#include "od/dependency_kind.h"
#include "od/discovery.h"
#include "od/validator_scratch.h"
#include "partition/partition_cache.h"
#include "shard/channel.h"
#include "shard/wire.h"

namespace aod {

namespace exec {
class ThreadPool;
}  // namespace exec

namespace shard {

/// The validation configuration a runner needs — the shard-relevant
/// subset of DiscoveryOptions, fixed for the lifetime of the run.
struct ShardRunnerOptions {
  ValidatorKind validator = ValidatorKind::kOptimal;
  /// Which supervised (re)establishment this runner serves (see
  /// WireRunnerConfig::attempt_id); echoed in the stats footer so the
  /// coordinator can reject a superseded attempt's footer. Validation
  /// outcomes never depend on it.
  uint32_t attempt_id = 0;
  /// Raw threshold; the runner zeroes it for the exact validator, same
  /// as the discovery driver.
  double epsilon = 0.1;
  /// Dependency kinds this run may ship to the shard. The runner rejects
  /// whole batches carrying any candidate outside the set — a kind the
  /// coordinator never enabled is a protocol violation, not a skip.
  DependencyKindSet kinds = DependencyKindSet::OdDefault();
  /// Maximum g1 error for kAfd candidates (DiscoveryOptions::afd_error).
  double afd_error = 0.05;
  bool collect_removal_sets = false;
  bool enable_sampling_filter = false;
  SamplerConfig sampler_config;
  /// Partition byte budget *per shard*, enforced on the runner's cache
  /// after every batch (0 = unlimited).
  int64_t partition_memory_budget_bytes = 0;
  /// Encode result frames with the compressed codecs (wire.h). Decoders
  /// always accept both codecs — this only controls what this runner
  /// emits, mirroring DiscoveryOptions::shard_wire_compression.
  bool wire_compression = true;
};

class ShardRunner {
 public:
  /// `inbox`/`outbox` are borrowed and must outlive the runner; `pool`
  /// may be nullptr for serial execution.
  ShardRunner(int shard_id, const EncodedTable* table,
              const ShardRunnerOptions& options, ShardChannel* inbox,
              ShardChannel* outbox, exec::ThreadPool* pool);

  /// Receives one *logical* frame from the inbox (kBatch envelopes are
  /// unwrapped transparently; each inner frame is one ServeOne) and
  /// handles it:
  ///   kPartitionBlock  — decode (canonical-validated) and install into
  ///                      the local cache;
  ///   kCandidateBatch  — validate every candidate (parallel over the
  ///                      batch, `cancel` polled between candidates) and
  ///                      stream back the completed outcomes as one or
  ///                      more kResultBatch chunks — the last one
  ///                      carrying the final-chunk flag — then enforce
  ///                      the per-shard budget;
  ///   kShutdown        — reply with the kStatsFooter terminal frame and
  ///                      set `*shutdown` (when given): the conversation
  ///                      is over and no further frame should be served.
  /// Any decode or channel failure surfaces as a non-OK Status.
  Status ServeOne(const std::function<bool()>& cancel = {},
                  bool* shutdown = nullptr);

  /// Serves frames until the shutdown handshake or a failure. The serve
  /// loop of shard_runner_main; in-process coordinators call ServeOne to
  /// keep the one-frame-per-level cadence instead.
  Status Serve(const std::function<bool()>& cancel = {});

  int shard_id() const { return shard_id_; }
  /// Logical frames served so far (the footer's cross-check counter);
  /// exposed so shard_runner_main's crash-injection test seam can die at
  /// a deterministic point in the conversation.
  int64_t frames_served() const { return frames_served_; }
  /// Shard-local cache observability, aggregated by the coordinator into
  /// DiscoveryStats.
  const PartitionCache& cache() const { return cache_; }
  /// Bytes released by per-shard budget enforcement so far.
  int64_t bytes_evicted() const { return bytes_evicted_; }
  /// Wall time this runner spent deriving context partitions (the
  /// shard-side analogue of the driver's partition_seconds). Counted
  /// only when the requesting candidate found its context unresolved, so
  /// cache hits cost nothing; a waiter racing the computing thread may
  /// double-count the tail of a derivation — like every timing stat,
  /// this is outside the determinism contract.
  double partition_seconds() const;

  /// The counters this shard reports in its terminal kStatsFooter frame
  /// (see wire.h); pure functions of the served batches except for the
  /// timing field.
  ShardStatsFooter FooterStats() const;

  /// Folds decode-side byte counts produced outside the serve loop into
  /// the footer's raw/wire totals — runner_main decodes the kTableBlock
  /// before the runner exists and credits it here, so the coordinator's
  /// compression-ratio accounting sees the table bytes too.
  void CreditDecodedBytes(const CodecByteCounts& counts) {
    decoded_counts_.Add(counts);
  }

 private:
  Status HandlePartitionBlock(const DecodedFrame& frame);
  Status HandleCandidateBatch(const DecodedFrame& frame,
                              const std::function<bool()>& cancel);
  Status HandleShutdown();
  void SampleResidency();
  /// One validation through the shared kind-keyed registry — the same
  /// dispatch the discovery driver uses, so sharded and unsharded
  /// outcomes are bit-identical.
  void ValidateOne(const WireCandidate& candidate, WireOutcome* out);

  std::unique_ptr<ValidatorScratch> AcquireScratch();
  void ReleaseScratch(std::unique_ptr<ValidatorScratch> scratch);

  const int shard_id_;
  const EncodedTable* table_;
  const ShardRunnerOptions options_;
  const double epsilon_;
  ShardChannel* inbox_;
  ShardChannel* outbox_;
  /// Unwraps kBatch envelopes from the inbox so frames_served_ counts
  /// logical frames — the unit the coordinator's cross-check uses.
  LogicalFrameReceiver receiver_;
  exec::ThreadPool* pool_;
  PartitionCache cache_;
  std::unique_ptr<AocSampler> sampler_;
  CodecByteCounts decoded_counts_;
  int64_t bytes_evicted_ = 0;
  /// Residency high-water mark, sampled after every installed base and
  /// every served batch (quiescent points, so the sample is exact).
  int64_t bytes_peak_ = 0;
  int64_t frames_served_ = 0;
  std::atomic<int64_t> partition_nanos_{0};

  std::mutex scratch_mutex_;
  std::vector<std::unique_ptr<ValidatorScratch>> free_scratch_;
};

}  // namespace shard
}  // namespace aod

#endif  // AOD_SHARD_SHARD_RUNNER_H_
