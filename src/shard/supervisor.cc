#include "shard/supervisor.h"

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "exec/thread_pool.h"
#include "shard/coordinator.h"

extern char** environ;

namespace aod {
namespace shard {
namespace {

/// SplitMix64 finalizer — the repo's standard cheap mixer. Backoff
/// jitter must be deterministic (no wall-clock seed) so a fault
/// schedule replays identically run to run.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr double kInfinity = std::numeric_limits<double>::infinity();
/// Backoff ceiling: a respawn is never parked longer than this.
constexpr double kMaxBackoffSeconds = 2.0;
/// Floor on clamped I/O waits — a receive still gets a beat to drain a
/// frame that already arrived even when the run deadline is on top of us.
constexpr double kMinIoSeconds = 0.05;

}  // namespace

ShardSupervisor::ShardSupervisor(int shard_id,
                                 const ShardBootstrap* bootstrap,
                                 const ShardTransportOptions* transport,
                                 const ShardSupervisionOptions& supervision,
                                 exec::ThreadPool* pool)
    : shard_id_(shard_id),
      bootstrap_(bootstrap),
      transport_(transport),
      supervision_(supervision),
      pool_(pool) {
  AOD_CHECK(bootstrap != nullptr && transport != nullptr);
}

ShardSupervisor::~ShardSupervisor() {
  // Owners run the Finish sequence first; this is the last-resort path
  // (e.g. a failed Create) — kill and reap whatever is still alive so a
  // supervisor never leaks a child.
  Teardown(&backup_);
  Teardown(&current_);
}

double ShardSupervisor::DeadlineRemaining() const {
  if (supervision_.run_deadline ==
      std::chrono::steady_clock::time_point::min()) {
    return kInfinity;
  }
  return std::chrono::duration<double>(supervision_.run_deadline -
                                       std::chrono::steady_clock::now())
      .count();
}

bool ShardSupervisor::DeadlineExpired() const {
  return DeadlineRemaining() <= 0.0;
}

double ShardSupervisor::BoundedIoTimeout() const {
  const double remaining = DeadlineRemaining();
  if (remaining == kInfinity) return transport_->io_timeout_seconds;
  return std::min(transport_->io_timeout_seconds,
                  std::max(kMinIoSeconds, remaining));
}

std::unique_ptr<ShardChannel> ShardSupervisor::Decorate(
    std::unique_ptr<ShardChannel> ch) {
  if (transport_->channel_decorator) {
    return transport_->channel_decorator(std::move(ch));
  }
  return ch;
}

void ShardSupervisor::AddTypeCounts(FrameType type,
                                    const CodecByteCounts& counts) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  by_type_[static_cast<size_t>(type)].Add(counts);
}

Status ShardSupervisor::BuildAttempt(bool force_inproc,
                                     std::unique_ptr<Attempt>* out) {
  auto attempt = std::make_unique<Attempt>();
  attempt->id = ++attempt_seq_;
  attempt->fallback = force_inproc;
  *out = std::move(attempt);
  Attempt* a = out->get();

  ChannelOptions copts;
  copts.max_frame_bytes = transport_->max_frame_bytes;
  copts.receive_timeout_seconds = BoundedIoTimeout();

  ShardRunnerOptions ropts = bootstrap_->runner_options;
  ropts.attempt_id = a->id;

  const ShardTransport transport =
      force_inproc ? ShardTransport::kInProcess : transport_->transport;
  switch (transport) {
    case ShardTransport::kInProcess: {
      // The degraded fallback runs *outside* the configured transport's
      // failure domain, so its channels are deliberately undecorated —
      // the decorator models that transport's faults (ARCHITECTURE.md,
      // "Failure domains and supervision").
      if (force_inproc) {
        a->to = std::make_unique<InProcessChannel>(copts);
        a->from = std::make_unique<InProcessChannel>(copts);
      } else {
        a->to = Decorate(std::make_unique<InProcessChannel>(copts));
        a->from = Decorate(std::make_unique<InProcessChannel>(copts));
      }
      a->to_shard = a->to.get();
      a->from_shard = a->from.get();
      a->runner = std::make_unique<ShardRunner>(shard_id_, bootstrap_->table,
                                                ropts, a->to_shard,
                                                a->from_shard, pool_);
      break;
    }
    case ShardTransport::kSocket: {
      AOD_ASSIGN_OR_RETURN(LoopbackChannelPair pair,
                           ConnectLoopbackPair(BoundedIoTimeout(), copts));
      a->to = Decorate(std::move(pair.near));
      a->to_shard = a->to.get();
      a->from_shard = a->to.get();
      a->runner_side = std::move(pair.far);
      a->runner = std::make_unique<ShardRunner>(shard_id_, bootstrap_->table,
                                                ropts, a->runner_side.get(),
                                                a->runner_side.get(), pool_);
      break;
    }
    case ShardTransport::kProcess: {
      std::string path = transport_->runner_path;
      if (path.empty()) {
        const char* env = std::getenv("AOD_SHARD_RUNNER");
        if (env != nullptr) path = env;
      }
      if (path.empty()) {
        return Status::InvalidArgument(
            "process transport needs ShardTransportOptions::runner_path or "
            "$AOD_SHARD_RUNNER");
      }
      // Every attempt binds its own ephemeral listener: concurrent
      // respawns and speculative backups must never adopt each other's
      // connections out of a shared accept queue.
      AOD_ASSIGN_OR_RETURN(std::unique_ptr<SocketListener> listener,
                           SocketListener::Bind());
      const std::string endpoint =
          "--connect=127.0.0.1:" + std::to_string(listener->port());
      const std::string timeout =
          "--timeout=" + std::to_string(BoundedIoTimeout());
      char* argv[] = {const_cast<char*>(path.c_str()),
                      const_cast<char*>(endpoint.c_str()),
                      const_cast<char*>(timeout.c_str()), nullptr};
      pid_t pid = -1;
      const int rc =
          ::posix_spawn(&pid, path.c_str(), nullptr, nullptr, argv, environ);
      if (rc != 0) {
        return Status::IoError("cannot spawn shard runner '" + path +
                               "': " + std::strerror(rc));
      }
      a->pid = pid;
      AOD_ASSIGN_OR_RETURN(int accepted_fd,
                           listener->AcceptFd(BoundedIoTimeout()));
      a->to = Decorate(SocketShardChannel::Adopt(accepted_fd, copts));
      a->to_shard = a->to.get();
      a->from_shard = a->to.get();

      // Bootstrap frames the runner process consumes before its serve
      // loop: the validation config (stamped with this attempt's id),
      // then the rank-encoded table — both re-sent verbatim from the
      // coordinator's encode-once bootstrap on every respawn.
      WireRunnerConfig config;
      config.shard_id = static_cast<uint32_t>(shard_id_);
      config.attempt_id = a->id;
      config.validator = static_cast<uint8_t>(ropts.validator);
      config.epsilon = ropts.epsilon;
      config.collect_removal_sets = ropts.collect_removal_sets;
      config.enable_sampling_filter = ropts.enable_sampling_filter;
      config.sampler_sample_size = ropts.sampler_config.sample_size;
      config.sampler_reject_margin = ropts.sampler_config.reject_margin;
      config.sampler_seed = ropts.sampler_config.seed;
      config.partition_memory_budget_bytes =
          ropts.partition_memory_budget_bytes;
      config.wire_compression = ropts.wire_compression;
      config.kinds = ropts.kinds.bits();
      config.afd_error = ropts.afd_error;
      // N children each as wide as the coordinator would oversubscribe
      // the machine N-fold; give each its slice of the pool instead.
      config.num_threads = static_cast<uint32_t>(
          std::max(1, bootstrap_->pool_workers / bootstrap_->num_shards));
      AOD_RETURN_NOT_OK(a->to_shard->Send(EncodeConfigBlock(config)));
      AOD_RETURN_NOT_OK(a->to_shard->Send(bootstrap_->table_frame));
      AddTypeCounts(FrameType::kTableBlock, bootstrap_->table_counts);
      break;
    }
  }
  a->receiver = std::make_unique<LogicalFrameReceiver>(a->from_shard);
  if (a->id > 1 && !a->fallback) ++respawns_;
  return Status::OK();
}

Status ShardSupervisor::SeedAttempt(Attempt* attempt,
                                    const std::function<bool()>& cancel) {
  if (bootstrap_->base_frames == 0) return Status::OK();
  AOD_RETURN_NOT_OK(attempt->to_shard->Send(bootstrap_->base_shipment));
  // The envelope counts as its inner frames — the unit the footer
  // cross-check compares against frames_served.
  attempt->frames_sent += bootstrap_->base_frames;
  AddTypeCounts(FrameType::kPartitionBlock, bootstrap_->base_counts);
  if (attempt->runner != nullptr) {
    for (int i = 0; i < bootstrap_->base_frames; ++i) {
      AOD_RETURN_NOT_OK(attempt->runner->ServeOne(cancel));
    }
  }
  return Status::OK();
}

Status ShardSupervisor::EstablishCurrent(bool force_inproc,
                                         const std::function<bool()>& cancel) {
  std::unique_ptr<Attempt> attempt;
  const Status built = BuildAttempt(force_inproc, &attempt);
  // Installed even on failure: a half-built attempt may hold a spawned
  // pid that strict-mode Finish must still reap (supervised retries
  // tear it down instead).
  {
    std::lock_guard<std::mutex> lock(attempts_mutex_);
    current_ = std::move(attempt);
  }
  AOD_RETURN_NOT_OK(built);
  return SeedAttempt(current_.get(), cancel);
}

Status ShardSupervisor::ExecuteLevelOnce(
    Attempt* attempt, const std::vector<WireCandidate>& batch,
    const std::function<bool()>& cancel,
    const std::function<bool()>& abandoned,
    std::vector<WireOutcome>* out) {
  CodecByteCounts encode_counts;
  AOD_RETURN_NOT_OK(attempt->to_shard->Send(EncodeCandidateBatch(
      batch, bootstrap_->runner_options.wire_compression, &encode_counts)));
  ++attempt->frames_sent;
  AddTypeCounts(FrameType::kCandidateBatch, encode_counts);
  if (attempt->runner != nullptr) {
    AOD_RETURN_NOT_OK(attempt->runner->ServeOne(cancel));
  }
  // Chunked reply: a well-formed reply is at most |batch|+1 chunks
  // (every chunk but the final carries at least one outcome), so a
  // babbling runner is a typed protocol error, not a loop.
  const size_t max_chunks = batch.size() + 1;
  size_t chunks = 0;
  CodecByteCounts decode_counts;
  for (;;) {
    if (abandoned && abandoned()) {
      // Never user-surfaced: the level is already done via the sibling
      // attempt; the supervisor just stops driving this one.
      return Status::Closed("attempt superseded by a faster sibling");
    }
    if (++chunks > max_chunks) {
      return Status::ParseError("shard result stream never finalized");
    }
    AOD_ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                         attempt->receiver->Receive());
    AOD_ASSIGN_OR_RETURN(DecodedFrame frame, DecodeFrame(raw));
    AOD_ASSIGN_OR_RETURN(WireResultChunk chunk,
                         DecodeResultBatch(frame, &decode_counts));
    for (WireOutcome& o : chunk.outcomes) out->push_back(std::move(o));
    if (chunk.final_chunk) break;
  }
  AddTypeCounts(FrameType::kResultBatch, decode_counts);
  return Status::OK();
}

void ShardSupervisor::Backoff(int attempt_try,
                              const std::function<bool()>& cancel,
                              const std::function<bool()>& abandoned) {
  const double base = supervision_.retry_backoff_ms / 1000.0;
  if (base <= 0.0) return;
  // Deterministic jitter in [0.5, 1.0): a function of (shard, attempt)
  // only, so two shards backing off together still decollide while the
  // schedule stays replayable.
  const uint64_t mixed =
      Mix64((static_cast<uint64_t>(shard_id_) << 32) ^
            static_cast<uint64_t>(attempt_try));
  const double jitter =
      0.5 + 0.5 * (static_cast<double>(mixed >> 11) / 9007199254740992.0);
  double sleep_seconds =
      base * static_cast<double>(1 << std::min(attempt_try - 1, 6)) * jitter;
  sleep_seconds = std::min(sleep_seconds, kMaxBackoffSeconds);
  const double remaining = DeadlineRemaining();
  if (remaining != kInfinity) {
    sleep_seconds = std::min(sleep_seconds, std::max(0.0, remaining));
  }
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(sleep_seconds));
  // Sliced so a cancellation or a sibling's win ends the park promptly.
  while (std::chrono::steady_clock::now() < until) {
    if (cancel && cancel()) return;
    if (abandoned && abandoned()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void ShardSupervisor::Teardown(std::unique_ptr<Attempt>* slot) {
  std::unique_ptr<Attempt> attempt;
  {
    std::lock_guard<std::mutex> lock(attempts_mutex_);
    attempt = std::move(*slot);
  }
  DestroyAttempt(std::move(attempt));
}

void ShardSupervisor::DestroyAttempt(std::unique_ptr<Attempt> attempt) {
  if (attempt == nullptr) return;
  if (attempt->to_shard != nullptr) {
    attempt->to_shard->Close();
    if (attempt->from_shard != attempt->to_shard) {
      attempt->from_shard->Close();
    }
  }
  if (attempt->runner_side != nullptr) attempt->runner_side->Close();
  if (attempt->pid >= 0) {
    // A torn-down child is not asked nicely: it may be wedged mid-frame,
    // and its replacement is already on the way. SIGKILL converges, so
    // the blocking reap cannot hang.
    ::kill(attempt->pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(attempt->pid, &wstatus, 0);
    attempt->pid = -1;
  }
  int64_t bytes = 0;
  if (attempt->to_shard != nullptr) bytes += attempt->to_shard->bytes_sent();
  if (attempt->from_shard != nullptr) {
    bytes += attempt->from_shard->bytes_received();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    retired_bytes_ += bytes;
  }
}

Status ShardSupervisor::Start() {
  Status st = Status::OK();
  for (int attempt_try = 0;; ++attempt_try) {
    if (attempt_try > 0) {
      ++retries_;
      Backoff(attempt_try, {}, {});
      // Backoff is clamped to the remaining run deadline, so on a tight
      // budget the park wakes *at* the deadline; another establish
      // attempt would still cost its bounded I/O floor. Surface the
      // fault that triggered the retry instead of overshooting.
      if (DeadlineExpired()) return st;
    }
    st = EstablishCurrent(/*force_inproc=*/false, {});
    if (st.ok()) return st;
    if (strict()) return st;  // partial attempt stays for the Finish reap
    Teardown(&current_);
    if (DeadlineExpired()) return st;
    if (attempt_try >= supervision_.max_retries) {
      if (supervision_.fallback_inproc &&
          transport_->transport != ShardTransport::kInProcess) {
        const Status fallback = EstablishCurrent(/*force_inproc=*/true, {});
        if (fallback.ok()) {
          fell_back_ = true;
          return fallback;
        }
        Teardown(&current_);
        return fallback;
      }
      return st;
    }
  }
}

Status ShardSupervisor::ExecuteLevel(const std::vector<WireCandidate>& batch,
                                     const std::function<bool()>& cancel,
                                     const std::function<bool()>& abandoned,
                                     std::vector<WireOutcome>* out) {
  Status st = Status::OK();
  for (int attempt_try = 0;; ++attempt_try) {
    if (attempt_try > 0) {
      ++retries_;
      Backoff(attempt_try, cancel, abandoned);
      // Same rule as Start: a backoff that woke at the clamped deadline
      // must not buy one more attempt (each attempt is bounded below by
      // the I/O-timeout floor, so overshoot compounds per retry).
      if (DeadlineExpired()) return st;
    }
    st = Status::OK();
    {
      std::lock_guard<std::mutex> lock(attempts_mutex_);
      if (current_ == nullptr) st = Status::Internal("no live shard attempt");
    }
    if (!st.ok()) {
      // A previous level tore the attempt down (or Start never
      // succeeded — unreachable through the coordinator, which aborts
      // Create on a failed Start): re-establish before executing.
      st = EstablishCurrent(fell_back_, cancel);
    }
    if (st.ok()) {
      std::vector<WireOutcome> buffered;
      st = ExecuteLevelOnce(current_.get(), batch, cancel, abandoned,
                            &buffered);
      if (st.ok()) {
        *out = std::move(buffered);
        return st;
      }
    }
    if (strict()) return st;  // PR 5 contract: first fault surfaces as-is
    if (abandoned && abandoned()) return st;
    Teardown(&current_);
    if (cancel && cancel()) return st;
    if (DeadlineExpired()) return st;
    if (attempt_try >= supervision_.max_retries) {
      // Retry budget exhausted on the configured transport — degrade to
      // executing this shard's slice in-process rather than aborting
      // the run. One successful fallback pins the shard in-process for
      // the rest of the run (the transport already proved persistent).
      if (supervision_.fallback_inproc &&
          transport_->transport != ShardTransport::kInProcess &&
          !fell_back_) {
        Status fallback = EstablishCurrent(/*force_inproc=*/true, cancel);
        if (fallback.ok()) {
          std::vector<WireOutcome> buffered;
          fallback = ExecuteLevelOnce(current_.get(), batch, cancel,
                                      abandoned, &buffered);
          if (fallback.ok()) {
            fell_back_ = true;
            *out = std::move(buffered);
            return fallback;
          }
        }
        Teardown(&current_);
        return fallback;
      }
      return st;
    }
  }
}

Status ShardSupervisor::ExecuteLevelBackup(
    const std::vector<WireCandidate>& batch,
    const std::function<bool()>& cancel,
    const std::function<bool()>& abandoned,
    std::vector<WireOutcome>* out) {
  std::unique_ptr<Attempt> attempt;
  const Status built = BuildAttempt(fell_back_, &attempt);
  Attempt* raw = attempt.get();
  {
    // Installed even half-built (pid reap parity with EstablishCurrent);
    // from here the primary's winning task can see — and Close — it.
    std::lock_guard<std::mutex> lock(attempts_mutex_);
    backup_ = std::move(attempt);
  }
  AOD_RETURN_NOT_OK(built);
  if (abandoned && abandoned()) {
    return Status::Closed("attempt superseded by a faster sibling");
  }
  AOD_RETURN_NOT_OK(SeedAttempt(raw, cancel));
  return ExecuteLevelOnce(raw, batch, cancel, abandoned, out);
}

void ShardSupervisor::AbortOther(bool winner_is_backup) {
  // Close only — never destroy: the losing task still holds its raw
  // attempt pointer. Close is thread-safe and wakes a blocked receive
  // with kClosed, so the loser unblocks now instead of at its timeout;
  // ResolveLevel destroys after both tasks joined.
  std::lock_guard<std::mutex> lock(attempts_mutex_);
  Attempt* loser = winner_is_backup ? current_.get() : backup_.get();
  if (loser == nullptr) return;
  if (loser->to_shard != nullptr) {
    loser->to_shard->Close();
    if (loser->from_shard != loser->to_shard) loser->from_shard->Close();
  }
  if (loser->runner_side != nullptr) loser->runner_side->Close();
}

void ShardSupervisor::ResolveLevel(bool backup_launched, bool backup_won) {
  if (!backup_launched) return;
  if (backup_won) {
    ++speculative_wins_;
    Teardown(&current_);
    std::lock_guard<std::mutex> lock(attempts_mutex_);
    current_ = std::move(backup_);
    if (current_ != nullptr && current_->fallback) fell_back_ = true;
  } else {
    ++speculative_losses_;
    Teardown(&backup_);
  }
}

Status ShardSupervisor::SendShutdown() {
  Attempt* a = current_.get();
  if (a == nullptr || a->to_shard == nullptr) {
    // Nothing live to hand a footer back — strict half-init parity:
    // the old coordinator skipped channel-less links too.
    footer_missing_ = true;
    return Status::OK();
  }
  const Status st = a->to_shard->Send(EncodeShutdown());
  if (st.ok()) {
    ++a->frames_sent;
    return st;
  }
  if (strict()) return st;
  footer_missing_ = true;  // the footer cannot arrive; tolerated
  return Status::OK();
}

Status ShardSupervisor::PumpShutdownServe() {
  Attempt* a = current_.get();
  if (a == nullptr || a->runner == nullptr || footer_missing_) {
    return Status::OK();
  }
  const Status st = a->runner->ServeOne();
  if (st.ok() || strict()) return st;
  footer_missing_ = true;
  return Status::OK();
}

Status ShardSupervisor::CollectFooter() {
  Attempt* a = current_.get();
  if (a == nullptr || a->from_shard == nullptr || footer_missing_) {
    footer_missing_ = true;
    return Status::OK();
  }
  // A half-initialized attempt (failed bootstrap in strict mode) has
  // its channels but never got a receiver; give it one so the drain
  // below still unwraps envelopes.
  if (a->receiver == nullptr) {
    a->receiver = std::make_unique<LogicalFrameReceiver>(a->from_shard);
  }
  // A mid-level abort can leave result frames queued ahead of the
  // footer — a whole level's worth of reply chunks; drain non-footer
  // logical frames (bounded) instead of misdecoding the first frame
  // seen as the footer.
  Result<ShardStatsFooter> footer =
      Status::Internal("stats footer never arrived");
  for (int drained = 0; drained < 4096; ++drained) {
    Result<std::vector<uint8_t>> raw = a->receiver->Receive();
    if (!raw.ok()) {
      footer = raw.status();
      break;
    }
    Result<DecodedFrame> frame = DecodeFrame(*raw);
    if (!frame.ok()) {
      footer = frame.status();
      break;
    }
    if (frame->type != FrameType::kStatsFooter) continue;  // stale reply
    footer = DecodeStatsFooter(*frame);
    break;
  }
  Status st = Status::OK();
  if (!footer.ok()) {
    st = footer.status();
  } else if (footer->attempt_id != a->id) {
    // A footer from a superseded attempt (left in a kernel buffer by an
    // abort) must not masquerade as the live attempt's stats.
    st = Status::Internal("stats footer from a stale shard attempt");
  } else if (footer->frames_served != a->frames_sent) {
    st = Status::Internal(
        "stats footer frame count mismatch: shard served " +
        std::to_string(footer->frames_served) + " of " +
        std::to_string(a->frames_sent) + " sent");
  } else {
    footer_ = *footer;
    footer_valid_ = true;
    return st;
  }
  if (strict()) return st;
  // The shard's level work is already merged; a lost footer costs
  // stats, not correctness — count it instead of failing Finish.
  footer_missing_ = true;
  return Status::OK();
}

void ShardSupervisor::CloseChannels() {
  std::lock_guard<std::mutex> lock(attempts_mutex_);
  for (Attempt* a : {current_.get(), backup_.get()}) {
    if (a == nullptr || a->to_shard == nullptr) continue;
    a->to_shard->Close();
    if (a->from_shard != a->to_shard) a->from_shard->Close();
  }
}

void ShardSupervisor::ReleaseProcesses(std::vector<ShardReapJob>* jobs) {
  std::lock_guard<std::mutex> lock(attempts_mutex_);
  for (Attempt* a : {current_.get(), backup_.get()}) {
    if (a == nullptr || a->pid < 0) continue;
    jobs->push_back(ShardReapJob{a->pid});
    a->pid = -1;
  }
}

int64_t ShardSupervisor::bytes_shipped() const {
  int64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    total = retired_bytes_;
  }
  std::lock_guard<std::mutex> lock(attempts_mutex_);
  for (const Attempt* a : {current_.get(), backup_.get()}) {
    if (a == nullptr) continue;
    if (a->to_shard != nullptr) total += a->to_shard->bytes_sent();
    if (a->from_shard != nullptr) total += a->from_shard->bytes_received();
  }
  return total;
}

CodecByteCounts ShardSupervisor::type_byte_counts(FrameType type) const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return by_type_[static_cast<size_t>(type)];
}

}  // namespace shard
}  // namespace aod
