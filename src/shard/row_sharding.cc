#include "shard/row_sharding.h"

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "common/macros.h"

extern char** environ;

namespace aod {
namespace shard {

std::vector<RowRange> AssignRowRanges(int64_t num_rows, int row_shards) {
  AOD_CHECK_MSG(num_rows >= 0 && row_shards >= 1,
                "row ranges need a non-negative table and >= 1 shard");
  std::vector<RowRange> ranges(static_cast<size_t>(row_shards));
  for (int s = 0; s < row_shards; ++s) {
    ranges[static_cast<size_t>(s)].begin = num_rows * s / row_shards;
    ranges[static_cast<size_t>(s)].end = num_rows * (s + 1) / row_shards;
  }
  return ranges;
}

namespace {

/// Receives one frame and validates it down to a typed payload view.
Result<std::vector<uint8_t>> ReceiveRaw(ShardChannel* in) {
  return in->Receive();
}

Status ExpectType(const DecodedFrame& frame, FrameType want,
                  const char* what) {
  if (frame.type != want) {
    return Status::ParseError(std::string("row shard expected ") + what);
  }
  return Status::OK();
}

/// Coordinator side of one shard's reply: k fragment frames (possibly
/// enveloped) for distinct attributes over exactly `range`, then the
/// stats footer. Appends each fragment to fragments[attribute] — the
/// outer per-shard loop is sequential, so per-attribute fragments
/// accumulate in ascending range order, which is what StitchPartitions
/// requires.
Status DrainShardReply(ShardChannel* from, int shard, const RowRange& range,
                       int num_columns, int64_t num_rows,
                       std::vector<std::vector<PartitionFragment>>* fragments,
                       RowShardStats* stats) {
  LogicalFrameReceiver receiver(from);
  std::vector<uint8_t> seen(static_cast<size_t>(num_columns), 0);
  for (int i = 0; i < num_columns; ++i) {
    AOD_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, receiver.Receive());
    AOD_ASSIGN_OR_RETURN(DecodedFrame frame, DecodeFrame(raw));
    AOD_RETURN_NOT_OK(
        ExpectType(frame, FrameType::kPartitionFragment, "a fragment"));
    AOD_ASSIGN_OR_RETURN(
        PartitionFragment fragment,
        DecodePartitionFragment(frame, num_rows, &stats->fragment_counts));
    if (fragment.row_begin != range.begin || fragment.row_end != range.end) {
      return Status::ParseError("fragment range disagrees with the shard's "
                                "assignment");
    }
    if (fragment.attribute < 0 || fragment.attribute >= num_columns) {
      return Status::ParseError("fragment for an attribute the table lacks");
    }
    if (seen[static_cast<size_t>(fragment.attribute)]) {
      return Status::ParseError("duplicate fragment for one attribute");
    }
    seen[static_cast<size_t>(fragment.attribute)] = 1;
    (*fragments)[static_cast<size_t>(fragment.attribute)].push_back(
        std::move(fragment));
  }
  AOD_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, receiver.Receive());
  AOD_ASSIGN_OR_RETURN(DecodedFrame frame, DecodeFrame(raw));
  AOD_RETURN_NOT_OK(
      ExpectType(frame, FrameType::kStatsFooter, "the stats footer"));
  AOD_ASSIGN_OR_RETURN(ShardStatsFooter footer, DecodeStatsFooter(frame));
  if (footer.shard_id != static_cast<uint32_t>(shard)) {
    return Status::ParseError("stats footer from the wrong row shard");
  }
  // The runner served config + table + shutdown; a different count means
  // the conversation desynchronized somewhere upstream.
  if (footer.frames_served != 3) {
    return Status::ParseError("row shard served an unexpected frame count");
  }
  return Status::OK();
}

/// Bounded orderly reap of a spawned runner: poll-wait for exit, SIGKILL
/// on timeout so a wedged child can never leak past the phase.
void ReapRunner(pid_t pid, double timeout_seconds) {
  if (pid < 0) return;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    int wstatus = 0;
    const pid_t r = ::waitpid(pid, &wstatus, WNOHANG);
    if (r == pid || (r < 0 && errno != EINTR)) return;
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &wstatus, 0);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace

Status ServeRowShardAfterConfig(const WireRunnerConfig& config,
                                ShardChannel* in, ShardChannel* out) {
  if (config.row_end <= config.row_begin) {
    return Status::InvalidArgument("config carries no row range");
  }
  CodecByteCounts decoded;
  AOD_ASSIGN_OR_RETURN(std::vector<uint8_t> table_raw, ReceiveRaw(in));
  AOD_ASSIGN_OR_RETURN(DecodedFrame table_frame, DecodeFrame(table_raw));
  AOD_RETURN_NOT_OK(
      ExpectType(table_frame, FrameType::kTableBlock, "a table slice"));
  AOD_ASSIGN_OR_RETURN(WireTableSlice slice,
                       DecodeTableSlice(table_frame, &decoded));
  if (slice.row_offset != config.row_begin ||
      slice.row_offset + slice.table.num_rows() != config.row_end ||
      slice.total_rows < config.row_end) {
    return Status::ParseError("table slice disagrees with the configured "
                              "row range");
  }

  const int k = slice.table.num_columns();
  std::vector<std::vector<uint8_t>> frames;
  frames.reserve(static_cast<size_t>(k));
  CodecByteCounts encoded;
  for (int a = 0; a < k; ++a) {
    frames.push_back(EncodePartitionFragment(
        FragmentFromSlice(slice.table.column(a), slice.row_offset, a),
        config.wire_compression, &encoded));
  }
  if (frames.size() == 1) {
    AOD_RETURN_NOT_OK(out->Send(std::move(frames[0])));
  } else if (frames.size() > 1) {
    AOD_RETURN_NOT_OK(out->Send(EncodeBatchEnvelope(frames)));
  }

  AOD_ASSIGN_OR_RETURN(std::vector<uint8_t> shutdown_raw, ReceiveRaw(in));
  AOD_ASSIGN_OR_RETURN(DecodedFrame shutdown_frame, DecodeFrame(shutdown_raw));
  AOD_RETURN_NOT_OK(
      ExpectType(shutdown_frame, FrameType::kShutdown, "the shutdown"));

  ShardStatsFooter footer;
  footer.shard_id = config.shard_id;
  footer.attempt_id = config.attempt_id;
  footer.frames_served = 3;  // config + table slice + shutdown
  footer.bytes_decoded_raw = decoded.raw;
  footer.bytes_decoded_wire = decoded.wire;
  return out->Send(EncodeStatsFooter(footer));
}

Status ServeRowShard(ShardChannel* in, ShardChannel* out) {
  AOD_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, ReceiveRaw(in));
  AOD_ASSIGN_OR_RETURN(DecodedFrame frame, DecodeFrame(raw));
  AOD_RETURN_NOT_OK(ExpectType(frame, FrameType::kConfigBlock, "the config"));
  AOD_ASSIGN_OR_RETURN(WireRunnerConfig config, DecodeConfigBlock(frame));
  return ServeRowShardAfterConfig(config, in, out);
}

Result<std::vector<StrippedPartition>> ComputeRowShardedBases(
    const EncodedTable& table, int row_shards,
    const ShardTransportOptions& transport, bool wire_compression,
    RowShardStats* stats) {
  AOD_CHECK_MSG(row_shards >= 1, "row sharding needs >= 1 shard");
  const int64_t num_rows = table.num_rows();
  const int k = table.num_columns();
  RowShardStats local;
  RowShardStats* st = stats != nullptr ? stats : &local;
  st->row_shards = row_shards;
  st->table_bytes_per_shard.assign(static_cast<size_t>(row_shards), 0);

  ChannelOptions copts;
  copts.max_frame_bytes = transport.max_frame_bytes;
  copts.receive_timeout_seconds = transport.io_timeout_seconds;

  const std::vector<RowRange> ranges = AssignRowRanges(num_rows, row_shards);
  std::vector<std::vector<PartitionFragment>> fragments(
      static_cast<size_t>(k));
  for (auto& per_attr : fragments) {
    per_attr.reserve(static_cast<size_t>(row_shards));
  }

  for (int s = 0; s < row_shards; ++s) {
    const RowRange& range = ranges[static_cast<size_t>(s)];
    if (range.begin == range.end) {
      // Nothing to partition; synthesize the empty fragments locally so
      // the stitch still sees a contiguous tiling.
      for (int a = 0; a < k; ++a) {
        fragments[static_cast<size_t>(a)].push_back(
            FragmentFromColumn(table.column(a), range.begin, range.end, a));
      }
      continue;
    }

    WireRunnerConfig config;
    config.shard_id = static_cast<uint32_t>(s);
    config.wire_compression = wire_compression;
    config.row_begin = range.begin;
    config.row_end = range.end;
    std::vector<uint8_t> config_frame = EncodeConfigBlock(config);
    std::vector<uint8_t> slice_frame = EncodeTableSlice(
        table, range.begin, range.end, wire_compression, &st->slice_counts);
    st->table_bytes_per_shard[static_cast<size_t>(s)] =
        static_cast<int64_t>(slice_frame.size());

    switch (transport.transport) {
      case ShardTransport::kInProcess: {
        InProcessChannel to(copts);
        InProcessChannel from(copts);
        // Sends never block, so the whole conversation can be queued and
        // the runner served inline on this thread.
        AOD_RETURN_NOT_OK(to.Send(std::move(config_frame)));
        AOD_RETURN_NOT_OK(to.Send(std::move(slice_frame)));
        AOD_RETURN_NOT_OK(to.Send(EncodeShutdown()));
        AOD_RETURN_NOT_OK(ServeRowShard(&to, &from));
        AOD_RETURN_NOT_OK(DrainShardReply(&from, s, range, k, num_rows,
                                          &fragments, st));
        st->bytes_shipped_total += to.bytes_sent() + from.bytes_sent();
        break;
      }
      case ShardTransport::kSocket: {
        AOD_ASSIGN_OR_RETURN(
            LoopbackChannelPair pair,
            ConnectLoopbackPair(transport.io_timeout_seconds, copts));
        AOD_RETURN_NOT_OK(pair.near->Send(std::move(config_frame)));
        AOD_RETURN_NOT_OK(pair.near->Send(std::move(slice_frame)));
        AOD_RETURN_NOT_OK(pair.near->Send(EncodeShutdown()));
        // The socket writer threads decouple the two directions, so the
        // inline runner and this drain cannot deadlock on kernel buffers.
        AOD_RETURN_NOT_OK(ServeRowShard(pair.far.get(), pair.far.get()));
        AOD_RETURN_NOT_OK(DrainShardReply(pair.near.get(), s, range, k,
                                          num_rows, &fragments, st));
        st->bytes_shipped_total +=
            pair.near->bytes_sent() + pair.near->bytes_received();
        pair.near->Close();
        pair.far->Close();
        break;
      }
      case ShardTransport::kProcess: {
        std::string path = transport.runner_path;
        if (path.empty()) {
          const char* env = std::getenv("AOD_SHARD_RUNNER");
          if (env != nullptr) path = env;
        }
        if (path.empty()) {
          return Status::InvalidArgument(
              "process transport needs ShardTransportOptions::runner_path "
              "or $AOD_SHARD_RUNNER");
        }
        AOD_ASSIGN_OR_RETURN(std::unique_ptr<SocketListener> listener,
                             SocketListener::Bind());
        const std::string endpoint =
            "--connect=127.0.0.1:" + std::to_string(listener->port());
        const std::string timeout =
            "--timeout=" + std::to_string(transport.io_timeout_seconds);
        char* argv[] = {const_cast<char*>(path.c_str()),
                        const_cast<char*>(endpoint.c_str()),
                        const_cast<char*>(timeout.c_str()), nullptr};
        pid_t pid = -1;
        const int rc =
            ::posix_spawn(&pid, path.c_str(), nullptr, nullptr, argv, environ);
        if (rc != 0) {
          return Status::IoError("cannot spawn shard runner '" + path +
                                 "': " + std::strerror(rc));
        }
        // Run the conversation, then reap unconditionally — an error
        // path must not leak the child.
        Status conversation = [&]() -> Status {
          AOD_ASSIGN_OR_RETURN(
              int accepted_fd,
              listener->AcceptFd(transport.io_timeout_seconds));
          std::unique_ptr<SocketShardChannel> channel =
              SocketShardChannel::Adopt(accepted_fd, copts);
          AOD_RETURN_NOT_OK(channel->Send(std::move(config_frame)));
          AOD_RETURN_NOT_OK(channel->Send(std::move(slice_frame)));
          AOD_RETURN_NOT_OK(channel->Send(EncodeShutdown()));
          AOD_RETURN_NOT_OK(DrainShardReply(channel.get(), s, range, k,
                                            num_rows, &fragments, st));
          st->bytes_shipped_total +=
              channel->bytes_sent() + channel->bytes_received();
          channel->Close();
          return Status::OK();
        }();
        ReapRunner(pid, transport.io_timeout_seconds);
        AOD_RETURN_NOT_OK(conversation);
        break;
      }
    }
  }

  std::vector<StrippedPartition> bases;
  bases.reserve(static_cast<size_t>(k));
  for (int a = 0; a < k; ++a) {
    AOD_ASSIGN_OR_RETURN(
        StrippedPartition base,
        StitchPartitions(fragments[static_cast<size_t>(a)], num_rows));
    bases.push_back(std::move(base));
  }
  return bases;
}

}  // namespace shard
}  // namespace aod
