// Coordinator of sharded candidate validation (ROADMAP: distributed
// discovery in the spirit of Saxena et al. [8]).
//
// The coordinator owns N shard runners — in this process or in child
// processes — a channel link each, and the shard-assignment rule. The
// discovery driver keeps its lattice, planning phase and serial
// key-ordered merge; only candidate validation crosses the seam:
//
//   construction    every base (level-1) partition is serialized once and
//                   shipped to every shard as a kPartitionBlock frame —
//                   shard caches are wire-seeded, never table-derived.
//                   Process runners additionally receive a kConfigBlock
//                   and a kTableBlock first (they share nothing);
//   per level       candidates are split by ShardOf(context) — all
//                   candidates sharing a context land on one shard, so a
//                   context partition is derived (at most) once per run,
//                   by exactly one shard — batched, shipped, validated
//                   shard-locally, and the kResultBatch replies are
//                   folded back into the driver's outcome slots;
//   Finish()        the shutdown handshake: a kShutdown frame per shard,
//                   answered by the kStatsFooter terminal frame carrying
//                   the shard's counters — the one stats mechanism for
//                   every transport, so remote runners aggregate without
//                   object access.
//
// Transports (ShardTransportOptions::transport):
//   kInProcess  mutex/cv frame queues; runners on the shared pool.
//   kSocket     localhost TCP between coordinator and in-process
//               runners — the full byte-transport path (length framing,
//               partial reads, writer threads) without process overhead.
//   kProcess    one spawned shard_runner_main per shard, connected over
//               localhost TCP; validation parallelism across processes.
//
// Failure contract: any transport, decode or process failure surfaces as
// a typed non-OK Status from Create/ValidateBatch/Finish — never a hang
// (receives are timeout-bounded) and never a partially-applied batch
// (ValidateBatch appends outcomes only after every shard's reply decoded
// cleanly).
//
// Determinism: the assignment rule is a pure hash of the context set, a
// runner's outcomes are pure functions of its batch (canonical partition
// values, deterministic fixed-rule derivation, seeded sampler), and the
// driver's merge consumes outcome slots in sorted key order — so sharded
// discovery output is bit-identical to the unsharded run for any shard
// count, any thread count and any transport (gated by
// tests/parallel_determinism_test and tests/shard_process_e2e_test).
#ifndef AOD_SHARD_COORDINATOR_H_
#define AOD_SHARD_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <sys/types.h>
#include <vector>

#include "common/status.h"
#include "data/encoder.h"
#include "shard/channel.h"
#include "shard/shard_runner.h"
#include "shard/wire.h"

namespace aod {

namespace exec {
class ThreadPool;
}  // namespace exec

namespace shard {

// ShardTransport (the {inproc, socket, process} selector) lives in
// od/discovery.h next to the other DiscoveryOptions vocabulary — this
// header reaches it through shard_runner.h.

struct ShardTransportOptions {
  ShardTransport transport = ShardTransport::kInProcess;
  /// Path to the shard_runner_main binary (process transport). Empty
  /// falls back to the AOD_SHARD_RUNNER environment variable.
  std::string runner_path;
  /// Bound on connects, accepts and every frame receive. A shard that
  /// dies silently surfaces as a typed timeout, never a hang.
  double io_timeout_seconds = 300.0;
  /// Receiver-side frame size cap (see ChannelOptions).
  int64_t max_frame_bytes = 1LL << 30;
  /// Test seam: wraps every coordinator-side channel endpoint (e.g. in a
  /// fault-injecting decorator). Identity when empty.
  std::function<std::unique_ptr<ShardChannel>(std::unique_ptr<ShardChannel>)>
      channel_decorator;
};

class ShardCoordinator {
 public:
  /// Creates `num_shards` runners over the selected transport and ships
  /// the base partitions (plus config + table for process runners).
  /// `pool` (nullable) runs in-process shard work; both `table` and
  /// `pool` are borrowed and must outlive the coordinator. Fails with a
  /// typed Status on any transport or spawn error.
  static Result<std::unique_ptr<ShardCoordinator>> Create(
      const EncodedTable* table, int num_shards,
      const ShardRunnerOptions& runner_options,
      const ShardTransportOptions& transport_options, exec::ThreadPool* pool);

  ~ShardCoordinator();
  AOD_DISALLOW_COPY_AND_ASSIGN(ShardCoordinator);

  /// The shard assignment rule: a pure hash (SplitMix64 finalizer, the
  /// same AttributeSetHash the cache stripes by) of the candidate's
  /// context set, mod the shard count. Keying by context — not by slot —
  /// colocates every candidate of a context with the one shard that
  /// derives its partition.
  static int ShardOf(uint64_t context_bits, int num_shards);

  /// Validates one level's candidates across the shards: splits
  /// `candidates` by ShardOf, ships one batch frame per shard, pumps
  /// in-process runners on the pool (`cancel` is polled between
  /// validations; process runners validate to completion), and appends
  /// each shard's completed outcomes to `completed` in shard order —
  /// only once every reply decoded cleanly, so a failure never leaves a
  /// partial batch behind. Candidates a shard did not finish before
  /// cancellation are simply absent — the driver's merge treats their
  /// slots as undone.
  Status ValidateBatch(const std::vector<WireCandidate>& candidates,
                       const std::function<bool()>& cancel,
                       std::vector<WireOutcome>* completed);

  /// The receive-overlapped form: runners stream each level's reply as
  /// bounded kResultBatch chunks (final-flagged last), and `fold` is
  /// invoked per outcome as each chunk decodes — so merge work proceeds
  /// while later shards' bytes are still in flight. Delivery order is
  /// deterministic (shard order, ascending slots within a shard). On a
  /// non-OK return some outcomes may already have been folded; the
  /// caller owns discarding partial state (the driver aborts the level
  /// before its merge, so a partial merge is unreachable).
  Status ValidateBatch(const std::vector<WireCandidate>& candidates,
                       const std::function<bool()>& cancel,
                       const std::function<void(WireOutcome)>& fold);

  /// The shutdown handshake: ships kShutdown to every shard, collects
  /// the kStatsFooter terminal frames (validating each shard's served
  /// frame count against what was sent), closes the links and reaps
  /// runner processes. Idempotent; the footer-backed accessors below are
  /// meaningful once this returned. Called by the destructor if the
  /// owner did not (best-effort, status swallowed).
  Status Finish();

  int num_shards() const { return static_cast<int>(links_.size()); }

  /// Frame bytes shipped to and from shard `s` so far (both directions,
  /// as observed from the coordinator side of the link). This is the
  /// post-compression ("wire") volume.
  int64_t bytes_shipped(int s) const;
  int64_t bytes_shipped_total() const;

  /// What bytes_shipped_total would have been with every codec forced
  /// raw: the wire total plus the raw-minus-wire savings each decode
  /// site reported (shard footers for coordinator→shard frames, the
  /// coordinator's own result-chunk decodes for the reply direction).
  /// Meaningful once Finish collected the footers.
  int64_t bytes_raw_total() const;

  /// Frame-level raw/wire byte counts per frame type (indexed by the
  /// FrameType raw value), counted at the coordinator's encode/decode
  /// sites — the per-frame-type breakdown exp8 reports. Envelope and
  /// bootstrap framing overhead is not attributed here.
  CodecByteCounts type_byte_counts(FrameType type) const;

  // Aggregates over the collected stats footers (DiscoveryStats feeds);
  // shards whose footer never arrived (transport failure) contribute 0.
  int64_t products_computed() const;
  int64_t partitions_evicted() const;
  int64_t partition_bytes_evicted() const;
  int64_t partition_bytes_final() const;
  int64_t partition_bytes_peak() const;
  /// Summed shard-side derivation wall time (see
  /// ShardRunner::partition_seconds).
  double partition_seconds() const;

 private:
  /// One runner plus its link. Channel storage precedes the runner so
  /// the runner (which borrows channel pointers) dies first.
  struct ShardLink {
    /// Coordinator-side endpoints (owned; `to` and `from` may alias one
    /// full-duplex stream object, in which case `from` is empty).
    std::unique_ptr<ShardChannel> to;
    std::unique_ptr<ShardChannel> from;
    /// Shard-side endpoint for in-process runners over sockets.
    std::unique_ptr<ShardChannel> runner_side;
    ShardChannel* to_shard = nullptr;
    ShardChannel* from_shard = nullptr;
    /// Unwraps kBatch envelopes on the reply path (runners coalesce
    /// small result chunks).
    std::unique_ptr<LogicalFrameReceiver> receiver;
    std::unique_ptr<ShardRunner> runner;  // null for process transport
    pid_t pid = -1;                       // process transport
    /// Frames this coordinator sent that the runner itself serves
    /// (bases + batches + shutdown; config/table are consumed by
    /// shard_runner_main before the runner exists).
    int64_t frames_sent = 0;
    ShardStatsFooter footer;
    bool footer_valid = false;
  };

  ShardCoordinator(const EncodedTable* table,
                   const ShardTransportOptions& transport_options,
                   exec::ThreadPool* pool);

  Status Init(int num_shards, const ShardRunnerOptions& runner_options);
  /// `table_frame` is the pre-encoded kTableBlock (process transport;
  /// empty otherwise) — encoded once in Init, shipped to every shard.
  Status InitLink(ShardLink* link, int shard_id, int num_shards,
                  const ShardRunnerOptions& runner_options,
                  const std::vector<uint8_t>& table_frame);
  std::unique_ptr<ShardChannel> Decorate(std::unique_ptr<ShardChannel> ch);
  /// Sends one frame the runner will serve, bumping the cross-check
  /// counter.
  Status SendServed(ShardLink* link, std::vector<uint8_t> frame);
  /// Runs one ServeOne on every in-process runner (no-op for process
  /// transport) and returns the first failure.
  Status PumpRunners(const std::function<bool()>& cancel);

  const EncodedTable* table_;
  const ShardTransportOptions transport_;
  exec::ThreadPool* pool_;
  /// Mirrors ShardRunnerOptions::wire_compression for the frames the
  /// coordinator itself encodes (partitions, candidates, table).
  bool compress_ = true;
  std::unique_ptr<SocketListener> listener_;
  std::vector<std::unique_ptr<ShardLink>> links_;
  /// Raw/wire byte counts per FrameType raw value (0..kBatch).
  CodecByteCounts by_type_[static_cast<size_t>(FrameType::kBatch) + 1];
  bool finished_ = false;
  Status finish_status_;
};

}  // namespace shard
}  // namespace aod

#endif  // AOD_SHARD_COORDINATOR_H_
