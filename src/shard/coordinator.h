// Coordinator of sharded candidate validation (ROADMAP: distributed
// discovery in the spirit of Saxena et al. [8]).
//
// The coordinator owns N in-process shard runners, a channel pair each,
// and the shard-assignment rule. The discovery driver keeps its lattice,
// planning phase and serial key-ordered merge; only candidate validation
// crosses the seam:
//
//   construction    every base (level-1) partition is serialized once and
//                   shipped to every shard as a kPartitionBlock frame —
//                   shard caches are wire-seeded, never table-derived;
//   per level       candidates are split by ShardOf(context) — all
//                   candidates sharing a context land on one shard, so a
//                   context partition is derived (at most) once per run,
//                   by exactly one shard — batched, shipped, validated
//                   shard-locally, and the kResultBatch replies are
//                   folded back into the driver's outcome slots.
//
// Determinism: the assignment rule is a pure hash of the context set, a
// runner's outcomes are pure functions of its batch (canonical partition
// values, deterministic fixed-rule derivation, seeded sampler), and the
// driver's merge consumes outcome slots in sorted key order — so sharded
// discovery output is bit-identical to the unsharded run for any shard
// count and any thread count (gated by tests/parallel_determinism_test).
#ifndef AOD_SHARD_COORDINATOR_H_
#define AOD_SHARD_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "data/encoder.h"
#include "shard/channel.h"
#include "shard/shard_runner.h"
#include "shard/wire.h"

namespace aod {

namespace exec {
class ThreadPool;
}  // namespace exec

namespace shard {

class ShardCoordinator {
 public:
  /// Creates `num_shards` runners and ships the base partitions. `pool`
  /// (nullable) runs the shard work; both `table` and `pool` are
  /// borrowed and must outlive the coordinator.
  ShardCoordinator(const EncodedTable* table, int num_shards,
                   const ShardRunnerOptions& runner_options,
                   exec::ThreadPool* pool);
  ~ShardCoordinator();

  /// The shard assignment rule: a pure hash (SplitMix64 finalizer, the
  /// same AttributeSetHash the cache stripes by) of the candidate's
  /// context set, mod the shard count. Keying by context — not by slot —
  /// colocates every candidate of a context with the one shard that
  /// derives its partition.
  static int ShardOf(uint64_t context_bits, int num_shards);

  /// Validates one level's candidates across the shards: splits
  /// `candidates` by ShardOf, ships one batch frame per shard, runs every
  /// runner on the pool (`cancel` is polled between validations), and
  /// appends each shard's completed outcomes to `completed` in shard
  /// order. Candidates a shard did not finish before cancellation are
  /// simply absent — the driver's merge treats their slots as undone.
  Status ValidateBatch(const std::vector<WireCandidate>& candidates,
                       const std::function<bool()>& cancel,
                       std::vector<WireOutcome>* completed);

  int num_shards() const { return static_cast<int>(links_.size()); }

  /// Frame bytes shipped to and from shard `s` so far.
  int64_t bytes_shipped(int s) const;
  int64_t bytes_shipped_total() const;

  // Aggregates over the shard-local caches (DiscoveryStats feeds).
  int64_t products_computed() const;
  int64_t bytes_resident() const;
  int64_t partitions_evicted() const;
  int64_t partition_bytes_evicted() const;
  /// Summed shard-side derivation wall time (see
  /// ShardRunner::partition_seconds).
  double partition_seconds() const;

 private:
  /// One runner plus its channel pair. Heap-allocated so links never
  /// move (runners hold channel pointers).
  struct ShardLink {
    InProcessChannel to_shard;
    InProcessChannel from_shard;
    std::unique_ptr<ShardRunner> runner;
  };

  const EncodedTable* table_;
  exec::ThreadPool* pool_;
  std::vector<std::unique_ptr<ShardLink>> links_;
};

}  // namespace shard
}  // namespace aod

#endif  // AOD_SHARD_COORDINATOR_H_
