// Coordinator of sharded candidate validation (ROADMAP: distributed
// discovery in the spirit of Saxena et al. [8]).
//
// The coordinator owns N shard *supervisors* — each managing a live
// runner attempt in this process or in a child process — and the
// shard-assignment rule. The discovery driver keeps its lattice,
// planning phase and serial key-ordered merge; only candidate
// validation crosses the seam:
//
//   construction    every base (level-1) partition is serialized once
//                   into the shared ShardBootstrap and shipped to every
//                   shard as kPartitionBlock frames — shard caches are
//                   wire-seeded, never table-derived. Process runners
//                   additionally receive a kConfigBlock and a
//                   kTableBlock first (they share nothing). The same
//                   encoded frames re-seed every respawned attempt;
//   per level       candidates are split by ShardOf(context) — all
//                   candidates sharing a context land on one shard, so
//                   a context partition is derived (at most) once per
//                   run, by exactly one shard — batched, shipped,
//                   validated shard-locally, and the kResultBatch
//                   replies are folded back into the driver's outcome
//                   slots in shard order;
//   supervision     each shard's level execution runs under its
//                   ShardSupervisor (src/shard/supervisor.h): failures
//                   are retried with backoff and a fresh attempt,
//                   stragglers can be speculatively re-executed, and a
//                   shard whose transport stays broken degrades to
//                   in-process execution instead of aborting the run;
//   Finish()        the shutdown handshake: a kShutdown frame per
//                   shard, answered by the kStatsFooter terminal frame
//                   carrying the shard's counters, then one
//                   shared-deadline reap pass over every runner process.
//
// Transports (ShardTransportOptions::transport):
//   kInProcess  mutex/cv frame queues; runners on the shared pool.
//   kSocket     localhost TCP between coordinator and in-process
//               runners — the full byte-transport path (length framing,
//               partial reads, writer threads) without process overhead.
//   kProcess    one spawned shard_runner_main per shard, connected over
//               localhost TCP; validation parallelism across processes.
//
// Failure contract: with supervision off (supervision.max_retries == 0,
// "strict mode") any transport, decode or process failure surfaces as a
// typed non-OK Status from Create/ValidateBatch/Finish — never a hang
// (receives are timeout-bounded) and never a partially-applied batch.
// With supervision on, a failure surfaces only after the per-level
// retry budget, the backoff ladder and the in-process fallback are all
// exhausted; DiscoveryResult::shard_status is reserved for those truly
// unrecoverable states.
//
// Determinism: the assignment rule is a pure hash of the context set, a
// runner's outcomes are pure functions of its batch (canonical
// partition values, deterministic fixed-rule derivation, seeded
// sampler), replayed and speculated attempts receive byte-identical
// inputs, and exactly one attempt's buffered reply per shard is folded
// — in shard order, ascending slots within a shard — so sharded
// discovery output is bit-identical to the unsharded run for any shard
// count, any thread count, any transport, and any fault schedule that
// completes (gated by tests/parallel_determinism_test,
// tests/shard_supervisor_test and tests/shard_process_e2e_test).
#ifndef AOD_SHARD_COORDINATOR_H_
#define AOD_SHARD_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <sys/types.h>
#include <vector>

#include "common/status.h"
#include "data/encoder.h"
#include "shard/channel.h"
#include "shard/shard_runner.h"
#include "shard/supervisor.h"
#include "shard/wire.h"

namespace aod {

namespace exec {
class ThreadPool;
}  // namespace exec

namespace shard {

// ShardTransport (the {inproc, socket, process} selector) lives in
// od/discovery.h next to the other DiscoveryOptions vocabulary — this
// header reaches it through shard_runner.h.

struct ShardTransportOptions {
  ShardTransport transport = ShardTransport::kInProcess;
  /// Path to the shard_runner_main binary (process transport). Empty
  /// falls back to the AOD_SHARD_RUNNER environment variable.
  std::string runner_path;
  /// Bound on connects, accepts and every frame receive. A shard that
  /// dies silently surfaces as a typed timeout, never a hang. Clamped
  /// per wait to the time remaining before supervision.run_deadline
  /// when one is set.
  double io_timeout_seconds = 300.0;
  /// Receiver-side frame size cap (see ChannelOptions).
  int64_t max_frame_bytes = 1LL << 30;
  /// Retry/speculation/fallback policy (src/shard/supervisor.h);
  /// supervision.max_retries == 0 is strict fail-stop mode.
  ShardSupervisionOptions supervision;
  /// Test seam: wraps every coordinator-side channel endpoint (e.g. in a
  /// fault-injecting decorator). Identity when empty. Fallback attempts
  /// are NOT decorated — the decorator models the configured transport's
  /// failure domain, which the in-process fallback leaves.
  std::function<std::unique_ptr<ShardChannel>(std::unique_ptr<ShardChannel>)>
      channel_decorator;
};

class ShardCoordinator {
 public:
  /// Creates `num_shards` supervised runners over the selected transport
  /// and ships the base partitions (plus config + table for process
  /// runners). `pool` (nullable) runs in-process shard work; both
  /// `table` and `pool` are borrowed and must outlive the coordinator.
  /// Fails with a typed Status on any transport or spawn error that
  /// survives the supervision ladder. `base_partitions` (optional, one
  /// per column) seeds the shards with already-computed level-1
  /// partitions — the row-shard phase's stitched bases — instead of
  /// recomputing FromColumn per column; they must be bit-identical to
  /// FromColumn (StitchPartitions guarantees this), so the shipped
  /// bytes do not depend on which path produced them.
  static Result<std::unique_ptr<ShardCoordinator>> Create(
      const EncodedTable* table, int num_shards,
      const ShardRunnerOptions& runner_options,
      const ShardTransportOptions& transport_options, exec::ThreadPool* pool,
      const std::vector<StrippedPartition>* base_partitions = nullptr);

  ~ShardCoordinator();
  AOD_DISALLOW_COPY_AND_ASSIGN(ShardCoordinator);

  /// The shard assignment rule: a pure hash (SplitMix64 finalizer, the
  /// same AttributeSetHash the cache stripes by) of the candidate's
  /// context set, mod the shard count. Keying by context — not by slot —
  /// colocates every candidate of a context with the one shard that
  /// derives its partition.
  static int ShardOf(uint64_t context_bits, int num_shards);

  /// Validates one level's candidates across the shards: splits
  /// `candidates` by ShardOf, runs every shard's ship/validate/receive
  /// round as one supervised task (concurrent across shards on the
  /// pool), and appends each shard's completed outcomes to `completed`
  /// in shard order — only once every shard's reply decoded cleanly, so
  /// a failure never leaves a partial batch behind. Candidates a shard
  /// did not finish before cancellation are simply absent — the
  /// driver's merge treats their slots as undone.
  Status ValidateBatch(const std::vector<WireCandidate>& candidates,
                       const std::function<bool()>& cancel,
                       std::vector<WireOutcome>* completed);

  /// The fold form: `fold` is invoked per outcome — shard order
  /// outside, ascending slots within a shard — after every shard's
  /// level completed. Replies are buffered per shard while in flight
  /// (chunk decode overlaps across shards on the pool); buffering is
  /// what lets a speculated level fold exactly one winning attempt's
  /// outcomes, keeping the merge bit-identical under any fault
  /// schedule. Nothing is folded on a non-OK return.
  Status ValidateBatch(const std::vector<WireCandidate>& candidates,
                       const std::function<bool()>& cancel,
                       const std::function<void(WireOutcome)>& fold);

  /// The shutdown handshake: ships kShutdown to every shard, collects
  /// the kStatsFooter terminal frames (validating served-frame count
  /// and attempt id), closes the links, and reaps every runner process
  /// against ONE shared deadline — a fleet of wedged children costs one
  /// I/O timeout total, not one per child — with a single SIGKILL
  /// escalation pass. Idempotent; the footer-backed accessors below are
  /// meaningful once this returned. Called by the destructor if the
  /// owner did not (best-effort, status swallowed). In supervised mode
  /// a lost footer or abnormal child exit is tolerated and counted
  /// (footers_missing) — the merged results are already correct.
  Status Finish();

  int num_shards() const { return static_cast<int>(supervisors_.size()); }

  /// Frame bytes shipped to and from shard `s` so far (both directions,
  /// as observed from the coordinator side, summed over every attempt
  /// ever made for the shard). This is the post-compression ("wire")
  /// volume.
  int64_t bytes_shipped(int s) const;
  int64_t bytes_shipped_total() const;

  /// What bytes_shipped_total would have been with every codec forced
  /// raw: the wire total plus the raw-minus-wire savings each decode
  /// site reported (shard footers for coordinator→shard frames, the
  /// coordinator's own result-chunk decodes for the reply direction).
  /// Meaningful once Finish collected the footers.
  int64_t bytes_raw_total() const;

  /// Frame-level raw/wire byte counts per frame type (indexed by the
  /// FrameType raw value), counted at the coordinator's encode/decode
  /// sites — the per-frame-type breakdown exp8 reports. Envelope and
  /// bootstrap framing overhead is not attributed here.
  CodecByteCounts type_byte_counts(FrameType type) const;

  // Aggregates over the collected stats footers (DiscoveryStats feeds);
  // shards whose footer never arrived (transport failure) contribute 0.
  int64_t products_computed() const;
  int64_t partitions_evicted() const;
  int64_t partition_bytes_evicted() const;
  int64_t partition_bytes_final() const;
  int64_t partition_bytes_peak() const;
  /// Summed shard-side derivation wall time (see
  /// ShardRunner::partition_seconds).
  double partition_seconds() const;

  // Supervision observability (DiscoveryStats feeds), summed over the
  // shards. Meaningful any time; stable once Finish returned.
  int64_t shard_retries() const;
  int64_t shard_respawns() const;
  int64_t speculative_wins() const;
  int64_t speculative_losses() const;
  /// Shards currently degraded to in-process execution.
  int64_t fallback_shards() const;
  /// Shards whose stats footer was lost to a tolerated shutdown fault.
  int64_t footers_missing() const;

 private:
  ShardCoordinator(const EncodedTable* table,
                   const ShardTransportOptions& transport_options,
                   exec::ThreadPool* pool);

  Status Init(int num_shards, const ShardRunnerOptions& runner_options,
              const std::vector<StrippedPartition>* base_partitions);
  bool strict() const {
    return transport_.supervision.max_retries <= 0;
  }
  /// The shared-deadline reap pass (see Finish). Errors are recorded
  /// through `record` in strict mode only.
  void ReapAll(std::vector<ShardReapJob> jobs,
               const std::function<void(Status)>& record);

  const EncodedTable* table_;
  const ShardTransportOptions transport_;
  exec::ThreadPool* pool_;
  /// Encode-once frames + config template shared by every supervisor
  /// (and every respawned attempt).
  ShardBootstrap bootstrap_;
  std::vector<std::unique_ptr<ShardSupervisor>> supervisors_;
  bool finished_ = false;
  Status finish_status_;
};

}  // namespace shard
}  // namespace aod

#endif  // AOD_SHARD_COORDINATOR_H_
