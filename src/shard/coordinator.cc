#include "shard/coordinator.h"

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "partition/attribute_set.h"
#include "partition/stripped_partition.h"

extern char** environ;

namespace aod {
namespace shard {

ShardCoordinator::ShardCoordinator(
    const EncodedTable* table, const ShardTransportOptions& transport_options,
    exec::ThreadPool* pool)
    : table_(table), transport_(transport_options), pool_(pool) {}

Result<std::unique_ptr<ShardCoordinator>> ShardCoordinator::Create(
    const EncodedTable* table, int num_shards,
    const ShardRunnerOptions& runner_options,
    const ShardTransportOptions& transport_options, exec::ThreadPool* pool) {
  AOD_CHECK(table != nullptr);
  AOD_CHECK_MSG(num_shards >= 1, "num_shards must be >= 1, got %d",
                num_shards);
  std::unique_ptr<ShardCoordinator> coordinator(
      new ShardCoordinator(table, transport_options, pool));
  AOD_RETURN_NOT_OK(coordinator->Init(num_shards, runner_options));
  return coordinator;
}

std::unique_ptr<ShardChannel> ShardCoordinator::Decorate(
    std::unique_ptr<ShardChannel> ch) {
  if (transport_.channel_decorator) {
    return transport_.channel_decorator(std::move(ch));
  }
  return ch;
}

Status ShardCoordinator::InitLink(ShardLink* link, int shard_id,
                                  int num_shards,
                                  const ShardRunnerOptions& runner_options,
                                  const std::vector<uint8_t>& table_frame) {
  ChannelOptions copts;
  copts.max_frame_bytes = transport_.max_frame_bytes;
  copts.receive_timeout_seconds = transport_.io_timeout_seconds;

  switch (transport_.transport) {
    case ShardTransport::kInProcess: {
      link->to = Decorate(std::make_unique<InProcessChannel>(copts));
      link->from = Decorate(std::make_unique<InProcessChannel>(copts));
      link->to_shard = link->to.get();
      link->from_shard = link->from.get();
      link->runner = std::make_unique<ShardRunner>(
          shard_id, table_, runner_options, link->to_shard, link->from_shard,
          pool_);
      return Status::OK();
    }
    case ShardTransport::kSocket: {
      // A real localhost TCP pair: the loopback connect completes out of
      // the listen backlog, so connect-then-accept on one thread is safe.
      AOD_ASSIGN_OR_RETURN(
          std::unique_ptr<SocketShardChannel> client,
          SocketShardChannel::Connect("127.0.0.1", listener_->port(),
                                      transport_.io_timeout_seconds, copts));
      AOD_ASSIGN_OR_RETURN(int accepted_fd,
                           listener_->AcceptFd(transport_.io_timeout_seconds));
      link->to = Decorate(std::move(client));
      link->to_shard = link->to.get();
      link->from_shard = link->to.get();
      link->runner_side = SocketShardChannel::Adopt(accepted_fd, copts);
      link->runner = std::make_unique<ShardRunner>(
          shard_id, table_, runner_options, link->runner_side.get(),
          link->runner_side.get(), pool_);
      return Status::OK();
    }
    case ShardTransport::kProcess: {
      std::string path = transport_.runner_path;
      if (path.empty()) {
        const char* env = std::getenv("AOD_SHARD_RUNNER");
        if (env != nullptr) path = env;
      }
      if (path.empty()) {
        return Status::InvalidArgument(
            "process transport needs ShardTransportOptions::runner_path or "
            "$AOD_SHARD_RUNNER");
      }
      const std::string endpoint =
          "--connect=127.0.0.1:" + std::to_string(listener_->port());
      const std::string timeout =
          "--timeout=" + std::to_string(transport_.io_timeout_seconds);
      char* argv[] = {const_cast<char*>(path.c_str()),
                      const_cast<char*>(endpoint.c_str()),
                      const_cast<char*>(timeout.c_str()), nullptr};
      pid_t pid = -1;
      const int rc =
          ::posix_spawn(&pid, path.c_str(), nullptr, nullptr, argv, environ);
      if (rc != 0) {
        return Status::IoError("cannot spawn shard runner '" + path +
                               "': " + std::strerror(rc));
      }
      link->pid = pid;
      AOD_ASSIGN_OR_RETURN(int accepted_fd,
                           listener_->AcceptFd(transport_.io_timeout_seconds));
      link->to = Decorate(SocketShardChannel::Adopt(accepted_fd, copts));
      link->to_shard = link->to.get();
      link->from_shard = link->to.get();

      // Bootstrap frames the runner process consumes before its serve
      // loop: the validation config, then the rank-encoded table.
      WireRunnerConfig config;
      config.shard_id = static_cast<uint32_t>(shard_id);
      config.validator = static_cast<uint8_t>(runner_options.validator);
      config.epsilon = runner_options.epsilon;
      config.collect_removal_sets = runner_options.collect_removal_sets;
      config.enable_sampling_filter = runner_options.enable_sampling_filter;
      config.sampler_sample_size = runner_options.sampler_config.sample_size;
      config.sampler_reject_margin =
          runner_options.sampler_config.reject_margin;
      config.sampler_seed = runner_options.sampler_config.seed;
      config.partition_memory_budget_bytes =
          runner_options.partition_memory_budget_bytes;
      config.wire_compression = runner_options.wire_compression;
      // The in-process transports share one pool across all shards;
      // give each child process its slice of it, not a full copy — N
      // children each as wide as the coordinator would oversubscribe
      // the machine N-fold.
      const int workers = pool_ != nullptr ? pool_->num_workers() : 1;
      config.num_threads =
          static_cast<uint32_t>(std::max(1, workers / num_shards));
      AOD_RETURN_NOT_OK(link->to_shard->Send(EncodeConfigBlock(config)));
      return link->to_shard->Send(table_frame);
    }
  }
  return Status::Internal("unknown shard transport");
}

Status ShardCoordinator::Init(int num_shards,
                              const ShardRunnerOptions& runner_options) {
  compress_ = runner_options.wire_compression;
  if (transport_.transport != ShardTransport::kInProcess) {
    AOD_ASSIGN_OR_RETURN(listener_, SocketListener::Bind());
  }
  // The table frame is shard-independent (only the config block varies
  // per shard): encode — and checksum — it once, not once per shard.
  std::vector<uint8_t> table_frame;
  CodecByteCounts table_counts;
  if (transport_.transport == ShardTransport::kProcess) {
    table_frame = EncodeTableBlock(*table_, compress_, &table_counts);
  }
  links_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    // Pushed before InitLink so a half-initialized link (e.g. spawned
    // child, failed accept) is still cleaned up — and its process
    // reaped — by Finish.
    links_.push_back(std::make_unique<ShardLink>());
    AOD_RETURN_NOT_OK(InitLink(links_.back().get(), s, num_shards,
                               runner_options, table_frame));
    links_.back()->receiver =
        std::make_unique<LogicalFrameReceiver>(links_.back()->from_shard);
    if (transport_.transport == ShardTransport::kProcess) {
      by_type_[static_cast<size_t>(FrameType::kTableBlock)].Add(table_counts);
    }
  }

  // Seed every shard's cache over the wire: one kPartitionBlock per
  // base (level-1) partition, serialized once, then shipped to every
  // shard as a single kBatch envelope — one syscall per shard instead
  // of one per base. Socket sends are buffered by the channel's writer
  // thread, so even a serial coordinator cannot deadlock against an
  // unserved peer.
  const int k = table_->num_columns();
  std::vector<std::vector<uint8_t>> base_frames;
  base_frames.reserve(static_cast<size_t>(k));
  CodecByteCounts base_counts;
  for (int a = 0; a < k; ++a) {
    base_frames.push_back(EncodePartitionBlock(
        AttributeSet().With(a),
        StrippedPartition::FromColumn(table_->column(a)), compress_,
        &base_counts));
  }
  if (k > 0) {
    const std::vector<uint8_t> shipment =
        k == 1 ? base_frames[0] : EncodeBatchEnvelope(base_frames);
    for (auto& link : links_) {
      AOD_RETURN_NOT_OK(link->to_shard->Send(shipment));
      // The envelope counts as its k inner frames — the unit the footer
      // cross-check compares against frames_served.
      link->frames_sent += k;
      by_type_[static_cast<size_t>(FrameType::kPartitionBlock)].Add(
          base_counts);
    }
  }
  // In-process runners drain their inboxes in parallel; Init returns
  // with every shard ready to derive any context from the shipped bases.
  // Process runners install asynchronously — frame order guarantees the
  // bases precede any batch.
  if (transport_.transport != ShardTransport::kProcess) {
    std::vector<Status> statuses(links_.size());
    exec::TaskGroup group(pool_);
    for (size_t s = 0; s < links_.size(); ++s) {
      ShardLink* link = links_[s].get();
      Status* status = &statuses[s];
      group.Run([link, status, k] {
        for (int i = 0; i < k; ++i) {
          *status = link->runner->ServeOne();
          if (!status->ok()) return;
        }
      });
    }
    group.Wait();
    for (const Status& st : statuses) AOD_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

ShardCoordinator::~ShardCoordinator() {
  Finish();  // best-effort when the owner did not; idempotent
}

int ShardCoordinator::ShardOf(uint64_t context_bits, int num_shards) {
  return static_cast<int>(AttributeSetHash{}(AttributeSet(context_bits)) %
                          static_cast<size_t>(num_shards));
}

Status ShardCoordinator::SendServed(ShardLink* link,
                                    std::vector<uint8_t> frame) {
  AOD_RETURN_NOT_OK(link->to_shard->Send(std::move(frame)));
  ++link->frames_sent;
  return Status::OK();
}

Status ShardCoordinator::PumpRunners(const std::function<bool()>& cancel) {
  std::vector<Status> statuses(links_.size());
  exec::TaskGroup group(pool_);
  for (size_t s = 0; s < links_.size(); ++s) {
    ShardLink* link = links_[s].get();
    if (link->runner == nullptr) continue;  // process runner or half-init
    Status* status = &statuses[s];
    group.Run([link, status, &cancel] {
      *status = link->runner->ServeOne(cancel);
    });
  }
  group.Wait();
  for (const Status& st : statuses) AOD_RETURN_NOT_OK(st);
  return Status::OK();
}

Status ShardCoordinator::ValidateBatch(
    const std::vector<WireCandidate>& candidates,
    const std::function<bool()>& cancel,
    std::vector<WireOutcome>* completed) {
  // Staged locally so a decode failure never leaves a partial batch in
  // `completed` — the no-partial-batch contract of this overload.
  std::vector<WireOutcome> collected;
  AOD_RETURN_NOT_OK(ValidateBatch(
      candidates, cancel,
      [&collected](WireOutcome o) { collected.push_back(std::move(o)); }));
  for (WireOutcome& o : collected) completed->push_back(std::move(o));
  return Status::OK();
}

Status ShardCoordinator::ValidateBatch(
    const std::vector<WireCandidate>& candidates,
    const std::function<bool()>& cancel,
    const std::function<void(WireOutcome)>& fold) {
  const int n = num_shards();
  std::vector<std::vector<WireCandidate>> batches(static_cast<size_t>(n));
  for (const WireCandidate& c : candidates) {
    batches[static_cast<size_t>(ShardOf(c.context_bits, n))].push_back(c);
  }
  // Ship every batch (empty ones included — each runner serves exactly
  // one frame per level, so the request/reply cadence stays lockstep).
  for (int s = 0; s < n; ++s) {
    AOD_RETURN_NOT_OK(SendServed(
        links_[static_cast<size_t>(s)].get(),
        EncodeCandidateBatch(
            batches[static_cast<size_t>(s)], compress_,
            &by_type_[static_cast<size_t>(FrameType::kCandidateBatch)])));
  }
  // In-process runners are pumped here; a runner failure returns before
  // any receive, so a reply that will never come cannot hang us.
  AOD_RETURN_NOT_OK(PumpRunners(cancel));

  // Fold replies as their chunks arrive, shard order outside, ascending
  // slot order within — deterministic given deterministic batches.
  // While shard s's chunks are being decoded and folded here, shards
  // s+1..n-1 are still pushing bytes through their writer threads and
  // kernel buffers: merge CPU hides transport latency. A runner cannot
  // keep us here forever: chunks carry at least one outcome each except
  // the final one, so a well-formed reply is at most |batch|+1 chunks —
  // anything longer is a typed protocol error.
  for (int s = 0; s < n; ++s) {
    ShardLink* link = links_[static_cast<size_t>(s)].get();
    const size_t max_chunks = batches[static_cast<size_t>(s)].size() + 1;
    size_t chunks = 0;
    for (;;) {
      if (++chunks > max_chunks) {
        return Status::ParseError("shard result stream never finalized");
      }
      AOD_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, link->receiver->Receive());
      AOD_ASSIGN_OR_RETURN(DecodedFrame frame, DecodeFrame(raw));
      AOD_ASSIGN_OR_RETURN(
          WireResultChunk chunk,
          DecodeResultBatch(
              frame, &by_type_[static_cast<size_t>(FrameType::kResultBatch)]));
      for (WireOutcome& o : chunk.outcomes) fold(std::move(o));
      if (chunk.final_chunk) break;
    }
  }
  return Status::OK();
}

Status ShardCoordinator::Finish() {
  if (finished_) return finish_status_;
  finished_ = true;

  Status result;
  const auto record = [&result](Status st) {
    if (result.ok() && !st.ok()) result = std::move(st);
  };

  // Shutdown handshake, pushed to every shard even if one fails — each
  // link must reach its terminal state before the channels close.
  // Half-initialized links (failed Create) have no channels and skip
  // straight to process reaping.
  for (auto& link : links_) {
    if (link->to_shard == nullptr) continue;
    record(SendServed(link.get(), EncodeShutdown()));
  }
  record(PumpRunners({}));
  for (auto& link : links_) {
    if (link->from_shard == nullptr) continue;
    // A half-initialized link (InitLink failed mid-bootstrap) has its
    // channels but never got a receiver; give it one so the drain below
    // still unwraps envelopes.
    if (link->receiver == nullptr) {
      link->receiver = std::make_unique<LogicalFrameReceiver>(link->from_shard);
    }
    // A mid-level abort can leave a sibling shard's result frames queued
    // ahead of its footer — with chunked streaming that can be a whole
    // level's worth of reply chunks, not just one frame; drain non-
    // footer logical frames (bounded) instead of misdecoding the first
    // frame seen as the footer and losing the shard's stats.
    Result<ShardStatsFooter> footer =
        Status::Internal("stats footer never arrived");
    for (int drained = 0; drained < 4096; ++drained) {
      Result<std::vector<uint8_t>> raw = link->receiver->Receive();
      if (!raw.ok()) {
        footer = raw.status();
        break;
      }
      Result<DecodedFrame> frame = DecodeFrame(*raw);
      if (!frame.ok()) {
        footer = frame.status();
        break;
      }
      if (frame->type != FrameType::kStatsFooter) continue;  // stale reply
      footer = DecodeStatsFooter(*frame);
      break;
    }
    if (!footer.ok()) {
      record(footer.status());
      continue;
    }
    if (footer->frames_served != link->frames_sent) {
      record(Status::Internal(
          "stats footer frame count mismatch: shard served " +
          std::to_string(footer->frames_served) + " of " +
          std::to_string(link->frames_sent) + " sent"));
      continue;
    }
    link->footer = *footer;
    link->footer_valid = true;
  }
  for (auto& link : links_) {
    if (link->to_shard == nullptr) continue;
    link->to_shard->Close();
    if (link->from_shard != link->to_shard) link->from_shard->Close();
  }
  // A spawned child whose channel never opened (or whose coordinator
  // gave up) exits on its own bootstrap timeout or connection reset;
  // drop the listener first so a connect parked in the backlog resets.
  listener_.reset();
  // Reap runner processes. A healthy child exits after answering the
  // shutdown (or on EOF once its socket closed); a wedged one — stuck
  // without reading, so it never sees EOF — is killed after the I/O
  // timeout rather than hanging Finish on a blocking waitpid (the
  // failure contract is typed errors, never a hang).
  for (auto& link : links_) {
    if (link->pid < 0) continue;
    int wstatus = 0;
    pid_t reaped = 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(transport_.io_timeout_seconds));
    for (;;) {
      reaped = ::waitpid(link->pid, &wstatus, WNOHANG);
      if (reaped != 0) break;  // exited (pid) or waitpid error (-1)
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(link->pid, SIGKILL);
        record(Status::Internal(
            "shard runner unresponsive at shutdown; killed"));
        reaped = ::waitpid(link->pid, &wstatus, 0);  // converges: SIGKILL
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const bool killed_here =
        reaped == link->pid && WIFSIGNALED(wstatus) &&
        WTERMSIG(wstatus) == SIGKILL;
    link->pid = -1;
    if (reaped < 0) {
      record(Status::IoError("waitpid failed for shard runner"));
    } else if (!killed_here &&
               (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0)) {
      record(Status::Internal(
          "shard runner exited abnormally (status " +
          std::to_string(WIFEXITED(wstatus) ? WEXITSTATUS(wstatus)
                                            : -WTERMSIG(wstatus)) +
          ")"));
    }
  }
  finish_status_ = result;
  return finish_status_;
}

int64_t ShardCoordinator::bytes_shipped(int s) const {
  const ShardLink& link = *links_[static_cast<size_t>(s)];
  return link.to_shard->bytes_sent() + link.from_shard->bytes_received();
}

int64_t ShardCoordinator::bytes_shipped_total() const {
  int64_t total = 0;
  for (int s = 0; s < num_shards(); ++s) total += bytes_shipped(s);
  return total;
}

int64_t ShardCoordinator::bytes_raw_total() const {
  // Start from the observed wire volume and add back what each decode
  // site reported saving: shard footers cover the coordinator→shard
  // frames (partitions, candidates, table), the coordinator's own
  // result-chunk decodes cover the reply direction.
  int64_t total = bytes_shipped_total();
  for (const auto& link : links_) {
    if (link->footer_valid) {
      total +=
          link->footer.bytes_decoded_raw - link->footer.bytes_decoded_wire;
    }
  }
  const CodecByteCounts& results =
      by_type_[static_cast<size_t>(FrameType::kResultBatch)];
  total += results.raw - results.wire;
  return total;
}

CodecByteCounts ShardCoordinator::type_byte_counts(FrameType type) const {
  return by_type_[static_cast<size_t>(type)];
}

int64_t ShardCoordinator::products_computed() const {
  int64_t total = 0;
  for (const auto& link : links_) {
    if (link->footer_valid) total += link->footer.products_computed;
  }
  return total;
}

int64_t ShardCoordinator::partitions_evicted() const {
  int64_t total = 0;
  for (const auto& link : links_) {
    if (link->footer_valid) total += link->footer.partitions_evicted;
  }
  return total;
}

int64_t ShardCoordinator::partition_bytes_evicted() const {
  int64_t total = 0;
  for (const auto& link : links_) {
    if (link->footer_valid) total += link->footer.partition_bytes_evicted;
  }
  return total;
}

int64_t ShardCoordinator::partition_bytes_final() const {
  int64_t total = 0;
  for (const auto& link : links_) {
    if (link->footer_valid) total += link->footer.partition_bytes_final;
  }
  return total;
}

int64_t ShardCoordinator::partition_bytes_peak() const {
  int64_t total = 0;
  for (const auto& link : links_) {
    if (link->footer_valid) total += link->footer.partition_bytes_peak;
  }
  return total;
}

double ShardCoordinator::partition_seconds() const {
  double total = 0.0;
  for (const auto& link : links_) {
    if (link->footer_valid) total += link->footer.partition_seconds;
  }
  return total;
}

}  // namespace shard
}  // namespace aod
