#include "shard/coordinator.h"

#include <utility>

#include "common/macros.h"
#include "exec/task_group.h"
#include "partition/attribute_set.h"
#include "partition/stripped_partition.h"

namespace aod {
namespace shard {

ShardCoordinator::ShardCoordinator(const EncodedTable* table, int num_shards,
                                   const ShardRunnerOptions& runner_options,
                                   exec::ThreadPool* pool)
    : table_(table), pool_(pool) {
  AOD_CHECK(table != nullptr);
  AOD_CHECK_MSG(num_shards >= 1, "num_shards must be >= 1, got %d",
                num_shards);
  links_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    auto link = std::make_unique<ShardLink>();
    link->runner = std::make_unique<ShardRunner>(
        s, table_, runner_options, &link->to_shard, &link->from_shard, pool_);
    links_.push_back(std::move(link));
  }

  // Seed every shard's cache over the wire: one kPartitionBlock per
  // base (level-1) partition, serialized once and sent to all shards.
  // Runners drain their inboxes in parallel; construction returns with
  // every shard ready to derive any context from the shipped bases.
  const int k = table_->num_columns();
  for (int a = 0; a < k; ++a) {
    const std::vector<uint8_t> frame = EncodePartitionBlock(
        AttributeSet().With(a),
        StrippedPartition::FromColumn(table_->column(a)));
    for (auto& link : links_) {
      Status st = link->to_shard.Send(frame);
      AOD_CHECK_MSG(st.ok(), "base partition send failed: %s",
                    st.ToString().c_str());
    }
  }
  exec::TaskGroup group(pool_);
  for (auto& link : links_) {
    group.Run([&link, k] {
      for (int i = 0; i < k; ++i) {
        Status st = link->runner->ServeOne();
        AOD_CHECK_MSG(st.ok(), "base partition install failed: %s",
                      st.ToString().c_str());
      }
    });
  }
  group.Wait();
}

ShardCoordinator::~ShardCoordinator() {
  for (auto& link : links_) {
    link->to_shard.Close();
    link->from_shard.Close();
  }
}

int ShardCoordinator::ShardOf(uint64_t context_bits, int num_shards) {
  return static_cast<int>(AttributeSetHash{}(AttributeSet(context_bits)) %
                          static_cast<size_t>(num_shards));
}

Status ShardCoordinator::ValidateBatch(
    const std::vector<WireCandidate>& candidates,
    const std::function<bool()>& cancel,
    std::vector<WireOutcome>* completed) {
  const int n = num_shards();
  std::vector<std::vector<WireCandidate>> batches(static_cast<size_t>(n));
  for (const WireCandidate& c : candidates) {
    batches[static_cast<size_t>(ShardOf(c.context_bits, n))].push_back(c);
  }
  // Ship every batch (empty ones included — each runner serves exactly
  // one frame per level, so the request/reply cadence stays lockstep).
  for (int s = 0; s < n; ++s) {
    AOD_RETURN_NOT_OK(links_[static_cast<size_t>(s)]->to_shard.Send(
        EncodeCandidateBatch(batches[static_cast<size_t>(s)])));
  }

  std::vector<Status> statuses(static_cast<size_t>(n));
  {
    exec::TaskGroup group(pool_);
    for (int s = 0; s < n; ++s) {
      ShardLink* link = links_[static_cast<size_t>(s)].get();
      Status* status = &statuses[static_cast<size_t>(s)];
      group.Run([link, status, &cancel] {
        *status = link->runner->ServeOne(cancel);
      });
    }
    group.Wait();
  }
  for (const Status& st : statuses) AOD_RETURN_NOT_OK(st);

  // Collect replies in shard order — deterministic given deterministic
  // batches, since each runner replies in ascending slot order.
  for (int s = 0; s < n; ++s) {
    AOD_ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                         links_[static_cast<size_t>(s)]->from_shard.Receive());
    AOD_ASSIGN_OR_RETURN(DecodedFrame frame, DecodeFrame(raw));
    AOD_ASSIGN_OR_RETURN(std::vector<WireOutcome> outcomes,
                         DecodeResultBatch(frame));
    for (WireOutcome& o : outcomes) completed->push_back(std::move(o));
  }
  return Status::OK();
}

int64_t ShardCoordinator::bytes_shipped(int s) const {
  const ShardLink& link = *links_[static_cast<size_t>(s)];
  return link.to_shard.bytes_sent() + link.from_shard.bytes_sent();
}

int64_t ShardCoordinator::bytes_shipped_total() const {
  int64_t total = 0;
  for (int s = 0; s < num_shards(); ++s) total += bytes_shipped(s);
  return total;
}

int64_t ShardCoordinator::products_computed() const {
  int64_t total = 0;
  for (const auto& link : links_) {
    total += link->runner->cache().products_computed();
  }
  return total;
}

int64_t ShardCoordinator::bytes_resident() const {
  int64_t total = 0;
  for (const auto& link : links_) {
    total += link->runner->cache().bytes_resident();
  }
  return total;
}

int64_t ShardCoordinator::partitions_evicted() const {
  int64_t total = 0;
  for (const auto& link : links_) {
    total += link->runner->cache().partitions_evicted();
  }
  return total;
}

int64_t ShardCoordinator::partition_bytes_evicted() const {
  int64_t total = 0;
  for (const auto& link : links_) total += link->runner->bytes_evicted();
  return total;
}

double ShardCoordinator::partition_seconds() const {
  double total = 0.0;
  for (const auto& link : links_) {
    total += link->runner->partition_seconds();
  }
  return total;
}

}  // namespace shard
}  // namespace aod
