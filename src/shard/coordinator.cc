#include "shard/coordinator.h"

#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <mutex>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "partition/attribute_set.h"
#include "partition/stripped_partition.h"

namespace aod {
namespace shard {
namespace {

/// Floor on the straggler threshold: hedging a level whose median shard
/// finished in microseconds would respawn constantly for nothing.
constexpr double kMinHedgeSeconds = 0.05;

}  // namespace

ShardCoordinator::ShardCoordinator(
    const EncodedTable* table, const ShardTransportOptions& transport_options,
    exec::ThreadPool* pool)
    : table_(table), transport_(transport_options), pool_(pool) {}

Result<std::unique_ptr<ShardCoordinator>> ShardCoordinator::Create(
    const EncodedTable* table, int num_shards,
    const ShardRunnerOptions& runner_options,
    const ShardTransportOptions& transport_options, exec::ThreadPool* pool,
    const std::vector<StrippedPartition>* base_partitions) {
  AOD_CHECK(table != nullptr);
  AOD_CHECK_MSG(num_shards >= 1, "num_shards must be >= 1, got %d",
                num_shards);
  std::unique_ptr<ShardCoordinator> coordinator(
      new ShardCoordinator(table, transport_options, pool));
  AOD_RETURN_NOT_OK(
      coordinator->Init(num_shards, runner_options, base_partitions));
  return coordinator;
}

Status ShardCoordinator::Init(
    int num_shards, const ShardRunnerOptions& runner_options,
    const std::vector<StrippedPartition>* base_partitions) {
  const bool compress = runner_options.wire_compression;
  // Everything a fresh attempt needs, encoded — and checksummed — once:
  // the same bytes bootstrap the first attempt, every respawn and every
  // speculative backup, so re-seeding costs sends, not re-encodes.
  bootstrap_.table = table_;
  bootstrap_.runner_options = runner_options;
  bootstrap_.num_shards = num_shards;
  bootstrap_.pool_workers = pool_ != nullptr ? pool_->num_workers() : 1;
  if (transport_.transport == ShardTransport::kProcess) {
    bootstrap_.table_frame =
        EncodeTableBlock(*table_, compress, &bootstrap_.table_counts);
  }
  // One kPartitionBlock per base (level-1) partition, shipped to every
  // shard as a single kBatch envelope — one syscall per seeding instead
  // of one per base. Socket sends are buffered by the channel's writer
  // thread, so even a serial coordinator cannot deadlock against an
  // unserved peer.
  const int k = table_->num_columns();
  if (base_partitions != nullptr) {
    AOD_CHECK_MSG(static_cast<int>(base_partitions->size()) == k,
                  "preloaded bases cover %d attributes, table has %d",
                  static_cast<int>(base_partitions->size()), k);
  }
  std::vector<std::vector<uint8_t>> base_frames;
  base_frames.reserve(static_cast<size_t>(k));
  for (int a = 0; a < k; ++a) {
    // Preloaded bases (the row-shard phase's stitched partitions) are
    // bit-identical to FromColumn, so the shipped frames — and every
    // attempt they seed — do not depend on which path produced them.
    base_frames.push_back(EncodePartitionBlock(
        AttributeSet().With(a),
        base_partitions != nullptr
            ? (*base_partitions)[static_cast<size_t>(a)]
            : StrippedPartition::FromColumn(table_->column(a)),
        compress, &bootstrap_.base_counts));
  }
  bootstrap_.base_frames = k;
  if (k == 1) {
    bootstrap_.base_shipment = std::move(base_frames[0]);
  } else if (k > 1) {
    bootstrap_.base_shipment = EncodeBatchEnvelope(base_frames);
  }

  supervisors_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    supervisors_.push_back(std::make_unique<ShardSupervisor>(
        s, &bootstrap_, &transport_, transport_.supervision, pool_));
  }
  // Started serially in shard order: attempt (and decorated-channel)
  // creation order stays deterministic, which the fault-injection tests
  // key their schedules on.
  for (auto& sup : supervisors_) {
    AOD_RETURN_NOT_OK(sup->Start());
  }
  return Status::OK();
}

ShardCoordinator::~ShardCoordinator() {
  Finish();  // best-effort when the owner did not; idempotent
}

int ShardCoordinator::ShardOf(uint64_t context_bits, int num_shards) {
  return static_cast<int>(AttributeSetHash{}(AttributeSet(context_bits)) %
                          static_cast<size_t>(num_shards));
}

Status ShardCoordinator::ValidateBatch(
    const std::vector<WireCandidate>& candidates,
    const std::function<bool()>& cancel,
    std::vector<WireOutcome>* completed) {
  // Staged locally so a failure never leaves a partial batch in
  // `completed` — the no-partial-batch contract of this overload.
  std::vector<WireOutcome> collected;
  AOD_RETURN_NOT_OK(ValidateBatch(
      candidates, cancel,
      [&collected](WireOutcome o) { collected.push_back(std::move(o)); }));
  for (WireOutcome& o : collected) completed->push_back(std::move(o));
  return Status::OK();
}

Status ShardCoordinator::ValidateBatch(
    const std::vector<WireCandidate>& candidates,
    const std::function<bool()>& cancel,
    const std::function<void(WireOutcome)>& fold) {
  const int n = num_shards();
  std::vector<std::vector<WireCandidate>> batches(static_cast<size_t>(n));
  for (const WireCandidate& c : candidates) {
    batches[static_cast<size_t>(ShardOf(c.context_bits, n))].push_back(c);
  }

  // One result cell per shard for the level. A cell is claimed exactly
  // once — by the primary attempt or its speculative backup, whichever
  // finishes first — under the level mutex; the loser's reply is never
  // folded. That single-claim rule is the speculation dedupe: outcomes
  // are pure functions of the batch, so the winner's buffered reply is
  // byte-identical to what the loser would have produced.
  struct LevelCell {
    bool done = false;
    bool backup_launched = false;
    bool backup_won = false;
    Status status;
    std::vector<WireOutcome> outcomes;
    double completed_seconds = 0.0;
  };
  std::vector<LevelCell> cells(static_cast<size_t>(n));
  std::mutex mutex;
  std::condition_variable cv;
  int completed = 0;
  Stopwatch level_sw;

  const bool speculate = !strict() && pool_ != nullptr &&
                         transport_.supervision.speculation_factor > 0.0;

  // Each shard's ship/validate/receive round is one task: chunk decode
  // and (supervised) retry ladders overlap across shards, while the
  // serial shard-order fold below keeps delivery deterministic.
  exec::TaskGroup group(pool_);
  for (int s = 0; s < n; ++s) {
    ShardSupervisor* sup = supervisors_[static_cast<size_t>(s)].get();
    LevelCell* cell = &cells[static_cast<size_t>(s)];
    const std::vector<WireCandidate>* batch =
        &batches[static_cast<size_t>(s)];
    group.Run([sup, cell, batch, &cancel, &mutex, &cv, &completed,
               &level_sw] {
      const auto abandoned = [cell, &mutex] {
        std::lock_guard<std::mutex> lock(mutex);
        return cell->done;
      };
      std::vector<WireOutcome> buffered;
      Status st = sup->ExecuteLevel(*batch, cancel, abandoned, &buffered);
      bool won = false;
      bool raced_backup = false;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (!cell->done) {
          cell->done = true;
          cell->status = std::move(st);
          cell->outcomes = std::move(buffered);
          cell->completed_seconds = level_sw.ElapsedSeconds();
          ++completed;
          won = true;
          raced_backup = cell->backup_launched;
        }
      }
      cv.notify_all();
      if (won && raced_backup) sup->AbortOther(/*winner_is_backup=*/false);
    });
  }

  if (speculate) {
    // The straggler monitor: once at least half the shards finished the
    // level, any shard still running past factor x the median latency
    // gets one backup attempt. Runs on the calling thread; the tasks
    // above run on the pool meanwhile.
    std::unique_lock<std::mutex> lock(mutex);
    while (completed < n) {
      cv.wait_for(lock, std::chrono::milliseconds(20));
      if (completed >= n || (cancel && cancel())) break;
      std::vector<double> done_seconds;
      for (const LevelCell& cell : cells) {
        if (cell.done) done_seconds.push_back(cell.completed_seconds);
      }
      if (done_seconds.size() * 2 < static_cast<size_t>(n)) continue;
      std::sort(done_seconds.begin(), done_seconds.end());
      const double median = done_seconds[done_seconds.size() / 2];
      const double threshold =
          std::max(transport_.supervision.speculation_factor * median,
                   kMinHedgeSeconds);
      if (level_sw.ElapsedSeconds() < threshold) continue;
      std::vector<int> launch;
      for (int s = 0; s < n; ++s) {
        LevelCell& cell = cells[static_cast<size_t>(s)];
        if (!cell.done && !cell.backup_launched) {
          cell.backup_launched = true;
          launch.push_back(s);
        }
      }
      if (launch.empty()) continue;
      lock.unlock();
      for (int s : launch) {
        ShardSupervisor* sup = supervisors_[static_cast<size_t>(s)].get();
        LevelCell* cell = &cells[static_cast<size_t>(s)];
        const std::vector<WireCandidate>* batch =
            &batches[static_cast<size_t>(s)];
        group.Run([sup, cell, batch, &cancel, &mutex, &cv, &completed,
                   &level_sw] {
          const auto abandoned = [cell, &mutex] {
            std::lock_guard<std::mutex> lock(mutex);
            return cell->done;
          };
          std::vector<WireOutcome> buffered;
          const Status st =
              sup->ExecuteLevelBackup(*batch, cancel, abandoned, &buffered);
          // A backup claims the cell only on success — a backup that
          // fails (or was aborted by the primary's win) is just a loss,
          // never the level's verdict.
          bool won = false;
          {
            std::lock_guard<std::mutex> lock(mutex);
            if (st.ok() && !cell->done) {
              cell->done = true;
              cell->backup_won = true;
              cell->status = Status::OK();
              cell->outcomes = std::move(buffered);
              cell->completed_seconds = level_sw.ElapsedSeconds();
              ++completed;
              won = true;
            }
          }
          cv.notify_all();
          if (won) sup->AbortOther(/*winner_is_backup=*/true);
        });
      }
      lock.lock();
    }
  }
  group.Wait();

  // Post-join, single-threaded: adopt winning backups / discard losing
  // ones, then fold exactly one claimed reply per shard in shard order
  // (ascending slots within a shard) — deterministic regardless of
  // which attempt won or in what order shards finished.
  for (int s = 0; s < n; ++s) {
    const LevelCell& cell = cells[static_cast<size_t>(s)];
    supervisors_[static_cast<size_t>(s)]->ResolveLevel(cell.backup_launched,
                                                       cell.backup_won);
  }
  for (const LevelCell& cell : cells) {
    AOD_RETURN_NOT_OK(cell.status);
  }
  for (LevelCell& cell : cells) {
    for (WireOutcome& o : cell.outcomes) fold(std::move(o));
  }
  return Status::OK();
}

void ShardCoordinator::ReapAll(std::vector<ShardReapJob> jobs,
                               const std::function<void(Status)>& record) {
  if (jobs.empty()) return;
  // ONE deadline for the whole fleet: a healthy child exits after
  // answering the shutdown (or on EOF once its socket closed); the
  // wedged ones — stuck without reading, so they never see EOF — are
  // all killed in a single escalation pass once the shared deadline
  // lapses, so shutdown costs at most one I/O timeout total, not one
  // per child.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(transport_.io_timeout_seconds));
  std::vector<char> done(jobs.size(), 0);
  size_t remaining = jobs.size();
  bool escalated = false;
  while (remaining > 0) {
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (done[i]) continue;
      int wstatus = 0;
      // After the SIGKILL pass the waits block — SIGKILL converges, so
      // they cannot hang.
      const pid_t reaped =
          ::waitpid(jobs[i].pid, &wstatus, escalated ? 0 : WNOHANG);
      if (reaped == 0) continue;
      done[i] = 1;
      --remaining;
      if (reaped < 0) {
        record(Status::IoError("waitpid failed for shard runner"));
        continue;
      }
      const bool killed_here = escalated && WIFSIGNALED(wstatus) &&
                               WTERMSIG(wstatus) == SIGKILL;
      if (!killed_here &&
          (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0)) {
        record(Status::Internal(
            "shard runner exited abnormally (status " +
            std::to_string(WIFEXITED(wstatus) ? WEXITSTATUS(wstatus)
                                              : -WTERMSIG(wstatus)) +
            ")"));
      }
    }
    if (remaining == 0 || escalated) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      for (size_t i = 0; i < jobs.size(); ++i) {
        if (done[i]) continue;
        ::kill(jobs[i].pid, SIGKILL);
        record(Status::Internal(
            "shard runner unresponsive at shutdown; killed"));
      }
      escalated = true;
      continue;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

Status ShardCoordinator::Finish() {
  if (finished_) return finish_status_;
  finished_ = true;

  Status result;
  const auto record = [&result](Status st) {
    if (result.ok() && !st.ok()) result = std::move(st);
  };
  // Supervised mode tolerates shutdown-path faults: the merged results
  // are already correct, and every tolerated loss is counted
  // (footers_missing). The supervisor methods themselves return OK for
  // tolerated faults, so `record` only ever sees strict-mode errors and
  // genuine supervised-mode breakage.
  const auto swallow = [](Status) {};

  // Shutdown handshake, pushed to every shard even if one fails — each
  // link must reach its terminal state before the channels close.
  for (auto& sup : supervisors_) {
    record(sup->SendShutdown());
  }
  {
    std::vector<Status> statuses(supervisors_.size());
    exec::TaskGroup group(pool_);
    for (size_t s = 0; s < supervisors_.size(); ++s) {
      ShardSupervisor* sup = supervisors_[s].get();
      Status* status = &statuses[s];
      group.Run([sup, status] { *status = sup->PumpShutdownServe(); });
    }
    group.Wait();
    for (Status& st : statuses) record(std::move(st));
  }
  for (auto& sup : supervisors_) {
    record(sup->CollectFooter());
  }
  for (auto& sup : supervisors_) {
    sup->CloseChannels();
  }
  std::vector<ShardReapJob> jobs;
  for (auto& sup : supervisors_) {
    sup->ReleaseProcesses(&jobs);
  }
  if (strict()) {
    ReapAll(std::move(jobs), record);
  } else {
    ReapAll(std::move(jobs), swallow);
  }
  finish_status_ = result;
  return finish_status_;
}

int64_t ShardCoordinator::bytes_shipped(int s) const {
  return supervisors_[static_cast<size_t>(s)]->bytes_shipped();
}

int64_t ShardCoordinator::bytes_shipped_total() const {
  int64_t total = 0;
  for (int s = 0; s < num_shards(); ++s) total += bytes_shipped(s);
  return total;
}

int64_t ShardCoordinator::bytes_raw_total() const {
  // Start from the observed wire volume and add back what each decode
  // site reported saving: shard footers cover the coordinator→shard
  // frames (partitions, candidates, table), the coordinator's own
  // result-chunk decodes cover the reply direction.
  int64_t total = bytes_shipped_total();
  for (const auto& sup : supervisors_) {
    if (sup->footer_valid()) {
      total += sup->footer().bytes_decoded_raw -
               sup->footer().bytes_decoded_wire;
    }
  }
  const CodecByteCounts results =
      type_byte_counts(FrameType::kResultBatch);
  total += results.raw - results.wire;
  return total;
}

CodecByteCounts ShardCoordinator::type_byte_counts(FrameType type) const {
  CodecByteCounts total;
  for (const auto& sup : supervisors_) {
    total.Add(sup->type_byte_counts(type));
  }
  return total;
}

int64_t ShardCoordinator::products_computed() const {
  int64_t total = 0;
  for (const auto& sup : supervisors_) {
    if (sup->footer_valid()) total += sup->footer().products_computed;
  }
  return total;
}

int64_t ShardCoordinator::partitions_evicted() const {
  int64_t total = 0;
  for (const auto& sup : supervisors_) {
    if (sup->footer_valid()) total += sup->footer().partitions_evicted;
  }
  return total;
}

int64_t ShardCoordinator::partition_bytes_evicted() const {
  int64_t total = 0;
  for (const auto& sup : supervisors_) {
    if (sup->footer_valid()) total += sup->footer().partition_bytes_evicted;
  }
  return total;
}

int64_t ShardCoordinator::partition_bytes_final() const {
  int64_t total = 0;
  for (const auto& sup : supervisors_) {
    if (sup->footer_valid()) total += sup->footer().partition_bytes_final;
  }
  return total;
}

int64_t ShardCoordinator::partition_bytes_peak() const {
  int64_t total = 0;
  for (const auto& sup : supervisors_) {
    if (sup->footer_valid()) total += sup->footer().partition_bytes_peak;
  }
  return total;
}

double ShardCoordinator::partition_seconds() const {
  double total = 0.0;
  for (const auto& sup : supervisors_) {
    if (sup->footer_valid()) total += sup->footer().partition_seconds;
  }
  return total;
}

int64_t ShardCoordinator::shard_retries() const {
  int64_t total = 0;
  for (const auto& sup : supervisors_) total += sup->retries();
  return total;
}

int64_t ShardCoordinator::shard_respawns() const {
  int64_t total = 0;
  for (const auto& sup : supervisors_) total += sup->respawns();
  return total;
}

int64_t ShardCoordinator::speculative_wins() const {
  int64_t total = 0;
  for (const auto& sup : supervisors_) total += sup->speculative_wins();
  return total;
}

int64_t ShardCoordinator::speculative_losses() const {
  int64_t total = 0;
  for (const auto& sup : supervisors_) total += sup->speculative_losses();
  return total;
}

int64_t ShardCoordinator::fallback_shards() const {
  int64_t total = 0;
  for (const auto& sup : supervisors_) total += sup->fell_back() ? 1 : 0;
  return total;
}

int64_t ShardCoordinator::footers_missing() const {
  int64_t total = 0;
  for (const auto& sup : supervisors_) total += sup->footer_missing() ? 1 : 0;
  return total;
}

}  // namespace shard
}  // namespace aod
