// The versioned, checksummed wire format of the sharding subsystem.
//
// Everything that crosses the shard seam — partitions, candidate batches,
// validation results — travels as a self-delimiting *frame*:
//
//   offset  field      width
//   0       magic      u32   "AODW" (0x414F4457)
//   4       version    u16   kWireVersion; decoders reject anything else
//   6       type       u16   FrameType
//   8       size       u64   payload byte count
//   16      checksum   u64   FNV-1a over the payload bytes
//   24      payload    size bytes
//
// All integers are little-endian; doubles ship as their IEEE-754 bit
// pattern, so a value survives the round trip bit-exactly — the
// determinism contract (ARCHITECTURE.md) extends across the wire only
// because nothing is ever re-derived through text or rounding. Decoders
// validate magic, version, declared size and checksum before touching
// the payload, and every payload read is bounds-checked, so a truncated
// or corrupted buffer yields a clean ParseError, never a misparse.
//
// Version 2 adds a compressed-payload layer under the frame header. The
// bulky payloads (partition CSR arrays, table rank columns, candidate
// and result batches) carry a *flags byte* that says how the body is
// encoded: raw fixed-width (exactly the version-1 layout after the
// flags byte) or a delta/varint form that exploits the canonical CSR
// normal form — row ids ascend within each class and class offsets are
// monotone, so deltas are small and LEB128 varints shrink them 3–6×.
// The encoder picks the smaller of the two (a compressed attempt aborts
// the moment it outgrows the raw body — the cheap cost threshold that
// keeps incompressible payloads raw), and the flags byte makes every
// frame self-describing: a decoder never needs to know what the encoder
// chose. The checksum always covers the on-wire (possibly compressed)
// payload bytes. Version 2 also adds kBatch: an envelope frame whose
// payload is a sequence of complete inner frames, so many small frames
// cross a socket as one write (see channel.h's BatchingFrameSender).
//
// The frame layer is transport-agnostic: ShardChannel moves opaque
// frames, and a socket or file transport can replace the in-process
// queue without touching any encoder or decoder.
#ifndef AOD_SHARD_WIRE_H_
#define AOD_SHARD_WIRE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/encoder.h"
#include "od/dependency_kind.h"
#include "partition/attribute_set.h"
#include "partition/partition_stitch.h"
#include "partition/stripped_partition.h"

namespace aod {
namespace shard {

inline constexpr uint32_t kWireMagic = 0x414F4457;  // "AODW"
/// Version 2: compressed payload codecs (flags byte) + kBatch envelopes
/// + split raw/wire byte accounting in the stats footer.
/// Version 3: an attempt id in the config block and the stats footer, so
/// a supervising coordinator that respawned a shard can tell a stale
/// attempt's footer from the live one (src/shard/supervisor.h).
/// Version 4: multi-kind candidates — the candidate's is_ofd byte became
/// a DependencyKind id, outcomes echo their candidate's kind, and the
/// config block carries the enabled kind set and the AFD g1 threshold.
/// Decoders reject unknown kind ids and out-of-range thresholds with
/// typed parse errors.
/// Version 5: row-space sharding — kTableBlock carries a row slice
/// (global row offset + total row count ahead of the columns; a full
/// table is the offset-0, whole-range slice), the config block carries
/// the shard's assigned row range, and kPartitionFragment ships one
/// attribute's rank-keyed equivalence classes over that range back to
/// the class-stitching reducer (partition/partition_stitch.h).
inline constexpr uint16_t kWireVersion = 5;
inline constexpr size_t kFrameHeaderBytes = 24;

enum class FrameType : uint16_t {
  /// One attribute set + its stripped partition in CSR encoding; seeds a
  /// shard's partition cache.
  kPartitionBlock = 1,
  /// The candidates assigned to one shard for one lattice level.
  kCandidateBatch = 2,
  /// One chunk of the outcomes a shard completed for one candidate
  /// batch. A level's reply is a sequence of chunks; the flags byte of
  /// the last one carries kResultFlagFinalChunk, so the coordinator can
  /// fold chunks as they arrive instead of barriering on the level.
  kResultBatch = 3,
  /// The rank-encoded table columns, shipped once at startup to a
  /// runner in its own process (in-process runners share the table by
  /// pointer and never see this frame).
  kTableBlock = 4,
  /// The runner's validation configuration, shipped before the table.
  kConfigBlock = 5,
  /// Coordinator -> runner: the run is over; reply with a stats footer
  /// and exit the serve loop. Empty payload.
  kShutdown = 6,
  /// Runner -> coordinator: the terminal frame of a shard conversation,
  /// carrying the shard's DiscoveryStats counters so remote runners
  /// aggregate without object access.
  kStatsFooter = 7,
  /// An envelope holding a sequence of complete inner frames (payload:
  /// u32 count, then per inner frame u64 length + the frame bytes,
  /// header included). Inner frames are ordinary checksummed frames and
  /// must not themselves be kBatch. One envelope counts as its inner
  /// frames for the frames_served conversation cross-check.
  kBatch = 8,

  // --- The serving vocabulary (src/serve/) ---------------------------
  // The discovery-as-a-service job protocol between a DiscoveryClient
  // and a long-lived DiscoveryServer. It rides the same frame layer
  // (magic/version/checksum, bounded decode) so a job submission gets
  // the identical malformed-input protection as the shard seam; the
  // encoders/decoders live in src/serve/serve_wire.{h,cc}.
  /// Client -> server: one discovery job — a DiscoveryOptions subset
  /// plus the table (inline kTableBlock bytes, or a server-side CSV
  /// path reference).
  kJobSubmit = 9,
  /// Server -> client: acceptance + lifecycle/progress updates for one
  /// job (queued/running/done, queue position, level progress). Also
  /// client -> server as a bare job-id query.
  kJobStatus = 10,
  /// Server -> client: one chunk of a finished job's result, chunked
  /// like kResultBatch (final-chunk flag; the final chunk carries the
  /// stats and the terminal status), so large result sets stream
  /// instead of materializing one giant frame.
  kJobResultBatch = 11,
  /// Server -> client: a typed job rejection or failure —
  /// StatusCode::kOverloaded (admission control), kShuttingDown
  /// (drain), kInvalidArgument (malformed submission), carried as a
  /// code + message.
  kJobError = 12,
  /// Client -> server: abandon a submitted job; the server cancels it
  /// cooperatively and reclaims its resources.
  kCancel = 13,

  /// Runner -> coordinator (row-space sharding): one attribute's
  /// equivalence classes over the runner's assigned row range, keyed by
  /// table-global rank — the input of the class-stitching reducer.
  /// Unlike kPartitionBlock this is NOT a stripped partition: singleton
  /// classes survive (they may join a class from another range) and
  /// classes are ordered by rank, not smallest row id.
  kPartitionFragment = 14,
};

// Payload codec identifiers — the per-frame flags byte. "Raw" is always
// exactly the version-1 fixed-width layout after the flags byte, so the
// codec choice never changes what a decoded message contains.
/// kPartitionBlock body codecs. The encoder builds both compressed
/// bodies (bounded by the raw size) and ships the smallest:
/// delta-varint wins when in-class row gaps are small (low-cardinality
/// columns, long runs); class-label wins for mid-cardinality columns,
/// where a bit-packed label costs log2(classes) bits per row while a
/// gap delta already needs two varint bytes.
inline constexpr uint8_t kCodecRaw = 0;
inline constexpr uint8_t kCodecDeltaVarint = 1;
/// Coverage bitmap over [0, max_row], then for each covered row (in
/// ascending row order) its class index, bit-packed at
/// ceil(log2(num_classes)) bits, LSB first.
inline constexpr uint8_t kCodecClassLabel = 2;
/// Per-column rank codecs inside kTableBlock. Ranks are already dense
/// dictionary codes in [0, cardinality), so small domains pack into
/// fixed narrow widths (the dictionary path) and mid-size domains into
/// varints; the selection is a pure function of the cardinality.
inline constexpr uint8_t kRankCodecRaw = 0;
inline constexpr uint8_t kRankCodecByte = 1;    // cardinality <= 2^8
inline constexpr uint8_t kRankCodecShort = 2;   // cardinality <= 2^16
inline constexpr uint8_t kRankCodecVarint = 3;  // cardinality <= 2^21
/// kResultBatch flag bits.
inline constexpr uint8_t kResultFlagFinalChunk = 0x01;
inline constexpr uint8_t kResultFlagCompressed = 0x02;
/// kCandidateBatch flag bits.
inline constexpr uint8_t kCandidateFlagCompressed = 0x01;

/// FNV-1a 64 over `size` bytes — the frame checksum.
uint64_t WireChecksum(const uint8_t* data, size_t size);

/// Raw vs. on-wire byte accounting for one or more codec-bearing frames:
/// `raw` is what the frame(s) would occupy with every codec forced to
/// raw (header included), `wire` is what actually crossed the channel.
/// Encoders and decoders compute identical values from the same message,
/// so either side of the seam can account without trusting the other.
struct CodecByteCounts {
  int64_t raw = 0;
  int64_t wire = 0;
  void Add(const CodecByteCounts& o) {
    raw += o.raw;
    wire += o.wire;
  }
};

/// Appends little-endian primitives to a growing payload, then seals the
/// payload into a framed message.
class WireWriter {
 public:
  void PutU8(uint8_t v) { payload_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// IEEE-754 bit pattern; exact round trip.
  void PutDouble(double v);
  /// LEB128: 7 value bits per byte, high bit = continuation.
  void PutVarint(uint64_t v);
  /// Zigzag-mapped varint for small signed values.
  void PutVarintI64(int64_t v);
  /// u64 count followed by the values.
  void PutI32Array(const std::vector<int32_t>& values);
  /// u64 byte length followed by the bytes.
  void PutString(const std::string& s);
  void PutBytes(const uint8_t* data, size_t size);

  const std::vector<uint8_t>& payload() const { return payload_; }

  /// Wraps the accumulated payload in a header (magic, version, `type`,
  /// size, checksum) and returns the complete frame, leaving the writer
  /// empty for reuse.
  std::vector<uint8_t> SealFrame(FrameType type);

 private:
  std::vector<uint8_t> payload_;
};

/// Bounds-checked reader over a decoded frame's payload. Every getter
/// returns ParseError instead of reading past the end.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status GetU8(uint8_t* v);
  Status GetU16(uint16_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI32(int32_t* v);
  Status GetI64(int64_t* v);
  Status GetDouble(double* v);
  /// Rejects truncation and any encoding past 10 bytes / 64 value bits.
  Status GetVarint(uint64_t* v);
  Status GetVarintI64(int64_t* v);
  Status GetI32Array(std::vector<int32_t>* values);
  Status GetString(std::string* s);

  const uint8_t* cursor() const { return data_ + pos_; }
  size_t remaining() const { return size_ - pos_; }
  void Skip(size_t bytes) { pos_ += bytes; }
  bool AtEnd() const { return pos_ == size_; }
  /// Trailing bytes after the last expected field are a framing error.
  Status ExpectEnd() const;

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// A validated frame: type plus a payload view into the input buffer.
struct DecodedFrame {
  FrameType type = FrameType::kPartitionBlock;
  const uint8_t* payload = nullptr;
  size_t size = 0;
};

/// Validates magic, version, declared payload size and checksum.
/// The returned view aliases the input bytes, which must outlive it.
Result<DecodedFrame> DecodeFrame(const uint8_t* data, size_t size);
Result<DecodedFrame> DecodeFrame(const std::vector<uint8_t>& frame);

// ---------------------------------------------------------------------------
// Message vocabulary. One encode/decode pair per FrameType; decoders
// reject type mismatches and any structural violation. Every encoder of
// a codec-bearing frame takes `compress` (false forces the raw codec —
// the determinism matrix runs both ways) and an optional `counts`
// accumulator for the raw/wire byte split; decoders accept either codec
// regardless (frames are self-describing) and can report the same
// counts from their side of the seam.

/// One candidate assigned to a shard. `slot` is the candidate's index in
/// the coordinator's flattened per-level array — results are keyed by it,
/// so shards can reply in any order and with any subset (deadline).
/// `target` is the RHS attribute for the target kinds (kOfd/kFd/kAfd);
/// the pair fields carry the kOc pair.
struct WireCandidate {
  uint64_t slot = 0;
  uint64_t context_bits = 0;
  DependencyKind kind = DependencyKind::kOc;
  int32_t target = -1;
  int32_t pair_a = -1;
  int32_t pair_b = -1;
  bool opposite = false;
};

/// One completed validation, shipped back to the coordinator. Doubles
/// carry exact bit patterns; `removal_rows` is empty unless the run
/// collects removal sets.
struct WireOutcome {
  uint64_t slot = 0;
  /// Echo of the candidate's kind; the coordinator cross-checks it
  /// against what it asked for at `slot` and aborts on a mismatch.
  DependencyKind kind = DependencyKind::kOc;
  bool valid = false;
  bool early_exit = false;
  int64_t removal_size = 0;
  double approx_factor = 0.0;
  double interestingness = 0.0;
  /// Validation CPU seconds (merged into summed-CPU stats; exempt from
  /// the determinism contract like every timing field).
  double seconds = 0.0;
  std::vector<int32_t> removal_rows;
};

/// One decoded kResultBatch frame: a chunk of a level's outcomes plus
/// whether it terminates the shard's reply for the level.
struct WireResultChunk {
  std::vector<WireOutcome> outcomes;
  bool final_chunk = true;
};

std::vector<uint8_t> EncodePartitionBlock(AttributeSet set,
                                          const StrippedPartition& partition,
                                          bool compress = true,
                                          CodecByteCounts* counts = nullptr);
/// `num_rows` bounds the decoded row ids; the partition is additionally
/// validated for canonical form (see StrippedPartition::Deserialize) —
/// a compressed body is expanded back to the raw CSR bytes first, so
/// both codecs pass through exactly the same structural validation.
Result<std::pair<AttributeSet, StrippedPartition>> DecodePartitionBlock(
    const DecodedFrame& frame, int64_t num_rows,
    CodecByteCounts* counts = nullptr);

std::vector<uint8_t> EncodeCandidateBatch(
    const std::vector<WireCandidate>& candidates, bool compress = true,
    CodecByteCounts* counts = nullptr);
Result<std::vector<WireCandidate>> DecodeCandidateBatch(
    const DecodedFrame& frame, CodecByteCounts* counts = nullptr);

std::vector<uint8_t> EncodeResultBatch(const std::vector<WireOutcome>& outcomes,
                                       bool final_chunk = true,
                                       bool compress = true,
                                       CodecByteCounts* counts = nullptr);
Result<WireResultChunk> DecodeResultBatch(const DecodedFrame& frame,
                                          CodecByteCounts* counts = nullptr);

/// The shard-relevant validation configuration, flattened to wire-level
/// scalars so this module stays independent of od/. The coordinator
/// fills it from ShardRunnerOptions; shard_runner_main converts it back.
struct WireRunnerConfig {
  uint32_t shard_id = 0;
  /// Which supervised (re)establishment of this shard the config belongs
  /// to: 0 for the first attempt, bumped by the coordinator on every
  /// respawn/reconnect and on speculative backup attempts. The runner
  /// echoes it in its stats footer so the coordinator can reject a
  /// footer that belongs to an abandoned attempt.
  uint32_t attempt_id = 0;
  /// ValidatorKind's underlying value; decoders reject anything > 2.
  uint8_t validator = 2;
  double epsilon = 0.1;
  bool collect_removal_sets = false;
  bool enable_sampling_filter = false;
  int64_t sampler_sample_size = 2000;
  double sampler_reject_margin = 0.5;
  uint64_t sampler_seed = 7;
  int64_t partition_memory_budget_bytes = 0;
  /// Worker threads for the runner's own pool (process transport only;
  /// determinism does not depend on it).
  uint32_t num_threads = 1;
  /// Whether the runner's own encoders (result chunks) may compress.
  bool wire_compression = true;
  /// DependencyKindSet::bits() of the kinds this runner must validate;
  /// decoders reject an empty or unknown-bit mask. The runner refuses
  /// candidate batches naming kinds outside this set.
  uint32_t kinds = DependencyKindSet::OdDefault().bits();
  /// AFD g1 threshold; decoders reject values outside [0, 1].
  double afd_error = 0.05;
  /// Row-space sharding: the contiguous row range [row_begin, row_end)
  /// this runner partitions. Both 0 (the default) means the runner is a
  /// candidate-space shard and serves the full lattice conversation;
  /// row_end > row_begin selects the fragment conversation instead
  /// (slice in, kPartitionFragment frames out). Decoders reject a
  /// negative begin or an end before the begin.
  int64_t row_begin = 0;
  int64_t row_end = 0;
};

std::vector<uint8_t> EncodeConfigBlock(const WireRunnerConfig& config);
Result<WireRunnerConfig> DecodeConfigBlock(const DecodedFrame& frame);

/// Rank-encoded columns only — names, cardinalities and the int32 rank
/// arrays. Dictionaries (raw values) never cross the shard seam:
/// validators are pure integer work, so the decoded table carries empty
/// dictionaries. Decoding validates every rank against its declared
/// cardinality and every column length against num_rows. Each column
/// carries its own rank codec byte (see kRankCodec*).
std::vector<uint8_t> EncodeTableBlock(const EncodedTable& table,
                                      bool compress = true,
                                      CodecByteCounts* counts = nullptr);
/// Rejects row slices ("table block is a row slice"): the candidate-space
/// bootstrap and the serve path need the whole table, and a partial
/// slice silently treated as one would corrupt every downstream
/// partition. Row-shard consumers use DecodeTableSlice.
Result<EncodedTable> DecodeTableBlock(const DecodedFrame& frame,
                                      CodecByteCounts* counts = nullptr);

/// A decoded kTableBlock that may cover only [row_offset,
/// row_offset + table.num_rows()) of a total_rows-row table. The
/// columns' rank arrays hold just the slice, but cardinalities (and the
/// rank codec choice, a pure function of cardinality) are table-global,
/// which is what makes per-range partition fragments stitchable.
struct WireTableSlice {
  EncodedTable table;
  int64_t row_offset = 0;
  int64_t total_rows = 0;
};

/// Encodes rows [row_begin, row_end) of `table` as a kTableBlock slice.
/// EncodeTableBlock(t) == EncodeTableSlice(t, 0, t.num_rows()).
std::vector<uint8_t> EncodeTableSlice(const EncodedTable& table,
                                      int64_t row_begin, int64_t row_end,
                                      bool compress = true,
                                      CodecByteCounts* counts = nullptr);
/// Validates the slice framing (0 <= row_offset, row_offset + slice rows
/// <= total_rows) and every rank against its table-global cardinality
/// (itself bounded by total_rows, not the slice length).
Result<WireTableSlice> DecodeTableSlice(const DecodedFrame& frame,
                                        CodecByteCounts* counts = nullptr);

/// One PartitionFragment (partition/partition_stitch.h) as a checksummed
/// frame: attribute, row range, then a codec byte over the fragment body
/// — kCodecRaw (PartitionFragment::SerializeTo bytes) or
/// kCodecDeltaVarint (rank deltas, class sizes, first-row-delta + in-
/// class gaps; bails to raw past the raw size). A compressed body is
/// expanded back to the raw bytes before the shared
/// PartitionFragment::Deserialize validation gate.
std::vector<uint8_t> EncodePartitionFragment(const PartitionFragment& fragment,
                                             bool compress = true,
                                             CodecByteCounts* counts = nullptr);
/// `num_rows` is the full table's row count bounding the fragment range.
Result<PartitionFragment> DecodePartitionFragment(
    const DecodedFrame& frame, int64_t num_rows,
    CodecByteCounts* counts = nullptr);

/// An empty-payload kShutdown frame.
std::vector<uint8_t> EncodeShutdown();

/// Seals `frames` (complete sealed frames, none of them kBatch) into one
/// kBatch envelope.
std::vector<uint8_t> EncodeBatchEnvelope(
    const std::vector<std::vector<uint8_t>>& frames);
/// Splits a validated kBatch frame back into its inner frames (copies,
/// so the envelope buffer can die). Rejects empty envelopes, truncated
/// segments and nested kBatch; each inner frame still carries its own
/// header + checksum and is fully validated by the consumer's
/// DecodeFrame.
Result<std::vector<std::vector<uint8_t>>> UnpackBatchEnvelope(
    const DecodedFrame& frame);

/// The per-shard DiscoveryStats counters a runner reports in its
/// terminal frame. Doubles are timing (exempt from the determinism
/// contract); the integer counters are pure functions of the batches
/// the shard served.
struct ShardStatsFooter {
  uint32_t shard_id = 0;
  /// Echo of WireRunnerConfig::attempt_id — which supervised attempt
  /// produced these counters. The coordinator checks it against the
  /// attempt it is finishing so duplicate footers (a superseded attempt
  /// that still managed to answer its shutdown) are distinguishable.
  uint32_t attempt_id = 0;
  /// Logical frames the runner served (bases + batches + shutdown; an
  /// envelope counts as its inner frames) — a cheap conversation-length
  /// cross-check for the coordinator.
  int64_t frames_served = 0;
  int64_t products_computed = 0;
  int64_t partitions_evicted = 0;
  int64_t partition_bytes_evicted = 0;
  int64_t partition_bytes_final = 0;
  int64_t partition_bytes_peak = 0;
  /// Raw vs. on-wire bytes of every codec-bearing frame this shard
  /// decoded (partitions, candidate batches, and — for process runners
  /// — the table block). The coordinator folds these into the run's
  /// shard_bytes_raw so the compression ratio is observable per run.
  int64_t bytes_decoded_raw = 0;
  int64_t bytes_decoded_wire = 0;
  double partition_seconds = 0.0;
};

std::vector<uint8_t> EncodeStatsFooter(const ShardStatsFooter& footer);
Result<ShardStatsFooter> DecodeStatsFooter(const DecodedFrame& frame);

}  // namespace shard
}  // namespace aod

#endif  // AOD_SHARD_WIRE_H_
