#include "shard/wire.h"

#include <cstring>

#include "common/endian.h"

namespace aod {
namespace shard {

using endian::LoadU16;
using endian::LoadU32;
using endian::LoadU64;
using endian::StoreU16;
using endian::StoreU32;
using endian::StoreU64;

uint64_t WireChecksum(const uint8_t* data, size_t size) {
  uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

void WireWriter::PutU16(uint16_t v) { endian::AppendU16(&payload_, v); }

void WireWriter::PutU32(uint32_t v) { endian::AppendU32(&payload_, v); }

void WireWriter::PutU64(uint64_t v) { endian::AppendU64(&payload_, v); }

void WireWriter::PutDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutI32Array(const std::vector<int32_t>& values) {
  PutU64(values.size());
  for (int32_t v : values) PutI32(v);
}

void WireWriter::PutString(const std::string& s) {
  PutU64(s.size());
  PutBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

void WireWriter::PutBytes(const uint8_t* data, size_t size) {
  payload_.insert(payload_.end(), data, data + size);
}

std::vector<uint8_t> WireWriter::SealFrame(FrameType type) {
  std::vector<uint8_t> frame(kFrameHeaderBytes + payload_.size());
  StoreU32(frame.data(), kWireMagic);
  StoreU16(frame.data() + 4, kWireVersion);
  StoreU16(frame.data() + 6, static_cast<uint16_t>(type));
  StoreU64(frame.data() + 8, payload_.size());
  StoreU64(frame.data() + 16, WireChecksum(payload_.data(), payload_.size()));
  if (!payload_.empty()) {
    // memcpy's pointer arguments must be non-null even for size 0, and
    // an empty vector's data() may be null (the kShutdown frame).
    std::memcpy(frame.data() + kFrameHeaderBytes, payload_.data(),
                payload_.size());
  }
  payload_.clear();
  return frame;
}

Status WireReader::GetU8(uint8_t* v) {
  if (remaining() < 1) return Status::ParseError("wire payload truncated");
  *v = data_[pos_++];
  return Status::OK();
}

Status WireReader::GetU16(uint16_t* v) {
  if (remaining() < 2) return Status::ParseError("wire payload truncated");
  *v = LoadU16(data_ + pos_);
  pos_ += 2;
  return Status::OK();
}

Status WireReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return Status::ParseError("wire payload truncated");
  *v = LoadU32(data_ + pos_);
  pos_ += 4;
  return Status::OK();
}

Status WireReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return Status::ParseError("wire payload truncated");
  *v = LoadU64(data_ + pos_);
  pos_ += 8;
  return Status::OK();
}

Status WireReader::GetI32(int32_t* v) {
  uint32_t u = 0;
  AOD_RETURN_NOT_OK(GetU32(&u));
  *v = static_cast<int32_t>(u);
  return Status::OK();
}

Status WireReader::GetI64(int64_t* v) {
  uint64_t u = 0;
  AOD_RETURN_NOT_OK(GetU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status WireReader::GetDouble(double* v) {
  uint64_t bits = 0;
  AOD_RETURN_NOT_OK(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status WireReader::GetI32Array(std::vector<int32_t>* values) {
  uint64_t count = 0;
  AOD_RETURN_NOT_OK(GetU64(&count));
  if (count > remaining() / 4) {
    return Status::ParseError("wire array longer than its payload");
  }
  values->clear();
  values->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    int32_t v = 0;
    AOD_RETURN_NOT_OK(GetI32(&v));
    values->push_back(v);
  }
  return Status::OK();
}

Status WireReader::GetString(std::string* s) {
  uint64_t len = 0;
  AOD_RETURN_NOT_OK(GetU64(&len));
  if (len > remaining()) {
    return Status::ParseError("wire string longer than its payload");
  }
  s->assign(reinterpret_cast<const char*>(data_ + pos_),
            static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return Status::OK();
}

Status WireReader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::ParseError("wire payload has trailing bytes");
  }
  return Status::OK();
}

Result<DecodedFrame> DecodeFrame(const std::vector<uint8_t>& frame) {
  if (frame.size() < kFrameHeaderBytes) {
    return Status::ParseError("wire frame shorter than its header");
  }
  if (LoadU32(frame.data()) != kWireMagic) {
    return Status::ParseError("wire frame magic mismatch");
  }
  const uint16_t version = LoadU16(frame.data() + 4);
  if (version != kWireVersion) {
    return Status::ParseError("unsupported wire version " +
                              std::to_string(version));
  }
  const uint16_t raw_type = LoadU16(frame.data() + 6);
  if (raw_type < static_cast<uint16_t>(FrameType::kPartitionBlock) ||
      raw_type > static_cast<uint16_t>(FrameType::kStatsFooter)) {
    return Status::ParseError("unknown wire frame type " +
                              std::to_string(raw_type));
  }
  const uint64_t declared = LoadU64(frame.data() + 8);
  if (declared != frame.size() - kFrameHeaderBytes) {
    return Status::ParseError("wire frame size mismatch");
  }
  const uint64_t checksum = LoadU64(frame.data() + 16);
  const uint8_t* payload = frame.data() + kFrameHeaderBytes;
  if (checksum != WireChecksum(payload, static_cast<size_t>(declared))) {
    return Status::ParseError("wire frame checksum mismatch");
  }
  DecodedFrame out;
  out.type = static_cast<FrameType>(raw_type);
  out.payload = payload;
  out.size = static_cast<size_t>(declared);
  return out;
}

std::vector<uint8_t> EncodePartitionBlock(AttributeSet set,
                                          const StrippedPartition& partition) {
  WireWriter writer;
  writer.PutU64(set.bits());
  std::vector<uint8_t> csr = partition.Serialize();
  writer.PutBytes(csr.data(), csr.size());
  return writer.SealFrame(FrameType::kPartitionBlock);
}

Result<std::pair<AttributeSet, StrippedPartition>> DecodePartitionBlock(
    const DecodedFrame& frame, int64_t num_rows) {
  if (frame.type != FrameType::kPartitionBlock) {
    return Status::ParseError("frame is not a partition block");
  }
  WireReader reader(frame.payload, frame.size);
  uint64_t bits = 0;
  AOD_RETURN_NOT_OK(reader.GetU64(&bits));
  size_t consumed = 0;
  AOD_ASSIGN_OR_RETURN(
      StrippedPartition partition,
      StrippedPartition::Deserialize(reader.cursor(), reader.remaining(),
                                     num_rows, &consumed));
  reader.Skip(consumed);
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  return std::make_pair(AttributeSet(bits), std::move(partition));
}

std::vector<uint8_t> EncodeCandidateBatch(
    const std::vector<WireCandidate>& candidates) {
  WireWriter writer;
  writer.PutU64(candidates.size());
  for (const WireCandidate& c : candidates) {
    writer.PutU64(c.slot);
    writer.PutU64(c.context_bits);
    writer.PutU8(c.is_ofd ? 1 : 0);
    writer.PutI32(c.ofd_target);
    writer.PutI32(c.pair_a);
    writer.PutI32(c.pair_b);
    writer.PutU8(c.opposite ? 1 : 0);
  }
  return writer.SealFrame(FrameType::kCandidateBatch);
}

Result<std::vector<WireCandidate>> DecodeCandidateBatch(
    const DecodedFrame& frame) {
  if (frame.type != FrameType::kCandidateBatch) {
    return Status::ParseError("frame is not a candidate batch");
  }
  WireReader reader(frame.payload, frame.size);
  uint64_t count = 0;
  AOD_RETURN_NOT_OK(reader.GetU64(&count));
  // Per-candidate encoding is 30 bytes (2 u64 + 3 i32 + 2 u8); reject
  // counts the payload cannot hold before reserving.
  if (count > reader.remaining() / 30) {
    return Status::ParseError("candidate batch longer than its payload");
  }
  std::vector<WireCandidate> out;
  out.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    WireCandidate c;
    uint8_t is_ofd = 0;
    uint8_t opposite = 0;
    AOD_RETURN_NOT_OK(reader.GetU64(&c.slot));
    AOD_RETURN_NOT_OK(reader.GetU64(&c.context_bits));
    AOD_RETURN_NOT_OK(reader.GetU8(&is_ofd));
    AOD_RETURN_NOT_OK(reader.GetI32(&c.ofd_target));
    AOD_RETURN_NOT_OK(reader.GetI32(&c.pair_a));
    AOD_RETURN_NOT_OK(reader.GetI32(&c.pair_b));
    AOD_RETURN_NOT_OK(reader.GetU8(&opposite));
    c.is_ofd = is_ofd != 0;
    c.opposite = opposite != 0;
    out.push_back(c);
  }
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  return out;
}

std::vector<uint8_t> EncodeResultBatch(
    const std::vector<WireOutcome>& outcomes) {
  WireWriter writer;
  writer.PutU64(outcomes.size());
  for (const WireOutcome& o : outcomes) {
    writer.PutU64(o.slot);
    writer.PutU8(o.valid ? 1 : 0);
    writer.PutU8(o.early_exit ? 1 : 0);
    writer.PutI64(o.removal_size);
    writer.PutDouble(o.approx_factor);
    writer.PutDouble(o.interestingness);
    writer.PutDouble(o.seconds);
    writer.PutI32Array(o.removal_rows);
  }
  return writer.SealFrame(FrameType::kResultBatch);
}

Result<std::vector<WireOutcome>> DecodeResultBatch(const DecodedFrame& frame) {
  if (frame.type != FrameType::kResultBatch) {
    return Status::ParseError("frame is not a result batch");
  }
  WireReader reader(frame.payload, frame.size);
  uint64_t count = 0;
  AOD_RETURN_NOT_OK(reader.GetU64(&count));
  // 50 bytes per outcome before its (possibly empty) removal-row array.
  if (count > reader.remaining() / 50) {
    return Status::ParseError("result batch longer than its payload");
  }
  std::vector<WireOutcome> out;
  out.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    WireOutcome o;
    uint8_t valid = 0;
    uint8_t early_exit = 0;
    AOD_RETURN_NOT_OK(reader.GetU64(&o.slot));
    AOD_RETURN_NOT_OK(reader.GetU8(&valid));
    AOD_RETURN_NOT_OK(reader.GetU8(&early_exit));
    AOD_RETURN_NOT_OK(reader.GetI64(&o.removal_size));
    AOD_RETURN_NOT_OK(reader.GetDouble(&o.approx_factor));
    AOD_RETURN_NOT_OK(reader.GetDouble(&o.interestingness));
    AOD_RETURN_NOT_OK(reader.GetDouble(&o.seconds));
    AOD_RETURN_NOT_OK(reader.GetI32Array(&o.removal_rows));
    o.valid = valid != 0;
    o.early_exit = early_exit != 0;
    out.push_back(std::move(o));
  }
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  return out;
}

std::vector<uint8_t> EncodeConfigBlock(const WireRunnerConfig& config) {
  WireWriter writer;
  writer.PutU32(config.shard_id);
  writer.PutU8(config.validator);
  writer.PutDouble(config.epsilon);
  writer.PutU8(config.collect_removal_sets ? 1 : 0);
  writer.PutU8(config.enable_sampling_filter ? 1 : 0);
  writer.PutI64(config.sampler_sample_size);
  writer.PutDouble(config.sampler_reject_margin);
  writer.PutU64(config.sampler_seed);
  writer.PutI64(config.partition_memory_budget_bytes);
  writer.PutU32(config.num_threads);
  return writer.SealFrame(FrameType::kConfigBlock);
}

Result<WireRunnerConfig> DecodeConfigBlock(const DecodedFrame& frame) {
  if (frame.type != FrameType::kConfigBlock) {
    return Status::ParseError("frame is not a config block");
  }
  WireReader reader(frame.payload, frame.size);
  WireRunnerConfig config;
  uint8_t removal = 0;
  uint8_t sampling = 0;
  AOD_RETURN_NOT_OK(reader.GetU32(&config.shard_id));
  AOD_RETURN_NOT_OK(reader.GetU8(&config.validator));
  AOD_RETURN_NOT_OK(reader.GetDouble(&config.epsilon));
  AOD_RETURN_NOT_OK(reader.GetU8(&removal));
  AOD_RETURN_NOT_OK(reader.GetU8(&sampling));
  AOD_RETURN_NOT_OK(reader.GetI64(&config.sampler_sample_size));
  AOD_RETURN_NOT_OK(reader.GetDouble(&config.sampler_reject_margin));
  AOD_RETURN_NOT_OK(reader.GetU64(&config.sampler_seed));
  AOD_RETURN_NOT_OK(reader.GetI64(&config.partition_memory_budget_bytes));
  AOD_RETURN_NOT_OK(reader.GetU32(&config.num_threads));
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  config.collect_removal_sets = removal != 0;
  config.enable_sampling_filter = sampling != 0;
  if (config.validator > 2) {
    return Status::ParseError("unknown validator kind " +
                              std::to_string(config.validator));
  }
  if (!(config.epsilon >= 0.0 && config.epsilon <= 1.0)) {
    return Status::ParseError("config epsilon outside [0, 1]");
  }
  return config;
}

std::vector<uint8_t> EncodeTableBlock(const EncodedTable& table) {
  WireWriter writer;
  writer.PutI64(table.num_rows());
  writer.PutU32(static_cast<uint32_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    const EncodedColumn& col = table.column(c);
    writer.PutString(col.name);
    writer.PutI32(col.cardinality);
    writer.PutI32Array(col.ranks);
  }
  return writer.SealFrame(FrameType::kTableBlock);
}

Result<EncodedTable> DecodeTableBlock(const DecodedFrame& frame) {
  if (frame.type != FrameType::kTableBlock) {
    return Status::ParseError("frame is not a table block");
  }
  WireReader reader(frame.payload, frame.size);
  int64_t num_rows = 0;
  uint32_t num_columns = 0;
  AOD_RETURN_NOT_OK(reader.GetI64(&num_rows));
  AOD_RETURN_NOT_OK(reader.GetU32(&num_columns));
  if (num_rows < 0) return Status::ParseError("negative table row count");
  if (num_columns > static_cast<uint32_t>(AttributeSet::kMaxAttributes)) {
    return Status::ParseError("table block exceeds the attribute limit");
  }
  std::vector<EncodedColumn> columns;
  columns.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    EncodedColumn col;
    AOD_RETURN_NOT_OK(reader.GetString(&col.name));
    AOD_RETURN_NOT_OK(reader.GetI32(&col.cardinality));
    AOD_RETURN_NOT_OK(reader.GetI32Array(&col.ranks));
    if (static_cast<int64_t>(col.ranks.size()) != num_rows) {
      return Status::ParseError("column length disagrees with row count");
    }
    if (col.cardinality < 0 ||
        static_cast<int64_t>(col.cardinality) > num_rows) {
      return Status::ParseError("column cardinality out of range");
    }
    for (int32_t rank : col.ranks) {
      if (rank < 0 || rank >= col.cardinality) {
        return Status::ParseError("rank outside its declared cardinality");
      }
    }
    columns.push_back(std::move(col));
  }
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  return EncodedTable(std::move(columns), num_rows);
}

std::vector<uint8_t> EncodeShutdown() {
  WireWriter writer;
  return writer.SealFrame(FrameType::kShutdown);
}

std::vector<uint8_t> EncodeStatsFooter(const ShardStatsFooter& footer) {
  WireWriter writer;
  writer.PutU32(footer.shard_id);
  writer.PutI64(footer.frames_served);
  writer.PutI64(footer.products_computed);
  writer.PutI64(footer.partitions_evicted);
  writer.PutI64(footer.partition_bytes_evicted);
  writer.PutI64(footer.partition_bytes_final);
  writer.PutI64(footer.partition_bytes_peak);
  writer.PutDouble(footer.partition_seconds);
  return writer.SealFrame(FrameType::kStatsFooter);
}

Result<ShardStatsFooter> DecodeStatsFooter(const DecodedFrame& frame) {
  if (frame.type != FrameType::kStatsFooter) {
    return Status::ParseError("frame is not a stats footer");
  }
  WireReader reader(frame.payload, frame.size);
  ShardStatsFooter footer;
  AOD_RETURN_NOT_OK(reader.GetU32(&footer.shard_id));
  AOD_RETURN_NOT_OK(reader.GetI64(&footer.frames_served));
  AOD_RETURN_NOT_OK(reader.GetI64(&footer.products_computed));
  AOD_RETURN_NOT_OK(reader.GetI64(&footer.partitions_evicted));
  AOD_RETURN_NOT_OK(reader.GetI64(&footer.partition_bytes_evicted));
  AOD_RETURN_NOT_OK(reader.GetI64(&footer.partition_bytes_final));
  AOD_RETURN_NOT_OK(reader.GetI64(&footer.partition_bytes_peak));
  AOD_RETURN_NOT_OK(reader.GetDouble(&footer.partition_seconds));
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  if (footer.frames_served < 0 || footer.products_computed < 0 ||
      footer.partitions_evicted < 0 || footer.partition_bytes_evicted < 0 ||
      footer.partition_bytes_final < 0 || footer.partition_bytes_peak < 0) {
    return Status::ParseError("negative counter in stats footer");
  }
  return footer;
}

}  // namespace shard
}  // namespace aod
