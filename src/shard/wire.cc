#include "shard/wire.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/endian.h"
#include "common/macros.h"

namespace aod {
namespace shard {

using endian::LoadU16;
using endian::LoadU32;
using endian::LoadU64;
using endian::StoreU16;
using endian::StoreU32;
using endian::StoreU64;

uint64_t WireChecksum(const uint8_t* data, size_t size) {
  uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

void WireWriter::PutU16(uint16_t v) { endian::AppendU16(&payload_, v); }

void WireWriter::PutU32(uint32_t v) { endian::AppendU32(&payload_, v); }

void WireWriter::PutU64(uint64_t v) { endian::AppendU64(&payload_, v); }

void WireWriter::PutDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    payload_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  payload_.push_back(static_cast<uint8_t>(v));
}

void WireWriter::PutVarintI64(int64_t v) {
  PutVarint((static_cast<uint64_t>(v) << 1) ^
            static_cast<uint64_t>(v >> 63));
}

void WireWriter::PutI32Array(const std::vector<int32_t>& values) {
  PutU64(values.size());
  for (int32_t v : values) PutI32(v);
}

void WireWriter::PutString(const std::string& s) {
  PutU64(s.size());
  PutBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

void WireWriter::PutBytes(const uint8_t* data, size_t size) {
  payload_.insert(payload_.end(), data, data + size);
}

std::vector<uint8_t> WireWriter::SealFrame(FrameType type) {
  std::vector<uint8_t> frame(kFrameHeaderBytes + payload_.size());
  StoreU32(frame.data(), kWireMagic);
  StoreU16(frame.data() + 4, kWireVersion);
  StoreU16(frame.data() + 6, static_cast<uint16_t>(type));
  StoreU64(frame.data() + 8, payload_.size());
  StoreU64(frame.data() + 16, WireChecksum(payload_.data(), payload_.size()));
  if (!payload_.empty()) {
    // memcpy's pointer arguments must be non-null even for size 0, and
    // an empty vector's data() may be null (the kShutdown frame).
    std::memcpy(frame.data() + kFrameHeaderBytes, payload_.data(),
                payload_.size());
  }
  payload_.clear();
  return frame;
}

Status WireReader::GetU8(uint8_t* v) {
  if (remaining() < 1) return Status::ParseError("wire payload truncated");
  *v = data_[pos_++];
  return Status::OK();
}

Status WireReader::GetU16(uint16_t* v) {
  if (remaining() < 2) return Status::ParseError("wire payload truncated");
  *v = LoadU16(data_ + pos_);
  pos_ += 2;
  return Status::OK();
}

Status WireReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return Status::ParseError("wire payload truncated");
  *v = LoadU32(data_ + pos_);
  pos_ += 4;
  return Status::OK();
}

Status WireReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return Status::ParseError("wire payload truncated");
  *v = LoadU64(data_ + pos_);
  pos_ += 8;
  return Status::OK();
}

Status WireReader::GetI32(int32_t* v) {
  uint32_t u = 0;
  AOD_RETURN_NOT_OK(GetU32(&u));
  *v = static_cast<int32_t>(u);
  return Status::OK();
}

Status WireReader::GetI64(int64_t* v) {
  uint64_t u = 0;
  AOD_RETURN_NOT_OK(GetU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status WireReader::GetDouble(double* v) {
  uint64_t bits = 0;
  AOD_RETURN_NOT_OK(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status WireReader::GetVarint(uint64_t* v) {
  uint64_t out = 0;
  for (int i = 0; i < 10; ++i) {
    if (remaining() < 1) return Status::ParseError("wire varint truncated");
    const uint8_t b = data_[pos_++];
    // The 10th byte holds bits 63..69 of which only bit 63 exists.
    if (i == 9 && b > 1) {
      return Status::ParseError("wire varint overflows 64 bits");
    }
    out |= static_cast<uint64_t>(b & 0x7f) << (7 * i);
    if ((b & 0x80) == 0) {
      *v = out;
      return Status::OK();
    }
  }
  return Status::ParseError("wire varint longer than 10 bytes");
}

Status WireReader::GetVarintI64(int64_t* v) {
  uint64_t u = 0;
  AOD_RETURN_NOT_OK(GetVarint(&u));
  *v = static_cast<int64_t>(u >> 1) ^ -static_cast<int64_t>(u & 1);
  return Status::OK();
}

Status WireReader::GetI32Array(std::vector<int32_t>* values) {
  uint64_t count = 0;
  AOD_RETURN_NOT_OK(GetU64(&count));
  if (count > remaining() / 4) {
    return Status::ParseError("wire array longer than its payload");
  }
  values->clear();
  values->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    int32_t v = 0;
    AOD_RETURN_NOT_OK(GetI32(&v));
    values->push_back(v);
  }
  return Status::OK();
}

Status WireReader::GetString(std::string* s) {
  uint64_t len = 0;
  AOD_RETURN_NOT_OK(GetU64(&len));
  if (len > remaining()) {
    return Status::ParseError("wire string longer than its payload");
  }
  s->assign(reinterpret_cast<const char*>(data_ + pos_),
            static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return Status::OK();
}

Status WireReader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::ParseError("wire payload has trailing bytes");
  }
  return Status::OK();
}

Result<DecodedFrame> DecodeFrame(const uint8_t* data, size_t size) {
  if (size < kFrameHeaderBytes) {
    return Status::ParseError("wire frame shorter than its header");
  }
  if (LoadU32(data) != kWireMagic) {
    return Status::ParseError("wire frame magic mismatch");
  }
  const uint16_t version = LoadU16(data + 4);
  if (version != kWireVersion) {
    return Status::ParseError("unsupported wire version " +
                              std::to_string(version));
  }
  const uint16_t raw_type = LoadU16(data + 6);
  if (raw_type < static_cast<uint16_t>(FrameType::kPartitionBlock) ||
      raw_type > static_cast<uint16_t>(FrameType::kPartitionFragment)) {
    return Status::ParseError("unknown wire frame type " +
                              std::to_string(raw_type));
  }
  const uint64_t declared = LoadU64(data + 8);
  if (declared != size - kFrameHeaderBytes) {
    return Status::ParseError("wire frame size mismatch");
  }
  const uint64_t checksum = LoadU64(data + 16);
  const uint8_t* payload = data + kFrameHeaderBytes;
  if (checksum != WireChecksum(payload, static_cast<size_t>(declared))) {
    return Status::ParseError("wire frame checksum mismatch");
  }
  DecodedFrame out;
  out.type = static_cast<FrameType>(raw_type);
  out.payload = payload;
  out.size = static_cast<size_t>(declared);
  return out;
}

Result<DecodedFrame> DecodeFrame(const std::vector<uint8_t>& frame) {
  return DecodeFrame(frame.data(), frame.size());
}

namespace {

/// Appends the delta-varint body of a canonical partition: class sizes
/// (offset deltas, each >= 2), then per class the first row id (class 0
/// absolute, later classes as the delta from the previous class's first
/// row — canonical order makes those strictly positive) followed by the
/// in-class ascending deltas. Returns false — the cost threshold — as
/// soon as the body reaches `budget` (the raw CSR size): incompressible
/// payloads fall back to raw without ever finishing the attempt.
bool TryCompressPartitionBody(const StrippedPartition& p, size_t budget,
                              WireWriter* body) {
  const std::vector<int32_t>& offsets = p.class_offsets();
  const std::vector<int32_t>& rows = p.row_ids();
  const int64_t num_classes = p.num_classes();
  body->PutVarint(static_cast<uint64_t>(num_classes));
  body->PutVarint(rows.size());
  for (int64_t c = 0; c < num_classes; ++c) {
    body->PutVarint(static_cast<uint64_t>(
        offsets[static_cast<size_t>(c) + 1] - offsets[static_cast<size_t>(c)]));
    if (body->payload().size() >= budget) return false;
  }
  int32_t prev_first = 0;
  for (int64_t c = 0; c < num_classes; ++c) {
    const size_t lo = static_cast<size_t>(offsets[static_cast<size_t>(c)]);
    const size_t hi = static_cast<size_t>(offsets[static_cast<size_t>(c) + 1]);
    body->PutVarint(static_cast<uint64_t>(
        rows[lo] - (c == 0 ? 0 : prev_first)));
    for (size_t i = lo + 1; i < hi; ++i) {
      body->PutVarint(static_cast<uint64_t>(rows[i] - rows[i - 1]));
    }
    prev_first = rows[lo];
    if (body->payload().size() >= budget) return false;
  }
  return true;
}

/// Expands a delta-varint partition body back into the exact raw CSR
/// bytes SerializeTo would emit, bounds- and overflow-checked, so the
/// caller can delegate all structural validation to
/// StrippedPartition::Deserialize — compressed and raw frames pass
/// through one gate.
Status ExpandCompressedCsr(WireReader* reader, int64_t num_rows,
                           std::vector<uint8_t>* csr) {
  uint64_t classes = 0;
  uint64_t rows = 0;
  AOD_RETURN_NOT_OK(reader->GetVarint(&classes));
  AOD_RETURN_NOT_OK(reader->GetVarint(&rows));
  // The same pre-allocation sanity Deserialize applies, so a hostile
  // header cannot make this function allocate unbounded memory.
  if (num_rows < 0 || rows > static_cast<uint64_t>(num_rows)) {
    return Status::ParseError("partition claims more covered rows than the "
                              "table holds");
  }
  if (classes > rows / 2) {
    return Status::ParseError("partition claims more classes than 2-row "
                              "classes fit in its rows");
  }
  csr->clear();
  csr->reserve(16 + (classes > 0 ? (static_cast<size_t>(classes) + 1) * 4 : 0) +
               static_cast<size_t>(rows) * 4);
  endian::AppendU64(csr, classes);
  endian::AppendU64(csr, rows);
  std::vector<int64_t> sizes;
  sizes.reserve(static_cast<size_t>(classes));
  if (classes > 0) {
    endian::AppendI32(csr, 0);
    int64_t offset = 0;
    for (uint64_t c = 0; c < classes; ++c) {
      uint64_t size = 0;
      AOD_RETURN_NOT_OK(reader->GetVarint(&size));
      offset += static_cast<int64_t>(size);
      if (size > rows || offset > static_cast<int64_t>(rows)) {
        return Status::ParseError("partition offsets do not cover its rows");
      }
      sizes.push_back(static_cast<int64_t>(size));
      endian::AppendI32(csr, static_cast<int32_t>(offset));
    }
  }
  int64_t prev_first = 0;
  for (uint64_t c = 0; c < classes; ++c) {
    int64_t row = 0;
    for (int64_t i = 0; i < sizes[static_cast<size_t>(c)]; ++i) {
      uint64_t delta = 0;
      AOD_RETURN_NOT_OK(reader->GetVarint(&delta));
      if (delta > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
        return Status::ParseError("partition row delta out of range");
      }
      row = (i == 0 ? (c == 0 ? 0 : prev_first) : row) +
            static_cast<int64_t>(delta);
      if (row > std::numeric_limits<int32_t>::max()) {
        return Status::ParseError("partition row id out of range");
      }
      endian::AppendI32(csr, static_cast<int32_t>(row));
      if (i == 0) prev_first = row;
    }
  }
  return Status::OK();
}

/// How many bits a class label needs: 0 when every label is 0 (a single
/// class), else the width of the largest label.
int LabelBits(int64_t num_classes) {
  int bits = 0;
  uint64_t max_label = num_classes > 0
                           ? static_cast<uint64_t>(num_classes) - 1
                           : 0;
  while (max_label != 0) {
    ++bits;
    max_label >>= 1;
  }
  return bits;
}

/// Appends the class-label body: varint num_classes / covered rows /
/// bitmap bits, the coverage bitmap over [0, max_row], then per covered
/// row (ascending) its class index at LabelBits() bits, LSB first.
/// Canonical order (classes sorted by first row, ascending in-class
/// rows) makes the inverse exact. Bails out at `budget` like the delta
/// encoder.
bool TryCompressPartitionLabels(const StrippedPartition& p, size_t budget,
                                WireWriter* body) {
  const std::vector<int32_t>& offsets = p.class_offsets();
  const std::vector<int32_t>& rows = p.row_ids();
  const int64_t num_classes = p.num_classes();
  body->PutVarint(static_cast<uint64_t>(num_classes));
  body->PutVarint(rows.size());
  if (rows.empty()) {
    body->PutVarint(0);
    return body->payload().size() < budget;
  }
  // Canonical in-class rows ascend, so the global max row is the max of
  // the per-class last elements.
  int32_t max_row = 0;
  for (int64_t c = 0; c < num_classes; ++c) {
    max_row = std::max(
        max_row, rows[static_cast<size_t>(offsets[static_cast<size_t>(c) + 1]) - 1]);
  }
  const uint64_t bitmap_bits = static_cast<uint64_t>(max_row) + 1;
  body->PutVarint(bitmap_bits);
  const int label_bits = LabelBits(num_classes);
  const size_t bitmap_bytes = static_cast<size_t>((bitmap_bits + 7) / 8);
  const size_t label_bytes =
      (rows.size() * static_cast<size_t>(label_bits) + 7) / 8;
  if (body->payload().size() + bitmap_bytes + label_bytes >= budget) {
    return false;  // cost threshold: never ship a body >= the raw CSR
  }
  // Row -> class label, then one ascending sweep fills both bit streams.
  std::vector<int32_t> label_of_row(static_cast<size_t>(bitmap_bits), -1);
  for (int64_t c = 0; c < num_classes; ++c) {
    for (int32_t i = offsets[static_cast<size_t>(c)];
         i < offsets[static_cast<size_t>(c) + 1]; ++i) {
      label_of_row[static_cast<size_t>(rows[static_cast<size_t>(i)])] =
          static_cast<int32_t>(c);
    }
  }
  std::vector<uint8_t> bitmap(bitmap_bytes, 0);
  std::vector<uint8_t> labels(label_bytes, 0);
  size_t label_pos = 0;  // bit cursor into `labels`
  for (uint64_t r = 0; r < bitmap_bits; ++r) {
    const int32_t label = label_of_row[static_cast<size_t>(r)];
    if (label < 0) continue;
    bitmap[static_cast<size_t>(r / 8)] |=
        static_cast<uint8_t>(1u << (r % 8));
    for (int b = 0; b < label_bits; ++b, ++label_pos) {
      if ((static_cast<uint32_t>(label) >> b) & 1u) {
        labels[label_pos / 8] |= static_cast<uint8_t>(1u << (label_pos % 8));
      }
    }
  }
  body->PutBytes(bitmap.data(), bitmap.size());
  body->PutBytes(labels.data(), labels.size());
  return body->payload().size() < budget;
}

/// Expands a class-label body back into the exact raw CSR bytes, with
/// the same single validation gate as the delta codec: sizes come from
/// a counting pass over the labels, the placing pass groups rows by
/// class, and StrippedPartition::Deserialize then enforces canonical
/// form on the result.
Status ExpandLabelCsr(WireReader* reader, int64_t num_rows,
                      std::vector<uint8_t>* csr) {
  uint64_t classes = 0;
  uint64_t rows = 0;
  uint64_t bitmap_bits = 0;
  AOD_RETURN_NOT_OK(reader->GetVarint(&classes));
  AOD_RETURN_NOT_OK(reader->GetVarint(&rows));
  AOD_RETURN_NOT_OK(reader->GetVarint(&bitmap_bits));
  if (num_rows < 0 || rows > static_cast<uint64_t>(num_rows) ||
      bitmap_bits > static_cast<uint64_t>(num_rows)) {
    return Status::ParseError("partition claims more covered rows than the "
                              "table holds");
  }
  if (classes > rows / 2) {
    return Status::ParseError("partition claims more classes than 2-row "
                              "classes fit in its rows");
  }
  if (rows > 0 && bitmap_bits == 0) {
    return Status::ParseError("partition covers rows but declares an empty "
                              "bitmap");
  }
  const size_t bitmap_bytes = static_cast<size_t>((bitmap_bits + 7) / 8);
  const int label_bits = LabelBits(static_cast<int64_t>(classes));
  const size_t label_bytes =
      (static_cast<size_t>(rows) * static_cast<size_t>(label_bits) + 7) / 8;
  if (reader->remaining() != bitmap_bytes + label_bytes) {
    return Status::ParseError("partition label body size mismatch");
  }
  const uint8_t* bitmap = reader->cursor();
  const uint8_t* labels = bitmap + bitmap_bytes;
  // Padding bits past bitmap_bits (and past the last label) must be
  // zero: one partition, one byte string.
  if (bitmap_bits % 8 != 0 && bitmap_bytes > 0 &&
      (bitmap[bitmap_bytes - 1] >> (bitmap_bits % 8)) != 0) {
    return Status::ParseError("partition bitmap has nonzero padding");
  }
  const size_t label_total_bits =
      static_cast<size_t>(rows) * static_cast<size_t>(label_bits);
  if (label_total_bits % 8 != 0 && label_bytes > 0 &&
      (labels[label_bytes - 1] >> (label_total_bits % 8)) != 0) {
    return Status::ParseError("partition labels have nonzero padding");
  }
  uint64_t covered = 0;
  for (size_t i = 0; i < bitmap_bytes; ++i) {
    covered += static_cast<uint64_t>(__builtin_popcount(bitmap[i]));
  }
  if (covered != rows) {
    return Status::ParseError("partition bitmap popcount does not match its "
                              "covered rows");
  }
  auto label_at = [labels, label_bits](uint64_t index) {
    uint64_t label = 0;
    uint64_t bit = index * static_cast<uint64_t>(label_bits);
    for (int b = 0; b < label_bits; ++b, ++bit) {
      label |= static_cast<uint64_t>((labels[bit / 8] >> (bit % 8)) & 1u)
               << b;
    }
    return label;
  };
  // Counting pass -> offsets; any label >= classes is typed here.
  std::vector<int64_t> sizes(static_cast<size_t>(classes), 0);
  for (uint64_t i = 0; i < rows; ++i) {
    const uint64_t label = label_at(i);
    if (label >= classes) {
      return Status::ParseError("partition label outside its class count");
    }
    ++sizes[static_cast<size_t>(label)];
  }
  csr->clear();
  csr->reserve(16 + (classes > 0 ? (static_cast<size_t>(classes) + 1) * 4 : 0) +
               static_cast<size_t>(rows) * 4);
  endian::AppendU64(csr, classes);
  endian::AppendU64(csr, rows);
  std::vector<int64_t> cursor(static_cast<size_t>(classes), 0);
  if (classes > 0) {
    endian::AppendI32(csr, 0);
    int64_t offset = 0;
    for (uint64_t c = 0; c < classes; ++c) {
      cursor[static_cast<size_t>(c)] = offset;
      offset += sizes[static_cast<size_t>(c)];
      endian::AppendI32(csr, static_cast<int32_t>(offset));
    }
  }
  // Placing pass: ascending bitmap sweep keeps in-class rows ascending.
  std::vector<int32_t> row_ids(static_cast<size_t>(rows), 0);
  uint64_t index = 0;
  for (uint64_t r = 0; r < bitmap_bits; ++r) {
    if (((bitmap[static_cast<size_t>(r / 8)] >> (r % 8)) & 1u) == 0) {
      continue;
    }
    const uint64_t label = label_at(index++);
    row_ids[static_cast<size_t>(cursor[static_cast<size_t>(label)]++)] =
        static_cast<int32_t>(r);
  }
  for (uint64_t i = 0; i < rows; ++i) {
    endian::AppendI32(csr, row_ids[static_cast<size_t>(i)]);
  }
  reader->Skip(bitmap_bytes + label_bytes);
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodePartitionBlock(AttributeSet set,
                                          const StrippedPartition& partition,
                                          bool compress,
                                          CodecByteCounts* counts) {
  const std::vector<uint8_t> csr = partition.Serialize();
  WireWriter writer;
  writer.PutU64(set.bits());
  WireWriter delta_body;
  WireWriter label_body;
  const bool delta_ok =
      compress && TryCompressPartitionBody(partition, csr.size(), &delta_body);
  // The label attempt is additionally bounded by the delta body: it only
  // matters if it beats both raw and delta.
  const bool label_ok =
      compress &&
      TryCompressPartitionLabels(
          partition,
          delta_ok ? std::min(csr.size(), delta_body.payload().size())
                   : csr.size(),
          &label_body);
  if (label_ok) {
    writer.PutU8(kCodecClassLabel);
    writer.PutBytes(label_body.payload().data(), label_body.payload().size());
  } else if (delta_ok) {
    writer.PutU8(kCodecDeltaVarint);
    writer.PutBytes(delta_body.payload().data(), delta_body.payload().size());
  } else {
    writer.PutU8(kCodecRaw);
    writer.PutBytes(csr.data(), csr.size());
  }
  std::vector<uint8_t> frame = writer.SealFrame(FrameType::kPartitionBlock);
  if (counts != nullptr) {
    counts->raw +=
        static_cast<int64_t>(kFrameHeaderBytes + 8 + 1 + csr.size());
    counts->wire += static_cast<int64_t>(frame.size());
  }
  return frame;
}

Result<std::pair<AttributeSet, StrippedPartition>> DecodePartitionBlock(
    const DecodedFrame& frame, int64_t num_rows, CodecByteCounts* counts) {
  if (frame.type != FrameType::kPartitionBlock) {
    return Status::ParseError("frame is not a partition block");
  }
  WireReader reader(frame.payload, frame.size);
  uint64_t bits = 0;
  AOD_RETURN_NOT_OK(reader.GetU64(&bits));
  uint8_t codec = 0;
  AOD_RETURN_NOT_OK(reader.GetU8(&codec));
  StrippedPartition partition;
  size_t raw_csr_bytes = 0;
  if (codec == kCodecRaw) {
    size_t consumed = 0;
    AOD_ASSIGN_OR_RETURN(
        partition,
        StrippedPartition::Deserialize(reader.cursor(), reader.remaining(),
                                       num_rows, &consumed));
    reader.Skip(consumed);
    raw_csr_bytes = consumed;
  } else if (codec == kCodecDeltaVarint || codec == kCodecClassLabel) {
    std::vector<uint8_t> csr;
    if (codec == kCodecDeltaVarint) {
      AOD_RETURN_NOT_OK(ExpandCompressedCsr(&reader, num_rows, &csr));
    } else {
      AOD_RETURN_NOT_OK(ExpandLabelCsr(&reader, num_rows, &csr));
    }
    size_t consumed = 0;
    AOD_ASSIGN_OR_RETURN(
        partition,
        StrippedPartition::Deserialize(csr.data(), csr.size(), num_rows,
                                       &consumed));
    if (consumed != csr.size()) {
      return Status::ParseError("partition body has trailing bytes");
    }
    raw_csr_bytes = csr.size();
  } else {
    return Status::ParseError("unknown partition codec " +
                              std::to_string(codec));
  }
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  if (counts != nullptr) {
    counts->raw +=
        static_cast<int64_t>(kFrameHeaderBytes + 8 + 1 + raw_csr_bytes);
    counts->wire += static_cast<int64_t>(kFrameHeaderBytes + frame.size);
  }
  return std::make_pair(AttributeSet(bits), std::move(partition));
}

namespace {

/// Fixed-width candidate body: u64 count + 30 bytes each (version 4
/// replaced the version-1 is_ofd byte with the DependencyKind id at the
/// same offset, keeping the record width).
void AppendRawCandidates(const std::vector<WireCandidate>& candidates,
                         WireWriter* writer) {
  writer->PutU64(candidates.size());
  for (const WireCandidate& c : candidates) {
    writer->PutU64(c.slot);
    writer->PutU64(c.context_bits);
    writer->PutU8(static_cast<uint8_t>(c.kind));
    writer->PutI32(c.target);
    writer->PutI32(c.pair_a);
    writer->PutI32(c.pair_b);
    writer->PutU8(c.opposite ? 1 : 0);
  }
}

bool TryCompressCandidates(const std::vector<WireCandidate>& candidates,
                           size_t budget, WireWriter* body) {
  body->PutVarint(candidates.size());
  int64_t prev_slot = 0;
  for (const WireCandidate& c : candidates) {
    body->PutVarintI64(static_cast<int64_t>(c.slot) - prev_slot);
    prev_slot = static_cast<int64_t>(c.slot);
    body->PutVarint(c.context_bits);
    // Two kind bits + the polarity bit; anything above bit 2 is unknown.
    body->PutU8(static_cast<uint8_t>(static_cast<uint8_t>(c.kind) |
                                     (c.opposite ? 4 : 0)));
    body->PutVarintI64(c.target);
    body->PutVarintI64(c.pair_a);
    body->PutVarintI64(c.pair_b);
    if (body->payload().size() >= budget) return false;
  }
  return true;
}

Status CheckedI32(int64_t v, int32_t* out) {
  if (v < std::numeric_limits<int32_t>::min() ||
      v > std::numeric_limits<int32_t>::max()) {
    return Status::ParseError("wire value outside int32 range");
  }
  *out = static_cast<int32_t>(v);
  return Status::OK();
}

Status CheckedKind(uint8_t v, DependencyKind* out) {
  if (v >= kNumDependencyKinds) {
    return Status::ParseError("unknown dependency kind id " +
                              std::to_string(static_cast<int>(v)));
  }
  *out = static_cast<DependencyKind>(v);
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeCandidateBatch(
    const std::vector<WireCandidate>& candidates, bool compress,
    CodecByteCounts* counts) {
  const size_t raw_body = 8 + 30 * candidates.size();
  WireWriter body;
  const bool compressed =
      compress && !candidates.empty() &&
      TryCompressCandidates(candidates, raw_body, &body);
  WireWriter writer;
  if (compressed) {
    writer.PutU8(kCandidateFlagCompressed);
    writer.PutBytes(body.payload().data(), body.payload().size());
  } else {
    writer.PutU8(0);
    AppendRawCandidates(candidates, &writer);
  }
  std::vector<uint8_t> frame = writer.SealFrame(FrameType::kCandidateBatch);
  if (counts != nullptr) {
    counts->raw += static_cast<int64_t>(kFrameHeaderBytes + 1 + raw_body);
    counts->wire += static_cast<int64_t>(frame.size());
  }
  return frame;
}

Result<std::vector<WireCandidate>> DecodeCandidateBatch(
    const DecodedFrame& frame, CodecByteCounts* counts) {
  if (frame.type != FrameType::kCandidateBatch) {
    return Status::ParseError("frame is not a candidate batch");
  }
  WireReader reader(frame.payload, frame.size);
  uint8_t flags = 0;
  AOD_RETURN_NOT_OK(reader.GetU8(&flags));
  if ((flags & ~kCandidateFlagCompressed) != 0) {
    return Status::ParseError("unknown candidate batch flags");
  }
  std::vector<WireCandidate> out;
  if ((flags & kCandidateFlagCompressed) != 0) {
    uint64_t count = 0;
    AOD_RETURN_NOT_OK(reader.GetVarint(&count));
    // Minimum compressed candidate is 6 bytes; reject counts the payload
    // cannot hold before reserving.
    if (count > reader.remaining() / 6) {
      return Status::ParseError("candidate batch longer than its payload");
    }
    out.reserve(static_cast<size_t>(count));
    int64_t prev_slot = 0;
    for (uint64_t i = 0; i < count; ++i) {
      WireCandidate c;
      int64_t slot_delta = 0;
      AOD_RETURN_NOT_OK(reader.GetVarintI64(&slot_delta));
      const int64_t slot = prev_slot + slot_delta;
      if (slot < 0) {
        return Status::ParseError("candidate slot out of range");
      }
      prev_slot = slot;
      c.slot = static_cast<uint64_t>(slot);
      AOD_RETURN_NOT_OK(reader.GetVarint(&c.context_bits));
      uint8_t packed = 0;
      AOD_RETURN_NOT_OK(reader.GetU8(&packed));
      if ((packed & ~7u) != 0) {
        return Status::ParseError("unknown candidate flag bits");
      }
      AOD_RETURN_NOT_OK(
          CheckedKind(static_cast<uint8_t>(packed & 3u), &c.kind));
      c.opposite = (packed & 4) != 0;
      int64_t v = 0;
      AOD_RETURN_NOT_OK(reader.GetVarintI64(&v));
      AOD_RETURN_NOT_OK(CheckedI32(v, &c.target));
      AOD_RETURN_NOT_OK(reader.GetVarintI64(&v));
      AOD_RETURN_NOT_OK(CheckedI32(v, &c.pair_a));
      AOD_RETURN_NOT_OK(reader.GetVarintI64(&v));
      AOD_RETURN_NOT_OK(CheckedI32(v, &c.pair_b));
      out.push_back(c);
    }
  } else {
    uint64_t count = 0;
    AOD_RETURN_NOT_OK(reader.GetU64(&count));
    // Per-candidate raw encoding is 30 bytes (2 u64 + 3 i32 + 2 u8).
    if (count > reader.remaining() / 30) {
      return Status::ParseError("candidate batch longer than its payload");
    }
    out.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      WireCandidate c;
      uint8_t kind = 0;
      uint8_t opposite = 0;
      AOD_RETURN_NOT_OK(reader.GetU64(&c.slot));
      AOD_RETURN_NOT_OK(reader.GetU64(&c.context_bits));
      AOD_RETURN_NOT_OK(reader.GetU8(&kind));
      AOD_RETURN_NOT_OK(reader.GetI32(&c.target));
      AOD_RETURN_NOT_OK(reader.GetI32(&c.pair_a));
      AOD_RETURN_NOT_OK(reader.GetI32(&c.pair_b));
      AOD_RETURN_NOT_OK(reader.GetU8(&opposite));
      AOD_RETURN_NOT_OK(CheckedKind(kind, &c.kind));
      c.opposite = opposite != 0;
      out.push_back(c);
    }
  }
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  if (counts != nullptr) {
    counts->raw +=
        static_cast<int64_t>(kFrameHeaderBytes + 1 + 8 + 30 * out.size());
    counts->wire += static_cast<int64_t>(kFrameHeaderBytes + frame.size);
  }
  return out;
}

namespace {

void AppendRawOutcomes(const std::vector<WireOutcome>& outcomes,
                       WireWriter* writer) {
  writer->PutU64(outcomes.size());
  for (const WireOutcome& o : outcomes) {
    writer->PutU64(o.slot);
    writer->PutU8(static_cast<uint8_t>(o.kind));
    writer->PutU8(o.valid ? 1 : 0);
    writer->PutU8(o.early_exit ? 1 : 0);
    writer->PutI64(o.removal_size);
    writer->PutDouble(o.approx_factor);
    writer->PutDouble(o.interestingness);
    writer->PutDouble(o.seconds);
    writer->PutI32Array(o.removal_rows);
  }
}

bool TryCompressOutcomes(const std::vector<WireOutcome>& outcomes,
                         size_t budget, WireWriter* body) {
  body->PutVarint(outcomes.size());
  int64_t prev_slot = 0;
  for (const WireOutcome& o : outcomes) {
    body->PutVarintI64(static_cast<int64_t>(o.slot) - prev_slot);
    prev_slot = static_cast<int64_t>(o.slot);
    // valid | early_exit<<1 | kind<<2; bits above 3 are unknown.
    body->PutU8(static_cast<uint8_t>(
        (o.valid ? 1 : 0) | (o.early_exit ? 2 : 0) |
        (static_cast<uint8_t>(o.kind) << 2)));
    body->PutVarintI64(o.removal_size);
    // Doubles stay as raw bit patterns: mantissa bits are incompressible
    // and the determinism contract requires the exact value.
    body->PutDouble(o.approx_factor);
    body->PutDouble(o.interestingness);
    body->PutDouble(o.seconds);
    body->PutVarint(o.removal_rows.size());
    int32_t prev_row = 0;
    for (int32_t r : o.removal_rows) {
      body->PutVarintI64(static_cast<int64_t>(r) - prev_row);
      prev_row = r;
    }
    if (body->payload().size() >= budget) return false;
  }
  return true;
}

int64_t RawResultBodyBytes(const std::vector<WireOutcome>& outcomes) {
  int64_t raw = 8;
  for (const WireOutcome& o : outcomes) {
    raw += 51 + 4 * static_cast<int64_t>(o.removal_rows.size());
  }
  return raw;
}

}  // namespace

std::vector<uint8_t> EncodeResultBatch(const std::vector<WireOutcome>& outcomes,
                                       bool final_chunk, bool compress,
                                       CodecByteCounts* counts) {
  const int64_t raw_body = RawResultBodyBytes(outcomes);
  WireWriter body;
  const bool compressed =
      compress && !outcomes.empty() &&
      TryCompressOutcomes(outcomes, static_cast<size_t>(raw_body), &body);
  WireWriter writer;
  uint8_t flags = final_chunk ? kResultFlagFinalChunk : 0;
  if (compressed) flags |= kResultFlagCompressed;
  writer.PutU8(flags);
  if (compressed) {
    writer.PutBytes(body.payload().data(), body.payload().size());
  } else {
    AppendRawOutcomes(outcomes, &writer);
  }
  std::vector<uint8_t> frame = writer.SealFrame(FrameType::kResultBatch);
  if (counts != nullptr) {
    counts->raw += static_cast<int64_t>(kFrameHeaderBytes) + 1 + raw_body;
    counts->wire += static_cast<int64_t>(frame.size());
  }
  return frame;
}

Result<WireResultChunk> DecodeResultBatch(const DecodedFrame& frame,
                                          CodecByteCounts* counts) {
  if (frame.type != FrameType::kResultBatch) {
    return Status::ParseError("frame is not a result batch");
  }
  WireReader reader(frame.payload, frame.size);
  uint8_t flags = 0;
  AOD_RETURN_NOT_OK(reader.GetU8(&flags));
  if ((flags & ~(kResultFlagFinalChunk | kResultFlagCompressed)) != 0) {
    return Status::ParseError("unknown result batch flags");
  }
  WireResultChunk chunk;
  chunk.final_chunk = (flags & kResultFlagFinalChunk) != 0;
  std::vector<WireOutcome>& out = chunk.outcomes;
  if ((flags & kResultFlagCompressed) != 0) {
    uint64_t count = 0;
    AOD_RETURN_NOT_OK(reader.GetVarint(&count));
    // Minimum compressed outcome is 28 bytes (three raw doubles).
    if (count > reader.remaining() / 28) {
      return Status::ParseError("result batch longer than its payload");
    }
    out.reserve(static_cast<size_t>(count));
    int64_t prev_slot = 0;
    for (uint64_t i = 0; i < count; ++i) {
      WireOutcome o;
      int64_t slot_delta = 0;
      AOD_RETURN_NOT_OK(reader.GetVarintI64(&slot_delta));
      const int64_t slot = prev_slot + slot_delta;
      if (slot < 0) {
        return Status::ParseError("result slot out of range");
      }
      prev_slot = slot;
      o.slot = static_cast<uint64_t>(slot);
      uint8_t packed = 0;
      AOD_RETURN_NOT_OK(reader.GetU8(&packed));
      if ((packed & ~0xFu) != 0) {
        return Status::ParseError("unknown outcome flag bits");
      }
      o.valid = (packed & 1) != 0;
      o.early_exit = (packed & 2) != 0;
      AOD_RETURN_NOT_OK(
          CheckedKind(static_cast<uint8_t>((packed >> 2) & 3u), &o.kind));
      AOD_RETURN_NOT_OK(reader.GetVarintI64(&o.removal_size));
      AOD_RETURN_NOT_OK(reader.GetDouble(&o.approx_factor));
      AOD_RETURN_NOT_OK(reader.GetDouble(&o.interestingness));
      AOD_RETURN_NOT_OK(reader.GetDouble(&o.seconds));
      uint64_t rows = 0;
      AOD_RETURN_NOT_OK(reader.GetVarint(&rows));
      if (rows > reader.remaining()) {
        return Status::ParseError("removal rows longer than their payload");
      }
      o.removal_rows.reserve(static_cast<size_t>(rows));
      int64_t prev_row = 0;
      for (uint64_t r = 0; r < rows; ++r) {
        int64_t delta = 0;
        AOD_RETURN_NOT_OK(reader.GetVarintI64(&delta));
        int32_t row = 0;
        AOD_RETURN_NOT_OK(CheckedI32(prev_row + delta, &row));
        o.removal_rows.push_back(row);
        prev_row = row;
      }
      out.push_back(std::move(o));
    }
  } else {
    uint64_t count = 0;
    AOD_RETURN_NOT_OK(reader.GetU64(&count));
    // 51 bytes per raw outcome before its (possibly empty) removal-row
    // array.
    if (count > reader.remaining() / 51) {
      return Status::ParseError("result batch longer than its payload");
    }
    out.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      WireOutcome o;
      uint8_t kind = 0;
      uint8_t valid = 0;
      uint8_t early_exit = 0;
      AOD_RETURN_NOT_OK(reader.GetU64(&o.slot));
      AOD_RETURN_NOT_OK(reader.GetU8(&kind));
      AOD_RETURN_NOT_OK(CheckedKind(kind, &o.kind));
      AOD_RETURN_NOT_OK(reader.GetU8(&valid));
      AOD_RETURN_NOT_OK(reader.GetU8(&early_exit));
      AOD_RETURN_NOT_OK(reader.GetI64(&o.removal_size));
      AOD_RETURN_NOT_OK(reader.GetDouble(&o.approx_factor));
      AOD_RETURN_NOT_OK(reader.GetDouble(&o.interestingness));
      AOD_RETURN_NOT_OK(reader.GetDouble(&o.seconds));
      AOD_RETURN_NOT_OK(reader.GetI32Array(&o.removal_rows));
      o.valid = valid != 0;
      o.early_exit = early_exit != 0;
      out.push_back(std::move(o));
    }
  }
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  if (counts != nullptr) {
    counts->raw += static_cast<int64_t>(kFrameHeaderBytes) + 1 +
                   RawResultBodyBytes(out);
    counts->wire += static_cast<int64_t>(kFrameHeaderBytes + frame.size);
  }
  return chunk;
}

std::vector<uint8_t> EncodeConfigBlock(const WireRunnerConfig& config) {
  WireWriter writer;
  writer.PutU32(config.shard_id);
  writer.PutU32(config.attempt_id);
  writer.PutU8(config.validator);
  writer.PutDouble(config.epsilon);
  writer.PutU8(config.collect_removal_sets ? 1 : 0);
  writer.PutU8(config.enable_sampling_filter ? 1 : 0);
  writer.PutI64(config.sampler_sample_size);
  writer.PutDouble(config.sampler_reject_margin);
  writer.PutU64(config.sampler_seed);
  writer.PutI64(config.partition_memory_budget_bytes);
  writer.PutU32(config.num_threads);
  writer.PutU8(config.wire_compression ? 1 : 0);
  writer.PutU32(config.kinds);
  writer.PutDouble(config.afd_error);
  writer.PutI64(config.row_begin);
  writer.PutI64(config.row_end);
  return writer.SealFrame(FrameType::kConfigBlock);
}

Result<WireRunnerConfig> DecodeConfigBlock(const DecodedFrame& frame) {
  if (frame.type != FrameType::kConfigBlock) {
    return Status::ParseError("frame is not a config block");
  }
  WireReader reader(frame.payload, frame.size);
  WireRunnerConfig config;
  uint8_t removal = 0;
  uint8_t sampling = 0;
  uint8_t compression = 0;
  AOD_RETURN_NOT_OK(reader.GetU32(&config.shard_id));
  AOD_RETURN_NOT_OK(reader.GetU32(&config.attempt_id));
  AOD_RETURN_NOT_OK(reader.GetU8(&config.validator));
  AOD_RETURN_NOT_OK(reader.GetDouble(&config.epsilon));
  AOD_RETURN_NOT_OK(reader.GetU8(&removal));
  AOD_RETURN_NOT_OK(reader.GetU8(&sampling));
  AOD_RETURN_NOT_OK(reader.GetI64(&config.sampler_sample_size));
  AOD_RETURN_NOT_OK(reader.GetDouble(&config.sampler_reject_margin));
  AOD_RETURN_NOT_OK(reader.GetU64(&config.sampler_seed));
  AOD_RETURN_NOT_OK(reader.GetI64(&config.partition_memory_budget_bytes));
  AOD_RETURN_NOT_OK(reader.GetU32(&config.num_threads));
  AOD_RETURN_NOT_OK(reader.GetU8(&compression));
  AOD_RETURN_NOT_OK(reader.GetU32(&config.kinds));
  AOD_RETURN_NOT_OK(reader.GetDouble(&config.afd_error));
  AOD_RETURN_NOT_OK(reader.GetI64(&config.row_begin));
  AOD_RETURN_NOT_OK(reader.GetI64(&config.row_end));
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  config.collect_removal_sets = removal != 0;
  config.enable_sampling_filter = sampling != 0;
  config.wire_compression = compression != 0;
  if (config.validator > 2) {
    return Status::ParseError("unknown validator kind " +
                              std::to_string(config.validator));
  }
  if (!(config.epsilon >= 0.0 && config.epsilon <= 1.0)) {
    return Status::ParseError("config epsilon outside [0, 1]");
  }
  if (config.kinds == 0 || !DependencyKindSet(config.kinds).IsValid()) {
    return Status::ParseError("config dependency-kind set invalid (bits " +
                              std::to_string(config.kinds) + ")");
  }
  if (!(config.afd_error >= 0.0 && config.afd_error <= 1.0)) {
    return Status::ParseError("config afd_error outside [0, 1]");
  }
  if (config.row_begin < 0 || config.row_end < config.row_begin) {
    return Status::ParseError("config row range invalid");
  }
  return config;
}

namespace {

/// Rank codec selection: a pure function of the column's cardinality
/// (and the compress switch), so both sides of the seam can predict it.
/// Ranks are dense dictionary codes in [0, cardinality): domains that
/// fit one or two bytes pack at fixed narrow width; mid-size domains
/// (<= 2^21, i.e. at most 3 varint bytes) use varints; anything larger
/// stays raw — a varint of a large rank can exceed 4 bytes.
uint8_t SelectRankCodec(int32_t cardinality, bool compress) {
  if (!compress) return kRankCodecRaw;
  if (cardinality <= (1 << 8)) return kRankCodecByte;
  if (cardinality <= (1 << 16)) return kRankCodecShort;
  if (cardinality <= (1 << 21)) return kRankCodecVarint;
  return kRankCodecRaw;
}

}  // namespace

std::vector<uint8_t> EncodeTableSlice(const EncodedTable& table,
                                      int64_t row_begin, int64_t row_end,
                                      bool compress, CodecByteCounts* counts) {
  AOD_CHECK_MSG(row_begin >= 0 && row_begin <= row_end &&
                    row_end <= table.num_rows(),
                "table slice [%lld, %lld) outside table of %lld rows",
                static_cast<long long>(row_begin),
                static_cast<long long>(row_end),
                static_cast<long long>(table.num_rows()));
  const size_t lo = static_cast<size_t>(row_begin);
  const size_t hi = static_cast<size_t>(row_end);
  WireWriter writer;
  writer.PutI64(table.num_rows());
  writer.PutU32(static_cast<uint32_t>(table.num_columns()));
  writer.PutI64(row_begin);
  writer.PutI64(row_end - row_begin);
  int64_t raw_bytes = static_cast<int64_t>(kFrameHeaderBytes) + 8 + 4 + 16;
  for (int c = 0; c < table.num_columns(); ++c) {
    const EncodedColumn& col = table.column(c);
    writer.PutString(col.name);
    // Cardinality (and through it the rank codec) is table-global even
    // for a slice: ranks are dense codes over the whole column, which is
    // what lets fragments from different ranges stitch by rank.
    writer.PutI32(col.cardinality);
    const uint8_t codec = SelectRankCodec(col.cardinality, compress);
    writer.PutU8(codec);
    writer.PutU64(hi - lo);
    switch (codec) {
      case kRankCodecByte:
        for (size_t i = lo; i < hi; ++i) {
          writer.PutU8(static_cast<uint8_t>(col.ranks[i]));
        }
        break;
      case kRankCodecShort:
        for (size_t i = lo; i < hi; ++i) {
          writer.PutU16(static_cast<uint16_t>(col.ranks[i]));
        }
        break;
      case kRankCodecVarint:
        for (size_t i = lo; i < hi; ++i) {
          writer.PutVarint(static_cast<uint64_t>(col.ranks[i]));
        }
        break;
      default:
        for (size_t i = lo; i < hi; ++i) writer.PutI32(col.ranks[i]);
        break;
    }
    raw_bytes += 8 + static_cast<int64_t>(col.name.size()) + 4 + 1 + 8 +
                 4 * static_cast<int64_t>(hi - lo);
  }
  std::vector<uint8_t> frame = writer.SealFrame(FrameType::kTableBlock);
  if (counts != nullptr) {
    counts->raw += raw_bytes;
    counts->wire += static_cast<int64_t>(frame.size());
  }
  return frame;
}

std::vector<uint8_t> EncodeTableBlock(const EncodedTable& table, bool compress,
                                      CodecByteCounts* counts) {
  return EncodeTableSlice(table, 0, table.num_rows(), compress, counts);
}

Result<WireTableSlice> DecodeTableSlice(const DecodedFrame& frame,
                                        CodecByteCounts* counts) {
  if (frame.type != FrameType::kTableBlock) {
    return Status::ParseError("frame is not a table block");
  }
  WireReader reader(frame.payload, frame.size);
  int64_t total_rows = 0;
  uint32_t num_columns = 0;
  int64_t row_offset = 0;
  int64_t slice_rows = 0;
  AOD_RETURN_NOT_OK(reader.GetI64(&total_rows));
  AOD_RETURN_NOT_OK(reader.GetU32(&num_columns));
  AOD_RETURN_NOT_OK(reader.GetI64(&row_offset));
  AOD_RETURN_NOT_OK(reader.GetI64(&slice_rows));
  if (total_rows < 0) return Status::ParseError("negative table row count");
  if (num_columns > static_cast<uint32_t>(AttributeSet::kMaxAttributes)) {
    return Status::ParseError("table block exceeds the attribute limit");
  }
  if (row_offset < 0 || slice_rows < 0 ||
      row_offset > total_rows - slice_rows) {
    return Status::ParseError("table slice outside its table's rows");
  }
  int64_t raw_bytes = static_cast<int64_t>(kFrameHeaderBytes) + 8 + 4 + 16;
  std::vector<EncodedColumn> columns;
  columns.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    EncodedColumn col;
    AOD_RETURN_NOT_OK(reader.GetString(&col.name));
    AOD_RETURN_NOT_OK(reader.GetI32(&col.cardinality));
    uint8_t codec = 0;
    AOD_RETURN_NOT_OK(reader.GetU8(&codec));
    uint64_t count = 0;
    AOD_RETURN_NOT_OK(reader.GetU64(&count));
    switch (codec) {
      case kRankCodecRaw: {
        if (count > reader.remaining() / 4) {
          return Status::ParseError("rank column longer than its payload");
        }
        col.ranks.reserve(static_cast<size_t>(count));
        for (uint64_t i = 0; i < count; ++i) {
          int32_t v = 0;
          AOD_RETURN_NOT_OK(reader.GetI32(&v));
          col.ranks.push_back(v);
        }
        break;
      }
      case kRankCodecByte: {
        if (count > reader.remaining()) {
          return Status::ParseError("rank column longer than its payload");
        }
        col.ranks.reserve(static_cast<size_t>(count));
        for (uint64_t i = 0; i < count; ++i) {
          uint8_t v = 0;
          AOD_RETURN_NOT_OK(reader.GetU8(&v));
          col.ranks.push_back(v);
        }
        break;
      }
      case kRankCodecShort: {
        if (count > reader.remaining() / 2) {
          return Status::ParseError("rank column longer than its payload");
        }
        col.ranks.reserve(static_cast<size_t>(count));
        for (uint64_t i = 0; i < count; ++i) {
          uint16_t v = 0;
          AOD_RETURN_NOT_OK(reader.GetU16(&v));
          col.ranks.push_back(v);
        }
        break;
      }
      case kRankCodecVarint: {
        if (count > reader.remaining()) {
          return Status::ParseError("rank column longer than its payload");
        }
        col.ranks.reserve(static_cast<size_t>(count));
        for (uint64_t i = 0; i < count; ++i) {
          uint64_t v = 0;
          AOD_RETURN_NOT_OK(reader.GetVarint(&v));
          int32_t rank = 0;
          AOD_RETURN_NOT_OK(CheckedI32(static_cast<int64_t>(v), &rank));
          col.ranks.push_back(rank);
        }
        break;
      }
      default:
        return Status::ParseError("unknown rank codec " +
                                  std::to_string(codec));
    }
    if (static_cast<int64_t>(col.ranks.size()) != slice_rows) {
      return Status::ParseError("column length disagrees with row count");
    }
    // Cardinality is global, so the bound is total_rows — a slice of a
    // high-cardinality column legitimately declares more distinct values
    // than it has rows.
    if (col.cardinality < 0 ||
        static_cast<int64_t>(col.cardinality) > total_rows) {
      return Status::ParseError("column cardinality out of range");
    }
    for (int32_t rank : col.ranks) {
      if (rank < 0 || rank >= col.cardinality) {
        return Status::ParseError("rank outside its declared cardinality");
      }
    }
    raw_bytes += 8 + static_cast<int64_t>(col.name.size()) + 4 + 1 + 8 +
                 4 * static_cast<int64_t>(col.ranks.size());
    columns.push_back(std::move(col));
  }
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  if (counts != nullptr) {
    counts->raw += raw_bytes;
    counts->wire += static_cast<int64_t>(kFrameHeaderBytes + frame.size);
  }
  WireTableSlice out;
  out.table = EncodedTable(std::move(columns), slice_rows);
  out.row_offset = row_offset;
  out.total_rows = total_rows;
  return out;
}

Result<EncodedTable> DecodeTableBlock(const DecodedFrame& frame,
                                      CodecByteCounts* counts) {
  // Count bytes only for an accepted frame: a rejected slice must not
  // pollute the caller's accounting.
  CodecByteCounts local;
  AOD_ASSIGN_OR_RETURN(WireTableSlice slice, DecodeTableSlice(frame, &local));
  if (slice.row_offset != 0 || slice.total_rows != slice.table.num_rows()) {
    return Status::ParseError("table block is a row slice");
  }
  if (counts != nullptr) counts->Add(local);
  return std::move(slice.table);
}

namespace {

/// Delta-varint body of a partition fragment: class and row counts, the
/// strictly ascending ranks as deltas (first absolute), the class sizes
/// (>= 1 — singletons survive in fragments), then per class its first
/// row as a delta from row_begin followed by the in-class ascending
/// gaps. Same cost threshold as the partition codecs: bail to raw the
/// moment the body reaches `budget`.
bool TryCompressFragmentBody(const PartitionFragment& f, size_t budget,
                             WireWriter* body) {
  const int64_t classes = f.num_classes();
  body->PutVarint(static_cast<uint64_t>(classes));
  body->PutVarint(f.row_ids.size());
  int32_t prev_rank = 0;
  for (int64_t c = 0; c < classes; ++c) {
    const int32_t rank = f.class_ranks[static_cast<size_t>(c)];
    body->PutVarint(static_cast<uint64_t>(rank - (c == 0 ? 0 : prev_rank)));
    prev_rank = rank;
    if (body->payload().size() >= budget) return false;
  }
  for (int64_t c = 0; c < classes; ++c) {
    body->PutVarint(static_cast<uint64_t>(
        f.class_offsets[static_cast<size_t>(c) + 1] -
        f.class_offsets[static_cast<size_t>(c)]));
    if (body->payload().size() >= budget) return false;
  }
  for (int64_t c = 0; c < classes; ++c) {
    const size_t lo = static_cast<size_t>(f.class_offsets[static_cast<size_t>(c)]);
    const size_t hi =
        static_cast<size_t>(f.class_offsets[static_cast<size_t>(c) + 1]);
    body->PutVarint(static_cast<uint64_t>(f.row_ids[lo] - f.row_begin));
    for (size_t i = lo + 1; i < hi; ++i) {
      body->PutVarint(
          static_cast<uint64_t>(f.row_ids[i] - f.row_ids[i - 1]));
    }
    if (body->payload().size() >= budget) return false;
  }
  return true;
}

/// Expands the delta-varint fragment body back into the exact raw bytes
/// PartitionFragment::SerializeTo emits, so compressed and raw frames
/// share one validation gate (PartitionFragment::Deserialize).
Status ExpandCompressedFragment(WireReader* reader, int64_t row_begin,
                                int64_t row_end, std::vector<uint8_t>* raw) {
  uint64_t classes = 0;
  uint64_t rows = 0;
  AOD_RETURN_NOT_OK(reader->GetVarint(&classes));
  AOD_RETURN_NOT_OK(reader->GetVarint(&rows));
  // Pre-allocation sanity (Deserialize re-checks): total coverage pins
  // the row count to the range, and every class holds >= 1 row.
  if (rows != static_cast<uint64_t>(row_end - row_begin)) {
    return Status::ParseError("fragment does not cover its row range");
  }
  if (classes > rows) {
    return Status::ParseError("fragment claims more classes than rows");
  }
  raw->clear();
  raw->reserve(16 + static_cast<size_t>(classes) * 8 + 4 +
               static_cast<size_t>(rows) * 4);
  endian::AppendU64(raw, classes);
  endian::AppendU64(raw, rows);
  int64_t rank = 0;
  for (uint64_t c = 0; c < classes; ++c) {
    uint64_t delta = 0;
    AOD_RETURN_NOT_OK(reader->GetVarint(&delta));
    rank += static_cast<int64_t>(delta);
    if (rank > std::numeric_limits<int32_t>::max()) {
      return Status::ParseError("fragment rank out of range");
    }
    endian::AppendI32(raw, static_cast<int32_t>(rank));
  }
  std::vector<int64_t> sizes;
  sizes.reserve(static_cast<size_t>(classes));
  endian::AppendI32(raw, 0);
  int64_t offset = 0;
  for (uint64_t c = 0; c < classes; ++c) {
    uint64_t size = 0;
    AOD_RETURN_NOT_OK(reader->GetVarint(&size));
    offset += static_cast<int64_t>(size);
    if (size > rows || offset > static_cast<int64_t>(rows)) {
      return Status::ParseError("fragment offsets do not cover its rows");
    }
    sizes.push_back(static_cast<int64_t>(size));
    endian::AppendI32(raw, static_cast<int32_t>(offset));
  }
  for (uint64_t c = 0; c < classes; ++c) {
    int64_t row = row_begin;
    for (int64_t i = 0; i < sizes[static_cast<size_t>(c)]; ++i) {
      uint64_t delta = 0;
      AOD_RETURN_NOT_OK(reader->GetVarint(&delta));
      if (delta > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
        return Status::ParseError("fragment row delta out of range");
      }
      row = (i == 0 ? row_begin : row) + static_cast<int64_t>(delta);
      if (row > std::numeric_limits<int32_t>::max()) {
        return Status::ParseError("fragment row id out of range");
      }
      endian::AppendI32(raw, static_cast<int32_t>(row));
    }
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodePartitionFragment(const PartitionFragment& fragment,
                                             bool compress,
                                             CodecByteCounts* counts) {
  const std::vector<uint8_t> raw = fragment.Serialize();
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(fragment.attribute));
  writer.PutI64(fragment.row_begin);
  writer.PutI64(fragment.row_end);
  WireWriter body;
  const bool delta_ok =
      compress && TryCompressFragmentBody(fragment, raw.size(), &body);
  if (delta_ok) {
    writer.PutU8(kCodecDeltaVarint);
    writer.PutBytes(body.payload().data(), body.payload().size());
  } else {
    writer.PutU8(kCodecRaw);
    writer.PutBytes(raw.data(), raw.size());
  }
  std::vector<uint8_t> frame = writer.SealFrame(FrameType::kPartitionFragment);
  if (counts != nullptr) {
    counts->raw +=
        static_cast<int64_t>(kFrameHeaderBytes + 4 + 8 + 8 + 1 + raw.size());
    counts->wire += static_cast<int64_t>(frame.size());
  }
  return frame;
}

Result<PartitionFragment> DecodePartitionFragment(const DecodedFrame& frame,
                                                  int64_t num_rows,
                                                  CodecByteCounts* counts) {
  if (frame.type != FrameType::kPartitionFragment) {
    return Status::ParseError("frame is not a partition fragment");
  }
  WireReader reader(frame.payload, frame.size);
  uint32_t attribute = 0;
  int64_t row_begin = 0;
  int64_t row_end = 0;
  AOD_RETURN_NOT_OK(reader.GetU32(&attribute));
  AOD_RETURN_NOT_OK(reader.GetI64(&row_begin));
  AOD_RETURN_NOT_OK(reader.GetI64(&row_end));
  if (attribute >= static_cast<uint32_t>(AttributeSet::kMaxAttributes)) {
    return Status::ParseError("fragment attribute out of range");
  }
  if (row_begin < 0 || row_end < row_begin || row_end > num_rows) {
    return Status::ParseError("fragment row range outside the table");
  }
  uint8_t codec = 0;
  AOD_RETURN_NOT_OK(reader.GetU8(&codec));
  PartitionFragment fragment;
  size_t raw_body_bytes = 0;
  if (codec == kCodecRaw) {
    size_t consumed = 0;
    AOD_ASSIGN_OR_RETURN(
        fragment, PartitionFragment::Deserialize(
                      reader.cursor(), reader.remaining(),
                      static_cast<int32_t>(attribute), row_begin, row_end,
                      &consumed));
    reader.Skip(consumed);
    raw_body_bytes = consumed;
  } else if (codec == kCodecDeltaVarint) {
    std::vector<uint8_t> raw;
    AOD_RETURN_NOT_OK(
        ExpandCompressedFragment(&reader, row_begin, row_end, &raw));
    size_t consumed = 0;
    AOD_ASSIGN_OR_RETURN(
        fragment, PartitionFragment::Deserialize(
                      raw.data(), raw.size(), static_cast<int32_t>(attribute),
                      row_begin, row_end, &consumed));
    if (consumed != raw.size()) {
      return Status::ParseError("fragment body has trailing bytes");
    }
    raw_body_bytes = raw.size();
  } else {
    return Status::ParseError("unknown fragment codec " +
                              std::to_string(codec));
  }
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  if (counts != nullptr) {
    counts->raw += static_cast<int64_t>(kFrameHeaderBytes + 4 + 8 + 8 + 1 +
                                        raw_body_bytes);
    counts->wire += static_cast<int64_t>(kFrameHeaderBytes + frame.size);
  }
  return fragment;
}

std::vector<uint8_t> EncodeShutdown() {
  WireWriter writer;
  return writer.SealFrame(FrameType::kShutdown);
}

std::vector<uint8_t> EncodeBatchEnvelope(
    const std::vector<std::vector<uint8_t>>& frames) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(frames.size()));
  for (const std::vector<uint8_t>& f : frames) {
    writer.PutU64(f.size());
    writer.PutBytes(f.data(), f.size());
  }
  return writer.SealFrame(FrameType::kBatch);
}

Result<std::vector<std::vector<uint8_t>>> UnpackBatchEnvelope(
    const DecodedFrame& frame) {
  if (frame.type != FrameType::kBatch) {
    return Status::ParseError("frame is not a batch envelope");
  }
  WireReader reader(frame.payload, frame.size);
  uint32_t count = 0;
  AOD_RETURN_NOT_OK(reader.GetU32(&count));
  if (count == 0) {
    return Status::ParseError("empty batch envelope");
  }
  // Each inner frame costs at least a length prefix plus a header.
  if (count > reader.remaining() / (8 + kFrameHeaderBytes)) {
    return Status::ParseError("batch envelope longer than its payload");
  }
  std::vector<std::vector<uint8_t>> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t len = 0;
    AOD_RETURN_NOT_OK(reader.GetU64(&len));
    if (len > reader.remaining()) {
      return Status::ParseError("batch envelope segment truncated");
    }
    if (len < kFrameHeaderBytes) {
      return Status::ParseError("batch envelope segment shorter than a "
                                "frame header");
    }
    const uint8_t* p = reader.cursor();
    if (LoadU16(p + 6) == static_cast<uint16_t>(FrameType::kBatch)) {
      return Status::ParseError("nested batch envelope");
    }
    out.emplace_back(p, p + len);
    reader.Skip(static_cast<size_t>(len));
  }
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  return out;
}

std::vector<uint8_t> EncodeStatsFooter(const ShardStatsFooter& footer) {
  WireWriter writer;
  writer.PutU32(footer.shard_id);
  writer.PutU32(footer.attempt_id);
  writer.PutI64(footer.frames_served);
  writer.PutI64(footer.products_computed);
  writer.PutI64(footer.partitions_evicted);
  writer.PutI64(footer.partition_bytes_evicted);
  writer.PutI64(footer.partition_bytes_final);
  writer.PutI64(footer.partition_bytes_peak);
  writer.PutI64(footer.bytes_decoded_raw);
  writer.PutI64(footer.bytes_decoded_wire);
  writer.PutDouble(footer.partition_seconds);
  return writer.SealFrame(FrameType::kStatsFooter);
}

Result<ShardStatsFooter> DecodeStatsFooter(const DecodedFrame& frame) {
  if (frame.type != FrameType::kStatsFooter) {
    return Status::ParseError("frame is not a stats footer");
  }
  WireReader reader(frame.payload, frame.size);
  ShardStatsFooter footer;
  AOD_RETURN_NOT_OK(reader.GetU32(&footer.shard_id));
  AOD_RETURN_NOT_OK(reader.GetU32(&footer.attempt_id));
  AOD_RETURN_NOT_OK(reader.GetI64(&footer.frames_served));
  AOD_RETURN_NOT_OK(reader.GetI64(&footer.products_computed));
  AOD_RETURN_NOT_OK(reader.GetI64(&footer.partitions_evicted));
  AOD_RETURN_NOT_OK(reader.GetI64(&footer.partition_bytes_evicted));
  AOD_RETURN_NOT_OK(reader.GetI64(&footer.partition_bytes_final));
  AOD_RETURN_NOT_OK(reader.GetI64(&footer.partition_bytes_peak));
  AOD_RETURN_NOT_OK(reader.GetI64(&footer.bytes_decoded_raw));
  AOD_RETURN_NOT_OK(reader.GetI64(&footer.bytes_decoded_wire));
  AOD_RETURN_NOT_OK(reader.GetDouble(&footer.partition_seconds));
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  if (footer.frames_served < 0 || footer.products_computed < 0 ||
      footer.partitions_evicted < 0 || footer.partition_bytes_evicted < 0 ||
      footer.partition_bytes_final < 0 || footer.partition_bytes_peak < 0 ||
      footer.bytes_decoded_raw < 0 || footer.bytes_decoded_wire < 0) {
    return Status::ParseError("negative counter in stats footer");
  }
  return footer;
}

}  // namespace shard
}  // namespace aod
