#include "shard/wire.h"

#include <cstring>

#include "common/endian.h"

namespace aod {
namespace shard {

using endian::LoadU16;
using endian::LoadU32;
using endian::LoadU64;
using endian::StoreU16;
using endian::StoreU32;
using endian::StoreU64;

uint64_t WireChecksum(const uint8_t* data, size_t size) {
  uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

void WireWriter::PutU16(uint16_t v) { endian::AppendU16(&payload_, v); }

void WireWriter::PutU32(uint32_t v) { endian::AppendU32(&payload_, v); }

void WireWriter::PutU64(uint64_t v) { endian::AppendU64(&payload_, v); }

void WireWriter::PutDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutI32Array(const std::vector<int32_t>& values) {
  PutU64(values.size());
  for (int32_t v : values) PutI32(v);
}

void WireWriter::PutBytes(const uint8_t* data, size_t size) {
  payload_.insert(payload_.end(), data, data + size);
}

std::vector<uint8_t> WireWriter::SealFrame(FrameType type) {
  std::vector<uint8_t> frame(kFrameHeaderBytes + payload_.size());
  StoreU32(frame.data(), kWireMagic);
  StoreU16(frame.data() + 4, kWireVersion);
  StoreU16(frame.data() + 6, static_cast<uint16_t>(type));
  StoreU64(frame.data() + 8, payload_.size());
  StoreU64(frame.data() + 16, WireChecksum(payload_.data(), payload_.size()));
  std::memcpy(frame.data() + kFrameHeaderBytes, payload_.data(),
              payload_.size());
  payload_.clear();
  return frame;
}

Status WireReader::GetU8(uint8_t* v) {
  if (remaining() < 1) return Status::ParseError("wire payload truncated");
  *v = data_[pos_++];
  return Status::OK();
}

Status WireReader::GetU16(uint16_t* v) {
  if (remaining() < 2) return Status::ParseError("wire payload truncated");
  *v = LoadU16(data_ + pos_);
  pos_ += 2;
  return Status::OK();
}

Status WireReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return Status::ParseError("wire payload truncated");
  *v = LoadU32(data_ + pos_);
  pos_ += 4;
  return Status::OK();
}

Status WireReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return Status::ParseError("wire payload truncated");
  *v = LoadU64(data_ + pos_);
  pos_ += 8;
  return Status::OK();
}

Status WireReader::GetI32(int32_t* v) {
  uint32_t u = 0;
  AOD_RETURN_NOT_OK(GetU32(&u));
  *v = static_cast<int32_t>(u);
  return Status::OK();
}

Status WireReader::GetI64(int64_t* v) {
  uint64_t u = 0;
  AOD_RETURN_NOT_OK(GetU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status WireReader::GetDouble(double* v) {
  uint64_t bits = 0;
  AOD_RETURN_NOT_OK(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status WireReader::GetI32Array(std::vector<int32_t>* values) {
  uint64_t count = 0;
  AOD_RETURN_NOT_OK(GetU64(&count));
  if (count > remaining() / 4) {
    return Status::ParseError("wire array longer than its payload");
  }
  values->clear();
  values->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    int32_t v = 0;
    AOD_RETURN_NOT_OK(GetI32(&v));
    values->push_back(v);
  }
  return Status::OK();
}

Status WireReader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::ParseError("wire payload has trailing bytes");
  }
  return Status::OK();
}

Result<DecodedFrame> DecodeFrame(const std::vector<uint8_t>& frame) {
  if (frame.size() < kFrameHeaderBytes) {
    return Status::ParseError("wire frame shorter than its header");
  }
  if (LoadU32(frame.data()) != kWireMagic) {
    return Status::ParseError("wire frame magic mismatch");
  }
  const uint16_t version = LoadU16(frame.data() + 4);
  if (version != kWireVersion) {
    return Status::ParseError("unsupported wire version " +
                              std::to_string(version));
  }
  const uint16_t raw_type = LoadU16(frame.data() + 6);
  if (raw_type < static_cast<uint16_t>(FrameType::kPartitionBlock) ||
      raw_type > static_cast<uint16_t>(FrameType::kResultBatch)) {
    return Status::ParseError("unknown wire frame type " +
                              std::to_string(raw_type));
  }
  const uint64_t declared = LoadU64(frame.data() + 8);
  if (declared != frame.size() - kFrameHeaderBytes) {
    return Status::ParseError("wire frame size mismatch");
  }
  const uint64_t checksum = LoadU64(frame.data() + 16);
  const uint8_t* payload = frame.data() + kFrameHeaderBytes;
  if (checksum != WireChecksum(payload, static_cast<size_t>(declared))) {
    return Status::ParseError("wire frame checksum mismatch");
  }
  DecodedFrame out;
  out.type = static_cast<FrameType>(raw_type);
  out.payload = payload;
  out.size = static_cast<size_t>(declared);
  return out;
}

std::vector<uint8_t> EncodePartitionBlock(AttributeSet set,
                                          const StrippedPartition& partition) {
  WireWriter writer;
  writer.PutU64(set.bits());
  std::vector<uint8_t> csr = partition.Serialize();
  writer.PutBytes(csr.data(), csr.size());
  return writer.SealFrame(FrameType::kPartitionBlock);
}

Result<std::pair<AttributeSet, StrippedPartition>> DecodePartitionBlock(
    const DecodedFrame& frame, int64_t num_rows) {
  if (frame.type != FrameType::kPartitionBlock) {
    return Status::ParseError("frame is not a partition block");
  }
  WireReader reader(frame.payload, frame.size);
  uint64_t bits = 0;
  AOD_RETURN_NOT_OK(reader.GetU64(&bits));
  size_t consumed = 0;
  AOD_ASSIGN_OR_RETURN(
      StrippedPartition partition,
      StrippedPartition::Deserialize(reader.cursor(), reader.remaining(),
                                     num_rows, &consumed));
  reader.Skip(consumed);
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  return std::make_pair(AttributeSet(bits), std::move(partition));
}

std::vector<uint8_t> EncodeCandidateBatch(
    const std::vector<WireCandidate>& candidates) {
  WireWriter writer;
  writer.PutU64(candidates.size());
  for (const WireCandidate& c : candidates) {
    writer.PutU64(c.slot);
    writer.PutU64(c.context_bits);
    writer.PutU8(c.is_ofd ? 1 : 0);
    writer.PutI32(c.ofd_target);
    writer.PutI32(c.pair_a);
    writer.PutI32(c.pair_b);
    writer.PutU8(c.opposite ? 1 : 0);
  }
  return writer.SealFrame(FrameType::kCandidateBatch);
}

Result<std::vector<WireCandidate>> DecodeCandidateBatch(
    const DecodedFrame& frame) {
  if (frame.type != FrameType::kCandidateBatch) {
    return Status::ParseError("frame is not a candidate batch");
  }
  WireReader reader(frame.payload, frame.size);
  uint64_t count = 0;
  AOD_RETURN_NOT_OK(reader.GetU64(&count));
  // Per-candidate encoding is 30 bytes (2 u64 + 3 i32 + 2 u8); reject
  // counts the payload cannot hold before reserving.
  if (count > reader.remaining() / 30) {
    return Status::ParseError("candidate batch longer than its payload");
  }
  std::vector<WireCandidate> out;
  out.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    WireCandidate c;
    uint8_t is_ofd = 0;
    uint8_t opposite = 0;
    AOD_RETURN_NOT_OK(reader.GetU64(&c.slot));
    AOD_RETURN_NOT_OK(reader.GetU64(&c.context_bits));
    AOD_RETURN_NOT_OK(reader.GetU8(&is_ofd));
    AOD_RETURN_NOT_OK(reader.GetI32(&c.ofd_target));
    AOD_RETURN_NOT_OK(reader.GetI32(&c.pair_a));
    AOD_RETURN_NOT_OK(reader.GetI32(&c.pair_b));
    AOD_RETURN_NOT_OK(reader.GetU8(&opposite));
    c.is_ofd = is_ofd != 0;
    c.opposite = opposite != 0;
    out.push_back(c);
  }
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  return out;
}

std::vector<uint8_t> EncodeResultBatch(
    const std::vector<WireOutcome>& outcomes) {
  WireWriter writer;
  writer.PutU64(outcomes.size());
  for (const WireOutcome& o : outcomes) {
    writer.PutU64(o.slot);
    writer.PutU8(o.valid ? 1 : 0);
    writer.PutU8(o.early_exit ? 1 : 0);
    writer.PutI64(o.removal_size);
    writer.PutDouble(o.approx_factor);
    writer.PutDouble(o.interestingness);
    writer.PutDouble(o.seconds);
    writer.PutI32Array(o.removal_rows);
  }
  return writer.SealFrame(FrameType::kResultBatch);
}

Result<std::vector<WireOutcome>> DecodeResultBatch(const DecodedFrame& frame) {
  if (frame.type != FrameType::kResultBatch) {
    return Status::ParseError("frame is not a result batch");
  }
  WireReader reader(frame.payload, frame.size);
  uint64_t count = 0;
  AOD_RETURN_NOT_OK(reader.GetU64(&count));
  // 50 bytes per outcome before its (possibly empty) removal-row array.
  if (count > reader.remaining() / 50) {
    return Status::ParseError("result batch longer than its payload");
  }
  std::vector<WireOutcome> out;
  out.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    WireOutcome o;
    uint8_t valid = 0;
    uint8_t early_exit = 0;
    AOD_RETURN_NOT_OK(reader.GetU64(&o.slot));
    AOD_RETURN_NOT_OK(reader.GetU8(&valid));
    AOD_RETURN_NOT_OK(reader.GetU8(&early_exit));
    AOD_RETURN_NOT_OK(reader.GetI64(&o.removal_size));
    AOD_RETURN_NOT_OK(reader.GetDouble(&o.approx_factor));
    AOD_RETURN_NOT_OK(reader.GetDouble(&o.interestingness));
    AOD_RETURN_NOT_OK(reader.GetDouble(&o.seconds));
    AOD_RETURN_NOT_OK(reader.GetI32Array(&o.removal_rows));
    o.valid = valid != 0;
    o.early_exit = early_exit != 0;
    out.push_back(std::move(o));
  }
  AOD_RETURN_NOT_OK(reader.ExpectEnd());
  return out;
}

}  // namespace shard
}  // namespace aod
