// Core assertion and utility macros shared across libaod.
#ifndef AOD_COMMON_MACROS_H_
#define AOD_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message when `cond` is false. Active in all build types:
/// the checks guard internal invariants of the discovery framework whose
/// violation would silently corrupt results (wrong dependencies reported),
/// which is worse than a crash for a data-profiling tool.
#define AOD_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "AOD_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// AOD_CHECK with a printf-style explanation appended.
#define AOD_CHECK_MSG(cond, ...)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "AOD_CHECK failed at %s:%d: %s: ", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Debug-only assertion for hot paths (partition products, LNDS inner
/// loops) where the check cost would be measurable in release benchmarks.
#ifndef NDEBUG
#define AOD_DCHECK(cond) AOD_CHECK(cond)
#else
#define AOD_DCHECK(cond) \
  do {                   \
  } while (0)
#endif

#define AOD_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;          \
  TypeName& operator=(const TypeName&) = delete

#endif  // AOD_COMMON_MACROS_H_
