// Little-endian fixed-width byte primitives.
//
// Shared by every serializer in the tree — the partition CSR encoding
// (partition/stripped_partition.cc) and the shard wire codec
// (shard/wire.cc) — so the two byte formats cannot drift apart by each
// hand-rolling its own integer packing. Append* grows a byte vector,
// Store*/Load* work on raw pointers the caller has bounds-checked, and
// Read* are cursor-advancing bounded reads that return false instead of
// reading past the end.
#ifndef AOD_COMMON_ENDIAN_H_
#define AOD_COMMON_ENDIAN_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace aod {
namespace endian {

inline void StoreU16(uint8_t* out, uint16_t v) {
  out[0] = static_cast<uint8_t>(v & 0xff);
  out[1] = static_cast<uint8_t>((v >> 8) & 0xff);
}

inline void StoreU32(uint8_t* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
  }
}

inline void StoreU64(uint8_t* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
  }
}

inline uint16_t LoadU16(const uint8_t* in) {
  return static_cast<uint16_t>(in[0] | (in[1] << 8));
}

inline uint32_t LoadU32(const uint8_t* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in[i]) << (8 * i);
  return v;
}

inline uint64_t LoadU64(const uint8_t* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(in[i]) << (8 * i);
  return v;
}

inline void AppendU16(std::vector<uint8_t>* out, uint16_t v) {
  const size_t at = out->size();
  out->resize(at + 2);
  StoreU16(out->data() + at, v);
}

inline void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + 4);
  StoreU32(out->data() + at, v);
}

inline void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + 8);
  StoreU64(out->data() + at, v);
}

inline void AppendI32(std::vector<uint8_t>* out, int32_t v) {
  AppendU32(out, static_cast<uint32_t>(v));
}

/// Bounded cursor-advancing reads; `*pos` moves only on success.
/// Precondition: *pos <= size (holds when pos only advances this way).
inline bool ReadU64(const uint8_t* data, size_t size, size_t* pos,
                    uint64_t* v) {
  if (size - *pos < 8) return false;
  *v = LoadU64(data + *pos);
  *pos += 8;
  return true;
}

inline bool ReadI32(const uint8_t* data, size_t size, size_t* pos,
                    int32_t* v) {
  if (size - *pos < 4) return false;
  *v = static_cast<int32_t>(LoadU32(data + *pos));
  *pos += 4;
  return true;
}

}  // namespace endian
}  // namespace aod

#endif  // AOD_COMMON_ENDIAN_H_
