// Wall-clock timing helper used by the discovery statistics and benches.
#ifndef AOD_COMMON_STOPWATCH_H_
#define AOD_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace aod {

/// Monotonic stopwatch. Started on construction; Restart() re-arms it.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace aod

#endif  // AOD_COMMON_STOPWATCH_H_
