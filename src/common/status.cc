#include "common/status.h"

#include <ostream>

namespace aod {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kClosed:
      return "Closed";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kShuttingDown:
      return "ShuttingDown";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, StatusCode code) {
  return os << StatusCodeToString(code);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace aod
