#include "common/status.h"

namespace aod {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kClosed:
      return "Closed";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace aod
