#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace aod {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty() || s.size() > 32) return std::nullopt;
  char buf[40];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf, &end, 10);
  if (errno == ERANGE || end != buf + s.size() || end == buf) {
    return std::nullopt;
  }
  return static_cast<int64_t>(v);
}

std::optional<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty() || s.size() > 64) return std::nullopt;
  char buf[72];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf, &end);
  if (errno == ERANGE || end != buf + s.size() || end == buf) {
    return std::nullopt;
  }
  // strtod accepts "nan" and "inf", but non-finite values have no place
  // in a totally ordered attribute domain (NaN would even break the
  // strict-weak-ordering contract of the sorts downstream).
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace aod
