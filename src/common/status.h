// Error model: Status for fallible operations, Result<T> for fallible
// value-producing operations. Modeled after the Arrow/Abseil convention of
// explicit, exception-free error propagation in database kernels.
#ifndef AOD_COMMON_STATUS_H_
#define AOD_COMMON_STATUS_H_

#include <iosfwd>
#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace aod {

/// Broad error taxonomy. Kept small on purpose: callers branch on
/// ok()/!ok() far more often than on the specific code.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIoError,
  kParseError,
  kNotFound,
  kOutOfRange,
  kInternal,
  /// A channel/stream was closed cleanly by its peer: the orderly end of
  /// a conversation, distinct from kIoError (the transport broke).
  /// Receivers blocked on a ShardChannel wake with this code on Close.
  kClosed,
  /// A server refused work because admitting it would exceed a load
  /// bound (queue depth, per-client in-flight cap). Retryable by the
  /// client after a backoff; nothing about the request itself is wrong.
  kOverloaded,
  /// A server is draining toward exit and no longer admits new work;
  /// in-flight work still completes. A client should fail over, not
  /// retry the same endpoint.
  kShuttingDown,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome with an optional message.
///
/// Cheap to copy in the success case (empty string). Functions that can
/// fail for data-dependent reasons (CSV parsing, schema lookup) return
/// Status / Result; programmer errors use AOD_CHECK instead.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Closed(std::string msg) {
    return Status(StatusCode::kClosed, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status ShuttingDown(std::string msg) {
    return Status(StatusCode::kShuttingDown, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Stream the stable code name / ToString() form — gtest failure
/// messages and logging read as "Overloaded: queue full" instead of an
/// opaque enum value.
std::ostream& operator<<(std::ostream& os, StatusCode code);
std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a checked programmer error.
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : repr_(std::move(value)) {}
  /* implicit */ Result(Status status) : repr_(std::move(status)) {
    AOD_CHECK_MSG(!std::get<Status>(repr_).ok(),
                  "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    AOD_CHECK_MSG(ok(), "Result::value() on error: %s",
                  std::get<Status>(repr_).ToString().c_str());
    return std::get<T>(repr_);
  }
  T& value() & {
    AOD_CHECK_MSG(ok(), "Result::value() on error: %s",
                  std::get<Status>(repr_).ToString().c_str());
    return std::get<T>(repr_);
  }
  T&& value() && {
    AOD_CHECK_MSG(ok(), "Result::value() on error: %s",
                  std::get<Status>(repr_).ToString().c_str());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates an error Status out of the enclosing function.
#define AOD_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::aod::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

/// Evaluates a Result-returning expression; on success binds the value to
/// `lhs`, otherwise propagates the error Status.
#define AOD_ASSIGN_OR_RETURN(lhs, expr)    \
  auto AOD_CONCAT_(_res_, __LINE__) = (expr);              \
  if (!AOD_CONCAT_(_res_, __LINE__).ok())                  \
    return AOD_CONCAT_(_res_, __LINE__).status();          \
  lhs = std::move(AOD_CONCAT_(_res_, __LINE__)).value()

#define AOD_CONCAT_INNER_(a, b) a##b
#define AOD_CONCAT_(a, b) AOD_CONCAT_INNER_(a, b)

}  // namespace aod

#endif  // AOD_COMMON_STATUS_H_
