// Small string helpers used by the CSV parser, type inference and printers.
#ifndef AOD_COMMON_STRING_UTIL_H_
#define AOD_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace aod {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Removes ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// Joins `parts` with `sep` between elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Strict full-string integer parse; rejects trailing junk and overflow.
std::optional<int64_t> ParseInt64(std::string_view s);

/// Strict full-string double parse; rejects trailing junk. Accepts the
/// usual decimal and exponent forms ("1", "-2.5", "1e6").
std::optional<double> ParseDouble(std::string_view s);

/// True if `a` equals `b` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("1.50" -> "1.5", "2.00" -> "2").
std::string FormatDouble(double value, int digits = 4);

}  // namespace aod

#endif  // AOD_COMMON_STRING_UTIL_H_
