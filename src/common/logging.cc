#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace aod {
namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("AOD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (EqualsIgnoreCase(env, "debug")) return LogLevel::kDebug;
  if (EqualsIgnoreCase(env, "info")) return LogLevel::kInfo;
  if (EqualsIgnoreCase(env, "warning")) return LogLevel::kWarning;
  if (EqualsIgnoreCase(env, "error")) return LogLevel::kError;
  if (EqualsIgnoreCase(env, "off")) return LogLevel::kOff;
  return LogLevel::kWarning;
}

std::atomic<int>& GlobalLevel() {
  static std::atomic<int> level{static_cast<int>(LevelFromEnv())};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  GlobalLevel().store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(GlobalLevel().load());
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  // One unbuffered write per message: messages from pool workers may
  // interleave with the driver's, but never mid-line.
  const std::string text = stream_.str();
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
}

}  // namespace internal
}  // namespace aod
