// Minimal leveled logger. Discovery runs can take minutes on large inputs;
// progress logging is opt-in via the AOD_LOG_LEVEL environment variable or
// SetLogLevel().
#ifndef AOD_COMMON_LOGGING_H_
#define AOD_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace aod {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that is emitted to stderr.
void SetLogLevel(LogLevel level);

/// Current global minimum level. Initialized from AOD_LOG_LEVEL
/// (debug|info|warning|error|off) on first use; defaults to kWarning so
/// library consumers see nothing unless something is wrong.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style single-message emitter; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace aod

#define AOD_LOG(LEVEL)                                               \
  if (::aod::LogLevel::LEVEL >= ::aod::GetLogLevel())                \
  ::aod::internal::LogMessage(::aod::LogLevel::LEVEL, __FILE__, __LINE__)

#endif  // AOD_COMMON_LOGGING_H_
