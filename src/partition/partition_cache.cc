#include "partition/partition_cache.h"

#include <algorithm>
#include <chrono>
#include <tuple>
#include <utility>

#include "common/macros.h"

namespace aod {

PartitionCache::PartitionCache(const EncodedTable* table,
                               DeferBasePartitions) : table_(table) {
  AOD_CHECK(table != nullptr);
  PutReady(AttributeSet(),
           std::make_shared<StrippedPartition>(
               StrippedPartition::WholeRelation(table_->num_rows())));
  single_cost_.resize(static_cast<size_t>(table_->num_columns()), 0);
}

PartitionCache::PartitionCache(const EncodedTable* table)
    : PartitionCache(table, DeferBasePartitions{}) {
  for (int a = 0; a < table_->num_columns(); ++a) {
    auto partition = std::make_shared<StrippedPartition>(
        StrippedPartition::FromColumn(table_->column(a)));
    single_cost_[static_cast<size_t>(a)] = partition->rows_covered();
    catalog_.emplace(AttributeSet().With(a), partition->rows_covered());
    PutReady(AttributeSet().With(a), std::move(partition));
  }
}

void PartitionCache::Preload(AttributeSet set, StrippedPartition partition) {
  auto value = std::make_shared<StrippedPartition>(std::move(partition));
  if (set.size() == 1) {
    single_cost_[static_cast<size_t>(set.First())] = value->rows_covered();
    std::lock_guard<std::mutex> lock(catalog_mutex_);
    catalog_[set] = value->rows_covered();
  }
  PutReady(set, std::move(value));
}

void PartitionCache::PutReady(AttributeSet set, PartitionPtr value) {
  bytes_resident_.fetch_add(value->bytes(), std::memory_order_relaxed);
  std::promise<PartitionPtr> promise;
  promise.set_value(std::move(value));
  Shard& shard = ShardFor(set);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(set);
  if (it != shard.map.end()) {
    // Replacing an entry: un-count the displaced value (always resolved —
    // PutReady only ever installs resolved futures).
    bytes_resident_.fetch_sub(it->second.get()->bytes(),
                              std::memory_order_relaxed);
  }
  shard.map.insert_or_assign(set, promise.get_future().share());
}

std::shared_ptr<const StrippedPartition> PartitionCache::Get(
    AttributeSet set) {
  return Get(set, nullptr);
}

std::shared_ptr<const StrippedPartition> PartitionCache::Get(
    AttributeSet set, const DerivationPlan* plan) {
  Shard& shard = ShardFor(set);
  std::promise<PartitionPtr> promise;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(set);
    if (it != shard.map.end()) {
      PartitionFuture future = it->second;
      // get() outside the lock: a pending future blocks until the
      // computing thread resolves it.
      return future.get();
    }
    shard.map.emplace(set, promise.get_future().share());
  }
  // Level-0/1 partitions are preloaded and never evicted, so a miss is
  // always a derivable set.
  AOD_CHECK(set.size() >= 2);
  PartitionPtr value;
  if (plan != nullptr) {
    value = ExecutePlan(set, *plan);
  } else if (planner_enabled_) {
    value = ExecutePlan(set, PlanDerivation(set));
  } else {
    value = ComputeFixed(set);
  }
  promise.set_value(value);
  return value;
}

DerivationPlan PartitionCache::PlanDerivation(AttributeSet set) const {
  AOD_CHECK(set.size() >= 2);
  DerivationPlan best;
  // (estimated cost, products needed, base bit pattern): strict-min over
  // every catalog entry, so the choice is independent of map iteration
  // order and of anything but (set, catalog).
  std::tuple<int64_t, int, uint64_t> best_key{0, 0, 0};
  bool have_best = false;
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  for (const auto& [base, base_cost] : catalog_) {
    if (base.empty() || base == set || !set.ContainsAll(base)) continue;
    const AttributeSet remaining = set.Difference(base);
    const int steps = remaining.size();
    int64_t est = static_cast<int64_t>(steps) * base_cost;
    remaining.ForEach(
        [&](int a) { est += 2 * single_cost_[static_cast<size_t>(a)]; });
    std::tuple<int64_t, int, uint64_t> key{est, steps, base.bits()};
    if (!have_best || key < best_key) {
      have_best = true;
      best_key = key;
      best.base = base;
      best.estimated_cost = est;
    }
  }
  // Singletons are permanently catalogued, so a base always exists.
  AOD_CHECK(have_best);
  best.singles.clear();
  set.Difference(best.base).ForEach([&](int a) { best.singles.push_back(a); });
  return best;
}

void PartitionCache::PublishCost(AttributeSet set) {
  PartitionPtr partition = Get(set);
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  catalog_[set] = partition->rows_covered();
}

PartitionCache::PartitionPtr PartitionCache::ExecutePlan(
    AttributeSet set, const DerivationPlan& plan) {
  AOD_CHECK(!plan.base.empty() && set.ContainsAll(plan.base) &&
            !plan.singles.empty());
  PartitionPtr current = Get(plan.base);
  std::unique_ptr<PartitionScratch> scratch = AcquireScratch();
  int64_t realized = 0;
  for (int a : plan.singles) {
    PartitionPtr single = Get(AttributeSet().With(a));
    realized += current->rows_covered() + 2 * single->rows_covered();
    current = std::make_shared<StrippedPartition>(
        current->Product(*single, table_->num_rows(), scratch.get()));
    products_computed_.fetch_add(1, std::memory_order_relaxed);
  }
  ReleaseScratch(std::move(scratch));
  planner_derivations_.fetch_add(1, std::memory_order_relaxed);
  planner_cost_estimated_.fetch_add(plan.estimated_cost,
                                    std::memory_order_relaxed);
  planner_cost_realized_.fetch_add(realized, std::memory_order_relaxed);
  bytes_resident_.fetch_add(current->bytes(), std::memory_order_relaxed);
  return current;
}

PartitionCache::PartitionPtr PartitionCache::ComputeFixed(AttributeSet set) {
  // The caller has already claimed `set`'s map entry; walk down the fixed
  // chain X\{max} ⊃ X\{max, max'} ⊃ ..., claiming each missing
  // intermediate, until a cached subset is found. Claims then resolve
  // bottom-up, one product each — the iterative form of the old
  // recursion, so |X| no longer grows the stack.
  struct Claim {
    AttributeSet set;
    std::promise<PartitionPtr> promise;
  };
  std::vector<Claim> claims;
  PartitionPtr base;
  AttributeSet cur = set.Without(set.Last());
  while (true) {
    Shard& shard = ShardFor(cur);
    PartitionFuture future;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto it = shard.map.find(cur);
      if (it != shard.map.end()) {
        future = it->second;
        found = true;
      } else {
        claims.emplace_back();
        claims.back().set = cur;
        shard.map.emplace(cur, claims.back().promise.get_future().share());
      }
    }
    if (found) {
      base = future.get();
      break;
    }
    // Singletons are preloaded, so the walk terminates before size 1.
    AOD_CHECK(cur.size() >= 2);
    cur = cur.Without(cur.Last());
  }

  std::unique_ptr<PartitionScratch> scratch = AcquireScratch();
  auto derive_step = [&](AttributeSet key) {
    PartitionPtr single = Get(AttributeSet().With(key.Last()));
    PartitionPtr value = std::make_shared<StrippedPartition>(
        base->Product(*single, table_->num_rows(), scratch.get()));
    products_computed_.fetch_add(1, std::memory_order_relaxed);
    bytes_resident_.fetch_add(value->bytes(), std::memory_order_relaxed);
    return value;
  };
  for (auto it = claims.rbegin(); it != claims.rend(); ++it) {
    PartitionPtr value = derive_step(it->set);
    it->promise.set_value(value);
    base = std::move(value);
  }
  PartitionPtr result = derive_step(set);
  ReleaseScratch(std::move(scratch));
  return result;
}

bool PartitionCache::Contains(AttributeSet set) const {
  const Shard& shard = ShardFor(set);
  PartitionFuture future;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(set);
    if (it == shard.map.end()) return false;
    future = it->second;
  }
  return future.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

int64_t PartitionCache::EnforceBudget(int64_t budget_bytes) {
  if (budget_bytes <= 0 || bytes_resident() <= budget_bytes) return 0;
  // Futures are resolved here (the driver quiesces prefetch first), so
  // every entry's exact size and level are available.
  struct Victim {
    int level;
    int64_t bytes;
    AttributeSet set;
  };
  std::vector<Victim> victims;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, future] : shard.map) {
      if (key.size() <= 1) continue;
      victims.push_back({key.size(), future.get()->bytes(), key});
    }
  }
  // Coldest first: lowest level — levels below the two most recent are
  // never needed as contexts again, so during the level-wise traversal
  // ascending level order reaches the live levels only under extreme
  // budgets (where on-demand re-derivation covers them). Largest bytes
  // within a level so the budget is met with the fewest evictions; bit
  // pattern as the total tie-break.
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) {
              if (a.level != b.level) return a.level < b.level;
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              return a.set.bits() < b.set.bits();
            });
  int64_t freed = 0;
  size_t evicted = 0;
  while (evicted < victims.size() &&
         bytes_resident() - freed > budget_bytes) {
    const Victim& v = victims[evicted];
    Shard& shard = ShardFor(v.set);
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.map.erase(v.set);
    }
    freed += v.bytes;
    ++evicted;
  }
  if (evicted > 0) {
    std::lock_guard<std::mutex> lock(catalog_mutex_);
    for (size_t i = 0; i < evicted; ++i) catalog_.erase(victims[i].set);
  }
  partitions_evicted_.fetch_add(static_cast<int64_t>(evicted),
                                std::memory_order_relaxed);
  bytes_resident_.fetch_sub(freed, std::memory_order_relaxed);
  return freed;
}

int64_t PartitionCache::EvictSmallerThan(int below) {
  int64_t freed = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      int sz = it->first.size();
      if (sz > 1 && sz < below) {
        // Futures are resolved here (eviction runs between phases), so
        // the value — and its exact size — is available.
        freed += it->second.get()->bytes();
        {
          std::lock_guard<std::mutex> catalog_lock(catalog_mutex_);
          catalog_.erase(it->first);
        }
        partitions_evicted_.fetch_add(1, std::memory_order_relaxed);
        it = shard.map.erase(it);
      } else {
        ++it;
      }
    }
  }
  bytes_resident_.fetch_sub(freed, std::memory_order_relaxed);
  return freed;
}

int64_t PartitionCache::cached_count() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += static_cast<int64_t>(shard.map.size());
  }
  return total;
}

std::unique_ptr<PartitionScratch> PartitionCache::AcquireScratch() {
  {
    std::lock_guard<std::mutex> lock(scratch_mutex_);
    if (!free_scratch_.empty()) {
      std::unique_ptr<PartitionScratch> scratch =
          std::move(free_scratch_.back());
      free_scratch_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<PartitionScratch>(table_->num_rows());
}

void PartitionCache::ReleaseScratch(std::unique_ptr<PartitionScratch> scratch) {
  std::lock_guard<std::mutex> lock(scratch_mutex_);
  free_scratch_.push_back(std::move(scratch));
}

}  // namespace aod
