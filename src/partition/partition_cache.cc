#include "partition/partition_cache.h"

#include <vector>

#include "common/macros.h"

namespace aod {

PartitionCache::PartitionCache(const EncodedTable* table)
    : table_(table), scratch_(table->num_rows()) {
  AOD_CHECK(table != nullptr);
  cache_.emplace(AttributeSet(),
                 std::make_shared<StrippedPartition>(
                     StrippedPartition::WholeRelation(table_->num_rows())));
  for (int a = 0; a < table_->num_columns(); ++a) {
    cache_.emplace(AttributeSet().With(a),
                   std::make_shared<StrippedPartition>(
                       StrippedPartition::FromColumn(table_->column(a))));
  }
}

std::shared_ptr<const StrippedPartition> PartitionCache::Get(
    AttributeSet set) {
  auto it = cache_.find(set);
  if (it != cache_.end()) return it->second;

  // Find the largest cached subset obtained by removing one attribute;
  // fall back to building up attribute-by-attribute from a singleton.
  std::shared_ptr<const StrippedPartition> base;
  AttributeSet base_set;
  set.ForEach([&](int a) {
    AttributeSet sub = set.Without(a);
    auto sit = cache_.find(sub);
    if (sit != cache_.end() && base == nullptr) {
      base = sit->second;
      base_set = sub;
    }
  });
  if (base == nullptr) {
    // Build from the first attribute's partition; recursion depth is |set|.
    int first = set.First();
    AOD_CHECK(first >= 0);
    base_set = AttributeSet().With(first);
    base = Get(base_set);
  }

  AttributeSet missing = set.Difference(base_set);
  std::shared_ptr<const StrippedPartition> current = base;
  AttributeSet current_set = base_set;
  missing.ForEach([&](int a) {
    auto single = Get(AttributeSet().With(a));
    auto next = std::make_shared<StrippedPartition>(current->Product(
        *single, table_->num_rows(), &scratch_));
    ++products_computed_;
    current = next;
    current_set = current_set.With(a);
    cache_[current_set] = current;
  });
  return current;
}

bool PartitionCache::Contains(AttributeSet set) const {
  return cache_.find(set) != cache_.end();
}

void PartitionCache::EvictSmallerThan(int below) {
  for (auto it = cache_.begin(); it != cache_.end();) {
    int sz = it->first.size();
    if (sz > 1 && sz < below) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace aod
