#include "partition/partition_cache.h"

#include <chrono>
#include <utility>

#include "common/macros.h"

namespace aod {

PartitionCache::PartitionCache(const EncodedTable* table) : table_(table) {
  AOD_CHECK(table != nullptr);
  PutReady(AttributeSet(),
           std::make_shared<StrippedPartition>(
               StrippedPartition::WholeRelation(table_->num_rows())));
  for (int a = 0; a < table_->num_columns(); ++a) {
    PutReady(AttributeSet().With(a),
             std::make_shared<StrippedPartition>(
                 StrippedPartition::FromColumn(table_->column(a))));
  }
}

void PartitionCache::PutReady(AttributeSet set, PartitionPtr value) {
  bytes_resident_.fetch_add(value->bytes(), std::memory_order_relaxed);
  std::promise<PartitionPtr> promise;
  promise.set_value(std::move(value));
  Shard& shard = ShardFor(set);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(set);
  if (it != shard.map.end()) {
    // Replacing an entry: un-count the displaced value (always resolved —
    // PutReady only ever installs resolved futures).
    bytes_resident_.fetch_sub(it->second.get()->bytes(),
                              std::memory_order_relaxed);
  }
  shard.map.insert_or_assign(set, promise.get_future().share());
}

std::shared_ptr<const StrippedPartition> PartitionCache::Get(
    AttributeSet set) {
  Shard& shard = ShardFor(set);
  std::promise<PartitionPtr> promise;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(set);
    if (it != shard.map.end()) {
      PartitionFuture future = it->second;
      // get() outside the lock: a pending future blocks until the
      // computing thread resolves it.
      return future.get();
    }
    shard.map.emplace(set, promise.get_future().share());
  }
  PartitionPtr value = Compute(set);
  promise.set_value(value);
  return value;
}

PartitionCache::PartitionPtr PartitionCache::Compute(AttributeSet set) {
  // Fixed derivation structure (never "largest cached subset", which
  // depends on what other threads cached first): recurse on X \ {max}.
  // The recursion is memoized per key, and during level-wise discovery
  // X \ {max} survived the level below, so it is already cached.
  const int last = set.Last();
  AOD_CHECK(last >= 0 && set.size() >= 2);
  PartitionPtr base = Get(set.Without(last));
  PartitionPtr single = Get(AttributeSet().With(last));
  std::unique_ptr<PartitionScratch> scratch = AcquireScratch();
  PartitionPtr value = std::make_shared<StrippedPartition>(
      base->Product(*single, table_->num_rows(), scratch.get()));
  ReleaseScratch(std::move(scratch));
  products_computed_.fetch_add(1, std::memory_order_relaxed);
  bytes_resident_.fetch_add(value->bytes(), std::memory_order_relaxed);
  return value;
}

bool PartitionCache::Contains(AttributeSet set) const {
  const Shard& shard = ShardFor(set);
  PartitionFuture future;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(set);
    if (it == shard.map.end()) return false;
    future = it->second;
  }
  return future.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

int64_t PartitionCache::EvictSmallerThan(int below) {
  int64_t freed = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      int sz = it->first.size();
      if (sz > 1 && sz < below) {
        // Futures are resolved here (eviction runs between phases), so
        // the value — and its exact size — is available.
        freed += it->second.get()->bytes();
        it = shard.map.erase(it);
      } else {
        ++it;
      }
    }
  }
  bytes_resident_.fetch_sub(freed, std::memory_order_relaxed);
  return freed;
}

int64_t PartitionCache::cached_count() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += static_cast<int64_t>(shard.map.size());
  }
  return total;
}

std::unique_ptr<PartitionScratch> PartitionCache::AcquireScratch() {
  {
    std::lock_guard<std::mutex> lock(scratch_mutex_);
    if (!free_scratch_.empty()) {
      std::unique_ptr<PartitionScratch> scratch =
          std::move(free_scratch_.back());
      free_scratch_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<PartitionScratch>(table_->num_rows());
}

void PartitionCache::ReleaseScratch(std::unique_ptr<PartitionScratch> scratch) {
  std::lock_guard<std::mutex> lock(scratch_mutex_);
  free_scratch_.push_back(std::move(scratch));
}

}  // namespace aod
