// Row-space sharding: per-range partition fragments and the
// class-stitching reducer (ROADMAP: "Row-space sharding and out-of-core
// tables").
//
// Candidate-space sharding (src/shard/) splits the *lattice* but every
// shard still holds the whole table. The orthogonal axis splits *rows*:
// the coordinator assigns each shard one contiguous row range, the shard
// partitions only its own rows, and the fragments are merged back into
// the canonical full-table partition. What makes the merge exact is that
// `EncodedColumn::ranks` are table-global dense dictionary codes: two
// rows are equal on an attribute iff their ranks are equal, regardless
// of which range they live in. So a fragment keyed by rank can be
// stitched with any other range's fragment for the same rank by plain
// concatenation — no re-sorting, no value comparison.
//
// A PartitionFragment is deliberately NOT a stripped partition:
//   - singleton classes are KEPT (a row alone in its range may join a
//     class from another range),
//   - every row of the range appears exactly once (total coverage),
//   - classes are ordered by rank (the join key), not by first row id.
// StitchPartitions restores the stripped, canonical normal form — rows
// ascending within a class, classes ordered by smallest contained row
// id, classes of size < 2 dropped — and is pinned bit-identical to
// StrippedPartition::FromColumn on the full table
// (tests/partition_stitch_test.cc), which is what carries the
// determinism contract across the row-shard seam.
#ifndef AOD_PARTITION_PARTITION_STITCH_H_
#define AOD_PARTITION_PARTITION_STITCH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/encoder.h"
#include "partition/stripped_partition.h"

namespace aod {

/// One attribute's equivalence classes over a contiguous row range
/// [row_begin, row_end), keyed by table-global rank.
struct PartitionFragment {
  /// The attribute this fragment partitions (column index).
  int32_t attribute = 0;
  /// The covered range; fragments handed to StitchPartitions must tile
  /// [0, num_rows) contiguously in order.
  int64_t row_begin = 0;
  int64_t row_end = 0;
  /// One rank per class, strictly ascending — the stitch key.
  std::vector<int32_t> class_ranks;
  /// CSR offsets into row_ids (leading 0, nondecreasing by >= 1 —
  /// singleton classes are kept).
  std::vector<int32_t> class_offsets;
  /// GLOBAL row ids, ascending within each class; every row of
  /// [row_begin, row_end) appears exactly once.
  std::vector<int32_t> row_ids;

  int64_t num_classes() const {
    return static_cast<int64_t>(class_ranks.size());
  }
  int64_t num_rows() const { return row_end - row_begin; }

  /// Appends the fragment body's wire encoding (little-endian, fixed
  /// width): u64 class count, u64 row count, the per-class ranks, the
  /// offsets array (class count + 1 entries, leading 0), then the row
  /// ids. The header fields (attribute, range) travel in the enclosing
  /// frame (shard::EncodePartitionFragment).
  void SerializeTo(std::vector<uint8_t>* out) const;
  std::vector<uint8_t> Serialize() const {
    std::vector<uint8_t> out;
    SerializeTo(&out);
    return out;
  }

  /// Parses one fragment body as written by SerializeTo, with the same
  /// philosophy as StrippedPartition::Deserialize: a decoded fragment
  /// must uphold exactly the invariants a locally built one does.
  /// Rejects truncation, non-ascending or negative ranks, offsets that
  /// do not start at 0 or ascend by >= 1, row ids outside
  /// [row_begin, row_end) or not ascending within a class, and any
  /// fragment that does not cover its range exactly once per row.
  /// On success `*consumed` (optional) receives the bytes read.
  static Result<PartitionFragment> Deserialize(const uint8_t* data,
                                               size_t size, int32_t attribute,
                                               int64_t row_begin,
                                               int64_t row_end,
                                               size_t* consumed = nullptr);
};

/// Partitions one attribute's row slice: column.ranks holds the
/// full-table rank array; only rows in [row_begin, row_end) are read.
/// O(range + cardinality) counting sort; classes come out in ascending
/// rank order with ascending rows inside.
PartitionFragment FragmentFromColumn(const EncodedColumn& column,
                                     int64_t row_begin, int64_t row_end,
                                     int32_t attribute);

/// Same partitioning for a column that holds ONLY the slice's ranks (a
/// decoded shard::WireTableSlice): local index i is global row
/// `global_row_begin + i`, and `column.cardinality` is the table-global
/// cardinality. Produces exactly the fragment FragmentFromColumn would
/// build from the full column over the same range — the runner-side and
/// coordinator-side paths are interchangeable bit for bit.
PartitionFragment FragmentFromSlice(const EncodedColumn& column,
                                    int64_t global_row_begin,
                                    int32_t attribute);

/// The class-stitching reducer: merges per-range fragments of ONE
/// attribute back into the full-table stripped partition. `fragments`
/// must tile [0, num_rows) contiguously in ascending range order and
/// agree on the attribute. Classes sharing a rank across range
/// boundaries are joined by concatenation in range order (rows stay
/// ascending because ranges are disjoint and ascending); classes of
/// total size < 2 are stripped; surviving classes are ordered by their
/// smallest row id. The result is bit-identical to
/// StrippedPartition::FromColumn over the whole column — the row-shard
/// determinism contract (ARCHITECTURE.md, "Row-space sharding").
Result<StrippedPartition> StitchPartitions(
    const std::vector<PartitionFragment>& fragments, int64_t num_rows);

}  // namespace aod

#endif  // AOD_PARTITION_PARTITION_STITCH_H_
