#include "partition/partition_stitch.h"

#include <algorithm>
#include <utility>

#include "common/endian.h"
#include "common/macros.h"

namespace aod {

void PartitionFragment::SerializeTo(std::vector<uint8_t>* out) const {
  using endian::AppendI32;
  using endian::AppendU64;
  AppendU64(out, static_cast<uint64_t>(class_ranks.size()));
  AppendU64(out, static_cast<uint64_t>(row_ids.size()));
  for (int32_t v : class_ranks) AppendI32(out, v);
  for (int32_t v : class_offsets) AppendI32(out, v);
  for (int32_t v : row_ids) AppendI32(out, v);
}

Result<PartitionFragment> PartitionFragment::Deserialize(
    const uint8_t* data, size_t size, int32_t attribute, int64_t row_begin,
    int64_t row_end, size_t* consumed) {
  using endian::ReadI32;
  using endian::ReadU64;
  if (row_begin < 0 || row_end < row_begin) {
    return Status::ParseError("fragment row range invalid");
  }
  const uint64_t range = static_cast<uint64_t>(row_end - row_begin);
  size_t pos = 0;
  uint64_t classes = 0;
  uint64_t rows = 0;
  if (!ReadU64(data, size, &pos, &classes) ||
      !ReadU64(data, size, &pos, &rows)) {
    return Status::ParseError("fragment header truncated");
  }
  // A fragment covers its range totally (every row has a rank, singletons
  // are kept), so the row count is pinned — not merely bounded — by the
  // range, and each class holds at least one row.
  if (rows != range) {
    return Status::ParseError("fragment does not cover its row range");
  }
  if (classes > rows) {
    return Status::ParseError("fragment claims more classes than rows");
  }
  if ((classes == 0) != (rows == 0)) {
    return Status::ParseError("fragment class/row counts inconsistent");
  }

  PartitionFragment out;
  out.attribute = attribute;
  out.row_begin = row_begin;
  out.row_end = row_end;
  out.class_ranks.reserve(static_cast<size_t>(classes));
  int32_t prev_rank = -1;
  for (uint64_t c = 0; c < classes; ++c) {
    int32_t rank = 0;
    if (!ReadI32(data, size, &pos, &rank)) {
      return Status::ParseError("fragment ranks truncated");
    }
    if (rank <= prev_rank) {
      // Ranks are the stitch key: strictly ascending and non-negative
      // (prev starts at -1, so this also rejects a negative first rank).
      return Status::ParseError("fragment ranks not strictly ascending");
    }
    out.class_ranks.push_back(rank);
    prev_rank = rank;
  }
  out.class_offsets.reserve(static_cast<size_t>(classes) + 1);
  int32_t prev = 0;
  for (uint64_t c = 0; c <= classes; ++c) {
    int32_t offset = 0;
    if (!ReadI32(data, size, &pos, &offset)) {
      return Status::ParseError("fragment offsets truncated");
    }
    if (c == 0 ? offset != 0 : offset < prev + 1) {
      // Offsets start at 0 and ascend by the class size (>= 1 — unlike
      // the stripped form, singleton classes survive here).
      return Status::ParseError("fragment offsets not ascending by >= 1");
    }
    out.class_offsets.push_back(offset);
    prev = offset;
  }
  if (static_cast<uint64_t>(prev) != rows) {
    return Status::ParseError("fragment offsets do not cover its rows");
  }
  out.row_ids.reserve(static_cast<size_t>(rows));
  std::vector<uint8_t> seen(static_cast<size_t>(range), 0);
  size_t next_class = 1;
  int32_t prev_row_in_class = -1;
  for (uint64_t r = 0; r < rows; ++r) {
    int32_t row = 0;
    if (!ReadI32(data, size, &pos, &row)) {
      return Status::ParseError("fragment row ids truncated");
    }
    if (row < row_begin || static_cast<int64_t>(row) >= row_end) {
      return Status::ParseError("fragment row id outside its range");
    }
    if (next_class < out.class_offsets.size() &&
        static_cast<int32_t>(r) ==
            out.class_offsets[next_class]) {
      ++next_class;
      prev_row_in_class = -1;
    }
    if (prev_row_in_class >= 0 && row <= prev_row_in_class) {
      return Status::ParseError("fragment rows not ascending within class");
    }
    prev_row_in_class = row;
    const size_t local = static_cast<size_t>(row - row_begin);
    if (seen[local]) {
      return Status::ParseError("fragment row id appears in two classes");
    }
    seen[local] = 1;
    out.row_ids.push_back(row);
  }
  // rows == range and no duplicates => every row of the range is present.
  if (consumed != nullptr) *consumed = pos;
  return out;
}

namespace {

/// Shared counting-sort core: partitions ranks[local_begin, local_end)
/// of a rank array whose local index i is global row `global_base + i`.
PartitionFragment BuildFragment(const std::vector<int32_t>& ranks,
                                int32_t cardinality, int64_t local_begin,
                                int64_t local_end, int64_t global_base,
                                int32_t attribute) {
  PartitionFragment out;
  out.attribute = attribute;
  out.row_begin = global_base + local_begin;
  out.row_end = global_base + local_end;
  out.class_offsets.push_back(0);
  if (local_begin == local_end) return out;

  // Counting sort over the global rank space, scanning only the slice.
  // Classes come out keyed and ordered by rank; singletons are kept —
  // whether a row is alone in the full table is only known after the
  // stitch.
  std::vector<int32_t> counts(static_cast<size_t>(cardinality), 0);
  for (int64_t t = local_begin; t < local_end; ++t) {
    ++counts[static_cast<size_t>(ranks[static_cast<size_t>(t)])];
  }
  std::vector<int32_t> start(static_cast<size_t>(cardinality), 0);
  int32_t cursor = 0;
  for (int32_t v = 0; v < cardinality; ++v) {
    if (counts[static_cast<size_t>(v)] == 0) continue;
    out.class_ranks.push_back(v);
    start[static_cast<size_t>(v)] = cursor;
    cursor += counts[static_cast<size_t>(v)];
    out.class_offsets.push_back(cursor);
  }
  out.row_ids.resize(static_cast<size_t>(local_end - local_begin));
  for (int64_t t = local_begin; t < local_end; ++t) {
    const int32_t r = ranks[static_cast<size_t>(t)];
    out.row_ids[static_cast<size_t>(start[static_cast<size_t>(r)]++)] =
        static_cast<int32_t>(global_base + t);
  }
  return out;
}

}  // namespace

PartitionFragment FragmentFromColumn(const EncodedColumn& column,
                                     int64_t row_begin, int64_t row_end,
                                     int32_t attribute) {
  const int64_t n = static_cast<int64_t>(column.ranks.size());
  AOD_CHECK_MSG(row_begin >= 0 && row_begin <= row_end && row_end <= n,
                "fragment range [%lld, %lld) outside column of %lld rows",
                static_cast<long long>(row_begin),
                static_cast<long long>(row_end), static_cast<long long>(n));
  return BuildFragment(column.ranks, column.cardinality, row_begin, row_end,
                       /*global_base=*/0, attribute);
}

PartitionFragment FragmentFromSlice(const EncodedColumn& column,
                                    int64_t global_row_begin,
                                    int32_t attribute) {
  AOD_CHECK_MSG(global_row_begin >= 0, "negative slice offset");
  return BuildFragment(column.ranks, column.cardinality, 0,
                       static_cast<int64_t>(column.ranks.size()),
                       global_row_begin, attribute);
}

Result<StrippedPartition> StitchPartitions(
    const std::vector<PartitionFragment>& fragments, int64_t num_rows) {
  if (num_rows < 0) {
    return Status::InvalidArgument("stitch: negative row count");
  }
  // The fragments must tile [0, num_rows) contiguously in ascending
  // order and agree on the attribute.
  int64_t expect_begin = 0;
  int32_t max_rank = -1;
  for (const PartitionFragment& f : fragments) {
    if (f.row_begin != expect_begin || f.row_end < f.row_begin) {
      return Status::InvalidArgument("stitch: fragments do not tile the "
                                     "row space contiguously");
    }
    if (f.attribute != fragments.front().attribute) {
      return Status::InvalidArgument("stitch: fragments from different "
                                     "attributes");
    }
    if (f.class_offsets.size() != f.class_ranks.size() + 1 ||
        static_cast<int64_t>(f.row_ids.size()) != f.num_rows()) {
      return Status::InvalidArgument("stitch: fragment arrays inconsistent");
    }
    if (!f.class_ranks.empty()) {
      max_rank = std::max(max_rank, f.class_ranks.back());
    }
    expect_begin = f.row_end;
  }
  if (expect_begin != num_rows) {
    return Status::InvalidArgument("stitch: fragments do not cover the "
                                   "table");
  }
  if (max_rank < 0) return StrippedPartition();

  // Pass 1: total class size and first (= globally smallest, because
  // ranges ascend and rows ascend within a fragment class) row id per
  // rank.
  std::vector<int64_t> total(static_cast<size_t>(max_rank) + 1, 0);
  std::vector<int32_t> first(static_cast<size_t>(max_rank) + 1, -1);
  for (const PartitionFragment& f : fragments) {
    for (size_t c = 0; c < f.class_ranks.size(); ++c) {
      const size_t rank = static_cast<size_t>(f.class_ranks[c]);
      const int32_t lo = f.class_offsets[c];
      const int32_t hi = f.class_offsets[c + 1];
      total[rank] += hi - lo;
      if (first[rank] < 0) first[rank] = f.row_ids[static_cast<size_t>(lo)];
    }
  }

  // The stitch rule: a rank survives iff its classes hold >= 2 rows in
  // total; survivors are emitted in order of their smallest row id —
  // exactly FromColumn's first-occurrence order on the full table.
  std::vector<std::pair<int32_t, int32_t>> order;  // (first row, rank)
  int64_t covered = 0;
  for (int32_t v = 0; v <= max_rank; ++v) {
    if (total[static_cast<size_t>(v)] >= 2) {
      order.emplace_back(first[static_cast<size_t>(v)], v);
      covered += total[static_cast<size_t>(v)];
    }
  }
  if (order.empty()) return StrippedPartition();
  std::sort(order.begin(), order.end());

  std::vector<int32_t> offsets;
  offsets.reserve(order.size() + 1);
  offsets.push_back(0);
  // Per-rank write cursor into the output arena.
  std::vector<int64_t> cursor(static_cast<size_t>(max_rank) + 1, -1);
  int64_t at = 0;
  for (const auto& [first_row, rank] : order) {
    (void)first_row;
    cursor[static_cast<size_t>(rank)] = at;
    at += total[static_cast<size_t>(rank)];
    offsets.push_back(static_cast<int32_t>(at));
  }
  // Pass 2: concatenate each rank's per-range rows in range order.
  std::vector<int32_t> rows(static_cast<size_t>(covered));
  for (const PartitionFragment& f : fragments) {
    for (size_t c = 0; c < f.class_ranks.size(); ++c) {
      int64_t& w = cursor[static_cast<size_t>(f.class_ranks[c])];
      if (w < 0) continue;  // singleton in the full table: stripped
      const int32_t lo = f.class_offsets[c];
      const int32_t hi = f.class_offsets[c + 1];
      std::copy(f.row_ids.begin() + lo, f.row_ids.begin() + hi,
                rows.begin() + w);
      w += hi - lo;
    }
  }
  return StrippedPartition::FromCsr(std::move(rows), std::move(offsets));
}

}  // namespace aod
