#include "partition/stripped_partition.h"

#include <algorithm>

#include "common/endian.h"
#include "common/macros.h"

namespace aod {

StrippedPartition StrippedPartition::FromColumn(const EncodedColumn& column) {
  const int64_t n = static_cast<int64_t>(column.ranks.size());
  std::vector<int32_t> counts(static_cast<size_t>(column.cardinality), 0);
  for (int32_t r : column.ranks) ++counts[static_cast<size_t>(r)];

  StrippedPartition out;
  int64_t total = 0;
  int64_t num_classes = 0;
  for (int32_t v = 0; v < column.cardinality; ++v) {
    if (counts[static_cast<size_t>(v)] >= 2) {
      total += counts[static_cast<size_t>(v)];
      ++num_classes;
    }
  }
  if (num_classes == 0) return out;

  // Counting sort in canonical class order: a surviving rank gets its
  // slot range when its first (= smallest) row is scanned, so classes end
  // up ordered by smallest row id with rows ascending inside — not in
  // rank order, which would depend on the encoding rather than the value.
  out.rows_covered_ = total;
  out.row_ids_.resize(static_cast<size_t>(total));
  out.class_offsets_.reserve(static_cast<size_t>(num_classes) + 1);
  out.class_offsets_.push_back(0);
  std::vector<int32_t> start(static_cast<size_t>(column.cardinality), -1);
  int32_t cursor = 0;
  for (int64_t t = 0; t < n; ++t) {
    const int32_t r = column.ranks[static_cast<size_t>(t)];
    if (counts[static_cast<size_t>(r)] < 2) continue;
    int32_t& s = start[static_cast<size_t>(r)];
    if (s < 0) {
      s = cursor;
      cursor += counts[static_cast<size_t>(r)];
      out.class_offsets_.push_back(cursor);
    }
    out.row_ids_[static_cast<size_t>(s++)] = static_cast<int32_t>(t);
  }
  return out;
}

StrippedPartition StrippedPartition::WholeRelation(int64_t num_rows) {
  StrippedPartition out;
  if (num_rows >= 2) {
    out.row_ids_.resize(static_cast<size_t>(num_rows));
    for (int64_t t = 0; t < num_rows; ++t) {
      out.row_ids_[static_cast<size_t>(t)] = static_cast<int32_t>(t);
    }
    out.class_offsets_ = {0, static_cast<int32_t>(num_rows)};
    out.rows_covered_ = num_rows;
  }
  return out;
}

StrippedPartition StrippedPartition::FromClasses(
    std::vector<std::vector<int32_t>> classes) {
  StrippedPartition out;
  int64_t total = 0;
  int64_t kept = 0;
  for (const auto& cls : classes) {
    if (cls.size() >= 2) {
      total += static_cast<int64_t>(cls.size());
      ++kept;
    }
  }
  if (kept == 0) return out;
  out.row_ids_.reserve(static_cast<size_t>(total));
  out.class_offsets_.reserve(static_cast<size_t>(kept) + 1);
  out.class_offsets_.push_back(0);
  for (const auto& cls : classes) {
    if (cls.size() < 2) continue;
    out.row_ids_.insert(out.row_ids_.end(), cls.begin(), cls.end());
    out.class_offsets_.push_back(static_cast<int32_t>(out.row_ids_.size()));
  }
  out.rows_covered_ = total;
  return out;
}

StrippedPartition StrippedPartition::FromCsr(
    std::vector<int32_t> row_ids, std::vector<int32_t> class_offsets) {
  StrippedPartition out;
  if (row_ids.empty()) {
    AOD_CHECK_MSG(class_offsets.empty() ||
                      (class_offsets.size() == 1 && class_offsets[0] == 0),
                  "FromCsr: offsets without rows");
    return out;
  }
  AOD_CHECK_MSG(class_offsets.size() >= 2 && class_offsets.front() == 0 &&
                    class_offsets.back() == static_cast<int32_t>(row_ids.size()),
                "FromCsr: offsets do not delimit the row arena");
  for (size_t c = 1; c < class_offsets.size(); ++c) {
    AOD_CHECK_MSG(class_offsets[c] >= class_offsets[c - 1] + 2,
                  "FromCsr: class of size < 2 in stripped partition");
  }
  out.rows_covered_ = static_cast<int64_t>(row_ids.size());
  out.row_ids_ = std::move(row_ids);
  out.class_offsets_ = std::move(class_offsets);
  AOD_CHECK_MSG(out.IsCanonical(), "FromCsr: not in canonical normal form");
  return out;
}

StrippedPartition StrippedPartition::Product(const StrippedPartition& other,
                                             int64_t num_rows,
                                             PartitionScratch* scratch) const {
  // TANE's STRIPPED_PRODUCT as a two-pass counting sort. Pass 1 sizes the
  // CSR output exactly; pass 2 computes each surviving bucket's start
  // offset and scatters row ids directly into place. Output class order is
  // (other-class index, first occurrence of the self-class within that
  // other class) and rows keep the other class's order — bit-identical to
  // the classic per-class bucket algorithm.
  PartitionScratch local_scratch(scratch == nullptr ? num_rows : 0);
  PartitionScratch& s = scratch == nullptr ? local_scratch : *scratch;
  std::vector<int32_t>& class_of = s.class_of();
  AOD_CHECK_MSG(static_cast<int64_t>(class_of.size()) >= num_rows,
                "scratch sized for %zu rows, table has %lld", class_of.size(),
                static_cast<long long>(num_rows));
  s.EnsureClassCapacity(num_classes());
  const int64_t other_classes = other.num_classes();
  // One fresh epoch per `other` class: stamping a bucket's count/start
  // with the current epoch implicitly empties every bucket of previous
  // classes (and previous products) with zero reset work.
  const int64_t epoch0 = s.ReserveEpochs(other_classes + 1);
  std::vector<int64_t>& bucket_count = s.bucket_counts();
  std::vector<int64_t>& bucket_start = s.bucket_starts();
  std::vector<int32_t>& touched = s.touched();
  std::vector<int32_t>& offsets = s.offsets_tmp();

  const int64_t self_classes = num_classes();
  for (int64_t c = 0; c < self_classes; ++c) {
    for (int32_t t : cls(c)) {
      class_of[static_cast<size_t>(t)] = static_cast<int32_t>(c);
    }
  }

  // Count-then-scatter, fused per `other` class. The counting scan logs
  // each bucket (the subset of the class falling into one `this` class)
  // in first-touch order; surviving (>= 2 row) buckets get their output
  // slots assigned in that order — exactly the emission order of the
  // classic per-class bucket algorithm — and a second scan of the same
  // (still cache-hot) rows writes them directly into place in the
  // staging arena. Classes producing no surviving bucket skip the second
  // scan entirely, which is the common case at deep lattice levels.
  std::vector<int32_t>& staging = s.rows_tmp(other.rows_covered());
  offsets.clear();
  offsets.push_back(0);
  int64_t out_rows = 0;
  for (int64_t k = 0; k < other_classes; ++k) {
    const int64_t epoch = epoch0 + k;
    const int64_t stamp = epoch << 32;
    touched.clear();
    for (int32_t t : other.cls(k)) {
      int32_t c = class_of[static_cast<size_t>(t)];
      if (c < 0) continue;
      int64_t v = bucket_count[static_cast<size_t>(c)];
      if ((v >> 32) != epoch) {
        v = stamp;
        touched.push_back(c);
      }
      bucket_count[static_cast<size_t>(c)] = v + 1;
    }
    bool any_survivor = false;
    for (int32_t c : touched) {
      int64_t n = bucket_count[static_cast<size_t>(c)] & 0xffffffff;
      if (n >= 2) {
        bucket_start[static_cast<size_t>(c)] = stamp | out_rows;
        out_rows += n;
        offsets.push_back(static_cast<int32_t>(out_rows));
        any_survivor = true;
      }
    }
    if (!any_survivor) continue;
    for (int32_t t : other.cls(k)) {
      int32_t c = class_of[static_cast<size_t>(t)];
      if (c < 0) continue;
      int64_t v = bucket_start[static_cast<size_t>(c)];
      if ((v >> 32) == epoch) {
        staging[static_cast<size_t>(v & 0xffffffff)] = t;
        bucket_start[static_cast<size_t>(c)] = v + 1;
      }
    }
  }

  StrippedPartition out;
  out.rows_covered_ = out_rows;
  if (out_rows > 0) {
    // Canonical normal form: emit classes ordered by smallest contained
    // row id. With canonical inputs each staged class's rows are already
    // ascending (they are a subsequence of one ascending `other` class),
    // so its first row is its minimum and only the class order needs
    // fixing — a sort of class indices, not of rows.
    const int64_t emitted = static_cast<int64_t>(offsets.size()) - 1;
    bool in_order = true;
    for (int64_t c = 1; c < emitted; ++c) {
      if (staging[static_cast<size_t>(offsets[static_cast<size_t>(c - 1)])] >
          staging[static_cast<size_t>(offsets[static_cast<size_t>(c)])]) {
        in_order = false;
        break;
      }
    }
    if (in_order) {
      out.class_offsets_.reserve(offsets.size());
      out.class_offsets_.assign(offsets.begin(), offsets.end());
      out.row_ids_.reserve(static_cast<size_t>(out_rows));
      out.row_ids_.assign(staging.begin(),
                          staging.begin() + static_cast<ptrdiff_t>(out_rows));
    } else {
      std::vector<int32_t>& order = s.class_order_tmp();
      order.resize(static_cast<size_t>(emitted));
      for (int64_t c = 0; c < emitted; ++c) {
        order[static_cast<size_t>(c)] = static_cast<int32_t>(c);
      }
      std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
        return staging[static_cast<size_t>(offsets[static_cast<size_t>(a)])] <
               staging[static_cast<size_t>(offsets[static_cast<size_t>(b)])];
      });
      out.class_offsets_.reserve(offsets.size());
      out.class_offsets_.push_back(0);
      out.row_ids_.reserve(static_cast<size_t>(out_rows));
      for (int32_t c : order) {
        out.row_ids_.insert(
            out.row_ids_.end(),
            staging.begin() + offsets[static_cast<size_t>(c)],
            staging.begin() + offsets[static_cast<size_t>(c) + 1]);
        out.class_offsets_.push_back(
            static_cast<int32_t>(out.row_ids_.size()));
      }
    }
  }

  // Restore the translation table to all -1 for the next product.
  for (int32_t t : row_ids_) class_of[static_cast<size_t>(t)] = -1;
  return out;
}

void StrippedPartition::Normalize() {
  const int64_t n = num_classes();
  if (n == 0) return;
  for (int64_t c = 0; c < n; ++c) {
    std::sort(row_ids_.begin() + class_offsets_[static_cast<size_t>(c)],
              row_ids_.begin() + class_offsets_[static_cast<size_t>(c) + 1]);
  }
  std::vector<int32_t> order(static_cast<size_t>(n));
  for (int64_t c = 0; c < n; ++c) order[static_cast<size_t>(c)] =
      static_cast<int32_t>(c);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return row_ids_[static_cast<size_t>(class_offsets_[static_cast<size_t>(a)])] <
           row_ids_[static_cast<size_t>(class_offsets_[static_cast<size_t>(b)])];
  });
  std::vector<int32_t> rows;
  rows.reserve(row_ids_.size());
  std::vector<int32_t> offsets;
  offsets.reserve(static_cast<size_t>(n) + 1);
  offsets.push_back(0);
  for (int32_t c : order) {
    rows.insert(rows.end(),
                row_ids_.begin() + class_offsets_[static_cast<size_t>(c)],
                row_ids_.begin() + class_offsets_[static_cast<size_t>(c) + 1]);
    offsets.push_back(static_cast<int32_t>(rows.size()));
  }
  row_ids_ = std::move(rows);
  class_offsets_ = std::move(offsets);
}

bool StrippedPartition::IsCanonical() const {
  int32_t prev_first = -1;
  for (int64_t c = 0; c < num_classes(); ++c) {
    ClassSpan rows = cls(c);
    for (size_t i = 1; i < rows.size(); ++i) {
      if (rows[i - 1] >= rows[i]) return false;
    }
    if (rows[0] <= prev_first) return false;
    prev_first = rows[0];
  }
  return true;
}

void StrippedPartition::SerializeTo(std::vector<uint8_t>* out) const {
  using endian::AppendI32;
  using endian::AppendU64;
  AppendU64(out, static_cast<uint64_t>(num_classes()));
  AppendU64(out, static_cast<uint64_t>(row_ids_.size()));
  for (int32_t v : class_offsets_) AppendI32(out, v);
  for (int32_t v : row_ids_) AppendI32(out, v);
}

Result<StrippedPartition> StrippedPartition::Deserialize(const uint8_t* data,
                                                         size_t size,
                                                         int64_t num_rows,
                                                         size_t* consumed) {
  using endian::ReadI32;
  using endian::ReadU64;
  size_t pos = 0;
  uint64_t classes = 0;
  uint64_t rows = 0;
  if (!ReadU64(data, size, &pos, &classes) ||
      !ReadU64(data, size, &pos, &rows)) {
    return Status::ParseError("partition header truncated");
  }
  // Size sanity before any allocation: covered rows are bounded by the
  // table and stripped classes hold >= 2 rows each.
  if (num_rows < 0 || rows > static_cast<uint64_t>(num_rows)) {
    return Status::ParseError("partition claims more covered rows than the "
                              "table holds");
  }
  if (classes > rows / 2) {
    return Status::ParseError("partition claims more classes than 2-row "
                              "classes fit in its rows");
  }
  if ((classes == 0) != (rows == 0)) {
    return Status::ParseError("partition class/row counts inconsistent");
  }

  StrippedPartition out;
  if (classes > 0) {
    out.class_offsets_.reserve(static_cast<size_t>(classes) + 1);
    int32_t prev = 0;
    for (uint64_t c = 0; c <= classes; ++c) {
      int32_t offset = 0;
      if (!ReadI32(data, size, &pos, &offset)) {
        return Status::ParseError("partition offsets truncated");
      }
      if (c == 0 ? offset != 0 : offset < prev + 2) {
        // Offsets start at 0 and ascend by the class size (>= 2).
        return Status::ParseError("partition offsets not ascending by >= 2");
      }
      out.class_offsets_.push_back(offset);
      prev = offset;
    }
    if (static_cast<uint64_t>(prev) != rows) {
      return Status::ParseError("partition offsets do not cover its rows");
    }
  }
  out.row_ids_.reserve(static_cast<size_t>(rows));
  std::vector<uint8_t> seen(static_cast<size_t>(num_rows), 0);
  for (uint64_t r = 0; r < rows; ++r) {
    int32_t row = 0;
    if (!ReadI32(data, size, &pos, &row)) {
      return Status::ParseError("partition row ids truncated");
    }
    if (row < 0 || static_cast<int64_t>(row) >= num_rows) {
      return Status::ParseError("partition row id out of range");
    }
    if (seen[static_cast<size_t>(row)]) {
      return Status::ParseError("partition row id appears in two classes");
    }
    seen[static_cast<size_t>(row)] = 1;
    out.row_ids_.push_back(row);
  }
  out.rows_covered_ = static_cast<int64_t>(rows);
  if (!out.IsCanonical()) {
    return Status::ParseError("partition not in canonical normal form");
  }
  if (consumed != nullptr) *consumed = pos;
  return out;
}

std::string StrippedPartition::ToString() const {
  std::string out = "{";
  for (int64_t i = 0; i < num_classes(); ++i) {
    if (i > 0) out += ",";
    out += "{";
    ClassSpan c = cls(i);
    for (size_t j = 0; j < c.size(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(c[j]);
    }
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace aod
