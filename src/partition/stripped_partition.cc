#include "partition/stripped_partition.h"

#include <algorithm>

#include "common/macros.h"

namespace aod {

StrippedPartition StrippedPartition::FromColumn(const EncodedColumn& column) {
  const int64_t n = static_cast<int64_t>(column.ranks.size());
  std::vector<int32_t> counts(static_cast<size_t>(column.cardinality), 0);
  for (int32_t r : column.ranks) ++counts[static_cast<size_t>(r)];

  StrippedPartition out;
  // Map rank -> class slot (or -1 for singleton/empty ranks).
  std::vector<int32_t> slot(static_cast<size_t>(column.cardinality), -1);
  for (int32_t v = 0; v < column.cardinality; ++v) {
    if (counts[static_cast<size_t>(v)] >= 2) {
      slot[static_cast<size_t>(v)] =
          static_cast<int32_t>(out.classes_.size());
      out.classes_.emplace_back();
      out.classes_.back().reserve(
          static_cast<size_t>(counts[static_cast<size_t>(v)]));
    }
  }
  for (int64_t t = 0; t < n; ++t) {
    int32_t s = slot[static_cast<size_t>(column.ranks[static_cast<size_t>(t)])];
    if (s >= 0) {
      out.classes_[static_cast<size_t>(s)].push_back(
          static_cast<int32_t>(t));
    }
  }
  for (const auto& cls : out.classes_) {
    out.rows_covered_ += static_cast<int64_t>(cls.size());
  }
  return out;
}

StrippedPartition StrippedPartition::WholeRelation(int64_t num_rows) {
  StrippedPartition out;
  if (num_rows >= 2) {
    std::vector<int32_t> all(static_cast<size_t>(num_rows));
    for (int64_t t = 0; t < num_rows; ++t) {
      all[static_cast<size_t>(t)] = static_cast<int32_t>(t);
    }
    out.classes_.push_back(std::move(all));
    out.rows_covered_ = num_rows;
  }
  return out;
}

StrippedPartition StrippedPartition::FromClasses(
    std::vector<std::vector<int32_t>> classes) {
  StrippedPartition out;
  for (auto& cls : classes) {
    if (cls.size() >= 2) {
      out.rows_covered_ += static_cast<int64_t>(cls.size());
      out.classes_.push_back(std::move(cls));
    }
  }
  return out;
}

StrippedPartition StrippedPartition::Product(const StrippedPartition& other,
                                             int64_t num_rows,
                                             PartitionScratch* scratch) const {
  // TANE's STRIPPED_PRODUCT: translate tuples of `this` into class ids,
  // then slice each class of `other` by those ids.
  PartitionScratch local_scratch(scratch == nullptr ? num_rows : 0);
  std::vector<int32_t>& class_of =
      scratch == nullptr ? local_scratch.class_of() : scratch->class_of();
  AOD_CHECK_MSG(static_cast<int64_t>(class_of.size()) >= num_rows,
                "scratch sized for %zu rows, table has %lld", class_of.size(),
                static_cast<long long>(num_rows));

  for (size_t i = 0; i < classes_.size(); ++i) {
    for (int32_t t : classes_[i]) {
      class_of[static_cast<size_t>(t)] = static_cast<int32_t>(i);
    }
  }

  StrippedPartition out;
  std::vector<std::vector<int32_t>> buckets(classes_.size());
  for (const auto& cls : other.classes_) {
    for (int32_t t : cls) {
      int32_t c = class_of[static_cast<size_t>(t)];
      if (c >= 0) buckets[static_cast<size_t>(c)].push_back(t);
    }
    for (int32_t t : cls) {
      int32_t c = class_of[static_cast<size_t>(t)];
      if (c < 0) continue;
      auto& bucket = buckets[static_cast<size_t>(c)];
      if (bucket.size() >= 2) {
        out.rows_covered_ += static_cast<int64_t>(bucket.size());
        out.classes_.push_back(std::move(bucket));
      }
      bucket.clear();
    }
  }

  // Restore scratch to all -1 for the next product.
  for (const auto& cls : classes_) {
    for (int32_t t : cls) class_of[static_cast<size_t>(t)] = -1;
  }
  return out;
}

std::string StrippedPartition::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (i > 0) out += ",";
    out += "{";
    for (size_t j = 0; j < classes_[i].size(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(classes_[i][j]);
    }
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace aod
