// Attribute sets as 64-bit bitsets.
//
// The set-based canonical OD framework (paper Sec. 2.2, after FASTOD [9])
// traverses a lattice of attribute *sets*. Encoding sets as single machine
// words makes candidate-set intersections, subset enumeration and hash-map
// keys branch-free. 64 attributes comfortably covers the paper's datasets
// (35 and 30 attributes).
#ifndef AOD_PARTITION_ATTRIBUTE_SET_H_
#define AOD_PARTITION_ATTRIBUTE_SET_H_

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/macros.h"

namespace aod {

/// An immutable-ish value type representing a set of attribute indices
/// in [0, 64).
class AttributeSet {
 public:
  static constexpr int kMaxAttributes = 64;

  constexpr AttributeSet() : bits_(0) {}
  constexpr explicit AttributeSet(uint64_t bits) : bits_(bits) {}

  /// Builds a set from explicit indices.
  static AttributeSet Of(std::initializer_list<int> attrs) {
    AttributeSet s;
    for (int a : attrs) s = s.With(a);
    return s;
  }
  static AttributeSet FromVector(const std::vector<int>& attrs) {
    AttributeSet s;
    for (int a : attrs) s = s.With(a);
    return s;
  }
  /// The full set {0, 1, ..., n-1}.
  static AttributeSet FullSet(int n) {
    AOD_CHECK(n >= 0 && n <= kMaxAttributes);
    if (n == 64) return AttributeSet(~uint64_t{0});
    return AttributeSet((uint64_t{1} << n) - 1);
  }

  uint64_t bits() const { return bits_; }
  bool empty() const { return bits_ == 0; }
  int size() const { return std::popcount(bits_); }

  bool Contains(int attr) const {
    AOD_DCHECK(attr >= 0 && attr < kMaxAttributes);
    return (bits_ >> attr) & 1;
  }
  bool ContainsAll(AttributeSet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }

  AttributeSet With(int attr) const {
    AOD_DCHECK(attr >= 0 && attr < kMaxAttributes);
    return AttributeSet(bits_ | (uint64_t{1} << attr));
  }
  AttributeSet Without(int attr) const {
    AOD_DCHECK(attr >= 0 && attr < kMaxAttributes);
    return AttributeSet(bits_ & ~(uint64_t{1} << attr));
  }
  AttributeSet Union(AttributeSet other) const {
    return AttributeSet(bits_ | other.bits_);
  }
  AttributeSet Intersect(AttributeSet other) const {
    return AttributeSet(bits_ & other.bits_);
  }
  AttributeSet Difference(AttributeSet other) const {
    return AttributeSet(bits_ & ~other.bits_);
  }

  /// Lowest attribute index, or -1 if empty.
  int First() const { return empty() ? -1 : std::countr_zero(bits_); }

  /// Highest attribute index, or -1 if empty. Anchors the partition
  /// cache's fixed derivation rule Π_X = Π_{X\{Last}} · Π_{{Last}}, which
  /// keeps derived partitions bit-identical no matter which thread
  /// materializes them in which order.
  int Last() const { return empty() ? -1 : 63 - std::countl_zero(bits_); }

  /// Invokes `fn(attr)` for each member in ascending order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    uint64_t b = bits_;
    while (b != 0) {
      int attr = std::countr_zero(b);
      fn(attr);
      b &= b - 1;
    }
  }

  /// Members in ascending order.
  std::vector<int> ToVector() const;

  bool operator==(const AttributeSet& o) const { return bits_ == o.bits_; }
  bool operator!=(const AttributeSet& o) const { return bits_ != o.bits_; }
  /// Orders by bit pattern; used only for deterministic container ordering.
  bool operator<(const AttributeSet& o) const { return bits_ < o.bits_; }

  /// "{}" or "{a, c, f}" given a resolver from index to name.
  std::string ToString(
      const std::function<std::string(int)>& name_of) const;
  /// "{0, 2, 5}" with raw indices.
  std::string ToString() const;

 private:
  uint64_t bits_;
};

struct AttributeSetHash {
  size_t operator()(const AttributeSet& s) const {
    // SplitMix64 finalizer: cheap and well distributed for dense keys.
    uint64_t x = s.bits();
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

}  // namespace aod

#endif  // AOD_PARTITION_ATTRIBUTE_SET_H_
