// Stripped partitions (TANE [3], reused by FASTOD [9]).
//
// A partition Π_X groups tuples by equality on the attribute set X
// (paper Def. 2.8). The *stripped* form drops singleton classes: a class
// of one tuple can contribute neither a swap (Def. 2.5) nor a split
// (Def. 2.6), so every validator in this library is correct on the
// stripped form while the representation shrinks dramatically as contexts
// grow (at deep lattice levels almost all classes are singletons).
//
// Memory layout: CSR (compressed sparse row). All row ids live in one
// contiguous `row_ids` array; `class_offsets` (length num_classes + 1)
// delimits the classes. Two arrays per partition — not one heap block per
// class — so a partition costs exactly
//   4 * rows_covered + 4 * (num_classes + 1) bytes
// of payload, products write their output with zero per-class
// allocations, and a partition is a trivially serializable unit for the
// planned cross-shard shipping (ROADMAP). Classes are exposed as
// `std::span<const int32_t>` views into `row_ids`.
//
// Canonical normal form. Every partition this library materializes is
// *canonical*: rows ascend within each class and classes are ordered by
// their smallest contained row id. FromColumn and WholeRelation build
// canonical output directly; Product restores the form with a cheap
// class-reorder pass. Canonical partitions make the partition *value*
// (CSR bytes included) a pure function of the attribute set, independent
// of the derivation path — Π_{AB}·Π_C and Π_{BC}·Π_A yield identical
// arrays — which is what lets the cache plan derivations by cost instead
// of a fixed structural rule, and what a cross-shard reducer can hash.
#ifndef AOD_PARTITION_STRIPPED_PARTITION_H_
#define AOD_PARTITION_STRIPPED_PARTITION_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/encoder.h"

namespace aod {

/// Scratch buffers reused across partition products; one per discovery
/// run (or per concurrent product — see PartitionCache's pool). Holds the
/// tuple->class translation table plus the counting-sort work arrays, so
/// a steady-state product performs no heap allocation beyond its own
/// exactly-sized output.
class PartitionScratch {
 public:
  explicit PartitionScratch(int64_t num_rows)
      : class_of_(static_cast<size_t>(num_rows), -1) {}

  std::vector<int32_t>& class_of() { return class_of_; }

  /// Grows the per-class bucket arrays to cover `num_classes` classes.
  void EnsureClassCapacity(int64_t num_classes) {
    if (static_cast<int64_t>(bucket_counts_.size()) < num_classes) {
      bucket_counts_.resize(static_cast<size_t>(num_classes), 0);
      bucket_starts_.resize(static_cast<size_t>(num_classes), 0);
    }
  }

  /// Epoch-stamped bucket state, (epoch << 32) | value. Stamping one
  /// right-hand class's buckets with a fresh epoch makes every stale
  /// entry (any older epoch) read as "empty", so the arrays are never
  /// cleared between classes or between products.
  std::vector<int64_t>& bucket_counts() { return bucket_counts_; }
  std::vector<int64_t>& bucket_starts() { return bucket_starts_; }
  /// First-touch log of the counting pass: the classes hit by the current
  /// right-hand class, in first-occurrence order (= output class order).
  std::vector<int32_t>& touched() { return touched_; }
  /// Staging buffers for the product's output (copied exactly-sized into
  /// the result once the total is known).
  std::vector<int32_t>& offsets_tmp() { return offsets_tmp_; }
  std::vector<int32_t>& rows_tmp(int64_t capacity) {
    if (static_cast<int64_t>(rows_tmp_.size()) < capacity) {
      rows_tmp_.resize(static_cast<size_t>(capacity));
    }
    return rows_tmp_;
  }
  /// Class permutation for the canonical-form reorder pass.
  std::vector<int32_t>& class_order_tmp() { return class_order_tmp_; }

  /// Reserves `count` fresh epochs and returns the first. Epochs fit the
  /// high 32 bits of the stamped arrays; on (cumulative) overflow the
  /// arrays are re-zeroed and the clock restarts.
  int64_t ReserveEpochs(int64_t count) {
    if (next_epoch_ + count > std::numeric_limits<int32_t>::max()) {
      std::fill(bucket_counts_.begin(), bucket_counts_.end(), 0);
      std::fill(bucket_starts_.begin(), bucket_starts_.end(), 0);
      next_epoch_ = 1;
    }
    int64_t first = next_epoch_;
    next_epoch_ += count;
    return first;
  }

 private:
  std::vector<int32_t> class_of_;
  std::vector<int64_t> bucket_counts_;
  std::vector<int64_t> bucket_starts_;
  std::vector<int32_t> touched_;
  std::vector<int32_t> offsets_tmp_;
  std::vector<int32_t> rows_tmp_;
  std::vector<int32_t> class_order_tmp_;
  int64_t next_epoch_ = 1;
};

/// A stripped partition: equivalence classes of row ids, each of size >= 2,
/// stored in CSR form.
class StrippedPartition {
 public:
  /// Lightweight view of one equivalence class — points into `row_ids`.
  using ClassSpan = std::span<const int32_t>;

  StrippedPartition() = default;

  /// Partition by a single attribute, O(n). Output is canonical: classes
  /// in first-occurrence (= smallest row id) order, rows ascending.
  static StrippedPartition FromColumn(const EncodedColumn& column);

  /// Π over the empty attribute set: one class holding every tuple
  /// (stripped away entirely when the table has fewer than 2 rows).
  static StrippedPartition WholeRelation(int64_t num_rows);

  /// Builds directly from explicit classes (tests). Classes of size < 2
  /// are stripped; row ids within a class are kept in the given order —
  /// i.e. NOT normalized; call Normalize() for the canonical form.
  static StrippedPartition FromClasses(std::vector<std::vector<int32_t>> classes);

  /// Adopts an already-stripped, already-canonical CSR pair without
  /// copying (the class-stitching reducer emits canonical form by
  /// construction). `class_offsets` carries the leading 0 and one entry
  /// per class after it, or is empty alongside empty `row_ids`.
  /// Canonicality and the >= 2 class-size invariant are checked.
  static StrippedPartition FromCsr(std::vector<int32_t> row_ids,
                                   std::vector<int32_t> class_offsets);

  /// Stripped product Π_self · Π_other = Π over the union of the two
  /// attribute sets. O(||self|| + ||other|| + C log C) where C is the
  /// output class count: a two-pass counting sort per `other` class —
  /// count buckets and assign their exact output slots, then write row
  /// ids directly into place — with no per-class buckets and zero
  /// allocations beyond the exactly-sized result (work arrays, including
  /// epoch-stamped bucket state that never needs clearing, live in
  /// `scratch`). When both inputs are canonical the output is canonical
  /// too: a final pass reorders classes by smallest row id, making the
  /// result independent of which operand order or derivation path
  /// produced it (the cache's cost-based planner depends on this).
  /// `num_rows` is the table size; `scratch` may be nullptr (a temporary
  /// table is allocated).
  StrippedPartition Product(const StrippedPartition& other, int64_t num_rows,
                            PartitionScratch* scratch = nullptr) const;

  /// Rewrites this partition into canonical normal form: rows ascending
  /// within each class, classes ordered by smallest contained row id.
  /// O(||Π|| log ||Π||); needed only for partitions built from explicit
  /// classes — FromColumn/WholeRelation/Product output is already
  /// canonical.
  void Normalize();

  /// True iff the partition is in canonical normal form.
  bool IsCanonical() const;

  int64_t num_classes() const {
    return class_offsets_.empty()
               ? 0
               : static_cast<int64_t>(class_offsets_.size()) - 1;
  }

  /// The i-th equivalence class as a span over the row-id arena.
  ClassSpan cls(int64_t i) const {
    const size_t lo = static_cast<size_t>(class_offsets_[static_cast<size_t>(i)]);
    const size_t hi =
        static_cast<size_t>(class_offsets_[static_cast<size_t>(i) + 1]);
    return ClassSpan(row_ids_.data() + lo, hi - lo);
  }

  /// Iterable view yielding every class as a ClassSpan (range-for).
  class ClassIterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = ClassSpan;
    using difference_type = std::ptrdiff_t;

    ClassIterator(const StrippedPartition* p, int64_t i) : p_(p), i_(i) {}
    ClassSpan operator*() const { return p_->cls(i_); }
    ClassIterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const ClassIterator& o) const { return i_ == o.i_; }
    bool operator!=(const ClassIterator& o) const { return i_ != o.i_; }

   private:
    const StrippedPartition* p_;
    int64_t i_;
  };

  class ClassRange {
   public:
    explicit ClassRange(const StrippedPartition* p) : p_(p) {}
    ClassIterator begin() const { return ClassIterator(p_, 0); }
    ClassIterator end() const { return ClassIterator(p_, p_->num_classes()); }
    bool empty() const { return p_->num_classes() == 0; }

   private:
    const StrippedPartition* p_;
  };

  ClassRange classes() const { return ClassRange(this); }

  /// The flat row-id arena (all classes back to back) and its offsets —
  /// the wire format for shipping a partition across shards.
  const std::vector<int32_t>& row_ids() const { return row_ids_; }
  const std::vector<int32_t>& class_offsets() const { return class_offsets_; }

  /// Appends the CSR wire encoding (little-endian, fixed width) to `out`:
  /// u64 class count, u64 covered-row count, the class_offsets array,
  /// then the row_ids arena. Because every materialized partition is
  /// canonical, the encoding — like the partition value itself — is a
  /// pure function of the attribute set, so shards can compare or hash
  /// shipped partitions byte-wise.
  void SerializeTo(std::vector<uint8_t>* out) const;
  std::vector<uint8_t> Serialize() const {
    std::vector<uint8_t> out;
    SerializeTo(&out);
    return out;
  }

  /// Parses one partition from the front of [data, data + size) as
  /// written by SerializeTo. Rejects (ParseError) truncated buffers and
  /// any structurally invalid payload: offsets that do not start at 0 or
  /// do not ascend by at least 2 (stripped classes have >= 2 rows), row
  /// ids outside [0, num_rows), rows appearing in more than one class,
  /// and partitions not in canonical normal form — a decoded partition
  /// must uphold exactly the invariants a locally materialized one does,
  /// or the cross-shard determinism contract dies silently.
  /// On success `*consumed` (optional) receives the bytes read.
  static Result<StrippedPartition> Deserialize(const uint8_t* data,
                                               size_t size, int64_t num_rows,
                                               size_t* consumed = nullptr);

  /// Sum of class sizes (rows covered by non-singleton classes). Also the
  /// planner's derivation-cost proxy: one Product pass scans exactly the
  /// covered rows of each operand (the left side once, the right side
  /// twice), so rows_covered predicts what extending this partition by
  /// one more attribute costs.
  int64_t rows_covered() const { return rows_covered_; }

  /// TANE's e(Π) = ||Π|| - |Π|: the number of tuples that must change for
  /// the partition to become a set of singletons; equal partitions on X
  /// and X∪{A} (same error) certify the exact FD/OFD X: [] -> A.
  int64_t error() const { return rows_covered_ - num_classes(); }

  /// Exact heap + object footprint in bytes (feeds the cache's
  /// bytes_resident() accounting).
  int64_t bytes() const {
    return static_cast<int64_t>(sizeof(StrippedPartition)) +
           static_cast<int64_t>(row_ids_.capacity() * sizeof(int32_t)) +
           static_cast<int64_t>(class_offsets_.capacity() * sizeof(int32_t));
  }

  /// "{{0,3},{1,2,4}}" for debugging and tests.
  std::string ToString() const;

 private:
  /// Row ids of all classes, concatenated in class order.
  std::vector<int32_t> row_ids_;
  /// class i occupies row_ids_[class_offsets_[i] .. class_offsets_[i+1]).
  /// Empty (not {0}) when the partition has no classes. int32 suffices:
  /// offsets are bounded by rows_covered <= num_rows < 2^31 (row ids are
  /// int32 themselves).
  std::vector<int32_t> class_offsets_;
  int64_t rows_covered_ = 0;
};

}  // namespace aod

#endif  // AOD_PARTITION_STRIPPED_PARTITION_H_
