// Stripped partitions (TANE [3], reused by FASTOD [9]).
//
// A partition Π_X groups tuples by equality on the attribute set X
// (paper Def. 2.8). The *stripped* form drops singleton classes: a class
// of one tuple can contribute neither a swap (Def. 2.5) nor a split
// (Def. 2.6), so every validator in this library is correct on the
// stripped form while the representation shrinks dramatically as contexts
// grow (at deep lattice levels almost all classes are singletons).
#ifndef AOD_PARTITION_STRIPPED_PARTITION_H_
#define AOD_PARTITION_STRIPPED_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/encoder.h"

namespace aod {

/// Scratch buffers reused across partition products; one per discovery run.
/// Reusing the tuple->class translation table avoids an O(n) allocation
/// per lattice node.
class PartitionScratch {
 public:
  explicit PartitionScratch(int64_t num_rows)
      : class_of_(static_cast<size_t>(num_rows), -1) {}

  std::vector<int32_t>& class_of() { return class_of_; }

 private:
  std::vector<int32_t> class_of_;
};

/// A stripped partition: equivalence classes of row ids, each of size >= 2.
class StrippedPartition {
 public:
  StrippedPartition() = default;

  /// Partition by a single attribute, O(n).
  static StrippedPartition FromColumn(const EncodedColumn& column);

  /// Π over the empty attribute set: one class holding every tuple
  /// (stripped away entirely when the table has fewer than 2 rows).
  static StrippedPartition WholeRelation(int64_t num_rows);

  /// Builds directly from explicit classes (tests). Classes of size < 2
  /// are stripped; row ids within a class are kept in the given order.
  static StrippedPartition FromClasses(std::vector<std::vector<int32_t>> classes);

  /// Stripped product Π_self · Π_other = Π over the union of the two
  /// attribute sets. O(||self|| + ||other||) with the probe-table
  /// algorithm of TANE. `num_rows` is the table size; `scratch` may be
  /// nullptr (a temporary table is allocated).
  StrippedPartition Product(const StrippedPartition& other, int64_t num_rows,
                            PartitionScratch* scratch = nullptr) const;

  int64_t num_classes() const { return static_cast<int64_t>(classes_.size()); }
  const std::vector<std::vector<int32_t>>& classes() const { return classes_; }

  /// Sum of class sizes (rows covered by non-singleton classes).
  int64_t rows_covered() const { return rows_covered_; }

  /// TANE's e(Π) = ||Π|| - |Π|: the number of tuples that must change for
  /// the partition to become a set of singletons; equal partitions on X
  /// and X∪{A} (same error) certify the exact FD/OFD X: [] -> A.
  int64_t error() const { return rows_covered_ - num_classes(); }

  /// "{{0,3},{1,2,4}}" for debugging and tests.
  std::string ToString() const;

 private:
  std::vector<std::vector<int32_t>> classes_;
  int64_t rows_covered_ = 0;
};

}  // namespace aod

#endif  // AOD_PARTITION_STRIPPED_PARTITION_H_
