// Memoizing provider of stripped partitions keyed by attribute set.
//
// The discovery framework asks for Π_X for many overlapping contexts X.
// The cache materializes level-1 partitions once, derives larger ones via
// stripped products of cached subsets, and evicts derived partitions
// against a byte budget, re-deriving on demand.
//
// Derivation is *planned*, not fixed. Because every partition value is in
// canonical normal form (see StrippedPartition), Π_X has the same bytes
// no matter which subset chain produced it, so the cache is free to pick
// the cheapest one: PlanDerivation chooses, among the subsets published
// to its cost catalog, the base partition minimizing the estimated
// product cost (rows_covered as the proxy — one product scans the left
// operand once and the right operand twice), then extends it with the
// remaining single-attribute partitions in ascending order. The catalog
// is updated only at deterministic points (the driver publishes each
// completed level's survivors between phases), so plans — and therefore
// the product counter — are identical for any thread count. With the
// planner disabled, the legacy fixed rule Π_X = Π_{X\{max(X)}} ·
// Π_{{max(X)}} applies, executed by an explicit worklist (no recursion,
// so deep attribute sets cannot grow the stack).
//
// Concurrency. Get() is safe to call from any number of threads — the
// driver materializes partitions on the thread pool. The key space is
// striped over independently locked shards, and each key is computed
// exactly once: the first requester installs a shared_future and computes
// outside the shard lock, later requesters block on the future. Catalog
// mutation (PublishCost, eviction) must not run concurrently with
// planner-consulting Gets; the driver calls both only between phases.
// Eviction additionally requires all futures resolved.
#ifndef AOD_PARTITION_PARTITION_CACHE_H_
#define AOD_PARTITION_PARTITION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/encoder.h"
#include "partition/attribute_set.h"
#include "partition/stripped_partition.h"

namespace aod {

/// A derivation recipe for one requested partition: start from the cached
/// Π_base and product with the single-attribute partitions of `singles`
/// in ascending order. Produced by PartitionCache::PlanDerivation; the
/// driver precomputes plans on its own thread (against a stable catalog)
/// and hands them to prefetch tasks.
struct DerivationPlan {
  AttributeSet base;
  std::vector<int> singles;
  /// Estimated cost in scanned rows: |singles| * cost(base) +
  /// 2 * sum(cost(single)). Recorded against realized cost in stats.
  int64_t estimated_cost = 0;
};

class PartitionCache {
 public:
  /// Tag selecting wire-seeded construction: see the deferring ctor.
  struct DeferBasePartitions {};

  explicit PartitionCache(const EncodedTable* table);

  /// Constructs a cache whose single-attribute partitions are NOT built
  /// from the table: only Π_∅ is preloaded, and every Π_{a} must arrive
  /// via Preload (e.g. decoded off the shard wire) before the first Get
  /// that needs it. This is what makes shipped base partitions
  /// load-bearing for a shard runner instead of redundant recomputation.
  PartitionCache(const EncodedTable* table, DeferBasePartitions);

  /// Installs an externally produced partition (wire-decoded, typically)
  /// as the resident value for `set`, replacing any existing entry. The
  /// value must be in canonical normal form — every consumer relies on
  /// the canonical-value contract (the wire decoder enforces this).
  /// Single-attribute installs also seed the planner's single-cost table
  /// and catalog. Must not run concurrently with Get.
  void Preload(AttributeSet set, StrippedPartition partition);

  /// Returns Π_X, computing and memoizing it if absent. Thread-safe;
  /// concurrent requests for the same key compute it once and share the
  /// result. A miss derives via the cost-based planner (or the fixed rule
  /// when the planner is disabled).
  std::shared_ptr<const StrippedPartition> Get(AttributeSet set);

  /// Get with a precomputed derivation plan, used by the driver's
  /// prefetch tasks: on a miss `plan` is executed as-is instead of
  /// consulting the catalog, so in-flight tasks never read planner state
  /// the driver may be about to update. A null plan falls back to Get().
  std::shared_ptr<const StrippedPartition> Get(AttributeSet set,
                                               const DerivationPlan* plan);

  /// True if Π_X is currently materialized (a key mid-computation by
  /// another thread does not count yet). Thread-safe.
  bool Contains(AttributeSet set) const;

  /// Chooses the cheapest derivation of Π_X from the cost catalog:
  /// minimize estimated cost, tie-broken by larger base (fewer products)
  /// then smaller bit pattern — a pure function of (X, catalog), so plans
  /// are deterministic. Single-attribute costs are always available; the
  /// returned base is resident by the catalog invariant.
  DerivationPlan PlanDerivation(AttributeSet set) const;

  /// Publishes Π_X's realized cost (rows_covered) to the planner catalog,
  /// materializing Π_X first if needed. The driver calls this for each
  /// completed level's survivors between phases — the only point catalog
  /// contents change outside eviction, which keeps plans deterministic.
  void PublishCost(AttributeSet set);

  /// Whether Get() misses derive via PlanDerivation (default) or the
  /// fixed structural rule Π_X = Π_{X\{max}} · Π_{{max}}.
  void set_planner_enabled(bool enabled) { planner_enabled_ = enabled; }
  bool planner_enabled() const { return planner_enabled_; }

  /// Evicts derived partitions (set size >= 2) until bytes_resident()
  /// fits `budget_bytes`, coldest first in deterministic (level
  /// ascending, bytes descending, bit pattern ascending) order — during
  /// the level-wise traversal, partitions below the two most recent
  /// levels are never needed as contexts again, so ascending level order
  /// reaches still-live levels only under budgets tight enough that
  /// re-deriving them on demand is the intended trade. Level-0/1 partitions are never evicted
  /// (they are the O(n·k) base data everything else derives from), so the
  /// floor is the base footprint. Evicted keys leave the catalog; a later
  /// Get re-derives through the planner. budget_bytes <= 0 means
  /// unlimited (no-op). Must not run concurrently with Get. Returns the
  /// exact number of bytes released.
  int64_t EnforceBudget(int64_t budget_bytes);

  /// Drops every cached partition over sets of size in (1, below); the
  /// empty-set and single-attribute partitions are retained permanently.
  /// Must not run concurrently with Get. Returns the exact number of
  /// bytes released (per StrippedPartition::bytes()). The driver now
  /// manages memory through EnforceBudget; this level-based form remains
  /// for embedders running their own level-wise traversals (and the
  /// tests that pin its semantics) — both paths maintain the same
  /// catalog/byte/eviction bookkeeping.
  int64_t EvictSmallerThan(int below);

  /// Exact bytes held by all materialized partitions (CSR payload +
  /// object headers, per StrippedPartition::bytes()). Entries still being
  /// computed by another thread are counted once they resolve. Feeds the
  /// driver's memory stats and eviction decisions.
  int64_t bytes_resident() const {
    return bytes_resident_.load(std::memory_order_relaxed);
  }

  /// Number of stripped products performed (for DiscoveryStats). Plans
  /// and the per-key memoization are deterministic, so the counter is
  /// identical for any thread count — but a planned derivation may take
  /// several products for one key (base + each remaining single).
  int64_t products_computed() const {
    return products_computed_.load(std::memory_order_relaxed);
  }
  /// Keys derived by executing a cost-based plan (vs the fixed rule).
  int64_t planner_derivations() const {
    return planner_derivations_.load(std::memory_order_relaxed);
  }
  /// Summed estimated cost of executed plans, in scanned rows.
  int64_t planner_cost_estimated() const {
    return planner_cost_estimated_.load(std::memory_order_relaxed);
  }
  /// Summed realized cost of executed plans (actual rows scanned by their
  /// products), comparable against planner_cost_estimated().
  int64_t planner_cost_realized() const {
    return planner_cost_realized_.load(std::memory_order_relaxed);
  }
  /// Partitions dropped by EnforceBudget/EvictSmallerThan.
  int64_t partitions_evicted() const {
    return partitions_evicted_.load(std::memory_order_relaxed);
  }
  /// Number of partitions currently materialized.
  int64_t cached_count() const;

 private:
  using PartitionPtr = std::shared_ptr<const StrippedPartition>;
  using PartitionFuture = std::shared_future<PartitionPtr>;

  /// Keys are spread over independently locked shards; striping keeps
  /// same-level materializations (distinct keys) from serializing on one
  /// map lock while same-key requests still rendezvous.
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<AttributeSet, PartitionFuture, AttributeSetHash> map;
  };
  static constexpr size_t kShardCount = 16;

  Shard& ShardFor(AttributeSet set) {
    return shards_[AttributeSetHash{}(set) % kShardCount];
  }
  const Shard& ShardFor(AttributeSet set) const {
    return shards_[AttributeSetHash{}(set) % kShardCount];
  }

  /// Installs an already-resolved entry (constructor preloads).
  void PutReady(AttributeSet set, PartitionPtr value);

  /// Executes `plan` for `set`: product the base with each remaining
  /// single, counting estimated vs realized cost.
  PartitionPtr ExecutePlan(AttributeSet set, const DerivationPlan& plan);

  /// Fixed-rule derivation via an explicit worklist: walks X ⊃ X\{max} ⊃
  /// ... down to the first cached subset, claiming each missing
  /// intermediate's future, then derives back up — one product per
  /// claimed key, constant stack depth regardless of |X|.
  PartitionPtr ComputeFixed(AttributeSet set);

  /// Scratch buffers are pooled: a computing thread borrows one for the
  /// duration of a derivation, so steady-state materialization allocates
  /// no translation tables regardless of worker count.
  std::unique_ptr<PartitionScratch> AcquireScratch();
  void ReleaseScratch(std::unique_ptr<PartitionScratch> scratch);

  const EncodedTable* table_;
  Shard shards_[kShardCount];
  bool planner_enabled_ = true;
  std::atomic<int64_t> products_computed_{0};
  std::atomic<int64_t> planner_derivations_{0};
  std::atomic<int64_t> planner_cost_estimated_{0};
  std::atomic<int64_t> planner_cost_realized_{0};
  std::atomic<int64_t> partitions_evicted_{0};
  /// Sum of bytes() over resolved entries; incremented when a value is
  /// installed, decremented on eviction (eviction runs between phases,
  /// when every future is resolved).
  std::atomic<int64_t> bytes_resident_{0};

  /// Planner cost catalog: resident keys the planner may pick as a
  /// derivation base, with their rows_covered cost. Seeded with the
  /// single-attribute partitions; grown only through PublishCost and
  /// shrunk only by eviction, both driver-called between phases.
  mutable std::mutex catalog_mutex_;
  std::unordered_map<AttributeSet, int64_t, AttributeSetHash> catalog_;
  /// Single-attribute costs, indexed by attribute (always available).
  std::vector<int64_t> single_cost_;

  std::mutex scratch_mutex_;
  std::vector<std::unique_ptr<PartitionScratch>> free_scratch_;
};

}  // namespace aod

#endif  // AOD_PARTITION_PARTITION_CACHE_H_
