// Memoizing provider of stripped partitions keyed by attribute set.
//
// The discovery framework asks for Π_X for many overlapping contexts X.
// The cache materializes level-1 partitions once, derives larger ones via
// stripped products of cached subsets, and supports level-based eviction
// matching the level-wise traversal (only the two most recent completed
// levels are ever needed as contexts).
#ifndef AOD_PARTITION_PARTITION_CACHE_H_
#define AOD_PARTITION_PARTITION_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "data/encoder.h"
#include "partition/attribute_set.h"
#include "partition/stripped_partition.h"

namespace aod {

class PartitionCache {
 public:
  explicit PartitionCache(const EncodedTable* table);

  /// Returns Π_X, computing and memoizing it if absent. Derivation picks
  /// the largest cached subset and extends it one attribute at a time, so
  /// during level-wise discovery each request costs at most one product.
  std::shared_ptr<const StrippedPartition> Get(AttributeSet set);

  /// True if Π_X is currently materialized.
  bool Contains(AttributeSet set) const;

  /// Drops every cached partition over sets of size in (1, below); the
  /// empty-set and single-attribute partitions are retained permanently
  /// (they are the O(n·k) base data everything else derives from).
  void EvictSmallerThan(int below);

  /// Number of stripped products performed (for DiscoveryStats).
  int64_t products_computed() const { return products_computed_; }
  /// Number of partitions currently materialized.
  int64_t cached_count() const { return static_cast<int64_t>(cache_.size()); }

 private:
  const EncodedTable* table_;
  PartitionScratch scratch_;
  std::unordered_map<AttributeSet, std::shared_ptr<const StrippedPartition>,
                     AttributeSetHash>
      cache_;
  int64_t products_computed_ = 0;
};

}  // namespace aod

#endif  // AOD_PARTITION_PARTITION_CACHE_H_
