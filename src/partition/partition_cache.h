// Memoizing provider of stripped partitions keyed by attribute set.
//
// The discovery framework asks for Π_X for many overlapping contexts X.
// The cache materializes level-1 partitions once, derives larger ones via
// stripped products of cached subsets, and supports level-based eviction
// matching the level-wise traversal (only the two most recent completed
// levels are ever needed as contexts).
//
// Concurrency. Get() is safe to call from any number of threads — the
// driver materializes a whole lattice level's partitions on the thread
// pool. The key space is striped over independently locked shards, and
// each key is computed exactly once: the first requester installs a
// shared_future and computes outside the shard lock, later requesters
// block on the future. Derivation follows a fixed structural rule,
// Π_X = Π_{X \ {max(X)}} · Π_{{max(X)}}, so the *value* of every cached
// partition (class order included) is independent of which thread
// computed it first — the foundation of the driver's determinism
// contract (see ARCHITECTURE.md). Eviction is not safe concurrently with
// Get; the driver calls it only between phases.
#ifndef AOD_PARTITION_PARTITION_CACHE_H_
#define AOD_PARTITION_PARTITION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/encoder.h"
#include "partition/attribute_set.h"
#include "partition/stripped_partition.h"

namespace aod {

class PartitionCache {
 public:
  explicit PartitionCache(const EncodedTable* table);

  /// Returns Π_X, computing and memoizing it if absent. Thread-safe;
  /// concurrent requests for the same key compute it once and share the
  /// result. During level-wise discovery each request costs at most one
  /// product because Π_{X\{max}} is always cached one level below.
  std::shared_ptr<const StrippedPartition> Get(AttributeSet set);

  /// True if Π_X is currently materialized (a key mid-computation by
  /// another thread does not count yet). Thread-safe.
  bool Contains(AttributeSet set) const;

  /// Drops every cached partition over sets of size in (1, below); the
  /// empty-set and single-attribute partitions are retained permanently
  /// (they are the O(n·k) base data everything else derives from). Must
  /// not run concurrently with Get. Returns the exact number of bytes
  /// released (per StrippedPartition::bytes()).
  int64_t EvictSmallerThan(int below);

  /// Exact bytes held by all materialized partitions (CSR payload +
  /// object headers, per StrippedPartition::bytes()). Entries still being
  /// computed by another thread are counted once they resolve. Feeds the
  /// driver's memory stats and eviction decisions.
  int64_t bytes_resident() const {
    return bytes_resident_.load(std::memory_order_relaxed);
  }

  /// Number of stripped products performed (for DiscoveryStats). Exactly
  /// one per distinct derived key thanks to once-per-key memoization, so
  /// the counter is identical for any thread count.
  int64_t products_computed() const {
    return products_computed_.load(std::memory_order_relaxed);
  }
  /// Number of partitions currently materialized.
  int64_t cached_count() const;

 private:
  using PartitionPtr = std::shared_ptr<const StrippedPartition>;
  using PartitionFuture = std::shared_future<PartitionPtr>;

  /// Keys are spread over independently locked shards; striping keeps
  /// same-level materializations (distinct keys) from serializing on one
  /// map lock while same-key requests still rendezvous.
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<AttributeSet, PartitionFuture, AttributeSetHash> map;
  };
  static constexpr size_t kShardCount = 16;

  Shard& ShardFor(AttributeSet set) {
    return shards_[AttributeSetHash{}(set) % kShardCount];
  }
  const Shard& ShardFor(AttributeSet set) const {
    return shards_[AttributeSetHash{}(set) % kShardCount];
  }

  /// Installs an already-resolved entry (constructor preloads).
  void PutReady(AttributeSet set, PartitionPtr value);

  /// Derives Π_set by the fixed rule; `set` has size >= 2.
  PartitionPtr Compute(AttributeSet set);

  /// Scratch buffers are pooled: a computing thread borrows one for the
  /// duration of a product, so steady-state materialization allocates no
  /// translation tables regardless of worker count.
  std::unique_ptr<PartitionScratch> AcquireScratch();
  void ReleaseScratch(std::unique_ptr<PartitionScratch> scratch);

  const EncodedTable* table_;
  Shard shards_[kShardCount];
  std::atomic<int64_t> products_computed_{0};
  /// Sum of bytes() over resolved entries; incremented when a value is
  /// installed, decremented on eviction (eviction runs between phases,
  /// when every future is resolved).
  std::atomic<int64_t> bytes_resident_{0};

  std::mutex scratch_mutex_;
  std::vector<std::unique_ptr<PartitionScratch>> free_scratch_;
};

}  // namespace aod

#endif  // AOD_PARTITION_PARTITION_CACHE_H_
