#include "partition/attribute_set.h"

namespace aod {

std::vector<int> AttributeSet::ToVector() const {
  std::vector<int> out;
  out.reserve(static_cast<size_t>(size()));
  ForEach([&out](int a) { out.push_back(a); });
  return out;
}

std::string AttributeSet::ToString(
    const std::function<std::string(int)>& name_of) const {
  std::string out = "{";
  bool first = true;
  ForEach([&](int a) {
    if (!first) out += ", ";
    out += name_of(a);
    first = false;
  });
  out += "}";
  return out;
}

std::string AttributeSet::ToString() const {
  return ToString([](int a) { return std::to_string(a); });
}

}  // namespace aod
