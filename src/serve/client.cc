#include "serve/client.h"

#include <utility>

#include "od/result_io.h"
#include "shard/wire.h"

namespace aod {
namespace serve {

using shard::DecodedFrame;
using shard::FrameType;

DiscoveryClient::DiscoveryClient(
    std::unique_ptr<shard::SocketShardChannel> channel)
    : channel_(std::move(channel)), receiver_(channel_.get()) {}

Result<std::unique_ptr<DiscoveryClient>> DiscoveryClient::Connect(
    const std::string& host, uint16_t port, const Options& options) {
  shard::ChannelOptions copts;
  copts.max_frame_bytes = options.max_frame_bytes;
  copts.receive_timeout_seconds = options.io_timeout_seconds;
  AOD_ASSIGN_OR_RETURN(
      std::unique_ptr<shard::SocketShardChannel> channel,
      shard::SocketShardChannel::Connect(host, port,
                                         options.connect_timeout_seconds,
                                         copts));
  return std::unique_ptr<DiscoveryClient>(
      new DiscoveryClient(std::move(channel)));
}

Result<std::vector<uint8_t>> DiscoveryClient::NextFrame() {
  return receiver_.Receive();
}

Result<uint64_t> DiscoveryClient::Submit(const EncodedTable& table,
                                         const DiscoveryOptions& options,
                                         double deadline_seconds) {
  WireJobSubmit submit;
  submit.request_id = next_request_id_++;
  submit.options = WireJobOptionsFrom(options);
  submit.options.deadline_seconds = deadline_seconds;
  submit.table_frame = shard::EncodeTableBlock(table);
  AOD_RETURN_NOT_OK(channel_->Send(EncodeJobSubmit(submit)));

  // The ack (or rejection) for this request_id; frames belonging to
  // jobs already in flight are folded into their own buffers.
  for (;;) {
    AOD_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, NextFrame());
    AOD_ASSIGN_OR_RETURN(DecodedFrame frame, shard::DecodeFrame(raw));
    switch (frame.type) {
      case FrameType::kJobStatus: {
        AOD_ASSIGN_OR_RETURN(WireJobStatus status, DecodeJobStatus(frame));
        if (status.request_id == submit.request_id) return status.job_id;
        break;  // progress of another job; droppable here
      }
      case FrameType::kJobError: {
        AOD_ASSIGN_OR_RETURN(WireJobError error, DecodeJobError(frame));
        if (error.request_id == submit.request_id || error.job_id == 0) {
          return error.status;
        }
        break;
      }
      case FrameType::kJobResultBatch: {
        AOD_ASSIGN_OR_RETURN(WireJobResultChunk chunk,
                             DecodeJobResultChunk(frame));
        auto& blob = partial_[chunk.job_id];
        blob.insert(blob.end(), chunk.blob_bytes.begin(),
                    chunk.blob_bytes.end());
        if (chunk.final_chunk) {
          AOD_ASSIGN_OR_RETURN(DiscoveryResult result,
                               DeserializeResult(blob));
          partial_.erase(chunk.job_id);
          done_.emplace(chunk.job_id, std::move(result));
        }
        break;
      }
      default:
        return Status::ParseError("unexpected frame type from server");
    }
  }
}

Result<DiscoveryResult> DiscoveryClient::Await(
    uint64_t job_id, std::function<void(const WireJobStatus&)> progress) {
  for (;;) {
    auto it = done_.find(job_id);
    if (it != done_.end()) {
      DiscoveryResult result = std::move(it->second);
      done_.erase(it);
      return result;
    }
    AOD_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, NextFrame());
    AOD_ASSIGN_OR_RETURN(DecodedFrame frame, shard::DecodeFrame(raw));
    switch (frame.type) {
      case FrameType::kJobStatus: {
        AOD_ASSIGN_OR_RETURN(WireJobStatus status, DecodeJobStatus(frame));
        if (status.job_id == job_id && progress) progress(status);
        break;
      }
      case FrameType::kJobError: {
        AOD_ASSIGN_OR_RETURN(WireJobError error, DecodeJobError(frame));
        if (error.job_id == job_id || error.job_id == 0) {
          return error.status;
        }
        break;
      }
      case FrameType::kJobResultBatch: {
        AOD_ASSIGN_OR_RETURN(WireJobResultChunk chunk,
                             DecodeJobResultChunk(frame));
        auto& blob = partial_[chunk.job_id];
        blob.insert(blob.end(), chunk.blob_bytes.begin(),
                    chunk.blob_bytes.end());
        if (chunk.final_chunk) {
          AOD_ASSIGN_OR_RETURN(DiscoveryResult result,
                               DeserializeResult(blob));
          partial_.erase(chunk.job_id);
          done_.emplace(chunk.job_id, std::move(result));
        }
        break;
      }
      default:
        return Status::ParseError("unexpected frame type from server");
    }
  }
}

Status DiscoveryClient::Cancel(uint64_t job_id) {
  return channel_->Send(EncodeCancel(job_id));
}

Result<WireJobStatus> DiscoveryClient::Query(uint64_t job_id) {
  WireJobStatus query;
  query.job_id = job_id;
  AOD_RETURN_NOT_OK(channel_->Send(EncodeJobStatus(query)));
  for (;;) {
    AOD_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, NextFrame());
    AOD_ASSIGN_OR_RETURN(DecodedFrame frame, shard::DecodeFrame(raw));
    switch (frame.type) {
      case FrameType::kJobStatus: {
        AOD_ASSIGN_OR_RETURN(WireJobStatus status, DecodeJobStatus(frame));
        if (status.job_id == job_id) return status;
        break;
      }
      case FrameType::kJobError: {
        AOD_ASSIGN_OR_RETURN(WireJobError error, DecodeJobError(frame));
        if (error.job_id == job_id || error.job_id == 0) {
          return error.status;
        }
        break;
      }
      case FrameType::kJobResultBatch: {
        AOD_ASSIGN_OR_RETURN(WireJobResultChunk chunk,
                             DecodeJobResultChunk(frame));
        auto& blob = partial_[chunk.job_id];
        blob.insert(blob.end(), chunk.blob_bytes.begin(),
                    chunk.blob_bytes.end());
        if (chunk.final_chunk) {
          AOD_ASSIGN_OR_RETURN(DiscoveryResult result,
                               DeserializeResult(blob));
          partial_.erase(chunk.job_id);
          done_.emplace(chunk.job_id, std::move(result));
        }
        break;
      }
      default:
        return Status::ParseError("unexpected frame type from server");
    }
  }
}

Result<DiscoveryResult> RunRemoteDiscovery(
    const std::string& host, uint16_t port, const EncodedTable& table,
    const DiscoveryOptions& options, double deadline_seconds,
    const DiscoveryClient::Options& client_options) {
  AOD_ASSIGN_OR_RETURN(std::unique_ptr<DiscoveryClient> client,
                       DiscoveryClient::Connect(host, port, client_options));
  AOD_ASSIGN_OR_RETURN(uint64_t job_id,
                       client->Submit(table, options, deadline_seconds));
  return client->Await(job_id);
}

}  // namespace serve
}  // namespace aod
