#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/stopwatch.h"
#include "od/result_io.h"
#include "serve/serve_wire.h"
#include "shard/wire.h"

namespace aod {
namespace serve {

using shard::DecodedFrame;
using shard::FrameType;

namespace {

/// Result blobs stream in slices of this size — small enough that a
/// slow reader's backlog bound engages per chunk, large enough that
/// framing overhead is noise.
constexpr size_t kResultChunkBytes = 256 * 1024;

/// One-shot gate: executor callbacks for a job wait until the reader
/// thread has sent the submission ack, so a client never sees progress
/// or result frames for a job id it has not been told about yet.
class AckGate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

}  // namespace

DiscoveryServer::DiscoveryServer(const ServerOptions& options)
    : options_(options), tables_(options.table_cache_capacity) {}

Result<std::unique_ptr<DiscoveryServer>> DiscoveryServer::Start(
    const ServerOptions& options) {
  std::unique_ptr<DiscoveryServer> server(new DiscoveryServer(options));
  AOD_ASSIGN_OR_RETURN(server->listener_,
                       shard::SocketListener::Bind(options.port));
  server->port_ = server->listener_->port();
  server->pool_ = std::make_unique<exec::ThreadPool>(options.num_threads);
  JobScheduler::Options sched;
  sched.max_queue_depth = options.max_queue_depth;
  sched.max_running_jobs = options.max_running_jobs;
  sched.max_inflight_per_client = options.max_inflight_per_client;
  sched.max_job_seconds = options.max_job_seconds;
  sched.pool = server->pool_.get();
  server->scheduler_ = std::make_unique<JobScheduler>(sched);
  server->acceptor_ = std::thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

DiscoveryServer::~DiscoveryServer() { Shutdown(); }

void DiscoveryServer::RequestDrain() {
  scheduler_->RequestDrain();
}

void DiscoveryServer::Shutdown() {
  if (shut_down_.exchange(true)) return;
  // Order matters: stop taking connections, let admitted jobs finish
  // and deliver over still-open connections, then tear the connections
  // down and join every thread.
  stop_accepting_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  scheduler_->Shutdown();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conns.swap(connections_);
  }
  for (const auto& conn : conns) {
    conn->alive.store(false, std::memory_order_release);
    conn->channel->Close();
  }
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

int DiscoveryServer::active_connections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int live = 0;
  for (const auto& conn : connections_) {
    if (conn->alive.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

ServerStats DiscoveryServer::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.connections_accepted = connections_accepted_;
    s.connections_refused = connections_refused_;
    s.connections_dropped = connections_dropped_;
    s.frames_rejected = frames_rejected_;
  }
  s.jobs_admitted = scheduler_->jobs_admitted();
  s.jobs_rejected = scheduler_->jobs_rejected();
  s.table_cache_hits = tables_.hits();
  s.table_cache_misses = tables_.misses();
  return s;
}

void DiscoveryServer::AcceptLoop() {
  while (!stop_accepting_.load(std::memory_order_acquire)) {
    Result<int> fd = listener_->AcceptFd(/*timeout_seconds=*/0.1);
    if (!fd.ok()) continue;  // timeout tick; re-check the stop flag
    ReapFinishedReaders();
    shard::ChannelOptions copts;
    copts.max_frame_bytes = options_.max_frame_bytes;
    copts.receive_timeout_seconds = options_.idle_timeout_seconds;
    auto channel = shard::SocketShardChannel::Adopt(*fd, copts);
    bool refuse = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (static_cast<int>(connections_.size()) >= options_.max_connections) {
        refuse = true;
        ++connections_refused_;
      }
    }
    if (refuse || stop_accepting_.load(std::memory_order_acquire)) {
      // Typed refusal so the client can back off instead of guessing
      // from a bare RST.
      WireJobError error;
      error.status = refuse ? Status::Overloaded("connection limit reached")
                            : Status::ShuttingDown("server is exiting");
      (void)channel->Send(EncodeJobError(error));
      channel->Close();
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->channel = std::move(channel);
    conn->receiver =
        std::make_unique<shard::LogicalFrameReceiver>(conn->channel.get());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      conn->client_id = next_client_id_++;
      ++connections_accepted_;
      connections_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }
}

void DiscoveryServer::ReapFinishedReaders() {
  std::vector<std::shared_ptr<Connection>> done;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->reader_done.load(std::memory_order_acquire)) {
        done.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : done) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

void DiscoveryServer::ReaderLoop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Result<std::vector<uint8_t>> raw = conn->receiver->Receive();
    if (!raw.ok()) {
      // kClosed: orderly disconnect. kIoError: vanished client (crash,
      // kill -9, cut) or idle timeout. kParseError: garbage byte stream
      // (bad magic/checksum/oversize). All end only this connection.
      if (raw.status().code() == StatusCode::kParseError) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++frames_rejected_;
      }
      break;
    }
    const Status st = Dispatch(conn, *raw);
    if (!st.ok()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++frames_rejected_;
      }
      // Best-effort typed goodbye; the stream can no longer be trusted
      // (a desynced or hostile peer), so the connection ends here.
      WireJobError error;
      error.status = st;
      SendNow(conn, EncodeJobError(error));
      break;
    }
  }
  DropConnection(conn);
  conn->reader_done.store(true, std::memory_order_release);
}

Status DiscoveryServer::Dispatch(const std::shared_ptr<Connection>& conn,
                                 const std::vector<uint8_t>& raw) {
  AOD_ASSIGN_OR_RETURN(DecodedFrame frame, shard::DecodeFrame(raw));
  switch (frame.type) {
    case FrameType::kJobSubmit:
      return HandleSubmit(conn, frame);
    case FrameType::kJobStatus:
      return HandleStatusQuery(conn, frame);
    case FrameType::kCancel: {
      AOD_ASSIGN_OR_RETURN(uint64_t job_id, DecodeCancel(frame));
      // Cancelling a job that already finished (or never existed) is a
      // benign race, not a protocol violation.
      scheduler_->Cancel(job_id);
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("unexpected frame type on job stream");
  }
}

Status DiscoveryServer::HandleSubmit(const std::shared_ptr<Connection>& conn,
                                     const DecodedFrame& frame) {
  AOD_ASSIGN_OR_RETURN(WireJobSubmit submit, DecodeJobSubmit(frame));

  // The nested table frame is validated exactly like on the shard seam.
  AOD_ASSIGN_OR_RETURN(DecodedFrame table_frame,
                       shard::DecodeFrame(submit.table_frame.data(),
                                          submit.table_frame.size()));
  Result<EncodedTable> table = shard::DecodeTableBlock(table_frame);
  if (!table.ok()) return table.status();
  if (table->num_columns() == 0 || table->num_columns() > 64) {
    // Semantically invalid but well-formed: reject the job, keep the
    // connection (the client is speaking the protocol correctly).
    WireJobError error;
    error.request_id = submit.request_id;
    error.status = Status::InvalidArgument(
        "discovery needs 1..64 attributes, got " +
        std::to_string(table->num_columns()));
    SendNow(conn, EncodeJobError(error));
    return Status::OK();
  }

  auto job = std::make_shared<ServeJob>();
  job->request_id = submit.request_id;
  job->client_id = conn->client_id;
  job->table = tables_.Intern(std::move(table).value());
  job->options = ToDiscoveryOptions(submit.options);

  auto gate = std::make_shared<AckGate>();
  std::weak_ptr<Connection> weak = conn;
  DiscoveryServer* server = this;
  job->on_progress = [server, weak, gate](const ServeJob& j,
                                          const DiscoveryProgress& p) {
    gate->Wait();
    std::shared_ptr<Connection> c = weak.lock();
    if (c == nullptr || !c->alive.load(std::memory_order_acquire)) return;
    WireJobStatus status;
    status.job_id = j.id;
    status.state = JobState::kRunning;
    status.level = p.level;
    status.total_ocs = p.total_ocs;
    status.total_ofds = p.total_ofds;
    status.total_fds = p.total_fds;
    status.total_afds = p.total_afds;
    server->SendNow(c, EncodeJobStatus(status));
  };
  job->on_done = [server, conn, gate](const ServeJob& j,
                                      const DiscoveryResult& result) {
    gate->Wait();
    server->StreamResult(conn, j, result);
  };

  Result<uint64_t> admitted = scheduler_->Submit(job);
  if (!admitted.ok()) {
    WireJobError error;
    error.request_id = submit.request_id;
    error.status = admitted.status();
    SendNow(conn, EncodeJobError(error));
    gate->Open();
    return Status::OK();
  }
  WireJobStatus ack;
  ack.job_id = *admitted;
  ack.request_id = submit.request_id;
  ack.state = JobState::kQueued;
  ack.queue_position = scheduler_->QueuePosition(*admitted);
  SendNow(conn, EncodeJobStatus(ack));
  gate->Open();
  return Status::OK();
}

Status DiscoveryServer::HandleStatusQuery(
    const std::shared_ptr<Connection>& conn, const DecodedFrame& frame) {
  AOD_ASSIGN_OR_RETURN(WireJobStatus query, DecodeJobStatus(frame));
  std::shared_ptr<ServeJob> job = scheduler_->Find(query.job_id);
  if (job == nullptr) {
    WireJobError error;
    error.job_id = query.job_id;
    error.status = Status::NotFound("no live job with id " +
                                    std::to_string(query.job_id));
    SendNow(conn, EncodeJobError(error));
    return Status::OK();
  }
  WireJobStatus status;
  status.job_id = job->id;
  status.state = job->state.load(std::memory_order_acquire);
  status.queue_position = status.state == JobState::kQueued
                              ? scheduler_->QueuePosition(job->id)
                              : -1;
  status.level = job->level.load(std::memory_order_relaxed);
  status.total_ocs = job->total_ocs.load(std::memory_order_relaxed);
  status.total_ofds = job->total_ofds.load(std::memory_order_relaxed);
  status.total_fds = job->total_fds.load(std::memory_order_relaxed);
  status.total_afds = job->total_afds.load(std::memory_order_relaxed);
  SendNow(conn, EncodeJobStatus(status));
  return Status::OK();
}

void DiscoveryServer::SendNow(const std::shared_ptr<Connection>& conn,
                              std::vector<uint8_t> frame) {
  if (!conn->alive.load(std::memory_order_acquire)) return;
  // Small control frames skip the backpressure wait but still respect
  // the bound: past it the connection is already being punished by the
  // result path, and control frames would only deepen the backlog.
  if (conn->channel->send_backlog_bytes() >
      options_.max_send_backlog_bytes) {
    return;
  }
  std::lock_guard<std::mutex> lock(conn->send_mutex);
  (void)conn->channel->Send(std::move(frame));
}

Status DiscoveryServer::SendBounded(const std::shared_ptr<Connection>& conn,
                                    std::vector<uint8_t> frame) {
  Stopwatch stall;
  while (conn->channel->send_backlog_bytes() +
             static_cast<int64_t>(frame.size()) >
         options_.max_send_backlog_bytes) {
    if (!conn->alive.load(std::memory_order_acquire)) {
      return Status::Closed("connection gone");
    }
    if (stall.ElapsedSeconds() > options_.send_stall_seconds) {
      // The reader stopped reading: bound its cost. Dropping the
      // connection also cancels its other jobs via the usual path.
      DropConnection(conn);
      return Status::IoError("slow reader: send backlog bound exceeded");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (!conn->alive.load(std::memory_order_acquire)) {
    return Status::Closed("connection gone");
  }
  std::lock_guard<std::mutex> lock(conn->send_mutex);
  return conn->channel->Send(std::move(frame));
}

void DiscoveryServer::StreamResult(const std::shared_ptr<Connection>& conn,
                                   const ServeJob& job,
                                   const DiscoveryResult& result) {
  if (!conn->alive.load(std::memory_order_acquire)) return;
  const std::vector<uint8_t> blob = SerializeResult(result);
  size_t offset = 0;
  do {
    const size_t len = std::min(kResultChunkBytes, blob.size() - offset);
    WireJobResultChunk chunk;
    chunk.job_id = job.id;
    chunk.final_chunk = offset + len == blob.size();
    chunk.blob_bytes.assign(blob.begin() + offset,
                            blob.begin() + offset + len);
    offset += len;
    if (!SendBounded(conn, EncodeJobResultChunk(chunk)).ok()) return;
  } while (offset < blob.size());
}

void DiscoveryServer::DropConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->alive.exchange(false)) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++connections_dropped_;
    }
    // Cooperative cancel of everything this client had in flight; the
    // executor's terminal callbacks then find alive == false and stop.
    scheduler_->CancelClient(conn->client_id);
    conn->channel->Close();
  }
}

}  // namespace serve
}  // namespace aod
