// Client side of the discovery-as-a-service protocol.
//
// A DiscoveryClient owns one connection to a DiscoveryServer and speaks
// the serve frame vocabulary (serve_wire.h) over it. The API is
// deliberately synchronous — Submit blocks until the server's
// ack/rejection, Await blocks until the job's terminal result — because
// the server already multiplexes: a caller that wants concurrency opens
// several clients (or several jobs on one client and Awaits them in
// submission order; frames for different jobs interleave freely and the
// client demultiplexes by job id).
//
// Typed failure surface: Submit returns kOverloaded / kShuttingDown /
// kInvalidArgument exactly as the server rejected the job, so callers
// can branch (retry after backoff, fail over, fix the request). A job
// that was admitted always resolves through Await with a full
// DiscoveryResult — cancelled or deadline-hit jobs resolve with the
// corresponding flags set, not with an error.
#ifndef AOD_SERVE_CLIENT_H_
#define AOD_SERVE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "data/encoder.h"
#include "od/discovery.h"
#include "serve/serve_wire.h"
#include "shard/channel.h"

namespace aod {
namespace serve {

struct ClientOptions {
  double connect_timeout_seconds = 10.0;
  /// Bound on every receive while awaiting acks/results; must exceed
  /// the longest expected job (0 = wait forever).
  double io_timeout_seconds = 600.0;
  int64_t max_frame_bytes = 1LL << 30;
};

class DiscoveryClient {
 public:
  using Options = ClientOptions;

  static Result<std::unique_ptr<DiscoveryClient>> Connect(
      const std::string& host, uint16_t port, const Options& options = {});
  AOD_DISALLOW_COPY_AND_ASSIGN(DiscoveryClient);

  /// Ships the table + options and blocks until the server answers.
  /// Returns the job id, or the server's typed rejection. Only the
  /// serializable options subset travels (see WireJobOptions);
  /// `deadline_seconds` (0 = none) rides time_budget_seconds.
  Result<uint64_t> Submit(const EncodedTable& table,
                          const DiscoveryOptions& options,
                          double deadline_seconds = 0.0);

  /// Blocks until `job_id`'s terminal result, relaying any progress
  /// frames to `progress`. Result frames for *other* jobs arriving in
  /// between are buffered and served to their own Await.
  Result<DiscoveryResult> Await(
      uint64_t job_id,
      std::function<void(const WireJobStatus&)> progress = {});

  /// Requests cooperative cancellation; the job still resolves through
  /// Await (with cancelled set). Fire-and-forget on the wire.
  Status Cancel(uint64_t job_id);

  /// Sends a bare status query and returns the server's snapshot.
  Result<WireJobStatus> Query(uint64_t job_id);

 private:
  explicit DiscoveryClient(std::unique_ptr<shard::SocketShardChannel> channel);

  /// Receives one decoded frame, failing over the channel's errors.
  Result<std::vector<uint8_t>> NextFrame();

  std::unique_ptr<shard::SocketShardChannel> channel_;
  shard::LogicalFrameReceiver receiver_;
  uint64_t next_request_id_ = 1;
  /// Completed results that arrived while awaiting a different job.
  std::map<uint64_t, DiscoveryResult> done_;
  /// Partial blob accumulation per job.
  std::map<uint64_t, std::vector<uint8_t>> partial_;
};

/// One-call convenience: connect, submit, await, disconnect. What
/// `csv_discovery --server` uses.
Result<DiscoveryResult> RunRemoteDiscovery(
    const std::string& host, uint16_t port, const EncodedTable& table,
    const DiscoveryOptions& options, double deadline_seconds = 0.0,
    const DiscoveryClient::Options& client_options = {});

}  // namespace serve
}  // namespace aod

#endif  // AOD_SERVE_CLIENT_H_
