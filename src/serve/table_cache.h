// Cross-job warm state of the discovery server.
//
// Clients of a resident server tend to re-profile the same table (new
// epsilon, new arity bound, a cleaning iteration), and the cold half of
// a small-table run is dominated by work that depends only on the table:
// decoding the submitted kTableBlock and sorting every column into its
// single-attribute base partition. This cache interns tables by a
// content fingerprint so that state is built once and shared — a job on
// a known table skips the decode *and* starts with warm base partitions
// through DiscoveryOptions::warm_base_partitions.
//
// Sharing is safe because everything cached is immutable after
// construction: jobs read the EncodedTable concurrently (the driver
// never mutates it) and receive *copies* of the base partitions (the
// driver's cache mutates its own copy's bookkeeping). Warm starts
// cannot change discovery output: FromColumn is deterministic, so the
// cached bases are bit-identical to what the job would have built — the
// determinism contract is preserved by construction (and pinned by
// serve_fault_test's server-vs-direct equality).
#ifndef AOD_SERVE_TABLE_CACHE_H_
#define AOD_SERVE_TABLE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "data/encoder.h"
#include "partition/stripped_partition.h"

namespace aod {
namespace serve {

/// FNV-1a over the table's structural content: row count, column count,
/// and every column's name, cardinality and rank array. Dictionaries are
/// excluded on purpose — discovery is pure rank arithmetic, and tables
/// submitted through kTableBlock arrive without dictionaries anyway.
uint64_t TableFingerprint(const EncodedTable& table);

class TableCache {
 public:
  struct Entry {
    std::shared_ptr<const EncodedTable> table;
    /// Base partition per attribute, canonical (FromColumn) form.
    std::vector<std::shared_ptr<const StrippedPartition>> bases;
  };

  /// `capacity` bounds the number of resident tables; the least recently
  /// interned/hit entry is evicted beyond it (jobs still running on an
  /// evicted entry keep it alive through their shared_ptr).
  explicit TableCache(size_t capacity = 8) : capacity_(capacity) {}
  AOD_DISALLOW_COPY_AND_ASSIGN(TableCache);

  /// Returns the resident entry for a table with identical content, or
  /// builds (and caches) one from `table`. A fingerprint hit is verified
  /// against the actual rank content before reuse — a 64-bit collision
  /// must degrade to a duplicate entry, never to running a job against
  /// the wrong table.
  std::shared_ptr<const Entry> Intern(EncodedTable table);

  size_t size() const;
  int64_t hits() const;
  int64_t misses() const;

  /// Test seam: invoked (outside the lock) between the missed fast-path
  /// lookup and the re-check under the second lock — the window a racing
  /// Intern of the same table can win. Lets a single-threaded test drive
  /// the race-loss hit path deterministically (the hook interns the same
  /// table, so the re-check finds it). Set before any concurrent use;
  /// never fires for the hook's own (nested) call.
  void set_race_window_hook_for_test(std::function<void()> hook);

 private:
  static bool SameContent(const EncodedTable& a, const EncodedTable& b);

  const size_t capacity_;
  mutable std::mutex mutex_;
  /// Fingerprint -> entries (a bucket holds >1 only after a collision).
  std::unordered_map<uint64_t, std::vector<std::shared_ptr<const Entry>>>
      entries_;
  /// LRU order of (fingerprint, entry) for eviction.
  std::list<std::pair<uint64_t, const Entry*>> lru_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  std::function<void()> race_window_hook_;
  bool in_race_window_hook_ = false;
};

}  // namespace serve
}  // namespace aod

#endif  // AOD_SERVE_TABLE_CACHE_H_
