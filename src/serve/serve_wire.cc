#include "serve/serve_wire.h"

namespace aod {
namespace serve {

using shard::DecodedFrame;
using shard::FrameType;
using shard::WireReader;
using shard::WireWriter;

namespace {

Status ExpectType(const DecodedFrame& frame, FrameType want,
                  const char* what) {
  if (frame.type != want) {
    return Status::ParseError(std::string("expected ") + what + " frame");
  }
  return Status::OK();
}

}  // namespace

const char* JobStateToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

WireJobOptions WireJobOptionsFrom(const DiscoveryOptions& options) {
  WireJobOptions wire;
  wire.epsilon = options.epsilon;
  wire.validator = static_cast<uint8_t>(options.validator);
  wire.kinds = options.kinds.bits();
  wire.afd_error = options.afd_error;
  wire.top_k = options.top_k;
  wire.max_level = options.max_level;
  wire.max_lhs_arity = options.max_lhs_arity;
  wire.bidirectional = options.bidirectional;
  wire.collect_removal_sets = options.collect_removal_sets;
  wire.enable_sampling_filter = options.enable_sampling_filter;
  wire.sampler_sample_size = options.sampler_config.sample_size;
  wire.sampler_reject_margin = options.sampler_config.reject_margin;
  wire.sampler_seed = options.sampler_config.seed;
  wire.enable_derivation_planner = options.enable_derivation_planner;
  wire.partition_memory_budget_bytes = options.partition_memory_budget_bytes;
  wire.deadline_seconds = options.time_budget_seconds;
  return wire;
}

DiscoveryOptions ToDiscoveryOptions(const WireJobOptions& wire) {
  DiscoveryOptions options;
  options.epsilon = wire.epsilon;
  options.validator = static_cast<ValidatorKind>(wire.validator);
  options.kinds = DependencyKindSet(wire.kinds);
  options.afd_error = wire.afd_error;
  options.top_k = wire.top_k;
  options.max_level = wire.max_level;
  options.max_lhs_arity = wire.max_lhs_arity;
  options.bidirectional = wire.bidirectional;
  options.collect_removal_sets = wire.collect_removal_sets;
  options.enable_sampling_filter = wire.enable_sampling_filter;
  options.sampler_config.sample_size = wire.sampler_sample_size;
  options.sampler_config.reject_margin = wire.sampler_reject_margin;
  options.sampler_config.seed = wire.sampler_seed;
  options.enable_derivation_planner = wire.enable_derivation_planner;
  options.partition_memory_budget_bytes = wire.partition_memory_budget_bytes;
  options.time_budget_seconds = wire.deadline_seconds;
  return options;
}

std::vector<uint8_t> EncodeJobSubmit(const WireJobSubmit& submit) {
  WireWriter w;
  w.PutU64(submit.request_id);
  const WireJobOptions& o = submit.options;
  w.PutDouble(o.epsilon);
  w.PutU8(o.validator);
  w.PutU32(o.kinds);
  w.PutDouble(o.afd_error);
  w.PutVarintI64(o.top_k);
  w.PutI32(o.max_level);
  w.PutI32(o.max_lhs_arity);
  w.PutU8(o.bidirectional ? 1 : 0);
  w.PutU8(o.collect_removal_sets ? 1 : 0);
  w.PutU8(o.enable_sampling_filter ? 1 : 0);
  w.PutVarintI64(o.sampler_sample_size);
  w.PutDouble(o.sampler_reject_margin);
  w.PutU64(o.sampler_seed);
  w.PutU8(o.enable_derivation_planner ? 1 : 0);
  w.PutVarintI64(o.partition_memory_budget_bytes);
  w.PutDouble(o.deadline_seconds);
  w.PutVarint(submit.table_frame.size());
  w.PutBytes(submit.table_frame.data(), submit.table_frame.size());
  return w.SealFrame(FrameType::kJobSubmit);
}

Result<WireJobSubmit> DecodeJobSubmit(const DecodedFrame& frame) {
  AOD_RETURN_NOT_OK(ExpectType(frame, FrameType::kJobSubmit, "job submit"));
  WireReader r(frame.payload, frame.size);
  WireJobSubmit submit;
  AOD_RETURN_NOT_OK(r.GetU64(&submit.request_id));
  WireJobOptions& o = submit.options;
  AOD_RETURN_NOT_OK(r.GetDouble(&o.epsilon));
  AOD_RETURN_NOT_OK(r.GetU8(&o.validator));
  if (o.validator > 2) {
    return Status::ParseError("job submit: unknown validator kind");
  }
  AOD_RETURN_NOT_OK(r.GetU32(&o.kinds));
  if (o.kinds == 0 || !DependencyKindSet(o.kinds).IsValid()) {
    return Status::ParseError(
        "job submit: dependency-kind set invalid (bits " +
        std::to_string(o.kinds) + ")");
  }
  AOD_RETURN_NOT_OK(r.GetDouble(&o.afd_error));
  if (!(o.afd_error >= 0.0 && o.afd_error <= 1.0)) {
    return Status::ParseError("job submit: afd_error outside [0, 1]");
  }
  AOD_RETURN_NOT_OK(r.GetVarintI64(&o.top_k));
  if (o.top_k < 0) {
    return Status::ParseError("job submit: negative top_k");
  }
  AOD_RETURN_NOT_OK(r.GetI32(&o.max_level));
  AOD_RETURN_NOT_OK(r.GetI32(&o.max_lhs_arity));
  uint8_t flag = 0;
  AOD_RETURN_NOT_OK(r.GetU8(&flag));
  o.bidirectional = flag != 0;
  AOD_RETURN_NOT_OK(r.GetU8(&flag));
  o.collect_removal_sets = flag != 0;
  AOD_RETURN_NOT_OK(r.GetU8(&flag));
  o.enable_sampling_filter = flag != 0;
  AOD_RETURN_NOT_OK(r.GetVarintI64(&o.sampler_sample_size));
  AOD_RETURN_NOT_OK(r.GetDouble(&o.sampler_reject_margin));
  AOD_RETURN_NOT_OK(r.GetU64(&o.sampler_seed));
  AOD_RETURN_NOT_OK(r.GetU8(&flag));
  o.enable_derivation_planner = flag != 0;
  AOD_RETURN_NOT_OK(r.GetVarintI64(&o.partition_memory_budget_bytes));
  AOD_RETURN_NOT_OK(r.GetDouble(&o.deadline_seconds));
  if (!(o.epsilon >= 0.0 && o.epsilon <= 1.0)) {
    return Status::ParseError("job submit: epsilon outside [0, 1]");
  }
  uint64_t table_bytes = 0;
  AOD_RETURN_NOT_OK(r.GetVarint(&table_bytes));
  if (table_bytes != r.remaining()) {
    return Status::ParseError(
        "job submit: table frame length disagrees with payload");
  }
  submit.table_frame.assign(r.cursor(), r.cursor() + table_bytes);
  return submit;
}

std::vector<uint8_t> EncodeJobStatus(const WireJobStatus& status) {
  WireWriter w;
  w.PutU64(status.job_id);
  w.PutU64(status.request_id);
  w.PutU8(static_cast<uint8_t>(status.state));
  w.PutI32(status.queue_position);
  w.PutI32(status.level);
  w.PutVarintI64(status.total_ocs);
  w.PutVarintI64(status.total_ofds);
  w.PutVarintI64(status.total_fds);
  w.PutVarintI64(status.total_afds);
  return w.SealFrame(FrameType::kJobStatus);
}

Result<WireJobStatus> DecodeJobStatus(const DecodedFrame& frame) {
  AOD_RETURN_NOT_OK(ExpectType(frame, FrameType::kJobStatus, "job status"));
  WireReader r(frame.payload, frame.size);
  WireJobStatus status;
  AOD_RETURN_NOT_OK(r.GetU64(&status.job_id));
  AOD_RETURN_NOT_OK(r.GetU64(&status.request_id));
  uint8_t state = 0;
  AOD_RETURN_NOT_OK(r.GetU8(&state));
  if (state > static_cast<uint8_t>(JobState::kFailed)) {
    return Status::ParseError("job status: unknown state");
  }
  status.state = static_cast<JobState>(state);
  AOD_RETURN_NOT_OK(r.GetI32(&status.queue_position));
  AOD_RETURN_NOT_OK(r.GetI32(&status.level));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&status.total_ocs));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&status.total_ofds));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&status.total_fds));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&status.total_afds));
  if (status.total_ocs < 0 || status.total_ofds < 0 ||
      status.total_fds < 0 || status.total_afds < 0) {
    return Status::ParseError("job status: negative dependency count");
  }
  AOD_RETURN_NOT_OK(r.ExpectEnd());
  return status;
}

std::vector<uint8_t> EncodeJobError(const WireJobError& error) {
  WireWriter w;
  w.PutU64(error.job_id);
  w.PutU64(error.request_id);
  w.PutU8(static_cast<uint8_t>(error.status.code()));
  w.PutString(error.status.message());
  return w.SealFrame(FrameType::kJobError);
}

Result<WireJobError> DecodeJobError(const DecodedFrame& frame) {
  AOD_RETURN_NOT_OK(ExpectType(frame, FrameType::kJobError, "job error"));
  WireReader r(frame.payload, frame.size);
  WireJobError error;
  AOD_RETURN_NOT_OK(r.GetU64(&error.job_id));
  AOD_RETURN_NOT_OK(r.GetU64(&error.request_id));
  uint8_t code = 0;
  AOD_RETURN_NOT_OK(r.GetU8(&code));
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kShuttingDown)) {
    // An OK job error is a protocol contradiction, not a quiet success.
    return Status::ParseError("job error: bad status code");
  }
  std::string message;
  AOD_RETURN_NOT_OK(r.GetString(&message));
  AOD_RETURN_NOT_OK(r.ExpectEnd());
  error.status = Status(static_cast<StatusCode>(code), std::move(message));
  return error;
}

std::vector<uint8_t> EncodeJobResultChunk(const WireJobResultChunk& chunk) {
  WireWriter w;
  w.PutU64(chunk.job_id);
  w.PutU8(chunk.final_chunk ? shard::kResultFlagFinalChunk : 0);
  w.PutVarint(chunk.blob_bytes.size());
  w.PutBytes(chunk.blob_bytes.data(), chunk.blob_bytes.size());
  return w.SealFrame(FrameType::kJobResultBatch);
}

Result<WireJobResultChunk> DecodeJobResultChunk(const DecodedFrame& frame) {
  AOD_RETURN_NOT_OK(
      ExpectType(frame, FrameType::kJobResultBatch, "job result"));
  WireReader r(frame.payload, frame.size);
  WireJobResultChunk chunk;
  AOD_RETURN_NOT_OK(r.GetU64(&chunk.job_id));
  uint8_t flags = 0;
  AOD_RETURN_NOT_OK(r.GetU8(&flags));
  if ((flags & ~shard::kResultFlagFinalChunk) != 0) {
    return Status::ParseError("job result: unknown flag bits");
  }
  chunk.final_chunk = (flags & shard::kResultFlagFinalChunk) != 0;
  uint64_t blob_bytes = 0;
  AOD_RETURN_NOT_OK(r.GetVarint(&blob_bytes));
  if (blob_bytes != r.remaining()) {
    return Status::ParseError(
        "job result: chunk length disagrees with payload");
  }
  chunk.blob_bytes.assign(r.cursor(), r.cursor() + blob_bytes);
  return chunk;
}

std::vector<uint8_t> EncodeCancel(uint64_t job_id) {
  WireWriter w;
  w.PutU64(job_id);
  return w.SealFrame(FrameType::kCancel);
}

Result<uint64_t> DecodeCancel(const DecodedFrame& frame) {
  AOD_RETURN_NOT_OK(ExpectType(frame, FrameType::kCancel, "cancel"));
  WireReader r(frame.payload, frame.size);
  uint64_t job_id = 0;
  AOD_RETURN_NOT_OK(r.GetU64(&job_id));
  AOD_RETURN_NOT_OK(r.ExpectEnd());
  return job_id;
}

}  // namespace serve
}  // namespace aod
