// Multiplexes many discovery jobs over one shared thread pool.
//
// The scheduler owns the server's execution resources: a bounded job
// queue, a small set of executor threads (one per concurrently *running*
// job), and the single exec::ThreadPool every job's validation work
// lands on. Admission control lives here — the decision to refuse work
// is about executor state, not connection state — and is typed:
//
//   kShuttingDown   the scheduler is draining toward exit;
//   kOverloaded     the queue is at max_queue_depth, or the submitting
//                   client already has max_inflight_per_client jobs
//                   queued or running.
//
// Fairness: the queue is round-robin across clients (one FIFO lane per
// client, lanes served in rotation), so a client that floods the queue
// delays its own jobs, not everyone else's. Within a client, jobs run
// in submission order.
//
// Per-job deadlines ride the driver's cooperative budget seams
// (DiscoveryOptions::time_budget_seconds, capped at the scheduler's
// max_job_seconds), and cancellation rides the cancel seam — so a
// cancelled or deadline-hit job winds down at the next validation/merge
// boundary and still produces a valid partial result. Cancel of a
// *queued* job is immediate: the job is dropped from its lane and
// completes with an empty cancelled result, never touching the pool.
//
// Every admitted job terminates with exactly one on_done callback
// (executor thread), whatever its fate — done, failed, cancelled while
// queued, cancelled while running, drained at shutdown. That invariant
// is what lets the server promise "zero leaked jobs" (serve_fault_test).
#ifndef AOD_SERVE_SCHEDULER_H_
#define AOD_SERVE_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "od/discovery.h"
#include "serve/serve_wire.h"
#include "serve/table_cache.h"

namespace aod {
namespace exec {
class ThreadPool;
}  // namespace exec

namespace serve {

/// One admitted job. Connections hold these shared to answer status
/// queries; the scheduler owns the lifecycle.
struct ServeJob {
  uint64_t id = 0;
  uint64_t request_id = 0;
  uint64_t client_id = 0;
  std::shared_ptr<const TableCache::Entry> table;
  DiscoveryOptions options;

  std::atomic<JobState> state{JobState::kQueued};
  std::atomic<bool> cancel_requested{false};
  /// Progress mirror for status queries (updated by the running driver).
  std::atomic<int32_t> level{0};
  std::atomic<int64_t> total_ocs{0};
  std::atomic<int64_t> total_ofds{0};
  std::atomic<int64_t> total_fds{0};
  std::atomic<int64_t> total_afds{0};

  /// Invoked from the executor on every completed level.
  std::function<void(const ServeJob&, const DiscoveryProgress&)> on_progress;
  /// Invoked exactly once from the executor with the terminal result.
  std::function<void(const ServeJob&, const DiscoveryResult&)> on_done;
};

class JobScheduler {
 public:
  struct Options {
    /// Queued (not yet running) jobs across all clients.
    int max_queue_depth = 8;
    /// Executor threads == jobs running concurrently. They share one
    /// validation pool, so this trades per-job latency for throughput
    /// without oversubscribing the machine.
    int max_running_jobs = 2;
    /// Queued + running jobs any single client may hold.
    int max_inflight_per_client = 4;
    /// Hard cap applied to every job's deadline (0 = uncapped).
    double max_job_seconds = 0.0;
    /// The shared validation pool (borrowed, must outlive the
    /// scheduler). Required.
    exec::ThreadPool* pool = nullptr;
  };

  explicit JobScheduler(const Options& options);
  ~JobScheduler();
  AOD_DISALLOW_COPY_AND_ASSIGN(JobScheduler);

  /// Admission: assigns the job an id and queues it, or refuses with
  /// kOverloaded / kShuttingDown. `job->options` must already carry the
  /// table-cache warm seam; the scheduler wires cancel/progress/pool.
  Result<uint64_t> Submit(std::shared_ptr<ServeJob> job);

  /// Cooperative cancel; unknown ids are a no-op (the job may have
  /// finished and been forgotten between the client's send and this
  /// call — that race is inherent and harmless).
  void Cancel(uint64_t job_id);

  /// Cancels every job of `client_id` (disconnect cleanup). The jobs
  /// still run their on_done exactly once; the server's callbacks are
  /// responsible for noticing the connection is gone.
  void CancelClient(uint64_t client_id);

  /// Status snapshot for a bare kJobStatus query.
  std::shared_ptr<ServeJob> Find(uint64_t job_id);

  /// Queued jobs ahead of `job_id` in dispatch order (-1 if not queued).
  int QueuePosition(uint64_t job_id);

  /// Stops admission (Submit -> kShuttingDown); queued and running jobs
  /// still complete. Idempotent.
  void RequestDrain();

  /// Drain + wait for every admitted job to finish + join executors.
  void Shutdown();

  bool draining() const { return draining_.load(std::memory_order_acquire); }
  /// Jobs admitted and not yet terminal — 0 after Shutdown by
  /// construction (the leak check of serve_fault_test).
  int active_jobs() const;
  int64_t jobs_admitted() const;
  int64_t jobs_rejected() const;
  /// Clients with at least one job queued or running — the admission
  /// map's size. A rejected probe must leave it unchanged (pinned in
  /// serve_fault_test: churning client ids on an overloaded server must
  /// not grow server state).
  size_t inflight_clients() const;

 private:
  void ExecutorLoop();
  std::shared_ptr<ServeJob> NextJob();  // under lock via caller
  void RunJob(const std::shared_ptr<ServeJob>& job);
  void FinishCancelledQueued(const std::shared_ptr<ServeJob>& job);

  const Options options_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  /// One FIFO lane per client, served round-robin.
  std::map<uint64_t, std::deque<std::shared_ptr<ServeJob>>> lanes_;
  /// Rotation cursor: the client id served last.
  uint64_t last_client_ = 0;
  int queued_ = 0;
  int running_ = 0;
  /// Queued + running per client (admission cap).
  std::map<uint64_t, int> inflight_;
  /// All non-terminal jobs by id (status queries, cancel).
  std::map<uint64_t, std::shared_ptr<ServeJob>> live_;
  uint64_t next_job_id_ = 1;
  int64_t admitted_ = 0;
  int64_t rejected_ = 0;
  std::atomic<bool> draining_{false};
  bool stopping_ = false;
  std::vector<std::thread> executors_;
};

}  // namespace serve
}  // namespace aod

#endif  // AOD_SERVE_SCHEDULER_H_
