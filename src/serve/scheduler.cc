#include "serve/scheduler.h"

#include <algorithm>
#include <utility>

#include "exec/thread_pool.h"

namespace aod {
namespace serve {

JobScheduler::JobScheduler(const Options& options) : options_(options) {
  AOD_CHECK_MSG(options_.pool != nullptr,
                "JobScheduler needs a shared thread pool");
  const int executors = std::max(1, options_.max_running_jobs);
  executors_.reserve(executors);
  for (int i = 0; i < executors; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
}

JobScheduler::~JobScheduler() { Shutdown(); }

Result<uint64_t> JobScheduler::Submit(std::shared_ptr<ServeJob> job) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_.load(std::memory_order_relaxed) || stopping_) {
    ++rejected_;
    return Status::ShuttingDown("server is draining; submit elsewhere");
  }
  if (queued_ >= options_.max_queue_depth) {
    ++rejected_;
    return Status::Overloaded("job queue full (" +
                              std::to_string(options_.max_queue_depth) +
                              " queued); retry after backoff");
  }
  // find(), not operator[]: a rejected probe must not default-insert a
  // zero entry — churning client ids (every connection gets a fresh one)
  // would grow the map without bound on an overloaded server.
  const auto inflight_it = inflight_.find(job->client_id);
  const int inflight =
      inflight_it == inflight_.end() ? 0 : inflight_it->second;
  if (inflight >= options_.max_inflight_per_client) {
    ++rejected_;
    return Status::Overloaded(
        "client already has " + std::to_string(inflight) +
        " jobs in flight; await or cancel one first");
  }
  job->id = next_job_id_++;
  // The deadline is enforced through the driver's cooperative budget
  // seam; the server-side cap bounds hostile/buggy deadlines.
  if (options_.max_job_seconds > 0.0) {
    double budget = job->options.time_budget_seconds;
    if (budget <= 0.0 || budget > options_.max_job_seconds) {
      budget = options_.max_job_seconds;
    }
    job->options.time_budget_seconds = budget;
  }
  job->options.pool = options_.pool;
  // Serve jobs run unsharded on the pool — neither candidate-space nor
  // row-space sharding applies to a resident server's jobs.
  job->options.num_shards = 0;
  job->options.row_shards = 0;
  const uint64_t id = job->id;
  ++queued_;
  ++inflight_[job->client_id];
  ++admitted_;
  live_[id] = job;
  lanes_[job->client_id].push_back(std::move(job));
  work_cv_.notify_one();
  return id;
}

void JobScheduler::Cancel(uint64_t job_id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = live_.find(job_id);
    if (it == live_.end()) return;
    it->second->cancel_requested.store(true, std::memory_order_release);
  }
  // Running jobs notice at the driver's next cancel poll; queued jobs
  // are collected by whichever executor dequeues them next (it skips
  // the run and goes straight to the terminal callback). Waking an
  // executor makes that prompt even on an idle server.
  work_cv_.notify_all();
}

void JobScheduler::CancelClient(uint64_t client_id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, job] : live_) {
      if (job->client_id == client_id) {
        job->cancel_requested.store(true, std::memory_order_release);
      }
    }
  }
  work_cv_.notify_all();
}

std::shared_ptr<ServeJob> JobScheduler::Find(uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(job_id);
  return it == live_.end() ? nullptr : it->second;
}

int JobScheduler::QueuePosition(uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Dispatch order across lanes is rotation-dependent; an exact global
  // position is not stable, so report the job's position in its own
  // lane — the number its submitter can act on.
  for (const auto& [client, lane] : lanes_) {
    int pos = 0;
    for (const auto& job : lane) {
      if (job->id == job_id) return pos;
      ++pos;
    }
  }
  return -1;
}

void JobScheduler::RequestDrain() {
  draining_.store(true, std::memory_order_release);
  work_cv_.notify_all();
}

void JobScheduler::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    draining_.store(true, std::memory_order_release);
    // Wait for the queue and the running set to empty: every admitted
    // job gets its terminal callback before the executors die.
    idle_cv_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
}

int JobScheduler::active_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_ + running_;
}

int64_t JobScheduler::jobs_admitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_;
}

int64_t JobScheduler::jobs_rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

size_t JobScheduler::inflight_clients() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_.size();
}

std::shared_ptr<ServeJob> JobScheduler::NextJob() {
  // Round-robin: the first non-empty lane strictly after last_client_,
  // wrapping. std::map iteration order makes the rotation deterministic.
  if (lanes_.empty()) return nullptr;
  auto it = lanes_.upper_bound(last_client_);
  for (size_t step = 0; step <= lanes_.size(); ++step) {
    if (it == lanes_.end()) it = lanes_.begin();
    if (!it->second.empty()) {
      std::shared_ptr<ServeJob> job = std::move(it->second.front());
      it->second.pop_front();
      last_client_ = it->first;
      if (it->second.empty()) lanes_.erase(it);
      return job;
    }
    it = lanes_.erase(it);
  }
  return nullptr;
}

void JobScheduler::ExecutorLoop() {
  for (;;) {
    std::shared_ptr<ServeJob> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return queued_ > 0 || stopping_; });
      if (queued_ == 0) return;  // stopping and drained
      job = NextJob();
      AOD_CHECK(job != nullptr);
      --queued_;
      ++running_;
    }
    if (job->cancel_requested.load(std::memory_order_acquire)) {
      FinishCancelledQueued(job);
    } else {
      RunJob(job);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      live_.erase(job->id);
      auto it = inflight_.find(job->client_id);
      if (it != inflight_.end() && --it->second <= 0) inflight_.erase(it);
    }
    idle_cv_.notify_all();
  }
}

void JobScheduler::FinishCancelledQueued(
    const std::shared_ptr<ServeJob>& job) {
  job->state.store(JobState::kCancelled, std::memory_order_release);
  DiscoveryResult result;
  result.cancelled = true;
  if (job->on_done) job->on_done(*job, result);
}

void JobScheduler::RunJob(const std::shared_ptr<ServeJob>& job) {
  job->state.store(JobState::kRunning, std::memory_order_release);
  DiscoveryOptions options = job->options;
  ServeJob* raw = job.get();
  options.cancel = [raw] {
    return raw->cancel_requested.load(std::memory_order_acquire);
  };
  options.warm_base_partitions = &job->table->bases;
  options.progress = [raw](const DiscoveryProgress& p) {
    raw->level.store(p.level, std::memory_order_relaxed);
    raw->total_ocs.store(p.total_ocs, std::memory_order_relaxed);
    raw->total_ofds.store(p.total_ofds, std::memory_order_relaxed);
    raw->total_fds.store(p.total_fds, std::memory_order_relaxed);
    raw->total_afds.store(p.total_afds, std::memory_order_relaxed);
    if (raw->on_progress) raw->on_progress(*raw, p);
  };
  DiscoveryResult result = DiscoverOds(*job->table->table, options);
  job->state.store(result.cancelled  ? JobState::kCancelled
                   : !result.shard_status.ok() ? JobState::kFailed
                                               : JobState::kDone,
                   std::memory_order_release);
  if (job->on_done) job->on_done(*job, result);
}

}  // namespace serve
}  // namespace aod
