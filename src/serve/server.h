// The discovery-as-a-service host: a long-lived server multiplexing
// discovery jobs from many concurrent clients over localhost TCP.
//
// Architecture (one process):
//
//   SocketListener ──accept──▶ Connection (1 reader thread each)
//                                  │ kJobSubmit/kCancel/kJobStatus
//                                  ▼
//                             JobScheduler (N executor threads)
//                                  │ shares one exec::ThreadPool
//                                  ▼
//                             DiscoverOds (warm-started via TableCache)
//                                  │ result blob
//                                  ▼
//                             Connection send (chunked kJobResultBatch)
//
// Failure domains: each connection is its own. A malformed, oversized
// or desynced frame fails only that connection (best-effort typed error,
// then teardown); a client that vanishes mid-anything (kill -9, crash,
// network cut) is detected by its reader's Receive error, its jobs are
// cooperatively cancelled, and everything it held is reclaimed — no
// other client observes more than a scheduling delay. A reader that
// stops draining its socket (slow reader) is bounded by the
// per-connection send backlog and dropped rather than ballooning server
// memory. All of this is pinned by tests/serve_fault_test.cc, including
// that a healthy client's results stay bit-identical to direct
// DiscoverOds throughout the fault storm.
//
// Lifecycle: Start binds 127.0.0.1 on an ephemeral (or requested) port.
// RequestDrain (the SIGTERM path) stops admission — new submits get
// kShuttingDown — while in-flight jobs complete and deliver. Shutdown
// drains, then closes every connection and joins every thread; after it
// returns the process holds no job, thread or fd of the server's.
#ifndef AOD_SERVE_SERVER_H_
#define AOD_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "exec/thread_pool.h"
#include "serve/scheduler.h"
#include "serve/table_cache.h"
#include "shard/channel.h"

namespace aod {
namespace serve {

struct ServerOptions {
  /// 0 = ephemeral (read the bound port back via port()).
  uint16_t port = 0;
  /// Validation pool width shared by all running jobs (0 = hardware
  /// concurrency).
  int num_threads = 0;
  /// Admission bounds (see JobScheduler::Options).
  int max_queue_depth = 8;
  int max_running_jobs = 2;
  int max_inflight_per_client = 4;
  /// Hard cap on any job's wall clock (0 = uncapped).
  double max_job_seconds = 0.0;
  /// Concurrent connections; accepts beyond this are refused with a
  /// typed kOverloaded error before a reader is spawned.
  int max_connections = 64;
  /// Tables kept warm across jobs (see TableCache).
  size_t table_cache_capacity = 8;
  /// Largest frame a client may send (a submission's table rides in one
  /// frame). Far below the shard seam's 1 GiB default: submissions come
  /// from untrusted clients.
  int64_t max_frame_bytes = 256LL << 20;
  /// Drop a connection after this long with no complete inbound frame
  /// (0 = never). Bounds half-open/slowloris connections; must exceed
  /// the longest expected job, since a client awaiting its result is
  /// silent.
  double idle_timeout_seconds = 0.0;
  /// Per-connection bound on enqueued-but-unsent bytes. Result sends
  /// wait for the backlog to drain below it; a connection that stays
  /// over it for send_stall_seconds is dropped (slow reader).
  int64_t max_send_backlog_bytes = 8LL << 20;
  double send_stall_seconds = 10.0;
};

/// Server-side job/connection counters (test observability).
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_refused = 0;
  int64_t connections_dropped = 0;  // faulted/slow/disconnected
  int64_t frames_rejected = 0;      // malformed/desynced/unexpected
  int64_t jobs_admitted = 0;
  int64_t jobs_rejected = 0;
  int64_t table_cache_hits = 0;
  int64_t table_cache_misses = 0;
};

class DiscoveryServer {
 public:
  static Result<std::unique_ptr<DiscoveryServer>> Start(
      const ServerOptions& options);
  ~DiscoveryServer();
  AOD_DISALLOW_COPY_AND_ASSIGN(DiscoveryServer);

  uint16_t port() const { return port_; }

  /// Stop admitting jobs and connections; in-flight jobs complete and
  /// deliver. Idempotent; the SIGTERM handler's half of a graceful exit.
  void RequestDrain();

  /// Drain, deliver, then tear everything down. After this returns the
  /// server holds no threads, connections, fds or jobs. Idempotent.
  void Shutdown();

  bool draining() const { return scheduler_->draining(); }
  int active_connections() const;
  /// 0 once Shutdown returned (leak check seam).
  int active_jobs() const { return scheduler_->active_jobs(); }
  ServerStats stats() const;

 private:
  struct Connection {
    uint64_t client_id = 0;
    std::unique_ptr<shard::SocketShardChannel> channel;
    std::unique_ptr<shard::LogicalFrameReceiver> receiver;
    std::atomic<bool> alive{true};
    std::atomic<bool> reader_done{false};
    std::thread reader;
    /// Serializes multi-frame sequences (result chunk streams) against
    /// other writers on this connection.
    std::mutex send_mutex;
  };

  explicit DiscoveryServer(const ServerOptions& options);

  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  /// OK to keep the connection; an error fails (only) this connection.
  Status Dispatch(const std::shared_ptr<Connection>& conn,
                  const std::vector<uint8_t>& raw);
  Status HandleSubmit(const std::shared_ptr<Connection>& conn,
                      const shard::DecodedFrame& frame);
  Status HandleStatusQuery(const std::shared_ptr<Connection>& conn,
                           const shard::DecodedFrame& frame);
  /// Best-effort send without backpressure wait (acks, errors, status).
  void SendNow(const std::shared_ptr<Connection>& conn,
               std::vector<uint8_t> frame);
  /// Backpressure-bounded send (result chunks); drops the connection on
  /// a persistent stall.
  Status SendBounded(const std::shared_ptr<Connection>& conn,
                     std::vector<uint8_t> frame);
  void StreamResult(const std::shared_ptr<Connection>& conn,
                    const ServeJob& job, const DiscoveryResult& result);
  /// Idempotent per-connection teardown: cancel its jobs, close its
  /// channel (waking its reader), count it dropped.
  void DropConnection(const std::shared_ptr<Connection>& conn);
  void ReapFinishedReaders();

  const ServerOptions options_;
  uint16_t port_ = 0;
  std::unique_ptr<shard::SocketListener> listener_;
  std::unique_ptr<exec::ThreadPool> pool_;
  TableCache tables_;
  std::unique_ptr<JobScheduler> scheduler_;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  uint64_t next_client_id_ = 1;
  int64_t connections_accepted_ = 0;
  int64_t connections_refused_ = 0;
  int64_t connections_dropped_ = 0;
  int64_t frames_rejected_ = 0;

  std::atomic<bool> stop_accepting_{false};
  std::atomic<bool> shut_down_{false};
  std::thread acceptor_;
};

}  // namespace serve
}  // namespace aod

#endif  // AOD_SERVE_SERVER_H_
